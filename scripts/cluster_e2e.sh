#!/usr/bin/env bash
# cluster_e2e.sh — end-to-end check of mixd -cluster on loopback.
#
# Builds mixd and mixq, boots a single-node baseline and a 3-node fleet
# (every node with identical -src/-view sets), and asserts that every
# corpus query answered through *any* fleet member is byte-identical to
# the baseline — once with sessions proxied to their owner node and
# once with clients redirected to it. Exits non-zero on any mismatch.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/mixd" ./cmd/mixd
go build -o "$tmp/mixq" ./cmd/mixq

cat >"$tmp/homeview.xmas" <<'EOF'
CONSTRUCT <allhomes> <med_home> $H $S {$S} </med_home> {$H} </allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
EOF

SRCS=(-src homesSrc=demo:homes:40 -src schoolsSrc=demo:schools:40
      -view "homeview=$tmp/homeview.xmas")

queries=(
    'CONSTRUCT <out> $M {$M} </out> {} WHERE homeview allhomes.med_home $M'
    'CONSTRUCT <zips> $Z {$Z} </zips> {} WHERE homesSrc homes.home $H AND $H zip._ $Z'
    'CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
     WHERE homesSrc homes.home $H AND $H zip._ $V1
     AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2'
)

wait_up() { # addr
    for _ in $(seq 1 50); do
        if "$tmp/mixq" -connect "$1" -q 'CONSTRUCT <ping></ping> {} WHERE homesSrc homes.home $H' \
            >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "cluster_e2e: node $1 never came up" >&2
    return 1
}

base=127.0.0.1:17870
"$tmp/mixd" -addr "$base" "${SRCS[@]}" -log-level error &
pids+=($!)
wait_up "$base"
for i in "${!queries[@]}"; do
    "$tmp/mixq" -connect "$base" -q "${queries[$i]}" >"$tmp/want.$i"
done

run_fleet() { # mode port1 port2 port3
    local mode=$1 a=127.0.0.1:$2 b=127.0.0.1:$3 c=127.0.0.1:$4
    local fleet_pids=()
    "$tmp/mixd" -addr "$a" -cluster -peers "$b,$c" -cluster-mode "$mode" "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    "$tmp/mixd" -addr "$b" -cluster -peers "$a,$c" -cluster-mode "$mode" "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    "$tmp/mixd" -addr "$c" -cluster -peers "$a,$b" -cluster-mode "$mode" "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    pids+=("${fleet_pids[@]}")
    for n in "$a" "$b" "$c"; do wait_up "$n"; done
    for n in "$a" "$b" "$c"; do
        for i in "${!queries[@]}"; do
            "$tmp/mixq" -connect "$n" -q "${queries[$i]}" >"$tmp/got"
            if ! cmp -s "$tmp/want.$i" "$tmp/got"; then
                echo "cluster_e2e: $mode mode, node $n, query $i differs from baseline" >&2
                diff "$tmp/want.$i" "$tmp/got" >&2 || true
                exit 1
            fi
        done
    done
    for p in "${fleet_pids[@]}"; do kill "$p" 2>/dev/null || true; done
    echo "cluster_e2e: $mode mode byte-identical on all 3 nodes"
}

run_fleet proxy 17871 17872 17873
run_fleet redirect 17874 17875 17876

# Fleet tracing: boot a traced proxy fleet, navigate through every node
# with a client-side recorder, and require that at least one session
# (one entering through a non-owner, so every command hops to the
# owner) reports a stitched forest with spans from >= 2 nodes.
run_traced_fleet() { # port1 port2 port3
    local a=127.0.0.1:$1 b=127.0.0.1:$2 c=127.0.0.1:$3
    local fleet_pids=()
    "$tmp/mixd" -addr "$a" -cluster -peers "$b,$c" -trace -slow-ms 0 "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    "$tmp/mixd" -addr "$b" -cluster -peers "$a,$c" -trace -slow-ms 0 "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    "$tmp/mixd" -addr "$c" -cluster -peers "$a,$b" -trace -slow-ms 0 "${SRCS[@]}" -log-level error &
    fleet_pids+=($!)
    pids+=("${fleet_pids[@]}")
    for n in "$a" "$b" "$c"; do wait_up "$n"; done
    local stitched=0
    for n in "$a" "$b" "$c"; do
        "$tmp/mixq" -connect "$n" -trace -q "${queries[0]}" >"$tmp/got" 2>"$tmp/trace"
        if ! cmp -s "$tmp/want.0" "$tmp/got"; then
            echo "cluster_e2e: traced proxy, node $n answer differs from baseline" >&2
            diff "$tmp/want.0" "$tmp/got" >&2 || true
            exit 1
        fi
        if ! grep -q '^nodes:' "$tmp/trace"; then
            echo "cluster_e2e: traced proxy, node $n reported no node-tagged spans" >&2
            cat "$tmp/trace" >&2
            exit 1
        fi
        # "nodes: addr1=n addr2=m" — count the per-node tags.
        tags=$(grep '^nodes:' "$tmp/trace" | head -1 | grep -o '=' | wc -l)
        if [ "$tags" -ge 2 ]; then stitched=$((stitched + 1)); fi
        # The zero-threshold flight ring must already hold these roots.
        # (Capture to a file: grep -q would SIGPIPE mixq mid-dump.)
        "$tmp/mixq" -connect "$n" -slow >"$tmp/slowdump" 2>&1
        if ! grep -q 'node=' "$tmp/slowdump"; then
            echo "cluster_e2e: traced proxy, node $n slow ring is empty" >&2
            exit 1
        fi
    done
    if [ "$stitched" -lt 2 ]; then
        echo "cluster_e2e: expected >= 2 cross-node forests (one per non-owner entry), got $stitched" >&2
        exit 1
    fi
    for p in "${fleet_pids[@]}"; do kill "$p" 2>/dev/null || true; done
    echo "cluster_e2e: traced proxy fleet stitched spans from >= 2 nodes"
}

run_traced_fleet 17877 17878 17879
echo "cluster_e2e: PASS"
