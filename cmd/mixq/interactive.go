package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mix/internal/mediator"
	"mix/internal/xmltree"
)

// interact is the BBQ-flavored navigation shell of Section 5: the user
// explores the virtual answer document command by command, watching it
// unfold. Commands mirror DOM-VXD:
//
//	d        down  — first child
//	r        right — next sibling
//	u        up    — back to the parent (client-side stack)
//	f        fetch — print the current label
//	t        tree  — materialize and print the current subtree
//	s NAME   select — first child named NAME
//	?        help
//	q        quit
//
// after, when non-nil, runs after every command that touched the
// document — the hook `mixq -trace` uses to print the navigation's
// fan-out tree.
func interact(cur *mediator.Element, in io.Reader, out io.Writer, after func(io.Writer)) error {
	var stack []*mediator.Element
	name, err := cur.Name()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "at <%s>  (d/r/u/f/t/s NAME/q, ? for help)\n", name)
	if after == nil {
		after = func(io.Writer) {}
	}
	after(out) // the prompt banner already fetched the root's name

	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		cmd, arg, _ := strings.Cut(line, " ")
		switch cmd {
		case "", "?":
			fmt.Fprintln(out, "d=down r=right u=up f=fetch t=print subtree s NAME=select child q=quit")
		case "q", "quit", "exit":
			return nil
		case "d":
			next, err := cur.FirstChild()
			if err != nil {
				return err
			}
			if next == nil {
				fmt.Fprintln(out, "⊥ (leaf)")
				after(out)
				continue
			}
			stack = append(stack, cur)
			cur = next
			printAt(out, cur)
		case "r":
			next, err := cur.NextSibling()
			if err != nil {
				return err
			}
			if next == nil {
				fmt.Fprintln(out, "⊥ (no right sibling)")
				after(out)
				continue
			}
			cur = next
			printAt(out, cur)
		case "u":
			if len(stack) == 0 {
				fmt.Fprintln(out, "⊥ (at the root)")
				continue
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			printAt(out, cur)
		case "f":
			printAt(out, cur)
		case "t":
			t, err := cur.Materialize()
			if err != nil {
				return err
			}
			fmt.Fprint(out, xmltree.MarshalIndent(t))
		case "s":
			if arg == "" {
				fmt.Fprintln(out, "usage: s NAME")
				continue
			}
			next, err := cur.Child(arg)
			if err != nil {
				return err
			}
			if next == nil {
				fmt.Fprintf(out, "⊥ (no child %q)\n", arg)
				after(out)
				continue
			}
			stack = append(stack, cur)
			cur = next
			printAt(out, cur)
		default:
			fmt.Fprintf(out, "unknown command %q (? for help)\n", cmd)
		}
		switch cmd {
		case "d", "r", "f", "t", "s":
			after(out) // these touched the document (u is client-side)
		}
	}
}

func printAt(out io.Writer, e *mediator.Element) {
	name, err := e.Name()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "at <%s>\n", name)
}
