// Command mixq runs XMAS queries against XML file sources and/or
// remote LXP wrappers through the MIX mediator — or, with -connect,
// against a remote mixd mediator over VXDP, in which case the query is
// compiled server-side and only navigation crosses the wire.
//
// Sources are declared with repeated -src flags:
//
//	-src name=path.xml       a local XML document
//	-src name=lxp://host:port/uri   a remote LXP wrapper (see cmd/lxpd)
//
// Views can be declared with -view name=path.xmas and referenced by
// queries like sources. The query is read from -q (inline) or -f
// (file). By default the answer is evaluated lazily and printed in
// full; -first k explores only the first k answer children (leaving an
// explicit hole for the rest), -eager uses the materializing baseline,
// -plan prints the final algebra plan, and -stats reports source
// navigation counts.
//
// -trace records the fan-out behind every client navigation: with -i
// each command is followed by its span tree (operator pulls down to
// source navigations, with latencies); otherwise a per-operator summary
// is printed after evaluation. With -connect the session is
// fleet-traced: every command carries a trace context, the server (run
// with mixd -trace) sends back the spans it recorded serving it —
// across proxy hops and peers when clustered — and mixq stitches them
// under its own client spans, rendering ONE forest whose spans are
// node=-tagged with the fleet member that recorded them. -slow dumps
// the server's slow-navigation flight ring (with -connect; the query
// is then optional).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mix/internal/algebra"
	"mix/internal/lxp"
	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/relational"
	"mix/internal/trace"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/wrapper"
	"mix/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var srcs, views multiFlag
	flag.Var(&srcs, "src", "source declaration name=path.xml, name=lxp://host:port/uri, or name=rdb:csvdir (repeatable)")
	flag.Var(&views, "view", "view declaration name=path.xmas (repeatable)")
	connect := flag.String("connect", "", "navigate a remote mixd mediator at host:port (VXDP) instead of local sources")
	q := flag.String("q", "", "XMAS query text")
	qf := flag.String("f", "", "file containing the XMAS query")
	first := flag.Int("first", 0, "explore only the first k answer children (0 = all)")
	interactive := flag.Bool("i", false, "navigate the virtual answer interactively (d/r/u/f/t/s/q)")
	eager := flag.Bool("eager", false, "use the materializing baseline evaluator")
	plan := flag.Bool("plan", false, "print the final algebra plan")
	stats := flag.Bool("stats", false, "print per-source navigation counts")
	traceOn := flag.Bool("trace", false, "print the operator/source fan-out behind each navigation")
	slowDump := flag.Bool("slow", false, "with -connect: dump the server's slow-navigation flight ring after the query (query optional)")
	flag.Parse()

	query := *q
	if *qf != "" {
		data, err := os.ReadFile(*qf)
		if err != nil {
			fatal(err)
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" && !(*slowDump && *connect != "") {
		fmt.Fprintln(os.Stderr, "mixq: no query; use -q or -f (and see -help)")
		os.Exit(2)
	}

	if *connect != "" {
		if len(srcs) > 0 || len(views) > 0 || *eager || *plan {
			fatal(fmt.Errorf("-connect navigates the server's sources and views; -src/-view/-eager/-plan do not apply"))
		}
		if err := runRemote(*connect, query, *first, *interactive, *stats, *traceOn, *slowDump); err != nil {
			fatal(err)
		}
		return
	}
	if *slowDump {
		fatal(fmt.Errorf("-slow reads a server's flight ring; it needs -connect"))
	}

	m := mediator.New(mediator.DefaultOptions())
	var rec *trace.Recorder
	if *traceOn {
		if *eager {
			fatal(fmt.Errorf("-trace instruments the lazy engine; it does not apply to -eager"))
		}
		rec = trace.New()
		m.SetTracer(rec)
	}
	counters := map[string]*nav.CountingDoc{}
	for _, s := range srcs {
		name, loc, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("malformed -src %q (want name=location)", s))
		}
		doc, err := openSource(m, name, loc)
		if err != nil {
			fatal(err)
		}
		cd := nav.NewCountingDoc(doc)
		counters[name] = cd
		m.RegisterSource(name, cd)
	}
	for _, v := range views {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			fatal(fmt.Errorf("malformed -view %q (want name=path)", v))
		}
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := m.DefineView(name, string(text)); err != nil {
			fatal(err)
		}
	}

	if *plan {
		p, err := m.Prepare(query)
		if err != nil {
			fatal(err)
		}
		cls, culprit := algebra.Classify(p, false)
		fmt.Printf("browsability: %s", cls)
		if culprit != nil {
			fmt.Printf(" (due to %T)", culprit)
		}
		fmt.Printf("\n%s", algebra.String(p))
		return
	}

	if *interactive {
		res, err := m.Query(query)
		if err != nil {
			fatal(err)
		}
		doc := res.Document()
		var after func(io.Writer)
		if rec != nil {
			doc = trace.NewDoc(doc, trace.ClientLabel, rec)
			after = func(w io.Writer) { printForest(w, rec.Take()) }
		}
		root, err := mediator.Wrap(doc)
		if err != nil {
			fatal(err)
		}
		if err := interact(root, os.Stdin, os.Stdout, after); err != nil {
			fatal(err)
		}
		return
	}

	var answer *xmltree.Tree
	var err error
	if *eager {
		answer, err = m.QueryEager(query)
	} else {
		var res *mediator.Result
		res, err = m.Query(query)
		if err == nil {
			doc := res.Document()
			if rec != nil {
				doc = trace.NewDoc(doc, trace.ClientLabel, rec)
			}
			if *first > 0 {
				answer, err = nav.ExploreFirst(doc, *first)
			} else {
				answer, err = nav.Materialize(doc)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(xmltree.MarshalIndent(answer))

	if rec != nil {
		printSummary(os.Stderr, rec.Take())
	}
	if *stats {
		fmt.Fprintln(os.Stderr)
		for name, cd := range counters {
			fmt.Fprintf(os.Stderr, "source %-16s %s\n", name, cd.Counters.Snapshot())
		}
	}
}

// printForest renders a navigation's span forest and its
// source-navigation totals — the per-command output of -i -trace.
func printForest(out io.Writer, roots []*trace.Span) {
	if len(roots) == 0 {
		return
	}
	fmt.Fprint(out, trace.Format(roots))
	if totals := trace.SourceTotals(roots); len(totals) > 0 {
		fmt.Fprint(out, "source navigations:")
		for _, op := range []string{"d", "r", "f", "select", "root"} {
			if totals[op] > 0 {
				fmt.Fprintf(out, " %s=%d", op, totals[op])
			}
		}
		fmt.Fprintln(out)
	}
	printNodes(out, roots)
}

// printSummary renders the per-(operator, command) aggregation of a
// whole evaluation — the batch-mode output of -trace.
func printSummary(out io.Writer, roots []*trace.Span) {
	sum := trace.Summarize(roots)
	if len(sum) == 0 {
		return
	}
	fmt.Fprintln(out, "\ntrace summary (label op count total):")
	for _, s := range sum {
		fmt.Fprintf(out, "  %-28s %-6s %6d %s\n", s.Label, s.Op, s.Count, s.Total.Round(time.Microsecond))
	}
	fmt.Fprintf(out, "source navigations: %d\n", trace.SourceNavigations(roots))
	printNodes(out, roots)
}

// printNodes renders the per-node span totals of a stitched fleet
// forest ("nodes: addr1=n addr2=m", sorted); silent for purely local
// traces, whose spans carry no node tags.
func printNodes(out io.Writer, roots []*trace.Span) {
	totals := trace.NodeTotals(roots)
	names := make([]string, 0, len(totals))
	for name := range totals {
		if name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprint(out, "nodes:")
	for _, name := range names {
		fmt.Fprintf(out, " %s=%d", name, totals[name])
	}
	fmt.Fprintln(out)
}

// runRemote opens the query as a session on a mixd server and
// navigates the remote virtual answer. With traceOn the session is
// fleet-traced client-side: a local recorder roots a span per command
// and the spans the fleet returns are stitched under it, so the
// rendered forest is the single cross-node tree.
func runRemote(addr, query string, first int, interactive, stats, traceOn, slowDump bool) error {
	client, err := vxdp.Dial(addr)
	if err != nil {
		return fmt.Errorf("dialing %s: %w", addr, err)
	}
	defer client.Close()
	var rec *trace.Recorder
	if traceOn {
		rec = trace.New()
		client.SetTracer(rec)
	}
	if strings.TrimSpace(query) == "" {
		// -slow without a query: just dump the ring.
		return dumpSlow(os.Stdout, client)
	}
	if err := client.Open(query); err != nil {
		return err
	}
	if interactive {
		root, err := mediator.Wrap(client)
		if err != nil {
			return err
		}
		var after func(io.Writer)
		if traceOn {
			after = func(w io.Writer) {
				roots := rec.Take()
				if len(roots) == 0 {
					fmt.Fprintln(w, "trace: empty")
					return
				}
				if !stitched(roots) {
					fmt.Fprintln(w, "trace: client spans only (is the server running with mixd -trace?)")
				}
				printForest(w, roots)
			}
		}
		return interact(root, os.Stdin, os.Stdout, after)
	}
	var answer *xmltree.Tree
	if first > 0 {
		answer, err = nav.ExploreFirst(client, first)
	} else {
		answer, err = nav.Materialize(client)
	}
	if err != nil {
		return err
	}
	fmt.Print(xmltree.MarshalIndent(answer))
	if traceOn {
		roots := rec.Take()
		if len(roots) == 0 {
			fmt.Fprintln(os.Stderr, "\ntrace: empty")
		} else {
			if !stitched(roots) {
				fmt.Fprintln(os.Stderr, "\ntrace: client spans only (is the server running with mixd -trace?)")
			}
			printSummary(os.Stderr, roots)
		}
	}
	if slowDump {
		if err := dumpSlow(os.Stderr, client); err != nil {
			return err
		}
	}
	if stats {
		st, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\nround trips: %d\nserver: %s\n", client.RoundTrips(), st)
	}
	return nil
}

// stitched reports whether any root received server-side children — the
// signal that the fleet actually returned spans to graft.
func stitched(roots []*trace.Span) bool {
	for _, sp := range roots {
		if len(sp.Children) > 0 {
			return true
		}
	}
	return false
}

// dumpSlow renders the server's slow-navigation flight ring.
func dumpSlow(out io.Writer, client *vxdp.Client) error {
	slow, err := client.Slow()
	if err != nil {
		return fmt.Errorf("slow: %w", err)
	}
	if len(slow) == 0 {
		fmt.Fprintln(out, "slow: ring empty (server untraced, threshold unmet, or nothing slow yet)")
		return nil
	}
	fmt.Fprintf(out, "slow navigations retained: %d\n", len(slow))
	for _, sn := range slow {
		fmt.Fprintf(out, "\n#%d %s node=%s dur=%s\n", sn.Seq,
			time.UnixMilli(sn.UnixMs).UTC().Format(time.RFC3339), sn.Node, time.Duration(sn.DurNs))
		fmt.Fprint(out, trace.Format([]*trace.Span{sn.Root}))
	}
	return nil
}

// openSource interprets a source location.
func openSource(m *mediator.Mediator, name, loc string) (nav.Document, error) {
	if dir, ok := strings.CutPrefix(loc, "rdb:"); ok {
		// A directory of CSV files becomes a relational database
		// behind the Section 4 relational wrapper (n tuples per fill),
		// served through the generic buffer.
		db, err := relational.LoadCSVDir(name, dir)
		if err != nil {
			return nil, err
		}
		return bufferFor(&wrapper.Relational{DB: db, ChunkRows: 50}, name)
	}
	if rest, ok := strings.CutPrefix(loc, "lxp://"); ok {
		addr, uri, ok := strings.Cut(rest, "/")
		if !ok {
			return nil, fmt.Errorf("malformed LXP url %q (want lxp://host:port/uri)", loc)
		}
		client, err := lxp.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("dialing %s: %w", addr, err)
		}
		return bufferFor(client, uri)
	}
	if rest, ok := strings.CutPrefix(loc, "demo:"); ok {
		// Generated datasets, like mixd's: demo:kind or demo:kind:n.
		kind, nstr, _ := strings.Cut(rest, ":")
		n := 1000
		if nstr != "" {
			var err error
			if n, err = strconv.Atoi(nstr); err != nil {
				return nil, fmt.Errorf("malformed demo size %q", nstr)
			}
		}
		var t *xmltree.Tree
		switch kind {
		case "books":
			t = workload.Books(name, n, 1)
		case "homes":
			t, _ = workload.HomesSchools(n, 0, n/10+1, 1)
		case "schools":
			_, t = workload.HomesSchools(0, n, n/10+1, 1)
		default:
			return nil, fmt.Errorf("unknown demo dataset %q (books|homes|schools)", kind)
		}
		return nav.NewTreeDoc(t), nil
	}
	data, err := os.ReadFile(loc)
	if err != nil {
		return nil, err
	}
	t, err := xmltree.UnmarshalXML(string(data))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", loc, err)
	}
	return nav.NewTreeDoc(t), nil
}

func bufferFor(srv lxp.Server, uri string) (nav.Document, error) {
	// Reuse the mediator's buffered-source plumbing via buffer.New,
	// but keep the Document so the caller can wrap it in counters.
	return newBuffer(srv, uri)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixq:", err)
	os.Exit(1)
}
