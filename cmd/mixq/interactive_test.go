package main

import (
	"io"
	"strings"
	"testing"

	"mix/internal/mediator"
	"mix/internal/trace"
	"mix/internal/workload"
)

func testResult(t *testing.T) *mediator.Element {
	t.Helper()
	homes, schools := workload.HomesSchools(5, 5, 2, 3)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)
	res, err := m.Query(`
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := res.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestInteractSession(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader("d\nf\nd\nt\nu\nr\ns home\nu\nu\nbogus\n?\nq\n")
	if err := interact(testResult(t), in, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"at <answer>", "at <med_home>", "at <home>", "<addr>",
		"unknown command", "d=down",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("session output missing %q:\n%s", want, s)
		}
	}
}

func TestInteractBoundaries(t *testing.T) {
	var out strings.Builder
	// up at root, right at root, down to a leaf, select miss.
	in := strings.NewReader("u\nr\ns nosuch\nd\nd\nd\nd\nd\nq\n")
	if err := interact(testResult(t), in, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"⊥ (at the root)", "⊥ (no right sibling)", "⊥ (no child", "⊥ (leaf)"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

// TestInteractTraceHook drives the -trace setup: a traced engine with a
// trace-wrapped client document and the printForest after hook, so each
// interactive command is followed by its fan-out tree.
func TestInteractTraceHook(t *testing.T) {
	homes, schools := workload.HomesSchools(5, 5, 2, 3)
	m := mediator.New(mediator.DefaultOptions())
	rec := trace.New()
	m.SetTracer(rec)
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)
	res, err := m.Query(`
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := mediator.Wrap(trace.NewDoc(res.Document(), trace.ClientLabel, rec))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	after := func(w io.Writer) { printForest(w, rec.Take()) }
	if err := interact(root, strings.NewReader("d\nf\nq\n"), &out, after); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{trace.ClientLabel + " d", "src:", "source navigations:"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace hook output missing %q:\n%s", want, s)
		}
	}
}

func TestInteractEOF(t *testing.T) {
	var out strings.Builder
	if err := interact(testResult(t), strings.NewReader(""), &out, nil); err != nil {
		t.Fatal(err)
	}
}
