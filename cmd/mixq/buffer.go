package main

import (
	"mix/internal/buffer"
	"mix/internal/lxp"
	"mix/internal/nav"
)

// newBuffer opens the generic buffer component over an LXP session.
func newBuffer(srv lxp.Server, uri string) (nav.Document, error) {
	return buffer.New(srv, uri)
}
