// Command mixd is the MIX mediator daemon: it serves virtual mediated
// views to remote clients over VXDP (the Virtual XML Document
// Protocol), so navigation — not materialization — crosses the
// client↔mediator boundary of Fig. 1.
//
//	mixd -addr :7080 -src homesSrc=homes.xml -src schoolsSrc=schools.xml \
//	     -view homeview=homeview.xmas -max-sessions 256 -idle 2m
//	mixq -connect localhost:7080 -q '...'
//
// Sources are declared like mixq's:
//
//	-src name=path.xml                a local XML document
//	-src name=lxp://host:port/uri     a remote LXP wrapper (cmd/lxpd)
//	-src name=rdb:csvdir              a CSV-backed relational database
//	-src name=demo:books:N            a generated dataset (books|homes|schools)
//
// Each client session gets its own lazy-mediator engine over the shared
// (immutable or serialized) sources, so concurrent sessions explore
// independently. SIGINT/SIGTERM shut the daemon down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mix/internal/buffer"
	"mix/internal/lxp"
	"mix/internal/mediator"
	"mix/internal/relational"
	"mix/internal/server"
	"mix/internal/workload"
	"mix/internal/wrapper"
	"mix/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// sourceSpec registers one configured source on a per-session mediator.
// The closure shares loaded trees / databases / LXP connections across
// sessions; per-session state (buffers, TreeDocs) is created fresh.
type sourceSpec struct {
	name     string
	register func(m *mediator.Mediator) error
}

func main() {
	var srcs, views multiFlag
	addr := flag.String("addr", "127.0.0.1:7080", "listen address")
	flag.Var(&srcs, "src", "source declaration name=path.xml, name=lxp://host:port/uri, name=rdb:csvdir, or name=demo:kind:n (repeatable)")
	flag.Var(&views, "view", "view declaration name=path.xmas (repeatable)")
	maxSessions := flag.Int("max-sessions", 256, "concurrent session limit (0 = unlimited)")
	idle := flag.Duration("idle", 2*time.Minute, "evict sessions idle this long (0 = never)")
	lifetime := flag.Duration("lifetime", 0, "evict sessions this long after accept (0 = never)")
	grace := flag.Duration("grace", 5*time.Second, "drain deadline for graceful shutdown")
	flag.Parse()

	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "mixd: no sources; use -src (and see -help)")
		os.Exit(2)
	}
	specs := make([]sourceSpec, 0, len(srcs))
	for _, s := range srcs {
		name, loc, ok := strings.Cut(s, "=")
		if !ok {
			log.Fatalf("mixd: malformed -src %q (want name=location)", s)
		}
		spec, err := openSource(name, loc)
		if err != nil {
			log.Fatalf("mixd: source %s: %v", name, err)
		}
		specs = append(specs, spec)
	}
	viewTexts := map[string]string{}
	for _, v := range views {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			log.Fatalf("mixd: malformed -view %q (want name=path)", v)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("mixd: %v", err)
		}
		viewTexts[name] = string(text)
	}

	srv, err := server.New(server.Config{
		NewMediator: func() (*mediator.Mediator, error) {
			m := mediator.New(mediator.DefaultOptions())
			for _, spec := range specs {
				if err := spec.register(m); err != nil {
					return nil, fmt.Errorf("source %s: %w", spec.name, err)
				}
			}
			for name, text := range viewTexts {
				if err := m.DefineView(name, text); err != nil {
					return nil, err
				}
			}
			return m, nil
		},
		MaxSessions: *maxSessions,
		IdleTimeout: *idle,
		MaxLifetime: *lifetime,
	})
	if err != nil {
		log.Fatalf("mixd: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mixd: %v", err)
	}
	log.Printf("mixd: serving %d source(s), %d view(s) on %s (max-sessions=%d idle=%v)",
		len(specs), len(viewTexts), l.Addr(), *maxSessions, *idle)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("mixd: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("mixd: signal received; draining sessions")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("mixd: shutdown: %v (sessions force-closed)", err)
		}
		<-errc
		log.Printf("mixd: bye (%s)", srv.Stats())
	}
}

// openSource loads whatever is shareable about a source location once
// and returns a spec that registers it on per-session mediators.
func openSource(name, loc string) (sourceSpec, error) {
	fail := func(err error) (sourceSpec, error) { return sourceSpec{}, err }
	if dir, ok := strings.CutPrefix(loc, "rdb:"); ok {
		db, err := relational.LoadCSVDir(name, dir)
		if err != nil {
			return fail(err)
		}
		return sourceSpec{name: name, register: func(m *mediator.Mediator) error {
			_, err := m.RegisterLXP(name, &wrapper.Relational{DB: db, ChunkRows: 50}, name)
			return err
		}}, nil
	}
	if rest, ok := strings.CutPrefix(loc, "lxp://"); ok {
		hostport, uri, ok := strings.Cut(rest, "/")
		if !ok {
			return fail(fmt.Errorf("malformed LXP url %q (want lxp://host:port/uri)", loc))
		}
		client, err := lxp.Dial(hostport)
		if err != nil {
			return fail(fmt.Errorf("dialing %s: %w", hostport, err))
		}
		// The LXP client serializes concurrent use, so sessions share
		// the connection; each session buffers independently.
		return sourceSpec{name: name, register: func(m *mediator.Mediator) error {
			b, err := buffer.New(client, uri)
			if err != nil {
				return err
			}
			m.RegisterSource(name, b)
			return nil
		}}, nil
	}
	if rest, ok := strings.CutPrefix(loc, "demo:"); ok {
		kind, nstr, _ := strings.Cut(rest, ":")
		n := 1000
		if nstr != "" {
			var err error
			if n, err = strconv.Atoi(nstr); err != nil {
				return fail(fmt.Errorf("malformed demo size %q", nstr))
			}
		}
		var doc *xmltree.Tree
		switch kind {
		case "books":
			doc = workload.Books(name, n, 1)
		case "homes":
			doc, _ = workload.HomesSchools(n, 0, n/10+1, 1)
		case "schools":
			_, doc = workload.HomesSchools(0, n, n/10+1, 1)
		default:
			return fail(fmt.Errorf("unknown demo dataset %q (books|homes|schools)", kind))
		}
		return treeSpec(name, doc), nil
	}
	data, err := os.ReadFile(loc)
	if err != nil {
		return fail(err)
	}
	t, err := xmltree.UnmarshalXML(string(data))
	if err != nil {
		return fail(fmt.Errorf("parsing %s: %w", loc, err))
	}
	return treeSpec(name, t), nil
}

// treeSpec shares one immutable tree across sessions; every session
// gets its own TreeDoc over it.
func treeSpec(name string, t *xmltree.Tree) sourceSpec {
	return sourceSpec{name: name, register: func(m *mediator.Mediator) error {
		m.RegisterTree(name, t)
		return nil
	}}
}
