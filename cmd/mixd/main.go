// Command mixd is the MIX mediator daemon: it serves virtual mediated
// views to remote clients over VXDP (the Virtual XML Document
// Protocol), so navigation — not materialization — crosses the
// client↔mediator boundary of Fig. 1.
//
//	mixd -addr :7080 -src homesSrc=homes.xml -src schoolsSrc=schools.xml \
//	     -view homeview=homeview.xmas -max-sessions 256 -idle 2m
//	mixq -connect localhost:7080 -q '...'
//
// Sources are declared like mixq's:
//
//	-src name=path.xml                a local XML document
//	-src name=lxp://host:port/uri     a remote LXP wrapper (cmd/lxpd)
//	-src name=rdb:csvdir              a CSV-backed relational database
//	-src name=demo:books:N            a generated dataset (books|homes|schools)
//
// Each client session draws a lazy-mediator engine from a shared pool
// over the shared (immutable or serialized) sources, so concurrent
// sessions explore independently while the regions of answer documents
// they explore are shared through the cross-session region cache:
// -cache-max-bytes bounds it (whole-entry LRU eviction), -cache-off
// disables it. With the cache on, -prefetch (on by default) learns each
// view's region-to-region navigation pattern and speculatively warms
// the predicted next region before it is asked for (-prefetch-budget
// and -prefetch-confidence tune it; -prefetch=false restores the
// demand-only behavior exactly). SIGINT/SIGTERM shut the daemon down
// gracefully.
//
// Clustering: -cluster joins a sharded mediator fleet. Sessions are
// routed over a consistent-hash ring keyed by (view name, canonical
// plan fingerprint) — proxied or redirected to the owning node per
// -cluster-mode — and each node's region cache becomes the L1 of a
// two-tier cache whose L2 is the owning peer (see internal/cluster and
// the README's Clustering quick start). All fleet members must be
// configured with identical -src/-view sets, in the same order.
//
// Observability: -http addr serves /metrics (Prometheus), /healthz,
// /debug/slow (the slow-navigation flight ring; ?format=text renders
// span trees) and /debug/pprof/*; -trace enables per-session navigation
// tracing (the wire trace command, per-operator latency histograms,
// and — under -cluster — fleet tracing: trace contexts propagate across
// proxy hops and region traffic, so mixq -trace renders one stitched
// forest with node= tags); -slow-ms sets the flight-recorder threshold
// (0 retains every traced root, negative disables the ring); -log-level
// and -log-json shape the structured log on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mix/internal/cluster"
	"mix/internal/core"
	"mix/internal/lxp"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/regioncache"
	"mix/internal/relational"
	"mix/internal/server"
	"mix/internal/telemetry"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/wrapper"
	"mix/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// sourceSpec registers one configured source on a per-session mediator.
// The closure shares loaded trees / databases / LXP connections across
// sessions; per-session state (buffers, TreeDocs) is created fresh.
// counters, when non-nil, is the shared per-source counter set exposed
// on /metrics (LXP-backed sources only).
type sourceSpec struct {
	name     string
	register func(m *mediator.Mediator) error
	counters *metrics.Counters
}

func main() {
	var srcs, views multiFlag
	addr := flag.String("addr", "127.0.0.1:7080", "listen address")
	flag.Var(&srcs, "src", "source declaration name=path.xml, name=lxp://host:port/uri, name=rdb:csvdir, or name=demo:kind:n (repeatable)")
	flag.Var(&views, "view", "view declaration name=path.xmas (repeatable)")
	maxSessions := flag.Int("max-sessions", 256, "concurrent session limit (0 = unlimited)")
	idle := flag.Duration("idle", 2*time.Minute, "evict sessions idle this long (0 = never)")
	lifetime := flag.Duration("lifetime", 0, "evict sessions this long after accept (0 = never)")
	grace := flag.Duration("grace", 5*time.Second, "drain deadline for graceful shutdown")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	traceOn := flag.Bool("trace", false, "record per-session navigation traces (wire trace command, operator histograms, fleet trace propagation)")
	slowMs := flag.Int("slow-ms", 100, "retain traced roots at least this slow in the flight ring (/debug/slow, wire slow command); 0 = all, negative = off")
	slowRing := flag.Int("slow-ring", 0, "slow-navigation flight-ring capacity (0 = default)")
	cacheMax := flag.Int64("cache-max-bytes", 64<<20, "region cache budget in bytes; LRU-evicts whole entries over it (0 = unlimited)")
	cacheOff := flag.Bool("cache-off", false, "disable the cross-session region cache entirely")
	hashJoin := flag.Bool("hash-join", true, "compile equi-joins to the incremental hash join (false = always nested loops)")
	fingerprints := flag.Bool("fingerprints", true, "key equality-heavy operators by structural fingerprints instead of canonical strings (false = historical behavior)")
	wireOpt := flag.Bool("wire-opt", true, "pooled frame buffers and the lean LXP codec (false = per-frame allocation, generic encoding/json)")
	parallelJoin := flag.Bool("parallel-join", false, "derive the two inputs of multi-source joins concurrently (trades lazy exploration for latency overlap)")
	lxpBatch := flag.Int("lxp-batch", 8, "coalesce up to this many holes per LXP fill round trip (0 or 1 = single-hole fills)")
	batchSize := flag.Int("batch", core.DefaultBatchSize, "move up to this many bindings per operator pull (<=1 = scalar binding-at-a-time pipeline)")
	semanticCache := flag.Bool("semantic-cache", true, "answer named queries from subsuming cached plans via containment (false = exact fingerprint matches only)")
	prefetchOn := flag.Bool("prefetch", true, "speculatively warm each view's predicted next region as clients navigate (false = demand-only, the pre-prefetch behavior)")
	prefetchBudget := flag.Int64("prefetch-budget", server.DefaultPrefetchNavs, "navigation budget per speculative drain (0 = default)")
	prefetchConf := flag.Float64("prefetch-confidence", server.DefaultPrefetchConfidence, "minimum successor-model confidence that triggers a drain")
	clusterOn := flag.Bool("cluster", false, "join a sharded mediator fleet: route sessions over a consistent-hash ring and share explored regions with -peers")
	nodeAddr := flag.String("node", "", "advertised cluster address of this node (default: -addr); every peer must know it by exactly this string")
	peers := flag.String("peers", "", "comma-separated advertised addresses of the other fleet members (all nodes must be configured with identical -src/-view sets, in the same order)")
	clusterMode := flag.String("cluster-mode", "proxy", "what to do with sessions another node owns: proxy (forward transparently), redirect (tell the client to redial), or local (serve locally, share regions only)")
	clusterVnodes := flag.Int("cluster-vnodes", 64, "virtual nodes per member on the consistent-hash ring")
	clusterHealth := flag.Duration("cluster-health", 2*time.Second, "peer health-check (ping) interval")
	clusterFlush := flag.Duration("cluster-flush", 500*time.Millisecond, "interval between sweeps publishing locally explored regions to their owner nodes")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mixd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "mixd: no sources; use -src (and see -help)")
		os.Exit(2)
	}
	specs := make([]sourceSpec, 0, len(srcs))
	sourceCounters := map[string]*metrics.Counters{}
	for _, s := range srcs {
		name, loc, ok := strings.Cut(s, "=")
		if !ok {
			fatal("malformed -src (want name=location)", "src", s)
		}
		spec, err := openSource(name, loc)
		if err != nil {
			fatal("opening source", "source", name, "err", err.Error())
		}
		if spec.counters != nil {
			sourceCounters[spec.name] = spec.counters
		}
		specs = append(specs, spec)
	}
	viewTexts := map[string]string{}
	for _, v := range views {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			fatal("malformed -view (want name=path)", "view", v)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			fatal("reading view", "view", name, "err", err.Error())
		}
		viewTexts[name] = string(text)
	}

	mopts := mediator.DefaultOptions()
	mopts.Engine.HashJoin = *hashJoin
	mopts.Engine.Parallel = *parallelJoin
	mopts.Engine.Fingerprints = *fingerprints
	mopts.Engine.BatchSize = *batchSize
	mopts.Engine.SemanticCache = *semanticCache
	mopts.LXPBatch = *lxpBatch
	lxp.SetWireOptimizations(*wireOpt)
	vxdp.SetPooledBuffers(*wireOpt)
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mopts)
		// Cache before sources, so LXP prefetch fills publish into it.
		m.SetRegionCache(rc)
		for _, spec := range specs {
			if err := spec.register(m); err != nil {
				return nil, fmt.Errorf("source %s: %w", spec.name, err)
			}
		}
		for name, text := range viewTexts {
			if err := m.DefineView(name, text); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	options := []server.Option{
		server.WithMaxSessions(*maxSessions),
		server.WithIdleTimeout(*idle),
		server.WithMaxLifetime(*lifetime),
		server.WithLogger(logger),
		server.WithTrace(*traceOn),
		server.WithSlowNav(time.Duration(*slowMs)*time.Millisecond, *slowRing),
		server.WithSourceCounters(sourceCounters),
	}
	var rc *regioncache.Cache
	if !*cacheOff {
		rc = regioncache.New(*cacheMax)
		options = append(options, server.WithRegionCache(rc))
		if *prefetchOn {
			options = append(options,
				server.WithPrefetch(true),
				server.WithPrefetchBudget(core.PrefetchBudget{MaxNavs: *prefetchBudget}),
				server.WithPrefetchConfidence(*prefetchConf))
		}
	}
	var node *cluster.Node
	if *clusterOn {
		if rc == nil {
			fatal("clustering needs the region cache; drop -cache-off")
		}
		self := *nodeAddr
		if self == "" {
			self = *addr
		}
		mode, err := cluster.ParseMode(*clusterMode)
		if err != nil {
			fatal("parsing -cluster-mode", "err", err.Error())
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		node, err = cluster.New(cluster.Config{
			Self:           self,
			Peers:          peerList,
			Replicas:       *clusterVnodes,
			Mode:           mode,
			HealthInterval: *clusterHealth,
			FlushInterval:  *clusterFlush,
			Logger:         logger,
		}, rc)
		if err != nil {
			fatal("configuring cluster", "err", err.Error())
		}
		options = append(options, server.WithCluster(node))
		logger.Info("cluster member", "self", self, "members", len(node.Members()), "mode", string(mode))
	}
	srv, err := server.New(factory, options...)
	if err != nil {
		fatal("configuring server", "err", err.Error())
	}
	if node != nil {
		node.Start()
		defer node.Stop()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listening", "addr", *addr, "err", err.Error())
	}
	logger.Info("serving", "addr", l.Addr().String(),
		"sources", len(specs), "views", len(viewTexts),
		"max_sessions", *maxSessions, "idle", idle.String(), "trace", *traceOn)

	var hsrv *http.Server
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal("listening for http", "addr", *httpAddr, "err", err.Error())
		}
		hsrv = &http.Server{Handler: srv.Handler()}
		logger.Info("http sidecar up", "addr", hl.Addr().String())
		go func() {
			if err := hsrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				logger.Error("http sidecar", "err", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if err != nil {
			fatal("serve", "err", err.Error())
		}
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining sessions")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("shutdown expired; sessions force-closed", "err", err.Error())
		}
		if hsrv != nil {
			_ = hsrv.Shutdown(sctx)
		}
		<-errc
		logger.Info("bye", "stats", srv.Stats().String())
	}
}

// openSource loads whatever is shareable about a source location once
// and returns a spec that registers it on per-session mediators.
func openSource(name, loc string) (sourceSpec, error) {
	fail := func(err error) (sourceSpec, error) { return sourceSpec{}, err }
	if dir, ok := strings.CutPrefix(loc, "rdb:"); ok {
		db, err := relational.LoadCSVDir(name, dir)
		if err != nil {
			return fail(err)
		}
		// One counter set for the source; each session gets a fresh
		// wrapper over the shared database, counted into it.
		counters := &metrics.Counters{}
		return sourceSpec{name: name, counters: counters, register: func(m *mediator.Mediator) error {
			srv := &lxp.Counting{Inner: &wrapper.Relational{DB: db, ChunkRows: 50}, Counters: counters}
			_, err := m.RegisterLXP(name, srv, name)
			return err
		}}, nil
	}
	if rest, ok := strings.CutPrefix(loc, "lxp://"); ok {
		hostport, uri, ok := strings.Cut(rest, "/")
		if !ok {
			return fail(fmt.Errorf("malformed LXP url %q (want lxp://host:port/uri)", loc))
		}
		client, err := lxp.Dial(hostport)
		if err != nil {
			return fail(fmt.Errorf("dialing %s: %w", hostport, err))
		}
		// The LXP client serializes concurrent use, so sessions share
		// the connection (and its counters); each session buffers
		// independently (with batching and region-cache publishing
		// wired up by RegisterLXP).
		counting := &lxp.Counting{Inner: client, Counters: &metrics.Counters{}}
		return sourceSpec{name: name, counters: counting.Counters, register: func(m *mediator.Mediator) error {
			_, err := m.RegisterLXP(name, counting, uri)
			return err
		}}, nil
	}
	if rest, ok := strings.CutPrefix(loc, "demo:"); ok {
		kind, nstr, _ := strings.Cut(rest, ":")
		n := 1000
		if nstr != "" {
			var err error
			if n, err = strconv.Atoi(nstr); err != nil {
				return fail(fmt.Errorf("malformed demo size %q", nstr))
			}
		}
		var doc *xmltree.Tree
		switch kind {
		case "books":
			doc = workload.Books(name, n, 1)
		case "homes":
			doc, _ = workload.HomesSchools(n, 0, n/10+1, 1)
		case "schools":
			_, doc = workload.HomesSchools(0, n, n/10+1, 1)
		default:
			return fail(fmt.Errorf("unknown demo dataset %q (books|homes|schools)", kind))
		}
		return treeSpec(name, doc), nil
	}
	data, err := os.ReadFile(loc)
	if err != nil {
		return fail(err)
	}
	t, err := xmltree.UnmarshalXML(string(data))
	if err != nil {
		return fail(fmt.Errorf("parsing %s: %w", loc, err))
	}
	return treeSpec(name, t), nil
}

// treeSpec shares one immutable tree across sessions; every session
// gets its own TreeDoc over it.
func treeSpec(name string, t *xmltree.Tree) sourceSpec {
	return sourceSpec{name: name, register: func(m *mediator.Mediator) error {
		m.RegisterTree(name, t)
		return nil
	}}
}
