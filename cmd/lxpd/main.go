// Command lxpd serves an XML document (or a generated demo catalog)
// over the LXP protocol on TCP, so mixq — or any MIX mediator — can use
// it as a remote source:
//
//	lxpd -addr :7070 -file catalog.xml -chunk 20 -inline 64
//	lxpd -addr :7070 -demo books -n 5000
//	mixq -src amazon=lxp://localhost:7070/doc -q '...'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mix/internal/lxp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	file := flag.String("file", "", "XML document to serve")
	demo := flag.String("demo", "", "serve a generated dataset instead: books | homes | schools")
	n := flag.Int("n", 1000, "size of the generated dataset")
	chunk := flag.Int("chunk", 20, "children per fill (0 = all at once)")
	inline := flag.Int("inline", 64, "max subtree size returned inline (0 = always inline)")
	grace := flag.Duration("grace", 5*time.Second, "drain deadline for graceful shutdown")
	flag.Parse()

	var doc *xmltree.Tree
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatalf("lxpd: %v", err)
		}
		doc, err = xmltree.UnmarshalXML(string(data))
		if err != nil {
			log.Fatalf("lxpd: parsing %s: %v", *file, err)
		}
	case *demo == "books":
		doc = workload.Books("demo", *n, 1)
	case *demo == "homes":
		doc, _ = workload.HomesSchools(*n, 0, *n/10+1, 1)
	case *demo == "schools":
		_, doc = workload.HomesSchools(0, *n, *n/10+1, 1)
	default:
		fmt.Fprintln(os.Stderr, "lxpd: need -file or -demo (books|homes|schools)")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lxpd: %v", err)
	}
	log.Printf("lxpd: serving %d-node document on %s (chunk=%d inline=%d)",
		doc.Size(), l.Addr(), *chunk, *inline)
	srv := lxp.NewTCPServer(&lxp.TreeServer{Tree: doc, Chunk: *chunk, InlineLimit: *inline})

	// On SIGINT/SIGTERM: stop accepting, drain in-flight connections
	// with a deadline, exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("lxpd: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("lxpd: signal received; draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("lxpd: shutdown: %v (connections force-closed)", err)
		}
		<-errc
		log.Printf("lxpd: bye")
	}
}
