// Command lxpd serves an XML document (or a generated demo catalog)
// over the LXP protocol on TCP, so mixq — or any MIX mediator — can use
// it as a remote source:
//
//	lxpd -addr :7070 -file catalog.xml -chunk 20 -inline 64
//	lxpd -addr :7070 -demo books -n 5000
//	mixq -src amazon=lxp://localhost:7070/doc -q '...'
//
// -log-level and -log-json shape the structured log on stderr;
// -slow-ms warn-logs requests that take at least that long to serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mix/internal/lxp"
	"mix/internal/telemetry"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	file := flag.String("file", "", "XML document to serve")
	demo := flag.String("demo", "", "serve a generated dataset instead: books | homes | schools")
	n := flag.Int("n", 1000, "size of the generated dataset")
	chunk := flag.Int("chunk", 20, "children per fill (0 = all at once)")
	inline := flag.Int("inline", 64, "max subtree size returned inline (0 = always inline)")
	grace := flag.Duration("grace", 5*time.Second, "drain deadline for graceful shutdown")
	slowMs := flag.Int("slow-ms", 0, "warn-log requests that take at least this long to serve (0 = off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lxpd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var doc *xmltree.Tree
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal("reading document", "err", err.Error())
		}
		doc, err = xmltree.UnmarshalXML(string(data))
		if err != nil {
			fatal("parsing document", "file", *file, "err", err.Error())
		}
	case *demo == "books":
		doc = workload.Books("demo", *n, 1)
	case *demo == "homes":
		doc, _ = workload.HomesSchools(*n, 0, *n/10+1, 1)
	case *demo == "schools":
		_, doc = workload.HomesSchools(0, *n, *n/10+1, 1)
	default:
		fmt.Fprintln(os.Stderr, "lxpd: need -file or -demo (books|homes|schools)")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listening", "addr", *addr, "err", err.Error())
	}
	logger.Info("serving", "addr", l.Addr().String(),
		"nodes", doc.Size(), "chunk", *chunk, "inline", *inline)
	srv := lxp.NewTCPServer(&lxp.TreeServer{Tree: doc, Chunk: *chunk, InlineLimit: *inline})
	if *slowMs > 0 {
		srv.SlowThreshold = time.Duration(*slowMs) * time.Millisecond
		srv.Logger = logger
	}

	// On SIGINT/SIGTERM: stop accepting, drain in-flight connections
	// with a deadline, exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if err != nil {
			fatal("serve", "err", err.Error())
		}
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("shutdown expired; connections force-closed", "err", err.Error())
		}
		<-errc
		logger.Info("bye")
	}
}
