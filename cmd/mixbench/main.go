// Command mixbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per paper claim (E1–E10). With no flags it runs everything;
// -e selects one experiment, -md emits markdown for EXPERIMENTS.md, and
// -json writes machine-readable results (the measured tables plus
// per-experiment wall-clock ns) to a file for tracking runs over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mix/internal/experiments"
	"mix/internal/telemetry"
)

// jsonResult is one experiment in the -json output: the measured table
// (rows hold the navigation/message/byte counts) plus how long the
// whole experiment took to run.
type jsonResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"`
	Expect  string     `json:"expect"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	NsOp    int64      `json:"ns_per_op"`
	// Memory accounting for the experiment, present with -mem: heap
	// bytes/objects allocated while it ran and the GC pause time it
	// induced (runtime/metrics deltas, whole process).
	AllocBytes   uint64  `json:"alloc_bytes,omitempty"`
	AllocObjects uint64  `json:"alloc_objects,omitempty"`
	GCPauseNs    float64 `json:"gc_pause_ns,omitempty"`
}

func main() {
	id := flag.String("e", "", "run a single experiment (E1…E10)")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	mem := flag.Bool("mem", false, "report per-experiment allocation and GC-pause deltas")
	clusterOnly := flag.Bool("cluster", false, "run only the clustered fleet experiments (E15, E16)")
	semanticOnly := flag.Bool("semantic", false, "run only the semantic region cache experiment (E18)")
	persona := flag.String("persona", "", "run only the speculative prefetch experiment (E19) under this client persona (deep-drill, glance, select-heavy)")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file")
	batch := flag.Int("batch", 0, "override the batch width of the vectorized pipeline runs (0 = default, <=1 = scalar)")
	flag.Parse()

	if *batch != 0 {
		experiments.SetBatchSize(*batch)
	}

	ids := experiments.IDs()
	if *clusterOnly {
		ids = []string{"E15", "E16"}
	}
	if *semanticOnly {
		ids = []string{"E18"}
	}
	if *persona != "" {
		experiments.SetPersona(*persona)
		ids = []string{"E19"}
	}
	if *id != "" {
		ids = []string{*id}
	}
	tables := make([]experiments.Table, 0, len(ids))
	results := make([]jsonResult, 0, len(ids))
	for _, eid := range ids {
		var before telemetry.MemStats
		if *mem {
			before = telemetry.ReadMemStats()
		}
		start := time.Now()
		t, err := experiments.Run(eid)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := jsonResult{
			ID: t.ID, Title: t.Title, Claim: t.Claim, Expect: t.Expect,
			Headers: t.Headers, Rows: t.Rows, NsOp: time.Since(start).Nanoseconds(),
		}
		if *mem {
			d := telemetry.ReadMemStats().Sub(before)
			r.AllocBytes, r.AllocObjects, r.GCPauseNs = d.AllocBytes, d.AllocObjects, d.GCPauseNs
			fmt.Fprintf(os.Stderr, "mixbench: %s allocated %d B in %d objects, gc pause %.0f ns\n",
				t.ID, d.AllocBytes, d.AllocObjects, d.GCPauseNs)
		}
		tables = append(tables, t)
		results = append(results, r)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mixbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mixbench: wrote %d result(s) to %s\n", len(results), *jsonOut)
	}
}
