// Command mixbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per paper claim (E1–E10). With no flags it runs everything;
// -e selects one experiment, -md emits markdown for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"mix/internal/experiments"
)

func main() {
	id := flag.String("e", "", "run a single experiment (E1…E10)")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	flag.Parse()

	var tables []experiments.Table
	if *id != "" {
		t, err := experiments.Run(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tables = []experiments.Table{t}
	} else {
		tables = experiments.All()
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}
}
