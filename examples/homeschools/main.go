// Command homeschools runs the paper's running example (Fig. 3/4) at a
// realistic scale and contrasts the navigation-driven lazy evaluation
// with the materializing baseline: how much of the sources each one
// touches when the user only looks at the first few results.
package main

import (
	"flag"
	"fmt"
	"log"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/workload"
)

const query = `
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`

func main() {
	n := flag.Int("n", 2000, "homes and schools per source")
	k := flag.Int("k", 3, "results the user actually looks at")
	zips := flag.Int("zips", 200, "distinct zip codes (join selectivity)")
	flag.Parse()

	homes, schools := workload.HomesSchools(*n, *n, *zips, 42)

	run := func(label string, explore func(m *mediator.Mediator) error) {
		m := mediator.New(mediator.DefaultOptions())
		hd := nav.NewCountingDoc(nav.NewTreeDoc(homes))
		sd := nav.NewCountingDoc(nav.NewTreeDoc(schools))
		m.RegisterSource("homesSrc", hd)
		m.RegisterSource("schoolsSrc", sd)
		if err := explore(m); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s homes: %7d navs   schools: %7d navs\n",
			label, hd.Counters.Navigations(), sd.Counters.Navigations())
	}

	fmt.Printf("homes=%d schools=%d zips=%d, user explores first %d med_homes\n\n",
		*n, *n, *zips, *k)

	run(fmt.Sprintf("lazy, glance at %d results:", *k), func(m *mediator.Mediator) error {
		// The Web interaction pattern of Section 1: look at the first
		// few results — each result's home and its first school — and
		// stop. (Exhausting a med_home's complete school list would
		// force the groupBy to scan the whole join output, as the
		// paper's next(pb,pg) does.)
		res, err := m.Query(query)
		if err != nil {
			return err
		}
		root, err := res.Root()
		if err != nil {
			return err
		}
		seen := 0
		for mh := range root.Children() {
			if seen++; seen > *k {
				break // ranging lazily: unvisited med_homes stay underived
			}
			home, err := mh.FirstChild()
			if err != nil {
				return err
			}
			if _, err := home.Materialize(); err != nil {
				return err
			}
			school, err := home.NextSibling()
			if err != nil {
				return err
			}
			if school != nil {
				if _, err := school.Materialize(); err != nil {
					return err
				}
			}
		}
		return root.Err()
	})

	run("lazy, full answer:", func(m *mediator.Mediator) error {
		res, err := m.Query(query)
		if err != nil {
			return err
		}
		_, err = res.Materialize()
		return err
	})

	run("eager baseline (any k):", func(m *mediator.Mediator) error {
		_, err := m.QueryEager(query)
		return err
	})

	fmt.Println("\nThe lazy mediator touches only the part of each source that the")
	fmt.Println("explored results depend on; the baseline always reads everything.")
}
