// Command orgchart demonstrates the OODB-XML wrapper of Fig. 1 on the
// most extreme case for virtual views: a *cyclic* object graph, whose
// XML view is infinite. No warehousing approach can export this view;
// the navigation-driven mediator serves it trivially, because reference
// targets are holes that fill only when the client follows them.
package main

import (
	"flag"
	"fmt"
	"log"

	"mix/internal/buffer"
	"mix/internal/nav"
	"mix/internal/objectdb"
	"mix/internal/wrapper"
)

func main() {
	hops := flag.Int("hops", 8, "how many manager links to chase")
	flag.Parse()

	// A management ring: everyone has a boss, forever.
	db := objectdb.NewDB("company")
	people := []struct{ oid, name, boss string }{
		{"e1", "Ada", "e2"},
		{"e2", "Grace", "e3"},
		{"e3", "Edsger", "e1"}, // the cycle
	}
	for _, p := range people {
		db.Put(objectdb.OID(p.oid), "Employee",
			objectdb.F("name", objectdb.S(p.name)),
			objectdb.F("boss", objectdb.R(objectdb.OID(p.boss))),
		)
	}

	w := &wrapper.OODB{DB: db, ChunkObjects: 2}
	b, err := buffer.New(w, "company")
	if err != nil {
		log.Fatal(err)
	}

	// Walk: first employee, then boss of boss of boss…
	cur, err := nav.Path(b, "Employee", "Employee")
	if err != nil || cur == nil {
		log.Fatal("no employees: ", err)
	}
	for i := 0; i <= *hops; i++ {
		name, err := childText(b, cur, "name")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %d: %s\n", i, name)
		cur, err = childElem(b, cur, "boss", "Employee")
		if err != nil || cur == nil {
			log.Fatal("broken chain: ", err)
		}
	}
	fmt.Printf("\nobjects in the database: %d — objects fetched: %d\n",
		db.NumObjects(), db.Counters.Tuples.Load())
	fmt.Println("the virtual view is infinite; only the explored prefix was ever computed")
}

// childText fetches the text of a named child.
func childText(doc nav.Document, p nav.ID, name string) (string, error) {
	c, err := childOf(doc, p, name)
	if err != nil || c == nil {
		return "", fmt.Errorf("missing child %s: %w", name, err)
	}
	t, err := nav.Subtree(doc, c)
	if err != nil {
		return "", err
	}
	return t.TextContent(), nil
}

// childElem descends through the named children in sequence.
func childElem(doc nav.Document, p nav.ID, names ...string) (nav.ID, error) {
	cur := p
	for _, n := range names {
		var err error
		cur, err = childOf(doc, cur, n)
		if err != nil || cur == nil {
			return nil, err
		}
	}
	return cur, nil
}

func childOf(doc nav.Document, p nav.ID, name string) (nav.ID, error) {
	c, err := doc.Down(p)
	if err != nil || c == nil {
		return nil, err
	}
	return nav.Select(doc, c, nav.LabelIs(name), true)
}
