// Command quickstart is the smallest end-to-end MIX program: register
// two in-memory sources, run the paper's running-example XMAS query
// (Fig. 3), and navigate the *virtual* answer document — watching how
// few source navigations each client step costs.
package main

import (
	"fmt"
	"log"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/xmltree"
)

func main() {
	// Two tiny heterogeneous "sources".
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("addr", "La Jolla"), xmltree.Text("zip", "91220")),
		xmltree.Elem("home", xmltree.Text("addr", "El Cajon"), xmltree.Text("zip", "91223")),
		xmltree.Elem("home", xmltree.Text("addr", "Nowhere"), xmltree.Text("zip", "99999")),
	)
	schools := xmltree.Elem("schools",
		xmltree.Elem("school", xmltree.Text("dir", "Smith"), xmltree.Text("zip", "91220")),
		xmltree.Elem("school", xmltree.Text("dir", "Bar"), xmltree.Text("zip", "91220")),
		xmltree.Elem("school", xmltree.Text("dir", "Hart"), xmltree.Text("zip", "91223")),
	)

	m := mediator.New(mediator.DefaultOptions())
	// Counting wrappers let us watch the source navigations.
	homesDoc := nav.NewCountingDoc(nav.NewTreeDoc(homes))
	schoolsDoc := nav.NewCountingDoc(nav.NewTreeDoc(schools))
	m.RegisterSource("homesSrc", homesDoc)
	m.RegisterSource("schoolsSrc", schoolsDoc)

	// The paper's Fig. 3 query: homes with local schools, joined on zip.
	res, err := m.Query(`
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan browsability: %s\n", res.Browsability)

	navs := func() int64 {
		return homesDoc.Counters.Navigations() + schoolsDoc.Counters.Navigations()
	}
	fmt.Printf("source navigations after preparing the query: %d\n", navs())

	// The client receives a handle to the virtual answer root — still
	// no source access.
	root, err := res.Root()
	if err != nil {
		log.Fatal(err)
	}
	name, err := root.Name()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer root %q fetched with %d source navigations\n", name, navs())

	// Navigate into the first med_home: only now do sources get asked,
	// and only as far as needed.
	first, err := root.FirstChild()
	if err != nil {
		log.Fatal(err)
	}
	tree, err := first.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst result (after %d source navigations):\n%s\n",
		navs(), xmltree.MarshalIndent(tree))

	// And the rest of the answer on demand: ranging over the root's
	// children derives each med_home only when the loop reaches it.
	skip := true
	for e := range root.Children() {
		if skip {
			skip = false // the first med_home was printed above
			continue
		}
		t, err := e.Materialize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("next result:\n%s\n", xmltree.MarshalIndent(t))
	}
	if err := root.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total source navigations for the full answer: %d\n", navs())
}
