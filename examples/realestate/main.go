// Command realestate demonstrates the heterogeneous integration of
// Fig. 1: homes live in a *relational database* behind the Section 4
// relational wrapper (tuple-at-a-time cursor, n tuples per LXP fill),
// schools in an XML document — and one XMAS query joins them through
// the mediator, with per-layer cost accounting (relational tuple
// fetches, LXP fills, DOM-VXD navigations).
package main

import (
	"flag"
	"fmt"
	"log"

	"mix/internal/lxp"
	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/relational"
	"mix/internal/workload"
	"mix/internal/wrapper"
)

func main() {
	n := flag.Int("n", 500, "homes in the relational source")
	chunk := flag.Int("chunk", 25, "tuples per LXP fill")
	flag.Parse()

	// The relational source: a homes table.
	db := relational.NewDB("realestate")
	homes := db.Create("homes", "addr", "zip", "price")
	homesXML, schoolsXML := workload.HomesSchools(*n, *n/2, *n/20+1, 7)
	for _, h := range homesXML.Children {
		homes.MustInsert(
			h.Find("addr").TextContent(),
			h.Find("zip").TextContent(),
			h.Find("price").TextContent(),
		)
	}

	m := mediator.New(mediator.DefaultOptions())
	rw := lxp.NewCounting(&wrapper.Relational{DB: db, ChunkRows: *chunk})
	buf, err := m.RegisterLXP("realestate", rw, "realestate")
	if err != nil {
		log.Fatal(err)
	}
	schoolsDoc := nav.NewCountingDoc(nav.NewTreeDoc(schoolsXML))
	m.RegisterSource("schoolsSrc", schoolsDoc)

	// The integrated view: relational rows joined with XML elements.
	// The relational wrapper exposes realestate[homes[rowN[addr,zip,price]…]].
	res, err := m.Query(`
CONSTRUCT <listings>
  <listing> $R $S {$S} </listing> {$R}
</listings> {}
WHERE realestate realestate.homes._ $R AND $R zip._ $Z1
AND schoolsSrc schools.school $S AND $S zip._ $Z2
AND $Z1 = $Z2
`)
	if err != nil {
		log.Fatal(err)
	}

	// Browse the first three listings.
	root, err := res.Root()
	if err != nil {
		log.Fatal(err)
	}
	l, err := root.FirstChild()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; l != nil && i < 3; i++ {
		// Glance: the row and the first school only. (Exhausting a
		// listing's complete school list would force the groupBy to
		// scan the whole join output — the unbounded tail of the
		// paper's next(pb,pg); a glancing user never pays it.)
		rowEl, err := l.FirstChild()
		if err != nil {
			log.Fatal(err)
		}
		row, err := rowEl.Materialize()
		if err != nil {
			log.Fatal(err)
		}
		firstSchool := "none"
		if s, err := rowEl.NextSibling(); err == nil && s != nil {
			st, err := s.Materialize()
			if err != nil {
				log.Fatal(err)
			}
			firstSchool = st.Find("dir").TextContent()
		}
		fmt.Printf("listing %d: %s (zip %s, $%s) — nearest school: %s\n",
			i+1,
			row.Find("addr").TextContent(),
			row.Find("zip").TextContent(),
			row.Find("price").TextContent(),
			firstSchool)
		l, err = l.NextSibling()
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\ncosts after browsing 3 of ~%d listings:\n", *n)
	fmt.Printf("  relational tuples fetched: %5d of %d\n", db.Counters.Tuples.Load(), homes.NumRows())
	fmt.Printf("  LXP fills (chunk=%d):      %5d\n", *chunk, rw.Counters.Fills.Load())
	fmt.Printf("  LXP bytes:                 %5d\n", rw.Counters.Bytes.Load())
	fmt.Printf("  school navigations:        %5d\n", schoolsDoc.Counters.Navigations())
	fmt.Printf("  buffered open tree still has %d unexplored hole(s)\n", buf.PendingHoles())

	// Peek at the open tree: the explored part of the source view,
	// with holes for the unexplored remainder (Definition 3/4).
	snap := buf.Snapshot()
	fmt.Printf("\nexplored part of the source view: %d of %d nodes; holes: %v\n",
		snap.Size(), fullSize(db), snap.Holes())
}

func fullSize(db *relational.DB) int {
	n := 1
	for _, t := range db.TableNames() {
		tb := db.Table(t)
		n += 1 + tb.NumRows()*(1+2*len(tb.Cols))
	}
	return n
}
