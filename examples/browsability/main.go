// Command browsability demonstrates Example 1 and Definition 2 of the
// paper: the three browsability classes, both as the static classifier
// sees them and as measured source-navigation costs. It also shows the
// select(σ) upgrade: with the richer navigation command set the
// selection view becomes bounded browsable.
package main

import (
	"fmt"
	"log"

	"mix/internal/algebra"
	"mix/internal/core"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func main() {
	fmt.Println("Browsability of the three views of Example 1")
	fmt.Println("=============================================")

	views := []struct {
		name string
		plan algebra.Op
	}{
		{"q_conc  (concatenate two sources)", workload.ConcPlan("s1", "s2")},
		{"q_sigma (children with label a)", workload.SelectionPlan("s1", "a")},
		{"q_ord   (reorder by age)", workload.ReorderPlan("s3", "age._")},
	}
	for _, v := range views {
		cls, _ := algebra.Classify(v.plan, false)
		clsSel, _ := algebra.Classify(v.plan, true)
		fmt.Printf("%-36s static: %-18s with select(σ): %s\n", v.name, cls, clsSel)
	}

	fmt.Println("\nMeasured: source navigations to fetch the first answer label")
	fmt.Println("-------------------------------------------------------------")
	fmt.Printf("%10s %12s %12s %12s %14s\n", "N", "q_conc", "q_sigma", "q_ord", "q_sigma+sel")

	for _, n := range []int{100, 1_000, 10_000} {
		fmt.Printf("%10d %12d %12d %12d %14d\n", n,
			measure(workload.ConcPlan("s1", "s2"), n, core.DefaultOptions()),
			measure(workload.SelectionPlan("s1", "a"), n, core.DefaultOptions()),
			measure(workload.ReorderPlan("s3", "age._"), n, core.DefaultOptions()),
			measure(workload.SelectionPlan("s1", "a"), n,
				core.Options{JoinCache: true, PathCache: true, GroupCache: true, NativeSelect: true}),
		)
	}
	fmt.Println("\nq_conc is O(1); q_sigma scans until the first match (here the 'a'")
	fmt.Println("children are sparse, 1 in 50); q_ord must read the whole list; with")
	fmt.Println("native select(σ) the selection costs O(1) commands.")
}

// measure returns the total source navigations for d,f on the answer.
func measure(plan algebra.Op, n int, opts core.Options) int64 {
	// s1: sparse 'a' labels (1 in 50); s2: plain list; s3: people with ages.
	s1 := xmltree.Elem("r")
	for i := 0; i < n; i++ {
		label := "x"
		if i%50 == 49 {
			label = "a"
		}
		s1.Children = append(s1.Children, xmltree.Text(label, fmt.Sprintf("%d", i)))
	}
	s2 := workload.FlatList(n, "y")
	s3 := xmltree.Elem("r")
	for i := 0; i < n; i++ {
		s3.Children = append(s3.Children,
			xmltree.Elem("p", xmltree.Text("age", fmt.Sprintf("%d", (i*7919)%n))))
	}

	e := core.New(core.WithOptions(opts))
	var counters []*nav.CountingDoc
	for name, t := range map[string]*xmltree.Tree{"s1": s1, "s2": s2, "s3": s3} {
		cd := nav.NewCountingDoc(nav.NewTreeDoc(t))
		counters = append(counters, cd)
		e.Register(name, cd)
	}
	q, err := e.Compile(plan)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := nav.Labels(q.Document(), 1); err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, c := range counters {
		total += c.Counters.Navigations()
	}
	return total
}
