// Command remote demonstrates the networked mediator: a mixd server
// (internal/server) started in-process on a loopback listener, and a
// VXDP client navigating the homes⋈schools view across the wire.
//
// It contrasts the two client strategies for the same exploration —
// reading the labels of the first k answer children:
//
//   - one DOM-VXD command per message: every d/r/f costs a round trip,
//     exactly the naive remote-DOM cost model of Section 2;
//   - one batched message: the whole d,(f,r)* sequence is pipelined in
//     a single request frame, so the network cost collapses to one
//     round trip while the mediator still evaluates lazily.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
)

const query = `
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`

func main() {
	n := flag.Int("n", 500, "homes and schools per source")
	k := flag.Int("k", 8, "answer children the client looks at")
	zips := flag.Int("zips", 50, "distinct zip codes (join selectivity)")
	flag.Parse()

	homes, schools := workload.HomesSchools(*n, *n, *zips, 42)
	srv, err := server.New(func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		return m, nil
	}, server.WithRegionCache(regioncache.New(0)))
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	fmt.Printf("mixd serving on %s\n\n", l.Addr())

	// Strategy 1: one command per message.
	c1, err := vxdp.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Open(query); err != nil {
		log.Fatal(err)
	}
	labels, err := nav.Labels(c1, *k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one command per message: %d labels in %d round trips\n",
		len(labels), c1.RoundTrips())

	// Strategy 2: the same d,(f,r)* exploration as one batched message.
	c2, err := vxdp.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Open(query); err != nil {
		log.Fatal(err)
	}
	before := c2.RoundTrips()
	b := c2.NewBatch()
	ch := b.Down(b.Root())
	var fetches []vxdp.Ref
	for i := 0; i < *k; i++ {
		fetches = append(fetches, b.Fetch(ch))
		ch = b.Right(ch)
	}
	results, err := b.Run()
	if err != nil {
		log.Fatal(err)
	}
	var batched []string
	for _, f := range fetches {
		if results[f].OK {
			batched = append(batched, results[f].Label)
		}
	}
	fmt.Printf("batched message:         %d labels in %d round trip(s)\n\n",
		len(batched), c2.RoundTrips()-before)
	fmt.Printf("labels: %v\n\n", batched)

	st, err := c2.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %s\n", st)
}
