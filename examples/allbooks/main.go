// Command allbooks reproduces the introduction's motivating scenario:
// an integrated view over two bookseller catalogs that cannot be
// warehoused. The catalogs sit behind paged web wrappers speaking LXP
// through the generic buffer component, and the user browses only the
// first few hits of a broad subject query — so only a few pages are
// ever fetched from either seller.
package main

import (
	"flag"
	"fmt"
	"log"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/wrapper"
	"mix/internal/xmltree"
)

func main() {
	n := flag.Int("n", 5000, "books per catalog")
	page := flag.Int("page", 25, "items per web page")
	k := flag.Int("k", 5, "results the user looks at")
	subject := flag.String("subject", "databases", "subject to search")
	flag.Parse()

	amazon := &wrapper.Web{Name: "amazon", Catalog: workload.Books("az", *n, 1), PageSize: *page}
	bn := &wrapper.Web{Name: "bn", Catalog: workload.Books("bn", *n, 2), PageSize: *page}

	m := mediator.New(mediator.DefaultOptions())
	if _, err := m.RegisterLXP("amazon", amazon, "amazon"); err != nil {
		log.Fatal(err)
	}
	if _, err := m.RegisterLXP("bn", bn, "bn"); err != nil {
		log.Fatal(err)
	}

	// The integrated view of Section 1, as a XMAS view definition.
	if err := m.DefineView("allbooks", fmt.Sprintf(`
CONSTRUCT <allbooks> $B {$B} </allbooks> {}
WHERE amazon catalog.book $B AND $B subject._ $S AND $S = "%s"
`, *subject)); err != nil {
		log.Fatal(err)
	}

	// Note: one source per component — integrate both sellers by union
	// at the query level via two views.
	if err := m.DefineView("allbooks2", fmt.Sprintf(`
CONSTRUCT <allbooks2> $B {$B} </allbooks2> {}
WHERE bn catalog.book $B AND $B subject._ $S AND $S = "%s"
`, *subject)); err != nil {
		log.Fatal(err)
	}

	res, err := m.Query(`
CONSTRUCT <hits>
  <amazon_hits> $A {$A} </amazon_hits>
</hits> {}
WHERE allbooks allbooks.book $A
`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("catalogs: %d books each, %d per page; subject=%q; user reads %d hits\n\n",
		*n, *page, *subject, *k)

	// Browse the first k hits.
	root, err := res.Root()
	if err != nil {
		log.Fatal(err)
	}
	hits, err := root.FirstChild() // amazon_hits
	if err != nil || hits == nil {
		log.Fatalf("no hits container: %v", err)
	}
	book, err := hits.FirstChild()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; book != nil && i < *k; i++ {
		t, err := book.Materialize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hit %d: %s — $%s\n", i+1,
			t.Find("title").TextContent(), t.Find("price").TextContent())
		book, err = book.NextSibling()
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\npages fetched from amazon: %d of %d\n", amazon.Pages, (*n+*page-1)/(*page))
	fmt.Printf("pages fetched from bn:     %d of %d (never touched by this query)\n",
		bn.Pages, (*n+*page-1)/(*page))

	// Now the same through the second seller's view, to show both are live.
	res2, err := m.Query(`
CONSTRUCT <hits2> $B {$B} </hits2> {}
WHERE allbooks2 allbooks2.book $B
`)
	if err != nil {
		log.Fatal(err)
	}
	first, err := nav.ExploreFirst(res2.Document(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst bn hit:\n%s", xmltree.MarshalIndent(first.FirstChild()))
	fmt.Printf("pages fetched from bn after browsing its view: %d\n", bn.Pages)
}
