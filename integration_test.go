package mix_test

// Cross-module integration tests: randomized plan-level equivalence of
// the lazy engine against the eager reference, the fully distributed
// path (XMAS → mediator → LXP over TCP → buffer → lazy mediators), and
// failure injection across the stack.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/eager"
	"mix/internal/lxp"
	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// --- randomized plan equivalence ----------------------------------------

// planGen builds random valid algebra plans over the sources s0/s1.
type planGen struct {
	r    *rand.Rand
	next int
}

func (g *planGen) fresh() string {
	g.next++
	return fmt.Sprintf("v%d", g.next)
}

var genPaths = []string{"a", "b", "a._", "_", "(a|b)", "a*.x", "_._", "b.x"}

// gen returns a plan and its output variables.
func (g *planGen) gen(depth int) algebra.Op {
	if depth <= 0 {
		return &algebra.Source{URL: fmt.Sprintf("s%d", g.r.Intn(2)), Var: g.fresh()}
	}
	in := g.gen(depth - 1)
	vars := in.OutVars()
	pick := func() string { return vars[g.r.Intn(len(vars))] }
	switch g.r.Intn(12) {
	case 0:
		return &algebra.GetDescendants{Input: in, Parent: pick(),
			Path: pathexpr.MustParse(genPaths[g.r.Intn(len(genPaths))]), Out: g.fresh()}
	case 1:
		return &algebra.Select{Input: in, Cond: g.cond(vars)}
	case 2:
		right := g.gen(depth - 1)
		// Join needs disjoint vars; the fresh counter guarantees it.
		var cond algebra.Cond = algebra.True{}
		if g.r.Intn(2) == 0 {
			cond = algebra.Eq(algebra.V(pick()), algebra.V(right.OutVars()[g.r.Intn(len(right.OutVars()))]))
		}
		return &algebra.Join{Left: in, Right: right, Cond: cond}
	case 3:
		by := []string{}
		if g.r.Intn(2) == 0 {
			by = append(by, pick())
		}
		return &algebra.GroupBy{Input: in, By: by, Var: pick(), Out: g.fresh()}
	case 4:
		if len(vars) < 2 {
			return in
		}
		return &algebra.Concatenate{Input: in, X: vars[0], Y: vars[len(vars)-1], Out: g.fresh()}
	case 5:
		return &algebra.CreateElement{Input: in,
			Label: algebra.LabelSpec{Const: "e"}, Children: pick(), Out: g.fresh()}
	case 6:
		return &algebra.OrderBy{Input: in, Keys: []string{pick()}}
	case 7:
		keep := []string{pick()}
		return &algebra.Project{Input: in, Keep: keep}
	case 8:
		return &algebra.Distinct{Input: in}
	case 9:
		return &algebra.WrapList{Input: in, Var: pick(), Out: g.fresh()}
	case 10:
		return &algebra.Const{Input: in, Value: xmltree.Text("c", "1"), Out: g.fresh()}
	case 11:
		// Union / difference of a plan with itself is always valid.
		if g.r.Intn(2) == 0 {
			return &algebra.Union{Left: in, Right: in}
		}
		return &algebra.Difference{Left: in, Right: in}
	}
	return in
}

func (g *planGen) cond(vars []string) algebra.Cond {
	v := vars[g.r.Intn(len(vars))]
	switch g.r.Intn(4) {
	case 0:
		return algebra.Eq(algebra.V(v), algebra.Lit("1"))
	case 1:
		return &algebra.LabelMatch{Var: v, Label: "a"}
	case 2:
		return &algebra.Cmp{Op: algebra.OpLt, L: algebra.V(v), R: algebra.Lit("5")}
	default:
		return &algebra.Not{C: algebra.Eq(algebra.V(v), algebra.Lit("2"))}
	}
}

func randomSource(r *rand.Rand, depth int) *xmltree.Tree {
	labels := []string{"a", "b", "x"}
	t := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 {
		return xmltree.Leaf(fmt.Sprintf("%d", r.Intn(6)))
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		t.Children = append(t.Children, randomSource(r, depth-1))
	}
	return t
}

// TestQuickRandomPlansLazyEqualsEager is the central randomized
// equivalence property: for random plans over random sources, the lazy
// mediator tree computes the same answer as the eager reference — under
// every cache configuration.
func TestQuickRandomPlansLazyEqualsEager(t *testing.T) {
	optsList := []core.Options{
		core.DefaultOptions(),
		{},
		{JoinCache: true},
		{PathCache: true, NativeSelect: true},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &planGen{r: r}
		plan := g.gen(1 + r.Intn(3))
		if err := algebra.Validate(plan); err != nil {
			t.Logf("seed %d: generator produced invalid plan: %v", seed, err)
			return false
		}
		src0 := xmltree.Elem("r", randomSource(r, 2), randomSource(r, 2))
		src1 := xmltree.Elem("r", randomSource(r, 3))

		ev := eager.New()
		ev.Register("s0", nav.NewTreeDoc(src0))
		ev.Register("s1", nav.NewTreeDoc(src1))
		want, err := ev.Eval(plan)
		if err != nil {
			t.Logf("seed %d: eager: %v", seed, err)
			return false
		}
		for _, opts := range optsList {
			e := core.New(core.WithOptions(opts))
			e.Register("s0", nav.NewTreeDoc(src0))
			e.Register("s1", nav.NewTreeDoc(src1))
			q, err := e.Compile(plan)
			if err != nil {
				t.Logf("seed %d: compile: %v", seed, err)
				return false
			}
			got, err := q.Materialize()
			if err != nil {
				t.Logf("seed %d: lazy (%+v): %v", seed, opts, err)
				return false
			}
			if !xmltree.Equal(want, got) {
				t.Logf("seed %d (%+v): lazy ≠ eager\nplan:\n%swant: %s\ngot:  %s",
					seed, opts, algebra.String(plan), want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomPlansPartialExplorationPrefix checks that partially
// exploring the lazy answer yields a prefix of the full answer: the
// explored part equals the eager answer with the unexplored tail
// replaced by a hole.
func TestQuickRandomPlansPartialExplorationPrefix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &planGen{r: r}
		plan := g.gen(1 + r.Intn(2))
		if algebra.Validate(plan) != nil {
			return false
		}
		src0 := xmltree.Elem("r", randomSource(r, 2), randomSource(r, 2))
		src1 := xmltree.Elem("r", randomSource(r, 2))

		e := core.New()
		e.Register("s0", nav.NewTreeDoc(src0))
		e.Register("s1", nav.NewTreeDoc(src1))
		q, err := e.Compile(plan)
		if err != nil {
			return false
		}
		full, err := q.Materialize()
		if err != nil {
			return false
		}
		k := r.Intn(3)
		partial, err := nav.ExploreFirst(q.Document(), k)
		if err != nil {
			t.Logf("seed %d: partial: %v", seed, err)
			return false
		}
		// Compare the explored prefix against the full answer.
		n := len(partial.Children)
		if n > 0 && partial.Children[n-1].IsHole() {
			n--
		}
		if n > len(full.Children) {
			return false
		}
		for i := 0; i < n; i++ {
			if !xmltree.Equal(partial.Children[i], full.Children[i]) {
				t.Logf("seed %d: child %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- distributed end-to-end ----------------------------------------------

func TestDistributedMediation(t *testing.T) {
	homes, schools := workload.HomesSchools(40, 40, 8, 21)

	serve := func(doc *xmltree.Tree) (addr string, cleanup func()) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go lxp.Serve(l, &lxp.TreeServer{Tree: doc, Chunk: 5, InlineLimit: 32})
		return l.Addr().String(), func() { l.Close() }
	}
	ha, hc := serve(homes)
	defer hc()
	sa, sc := serve(schools)
	defer sc()

	m := mediator.New(mediator.DefaultOptions())
	hclient, err := lxp.Dial(ha)
	if err != nil {
		t.Fatal(err)
	}
	defer hclient.Close()
	sclient, err := lxp.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	defer sclient.Close()
	if _, err := m.RegisterLXP("homesSrc", hclient, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterLXP("schoolsSrc", sclient, "u"); err != nil {
		t.Fatal(err)
	}

	const q = `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`
	res, err := m.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same query over local tree sources.
	m2 := mediator.New(mediator.DefaultOptions())
	m2.RegisterTree("homesSrc", homes)
	m2.RegisterTree("schoolsSrc", schools)
	want, err := m2.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatal("distributed answer differs from local answer")
	}
}

func TestDistributedPartialExplorationFetchesPart(t *testing.T) {
	catalog := workload.Books("az", 400, 5)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	counting := lxp.NewCounting(&lxp.TreeServer{Tree: catalog, Chunk: 10, InlineLimit: 64})
	go lxp.Serve(l, counting)

	client, err := lxp.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// The counting wrapper sits server-side, so count at the client by
	// re-wrapping: use a local counting decorator over the client.
	cc := lxp.NewCounting(client)
	buf, err := buffer.New(cc, "u")
	if err != nil {
		t.Fatal(err)
	}
	e := core.New()
	e.Register("amazon", buf)
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "amazon", Var: "r"},
		Parent: "r", Path: pathexpr.MustParse("book"), Out: "B",
	}
	grp := &algebra.GroupBy{Input: gd, By: nil, Var: "B", Out: "BS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "hits"}, Children: "BS", Out: "A"}
	q, err := e.Compile(&algebra.TupleDestroy{Input: ans, Var: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nav.ExploreFirst(q.Document(), 3); err != nil {
		t.Fatal(err)
	}
	partial := cc.Counters.Fills.Load()
	if _, err := q.Materialize(); err != nil {
		t.Fatal(err)
	}
	full := cc.Counters.Fills.Load()
	if partial == 0 || partial >= full {
		t.Fatalf("partial exploration should fetch part of the source: partial=%d full=%d",
			partial, full)
	}
}

// --- failure injection -----------------------------------------------------

// failingServer answers a number of fills, then fails permanently.
type failingServer struct {
	inner lxp.Server
	after int
	n     int
}

func (f *failingServer) GetRoot(uri string) (string, error) { return f.inner.GetRoot(uri) }

func (f *failingServer) Fill(id string) ([]*xmltree.Tree, error) {
	f.n++
	if f.n > f.after {
		return nil, errors.New("wrapper: source went away")
	}
	return f.inner.Fill(id)
}

func TestSourceFailureSurfacesToClient(t *testing.T) {
	homes, _ := workload.HomesSchools(30, 0, 5, 3)
	for _, after := range []int{0, 1, 3, 10} {
		srv := &failingServer{
			inner: &lxp.TreeServer{Tree: homes, Chunk: 2, InlineLimit: 8},
			after: after,
		}
		buf, err := buffer.New(srv, "u")
		if err != nil {
			t.Fatal(err)
		}
		e := core.New()
		e.Register("homesSrc", buf)
		gd := &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "homesSrc", Var: "r"},
			Parent: "r", Path: pathexpr.MustParse("home"), Out: "H",
		}
		q, err := e.Compile(&algebra.Project{Input: gd, Keep: []string{"H"}})
		if err != nil {
			t.Fatal(err)
		}
		_, err = q.Materialize()
		if err == nil {
			t.Fatalf("after=%d: failure did not surface", after)
		}
		if !strings.Contains(err.Error(), "source went away") {
			t.Fatalf("after=%d: wrong error: %v", after, err)
		}
	}
}

func TestConnectionDropSurfaces(t *testing.T) {
	catalog := workload.Books("az", 100, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go lxp.Serve(l, &lxp.TreeServer{Tree: catalog, Chunk: 5, InlineLimit: 32})

	client, err := lxp.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := buffer.New(client, "u")
	if err != nil {
		t.Fatal(err)
	}
	root, err := buf.Root()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the transport mid-session.
	client.Close()
	l.Close()
	// Navigation that needs a fill must now fail (the buffered part
	// keeps working).
	if _, err := buf.Fetch(root); err != nil {
		t.Fatalf("buffered fetch should not need the wire: %v", err)
	}
	failed := false
	p, err := buf.Down(root)
	for err == nil && p != nil {
		if _, err = nav.Subtree(buf, p); err != nil {
			break
		}
		p, err = buf.Right(p)
	}
	if err != nil {
		failed = true
	}
	if !failed {
		t.Fatal("full exploration over a dead connection should fail")
	}
}

// TestConcurrentIndependentQueries runs independent queries over shared
// immutable sources from multiple goroutines (each query has its own
// lazy state; the sources are read-only).
func TestConcurrentIndependentQueries(t *testing.T) {
	homes, schools := workload.HomesSchools(30, 30, 6, 17)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)
	const q = `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`

	want, err := m.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := m.Query(q)
			if err != nil {
				done <- err
				return
			}
			got, err := res.Materialize()
			if err != nil {
				done <- err
				return
			}
			if !xmltree.Equal(got, want) {
				done <- errors.New("concurrent query answer differs")
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuickRandomPlansOverBufferedSources: the whole stack is
// transparent — evaluating random plans over chunked LXP-buffered
// sources yields exactly the answers of plain tree sources.
func TestQuickRandomPlansOverBufferedSources(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &planGen{r: r}
		plan := g.gen(1 + r.Intn(2))
		if algebra.Validate(plan) != nil {
			return false
		}
		src0 := xmltree.Elem("r", randomSource(r, 2), randomSource(r, 2))
		src1 := xmltree.Elem("r", randomSource(r, 3))

		plain := core.New()
		plain.Register("s0", nav.NewTreeDoc(src0))
		plain.Register("s1", nav.NewTreeDoc(src1))
		pq, err := plain.Compile(plan)
		if err != nil {
			return false
		}
		want, err := pq.Materialize()
		if err != nil {
			return false
		}

		buffered := core.New()
		for name, src := range map[string]*xmltree.Tree{"s0": src0, "s1": src1} {
			chunk := 1 + r.Intn(3)
			inline := 1 + r.Intn(8)
			b, err := buffer.New(&lxp.TreeServer{Tree: src, Chunk: chunk, InlineLimit: inline}, "u")
			if err != nil {
				return false
			}
			buffered.Register(name, b)
		}
		bq, err := buffered.Compile(plan)
		if err != nil {
			return false
		}
		got, err := bq.Materialize()
		if err != nil {
			t.Logf("seed %d: buffered: %v", seed, err)
			return false
		}
		if !xmltree.Equal(want, got) {
			t.Logf("seed %d: buffered ≠ plain\nplan:\n%s", seed, algebra.String(plan))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMediatorOrderByOverLXP: the ORDERBY language extension composed
// with buffered remote-style sources.
func TestMediatorOrderByOverLXP(t *testing.T) {
	homes, _ := workload.HomesSchools(40, 0, 8, 31)
	m := mediator.New(mediator.DefaultOptions())
	if _, err := m.RegisterLXP("homesSrc",
		&lxp.TreeServer{Tree: homes, Chunk: 4, InlineLimit: 16}, "u"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(`
CONSTRUCT <sorted> $H {$H} </sorted> {}
WHERE homesSrc homes.home $H AND $H price._ $P
ORDERBY $P
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Browsability != algebra.Unbrowsable {
		t.Fatalf("ORDERBY query should classify unbrowsable, got %v", res.Browsability)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != 40 {
		t.Fatalf("rows = %d", len(got.Children))
	}
	prev := ""
	for _, h := range got.Children {
		p := h.Find("price").TextContent()
		if prev != "" && algebra.Compare(prev, p) > 0 {
			t.Fatalf("not sorted: %s after %s", p, prev)
		}
		prev = p
	}
}

// TestQuickRewritePreservesSemantics: for random plans, the
// navigational-complexity rewriter must not change the answer.
func TestQuickRewritePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &planGen{r: r}
		plan := g.gen(1 + r.Intn(3))
		if algebra.Validate(plan) != nil {
			return false
		}
		rewritten := algebra.Rewrite(plan)
		if err := algebra.Validate(rewritten); err != nil {
			t.Logf("seed %d: rewritten plan invalid: %v\nbefore:\n%safter:\n%s",
				seed, err, algebra.String(plan), algebra.String(rewritten))
			return false
		}
		src0 := xmltree.Elem("r", randomSource(r, 2), randomSource(r, 2))
		src1 := xmltree.Elem("r", randomSource(r, 3))
		eval := func(p algebra.Op) (*xmltree.Tree, error) {
			ev := eager.New()
			ev.Register("s0", nav.NewTreeDoc(src0))
			ev.Register("s1", nav.NewTreeDoc(src1))
			return ev.Eval(p)
		}
		want, err := eval(plan)
		if err != nil {
			return false
		}
		got, err := eval(rewritten)
		if err != nil {
			t.Logf("seed %d: rewritten eval: %v", seed, err)
			return false
		}
		if !sameRows(want, got) {
			t.Logf("seed %d: rewrite changed semantics\nbefore:\n%safter:\n%s\nwant: %s\ngot:  %s",
				seed, algebra.String(plan), algebra.String(rewritten), want, got)
			return false
		}
		// And the lazy engine agrees on the rewritten plan.
		le := core.New()
		le.Register("s0", nav.NewTreeDoc(src0))
		le.Register("s1", nav.NewTreeDoc(src1))
		q, err := le.Compile(rewritten)
		if err != nil {
			return false
		}
		lz, err := q.Materialize()
		if err != nil {
			return false
		}
		return sameRows(got, lz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// sameRows compares two bs[…] binding trees row-by-row, with each b's
// children compared as sets of variable assignments (projection
// pushdown may reorder a binding's variable list, which is not
// observable through the algebra's map-like bindings).
func sameRows(a, b *xmltree.Tree) bool {
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	if a.Label != "bs" {
		return xmltree.Equal(a, b)
	}
	for i := range a.Children {
		if !sameAssignments(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func sameAssignments(a, b *xmltree.Tree) bool {
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	av := map[string]string{}
	for _, c := range a.Children {
		av[c.Label] = c.Canonical()
	}
	for _, c := range b.Children {
		if av[c.Label] != c.Canonical() {
			return false
		}
	}
	return true
}
