module mix

go 1.23
