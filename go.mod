module mix

go 1.22
