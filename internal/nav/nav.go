// Package nav defines DOM-VXD, the navigational interface of the MIX
// mediator (Section 2 of the paper): a minimal abstraction of the DOM
// API under which XML documents — materialized, virtual, or buffered —
// are explored with the commands
//
//	d (down)  — first child
//	r (right) — right sibling
//	f (fetch) — label of the node
//
// plus the optional select(σ) command that advances to the first
// following sibling whose label satisfies a predicate. The set NC =
// {d, r, f} is sufficient to completely explore arbitrary virtual
// documents; select(σ) changes the navigational complexity of some
// views (it makes the selection view of Example 1 bounded browsable).
//
// A Document is anything navigable this way. Node identifiers are
// opaque ID values chosen by the Document implementation; lazy
// mediators encode their association information (Appendix A) directly
// into these Skolem-style IDs.
package nav

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mix/internal/xmltree"
)

// ID identifies a node of a Document. IDs are opaque to clients; only
// the Document that issued an ID can interpret it. A nil ID is ⊥ (the
// null pointer of the paper).
type ID any

// Predicate is a sibling-selection condition σ on labels, used by the
// optional select(σ) navigation command.
type Predicate func(label string) bool

// Document is the DOM-VXD navigational interface. Implementations
// must treat IDs as stable: issuing the same command on the same ID
// must return an equivalent result (IDs need not be canonical — two
// different ID values may denote the same node).
//
// All methods return an error only for foreign or malformed IDs and
// for source/transport failures; absence of a child or sibling is
// reported with a nil ID and a nil error.
type Document interface {
	// Root returns the ID of the document's root element.
	Root() (ID, error)
	// Down returns the first child of p, or nil if p is a leaf.
	Down(p ID) (ID, error)
	// Right returns the right sibling of p, or nil if there is none.
	Right(p ID) (ID, error)
	// Fetch returns the label of p.
	Fetch(p ID) (string, error)
}

// Selector is implemented by Documents that support the select(σ)
// command natively. For Documents that do not, Select falls back to a
// right/fetch scan (see the Select helper), which is observationally
// identical but has different navigational complexity.
type Selector interface {
	// SelectRight returns the first sibling at or to the right of p
	// whose label satisfies σ, or nil if no such sibling exists.
	// Note: per the paper this starts at the sibling *after* p when
	// fromSelf is false, and at p itself when fromSelf is true.
	SelectRight(p ID, sigma Predicate, fromSelf bool) (ID, error)
}

// Wrapper is implemented by Documents that wrap another Document to
// observe or augment it (counting, tracing, region caching, …); Unwrap
// returns the wrapped document. Capability probes such as SelectorOf
// walk the wrapper chain, so wrapping never changes the navigation
// command set NC — only the innermost document does.
type Wrapper interface {
	Unwrap() Document
}

// SelectorOf is the one capability probe for the select(σ) command: it
// reports whether doc answers select(σ) as a single native command,
// unwrapping wrapper chains to ask the innermost document, and returns
// the Selector through which the command should be issued — the
// *outermost* document, so wrappers see (and bill, and trace) the
// command exactly once.
func SelectorOf(doc Document) (Selector, bool) {
	s, ok := doc.(Selector)
	if !ok {
		return nil, false
	}
	cur := doc
	for {
		w, ok := cur.(Wrapper)
		if !ok {
			break
		}
		cur = w.Unwrap()
	}
	// The innermost document decides nativeness: either through the
	// legacy NativeSelect hook (for wrappers outside this repository
	// that predate Unwrap) or by implementing Selector itself.
	if n, ok := cur.(interface{ NativeSelect() bool }); ok {
		if !n.NativeSelect() {
			return nil, false
		}
		return s, true
	}
	if _, ok := cur.(Selector); !ok {
		return nil, false
	}
	return s, true
}

// Select advances from p to the first sibling to the right whose label
// satisfies sigma, using the Document's native SelectRight when the
// SelectorOf probe grants it and an r/f scan otherwise. When fromSelf
// is true, p itself is a candidate.
func Select(d Document, p ID, sigma Predicate, fromSelf bool) (ID, error) {
	if s, ok := SelectorOf(d); ok {
		return s.SelectRight(p, sigma, fromSelf)
	}
	cur := p
	if !fromSelf {
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	for cur != nil {
		l, err := d.Fetch(cur)
		if err != nil {
			return nil, err
		}
		if sigma(l) {
			return cur, nil
		}
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return nil, nil
}

// LabelIs returns a predicate matching exactly the given label.
func LabelIs(label string) Predicate {
	return func(l string) bool { return l == label }
}

// Op names a navigation command, for traces and complexity accounting.
type Op string

// The DOM-VXD navigation commands.
const (
	OpDown   Op = "d"
	OpRight  Op = "r"
	OpFetch  Op = "f"
	OpSelect Op = "select"
	OpRoot   Op = "root"
)

// Step is one executed navigation command, for traces.
type Step struct {
	Op    Op
	Label string // result of a fetch, if Op == OpFetch
}

func (s Step) String() string {
	if s.Op == OpFetch && s.Label != "" {
		return fmt.Sprintf("f→%s", s.Label)
	}
	return string(s.Op)
}

// ErrForeignID is returned (wrapped) by Documents handed an ID they
// did not issue.
var ErrForeignID = fmt.Errorf("nav: foreign node id")

// --- Materialized tree documents -----------------------------------------

// TreeDoc is a Document over a materialized xmltree.Tree. Node IDs are
// *treeNode pointers carrying parent/position so Right is O(1).
//
// IDs are allocated once per node and cached on the parent (kids), so
// repeated navigation over the same region — the common case for the
// lazy engine's re-scans — allocates nothing after the first visit.
// The cache trades memory proportional to the visited region for
// alloc-free warm navigation; it never changes which commands are
// issued or billed.
type TreeDoc struct {
	root *treeNode

	// mu guards carving new ID chunks; chunk is the current chunk and
	// is replaced (never regrown) so issued *treeNode IDs stay valid.
	mu    sync.Mutex
	chunk []treeNode
}

type treeNode struct {
	t      *xmltree.Tree
	parent *treeNode
	idx    int // position among parent's children

	// kids caches this node's child IDs. built is an atomic
	// publication flag: kids is written before built.Store(true), and
	// readers only touch kids after built.Load() reports true, so a
	// TreeDoc shared by concurrent sessions stays race-free without a
	// per-node allocation.
	kids  []treeNode
	built atomic.Bool
}

const treeDocChunk = 64

// children returns the cached child-ID slice, carving it from the
// doc's chunk arena on first use.
func (d *TreeDoc) children(n *treeNode) []treeNode {
	if n.built.Load() {
		return n.kids
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n.built.Load() {
		return n.kids
	}
	m := len(n.t.Children)
	if cap(d.chunk)-len(d.chunk) < m {
		c := treeDocChunk
		if m > c {
			c = m
		}
		d.chunk = make([]treeNode, 0, c)
	}
	ks := d.chunk[len(d.chunk) : len(d.chunk)+m : len(d.chunk)+m]
	d.chunk = d.chunk[:len(d.chunk)+m]
	for i, c := range n.t.Children {
		ks[i].t, ks[i].parent, ks[i].idx = c, n, i
	}
	n.kids = ks
	n.built.Store(true)
	return ks
}

// NewTreeDoc returns a Document exposing t.
func NewTreeDoc(t *xmltree.Tree) *TreeDoc {
	return &TreeDoc{root: &treeNode{t: t}}
}

// Root implements Document.
func (d *TreeDoc) Root() (ID, error) { return d.root, nil }

func (d *TreeDoc) node(p ID) (*treeNode, error) {
	n, ok := p.(*treeNode)
	if !ok || n == nil {
		return nil, fmt.Errorf("%w: %T", ErrForeignID, p)
	}
	return n, nil
}

// Down implements Document.
func (d *TreeDoc) Down(p ID) (ID, error) {
	n, err := d.node(p)
	if err != nil {
		return nil, err
	}
	if len(n.t.Children) == 0 {
		return nil, nil
	}
	return &d.children(n)[0], nil
}

// Right implements Document.
func (d *TreeDoc) Right(p ID) (ID, error) {
	n, err := d.node(p)
	if err != nil {
		return nil, err
	}
	if n.parent == nil || n.idx+1 >= len(n.parent.t.Children) {
		return nil, nil
	}
	return &d.children(n.parent)[n.idx+1], nil
}

// Fetch implements Document.
func (d *TreeDoc) Fetch(p ID) (string, error) {
	n, err := d.node(p)
	if err != nil {
		return "", err
	}
	return n.t.Label, nil
}

// SelectRight implements Selector natively: a materialized source can
// answer select(σ) as a single command (the scan is local to the
// source, not a sequence of mediated navigations).
func (d *TreeDoc) SelectRight(p ID, sigma Predicate, fromSelf bool) (ID, error) {
	n, err := d.node(p)
	if err != nil {
		return nil, err
	}
	if n.parent == nil {
		// The root has no siblings; only fromSelf can match.
		if fromSelf && sigma(n.t.Label) {
			return n, nil
		}
		return nil, nil
	}
	start := n.idx
	if !fromSelf {
		start++
	}
	sibs := n.parent.t.Children
	for i := start; i < len(sibs); i++ {
		if sigma(sibs[i].Label) {
			return &d.children(n.parent)[i], nil
		}
	}
	return nil, nil
}

// Tree returns the underlying subtree of an ID issued by this
// document. It is an escape hatch for tests and eager evaluation.
func (d *TreeDoc) Tree(p ID) (*xmltree.Tree, error) {
	n, err := d.node(p)
	if err != nil {
		return nil, err
	}
	return n.t, nil
}
