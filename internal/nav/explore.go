package nav

import (
	"fmt"

	"mix/internal/xmltree"
)

// This file provides whole-document and partial exploration helpers
// built from the minimal command set NC = {d, r, f}: they are both the
// reference semantics for tests ("the explored part c(t) of a
// navigation", Definition 1) and the client drivers used by the
// experiments.

// Materialize fully explores doc depth-first using only d, r and f and
// returns the resulting tree. It is the observational equivalence
// oracle: two Documents are equivalent iff Materialize agrees. Result
// nodes are arena-allocated; the command sequence is exactly the
// per-node Fetch/Down/…/Right walk it has always been.
func Materialize(doc Document) (*xmltree.Tree, error) {
	root, err := doc.Root()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("nav: document has no root")
	}
	var m treeExplorer
	return m.materializeFrom(doc, root, 0)
}

// treeExplorer carries the allocation state of one Materialize call: an
// arena for result nodes and a shared child-collection stack.
type treeExplorer struct {
	arena   xmltree.Arena
	scratch []*xmltree.Tree
}

const maxDepth = 10_000

func (m *treeExplorer) materializeFrom(doc Document, p ID, depth int) (*xmltree.Tree, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("nav: document deeper than %d (cycle in virtual document?)", maxDepth)
	}
	label, err := doc.Fetch(p)
	if err != nil {
		return nil, err
	}
	t := m.arena.NewNode(label)
	child, err := doc.Down(p)
	if err != nil {
		return nil, err
	}
	mark := len(m.scratch)
	for child != nil {
		ct, err := m.materializeFrom(doc, child, depth+1)
		if err != nil {
			return nil, err
		}
		m.scratch = append(m.scratch, ct)
		child, err = doc.Right(child)
		if err != nil {
			return nil, err
		}
	}
	t.Children = m.arena.Children(m.scratch[mark:])
	m.scratch = m.scratch[:mark]
	return t, nil
}

// ExploreFirst explores, depth-first and left-to-right, until it has
// fully explored the first k children of the root (or the whole
// document if it has fewer), and returns the explored part with a
// trailing hole standing for the unexplored siblings. It models the
// paper's Web interaction pattern: "navigate the first few results and
// then stop".
func ExploreFirst(doc Document, k int) (*xmltree.Tree, error) {
	root, err := doc.Root()
	if err != nil {
		return nil, err
	}
	label, err := doc.Fetch(root)
	if err != nil {
		return nil, err
	}
	t := &xmltree.Tree{Label: label}
	child, err := doc.Down(root)
	if err != nil {
		return nil, err
	}
	var m treeExplorer
	for i := 0; child != nil && i < k; i++ {
		ct, err := m.materializeFrom(doc, child, 1)
		if err != nil {
			return nil, err
		}
		t.Children = append(t.Children, ct)
		child, err = doc.Right(child)
		if err != nil {
			return nil, err
		}
	}
	if child != nil {
		t.Children = append(t.Children, xmltree.Hole("unexplored"))
	}
	return t, nil
}

// Labels fetches the labels of the first k children of the root by a
// d,(f,r)* scan, the navigation c = d,f,r,f,… of Example 1. It stops
// early when the document runs out of children.
func Labels(doc Document, k int) ([]string, error) {
	root, err := doc.Root()
	if err != nil {
		return nil, err
	}
	p, err := doc.Down(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for p != nil && len(out) < k {
		l, err := doc.Fetch(p)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
		p, err = doc.Right(p)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Path navigates from the root along a sequence of child labels,
// returning the first node reached whose label matches each component
// in turn (a d,select-style descent). It returns nil if the path does
// not exist.
func Path(doc Document, labels ...string) (ID, error) {
	p, err := doc.Root()
	if err != nil {
		return nil, err
	}
	for _, want := range labels {
		p, err = doc.Down(p)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, nil
		}
		p, err = Select(doc, p, LabelIs(want), true)
		if err != nil || p == nil {
			return p, err
		}
	}
	return p, nil
}

// Subtree materializes the subtree rooted at p.
func Subtree(doc Document, p ID) (*xmltree.Tree, error) {
	var m treeExplorer
	return m.materializeFrom(doc, p, 0)
}

// Equivalent reports whether two documents materialize to structurally
// equal trees. It is used pervasively by the lazy≡eager tests.
func Equivalent(a, b Document) (bool, error) {
	ta, err := Materialize(a)
	if err != nil {
		return false, fmt.Errorf("materializing first document: %w", err)
	}
	tb, err := Materialize(b)
	if err != nil {
		return false, fmt.Errorf("materializing second document: %w", err)
	}
	return xmltree.Equal(ta, tb), nil
}
