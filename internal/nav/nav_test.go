package nav

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mix/internal/metrics"
	"mix/internal/xmltree"
)

func sampleTree() *xmltree.Tree {
	return xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("addr", "La Jolla"), xmltree.Text("zip", "91220")),
		xmltree.Elem("home", xmltree.Text("addr", "El Cajon"), xmltree.Text("zip", "91223")),
	)
}

func TestTreeDocBasicNavigation(t *testing.T) {
	doc := NewTreeDoc(sampleTree())
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := doc.Fetch(root); l != "homes" {
		t.Fatalf("root label %q", l)
	}
	c1, err := doc.Down(root)
	if err != nil || c1 == nil {
		t.Fatalf("Down: %v %v", c1, err)
	}
	if l, _ := doc.Fetch(c1); l != "home" {
		t.Fatalf("first child %q", l)
	}
	c2, err := doc.Right(c1)
	if err != nil || c2 == nil {
		t.Fatalf("Right: %v %v", c2, err)
	}
	if r3, _ := doc.Right(c2); r3 != nil {
		t.Fatal("no third sibling expected")
	}
	addr, _ := doc.Down(c1)
	leaf, _ := doc.Down(addr)
	if l, _ := doc.Fetch(leaf); l != "La Jolla" {
		t.Fatalf("leaf label %q", l)
	}
	if d, _ := doc.Down(leaf); d != nil {
		t.Fatal("down on leaf must be nil")
	}
}

func TestTreeDocForeignID(t *testing.T) {
	doc := NewTreeDoc(sampleTree())
	if _, err := doc.Down("bogus"); err == nil {
		t.Fatal("expected foreign id error")
	}
	if _, err := doc.Fetch(nil); err == nil {
		t.Fatal("expected foreign id error for nil")
	}
	if _, err := doc.Right(42); err == nil {
		t.Fatal("expected foreign id error")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	orig := sampleTree()
	got, err := Materialize(NewTreeDoc(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(orig, got) {
		t.Fatalf("materialize mismatch: %v vs %v", orig, got)
	}
}

func TestQuickMaterializeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 4)
		got, err := Materialize(NewTreeDoc(tr))
		return err == nil && xmltree.Equal(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(r *rand.Rand, depth int) *xmltree.Tree {
	labels := []string{"a", "b", "home", "zip"}
	t := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 || r.Intn(3) == 0 {
		return t
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		t.Children = append(t.Children, randomTree(r, depth-1))
	}
	return t
}

func TestExploreFirst(t *testing.T) {
	doc := NewTreeDoc(sampleTree())
	got, err := ExploreFirst(doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != 2 {
		t.Fatalf("want explored child + hole, got %v", got)
	}
	if !got.Children[1].IsHole() {
		t.Fatalf("want trailing hole, got %v", got.Children[1])
	}
	if got.Children[0].Find("addr").TextContent() != "La Jolla" {
		t.Fatalf("explored part wrong: %v", got.Children[0])
	}

	all, err := ExploreFirst(doc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if all.IsOpen() {
		t.Fatalf("k beyond size must be closed: %v", all)
	}
	if !xmltree.Equal(all, sampleTree()) {
		t.Fatalf("full exploration mismatch")
	}
}

func TestLabels(t *testing.T) {
	doc := NewTreeDoc(xmltree.Elem("r", xmltree.Leaf("a"), xmltree.Leaf("b"), xmltree.Leaf("c")))
	got, err := Labels(doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Labels = %v", got)
	}
	got, _ = Labels(doc, 99)
	if len(got) != 3 {
		t.Fatalf("Labels overrun = %v", got)
	}
}

func TestPath(t *testing.T) {
	doc := NewTreeDoc(sampleTree())
	p, err := Path(doc, "home", "zip")
	if err != nil || p == nil {
		t.Fatalf("Path: %v %v", p, err)
	}
	sub, err := Subtree(doc, p)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TextContent() != "91220" {
		t.Fatalf("Path landed on %v", sub)
	}
	if p, _ := Path(doc, "home", "nope"); p != nil {
		t.Fatal("missing path should be nil")
	}
	if p, _ := Path(doc, "school"); p != nil {
		t.Fatal("missing first component should be nil")
	}
}

func TestSelectFallbackAndNative(t *testing.T) {
	doc := NewTreeDoc(xmltree.Elem("r",
		xmltree.Leaf("a"), xmltree.Leaf("b"), xmltree.Leaf("a"), xmltree.Leaf("c")))
	root, _ := doc.Root()
	first, _ := doc.Down(root)

	// fromSelf=true finds the current node when it matches.
	p, err := Select(doc, first, LabelIs("a"), true)
	if err != nil || p == nil {
		t.Fatalf("select fromSelf: %v %v", p, err)
	}
	// fromSelf=false skips it and finds the later "a".
	p2, err := Select(doc, first, LabelIs("a"), false)
	if err != nil || p2 == nil {
		t.Fatalf("select: %v %v", p2, err)
	}
	if l, _ := doc.Fetch(p2); l != "a" {
		t.Fatalf("selected %q", l)
	}
	if same, _ := Select(doc, p2, LabelIs("a"), false); same != nil {
		t.Fatal("no further a expected")
	}
	if none, _ := Select(doc, first, LabelIs("zzz"), true); none != nil {
		t.Fatal("no match expected")
	}
}

func TestCountingDoc(t *testing.T) {
	cd := NewCountingDoc(NewTreeDoc(sampleTree()))
	if _, err := Materialize(cd); err != nil {
		t.Fatal(err)
	}
	s := cd.Counters.Snapshot()
	// 11 nodes: 11 fetches, 11 downs (one per node), right called once per child.
	if s.Fetch != 11 {
		t.Fatalf("Fetch = %d, want 11", s.Fetch)
	}
	if s.Down != 11 {
		t.Fatalf("Down = %d, want 11", s.Down)
	}
	if s.Root != 1 {
		t.Fatalf("Root = %d", s.Root)
	}
	if s.Navigations() != s.Down+s.Right+s.Fetch+s.Select+s.Root {
		t.Fatal("Navigations arithmetic")
	}
	before := cd.Counters.Snapshot()
	if _, err := Labels(cd, 1); err != nil {
		t.Fatal(err)
	}
	delta := cd.Counters.Snapshot().Sub(before)
	// root + down + fetch + trailing right = 4 commands for the first label.
	if delta.Navigations() != 4 {
		t.Fatalf("window delta = %v", delta)
	}
}

// noSelect hides a Document's native Selector implementation, modeling
// a source whose command set is only NC = {d, r, f}.
type noSelect struct{ d Document }

func (n noSelect) Root() (ID, error)          { return n.d.Root() }
func (n noSelect) Down(p ID) (ID, error)      { return n.d.Down(p) }
func (n noSelect) Right(p ID) (ID, error)     { return n.d.Right(p) }
func (n noSelect) Fetch(p ID) (string, error) { return n.d.Fetch(p) }

func TestCountingSelectScanBilling(t *testing.T) {
	// Without native Selector support, select(σ) is billed as r/f hops.
	cd := NewCountingDoc(noSelect{d: NewTreeDoc(xmltree.Elem("r",
		xmltree.Leaf("x"), xmltree.Leaf("x"), xmltree.Leaf("a")))})
	root, _ := cd.Root()
	first, _ := cd.Down(root)
	cd.Counters.Reset()
	p, err := cd.SelectRight(first, LabelIs("a"), true)
	if err != nil || p == nil {
		t.Fatalf("select: %v %v", p, err)
	}
	s := cd.Counters.Snapshot()
	if s.Select != 0 {
		t.Fatal("hidden selector; should be billed as scan")
	}
	if s.Fetch != 3 || s.Right != 2 {
		t.Fatalf("scan billing f=%d r=%d, want 3/2", s.Fetch, s.Right)
	}
}

func TestSelectorOfProbes(t *testing.T) {
	tree := NewTreeDoc(xmltree.Elem("r", xmltree.Leaf("a")))
	if s, ok := SelectorOf(tree); !ok || s == nil {
		t.Fatal("TreeDoc should answer select natively")
	}
	if _, ok := SelectorOf(noSelect{d: tree}); ok {
		t.Fatal("noSelect hides the selector")
	}
	// Wrappers forward the question instead of answering it themselves.
	if s, ok := SelectorOf(NewCountingDoc(tree)); !ok || s == nil {
		t.Fatal("CountingDoc over a native selector should stay native")
	}
	if _, ok := SelectorOf(NewCountingDoc(noSelect{d: tree})); ok {
		t.Fatal("CountingDoc over a non-native doc should not report native")
	}
}

// TestCountingNestedWrapperSelectBilling pins the wrapper-of-wrapper
// case: the outer CountingDoc sees an inner document that *implements*
// Selector (the inner CountingDoc) but does not answer select natively,
// so the scan must be billed hop by hop at both boundaries rather than
// as one select command.
func TestCountingNestedWrapperSelectBilling(t *testing.T) {
	inner := NewCountingDoc(noSelect{d: NewTreeDoc(xmltree.Elem("r",
		xmltree.Leaf("x"), xmltree.Leaf("x"), xmltree.Leaf("a")))})
	outer := &CountingDoc{Doc: inner, Counters: &metrics.Counters{}}
	root, _ := outer.Root()
	first, _ := outer.Down(root)
	outer.Counters.Reset()
	inner.Counters.Reset()
	p, err := outer.SelectRight(first, LabelIs("a"), true)
	if err != nil || p == nil {
		t.Fatalf("select: %v %v", p, err)
	}
	for name, s := range map[string]metrics.Snapshot{
		"outer": outer.Counters.Snapshot(), "inner": inner.Counters.Snapshot(),
	} {
		if s.Select != 0 {
			t.Fatalf("%s billed a native select through a non-native chain", name)
		}
		if s.Fetch != 3 || s.Right != 2 {
			t.Fatalf("%s scan billing f=%d r=%d, want 3/2", name, s.Fetch, s.Right)
		}
	}
}

func TestTraceDoc(t *testing.T) {
	td := NewTraceDoc(NewTreeDoc(xmltree.Elem("r", xmltree.Leaf("a"))))
	root, _ := td.Root()
	c, _ := td.Down(root)
	if _, err := td.Fetch(c); err != nil {
		t.Fatal(err)
	}
	steps := td.Steps()
	var ops []string
	for _, s := range steps {
		ops = append(ops, s.String())
	}
	joined := strings.Join(ops, " ")
	if joined != "root d f→a" {
		t.Fatalf("trace = %q", joined)
	}
	td.ResetTrace()
	if len(td.Steps()) != 0 {
		t.Fatal("ResetTrace")
	}
}

func TestEquivalent(t *testing.T) {
	a := NewTreeDoc(sampleTree())
	b := NewTreeDoc(sampleTree())
	eq, err := Equivalent(a, b)
	if err != nil || !eq {
		t.Fatalf("Equivalent: %v %v", eq, err)
	}
	c := NewTreeDoc(xmltree.Elem("other"))
	eq, err = Equivalent(a, c)
	if err != nil || eq {
		t.Fatalf("Equivalent should be false: %v %v", eq, err)
	}
}

func TestSelectGenericScanPath(t *testing.T) {
	// nav.Select over a Document without native Selector support takes
	// the r/f scan path.
	doc := noSelect{d: NewTreeDoc(xmltree.Elem("r",
		xmltree.Leaf("x"), xmltree.Leaf("a"), xmltree.Leaf("x"), xmltree.Leaf("a")))}
	root, _ := doc.Root()
	first, _ := doc.Down(root)
	p, err := Select(doc, first, LabelIs("a"), true)
	if err != nil || p == nil {
		t.Fatalf("scan select: %v %v", p, err)
	}
	if l, _ := doc.Fetch(p); l != "a" {
		t.Fatalf("selected %q", l)
	}
	p2, err := Select(doc, p, LabelIs("a"), false)
	if err != nil || p2 == nil {
		t.Fatalf("second select: %v %v", p2, err)
	}
	if none, _ := Select(doc, p2, LabelIs("zzz"), false); none != nil {
		t.Fatal("miss should be nil")
	}
}

func TestTreeDocSelectRightAtRoot(t *testing.T) {
	doc := NewTreeDoc(xmltree.Elem("r"))
	root, _ := doc.Root()
	p, err := doc.SelectRight(root, LabelIs("r"), true)
	if err != nil || p == nil {
		t.Fatalf("root fromSelf: %v %v", p, err)
	}
	p, err = doc.SelectRight(root, LabelIs("r"), false)
	if err != nil || p != nil {
		t.Fatalf("root has no siblings: %v %v", p, err)
	}
	if _, err := doc.SelectRight("bogus", LabelIs("r"), true); err == nil {
		t.Fatal("foreign id should error")
	}
}

func TestTreeDocTreeAccessor(t *testing.T) {
	orig := sampleTree()
	doc := NewTreeDoc(orig)
	root, _ := doc.Root()
	got, err := doc.Tree(root)
	if err != nil || got != orig {
		t.Fatalf("Tree accessor: %v %v", got, err)
	}
	if _, err := doc.Tree(42); err == nil {
		t.Fatal("foreign id should error")
	}
}

// cyclicDoc is a pathological virtual document whose every node has a
// child — an infinite tree. Materialize must detect it.
type cyclicDoc struct{}

func (cyclicDoc) Root() (ID, error)        { return 0, nil }
func (cyclicDoc) Down(p ID) (ID, error)    { return p.(int) + 1, nil }
func (cyclicDoc) Right(ID) (ID, error)     { return nil, nil }
func (cyclicDoc) Fetch(ID) (string, error) { return "n", nil }

func TestMaterializeDepthGuard(t *testing.T) {
	if _, err := Materialize(cyclicDoc{}); err == nil {
		t.Fatal("unbounded document must be rejected")
	}
	if _, err := ExploreFirst(cyclicDoc{}, 1); err == nil {
		t.Fatal("unbounded document must be rejected in ExploreFirst")
	}
}

func TestCountingSelectNativePath(t *testing.T) {
	cd := NewCountingDoc(NewTreeDoc(xmltree.Elem("r", xmltree.Leaf("x"), xmltree.Leaf("a"))))
	root, _ := cd.Root()
	first, _ := cd.Down(root)
	cd.Counters.Reset()
	p, err := Select(cd, first, LabelIs("a"), true)
	if err != nil || p == nil {
		t.Fatalf("native select: %v %v", p, err)
	}
	if cd.Counters.Select.Load() != 1 {
		t.Fatalf("native select count = %d", cd.Counters.Select.Load())
	}
}
