package nav

import (
	"sync"

	"mix/internal/metrics"
)

// CountingDoc wraps a Document and counts every navigation command
// answered by it. Placing a CountingDoc at a source boundary measures
// exactly the "source navigations" of the paper's navigational-
// complexity definition; placing one in front of a lazy mediator
// measures client navigations.
type CountingDoc struct {
	Doc      Document
	Counters *metrics.Counters
}

// NewCountingDoc wraps doc with fresh counters.
func NewCountingDoc(doc Document) *CountingDoc {
	return &CountingDoc{Doc: doc, Counters: &metrics.Counters{}}
}

// Root implements Document.
func (c *CountingDoc) Root() (ID, error) {
	c.Counters.Root.Add(1)
	return c.Doc.Root()
}

// Down implements Document.
func (c *CountingDoc) Down(p ID) (ID, error) {
	c.Counters.Down.Add(1)
	return c.Doc.Down(p)
}

// Right implements Document.
func (c *CountingDoc) Right(p ID) (ID, error) {
	c.Counters.Right.Add(1)
	return c.Doc.Right(p)
}

// Fetch implements Document.
func (c *CountingDoc) Fetch(p ID) (string, error) {
	c.Counters.Fetch.Add(1)
	return c.Doc.Fetch(p)
}

// Unwrap exposes the wrapped document to capability probes
// (SelectorOf): counting does not change the navigation command set.
func (c *CountingDoc) Unwrap() Document { return c.Doc }

// SelectRight bills a single native select command iff the wrapped
// document answers select(σ) natively (the SelectorOf probe). Otherwise
// it falls back to the generic scan, whose individual r/f commands are
// counted instead — precisely the complexity difference Section 2
// attributes to extending NC.
func (c *CountingDoc) SelectRight(p ID, sigma Predicate, fromSelf bool) (ID, error) {
	if s, ok := SelectorOf(c.Doc); ok {
		c.Counters.Select.Add(1)
		return s.SelectRight(p, sigma, fromSelf)
	}
	// Generic scan over the *counting* document so each hop is billed.
	cur := p
	if !fromSelf {
		next, err := c.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	for cur != nil {
		l, err := c.Fetch(cur)
		if err != nil {
			return nil, err
		}
		if sigma(l) {
			return cur, nil
		}
		next, err := c.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return nil, nil
}

// TraceDoc wraps a Document and records the sequence of commands
// answered, for debugging and for asserting exact navigation sequences
// in tests (e.g. that qconc mirrors client navigations 1:1).
type TraceDoc struct {
	Doc Document

	mu    sync.Mutex
	steps []Step
}

// NewTraceDoc wraps doc with an empty trace.
func NewTraceDoc(doc Document) *TraceDoc { return &TraceDoc{Doc: doc} }

// Unwrap exposes the wrapped document to capability probes.
func (t *TraceDoc) Unwrap() Document { return t.Doc }

func (t *TraceDoc) record(s Step) {
	t.mu.Lock()
	t.steps = append(t.steps, s)
	t.mu.Unlock()
}

// Steps returns a copy of the recorded command sequence.
func (t *TraceDoc) Steps() []Step {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Step, len(t.steps))
	copy(out, t.steps)
	return out
}

// ResetTrace clears the recorded command sequence.
func (t *TraceDoc) ResetTrace() {
	t.mu.Lock()
	t.steps = nil
	t.mu.Unlock()
}

// Root implements Document.
func (t *TraceDoc) Root() (ID, error) {
	t.record(Step{Op: OpRoot})
	return t.Doc.Root()
}

// Down implements Document.
func (t *TraceDoc) Down(p ID) (ID, error) {
	t.record(Step{Op: OpDown})
	return t.Doc.Down(p)
}

// Right implements Document.
func (t *TraceDoc) Right(p ID) (ID, error) {
	t.record(Step{Op: OpRight})
	return t.Doc.Right(p)
}

// Fetch implements Document.
func (t *TraceDoc) Fetch(p ID) (string, error) {
	l, err := t.Doc.Fetch(p)
	t.record(Step{Op: OpFetch, Label: l})
	return l, err
}
