package experiments

import (
	"fmt"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/eager"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/relational"
	"mix/internal/workload"
	"mix/internal/wrapper"
	"mix/internal/xmltree"
)

// --- shared measurement helpers ----------------------------------------

// lazyRun compiles plan over tree sources and returns the compiled
// query plus per-source counters.
func lazyRun(opts core.Options, srcs map[string]*xmltree.Tree, plan algebra.Op) (*core.Query, map[string]*nav.CountingDoc) {
	e := core.New(core.WithOptions(opts))
	counters := map[string]*nav.CountingDoc{}
	for name, t := range srcs {
		cd := nav.NewCountingDoc(nav.NewTreeDoc(t))
		counters[name] = cd
		e.Register(name, cd)
	}
	q, err := e.Compile(plan)
	if err != nil {
		panic(fmt.Sprintf("experiments: compile: %v", err))
	}
	return q, counters
}

func totalNavs(counters map[string]*nav.CountingDoc) int64 {
	var n int64
	for _, c := range counters {
		n += c.Counters.Navigations()
	}
	return n
}

// firstLabelCost measures the source navigations needed for the client
// navigation d,f on the answer root (the first-result probe of
// Example 1).
func firstLabelCost(opts core.Options, srcs map[string]*xmltree.Tree, plan algebra.Op) int64 {
	q, counters := lazyRun(opts, srcs, plan)
	if _, err := nav.Labels(q.Document(), 1); err != nil {
		panic(err)
	}
	return totalNavs(counters)
}

// e1Sources builds the three Example 1 sources at size n: s1 with
// sparse 'a' labels (1 in 50), s2 a plain list, s3 people with ages.
func e1Sources(n int) map[string]*xmltree.Tree {
	s1 := xmltree.Elem("r")
	for i := 0; i < n; i++ {
		label := "x"
		if i%50 == 49 {
			label = "a"
		}
		s1.Children = append(s1.Children, xmltree.Text(label, fmt.Sprintf("%d", i)))
	}
	s3 := xmltree.Elem("r")
	for i := 0; i < n; i++ {
		s3.Children = append(s3.Children,
			xmltree.Elem("p", xmltree.Text("age", fmt.Sprintf("%d", (i*7919)%n))))
	}
	return map[string]*xmltree.Tree{
		"s1": s1,
		"s2": workload.FlatList(n, "y"),
		"s3": s3,
	}
}

// E1Browsability measures the three browsability classes of Example 1:
// source navigations required to answer the client navigation d,f on
// each view, as the source size grows.
func E1Browsability() Table {
	t := Table{
		ID:    "E1",
		Title: "Browsability classes (Example 1, Definition 2)",
		Claim: "q_conc is bounded browsable (O(1) source navs per client nav); " +
			"the selection q_sigma is unbounded browsable (cost depends on the data, " +
			"here the first match sits 50 elements in); reordering is unbrowsable " +
			"(the whole list must be read before the first answer).",
		Expect:  "q_conc flat; q_sigma flat but data-dependent (≈ first-match position); q_ord grows linearly with N.",
		Headers: []string{"N", "q_conc navs", "q_sigma navs", "q_ord navs", "static class (conc/sigma/ord)"},
	}
	classes := func() string {
		c1, _ := algebra.Classify(workload.ConcPlan("s1", "s2"), false)
		c2, _ := algebra.Classify(workload.SelectionPlan("s1", "a"), false)
		c3, _ := algebra.Classify(workload.ReorderPlan("s3", "age._"), false)
		return fmt.Sprintf("%s / %s / %s", c1, c2, c3)
	}()
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		srcs := e1Sources(n)
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)),
			itoa(firstLabelCost(core.DefaultOptions(), srcs, workload.ConcPlan("s1", "s2"))),
			itoa(firstLabelCost(core.DefaultOptions(), srcs, workload.SelectionPlan("s1", "a"))),
			itoa(firstLabelCost(core.DefaultOptions(), srcs, workload.ReorderPlan("s3", "age._"))),
			classes,
		})
	}
	return t
}

// glance navigates the first k med_homes superficially (home + first
// school), the Web interaction pattern of Section 1.
func glance(doc nav.Document, k int) error {
	root, err := doc.Root()
	if err != nil {
		return err
	}
	mh, err := doc.Down(root)
	if err != nil {
		return err
	}
	for i := 0; mh != nil && i < k; i++ {
		home, err := doc.Down(mh)
		if err != nil {
			return err
		}
		if home != nil {
			if _, err := nav.Subtree(doc, home); err != nil {
				return err
			}
			school, err := doc.Right(home)
			if err != nil {
				return err
			}
			if school != nil {
				if _, err := nav.Subtree(doc, school); err != nil {
					return err
				}
			}
		}
		mh, err = doc.Right(mh)
		if err != nil {
			return err
		}
	}
	return nil
}

// E2LazyVsEager compares the navigation-driven evaluation against the
// materializing baseline on the running example, for a user who
// glances at the first k results versus one who reads everything.
func E2LazyVsEager() Table {
	t := Table{
		ID:    "E2",
		Title: "Lazy vs. materializing evaluation (Section 1)",
		Claim: "Current mediators materialize the full query result; in Web scenarios " +
			"where the user navigates only the first few results, demand-driven " +
			"evaluation must touch only the needed part of the sources.",
		Expect: "with a fixed inner source, the lazy glance stays ≈ flat as the homes " +
			"source grows (only the first few homes and one inner scan are touched); " +
			"eager grows linearly with N regardless of k.",
		Headers: []string{"N homes", "lazy glance k=3", "lazy full", "eager (any k)"},
	}
	const schoolsN, zips = 300, 30
	for _, n := range []int{500, 2_000, 5_000} {
		homes, schools := workload.HomesSchools(n, schoolsN, zips, 42)
		srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}

		q, counters := lazyRun(core.DefaultOptions(), srcs, workload.HomesSchoolsPlan())
		if err := glance(q.Document(), 3); err != nil {
			panic(err)
		}
		lazyGlance := totalNavs(counters)

		q2, counters2 := lazyRun(core.DefaultOptions(), srcs, workload.HomesSchoolsPlan())
		if _, err := q2.Materialize(); err != nil {
			panic(err)
		}
		lazyFull := totalNavs(counters2)

		ev := eager.New()
		ch := nav.NewCountingDoc(nav.NewTreeDoc(homes))
		cs := nav.NewCountingDoc(nav.NewTreeDoc(schools))
		ev.Register("homesSrc", ch)
		ev.Register("schoolsSrc", cs)
		if _, err := ev.Eval(workload.HomesSchoolsPlan()); err != nil {
			panic(err)
		}
		eagerCost := ch.Counters.Navigations() + cs.Counters.Navigations()

		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(lazyGlance), itoa(lazyFull), itoa(eagerCost),
		})
	}
	return t
}

// E3SelectCommand measures the effect of extending NC with select(σ):
// the label-selection view becomes bounded browsable.
func E3SelectCommand() Table {
	t := Table{
		ID:    "E3",
		Title: "The select(σ) navigation command (Section 2)",
		Claim: "If NC includes the sibling selection select(σ), the selection view of " +
			"Example 1 becomes bounded browsable: one source command suffices to " +
			"retrieve the next child satisfying σ.",
		Expect: "without select(σ) the cost of reading all matches ≈ N (the scan is " +
			"mediated command by command); with it, ≈ number of matches.",
		Headers: []string{"N", "matches", "navs NC={d,r,f}", "navs NC+select", "select cmds"},
	}
	for _, n := range []int{500, 5_000, 50_000} {
		srcs := e1Sources(n)
		matches := srcs["s1"].CountLabel("a")
		plan := workload.SelectionPlan("s1", "a")

		q, counters := lazyRun(core.DefaultOptions(), srcs, plan)
		if _, err := q.Materialize(); err != nil {
			panic(err)
		}
		without := totalNavs(counters)

		optSel := core.Options{JoinCache: true, PathCache: true, GroupCache: true, NativeSelect: true}
		q2, counters2 := lazyRun(optSel, srcs, plan)
		if _, err := q2.Materialize(); err != nil {
			panic(err)
		}
		with := totalNavs(counters2)
		selCmds := counters2["s1"].Counters.Select.Load()

		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(int64(matches)), itoa(without), itoa(with), itoa(selCmds),
		})
	}
	return t
}

// E4Granularity measures the buffer/LXP reconciliation of Section 4:
// LXP messages and bytes for a full scan of a relational source, as the
// wrapper's tuples-per-fill parameter n varies.
func E4Granularity() Table {
	t := Table{
		ID:    "E4",
		Title: "Source granularity via LXP chunking (Section 4, relational wrapper)",
		Claim: "Returning n tuples per fill lets the wrapper control granularity: " +
			"messages drop ≈ n-fold while the transferred bytes stay roughly flat, " +
			"and attribute-level navigation is served from the buffer.",
		Expect:  "fills ≈ R/n + 2; bytes roughly constant; tuple fetches ≈ R regardless of n.",
		Headers: []string{"chunk n", "LXP fills", "LXP msgs", "bytes", "tuple fetches"},
	}
	const rows = 1000
	for _, chunk := range []int{1, 10, 100, 1000} {
		db := relational.NewDB("db")
		tb := db.Create("t", "id", "val")
		for i := 0; i < rows; i++ {
			tb.MustInsert(fmt.Sprintf("%d", i), fmt.Sprintf("v%d", i))
		}
		cs := lxp.NewCounting(&wrapper.Relational{DB: db, ChunkRows: chunk})
		b, err := buffer.New(cs, "db")
		if err != nil {
			panic(err)
		}
		if _, err := nav.Materialize(b); err != nil {
			panic(err)
		}
		s := cs.Counters.Snapshot()
		t.Rows = append(t.Rows, []string{
			itoa(int64(chunk)), itoa(s.Fills), itoa(s.Msgs), itoa(s.Bytes),
			itoa(db.Counters.Tuples.Load()),
		})
	}
	return t
}

// E5PartialExploration measures the allbooks scenario of the
// introduction: the fraction of two paged web catalogs fetched when the
// user browses only the first k hits of a subject query.
func E5PartialExploration() Table {
	t := Table{
		ID:    "E5",
		Title: "Partial exploration of Web sources (Section 1, allbooks)",
		Claim: "Materializing the answer of a broad Web query is not an option; " +
			"producing results as the user navigates bounds the source access by " +
			"the part of the answer actually explored.",
		Expect: "pages fetched grows with k (≈ pages covering the first k matches) " +
			"and reaches the full catalog only for the eager baseline.",
		Headers: []string{"k hits read", "pages fetched", "total pages", "eager pages"},
	}
	const n, pageSize = 5_000, 25
	totalPages := (n + pageSize - 1) / pageSize
	for _, k := range []int{1, 5, 20, 100} {
		web := &wrapper.Web{Name: "amazon", Catalog: workload.Books("az", n, 1), PageSize: pageSize}
		b, err := buffer.New(web, "amazon")
		if err != nil {
			panic(err)
		}
		e := core.New()
		e.Register("amazon", b)
		plan := workload.AllBooksPlan("amazon", "amazon2", "databases")
		// Single-source variant: reuse the same catalog for both legs
		// is unnecessary; build a single-leg plan instead.
		plan = singleSourceBooks("amazon", "databases")
		q, err := e.Compile(plan)
		if err != nil {
			panic(err)
		}
		if _, err := nav.ExploreFirst(q.Document(), k); err != nil {
			panic(err)
		}
		lazyPages := web.Pages

		// Eager baseline: materializes the whole catalog.
		web2 := &wrapper.Web{Name: "amazon", Catalog: workload.Books("az", n, 1), PageSize: pageSize}
		b2, err := buffer.New(web2, "amazon")
		if err != nil {
			panic(err)
		}
		ev := eager.New()
		ev.Register("amazon", b2)
		if _, err := ev.Eval(plan); err != nil {
			panic(err)
		}

		t.Rows = append(t.Rows, []string{
			itoa(int64(k)), itoa(int64(lazyPages)), itoa(int64(totalPages)), itoa(int64(web2.Pages)),
		})
	}
	return t
}

// singleSourceBooks is the allbooks plan over one seller.
func singleSourceBooks(src, subject string) algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: src, Var: "r"},
		Parent: "r", Path: mustPath("book"), Out: "B",
	}
	sub := &algebra.GetDescendants{Input: gd, Parent: "B",
		Path: mustPath("subject._"), Out: "SUBJ"}
	sel := &algebra.Select{Input: sub,
		Cond: algebra.Eq(algebra.V("SUBJ"), algebra.Lit(subject))}
	grp := &algebra.GroupBy{Input: sel, By: nil, Var: "B", Out: "BS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "hits"}, Children: "BS", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}
