package experiments

import (
	"context"
	"log/slog"
	"net"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// E15ClusterL2 measures the two-tier region cache of a mixd fleet: in a
// 3-node cluster (local routing mode), the first node to explore a
// virtual answer pays the full lazy-derivation cost at the sources;
// after its explored region is published to the key's owner, *any other
// node* serving the same query fills its cache from the owner over the
// wire (an L2 hit) and answers with zero source navigations — the
// single-node warm behaviour of E12, extended across processes.
//
// Sessions are real VXDP clients materializing the homeview answer
// through loopback servers, so the counts include everything the wire
// path adds. All measured quantities are navigation and cache counters.
func E15ClusterL2() Table {
	t := Table{
		ID:    "E15",
		Title: "Clustered two-tier region cache (cold vs warm, 1 vs 3 nodes)",
		Claim: "Sharding sessions by (view, plan fingerprint) lets a fleet share " +
			"explored regions: one node's exploration warms every node, so " +
			"cross-node warm sessions cost the sources nothing.",
		Expect: "the cold sessions (rows 1 and 3) pay identical source navigations " +
			"whether standalone or clustered; after one flush the warm cross-node " +
			"session fills from the owner (l2 hits > 0) with 0 source navigations, " +
			"the owner itself serves from the absorbed fill, and every answer is " +
			"byte-identical.",
		Headers: []string{"session", "client cmds", "source navs", "l2 hits", "answer"},
	}
	const viewDef = `
CONSTRUCT <allhomes>
  <med_home> $H $S {$S} </med_home> {$H}
</allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`
	const query = `
CONSTRUCT <out> $M {$M} </out> {}
WHERE homeview allhomes.med_home $M`
	homes, schools := workload.HomesSchools(60, 60, 12, 42)

	// Every engine a node's pool builds shares that node's source
	// counters, so "source navs" is a per-node total no matter how many
	// pooled engines served the session.
	factory := func(src *metrics.Counters) server.Factory {
		return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
			m := mediator.New(mediator.DefaultOptions())
			m.SetRegionCache(rc)
			m.RegisterSource("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: src})
			m.RegisterSource("schoolsSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(schools), Counters: src})
			if err := m.DefineView("homeview", viewDef); err != nil {
				return nil, err
			}
			return m, nil
		}
	}

	type member struct {
		srv  *server.Server
		node *cluster.Node // nil for the standalone baseline
		addr string
		src  *metrics.Counters
		done chan error
	}
	quiet := slog.New(slog.DiscardHandler)

	// boot starts n servers on loopback; for n > 1 they form a cluster
	// in local mode (no proxying — pure L2 region sharing) with the
	// background flusher off, so publication happens only at the
	// explicit Flush below and every counter is deterministic.
	boot := func(n int) []*member {
		listeners := make([]net.Listener, n)
		addrs := make([]string, n)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			listeners[i], addrs[i] = l, l.Addr().String()
		}
		fleet := make([]*member, n)
		for i := range fleet {
			src := &metrics.Counters{}
			rc := regioncache.New(0)
			opts := []server.Option{server.WithRegionCache(rc), server.WithLogger(quiet)}
			var node *cluster.Node
			if n > 1 {
				peers := make([]string, 0, n-1)
				for j, a := range addrs {
					if j != i {
						peers = append(peers, a)
					}
				}
				var err error
				node, err = cluster.New(cluster.Config{
					Self: addrs[i], Peers: peers, Mode: cluster.ModeLocal,
					HealthInterval: time.Hour, FlushInterval: -1, Logger: quiet,
				}, rc)
				if err != nil {
					panic(err)
				}
				opts = append(opts, server.WithCluster(node))
			}
			srv, err := server.New(factory(src), opts...)
			if err != nil {
				panic(err)
			}
			done := make(chan error, 1)
			go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
			if node != nil {
				node.Start()
			}
			fleet[i] = &member{srv: srv, node: node, addr: addrs[i], src: src, done: done}
		}
		return fleet
	}
	halt := func(fleet []*member) {
		for _, m := range fleet {
			if m.node != nil {
				m.node.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}

	// session materializes the whole answer through one node and
	// reports client commands, the fleet-wide source navigations it
	// caused, and the entry node's L2 hits.
	session := func(fleet []*member, entry int) (client, source, l2 int64, answer string) {
		srcBefore := int64(0)
		for _, m := range fleet {
			srcBefore += m.src.Navigations()
		}
		l2Before := int64(0)
		if n := fleet[entry].node; n != nil {
			l2Before = n.Stats().L2Hits
		}
		c, err := vxdp.Dial(fleet[entry].addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		if err := c.Open(query); err != nil {
			panic(err)
		}
		cd := nav.NewCountingDoc(c)
		tree, err := nav.Materialize(cd)
		if err != nil {
			panic(err)
		}
		for _, m := range fleet {
			source += m.src.Navigations()
		}
		source -= srcBefore
		if n := fleet[entry].node; n != nil {
			l2 = n.Stats().L2Hits - l2Before
		}
		return cd.Counters.Navigations(), source, l2, xmltree.MarshalXML(tree)
	}

	var want string
	row := func(label string, fleet []*member, entry int) {
		client, source, l2, answer := session(fleet, entry)
		if want == "" {
			want = answer
		}
		verdict := "identical"
		if answer != want {
			verdict = "DIFFERS"
		}
		t.Rows = append(t.Rows, []string{label, itoa(client), itoa(source), itoa(l2), verdict})
	}

	solo := boot(1)
	row("1 node: cold", solo, 0)
	row("1 node: warm (L1)", solo, 0)
	halt(solo)

	fleet := boot(3)
	defer halt(fleet)
	// The ring decides which member owns this query's region; route the
	// cold session through one non-owner and the warm one through the
	// other, so the warm fill must cross the wire.
	probe, err := factory(&metrics.Counters{})(nil)
	if err != nil {
		panic(err)
	}
	res, err := probe.Query(query)
	if err != nil {
		panic(err)
	}
	name, fp := res.CacheKey()
	ownerAddr := fleet[0].node.Owner(name, fp)
	owner := 0
	for i, m := range fleet {
		if m.addr == ownerAddr {
			owner = i
		}
	}
	cold, warm := (owner+1)%3, (owner+2)%3

	row("3 nodes: cold via non-owner", fleet, cold)
	fleet[cold].node.Flush() // publish the explored region to its owner
	row("3 nodes: warm via other non-owner (L2)", fleet, warm)
	row("3 nodes: warm via owner (absorbed fill)", fleet, owner)
	return t
}
