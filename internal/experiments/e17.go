package experiments

import (
	"strings"
	"time"

	"mix/internal/core"
	"mix/internal/nav"
	"mix/internal/trace"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// batchWidth is the batch width E17's vectorized run uses; mixbench
// -batch overrides it through SetBatchSize.
var batchWidth = core.DefaultBatchSize

// SetBatchSize overrides the batch width used by the vectorized runs of
// the experiment suite (n <= 1 measures the scalar pipeline against
// itself; the identity rows still must hold).
func SetBatchSize(n int) { batchWidth = n }

// E17BatchPipeline measures what vectorization buys on the pipeline's
// own bookkeeping: the same warm-drain equi-join workload as E13's hash
// join case (300 homes × 300 schools, full materialization), run
// binding-at-a-time vs. batch-at-a-time. The per-binding interpreter
// costs — one traced stream step per binding per operator, plus the
// join-condition evaluations — collapse when each pull moves a whole
// batch, while the navigation-driven contract stays untouched: same
// answer bytes, same source navigations, same condition evaluations.
func E17BatchPipeline() Table {
	t := Table{
		ID:    "E17",
		Title: "Vectorized binding streams (batch-at-a-time operator pipeline)",
		Claim: "Moving bindings through the operator tree a batch at a time cuts " +
			"per-binding interpreter calls (stream steps + condition evaluations) " +
			"at least 2× on a full warm drain, with the answer, the source " +
			"navigations, and the condition evaluations byte-for-byte unchanged.",
		Expect: "≥2× fewer interpreter calls with batching; source navigations and " +
			"condition evaluations equal in both modes; identical answer.",
		Headers: []string{"case", "metric", "scalar", "batch", "improvement"},
	}
	t.Rows = batchPipelineRows()
	return t
}

// batchPipelineRows runs the E13 warm-drain join once per pipeline. A
// span sink counts operator stream steps: every "next"/"next[n]" span
// is one interpreter dispatch through the operator tree (source-
// boundary spans carry navigation ops, not "next", so they are not
// counted — they are reported separately and must not change).
func batchPipelineRows() [][]string {
	homes, schools := workload.HomesSchools(300, 300, 40, 9)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	run := func(bs int) (steps, evals, navs int64, batches, bindings int64,
		elapsed time.Duration, got *xmltree.Tree) {
		opts := core.DefaultOptions()
		opts.BatchSize = bs
		e := core.New(core.WithOptions(opts))
		rec := trace.New()
		rec.Limit = 1 // the sink does the counting; retain almost nothing
		rec.Sink = func(label, op string, d time.Duration) {
			if strings.HasPrefix(op, "next") && !strings.HasPrefix(label, trace.SourcePrefix) {
				steps++
			}
		}
		e.SetTracer(rec)
		counters := map[string]*nav.CountingDoc{}
		for name, tree := range srcs {
			cd := nav.NewCountingDoc(nav.NewTreeDoc(tree))
			counters[name] = cd
			e.Register(name, cd)
		}
		var jn int64
		q, err := e.Compile(zipJoinPlan(&jn))
		if err != nil {
			panic(err)
		}
		before := core.BatchSnapshot()
		start := time.Now()
		got, err = q.Materialize()
		if err != nil {
			panic(err)
		}
		elapsed = time.Since(start)
		after := core.BatchSnapshot()
		return steps, jn, totalNavs(counters),
			after.Batches - before.Batches, after.Bindings - before.Bindings,
			elapsed, got
	}
	s0, e0, n0, _, _, d0, g0 := run(1)
	s1, e1, n1, bb, bn, d1, g1 := run(batchWidth)
	same := "yes"
	if !xmltree.Equal(g0, g1) {
		same = "NO"
	}
	navSame := "yes"
	if n0 != n1 {
		navSame = "NO"
	}
	width := "-"
	if bb > 0 {
		width = itoa(bn / bb)
	}
	return [][]string{
		{"warm-drain join", "operator stream steps", itoa(s0), itoa(s1),
			ratio(float64(s0), float64(s1))},
		{"warm-drain join", "condition evaluations", itoa(e0), itoa(e1),
			ratio(float64(e0), float64(e1))},
		{"warm-drain join", "interpreter calls (steps+evals)",
			itoa(s0 + e0), itoa(s1 + e1),
			ratio(float64(s0+e0), float64(s1+e1))},
		{"warm-drain join", "source navigations", itoa(n0), itoa(n1), navSame},
		{"warm-drain join", "avg bindings per batch", "1", width, "-"},
		{"warm-drain join", "drain wall-clock (ms)",
			itoa(d0.Milliseconds()), itoa(d1.Milliseconds()),
			ratio(float64(d0), float64(d1))},
		{"warm-drain join", "identical answer", same, same, "="},
	}
}
