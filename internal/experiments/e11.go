package experiments

import (
	"time"

	"mix/internal/buffer"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
)

// E11AsyncPrefetch measures the asynchronous prefetching extension
// Section 4 proposes: "a buffer can be used to decouple the
// client-driven view navigation (pull from above) and the production of
// results by the wrapped source (push from below) based on an
// asynchronous prefetching strategy."
//
// The client explores the first k results on demand, then idles (think
// time) while the prefetcher drains the remaining holes; when the
// client returns and reads the rest of the document, no fill has to be
// awaited on the navigation path.
func E11AsyncPrefetch() Table {
	t := Table{
		ID:    "E11",
		Title: "Asynchronous prefetching (Section 4, extension)",
		Claim: "Decoupling pull-from-above and push-from-below lets the wrapper fill " +
			"previously left-open holes during client think time, so later " +
			"navigations find their data already buffered.",
		Expect:  "phase 3 (read the rest) issues zero demand fills once prefetch has drained the holes.",
		Headers: []string{"phase", "demand fills", "prefetch fills", "pending holes after"},
	}
	catalog := workload.Books("az", 300, 5)
	b, err := buffer.New(&lxp.TreeServer{Tree: catalog, Chunk: 5, InlineLimit: 32}, "u")
	if err != nil {
		panic(err)
	}

	// Phase 1: the user reads the first 5 books on demand.
	if _, err := nav.ExploreFirst(b, 5); err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"1: demand-read first 5",
		itoa(int64(b.DemandFills())), itoa(int64(b.Fills() - b.DemandFills())),
		itoa(int64(b.PendingHoles()))})

	// Phase 2: think time — the prefetcher drains the source.
	b.StartPrefetch()
	deadline := time.Now().Add(30 * time.Second)
	for b.PendingHoles() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopPrefetch()
	t.Rows = append(t.Rows, []string{"2: think time (prefetch)",
		itoa(int64(b.DemandFills())), itoa(int64(b.Fills() - b.DemandFills())),
		itoa(int64(b.PendingHoles()))})

	// Phase 3: the user reads everything else.
	demandBefore := b.DemandFills()
	if _, err := nav.Materialize(b); err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"3: read the rest",
		itoa(int64(b.DemandFills() - demandBefore)), itoa(int64(b.Fills() - b.DemandFills())),
		itoa(int64(b.PendingHoles()))})
	return t
}
