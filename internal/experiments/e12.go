package experiments

import (
	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// E12RegionCache measures the cross-session region cache: the first
// session to explore a region of a virtual answer document pays the
// full lazy-derivation cost; later sessions navigating the same region
// are answered from the shared cache with zero source navigations.
//
// Each "session" is a fresh mediator engine (what mixd's pooled factory
// builds) over the homes/schools sources, querying the homeview view of
// the running example and exploring the first k results — the Web
// interaction pattern of Section 1, where lazy derivation makes the
// sources pay far more navigations than the client issues. Total counts
// client-boundary commands plus the engine-driven commands behind them
// (cache misses) plus the source navigations those fanned out to.
func E12RegionCache() Table {
	t := Table{
		ID:    "E12",
		Title: "Cross-session region cache (cold vs warm)",
		Claim: "Re-deriving explored fragments per client makes concurrent sessions cost " +
			"linear in session count; a shared cache of explored regions makes " +
			"every session after the first nearly free at the sources.",
		Expect: "the warm session performs 0 source navigations and ≥5× fewer total " +
			"navigation commands than the cold one; with the cache off or after " +
			"an invalidation the counts return to cold, and every session's " +
			"answer is byte-identical.",
		Headers: []string{"session", "client cmds", "engine cmds", "source navs", "total", "answer"},
	}
	const viewDef = `
CONSTRUCT <allhomes>
  <med_home> $H $S {$S} </med_home> {$H}
</allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`
	const query = `
CONSTRUCT <out> $M {$M} </out> {}
WHERE homeview allhomes.med_home $M`
	homes, schools := workload.HomesSchools(60, 60, 12, 42)

	// session builds a fresh engine (sharing only the immutable source
	// trees and, when non-nil, the region cache), explores the whole
	// answer, and reports what the exploration cost at each boundary.
	session := func(cache *regioncache.Cache) (client, engine, source int64, answer string) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(cache)
		hd := nav.NewCountingDoc(nav.NewTreeDoc(homes))
		sd := nav.NewCountingDoc(nav.NewTreeDoc(schools))
		m.RegisterSource("homesSrc", hd)
		m.RegisterSource("schoolsSrc", sd)
		if err := m.DefineView("homeview", viewDef); err != nil {
			panic(err)
		}
		var before regioncache.Stats
		if cache != nil {
			before = cache.Stats()
		}
		res, err := m.Query(query)
		if err != nil {
			panic(err)
		}
		cd := nav.NewCountingDoc(res.Document())
		tree, err := nav.ExploreFirst(cd, 5)
		if err != nil {
			panic(err)
		}
		client = cd.Counters.Navigations()
		if cache != nil {
			engine = cache.Stats().Misses - before.Misses
		} else {
			engine = client // every command drives the engine
		}
		source = hd.Counters.Navigations() + sd.Counters.Navigations()
		return client, engine, source, xmltree.MarshalXML(tree)
	}

	cache := regioncache.New(0)
	var want string
	row := func(label string, cache *regioncache.Cache) (total int64) {
		client, engine, source, answer := session(cache)
		if want == "" {
			want = answer
		}
		verdict := "identical"
		if answer != want {
			verdict = "DIFFERS"
		}
		total = client + engine + source
		t.Rows = append(t.Rows, []string{label,
			itoa(client), itoa(engine), itoa(source), itoa(total), verdict})
		return total
	}

	row("1: cold (first session)", cache)
	row("2: warm (same cache)", cache)
	row("3: warm again", cache)
	row("4: cache off", nil)
	cache.Invalidate() // the sources "changed" (here: to identical data)
	row("5: after invalidation", cache)
	return t
}
