package experiments

import (
	"fmt"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func mustPath(s string) *pathexpr.Expr { return pathexpr.MustParse(s) }

// E6JoinCache ablates the nested-loops join's inner cache (Section 3:
// "the nested-loops join operator stores the parts of the inner
// argument of the loop").
func E6JoinCache() Table {
	t := Table{
		ID:    "E6",
		Title: "Join inner caching ablation (Section 3)",
		Claim: "Caching the inner binding list turns the O(N·M) re-derivation of the " +
			"inner from its source into a single O(M) scan.",
		Expect:  "without the cache, inner-source navigations grow ≈ N·M; with it, ≈ M.",
		Headers: []string{"N=M", "inner navs cached", "inner navs uncached", "ratio"},
	}
	for _, n := range []int{20, 50, 100} {
		homes, schools := workload.HomesSchools(n, n, n/4+1, 6)
		srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
		run := func(opts core.Options) int64 {
			q, counters := lazyRun(opts, srcs, workload.HomesSchoolsPlan())
			if _, err := q.Materialize(); err != nil {
				panic(err)
			}
			return counters["schoolsSrc"].Counters.Navigations()
		}
		with := run(core.Options{JoinCache: true, PathCache: true, GroupCache: true})
		without := run(core.Options{GroupCache: true})
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(with), itoa(without),
			fmt.Sprintf("%.1fx", float64(without)/float64(with)),
		})
	}
	return t
}

// E7RecursiveCache ablates getDescendants' cache on a recursive path
// (Section 3: "when the getDescendants operator has a recursive regular
// path expression as a parameter it stores a part of the already
// visited input"). The descent is placed as the inner of a join whose
// own cache is disabled, so the inner is re-iterated once per outer
// binding: the operator's cache is what decides whether each
// re-iteration re-runs the recursive exploration.
func E7RecursiveCache() Table {
	t := Table{
		ID:    "E7",
		Title: "Recursive getDescendants caching ablation (Section 3)",
		Claim: "The operator keeps the already-visited part of a recursive descent, so " +
			"re-iterating over its output does not re-explore the source.",
		Expect:  "cached navigations ≈ one descent; uncached ≈ one descent per re-iteration.",
		Headers: []string{"depth", "outer", "deep-src navs cached", "deep-src navs uncached", "ratio"},
	}
	const outer = 20
	for _, depth := range []int{50, 200, 800} {
		deep := workload.DeepTree(depth, 2)
		srcs := map[string]*xmltree.Tree{
			"d":    deep,
			"list": workload.FlatList(outer, "item"),
		}
		plan := recursiveInnerJoinPlan("list", "d")
		run := func(opts core.Options) int64 {
			q, counters := lazyRun(opts, srcs, plan)
			if _, err := q.Materialize(); err != nil {
				panic(err)
			}
			return counters["d"].Counters.Navigations()
		}
		with := run(core.Options{PathCache: true, GroupCache: true})
		without := run(core.Options{GroupCache: true})
		t.Rows = append(t.Rows, []string{
			itoa(int64(depth)), itoa(outer), itoa(with), itoa(without),
			fmt.Sprintf("%.1fx", float64(without)/float64(with)),
		})
	}
	return t
}

// recursiveInnerJoinPlan pairs every item of the outer list with every
// x reached by the recursive path a*.x in the deep source.
func recursiveInnerJoinPlan(outerSrc, deepSrc string) algebra.Op {
	left := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: outerSrc, Var: "lr"},
		Parent: "lr", Path: mustPath("item"), Out: "I",
	}
	right := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: deepSrc, Var: "rr"},
		Parent: "rr", Path: mustPath("a*.x"), Out: "X",
	}
	// Project X away: materializing the output must not re-explore the
	// match values, so the measured deep-source navigations are purely
	// the descents.
	return &algebra.Project{
		Input: &algebra.Join{Left: left, Right: right, Cond: algebra.True{}},
		Keep:  []string{"I"},
	}
}

// E8LiberalLXP exercises the liberal fill policies of Section 4: the
// buffer must serve navigations correctly whatever the wrapper's reply
// shape, and the policy changes the message economy.
func E8LiberalLXP() Table {
	t := Table{
		ID:    "E8",
		Title: "Liberal LXP fill policies (Section 4, Fig. 8)",
		Claim: "The buffer algorithm handles fills with holes at arbitrary positions " +
			"(the liberal protocol); policies trade messages for bytes.",
		Expect: "all policies materialize the identical document; small chunks mean " +
			"many small messages, large chunks few big ones.",
		Headers: []string{"policy", "LXP fills", "bytes", "identical result"},
	}
	doc := workload.Books("az", 200, 3)
	want, err := nav.Materialize(nav.NewTreeDoc(doc))
	if err != nil {
		panic(err)
	}
	policies := []struct {
		name string
		srv  func() lxp.Server
	}{
		{"inline everything", func() lxp.Server { return &lxp.TreeServer{Tree: doc} }},
		{"chunk 1, inline 1", func() lxp.Server { return &lxp.TreeServer{Tree: doc, Chunk: 1, InlineLimit: 1} }},
		{"chunk 10, inline 16", func() lxp.Server { return &lxp.TreeServer{Tree: doc, Chunk: 10, InlineLimit: 16} }},
		{"chunk 50, inline 512", func() lxp.Server { return &lxp.TreeServer{Tree: doc, Chunk: 50, InlineLimit: 512} }},
	}
	for _, p := range policies {
		cs := lxp.NewCounting(p.srv())
		b, err := buffer.New(cs, "u")
		if err != nil {
			panic(err)
		}
		got, err := nav.Materialize(b)
		if err != nil {
			panic(err)
		}
		same := "yes"
		if !xmltree.Equal(got, want) {
			same = "NO"
		}
		s := cs.Counters.Snapshot()
		t.Rows = append(t.Rows, []string{p.name, itoa(s.Fills), itoa(s.Bytes), same})
	}
	return t
}

// E9GroupByCache ablates groupBy's Gprev/value caching (Appendix A).
// The client walks the grouped structure (groups and member labels,
// not the full member subtrees) twice: with the cache the second walk
// is served from the cached lists, without it the group member scans
// re-derive the input bindings — re-materializing their group keys
// from the sources.
func E9GroupByCache() Table {
	t := Table{
		ID:    "E9",
		Title: "groupBy value caching ablation (Appendix A)",
		Claim: "groupBy stores the grouped values for the group-by lists in Gprev; " +
			"revisiting a group retrieves the result of the navigation from the buffer.",
		Expect: "second walk ≈ free with the caches; without any operator cache the " +
			"group scans re-derive their input bindings and re-materialize the keys.",
		Headers: []string{"N", "pass1 cached", "pass2 cached", "pass1 no grp/path cache", "pass2 no grp/path cache"},
	}
	for _, n := range []int{30, 60, 120} {
		homes, schools := workload.HomesSchools(n, n, n/10+1, 8)
		srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
		run := func(opts core.Options) (int64, int64) {
			q, counters := lazyRun(opts, srcs, workload.HomesSchoolsPlan())
			doc := q.Document()
			if err := walkGroups(doc); err != nil {
				panic(err)
			}
			pass1 := totalNavs(counters)
			if err := walkGroups(doc); err != nil {
				panic(err)
			}
			return pass1, totalNavs(counters) - pass1
		}
		c1, c2 := run(core.Options{JoinCache: true, PathCache: true, GroupCache: true})
		u1, u2 := run(core.Options{JoinCache: true})
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(c1), itoa(c2), itoa(u1), itoa(u2),
		})
	}
	return t
}

// walkGroups fetches the label of every grandchild of the root: each
// med_home and each of its members, without descending into values.
func walkGroups(doc nav.Document) error {
	root, err := doc.Root()
	if err != nil {
		return err
	}
	g, err := doc.Down(root)
	if err != nil {
		return err
	}
	for g != nil {
		m, err := doc.Down(g)
		if err != nil {
			return err
		}
		for m != nil {
			if _, err := doc.Fetch(m); err != nil {
				return err
			}
			m, err = doc.Right(m)
			if err != nil {
				return err
			}
		}
		g, err = doc.Right(g)
		if err != nil {
			return err
		}
	}
	return nil
}

// countingCond counts how many bindings a condition is evaluated on.
type countingCond struct {
	inner algebra.Cond
	n     *int64
}

func (c *countingCond) Eval(b algebra.ValueGetter) (bool, error) {
	*c.n++
	return c.inner.Eval(b)
}
func (c *countingCond) Vars() []string        { return c.inner.Vars() }
func (c *countingCond) EquiKeys() [][2]string { return c.inner.EquiKeys() }
func (c *countingCond) String() string        { return c.inner.String() }

// E10Rewriting measures the preprocessing rewriting phase (Section 3):
// pushing a selective condition below a join. In a fully pipelined lazy
// evaluator the pushdown does not change which source nodes are
// visited (values are cached per input binding), but it changes how
// many intermediate bindings flow through the plan: the pushed
// condition is evaluated once per outer binding instead of once per
// join pair.
func E10Rewriting() Table {
	t := Table{
		ID:    "E10",
		Title: "Navigational-complexity rewriting (Section 3, preprocessing)",
		Claim: "During the rewriting phase the initial plan is rewritten into a plan " +
			"optimized with respect to navigational complexity (here: σ-pushdown " +
			"through the join).",
		Expect: "identical answers; the selective condition is evaluated ≈ N times " +
			"after rewriting instead of ≈ N·M times; join pairs shrink accordingly.",
		Headers: []string{"N=M", "σ evals initial", "σ evals rewritten", "join evals initial", "join evals rewritten"},
	}
	for _, n := range []int{50, 200} {
		homes, schools := workload.HomesSchools(n, n, 10, 12)
		srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
		run := func(rewrite bool) (sigmaEvals, joinEvals int64) {
			var sn, jn int64
			left := &algebra.GetDescendants{
				Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
				Parent: "r1", Path: mustPath("home"), Out: "H",
			}
			leftZip := &algebra.GetDescendants{Input: left, Parent: "H",
				Path: mustPath("zip._"), Out: "V1"}
			right := &algebra.GetDescendants{
				Input:  &algebra.Source{URL: "schoolsSrc", Var: "r2"},
				Parent: "r2", Path: mustPath("school"), Out: "S",
			}
			rightZip := &algebra.GetDescendants{Input: right, Parent: "S",
				Path: mustPath("zip._"), Out: "V2"}
			join := &algebra.Join{Left: leftZip, Right: rightZip,
				Cond: &countingCond{inner: algebra.Eq(algebra.V("V1"), algebra.V("V2")), n: &jn}}
			sel := &algebra.Select{Input: join,
				Cond: &countingCond{inner: algebra.Eq(algebra.V("V1"), algebra.Lit("91000")), n: &sn}}
			var plan algebra.Op = &algebra.Project{Input: sel, Keep: []string{"H", "S"}}
			if rewrite {
				plan = algebra.Rewrite(plan)
			}
			q, _ := lazyRun(core.DefaultOptions(), srcs, plan)
			if _, err := q.Materialize(); err != nil {
				panic(err)
			}
			return sn, jn
		}
		s0, j0 := run(false)
		s1, j1 := run(true)
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(s0), itoa(s1), itoa(j0), itoa(j1),
		})
	}
	return t
}
