package experiments

import (
	"context"
	"log/slog"
	"net"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// E18SemanticCache measures the semantic region cache (DESIGN.md §14):
// a σ-restricted query opened warm against another query's fully
// explored region is answered by *filtering the cached superset* —
// zero source navigations, byte-identical answer — even though its plan
// fingerprint has never been seen before. The -semantic-cache=false
// ablation (exact fingerprint matches only) pays the full source cost
// for the same open. The clustered half routes the subsumed open
// through a non-owner of a proxy-mode fleet: the semantic tier
// short-circuits routing (the session stays on the entry node, fetching
// the complete superset region from its owner) and the whole fleet does
// zero source work.
func E18SemanticCache() Table {
	t := Table{
		ID:    "E18",
		Title: "Semantic region cache (answering subsumed queries via plan containment)",
		Claim: "A query whose plan is contained in a cached, fully explored plan of " +
			"the same view is answered from that region with zero source navigations " +
			"and a byte-identical answer, on one node and across a proxied fleet.",
		Expect: "cold superset rows pay full source navigations; warm subsumed rows " +
			"cost 0 source navigations with semantic hits > 0; the ablation row " +
			"re-pays the sources; the fleet's subsumed open stays on the entry node " +
			"(semantic local = 1) with 0 fleet-wide source navigations; every answer " +
			"is identical to its uncached oracle.",
		Headers: []string{"session", "source navs", "semantic hits", "semantic local", "answer"},
	}
	const superQ = `CONSTRUCT <homes> $H {$H} </homes> {} WHERE homesSrc homes.home $H`
	const subQ = `CONSTRUCT <homes> $H {$H} </homes> {}
WHERE homesSrc homes.home $H AND $H price._ $P AND $P < "500000"`
	homes, _ := workload.HomesSchools(40, 1, 8, 21)

	// Uncached oracles: what each query must answer, bytes and all.
	oracle := func(q string) string {
		m := mediator.New(mediator.DefaultOptions())
		m.RegisterTree("homesSrc", homes)
		res, err := m.Query(q)
		if err != nil {
			panic(err)
		}
		tree, err := res.Materialize()
		if err != nil {
			panic(err)
		}
		return xmltree.MarshalXML(tree)
	}
	oracles := map[string]string{superQ: oracle(superQ), subQ: oracle(subQ)}

	factory := func(src *metrics.Counters, semantic bool) server.Factory {
		return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
			opts := mediator.DefaultOptions()
			opts.Engine.SemanticCache = semantic
			m := mediator.New(opts)
			m.SetRegionCache(rc)
			m.RegisterSource("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: src})
			return m, nil
		}
	}

	type member struct {
		srv  *server.Server
		node *cluster.Node // nil for the single-node halves
		addr string
		src  *metrics.Counters
		done chan error
	}
	quiet := slog.New(slog.DiscardHandler)

	// boot starts n servers on loopback; n > 1 forms a PROXY-mode
	// cluster (session routing on — the semantic short-circuit lives in
	// the routed-open path) with background timers off.
	boot := func(n int, semantic bool) []*member {
		listeners := make([]net.Listener, n)
		addrs := make([]string, n)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			listeners[i], addrs[i] = l, l.Addr().String()
		}
		fleet := make([]*member, n)
		for i := range fleet {
			src := &metrics.Counters{}
			rc := regioncache.New(0)
			opts := []server.Option{server.WithRegionCache(rc), server.WithLogger(quiet)}
			var node *cluster.Node
			if n > 1 {
				peers := make([]string, 0, n-1)
				for j, a := range addrs {
					if j != i {
						peers = append(peers, a)
					}
				}
				var err error
				node, err = cluster.New(cluster.Config{
					Self: addrs[i], Peers: peers, Mode: cluster.ModeProxy,
					HealthInterval: time.Hour, FlushInterval: -1, Logger: quiet,
				}, rc)
				if err != nil {
					panic(err)
				}
				opts = append(opts, server.WithCluster(node))
			}
			srv, err := server.New(factory(src, semantic), opts...)
			if err != nil {
				panic(err)
			}
			done := make(chan error, 1)
			go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
			if node != nil {
				node.Start()
			}
			fleet[i] = &member{srv: srv, node: node, addr: addrs[i], src: src, done: done}
		}
		return fleet
	}
	halt := func(fleet []*member) {
		for _, m := range fleet {
			if m.node != nil {
				m.node.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}

	// session materializes query through one node and reports the
	// fleet-wide source navigations it caused, the deltas of the entry
	// node's semantic-hit and semantic-local counters, and the answer.
	session := func(fleet []*member, entry int, query string) (source, hits, local int64, answer string) {
		fleetNavs := func() int64 {
			var n int64
			for _, m := range fleet {
				n += m.src.Navigations()
			}
			return n
		}
		entryStats := func() (int64, int64) {
			st := fleet[entry].srv.Stats()
			var h, l int64
			if st.Cache != nil {
				h = st.Cache.SemanticHits
			}
			if st.Cluster != nil {
				l = st.Cluster.SemanticLocal
			}
			return h, l
		}
		srcBefore := fleetNavs()
		hitsBefore, localBefore := entryStats()
		c, err := vxdp.Dial(fleet[entry].addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		if err := c.Open(query); err != nil {
			panic(err)
		}
		tree, err := nav.Materialize(c)
		if err != nil {
			panic(err)
		}
		hitsAfter, localAfter := entryStats()
		return fleetNavs() - srcBefore, hitsAfter - hitsBefore, localAfter - localBefore,
			xmltree.MarshalXML(tree)
	}

	row := func(label string, fleet []*member, entry int, query string) {
		source, hits, local, answer := session(fleet, entry, query)
		verdict := "identical"
		if answer != oracles[query] {
			verdict = "DIFFERS"
		}
		t.Rows = append(t.Rows, []string{label, itoa(source), itoa(hits), itoa(local), verdict})
	}

	solo := boot(1, true)
	row("1 node: cold superset", solo, 0, superQ)
	row("1 node: warm subsumed (semantic)", solo, 0, subQ)
	halt(solo)

	ablate := boot(1, false)
	row("1 node: cold superset, ablation", ablate, 0, superQ)
	row("1 node: warm subsumed, -semantic-cache=false", ablate, 0, subQ)
	halt(ablate)

	fleet := boot(3, true)
	defer halt(fleet)
	// Route both opens through a node that does NOT own the subsumed
	// query's key, so the second open exercises the routed path where the
	// semantic short-circuit decides.
	probe := mediator.New(mediator.DefaultOptions())
	probe.RegisterTree("homesSrc", homes)
	res, err := probe.Query(subQ)
	if err != nil {
		panic(err)
	}
	name, fp := res.CacheKey()
	ownerAddr := fleet[0].node.Owner(name, fp)
	entry := 0
	for i, m := range fleet {
		if m.addr != ownerAddr {
			entry = i
			break
		}
	}
	row("3 nodes: cold superset via non-owner", fleet, entry, superQ)
	row("3 nodes: subsumed via non-owner (semantic local)", fleet, entry, subQ)
	return t
}
