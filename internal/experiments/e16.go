package experiments

import (
	"context"
	"log/slog"
	"net"
	"strconv"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/trace"
	"mix/internal/vxdp"
	"mix/internal/workload"
)

// E16FleetTracing measures what fleet-wide distributed tracing costs
// and what it buys: the same proxied navigation is run against a cold
// 3-node fleet twice — tracing off, then tracing on with a client-side
// recorder — always entering through a node that does NOT own the
// query's routing key, so every command hops entry → owner.
//
// Tracing must be free in navigation terms (identical client commands,
// identical fleet-wide source navigations: the engine evaluates the
// same plan either way), and the traced run must return ONE stitched
// forest whose spans are attributed to both the entry node (the proxy
// hops) and the owner node (the evaluation fan-out), with exactly one
// source-navigation span per counted source navigation — the paper's
// per-operator attribution of Def. 2, preserved across the fleet.
func E16FleetTracing() Table {
	t := Table{
		ID:    "E16",
		Title: "Fleet tracing: stitched cross-node forests at zero navigation cost",
		Claim: "Propagating a trace context over VXDP and stitching the owner's " +
			"span forest under the proxy hop attributes a fleet navigation " +
			"end-to-end without changing what the fleet does.",
		Expect: "both sessions issue identical client commands and induce identical " +
			"fleet-wide source navigations; only the traced session returns spans, " +
			"its forest covers both the entry and owner nodes, and its source-" +
			"navigation spans equal the counted source navigations.",
		Headers: []string{"session", "client cmds", "source navs", "spans", "src spans", "nodes"},
	}
	const viewDef = `
CONSTRUCT <allhomes>
  <med_home> $H $S {$S} </med_home> {$H}
</allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`
	const query = `
CONSTRUCT <out> $M {$M} </out> {}
WHERE homeview allhomes.med_home $M`
	homes, schools := workload.HomesSchools(40, 40, 8, 42)

	factory := func(src *metrics.Counters) server.Factory {
		return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
			m := mediator.New(mediator.DefaultOptions())
			m.SetRegionCache(rc)
			m.RegisterSource("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: src})
			m.RegisterSource("schoolsSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(schools), Counters: src})
			if err := m.DefineView("homeview", viewDef); err != nil {
				return nil, err
			}
			return m, nil
		}
	}

	type member struct {
		srv  *server.Server
		node *cluster.Node
		addr string
		src  *metrics.Counters
		done chan error
	}
	quiet := slog.New(slog.DiscardHandler)

	// boot starts a cold 3-node proxy-mode fleet, node names n0..n2,
	// tracing per the flag; background timers are off so every counter
	// is deterministic.
	boot := func(traced bool) []*member {
		const n = 3
		listeners := make([]net.Listener, n)
		addrs := make([]string, n)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			listeners[i], addrs[i] = l, l.Addr().String()
		}
		fleet := make([]*member, n)
		for i := range fleet {
			src := &metrics.Counters{}
			rc := regioncache.New(0)
			peers := make([]string, 0, n-1)
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			node, err := cluster.New(cluster.Config{
				Self: addrs[i], Peers: peers, Mode: cluster.ModeProxy,
				HealthInterval: time.Hour, FlushInterval: -1, Logger: quiet,
			}, rc)
			if err != nil {
				panic(err)
			}
			opts := []server.Option{
				server.WithRegionCache(rc), server.WithCluster(node),
				server.WithLogger(quiet), server.WithNodeName("n" + strconv.Itoa(i)),
			}
			if traced {
				opts = append(opts, server.WithTrace(true))
			}
			srv, err := server.New(factory(src), opts...)
			if err != nil {
				panic(err)
			}
			done := make(chan error, 1)
			go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
			node.Start()
			fleet[i] = &member{srv: srv, node: node, addr: addrs[i], src: src, done: done}
		}
		return fleet
	}
	halt := func(fleet []*member) {
		for _, m := range fleet {
			m.node.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}

	// nonOwner picks an entry node the ring did not make owner of the
	// query's key, so the session must proxy.
	nonOwner := func(fleet []*member) int {
		probe, err := factory(&metrics.Counters{})(nil)
		if err != nil {
			panic(err)
		}
		res, err := probe.Query(query)
		if err != nil {
			panic(err)
		}
		name, fp := res.CacheKey()
		ownerAddr := fleet[0].node.Owner(name, fp)
		for i, m := range fleet {
			if m.addr == ownerAddr {
				return (i + 1) % len(fleet)
			}
		}
		return 0
	}

	// session materializes the answer through a non-owner; with a
	// recorder it also reports the stitched forest's totals.
	session := func(traced bool) (client, source, spans, srcSpans, nodes int64) {
		fleet := boot(traced)
		defer halt(fleet)
		entry := nonOwner(fleet)
		c, err := vxdp.Dial(fleet[entry].addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		var rec *trace.Recorder
		if traced {
			rec = trace.New()
			c.SetTracer(rec)
		}
		if err := c.Open(query); err != nil {
			panic(err)
		}
		cd := nav.NewCountingDoc(c)
		if _, err := nav.Materialize(cd); err != nil {
			panic(err)
		}
		for _, m := range fleet {
			source += m.src.Navigations()
		}
		if traced {
			roots := rec.Take()
			var count func(sp *trace.Span)
			count = func(sp *trace.Span) {
				spans++
				for _, k := range sp.Children {
					count(k)
				}
			}
			for _, r := range roots {
				count(r)
			}
			srcSpans = trace.SourceNavigations(roots)
			for node := range trace.NodeTotals(roots) {
				if node != "" {
					nodes++
				}
			}
		}
		return cd.Counters.Navigations(), source, spans, srcSpans, nodes
	}

	row := func(label string, traced bool) {
		client, source, spans, srcSpans, nodes := session(traced)
		t.Rows = append(t.Rows, []string{
			label, itoa(client), itoa(source), itoa(spans), itoa(srcSpans), itoa(nodes)})
	}
	row("3 nodes via non-owner, tracing off", false)
	row("3 nodes via non-owner, tracing on", true)
	return t
}
