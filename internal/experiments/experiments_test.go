package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsAndRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("want 19 experiments, got %v", ids)
	}
	if ids[0] != "E1" || ids[18] != "E19" {
		t.Fatalf("order wrong: %v", ids)
	}
	if _, err := Run("E99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		ID: "EX", Title: "title", Claim: "claim", Expect: "shape",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	txt := tb.Format()
	for _, want := range []string{"EX — title", "claim", "shape", "long-header", "333"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format missing %q:\n%s", want, txt)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | long-header |") || !strings.Contains(md, "### EX") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}

// The shape assertions below run the cheapest experiments and verify
// the paper-predicted relationships hold (the full tables run in
// TestExperimentTables at the repository root).

func col(t *testing.T, tb Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(tb.Rows[row][col], 10, 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %v", tb.ID, row, col, err)
	}
	return v
}

func TestE4Shape(t *testing.T) {
	tb := E4Granularity()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Fills fall monotonically with chunk size; tuple fetches constant.
	prev := int64(1 << 62)
	for i := range tb.Rows {
		fills := col(t, tb, i, 1)
		if fills >= prev {
			t.Fatalf("fills not decreasing: %v", tb.Rows)
		}
		prev = fills
		if got := col(t, tb, i, 4); got != 1000 {
			t.Fatalf("tuple fetches = %d, want 1000", got)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6JoinCache()
	for i := range tb.Rows {
		with, without := col(t, tb, i, 1), col(t, tb, i, 2)
		if without <= with {
			t.Fatalf("row %d: cache not beneficial: %v", i, tb.Rows[i])
		}
	}
	// The ratio grows with N (O(N·M) vs O(M)).
	first, last := col(t, tb, 0, 2)/col(t, tb, 0, 1), col(t, tb, len(tb.Rows)-1, 2)/col(t, tb, len(tb.Rows)-1, 1)
	if last <= first {
		t.Fatalf("ratio should grow: %d → %d", first, last)
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7RecursiveCache()
	for i := range tb.Rows {
		with, without := col(t, tb, i, 2), col(t, tb, i, 3)
		// One descent vs. one per outer binding (20): expect ≈ 20x.
		if without < 10*with {
			t.Fatalf("row %d: expected ≈20x contrast, got %d vs %d", i, with, without)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8LiberalLXP()
	for i := range tb.Rows {
		if tb.Rows[i][3] != "yes" {
			t.Fatalf("policy %q produced a different document", tb.Rows[i][0])
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10Rewriting()
	for i := range tb.Rows {
		sInit, sRewr := col(t, tb, i, 1), col(t, tb, i, 2)
		jInit, jRewr := col(t, tb, i, 3), col(t, tb, i, 4)
		if jRewr >= jInit {
			t.Fatalf("row %d: join evals not reduced: %v", i, tb.Rows[i])
		}
		_ = sInit
		// The rewritten σ runs once per outer binding, i.e. N times.
		n := col(t, tb, i, 0)
		if sRewr != n {
			t.Fatalf("row %d: rewritten σ evals = %d, want %d", i, sRewr, n)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13ParallelPipeline()
	byMetric := map[string][]string{}
	for _, row := range tb.Rows {
		byMetric[row[0]+"/"+row[1]] = row
		if row[1] == "identical answer" && row[2] != "yes" {
			t.Fatalf("case %q produced a different answer: %v", row[0], row)
		}
	}
	// Batching must at least halve the round trips (the acceptance bar);
	// the hash join must beat the N·M nested-loops evaluation count.
	// Wall-clock rows are informational and not asserted.
	trips := byMetric["batched fills/LXP round trips"]
	if trips == nil {
		t.Fatalf("missing round-trip row: %v", tb.Rows)
	}
	t1, err := strconv.ParseInt(trips[2], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := strconv.ParseInt(trips[3], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if 2*t8 > t1 {
		t.Fatalf("batching below 2x: %d vs %d round trips", t1, t8)
	}
	evals := byMetric["hash equi-join/condition evaluations"]
	if evals == nil {
		t.Fatalf("missing eval row: %v", tb.Rows)
	}
	e0, err := strconv.ParseInt(evals[2], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := strconv.ParseInt(evals[3], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if 10*e1 > e0 {
		t.Fatalf("hash join below 10x: %d vs %d condition evaluations", e0, e1)
	}
}

func TestE17Shape(t *testing.T) {
	tb := E17BatchPipeline()
	byMetric := map[string][]string{}
	for _, row := range tb.Rows {
		byMetric[row[1]] = row
	}
	if row := byMetric["identical answer"]; row == nil || row[2] != "yes" {
		t.Fatalf("batch pipeline produced a different answer: %v", tb.Rows)
	}
	if row := byMetric["source navigations"]; row == nil || row[4] != "yes" {
		t.Fatalf("batch pipeline changed the source navigations: %v", tb.Rows)
	}
	// The acceptance bar: ≥2× fewer per-binding interpreter calls
	// (stream steps + condition evaluations) on the warm drain.
	calls := byMetric["interpreter calls (steps+evals)"]
	if calls == nil {
		t.Fatalf("missing interpreter-call row: %v", tb.Rows)
	}
	c0, err := strconv.ParseInt(calls[2], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := strconv.ParseInt(calls[3], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if 2*c1 > c0 {
		t.Fatalf("batching below 2x: %d vs %d interpreter calls", c0, c1)
	}
	// Condition evaluations are a per-candidate cost, not a per-pull
	// cost: vectorization must leave them exactly equal.
	evals := byMetric["condition evaluations"]
	if evals == nil || evals[2] != evals[3] {
		t.Fatalf("condition evaluations differ across pipelines: %v", evals)
	}
}

func TestE12Shape(t *testing.T) {
	tb := E12RegionCache()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if tb.Rows[i][5] != "identical" {
			t.Fatalf("row %d: answer not byte-identical: %v", i, tb.Rows[i])
		}
	}
	// Warm sessions (rows 2 and 3): zero source navigations and ≥5×
	// fewer total navigation commands than the cold session.
	coldTotal := col(t, tb, 0, 4)
	for _, i := range []int{1, 2} {
		if src := col(t, tb, i, 3); src != 0 {
			t.Fatalf("warm row %d: %d source navigations, want 0", i, src)
		}
		if total := col(t, tb, i, 4); coldTotal < 5*total {
			t.Fatalf("warm row %d: total %d not ≥5× under cold %d", i, total, coldTotal)
		}
	}
	// Cache off (row 4) and post-invalidation (row 5) pay cold-like
	// source costs again.
	for _, i := range []int{3, 4} {
		if src := col(t, tb, i, 3); src == 0 {
			t.Fatalf("row %d should re-derive at the sources: %v", i, tb.Rows[i])
		}
	}
}

func TestE14Shape(t *testing.T) {
	tb := E14AllocationPaths()
	byMetric := map[string][]string{}
	for _, row := range tb.Rows {
		byMetric[row[0]+"/"+row[1]] = row
		if row[1] == "identical answer" && row[2] != "yes" {
			t.Fatalf("case %q produced a different answer: %v", row[0], row)
		}
	}
	// Allocation counts are deterministic enough to bound loosely; the
	// strict ≥3×/≥2× acceptance numbers are checked on the quiet E14 runs
	// recorded in BENCH_pr5.json, not under test-runner noise.
	for metric, floor := range map[string]float64{
		"fingerprint keys/heap objects per query":       2,
		"lean pooled codec/heap KB per cold drain":      1.5,
		"lean pooled codec/heap objects per cold drain": 2,
	} {
		row := byMetric[metric]
		if row == nil {
			t.Fatalf("missing row %q: %v", metric, tb.Rows)
		}
		base, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if base < floor*opt {
			t.Fatalf("%s: %v vs %v below %.1fx floor", metric, base, opt, floor)
		}
	}
}

func TestE15Shape(t *testing.T) {
	tb := E15ClusterL2()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if tb.Rows[i][4] != "identical" {
			t.Fatalf("row %d: answer not byte-identical: %v", i, tb.Rows[i])
		}
	}
	// Cold sessions (rows 1 and 3) pay the same source cost whether
	// standalone or clustered; every warm session pays zero.
	if a, b := col(t, tb, 0, 2), col(t, tb, 2, 2); a != b || a == 0 {
		t.Fatalf("cold source navs: standalone %d vs clustered %d, want equal and nonzero", a, b)
	}
	for _, i := range []int{1, 3, 4} {
		if src := col(t, tb, i, 2); src != 0 {
			t.Fatalf("warm row %d: %d source navigations, want 0", i, src)
		}
	}
	// The cross-node warm session must have filled over the wire.
	if l2 := col(t, tb, 3, 3); l2 == 0 {
		t.Fatal("warm cross-node session recorded no L2 hits")
	}
}

func TestE18Shape(t *testing.T) {
	tb := E18SemanticCache()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if tb.Rows[i][4] != "identical" {
			t.Fatalf("row %d: answer not byte-identical to its oracle: %v", i, tb.Rows[i])
		}
	}
	// Cold superset rows (1, 3, 5) pay real source navigations.
	for _, i := range []int{0, 2, 4} {
		if src := col(t, tb, i, 1); src == 0 {
			t.Fatalf("cold row %d touched no sources: %v", i, tb.Rows[i])
		}
	}
	// The warm subsumed rows (2 and 6): zero source navigations, exactly
	// one semantic hit; the fleet row also short-circuits routing.
	for _, i := range []int{1, 5} {
		if src := col(t, tb, i, 1); src != 0 {
			t.Fatalf("semantic row %d: %d source navigations, want 0", i, src)
		}
		if hits := col(t, tb, i, 2); hits != 1 {
			t.Fatalf("semantic row %d: %d semantic hits, want 1", i, hits)
		}
	}
	if local := col(t, tb, 5, 3); local != 1 {
		t.Fatalf("fleet subsumed open: semantic local = %d, want 1", local)
	}
	// The ablation row re-pays the sources and records no semantic hit.
	if src := col(t, tb, 3, 1); src == 0 {
		t.Fatal("-semantic-cache=false still answered from the superset")
	}
	if hits := col(t, tb, 3, 2); hits != 0 {
		t.Fatalf("ablation recorded %d semantic hits", hits)
	}
}

func TestE19Shape(t *testing.T) {
	tb := E19SpeculativePrefetch()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d: %v", len(tb.Rows), tb.Rows)
	}
	// Every replayed session — prefetch on, off, solo, fleet — serves
	// the oracle's bytes.
	for _, i := range []int{0, 1, 3, 4} {
		if tb.Rows[i][5] != "identical" {
			t.Fatalf("row %d: answer not byte-identical: %v", i, tb.Rows[i])
		}
	}
	// Prefetch-on rows (1 and 4): steady-state regions cost zero
	// interactive source navigations; the ablation rows pay real ones.
	for _, i := range []int{0, 3} {
		if steady := col(t, tb, i, 2); steady != 0 {
			t.Fatalf("prefetch-on row %d: steady navs = %d, want 0", i, steady)
		}
	}
	for _, i := range []int{1, 4} {
		if steady := col(t, tb, i, 2); steady == 0 {
			t.Fatalf("ablation row %d touched no sources: %v", i, tb.Rows[i])
		}
	}
	// The acceptance bar: ≥5× fewer interactive source navigations
	// with prefetch on, solo and fleet.
	for _, i := range []int{2, 5} {
		cell := tb.Rows[i][2]
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("ratio row %d: %q: %v", i, cell, err)
		}
		if ratio < 5 {
			t.Fatalf("interactive ratio %.1f below the 5x acceptance bar", ratio)
		}
	}
}

func TestE16Shape(t *testing.T) {
	tb := E16FleetTracing()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Tracing is free in navigation terms: identical client commands and
	// identical fleet-wide source navigations either way.
	if off, on := col(t, tb, 0, 1), col(t, tb, 1, 1); off != on {
		t.Fatalf("client cmds differ: off=%d on=%d", off, on)
	}
	if off, on := col(t, tb, 0, 2), col(t, tb, 1, 2); off != on {
		t.Fatalf("source navs differ: off=%d on=%d", off, on)
	}
	// Only the traced session yields spans — one stitched forest that
	// covers both the entry and owner nodes and attributes every source
	// navigation.
	if got := col(t, tb, 0, 3); got != 0 {
		t.Fatalf("untraced session recorded %d spans", got)
	}
	if spans, srcSpans := col(t, tb, 1, 3), col(t, tb, 1, 4); spans == 0 || srcSpans == 0 {
		t.Fatalf("traced session: spans=%d src spans=%d", spans, srcSpans)
	}
	if srcSpans, navs := col(t, tb, 1, 4), col(t, tb, 1, 2); srcSpans != navs {
		t.Fatalf("src spans = %d, counted source navs = %d", srcSpans, navs)
	}
	if nodes := col(t, tb, 1, 5); nodes < 2 {
		t.Fatalf("stitched forest covers %d nodes, want >= 2", nodes)
	}
}
