package experiments

import (
	"net"

	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/telemetry"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// E14AllocationPaths measures the allocation-aware fast paths of PR 5
// against the canonical implementations they replace, on two workloads
// chosen so the replaced machinery dominates:
//
//   - distinct+groupBy keys: each binding's key digests a ~200-node home
//     payload. Canonical string keys materialize and render the payload
//     per binding (O(subtree) allocations each); structural fingerprints
//     fold it into 16 bytes with a memoized hash (O(1) amortized).
//   - cold chunked-catalog drain: a client drains a chunked catalog from
//     an LXP wrapper over real TCP. The generic encoding/json codec and
//     per-frame buffers allocate per frame; the lean codec with pooled
//     buffers and label interning recycles nearly everything.
//
// Both cases carry an identity row: the optimized path must produce a
// byte-identical answer. Allocation counts are measured with
// runtime/metrics deltas over repeated runs; they are stable to within
// a few objects, and the improvement ratios are what the claim is
// about.
func E14AllocationPaths() Table {
	t := Table{
		ID:    "E14",
		Title: "Allocation-aware hot paths (fingerprint keys, lean pooled wire codec)",
		Claim: "Structural fingerprints and the pooled lean codec cut allocations " +
			"on equality-heavy queries and wire-heavy drains without changing " +
			"a single byte of any answer.",
		Expect: "≥3× fewer heap objects per query with fingerprint keys on the " +
			"distinct+groupBy workload; ≥2× fewer heap bytes per cold catalog " +
			"drain with the lean pooled codec; every identity row says yes.",
		Headers: []string{"case", "metric", "baseline", "optimized", "improvement"},
	}
	t.Rows = append(t.Rows, fingerprintKeyRows()...)
	t.Rows = append(t.Rows, leanCodecRows()...)
	return t
}

// measureAllocs runs fn iters times and returns the per-run heap
// allocation deltas (objects, bytes) from runtime/metrics.
func measureAllocs(iters int, fn func()) (objects, bytes uint64) {
	fn() // warm caches (interner, DFA states, pools) outside the window
	before := telemetry.ReadMemStats()
	for i := 0; i < iters; i++ {
		fn()
	}
	d := telemetry.ReadMemStats().Sub(before)
	return d.AllocObjects / uint64(iters), d.AllocBytes / uint64(iters)
}

// fingerprintKeyRows runs the distinct+groupBy plan whose keys digest
// full ~200-node home payloads, with canonical string keys vs.
// structural fingerprints.
func fingerprintKeyRows() [][]string {
	src := workload.DetailedHomes(160, 200, 12, 7)
	plan := workload.DistinctZipGroupsPlan("homesSrc")
	srcs := map[string]*xmltree.Tree{"homesSrc": src}
	run := func(fp bool) (*xmltree.Tree, uint64, uint64) {
		opts := core.Options{JoinCache: true, PathCache: true, GroupCache: true,
			HashJoin: true, Fingerprints: fp}
		var got *xmltree.Tree
		objects, bytes := measureAllocs(5, func() {
			q, _ := lazyRun(opts, srcs, plan)
			var err error
			if got, err = q.Materialize(); err != nil {
				panic(err)
			}
		})
		return got, objects, bytes
	}
	canonical, o0, b0 := run(false)
	fingerprint, o1, b1 := run(true)
	same := "yes"
	if !xmltree.Equal(canonical, fingerprint) {
		same = "NO"
	}
	return [][]string{
		{"fingerprint keys", "heap objects per query", itoa(int64(o0)), itoa(int64(o1)),
			ratio(float64(o0), float64(o1))},
		{"fingerprint keys", "heap KB per query", itoa(int64(b0 / 1024)), itoa(int64(b1 / 1024)),
			ratio(float64(b0), float64(b1))},
		{"fingerprint keys", "identical answer", same, same, "="},
	}
}

// leanCodecRows drains a cold 150-book chunked catalog from an LXP
// TreeServer over a real TCP connection, with the generic codec and
// per-frame allocation vs. the lean codec with pooled buffers.
func leanCodecRows() [][]string {
	catalog := workload.Books("az", 150, 7)
	want, err := nav.Materialize(nav.NewTreeDoc(catalog))
	if err != nil {
		panic(err)
	}
	run := func(lean bool) (*xmltree.Tree, uint64, uint64) {
		lxp.SetWireOptimizations(lean)
		vxdp.SetPooledBuffers(lean)
		defer lxp.SetWireOptimizations(true)
		defer vxdp.SetPooledBuffers(true)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		srv := lxp.NewTCPServer(&lxp.TreeServer{Tree: catalog, Chunk: 10, InlineLimit: 1})
		go srv.Serve(l) //nolint:errcheck // exits with the listener
		defer l.Close()
		var got *xmltree.Tree
		objects, bytes := measureAllocs(5, func() {
			client, err := lxp.Dial(l.Addr().String())
			if err != nil {
				panic(err)
			}
			defer client.Close()
			b, err := buffer.New(client, "u")
			if err != nil {
				panic(err)
			}
			if got, err = nav.Materialize(b); err != nil {
				panic(err)
			}
		})
		return got, objects, bytes
	}
	legacy, o0, b0 := run(false)
	lean, o1, b1 := run(true)
	same := "yes"
	if !xmltree.Equal(legacy, lean) || !xmltree.Equal(legacy, want) {
		same = "NO"
	}
	return [][]string{
		{"lean pooled codec", "heap KB per cold drain", itoa(int64(b0 / 1024)), itoa(int64(b1 / 1024)),
			ratio(float64(b0), float64(b1))},
		{"lean pooled codec", "heap objects per cold drain", itoa(int64(o0)), itoa(int64(o1)),
			ratio(float64(o0), float64(o1))},
		{"lean pooled codec", "identical answer", same, same, "="},
	}
}
