// Package experiments implements the measured experiment suite of
// EXPERIMENTS.md: one function per experiment id (E1–E10), each
// regenerating a table that tests one of the paper's claims. The paper
// itself contains no numeric evaluation — its claims are architectural
// and complexity-theoretic — so each experiment turns a claim into a
// measured table whose *shape* (who wins, growth rates, crossovers) is
// compared against the paper's prediction.
//
// All numbers are deterministic: workloads are seeded and the measured
// quantities are navigation/message/byte counters, not wall-clock time.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's regenerated result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is a short description.
	Title string
	// Claim is the paper claim under test, with its anchor.
	Claim string
	// Expect is the predicted shape of the results.
	Expect string
	// Headers and Rows are the measured table.
	Headers []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim:  %s\n", t.Claim)
	fmt.Fprintf(&b, "expect: %s\n\n", t.Expect)

	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim:* %s\n\n*Expected shape:* %s\n\n", t.Claim, t.Expect)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// registry maps experiment ids to their runners.
var registry = map[string]func() Table{
	"E1":  E1Browsability,
	"E2":  E2LazyVsEager,
	"E3":  E3SelectCommand,
	"E4":  E4Granularity,
	"E5":  E5PartialExploration,
	"E6":  E6JoinCache,
	"E7":  E7RecursiveCache,
	"E8":  E8LiberalLXP,
	"E9":  E9GroupByCache,
	"E10": E10Rewriting,
	"E11": E11AsyncPrefetch,
	"E12": E12RegionCache,
	"E13": E13ParallelPipeline,
	"E14": E14AllocationPaths,
	"E15": E15ClusterL2,
	"E16": E16FleetTracing,
	"E17": E17BatchPipeline,
	"E18": E18SemanticCache,
	"E19": E19SpeculativePrefetch,
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// Run runs one experiment by id.
func Run(id string) (Table, error) {
	fn, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return fn(), nil
}

// All runs every experiment in order.
func All() []Table {
	var out []Table
	for _, id := range IDs() {
		t, _ := Run(id)
		out = append(out, t)
	}
	return out
}

func itoa(n int64) string { return fmt.Sprintf("%d", n) }
