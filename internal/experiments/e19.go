package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
)

// persona is the client behavior E19 replays; mixbench -persona
// overrides it through SetPersona.
var persona = "deep-drill"

// SetPersona overrides the client persona replayed by E19
// ("deep-drill", "glance" or "select-heavy"). The steady-state
// zero-navigation shape in Expect is the deep-drill prediction; the
// other personas exist to show how the successor model degrades —
// shallow drains for glance, near-silence for select-heavy.
func SetPersona(name string) { persona = name }

// E19SpeculativePrefetch measures navigation-driven speculative
// prefetch (DESIGN.md §15): the server's per-view successor model
// watches which region a session engages, predicts the next one, and
// drains it into the region cache on speculative engines *before the
// client asks*. For the deep-drill persona the model locks onto the
// +1 scan after two engagements, so every region from the third on is
// served entirely from speculatively warmed cache — zero interactive
// source navigations — while the -prefetch=false ablation pays the
// sources for every region. The clustered half replays the same
// persona through a non-owner of a proxy-mode fleet: the proxied
// session speculates on the owner, and the steady-state regions again
// cost the whole fleet nothing interactive.
func E19SpeculativePrefetch() Table {
	t := Table{
		ID:    "E19",
		Title: "Speculative prefetch (persona: " + persona + ")",
		Claim: "A first-order successor model over engaged regions predicts the " +
			"client's next region and warms it speculatively, so sequential " +
			"navigation beyond the warm-up regions costs zero interactive source " +
			"navigations, on one node and across a proxied fleet.",
		Expect: "deep-drill: regions 0–1 pay the sources (training), regions 2+ " +
			"cost 0 interactive source navigations with hits ≈ issued and wasted 0; " +
			"the -prefetch=false ablation pays the sources for every region " +
			"(≥5× more interactive navigations in total); every answer is " +
			"byte-identical to the uncached oracle replay.",
		Headers: []string{"session", "warm-up src navs", "steady src navs",
			"issued/hits/wasted", "spec navs", "answer"},
	}
	const regions = 16
	const warmup = 2 // regions the model needs before its first prediction
	const query = `CONSTRUCT <homes> $H {$H} </homes> {} WHERE homesSrc homes.home $H`
	homes, _ := workload.HomesSchools(regions, 1, 6, 19)
	script := workload.PersonaScript(persona, regions, 19)
	if script == nil {
		panic("experiments: unknown persona " + persona)
	}

	// Oracle replay: the per-step explored parts an uncached engine
	// answers, bytes and all.
	oracle := make([]string, len(script))
	{
		m := mediator.New(mediator.DefaultOptions())
		m.RegisterTree("homesSrc", homes)
		res, err := m.Query(query)
		if err != nil {
			panic(err)
		}
		err = workload.ReplayPersona(res.Document(), script, func(i int, explored string) error {
			oracle[i] = explored
			return nil
		})
		if err != nil {
			panic(err)
		}
	}

	// Interactive (demand) sources and speculative sources are counted
	// separately: the demand factory feeds src, the spec factory —
	// registering the *same* sources in the same order, so fingerprints
	// and registry versions line up — feeds specSrc.
	factory := func(counters *metrics.Counters) server.Factory {
		return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
			m := mediator.New(mediator.DefaultOptions())
			m.SetRegionCache(rc)
			m.RegisterSource("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: counters})
			return m, nil
		}
	}

	type member struct {
		srv      *server.Server
		node     *cluster.Node // nil for the single-node halves
		addr     string
		src      *metrics.Counters
		specSrc  *metrics.Counters
		done     chan error
		prefetch bool
	}
	quiet := slog.New(slog.DiscardHandler)

	boot := func(n int, prefetch bool) []*member {
		listeners := make([]net.Listener, n)
		addrs := make([]string, n)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			listeners[i], addrs[i] = l, l.Addr().String()
		}
		fleet := make([]*member, n)
		for i := range fleet {
			src, specSrc := &metrics.Counters{}, &metrics.Counters{}
			rc := regioncache.New(0)
			opts := []server.Option{server.WithRegionCache(rc), server.WithLogger(quiet)}
			if prefetch {
				opts = append(opts, server.WithPrefetch(true), server.WithSpecFactory(factory(specSrc)))
			}
			var node *cluster.Node
			if n > 1 {
				peers := make([]string, 0, n-1)
				for j, a := range addrs {
					if j != i {
						peers = append(peers, a)
					}
				}
				var err error
				node, err = cluster.New(cluster.Config{
					Self: addrs[i], Peers: peers, Mode: cluster.ModeProxy,
					HealthInterval: time.Hour, FlushInterval: -1, Logger: quiet,
				}, rc)
				if err != nil {
					panic(err)
				}
				opts = append(opts, server.WithCluster(node))
			}
			srv, err := server.New(factory(src), opts...)
			if err != nil {
				panic(err)
			}
			done := make(chan error, 1)
			go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
			if node != nil {
				node.Start()
			}
			fleet[i] = &member{srv: srv, node: node, addr: addrs[i], src: src,
				specSrc: specSrc, done: done, prefetch: prefetch}
		}
		return fleet
	}
	halt := func(fleet []*member) {
		for _, m := range fleet {
			if m.node != nil {
				m.node.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}

	// quiesce waits until the speculating member has no drain in
	// flight, so the next step measures a fully warmed (or fully
	// skipped) cache rather than a race against the drain.
	quiesce := func(m *member) {
		if !m.prefetch {
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := m.srv.Stats()
			if st.Prefetch == nil || st.Prefetch.Inflight == 0 {
				return
			}
			if time.Now().After(deadline) {
				panic("experiments: speculative drain did not quiesce")
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	// run replays the persona through fleet[entry] and reports the
	// interactive source navigations split into warm-up steps (the
	// first two) and steady-state steps, the speculating member's
	// prefetch counters, the fleet-wide speculative navigations, and
	// whether every explored part matched the oracle replay.
	run := func(fleet []*member, entry int, speculator *member) []string {
		fleetNavs := func(spec bool) int64 {
			var n int64
			for _, m := range fleet {
				if spec {
					n += m.specSrc.Navigations()
				} else {
					n += m.src.Navigations()
				}
			}
			return n
		}
		c, err := vxdp.Dial(fleet[entry].addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		if err := c.Open(query); err != nil {
			panic(err)
		}
		quiesce(speculator)
		var warm, steady int64
		prev := fleetNavs(false)
		specBefore := fleetNavs(true)
		identical := true
		err = workload.ReplayPersona(c, script, func(i int, explored string) error {
			quiesce(speculator)
			navs := fleetNavs(false) - prev
			prev += navs
			if i < warmup {
				warm += navs
			} else {
				steady += navs
			}
			if explored != oracle[i] {
				identical = false
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		counters := "off"
		if st := speculator.srv.Stats(); st.Prefetch != nil {
			counters = fmt.Sprintf("%d/%d/%d", st.Prefetch.Issued, st.Prefetch.Hits, st.Prefetch.Wasted)
		}
		verdict := "identical"
		if !identical {
			verdict = "DIFFERS"
		}
		return []string{itoa(warm), itoa(steady), counters, itoa(fleetNavs(true) - specBefore), verdict}
	}

	row := func(label string, cells []string) {
		t.Rows = append(t.Rows, append([]string{label}, cells...))
	}
	total := func(cells []string) int64 {
		var w, s int64
		fmt.Sscan(cells[0], &w)
		fmt.Sscan(cells[1], &s)
		return w + s
	}

	solo := boot(1, true)
	on := run(solo, 0, solo[0])
	row("1 node: prefetch on", on)
	halt(solo)

	ablate := boot(1, false)
	off := run(ablate, 0, ablate[0])
	row("1 node: -prefetch=false", off)
	halt(ablate)
	if onT, offT := total(on), total(off); onT > 0 {
		row("1 node: off/on interactive ratio",
			[]string{"", fmt.Sprintf("%.1fx", float64(offT)/float64(onT)), "", "", ""})
	}

	// The fleet halves replay through a node that does NOT own the
	// view, so speculation happens on the owner end of a proxied
	// session.
	probe := mediator.New(mediator.DefaultOptions())
	probe.RegisterTree("homesSrc", homes)
	res, err := probe.Query(query)
	if err != nil {
		panic(err)
	}
	name, fp := res.CacheKey()
	nonOwner := func(fleet []*member) (entry int, owner *member) {
		ownerAddr := fleet[0].node.Owner(name, fp)
		owner = fleet[0]
		for i, m := range fleet {
			if m.addr == ownerAddr {
				owner = fleet[i]
			} else {
				entry = i
			}
		}
		return entry, owner
	}

	fleetOn := boot(3, true)
	entry, owner := nonOwner(fleetOn)
	fOn := run(fleetOn, entry, owner)
	row("3 nodes via non-owner: prefetch on", fOn)
	halt(fleetOn)

	fleetOff := boot(3, false)
	entry, owner = nonOwner(fleetOff)
	fOff := run(fleetOff, entry, owner)
	row("3 nodes via non-owner: -prefetch=false", fOff)
	halt(fleetOff)
	if onT, offT := total(fOn), total(fOff); onT > 0 {
		row("3 nodes: off/on interactive ratio",
			[]string{"", fmt.Sprintf("%.1fx", float64(offT)/float64(onT)), "", "", ""})
	}
	return t
}
