package experiments

import (
	"fmt"
	"time"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// delayServer simulates a remote wrapper: every LXP round trip —
// get_root, fill, or fill_many — costs one fixed network delay,
// whatever it carries. It is the cost model under which the parallel
// navigation pipeline is measured: batching amortizes the delay over
// many holes, parallel derivation overlaps the delays of independent
// sources.
type delayServer struct {
	inner lxp.Server
	delay time.Duration
}

func (d *delayServer) GetRoot(uri string) (string, error) {
	time.Sleep(d.delay)
	return d.inner.GetRoot(uri)
}

func (d *delayServer) Fill(holeID string) ([]*xmltree.Tree, error) {
	time.Sleep(d.delay)
	return d.inner.Fill(holeID)
}

func (d *delayServer) FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error) {
	time.Sleep(d.delay)
	return lxp.FillMany(d.inner, holeIDs)
}

// E13ParallelPipeline measures the three optimizations of the parallel
// navigation pipeline against the same lazy semantics they must
// preserve: batched fills (round trips, not fills, carry the latency),
// the incremental hash equi-join (probing replaces the inner scan per
// outer binding), and concurrent input derivation for joins over
// disjoint sources (the two drains overlap instead of adding up).
//
// Every case reports a baseline/optimized pair plus an identity row:
// the optimized pipeline must produce the identical answer document.
// Counter rows (round trips, condition evaluations) are deterministic;
// wall-clock rows depend on the simulated delay and are approximate.
func E13ParallelPipeline() Table {
	t := Table{
		ID:    "E13",
		Title: "Parallel navigation pipeline (batching, hash join, parallel derivation)",
		Claim: "Batched fills, the hash equi-join, and concurrent input derivation " +
			"cut round trips, condition evaluations, and wall-clock latency " +
			"without changing a single byte of the answer.",
		Expect: "≥2× fewer LXP round trips with batching; condition evaluations drop " +
			"from ≈N·M to ≈N+matches with the hash join; the parallel drain of two " +
			"delayed sources runs in ≈max instead of ≈sum of their latencies; every " +
			"identity row says yes.",
		Headers: []string{"case", "metric", "baseline", "optimized", "improvement"},
	}
	t.Rows = append(t.Rows, batchedFillRows()...)
	t.Rows = append(t.Rows, hashJoinRows()...)
	t.Rows = append(t.Rows, parallelDeriveRows()...)
	return t
}

// ratio renders how many times smaller optimized is than baseline.
func ratio(baseline, optimized float64) string {
	if optimized <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", baseline/optimized)
}

// drainPrefetch resolves the root (the prefetcher only fills holes the
// client has discovered), starts the asynchronous prefetcher, waits
// until it has filled every hole, and returns how long the drain took.
func drainPrefetch(b *buffer.Buffer) time.Duration {
	start := time.Now()
	if _, err := b.Root(); err != nil {
		panic(err)
	}
	b.StartPrefetch()
	deadline := time.Now().Add(60 * time.Second)
	for b.PendingHoles() > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	b.StopPrefetch()
	return time.Since(start)
}

// batchedFillRows drains a cold 150-book catalog (chunked fills, holes
// per book) through a 1ms-per-round-trip wrapper, with single-hole
// fills vs. fill_many batches of 8.
func batchedFillRows() [][]string {
	catalog := workload.Books("az", 150, 7)
	want, err := nav.Materialize(nav.NewTreeDoc(catalog))
	if err != nil {
		panic(err)
	}
	run := func(batch int) (trips int, elapsed time.Duration, identical bool) {
		srv := &delayServer{
			inner: &lxp.TreeServer{Tree: catalog, Chunk: 10, InlineLimit: 4},
			delay: time.Millisecond,
		}
		b, err := buffer.New(srv, "u")
		if err != nil {
			panic(err)
		}
		b.Batch = batch
		elapsed = drainPrefetch(b)
		got, err := nav.Materialize(b)
		if err != nil {
			panic(err)
		}
		return b.RoundTrips(), elapsed, xmltree.Equal(got, want)
	}
	t1, d1, ok1 := run(1)
	t8, d8, ok8 := run(8)
	same := "yes"
	if !ok1 || !ok8 {
		same = "NO"
	}
	return [][]string{
		{"batched fills", "LXP round trips", itoa(int64(t1)), itoa(int64(t8)),
			ratio(float64(t1), float64(t8))},
		{"batched fills", "cold drain wall-clock (ms)",
			itoa(d1.Milliseconds()), itoa(d8.Milliseconds()),
			ratio(float64(d1), float64(d8))},
		{"batched fills", "identical answer", same, same, "="},
	}
}

// zipJoinPlan is the Fig. 4 equi-join shape over homes and schools with
// a countable join condition: H ⋈ S on zip equality, projected to the
// pair. jn, when non-nil, counts condition evaluations.
func zipJoinPlan(jn *int64) algebra.Op {
	left := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
		Parent: "r1", Path: mustPath("home"), Out: "H",
	}
	leftZip := &algebra.GetDescendants{Input: left, Parent: "H",
		Path: mustPath("zip._"), Out: "V1"}
	right := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "schoolsSrc", Var: "r2"},
		Parent: "r2", Path: mustPath("school"), Out: "S",
	}
	rightZip := &algebra.GetDescendants{Input: right, Parent: "S",
		Path: mustPath("zip._"), Out: "V2"}
	var cond algebra.Cond = algebra.Eq(algebra.V("V1"), algebra.V("V2"))
	if jn != nil {
		cond = &countingCond{inner: cond, n: jn}
	}
	return &algebra.Project{
		Input: &algebra.Join{Left: leftZip, Right: rightZip, Cond: cond},
		Keep:  []string{"H", "S"},
	}
}

// hashJoinRows materializes the zip equi-join of 300 homes × 300
// schools with nested loops vs. the incremental hash join.
func hashJoinRows() [][]string {
	homes, schools := workload.HomesSchools(300, 300, 40, 9)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	run := func(opts core.Options) (evals int64, elapsed time.Duration, got *xmltree.Tree) {
		var jn int64
		q, _ := lazyRun(opts, srcs, zipJoinPlan(&jn))
		start := time.Now()
		got, err := q.Materialize()
		if err != nil {
			panic(err)
		}
		return jn, time.Since(start), got
	}
	base := core.Options{JoinCache: true, PathCache: true, GroupCache: true}
	hash := base
	hash.HashJoin = true
	e0, d0, g0 := run(base)
	e1, d1, g1 := run(hash)
	same := "yes"
	if !xmltree.Equal(g0, g1) {
		same = "NO"
	}
	return [][]string{
		{"hash equi-join", "condition evaluations", itoa(e0), itoa(e1),
			ratio(float64(e0), float64(e1))},
		{"hash equi-join", "join wall-clock (ms)",
			itoa(d0.Milliseconds()), itoa(d1.Milliseconds()),
			ratio(float64(d0), float64(d1))},
		{"hash equi-join", "identical answer", same, same, "="},
	}
}

// parallelDeriveRows joins two LXP-buffered sources behind
// 5ms-per-round-trip wrappers: serially the two input drains add up,
// with Options.Parallel they overlap.
func parallelDeriveRows() [][]string {
	homes, schools := workload.HomesSchools(50, 50, 12, 11)
	run := func(opts core.Options) (elapsed time.Duration, got *xmltree.Tree) {
		e := core.New(core.WithOptions(opts))
		for name, tree := range map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools} {
			srv := &delayServer{
				inner: &lxp.TreeServer{Tree: tree, Chunk: 5, InlineLimit: 64},
				delay: 5 * time.Millisecond,
			}
			b, err := buffer.New(srv, name)
			if err != nil {
				panic(err)
			}
			e.Register(name, b)
		}
		q, err := e.Compile(zipJoinPlan(nil))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		got, err = q.Materialize()
		if err != nil {
			panic(err)
		}
		return time.Since(start), got
	}
	serial := core.Options{JoinCache: true, PathCache: true, GroupCache: true, HashJoin: true}
	parallel := serial
	parallel.Parallel = true
	d0, g0 := run(serial)
	d1, g1 := run(parallel)
	same := "yes"
	if !xmltree.Equal(g0, g1) {
		same = "NO"
	}
	return [][]string{
		{"parallel derivation", "input-drain wall-clock (ms)",
			itoa(d0.Milliseconds()), itoa(d1.Milliseconds()),
			ratio(float64(d0), float64(d1))},
		{"parallel derivation", "identical answer", same, same, "="},
	}
}
