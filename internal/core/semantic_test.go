package core

import (
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/regioncache"
	"mix/internal/xmas"
	"mix/internal/xmltree"
)

// The semantic-cache soundness contract: whenever a query is answered
// from a subsuming cached region, the answer must be byte-identical to
// the from-source drain and cost zero source navigations.

func translateQ(t *testing.T, text string) algebra.Op {
	t.Helper()
	q, err := xmas.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := q.Translate()
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	return p
}

func sumNavs(counters map[string]*nav.CountingDoc) int64 {
	var n int64
	for _, c := range counters {
		n += c.Counters.Navigations()
	}
	return n
}

func bibTree() *xmltree.Tree {
	return xmltree.Elem("bib",
		xmltree.Elem("book", xmltree.Text("title", "tcp"), xmltree.Text("price", "65")),
		xmltree.Elem("book", xmltree.Text("title", "data"), xmltree.Text("price", "19")),
		xmltree.Elem("book", xmltree.Text("title", "web"), xmltree.Text("price", "12")),
		xmltree.Elem("cd", xmltree.Text("title", "sonata"), xmltree.Text("price", "10")),
		xmltree.Elem("book", xmltree.Text("title", "data"), xmltree.Text("price", "19")),
	)
}

// drainSemPair drains the super query cold, then materializes the sub
// query against the same cache and returns (sub answer, source navs the
// sub query cost, cache stats).
func drainSemPair(t *testing.T, superPlan, subPlan algebra.Op, srcs map[string]*xmltree.Tree, semantic bool) (*xmltree.Tree, int64, regioncache.Stats) {
	t.Helper()
	opts := DefaultOptions()
	opts.SemanticCache = semantic
	e, counters := engineWith(opts, srcs)
	cache := regioncache.New(0)
	e.SetRegionCache(cache)

	qs := mustCompile(t, e, superPlan)
	qs.SetCacheName("v")
	mustMaterialize(t, qs)

	before := sumNavs(counters)
	qq := mustCompile(t, e, subPlan)
	qq.SetCacheName("v")
	got := mustMaterialize(t, qq)
	return got, sumNavs(counters) - before, cache.Stats()
}

// oracle materializes the plan on a fresh, uncached engine.
func oracle(t *testing.T, plan algebra.Op, srcs map[string]*xmltree.Tree) *xmltree.Tree {
	t.Helper()
	e, _ := engineWith(DefaultOptions(), srcs)
	return mustMaterialize(t, mustCompile(t, e, plan))
}

// TestSemanticConstructSubsumed: the E18 pair — bib[entry] drained
// cold, then bib[entry WHERE price<20] answered from it with zero
// source navigations and a byte-identical answer.
func TestSemanticConstructSubsumed(t *testing.T) {
	superQ := `CONSTRUCT <result> $B {$B} </result> {} WHERE src bib.book $B`
	subQ := `CONSTRUCT <result> $B {$B} </result> {}
	         WHERE src bib.book $B AND $B price._ $P AND $P < "20"`
	srcs := map[string]*xmltree.Tree{"src": bibTree()}
	superPlan, subPlan := translateQ(t, superQ), translateQ(t, subQ)

	got, navs, st := drainSemPair(t, superPlan, subPlan, srcs, true)
	want := oracle(t, subPlan, srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("semantic answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs != 0 {
		t.Fatalf("subsumed query cost %d source navigations, want 0", navs)
	}
	if st.SemanticHits != 1 {
		t.Fatalf("semantic hits = %d, want 1 (stats %+v)", st.SemanticHits, st)
	}

	// Ablated, the same pair re-drains the sources (exact-match only)
	// but still answers identically.
	got, navs, st = drainSemPair(t, superPlan, subPlan, srcs, false)
	if !xmltree.Equal(got, want) {
		t.Fatalf("ablated answer differs")
	}
	if navs == 0 {
		t.Fatal("ablated subsumed query touched no source — semantic path ran despite SemanticCache=false")
	}
	if st.SemanticHits != 0 || st.SemanticMisses != 0 {
		t.Fatalf("ablated run recorded semantic traffic: %+v", st)
	}
}

// TestSemanticConstructPathWeakened: the sub query restricts the
// *grouping* path (book ⊂ _) rather than adding a condition.
func TestSemanticConstructPathWeakened(t *testing.T) {
	superQ := `CONSTRUCT <result> $B {$B} </result> {} WHERE src bib._ $B`
	subQ := `CONSTRUCT <result> $B {$B} </result> {} WHERE src bib.book $B`
	srcs := map[string]*xmltree.Tree{"src": bibTree()}
	superPlan, subPlan := translateQ(t, superQ), translateQ(t, subQ)

	got, navs, st := drainSemPair(t, superPlan, subPlan, srcs, true)
	want := oracle(t, subPlan, srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("semantic answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs != 0 {
		t.Fatalf("subsumed query cost %d source navigations, want 0", navs)
	}
	if st.SemanticHits != 1 {
		t.Fatalf("semantic hits = %d (stats %+v)", st.SemanticHits, st)
	}
}

// TestSemanticConstructJoin: a join-shaped construct (the Fig. 3
// family) with a σ-restricted sub query.
func TestSemanticConstructJoin(t *testing.T) {
	superQ := `CONSTRUCT <answer> <med_home> $H {$H} </med_home> </answer> {}
	           WHERE homesSrc homes.home $H AND $H zip._ $V1
	           AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`
	subQ := `CONSTRUCT <answer> <med_home> $H {$H} </med_home> </answer> {}
	         WHERE homesSrc homes.home $H AND $H zip._ $V1
	         AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
	         AND $H price._ $P AND $P < "400000"`
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("zip", "92093"), xmltree.Text("price", "350000")),
		xmltree.Elem("home", xmltree.Text("zip", "92093"), xmltree.Text("price", "990000")),
		xmltree.Elem("home", xmltree.Text("zip", "92122"), xmltree.Text("price", "200000")),
	)
	schools := xmltree.Elem("schools",
		xmltree.Elem("school", xmltree.Text("zip", "92093")),
		xmltree.Elem("school", xmltree.Text("zip", "92093")),
	)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	superPlan, subPlan := translateQ(t, superQ), translateQ(t, subQ)

	got, navs, st := drainSemPair(t, superPlan, subPlan, srcs, true)
	want := oracle(t, subPlan, srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("semantic answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs != 0 {
		t.Fatalf("subsumed query cost %d source navigations, want 0", navs)
	}
	if st.SemanticHits != 1 {
		t.Fatalf("semantic hits = %d (stats %+v)", st.SemanticHits, st)
	}
}

// TestSemanticBindingsResidual: bindings-shaped plans (no construct
// root) with a residual σ and with a weakened path.
func TestSemanticBindingsResidual(t *testing.T) {
	src := xmltree.Elem("r",
		xmltree.Leaf("a"), xmltree.Leaf("b"), xmltree.Leaf("a"), xmltree.Leaf("c"))
	srcs := map[string]*xmltree.Tree{"s": src}
	gd := func(path string) *algebra.GetDescendants {
		p, err := pathexpr.Parse(path)
		if err != nil {
			t.Fatalf("path %q: %v", path, err)
		}
		return &algebra.GetDescendants{
			Input: &algebra.Source{URL: "s", Var: "X"}, Parent: "X", Path: p, Out: "Y"}
	}
	superPlan := gd("_")
	subPlan := algebra.Op(&algebra.Select{Input: gd("_"),
		Cond: &algebra.Cmp{Op: algebra.OpEq, L: algebra.V("Y"), R: algebra.Lit("a")}})

	got, navs, st := drainSemPair(t, superPlan, subPlan, srcs, true)
	want := oracle(t, subPlan, srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("residual answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs != 0 {
		t.Fatalf("residual sub query cost %d source navigations, want 0", navs)
	}
	if st.SemanticHits != 1 {
		t.Fatalf("semantic hits = %d (stats %+v)", st.SemanticHits, st)
	}

	// Path weakening: sub's gd matches only "a" children.
	subPath := algebra.Op(gd("a"))
	got, navs, st = drainSemPair(t, superPlan, subPath, srcs, true)
	want = oracle(t, subPath, srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("path-weakened answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs != 0 {
		t.Fatalf("path-weakened sub query cost %d source navigations, want 0", navs)
	}
	if st.SemanticHits != 1 {
		t.Fatalf("semantic hits = %d (stats %+v)", st.SemanticHits, st)
	}
}

// TestSemanticRejectsPartialSuperset: a superset region that is not
// fully explored must never answer a subsumed query (incomplete skip,
// then an ordinary source-backed evaluation).
func TestSemanticRejectsPartialSuperset(t *testing.T) {
	superQ := `CONSTRUCT <result> $B {$B} </result> {} WHERE src bib.book $B`
	subQ := `CONSTRUCT <result> $B {$B} </result> {}
	         WHERE src bib.book $B AND $B price._ $P AND $P < "20"`
	srcs := map[string]*xmltree.Tree{"src": bibTree()}

	e, _ := engineWith(DefaultOptions(), srcs)
	cache := regioncache.New(0)
	e.SetRegionCache(cache)

	qs := mustCompile(t, e, translateQ(t, superQ))
	qs.SetCacheName("v")
	// Explore only the root label: the entry exists and is indexed but
	// is nowhere near complete.
	doc := qs.Document()
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Fetch(root); err != nil {
		t.Fatal(err)
	}

	qq := mustCompile(t, e, translateQ(t, subQ))
	qq.SetCacheName("v")
	got := mustMaterialize(t, qq)
	want := oracle(t, translateQ(t, subQ), srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("fallback answer differs\ngot  %v\nwant %v", got, want)
	}
	st := cache.Stats()
	if st.SemanticHits != 0 {
		t.Fatalf("semantic hit against a partial superset: %+v", st)
	}
	if st.SemanticIncompleteSkips == 0 {
		t.Fatalf("no incomplete skip recorded: %+v", st)
	}
}

// TestSemanticNotContained: a sub query whose condition does NOT imply
// the cached plan's must miss semantically and re-derive from source.
func TestSemanticNotContained(t *testing.T) {
	superQ := `CONSTRUCT <result> $B {$B} </result> {}
	           WHERE src bib.book $B AND $B price._ $P AND $P < "20"`
	subQ := `CONSTRUCT <result> $B {$B} </result> {} WHERE src bib.book $B`
	srcs := map[string]*xmltree.Tree{"src": bibTree()}

	got, navs, st := drainSemPair(t, translateQ(t, superQ), translateQ(t, subQ), srcs, true)
	want := oracle(t, translateQ(t, subQ), srcs)
	if !xmltree.Equal(got, want) {
		t.Fatalf("answer differs\ngot  %v\nwant %v", got, want)
	}
	if navs == 0 {
		t.Fatal("wider query answered without source work — unsound containment")
	}
	if st.SemanticHits != 0 || st.SemanticMisses == 0 {
		t.Fatalf("expected a recorded semantic miss: %+v", st)
	}
}
