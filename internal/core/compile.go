package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/regioncache"
	"mix/internal/trace"
	"mix/internal/xmltree"
)

// Engine compiles algebra plans against a registry of named sources.
// The registry is internally synchronized: sources may be registered
// concurrently with compilations (a compile sees a registration that
// happens before it; compiled queries keep the source they resolved).
type Engine struct {
	opts Options

	// tracer, when non-nil, instruments every compiled plan with
	// navigation tracing (see SetTracer in trace.go). nil — the
	// default — compiles plans with no instrumentation at all.
	tracer *trace.Recorder

	// cache, when non-nil, is the shared cross-session region cache;
	// queries with a cache name get a cache-aware answer document
	// (see Query.Document and SetRegionCache). cacheGen is the cache
	// generation sampled when the cache was installed: entries are
	// opened at that pinned generation, so an engine built before an
	// invalidation can never publish into entries fresh engines read.
	cache    *regioncache.Cache
	cacheGen uint64

	// regVer counts Register calls: the source-registry version that
	// region-cache keys pin entries to.
	regVer atomic.Uint64

	regMu sync.RWMutex
	reg   map[string]nav.Document

	// intern canonicalizes the label vocabulary the engine's DFA caches
	// key on; shared across all plans compiled by this engine.
	intern *xmltree.Interner
}

// Register makes doc available to plans under the given source name.
// Registering an existing name replaces the source.
func (e *Engine) Register(name string, doc nav.Document) {
	e.regMu.Lock()
	e.reg[name] = doc
	e.regMu.Unlock()
	e.regVer.Add(1)
}

// RegistryVersion returns the source-registry version: the number of
// Register calls so far. Region-cache entries are pinned to the version
// a query was compiled against, so answers derived from different
// registry states never share an entry.
func (e *Engine) RegistryVersion() uint64 { return e.regVer.Load() }

// SetRegionCache installs the shared cross-session region cache.
// Queries compiled afterwards whose cache name is set (SetCacheName)
// return cache-aware answer documents from Document. Set it before
// compiling; it is not synchronized with concurrent Compile calls. A
// nil cache (the default) leaves every query uncached. The cache's
// current generation is pinned here: install the cache when the engine
// is built, so an engine that outlives an invalidation detaches from
// the shared entries instead of polluting the fresh generation.
func (e *Engine) SetRegionCache(c *regioncache.Cache) {
	e.cache = c
	if c != nil {
		e.cacheGen = c.Generation()
	}
}

// RegionCache returns the installed region cache (nil if none).
func (e *Engine) RegionCache() *regioncache.Cache { return e.cache }

// CacheGeneration returns the cache generation pinned at SetRegionCache
// (0 when no cache is installed).
func (e *Engine) CacheGeneration() uint64 { return e.cacheGen }

// lookup resolves a registered source.
func (e *Engine) lookup(name string) (nav.Document, bool) {
	e.regMu.RLock()
	doc, ok := e.reg[name]
	e.regMu.RUnlock()
	return doc, ok
}

// SourceNames returns the registered source names, sorted.
func (e *Engine) SourceNames() []string {
	e.regMu.RLock()
	out := make([]string, 0, len(e.reg))
	for n := range e.reg {
		out = append(out, n)
	}
	e.regMu.RUnlock()
	sort.Strings(out)
	return out
}

// builder creates a fresh output stream for an operator. Calling it
// twice yields two independent streams over the same (live) inputs.
type builder func() (stream, error)

// Query is a compiled plan: the tree of lazy mediators, ready to serve
// navigations. Building a Query performs no source access.
type Query struct {
	plan    algebra.Op
	eng     *Engine
	topVars []string

	// cacheName/fingerprint/regVer key the query's region-cache entry
	// (see SetCacheName); regVer is captured at compile time, when the
	// plan's sources are resolved.
	cacheName   string
	fingerprint string
	regVer      uint64

	// canon is the canonical (RenameVars normal form) plan, kept when
	// the engine's semantic cache is on and the plan canonicalizes; it
	// is what the containment checker compares (see semantic.go).
	canon algebra.Op

	// semMu/semTried gate the one semantic-cache attempt per query:
	// Document retries until an attempt actually runs (cache installed,
	// candidates reachable), then the verdict — materialized into the
	// entry on a hit — is served by the exact-match layer forever after.
	semMu    sync.Mutex
	semTried bool

	// top is the shared top-level stream (memoized), created lazily.
	top     stream
	topErr  error
	topDone bool
	build   builder

	// answer is non-nil when the plan root is tupleDestroy: the lazy
	// root node of the virtual answer document.
	answer Node

	// batch is non-nil when the query compiled to the batch pipeline
	// (Options.batchMode) and the plan root is not tupleDestroy: the
	// top-level batch adapter Materialize predrains (see batch.go).
	batch *topBatch
}

// Compile validates the plan and compiles it into a tree of lazy
// mediators. No source is accessed.
func (e *Engine) Compile(plan algebra.Op) (*Query, error) {
	if err := algebra.Validate(plan); err != nil {
		return nil, err
	}
	for _, src := range algebra.Sources(plan) {
		if _, ok := e.lookup(src); !ok {
			return nil, fmt.Errorf("core: plan references unregistered source %q", src)
		}
	}
	q := &Query{plan: plan, eng: e, topVars: plan.OutVars(), regVer: e.RegistryVersion()}
	c := &compiler{e: e}
	if e.opts.Fingerprints {
		c.ks = newKeyspace()
	}
	if e.opts.batchMode() {
		c.batch = e.opts.BatchSize
	}
	if td, ok := plan.(*algebra.TupleDestroy); ok {
		inb, err := c.compileTop(td.Input)
		if err != nil {
			return nil, err
		}
		q.answer = &lazyNode{resolve: func() (Node, error) {
			s, err := inb()
			if err != nil {
				return nil, err
			}
			b, _, err := s.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return nil, fmt.Errorf("core: tupleDestroy over empty binding list")
			}
			return b.node(td.Var)
		}}
		return q, nil
	}
	if c.batch > 0 {
		bb, err := c.compileB(plan)
		if err != nil {
			return nil, err
		}
		q.batch = &topBatch{bb: bb, batch: c.batch}
		q.build = q.batch.builder()
		return q, nil
	}
	b, err := c.compile(plan)
	if err != nil {
		return nil, err
	}
	q.build = memoBuilder(b)
	return q, nil
}

// compileTop compiles a plan into a shared (memoized) top-level stream
// builder, through the batch pipeline when batch mode is on. It serves
// the tupleDestroy input, whose consumer is inherently scalar: the
// answer element resolves from the first binding only, so there is no
// predrain point.
func (c *compiler) compileTop(p algebra.Op) (builder, error) {
	if c.batch > 0 {
		bb, err := c.compileB(p)
		if err != nil {
			return nil, err
		}
		tb := &topBatch{bb: bb, batch: c.batch}
		return tb.builder(), nil
	}
	b, err := c.compile(p)
	if err != nil {
		return nil, err
	}
	return memoBuilder(b), nil
}

// memoBuilder makes a builder return one shared memoized stream, so
// all consumers (and repeated navigations) replay the same pulls.
func memoBuilder(b builder) builder {
	var s stream
	var err error
	done := false
	return func() (stream, error) {
		if !done {
			raw, e := b()
			if e != nil {
				err = e
			} else {
				s = memoizeStream(raw)
			}
			done = true
		}
		return s, err
	}
}

// SetCacheName enables region caching for this query under the given
// name (conventionally the view names the query was composed from).
// The cache key is completed by the canonical plan fingerprint —
// computed here — and the registry version captured at compile time.
// With no engine cache installed or an empty name, Document stays
// uncached.
func (q *Query) SetCacheName(name string) {
	q.cacheName = name
	// The fingerprint is computed even without an engine cache: cluster
	// routing hashes (name, fingerprint) to pick the owner node whether
	// or not this node caches locally.
	if name != "" && q.fingerprint == "" {
		canon, fp, ok := regioncache.Canonical(q.plan)
		q.fingerprint = fp
		if ok && q.eng.opts.SemanticCache {
			q.canon = canon
			// Publish the canonical plan in the semantic index so other
			// queries of this view can discover it as a superset
			// candidate (IndexPlan drops stale generations itself).
			if c := q.eng.cache; c != nil {
				c.IndexPlan(regioncache.Key{
					Generation:  q.eng.cacheGen,
					Registry:    q.regVer,
					Name:        name,
					Fingerprint: fp,
				}, canon)
			}
		}
	}
}

// CacheName returns the region-cache name set by SetCacheName.
func (q *Query) CacheName() string { return q.cacheName }

// Fingerprint returns the canonical plan fingerprint computed by
// SetCacheName ("" before it is called or for unnamed queries). With
// CacheName it identifies the same answer document across engines — the
// region-cache key and the cluster routing key.
func (q *Query) Fingerprint() string { return q.fingerprint }

// Document returns the virtual answer document. For tupleDestroy-rooted
// plans this is the constructed answer element; for other plans it is
// the binding-list tree bs[b[…]…] (the inter-mediator view of Fig. 2).
// Obtaining the document and its root handle accesses no source.
//
// When the engine has a region cache and the query a cache name, the
// returned document is cache-aware: navigations over regions another
// session (or an earlier Document of this query) already explored are
// answered from the shared cache without touching this query's lazy
// streams; only cache misses drive them.
func (q *Query) Document() nav.Document {
	var inner nav.Document
	if q.answer != nil {
		inner = &VDoc{root: q.answer}
	} else {
		inner = &VDoc{root: q.bindingsNode()}
	}
	c := q.eng.cache
	if c == nil || q.cacheName == "" {
		return inner
	}
	entry := c.EntryAt(q.eng.cacheGen, q.cacheName, q.fingerprint, q.regVer)
	if q.eng.opts.SemanticCache && q.canon != nil {
		q.trySemantic(c, entry)
	}
	doc := regioncache.NewDoc(entry, inner)
	if rec := q.eng.tracer; rec != nil {
		doc.Observe = func(op string, hit bool) {
			label := "cache:miss"
			if hit {
				label = "cache:hit"
			}
			rec.End(rec.Begin(label, op))
		}
	}
	return doc
}

// bindingsNode renders the compiled stream as a lazy bs[b[X[…]…]…]
// tree in plan OutVars order.
func (q *Query) bindingsNode() Node {
	vars := q.topVars
	mk := q.build
	return NewElem("bs", deferList(func() (list, error) {
		s, err := mk()
		if err != nil {
			return nil, err
		}
		return bindingList{s: s, vars: vars}, nil
	}))
}

// bindingList renders a binding stream as a lazy list of b[…] nodes.
type bindingList struct {
	s    stream
	vars []string
}

func (l bindingList) next() (Node, list, error) {
	b, rest, err := l.s.next()
	if err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, nil
	}
	var kids list = emptyList{}
	for i := len(l.vars) - 1; i >= 0; i-- {
		v, err := b.node(l.vars[i])
		if err != nil {
			return nil, nil, err
		}
		kids = consList{head: NewElem(l.vars[i], singletonList(v)), tail: kids}
	}
	return NewElem("b", kids), bindingList{s: rest, vars: l.vars}, nil
}

// Materialize fully evaluates the query and returns the answer tree:
// the materialized answer element for tupleDestroy plans, the bs[…]
// binding tree otherwise. It is a convenience for callers that want
// the eager behaviour through the lazy machinery.
func (q *Query) Materialize() (*xmltree.Tree, error) {
	// Full evaluation is the batch pipeline's home turf: force the whole
	// binding list in batch-sized pulls first, then walk the answer over
	// the replay log. Cache-aware documents are exempt — a warm cache
	// answers the walk with zero source work, which a predrain would
	// defeat.
	if q.batch != nil && (q.eng.cache == nil || q.cacheName == "") {
		q.batch.predrain()
	}
	return nav.Materialize(q.Document())
}

// compile builds the stream constructor for a plan node, wrapping it
// with a traced stream when a tracer is installed (the per-operator
// boundary of the observability layer).
func (c *compiler) compile(p algebra.Op) (builder, error) {
	b, err := c.compileOp(p)
	if err != nil || c.e.tracer == nil {
		return b, err
	}
	return traceStreamBuilder(b, opLabel(p), c.e.tracer), nil
}

// compileOp dispatches compilation per operator.
func (c *compiler) compileOp(p algebra.Op) (builder, error) {
	switch op := p.(type) {
	case *algebra.Source:
		return c.compileSource(op)
	case *algebra.GetDescendants:
		return c.compileGetDescendants(op)
	case *algebra.Select:
		return c.compileSelect(op)
	case *algebra.Join:
		return c.compileJoin(op)
	case *algebra.GroupBy:
		return c.compileGroupBy(op)
	case *algebra.Concatenate:
		return c.compilePerBinding(op.Input, concatKernel(op))
	case *algebra.CreateElement:
		return c.compilePerBinding(op.Input, createElementKernel(op))
	case *algebra.OrderBy:
		return c.compileOrderBy(op)
	case *algebra.Project:
		return c.compilePerBinding(op.Input, projectKernel(op))
	case *algebra.Union:
		return c.compileBinaryConcat(op.Left, op.Right)
	case *algebra.Difference:
		return c.compileDifference(op)
	case *algebra.Distinct:
		return c.compileDistinct(op)
	case *algebra.WrapList:
		return c.compilePerBinding(op.Input, wrapListKernel(op))
	case *algebra.Const:
		return c.compilePerBinding(op.Input, constKernel(op))
	case *algebra.Rename:
		return c.compilePerBinding(op.Input, renameKernel(op))
	case *algebra.TupleDestroy:
		return nil, fmt.Errorf("core: tupleDestroy must be the plan root")
	default:
		return nil, fmt.Errorf("core: unsupported operator %T", p)
	}
}

// compilePerBinding compiles a pure per-binding transformation.
func (c *compiler) compilePerBinding(input algebra.Op, fn func(*binding) (*binding, error)) (builder, error) {
	in, err := c.compile(input)
	if err != nil {
		return nil, err
	}
	return func() (stream, error) {
		s, err := in()
		if err != nil {
			return nil, err
		}
		return mapStream{in: s, fn: fn}, nil
	}, nil
}

// The per-binding kernels below are the operator bodies shared by the
// scalar pipeline (one kernel call per mapStream pull) and the batch
// pipeline (one kernel loop per mapBCursor batch, see batch.go).

func wrapListKernel(op *algebra.WrapList) func(*binding) (*binding, error) {
	varName, out := op.Var, op.Out
	return func(b *binding) (*binding, error) {
		v, err := b.node(varName)
		if err != nil {
			return nil, err
		}
		return b.with(out, NewElem(xmltree.ListLabel, singletonList(v))), nil
	}
}

func constKernel(op *algebra.Const) func(*binding) (*binding, error) {
	value, out := op.Value, op.Out
	return func(b *binding) (*binding, error) {
		return b.with(out, FromTree(value)), nil
	}
}

func renameKernel(op *algebra.Rename) func(*binding) (*binding, error) {
	from, to := op.From, op.To
	return func(b *binding) (*binding, error) {
		if _, err := b.node(from); err != nil {
			return nil, err
		}
		return b.rename(from, to), nil
	}
}

func concatKernel(op *algebra.Concatenate) func(*binding) (*binding, error) {
	x, y, out := op.X, op.Y, op.Out
	return func(b *binding) (*binding, error) {
		xv, err := b.node(x)
		if err != nil {
			return nil, err
		}
		yv, err := b.node(y)
		if err != nil {
			return nil, err
		}
		z := NewElem(xmltree.ListLabel, concatList{a: itemsOf(xv), b: itemsOf(yv)})
		return b.with(out, z), nil
	}
}

func createElementKernel(op *algebra.CreateElement) func(*binding) (*binding, error) {
	spec, ch, out := op.Label, op.Children, op.Out
	return func(b *binding) (*binding, error) {
		cv, err := b.node(ch)
		if err != nil {
			return nil, err
		}
		// "c1 … cn are the subtrees of bin.ch": the new element
		// receives the *children* of the bound value (for a
		// list[…] value these are the listed items).
		kids := childrenOf(cv)
		var el Node
		if spec.Var == "" {
			el = NewElem(spec.Const, kids)
		} else {
			// Dynamic label: resolved (one small materialization)
			// only when the element is actually looked at.
			labelVar := spec.Var
			el = &lazyNode{resolve: func() (Node, error) {
				lv, err := b.Value(labelVar)
				if err != nil {
					return nil, err
				}
				label := lv.Label
				if !lv.IsLeaf() {
					label = lv.TextContent()
				}
				return NewElem(label, kids), nil
			}}
		}
		return b.with(out, el), nil
	}
}

func projectKernel(op *algebra.Project) func(*binding) (*binding, error) {
	keep := op.Keep
	return func(b *binding) (*binding, error) {
		for _, v := range keep {
			if _, err := b.node(v); err != nil {
				return nil, err
			}
		}
		return b.project(keep), nil
	}
}

func (c *compiler) compileSource(op *algebra.Source) (builder, error) {
	doc, ok := c.e.lookup(op.URL)
	if !ok {
		return nil, fmt.Errorf("core: unregistered source %q", op.URL)
	}
	if c.e.tracer != nil {
		// Source boundary: every navigation answered by this source
		// becomes a span, so trace totals equal the counter totals a
		// CountingDoc measures at the same boundary.
		doc = trace.NewDoc(doc, trace.SourcePrefix+op.URL, c.e.tracer)
	}
	varName := op.Var
	return func() (stream, error) {
		b := newBinding().with(varName, SourceRoot(doc))
		return consStream{head: b, tail: emptyStream{}}, nil
	}, nil
}

func (c *compiler) compileGetDescendants(op *algebra.GetDescendants) (builder, error) {
	in, err := c.compile(op.Input)
	if err != nil {
		return nil, err
	}
	nfa := pathexpr.Compile(op.Path)
	// With fingerprints on, the descent steps a lazily-determinized DFA
	// shared by all streams of this operator: repeated label transitions
	// are O(1) map hits instead of ε-closure recomputations, and the
	// per-step state is a single int rather than an allocated state set.
	var dfa *pathexpr.DFA
	if c.e.opts.Fingerprints {
		dfa = pathexpr.NewDFA(nfa, c.e.intern)
	}
	parent, out := op.Parent, op.Out
	raw := func() (stream, error) {
		s, err := in()
		if err != nil {
			return nil, err
		}
		return flatMapStream{in: s, fn: func(b *binding) (stream, error) {
			pv, err := b.node(parent)
			if err != nil {
				return nil, err
			}
			return nodeStream{l: matchList(nfa, dfa, pv), base: b, out: out}, nil
		}}, nil
	}
	if c.e.opts.PathCache {
		// The operator-level cache of Section 3: the explored part of
		// the descent is kept by the operator itself, so re-iterations
		// (e.g. as the inner of an uncached join, or a client
		// revisiting the region) replay it instead of re-navigating.
		return memoBuilder(raw), nil
	}
	return raw, nil
}

// nodeStream turns a lazy node list into a binding stream by extending
// base with out ↦ node.
type nodeStream struct {
	l    list
	base *binding
	out  string
}

func (n nodeStream) next() (*binding, stream, error) {
	h, rest, err := n.l.next()
	if err != nil || h == nil {
		return nil, nil, err
	}
	return n.base.with(n.out, h), nodeStream{l: rest, base: n.base, out: n.out}, nil
}

// pathMatchList lazily enumerates, in document order, the descendants
// reachable through paths matching the NFA. state is the NFA state set
// before consuming each sibling's label; subtrees whose state set
// cannot reach acceptance are pruned without exploration.
type pathMatchList struct {
	nfa      *pathexpr.NFA
	siblings list
	state    pathexpr.StateSet
}

func (p pathMatchList) next() (Node, list, error) {
	sibs := p.siblings
	for {
		c, rest, err := sibs.next()
		if err != nil {
			return nil, nil, err
		}
		if c == nil {
			return nil, nil, nil
		}
		label, err := c.Label()
		if err != nil {
			return nil, nil, err
		}
		st2 := p.nfa.Step(p.state, label)
		if p.nfa.Alive(st2) {
			inner := pathMatchList{nfa: p.nfa, siblings: childrenOf(c), state: st2}
			var own list = inner
			if p.nfa.Accepting(st2) {
				own = consList{head: c, tail: inner}
			}
			cont := pathMatchList{nfa: p.nfa, siblings: rest, state: p.state}
			return concatList{a: own, b: cont}.next()
		}
		sibs = rest
	}
}

// dfaMatchList is pathMatchList over the lazy DFA: identical traversal
// and output order, but each label transition is a memoized map hit and
// the carried state is an int id instead of a state-set slice.
type dfaMatchList struct {
	dfa      *pathexpr.DFA
	siblings list
	state    int
}

func (p dfaMatchList) next() (Node, list, error) {
	sibs := p.siblings
	for {
		c, rest, err := sibs.next()
		if err != nil {
			return nil, nil, err
		}
		if c == nil {
			return nil, nil, nil
		}
		label, err := c.Label()
		if err != nil {
			return nil, nil, err
		}
		st2 := p.dfa.Step(p.state, label)
		if p.dfa.Alive(st2) {
			inner := dfaMatchList{dfa: p.dfa, siblings: childrenOf(c), state: st2}
			var own list = inner
			if p.dfa.Accepting(st2) {
				own = consList{head: c, tail: inner}
			}
			cont := dfaMatchList{dfa: p.dfa, siblings: rest, state: p.state}
			return concatList{a: own, b: cont}.next()
		}
		sibs = rest
	}
}

func (c *compiler) compileSelect(op *algebra.Select) (builder, error) {
	// Fusion: a label selection directly over a one-step wildcard
	// getDescendants is served with the select(σ) source command when
	// NC includes it (Example 1's upgrade to bounded browsable).
	if c.e.opts.NativeSelect {
		if lm, ok := op.Cond.(*algebra.LabelMatch); ok {
			if gd, ok := op.Input.(*algebra.GetDescendants); ok &&
				gd.Out == lm.Var && gd.Path.String() == "_" {
				return c.compileFusedLabelScan(gd, lm.Label)
			}
		}
	}
	in, err := c.compile(op.Input)
	if err != nil {
		return nil, err
	}
	cond := op.Cond
	return func() (stream, error) {
		s, err := in()
		if err != nil {
			return nil, err
		}
		return filterStream{in: s, pred: func(b *binding) (bool, error) {
			return cond.Eval(b)
		}}, nil
	}, nil
}

// compileFusedLabelScan compiles σ_label(getDescendants(parent, _ → out))
// into a child scan that jumps between matches with the select(σ)
// navigation command.
func (c *compiler) compileFusedLabelScan(gd *algebra.GetDescendants, label string) (builder, error) {
	in, err := c.compile(gd.Input)
	if err != nil {
		return nil, err
	}
	parent, out := gd.Parent, gd.Out
	return func() (stream, error) {
		s, err := in()
		if err != nil {
			return nil, err
		}
		return flatMapStream{in: s, fn: func(b *binding) (stream, error) {
			pv, err := b.node(parent)
			if err != nil {
				return nil, err
			}
			return nodeStream{l: fusedScanList(pv, label), base: b, out: out}, nil
		}}, nil
	}, nil
}

// selectScanList enumerates the children of parent with the given label
// using d plus native select(σ) jumps (sel non-nil), falling back to
// the generic r/f scan when the source lacks the command.
type selectScanList struct {
	doc     nav.Document
	sel     nav.Selector // from nav.SelectorOf(doc); nil = generic scan
	parent  nav.ID       // when !started: the parent; else: the previous match
	label   string
	started bool
}

func (s selectScanList) selectFrom(p nav.ID, fromSelf bool) (nav.ID, error) {
	if s.sel != nil {
		return s.sel.SelectRight(p, nav.LabelIs(s.label), fromSelf)
	}
	return nav.Select(s.doc, p, nav.LabelIs(s.label), fromSelf)
}

func (s selectScanList) next() (Node, list, error) {
	var cur nav.ID
	var err error
	if !s.started {
		cur, err = s.doc.Down(s.parent)
		if err != nil {
			return nil, nil, err
		}
		if cur == nil {
			return nil, nil, nil
		}
		cur, err = s.selectFrom(cur, true)
	} else {
		cur, err = s.selectFrom(s.parent, false)
	}
	if err != nil {
		return nil, nil, err
	}
	if cur == nil {
		return nil, nil, nil
	}
	return srcNode{doc: s.doc, id: cur},
		selectScanList{doc: s.doc, sel: s.sel, parent: cur, label: s.label, started: true}, nil
}

// labelFilterList filters a node list by label.
type labelFilterList struct {
	l     list
	label string
}

func (f labelFilterList) next() (Node, list, error) {
	l := f.l
	for {
		h, rest, err := l.next()
		if err != nil || h == nil {
			return nil, nil, err
		}
		lab, err := h.Label()
		if err != nil {
			return nil, nil, err
		}
		if lab == f.label {
			return h, labelFilterList{l: rest, label: f.label}, nil
		}
		l = rest
	}
}

// sourceBacked is implemented by nodes that directly wrap a source
// document node, enabling command pushdown (native select).
type sourceBacked interface {
	source() (nav.Document, nav.ID)
}

func (s srcNode) source() (nav.Document, nav.ID) { return s.doc, s.id }

func asSourceBacked(v Node) (sourceBacked, bool) {
	for {
		if sb, ok := v.(sourceBacked); ok {
			return sb, true
		}
		ln, ok := v.(*lazyNode)
		if !ok {
			return nil, false
		}
		inner, err := ln.force()
		if err != nil {
			return nil, false
		}
		v = inner
	}
}

func (c *compiler) compileJoin(op *algebra.Join) (builder, error) {
	left, err := c.compile(op.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.compile(op.Right)
	if err != nil {
		return nil, err
	}
	cond := op.Cond
	cache := c.e.opts.JoinCache
	if c.e.opts.Parallel && cache {
		if l, r, ok := c.e.parallelPair(op, left, right); ok {
			left, right = l, r
		}
	}
	if c.e.opts.HashJoin && cache {
		if lk, rk, ok := equiJoinKeys(op); ok {
			return c.compileHashJoin(cond, lk, rk, left, right), nil
		}
	}
	return func() (stream, error) {
		ls, err := left()
		if err != nil {
			return nil, err
		}
		// With the inner cache, the right input is derived once and
		// replayed; without it, every outer binding re-derives it from
		// the sources (the E6 ablation).
		var cached stream
		if cache {
			cached = memoizeStream(deferStream(right))
		}
		return flatMapStream{in: ls, fn: func(lb *binding) (stream, error) {
			var rs stream
			if cache {
				rs = cached
			} else {
				var err error
				rs, err = right()
				if err != nil {
					return nil, err
				}
			}
			pairs := mapStream{in: rs, fn: func(rb *binding) (*binding, error) {
				return merge(lb, rb), nil
			}}
			return filterStream{in: pairs, pred: func(b *binding) (bool, error) {
				return cond.Eval(b)
			}}, nil
		}}, nil
	}, nil
}

func (c *compiler) compileOrderBy(op *algebra.OrderBy) (builder, error) {
	in, err := c.compile(op.Input)
	if err != nil {
		return nil, err
	}
	keys := op.Keys
	return func() (stream, error) {
		// Blocking by definition: the whole input list must be read
		// before the first output binding exists (unbrowsable).
		return deferStream(func() (stream, error) {
			s, err := in()
			if err != nil {
				return nil, err
			}
			all, err := drain(s)
			if err != nil {
				return nil, err
			}
			sorted, err := sortBindings(all, keys)
			if err != nil {
				return nil, err
			}
			return sliceStream(sorted), nil
		}), nil
	}, nil
}

func valueAtom(t *xmltree.Tree) string {
	if t == nil {
		return ""
	}
	if t.IsLeaf() {
		return t.Label
	}
	// Single-leaf element (the Text("zip","92093") shape): the text
	// content is exactly the leaf's label — skip the builder.
	if len(t.Children) == 1 && t.Children[0].IsLeaf() {
		return t.Children[0].Label
	}
	return t.TextContent()
}

func (c *compiler) compileBinaryConcat(l, r algebra.Op) (builder, error) {
	lb, err := c.compile(l)
	if err != nil {
		return nil, err
	}
	rb, err := c.compile(r)
	if err != nil {
		return nil, err
	}
	return func() (stream, error) {
		ls, err := lb()
		if err != nil {
			return nil, err
		}
		return concatStream{a: ls, b: deferStream(rb)}, nil
	}, nil
}

func (c *compiler) compileDifference(op *algebra.Difference) (builder, error) {
	lb, err := c.compile(op.Left)
	if err != nil {
		return nil, err
	}
	rb, err := c.compile(op.Right)
	if err != nil {
		return nil, err
	}
	vars := op.Left.OutVars()
	ks := c.ks
	return func() (stream, error) {
		ls, err := lb()
		if err != nil {
			return nil, err
		}
		// The right input is read in its entirety before the first
		// left binding can be emitted (unbrowsable on the right).
		var seen map[string]bool
		return filterStream{in: ls, pred: func(b *binding) (bool, error) {
			if seen == nil {
				rs, err := rb()
				if err != nil {
					return false, err
				}
				all, err := drain(rs)
				if err != nil {
					return false, err
				}
				seen, err = keySeen(all, ks, vars)
				if err != nil {
					return false, err
				}
			}
			k, err := b.key(ks, vars)
			if err != nil {
				return false, err
			}
			return !seen[k], nil
		}}, nil
	}, nil
}

func (c *compiler) compileDistinct(op *algebra.Distinct) (builder, error) {
	in, err := c.compile(op.Input)
	if err != nil {
		return nil, err
	}
	vars := op.Input.OutVars()
	ks := c.ks
	return func() (stream, error) {
		s, err := in()
		if err != nil {
			return nil, err
		}
		return distinctStream{in: s, ks: ks, vars: vars, seen: nil}, nil
	}, nil
}

// distinctStream keeps first occurrences. The seen set is threaded
// persistently: each tail carries its own extended copy.
type distinctStream struct {
	in   stream
	ks   *keyspace
	vars []string
	seen map[string]bool
}

func (d distinctStream) next() (*binding, stream, error) {
	in := d.in
	seen := d.seen
	for {
		h, t, err := in.next()
		if err != nil || h == nil {
			return nil, nil, err
		}
		k, err := h.key(d.ks, d.vars)
		if err != nil {
			return nil, nil, err
		}
		if !seen[k] {
			next := make(map[string]bool, len(seen)+1)
			for s := range seen {
				next[s] = true
			}
			next[k] = true
			return h, distinctStream{in: t, ks: d.ks, vars: d.vars, seen: next}, nil
		}
		in = t
	}
}
