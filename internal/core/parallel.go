package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mix/internal/algebra"
)

// Concurrent input derivation.
//
// A join whose two inputs read *disjoint* source sets spends its
// round-trip latency serially under lazy evaluation: the outer input is
// pulled, then the inner, each waiting on its own sources. When
// Options.Parallel is set, compileJoin wraps such inputs so that the
// first pull of either drains both concurrently — two goroutines behind
// a bounded worker pool, first error cancelling the sibling — and the
// join then runs over the drained, replayable slices. The trade is
// explicit: input laziness (deriving only what probing demands) is
// given up for wall-clock overlap of the two sources, which wins
// exactly when source latency, not exploration volume, dominates.
//
// Safety: bindings and lazy nodes are not synchronized, so the two
// goroutines must never share plan state. Disjoint source sets plus
// per-side compiled subplans guarantee that — each side's streams,
// bindings, and documents are touched only by its own goroutine until
// the WaitGroup barrier publishes the drained slices to the consumer.

// parallelWorkers bounds the goroutines draining join inputs across the
// whole process. When no slot is free the drain runs inline on the
// submitting goroutine — never queued — so nested parallel joins cannot
// deadlock the pool. Tests may swap the pool out; the package init
// sizes it to the machine.
var parallelWorkers chan struct{} = make(chan struct{}, maxInt(2, runtime.GOMAXPROCS(0)))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package-wide counters for the parallel paths, exposed on the daemon's
// /metrics as mix_parallel_*.
var (
	parJoins    atomic.Int64 // parallel drains started (one per join input pair)
	parInline   atomic.Int64 // side drains run inline because the pool was saturated
	parErrors   atomic.Int64 // side drains that failed with their own error
	parCanceled atomic.Int64 // side drains cut short by the sibling's error
)

// ParallelStats is a snapshot of the parallel-derivation counters.
type ParallelStats struct {
	Joins    int64 // join input pairs drained concurrently
	Inline   int64 // drains run inline (worker pool saturated)
	Errors   int64 // drains failed with their own error
	Canceled int64 // drains cancelled by the sibling side's error
}

// ParallelSnapshot returns the current parallel-derivation counters.
func ParallelSnapshot() ParallelStats {
	return ParallelStats{
		Joins:    parJoins.Load(),
		Inline:   parInline.Load(),
		Errors:   parErrors.Load(),
		Canceled: parCanceled.Load(),
	}
}

// submit runs fn on a pool worker, or inline when the pool is
// saturated. It never blocks waiting for a slot. The pool channel is
// captured once so the slot is released to the pool it was taken from,
// even if parallelWorkers is swapped while fn runs.
func submit(fn func()) {
	pool := parallelWorkers
	select {
	case pool <- struct{}{}:
		go func() {
			defer func() { <-pool }()
			fn()
		}()
	default:
		parInline.Add(1)
		fn()
	}
}

// trySubmit runs fn on a pool worker if a slot is free, reporting
// whether it was handed off. Unlike submit it never runs fn inline —
// batch-drain pumps loop instead, keeping the handoff chain stack-flat
// however many batches a drain takes.
func trySubmit(fn func()) bool {
	pool := parallelWorkers
	select {
	case pool <- struct{}{}:
		go func() {
			defer func() { <-pool }()
			fn()
		}()
		return true
	default:
		return false
	}
}

// parallelPair wraps the compiled inputs of op so that forcing either
// side drains both concurrently (once — the results replay, like the
// join's inner cache). ok is false when the inputs do not read disjoint
// non-empty source sets, in which case derivation order stays serial:
// overlapping sources would hand the same unsynchronized document and
// lazy plan state to both goroutines.
func (e *Engine) parallelPair(op *algebra.Join, left, right builder) (builder, builder, bool) {
	ls, rs := algebra.Sources(op.Left), algebra.Sources(op.Right)
	if len(ls) == 0 || len(rs) == 0 {
		return nil, nil, false
	}
	seen := varSet(ls)
	for _, s := range rs {
		if seen[s] {
			return nil, nil, false
		}
	}
	pd := &parallelDrain{eng: e, left: left, right: right}
	lb := func() (stream, error) {
		pd.once.Do(pd.run)
		if pd.lerr != nil {
			return nil, pd.lerr
		}
		return sliceStream(pd.lres), nil
	}
	rb := func() (stream, error) {
		pd.once.Do(pd.run)
		if pd.rerr != nil {
			return nil, pd.rerr
		}
		return sliceStream(pd.rres), nil
	}
	return lb, rb, true
}

// parallelDrain holds the once-drained inputs of one parallel join.
type parallelDrain struct {
	eng         *Engine
	left, right builder

	once       sync.Once
	lres, rres []*binding
	lerr, rerr error
}

func (pd *parallelDrain) run() {
	parJoins.Add(1)
	sp := pd.eng.tracer.Begin("parallel", "derive-inputs")
	defer pd.eng.tracer.End(sp)
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	var wg sync.WaitGroup
	side := func(b builder, res *[]*binding, errp *error) {
		defer wg.Done()
		*res, *errp = drainCtx(ctx, b)
		if *errp != nil {
			if context.Cause(ctx) == *errp {
				parCanceled.Add(1)
			} else {
				parErrors.Add(1)
			}
			cancel(*errp) // no-op if the sibling already cancelled
		}
	}
	wg.Add(2)
	submit(func() { side(pd.left, &pd.lres, &pd.lerr) })
	submit(func() { side(pd.right, &pd.rres, &pd.rerr) })
	wg.Wait()
	pd.left, pd.right, pd.eng = nil, nil, nil
}

// drainCtx drains the stream b builds, checking for cancellation
// between pulls; a cancelled drain returns the cancellation cause (the
// sibling side's error).
func drainCtx(ctx context.Context, b builder) ([]*binding, error) {
	s, err := b()
	if err != nil {
		return nil, err
	}
	var out []*binding
	for {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		h, t, err := s.next()
		if err != nil {
			return nil, err
		}
		if h == nil {
			return out, nil
		}
		out = append(out, h)
		s = t
	}
}

// parallelBPair is parallelPair for the batch pipeline: forcing either
// side drains both concurrently, one batch per scheduling quantum, with
// the work-stealing handoff of parallelBDrain. The disjoint-sources
// gate is identical to the scalar path.
func (e *Engine) parallelBPair(op *algebra.Join, left, right bbuilder, batch int) (bbuilder, bbuilder, bool) {
	ls, rs := algebra.Sources(op.Left), algebra.Sources(op.Right)
	if len(ls) == 0 || len(rs) == 0 {
		return nil, nil, false
	}
	seen := varSet(ls)
	for _, s := range rs {
		if seen[s] {
			return nil, nil, false
		}
	}
	pd := &parallelBDrain{eng: e, left: left, right: right, batch: batch}
	lb := func() (bcursor, error) {
		pd.once.Do(pd.run)
		if pd.lerr != nil {
			return nil, pd.lerr
		}
		return &sliceBCursor{buf: pd.lres}, nil
	}
	rb := func() (bcursor, error) {
		pd.once.Do(pd.run)
		if pd.rerr != nil {
			return nil, pd.rerr
		}
		return &sliceBCursor{buf: pd.rres}, nil
	}
	return lb, rb, true
}

// parallelBDrain drains the two join inputs in batch-sized quanta with
// work stealing: after every batch a side offers its continuation back
// to the worker pool, so a freed slot (the sibling finishing, another
// query's drain ending) picks the work up; when the pool is saturated
// the pump loops inline — never recursing — so the handoff chain stays
// stack-flat no matter how many batches a drain takes.
type parallelBDrain struct {
	eng         *Engine
	left, right bbuilder
	batch       int

	once       sync.Once
	lres, rres []*binding
	lerr, rerr error
}

func (pd *parallelBDrain) run() {
	parJoins.Add(1)
	sp := pd.eng.tracer.Begin("parallel", "derive-inputs")
	ctx, cancel := context.WithCancelCause(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	side := func(bb bbuilder, res *[]*binding, errp *error) {
		finish := func(err error) {
			if err != nil {
				*res, *errp = nil, err
				if context.Cause(ctx) == err {
					parCanceled.Add(1)
				} else {
					parErrors.Add(1)
				}
				cancel(err) // no-op if the sibling already cancelled
			}
			wg.Done()
		}
		cur, err := bb()
		if err != nil {
			finish(err)
			return
		}
		var pump func()
		pump = func() {
			for {
				if ctx.Err() != nil {
					finish(context.Cause(ctx))
					return
				}
				bs, err := cur.bnext(pd.batch)
				if err != nil {
					finish(err)
					return
				}
				if len(bs) == 0 {
					finish(nil)
					return
				}
				*res = append(*res, bs...)
				recordBatch(len(bs))
				if trySubmit(pump) {
					return
				}
			}
		}
		pump()
	}
	submit(func() { side(pd.left, &pd.lres, &pd.lerr) })
	submit(func() { side(pd.right, &pd.rres, &pd.rerr) })
	wg.Wait()
	cancel(nil)
	pd.eng.tracer.End(sp)
	pd.left, pd.right, pd.eng = nil, nil, nil
}
