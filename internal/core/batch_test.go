package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// batchOpts is DefaultOptions with the batch width pinned; bs <= 1
// compiles the scalar pipeline (the reference the batch one must match
// byte for byte).
func batchOpts(bs int) Options {
	o := DefaultOptions()
	o.BatchSize = bs
	return o
}

// batchPlans is the operator-coverage set for the identity tests: the
// paper's join+group plan, a hash equi-join, selection (both the
// fused-scan and the general condition form), distinct over a union,
// difference, and orderBy — every batch operator class in one sweep.
func batchPlans() map[string]func() algebra.Op {
	zips := func(src, rvar, hvar, zvar, inner string) algebra.Op {
		return &algebra.GetDescendants{
			Input: &algebra.GetDescendants{
				Input:  &algebra.Source{URL: src, Var: rvar},
				Parent: rvar, Path: pathexpr.MustParse(inner), Out: hvar,
			},
			Parent: hvar, Path: pathexpr.MustParse("zip._"), Out: zvar,
		}
	}
	homeZips := func() algebra.Op { return zips("homesSrc", "R1", "H", "V1", "home") }
	schoolZips := func() algebra.Op { return zips("schoolsSrc", "R2", "S", "V2", "school") }
	projZip := func() algebra.Op {
		return &algebra.Project{Input: homeZips(), Keep: []string{"V1"}}
	}
	return map[string]func() algebra.Op{
		"fig4": workload.HomesSchoolsPlan,
		"hash equi-join": func() algebra.Op {
			return &algebra.Project{
				Input: &algebra.Join{Left: homeZips(), Right: schoolZips(),
					Cond: algebra.Eq(algebra.V("V1"), algebra.V("V2"))},
				Keep: []string{"H", "S"},
			}
		},
		"select condition": func() algebra.Op {
			return &algebra.Project{
				Input: &algebra.Select{Input: homeZips(),
					Cond: algebra.Eq(algebra.V("V1"), algebra.Lit("91000"))},
				Keep: []string{"H"},
			}
		},
		"distinct over union": func() algebra.Op {
			return &algebra.Distinct{Input: &algebra.Union{
				Left: projZip(), Right: projZip()}}
		},
		"difference": func() algebra.Op {
			return &algebra.Difference{
				Left: projZip(),
				Right: &algebra.Project{
					Input: &algebra.Select{Input: homeZips(),
						Cond: algebra.Eq(algebra.V("V1"), algebra.Lit("91000"))},
					Keep: []string{"V1"},
				},
			}
		},
		"orderBy": func() algebra.Op {
			return &algebra.OrderBy{Input: projZip(), Keys: []string{"V1"}}
		},
		"groupBy": func() algebra.Op {
			return &algebra.GroupBy{Input: homeZips(),
				By: []string{"V1"}, Var: "H", Out: "G"}
		},
	}
}

// TestBatchSizesByteIdentical is the acceptance bet of the batch
// pipeline: for every operator class and every batch width — including
// widths that straddle, divide, and dwarf the stream lengths — the
// answer bytes AND the per-source navigation counts match the scalar
// pipeline exactly.
func TestBatchSizesByteIdentical(t *testing.T) {
	homes, schools := workload.HomesSchools(23, 17, 5, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	run := func(t *testing.T, plan algebra.Op, bs int) (string, string) {
		e, counters := engineWith(batchOpts(bs), srcs)
		q := mustCompile(t, e, plan)
		answer := xmltree.MarshalXML(mustMaterialize(t, q))
		var navs []string
		for _, name := range []string{"homesSrc", "schoolsSrc"} {
			c := counters[name].Counters.Snapshot()
			navs = append(navs, fmt.Sprintf("%s d=%d r=%d f=%d sel=%d root=%d",
				name, c.Down, c.Right, c.Fetch, c.Select, c.Root))
		}
		return answer, strings.Join(navs, "; ")
	}
	for name, mk := range batchPlans() {
		t.Run(name, func(t *testing.T) {
			wantAnswer, wantNavs := run(t, mk(), 1) // scalar reference
			for _, bs := range []int{0, 2, 3, 7, 64, 1000} {
				gotAnswer, gotNavs := run(t, mk(), bs)
				if gotAnswer != wantAnswer {
					t.Fatalf("BatchSize=%d answer differs:\n%s\nvs scalar\n%s",
						bs, gotAnswer, wantAnswer)
				}
				if gotNavs != wantNavs {
					t.Fatalf("BatchSize=%d source navigations differ:\n%s\nvs scalar\n%s",
						bs, gotNavs, wantNavs)
				}
			}
		})
	}
}

// TestBatchFilterEmptyBatches pins the no-false-EOF rule: a filter that
// rejects whole input batches must keep pulling — an all-rejected batch
// is not end-of-stream — and a filter that rejects everything must
// still terminate with the scalar answer (zero rows).
func TestBatchFilterEmptyBatches(t *testing.T) {
	homes, _ := workload.HomesSchools(40, 0, 6, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes}
	zips := &algebra.GetDescendants{
		Input: &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "homesSrc", Var: "R"},
			Parent: "R", Path: pathexpr.MustParse("home"), Out: "H",
		},
		Parent: "H", Path: pathexpr.MustParse("zip._"), Out: "Z",
	}
	for _, tc := range []struct {
		name, lit string
	}{
		{"sparse matches", "91000"}, // rare value: many all-rejected batches
		{"no matches", "no-such-zip"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := func() algebra.Op {
				return &algebra.Project{
					Input: &algebra.Select{Input: zips,
						Cond: algebra.Eq(algebra.V("Z"), algebra.Lit(tc.lit))},
					Keep: []string{"H"},
				}
			}
			es, _ := engineWith(batchOpts(1), srcs)
			want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, es, plan())))
			// Width 2 forces many consecutive empty filtered batches.
			eb, _ := engineWith(batchOpts(2), srcs)
			got := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, eb, plan())))
			if got != want {
				t.Fatalf("batch answer differs:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// failAfterDoc fails every navigation after the first n have succeeded
// — an error that strikes mid-stream, after a prefix of bindings has
// been produced.
type failAfterDoc struct {
	d    nav.Document
	err  error
	left *int
}

func (f failAfterDoc) step() error {
	if *f.left <= 0 {
		return f.err
	}
	*f.left--
	return nil
}

func (f failAfterDoc) Root() (nav.ID, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.d.Root()
}

func (f failAfterDoc) Down(p nav.ID) (nav.ID, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.d.Down(p)
}

func (f failAfterDoc) Right(p nav.ID) (nav.ID, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.d.Right(p)
}

func (f failAfterDoc) Fetch(p nav.ID) (string, error) {
	if err := f.step(); err != nil {
		return "", err
	}
	return f.d.Fetch(p)
}

// TestBatchMidStreamErrorByteIdentical: an error striking after a
// prefix of source navigations must surface at the same client-visible
// position in both pipelines — same number of answer rows reachable,
// same error. This exercises the prefix-then-error rule of bnext (a
// batch computed up to the failure is delivered before the error).
func TestBatchMidStreamErrorByteIdentical(t *testing.T) {
	homes, _ := workload.HomesSchools(12, 0, 4, 3)
	boom := errors.New("source lost mid-stream")
	plan := func() algebra.Op {
		return &algebra.Project{
			Input: &algebra.GetDescendants{
				Input: &algebra.GetDescendants{
					Input:  &algebra.Source{URL: "homesSrc", Var: "R"},
					Parent: "R", Path: pathexpr.MustParse("home"), Out: "H",
				},
				Parent: "H", Path: pathexpr.MustParse("zip._"), Out: "Z",
			},
			Keep: []string{"H", "Z"},
		}
	}
	// walk steps the answer document left to right and reports how many
	// rows were reached before the error (and the error itself).
	walk := func(t *testing.T, bs, budget int) (int, error) {
		t.Helper()
		left := budget
		e := New(WithOptions(batchOpts(bs)))
		e.Register("homesSrc", failAfterDoc{
			d: nav.NewTreeDoc(homes), err: boom, left: &left})
		q := mustCompile(t, e, plan())
		doc := q.Document()
		root, err := doc.Root()
		if err != nil {
			return 0, err
		}
		cur, err := doc.Down(root)
		if err != nil {
			return 0, err
		}
		rows := 0
		for cur != nil {
			rows++
			cur, err = doc.Right(cur)
			if err != nil {
				return rows, err
			}
		}
		return rows, nil
	}
	// A generous budget errors nowhere; the full row count calibrates
	// the truncation budgets below.
	total, err := walk(t, 1, 1<<30)
	if err != nil || total < 4 {
		t.Fatalf("calibration walk: rows=%d err=%v", total, err)
	}
	for _, budget := range []int{1, 5, 17, 43} {
		wantRows, wantErr := walk(t, 1, budget)
		for _, bs := range []int{2, 3, 64} {
			gotRows, gotErr := walk(t, bs, budget)
			if gotRows != wantRows || !errors.Is(gotErr, boom) != !errors.Is(wantErr, boom) {
				t.Fatalf("budget=%d BatchSize=%d: rows=%d err=%v, scalar rows=%d err=%v",
					budget, bs, gotRows, gotErr, wantRows, wantErr)
			}
		}
	}
}

// TestParallelBatchDrainRace stress-tests the work-stealing batch
// drains under the race detector: many engines evaluate the same
// disjoint-sources parallel join concurrently with a tiny batch width
// (maximizing pump handoffs through the shared worker pool), and every
// answer must match the serial scalar reference.
func TestParallelBatchDrainRace(t *testing.T) {
	homes, schools := workload.HomesSchools(30, 30, 6, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	plan := func() algebra.Op {
		return hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2")))
	}
	ser, _ := engineWith(hashOpts(), srcs)
	want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, ser, plan())))

	popts := batchOpts(2)
	popts.Parallel = true
	before := BatchSnapshot()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _ := engineWith(popts, srcs)
			q, err := e.Compile(plan())
			if err != nil {
				errs <- err
				return
			}
			tree, err := q.Materialize()
			if err != nil {
				errs <- err
				return
			}
			if got := xmltree.MarshalXML(tree); got != want {
				errs <- fmt.Errorf("parallel batch answer differs:\n%s", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	after := BatchSnapshot()
	if after.Batches <= before.Batches || after.Bindings <= before.Bindings {
		t.Fatalf("batch counters did not advance: %+v -> %+v", before, after)
	}
}

// TestBatchModeGating pins when the batch pipeline engages: it needs a
// width above one AND the cache options the batch operators assume;
// ablation configurations keep the scalar pipeline untouched.
func TestBatchModeGating(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    Options
		want bool
	}{
		{"defaults", DefaultOptions(), true},
		{"width 1", batchOpts(1), false},
		{"width 0", batchOpts(0), false},
		{"no join cache", Options{PathCache: true, GroupCache: true, BatchSize: 64}, false},
		{"no path cache", Options{JoinCache: true, GroupCache: true, BatchSize: 64}, false},
		{"no group cache", Options{JoinCache: true, PathCache: true, BatchSize: 64}, false},
		{"ablation literal", Options{JoinCache: true, PathCache: true, GroupCache: true}, false},
	} {
		if got := tc.o.batchMode(); got != tc.want {
			t.Errorf("%s: batchMode() = %v, want %v", tc.name, got, tc.want)
		}
	}
	// And the compiled artifact reflects the gate: a batch-mode query
	// carries a batch pipeline, a scalar one does not.
	homes, _ := workload.HomesSchools(3, 0, 2, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes}
	plan := &algebra.Source{URL: "homesSrc", Var: "R"}
	eb, _ := engineWith(DefaultOptions(), srcs)
	if q := mustCompile(t, eb, plan); q.batch == nil {
		t.Fatal("batch-mode compile produced no batch pipeline")
	}
	es, _ := engineWith(batchOpts(1), srcs)
	if q := mustCompile(t, es, plan); q.batch != nil {
		t.Fatal("scalar compile produced a batch pipeline")
	}
}
