package core

import (
	"strings"
	"testing"

	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/trace"
	"mix/internal/workload"
)

// TestTraceTotalsMatchCounters drives client navigations over a traced
// engine whose sources are counting-wrapped, and checks — navigation by
// navigation — that the trace's source-navigation totals equal the
// counter deltas at the same boundary. This is the invariant behind
// `mixq -trace`: the fan-out tree is an attribution of exactly the
// navigations the counters measure.
func TestTraceTotalsMatchCounters(t *testing.T) {
	homes, schools := workload.HomesSchools(8, 8, 3, 7)
	rec := trace.New()
	e := New()
	e.SetTracer(rec)
	counters := map[string]*nav.CountingDoc{
		"homesSrc":   nav.NewCountingDoc(nav.NewTreeDoc(homes)),
		"schoolsSrc": nav.NewCountingDoc(nav.NewTreeDoc(schools)),
	}
	for name, cd := range counters {
		e.Register(name, cd)
	}
	q, err := e.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	// The client document is traced too, so every client command roots
	// a span tree.
	doc := trace.NewDoc(q.Document(), trace.ClientLabel, rec)

	snap := func() metrics.Snapshot {
		var s metrics.Snapshot
		for _, cd := range counters {
			c := cd.Counters.Snapshot()
			s.Down += c.Down
			s.Right += c.Right
			s.Fetch += c.Fetch
			s.Select += c.Select
			s.Root += c.Root
		}
		return s
	}

	check := func(step string, navigate func() (nav.ID, error)) nav.ID {
		t.Helper()
		before := snap()
		id, err := navigate()
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		roots := rec.Take()
		delta := snap().Sub(before)
		totals := trace.SourceTotals(roots)
		if totals["d"] != delta.Down || totals["r"] != delta.Right ||
			totals["f"] != delta.Fetch || totals["select"] != delta.Select ||
			totals["root"] != delta.Root {
			t.Fatalf("%s: trace totals %v != counter delta %+v\n%s",
				step, totals, delta, trace.Format(roots))
		}
		return id
	}

	root := check("root", doc.Root)
	cur := check("down", func() (nav.ID, error) { return doc.Down(root) })
	check("fetch", func() (nav.ID, error) { _, err := doc.Fetch(cur); return nil, err })
	cur = check("down2", func() (nav.ID, error) { return doc.Down(cur) })
	for cur != nil {
		next := check("right", func() (nav.ID, error) { return doc.Right(cur) })
		if next != nil {
			check("fetch-sib", func() (nav.ID, error) { _, err := doc.Fetch(next); return nil, err })
		}
		cur = next
	}
}

// TestTraceShowsOperatorFanOut checks the causal structure: a client
// navigation's span tree nests operator pulls above source navigations.
func TestTraceShowsOperatorFanOut(t *testing.T) {
	homes, schools := workload.HomesSchools(5, 5, 2, 3)
	rec := trace.New()
	e := New()
	e.SetTracer(rec)
	e.Register("homesSrc", nav.NewTreeDoc(homes))
	e.Register("schoolsSrc", nav.NewTreeDoc(schools))
	q, err := e.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	doc := trace.NewDoc(q.Document(), trace.ClientLabel, rec)
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	rec.Take() // root is lazy: discard its (empty) trace
	if _, err := doc.Down(root); err != nil {
		t.Fatal(err)
	}
	roots := rec.Take()
	if len(roots) != 1 || roots[0].Label != trace.ClientLabel {
		t.Fatalf("want one client root, got:\n%s", trace.Format(roots))
	}
	sum := trace.Summarize(roots)
	var sawOperator, sawSource bool
	for _, s := range sum {
		// Operator spans are "next" pulls on the scalar pipeline and
		// "next[n]" batch pulls (n = bindings carried) on the batch one.
		if strings.HasPrefix(s.Op, "next") && s.Label != trace.ClientLabel {
			sawOperator = true
		}
		if s.Label == trace.SourcePrefix+"homesSrc" || s.Label == trace.SourcePrefix+"schoolsSrc" {
			sawSource = true
		}
	}
	if !sawOperator || !sawSource {
		t.Fatalf("fan-out missing operator or source spans:\n%s", trace.Format(roots))
	}
	if n := trace.SourceNavigations(roots); n == 0 {
		t.Fatal("first down induced no source navigations")
	}
}

// TestUntracedEngineHasNoWrappers ensures the zero-cost default: with
// no tracer installed nothing about compilation changes (the traced
// benchmark comparison in bench_test.go quantifies this; here we just
// pin the nil-tracer path through a full evaluation).
func TestUntracedEngineHasNoWrappers(t *testing.T) {
	homes, schools := workload.HomesSchools(5, 5, 2, 3)
	e := New()
	e.Register("homesSrc", nav.NewTreeDoc(homes))
	e.Register("schoolsSrc", nav.NewTreeDoc(schools))
	q, err := e.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Materialize(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetIdentityReachesEngineRoots pins the contract the server's
// fleet path relies on: arm a session recorder with a remote trace
// context (and a node name) before a client command enters the engine,
// and every root the engine's fan-out produces carries the fleet
// identity — remotely parented, node-tagged, with a minted span id —
// while interior operator/source spans stay local (no wire bytes).
func TestFleetIdentityReachesEngineRoots(t *testing.T) {
	homes, schools := workload.HomesSchools(5, 5, 2, 3)
	rec := trace.New()
	rec.Node = "owner-node"
	e := New()
	e.SetTracer(rec)
	e.Register("homesSrc", nav.NewTreeDoc(homes))
	e.Register("schoolsSrc", nav.NewTreeDoc(schools))
	q, err := e.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	doc := trace.NewDoc(q.Document(), trace.ClientLabel, rec)

	remote := trace.Context{TraceID: trace.NewTraceID(), SpanID: 4242}
	rec.SetRemoteParent(remote)
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Down(root); err != nil {
		t.Fatal(err)
	}
	rec.ClearRemoteParent()

	roots := rec.Take()
	if len(roots) == 0 {
		t.Fatal("no roots recorded")
	}
	var check func(sp *trace.Span, isRoot bool)
	check = func(sp *trace.Span, isRoot bool) {
		if isRoot {
			if sp.Parent != remote.SpanID {
				t.Fatalf("root %s Parent = %d, want %d", sp.Label, sp.Parent, remote.SpanID)
			}
			if sp.ID == 0 {
				t.Fatalf("root %s has no fleet span id", sp.Label)
			}
			if sp.Node != "owner-node" {
				t.Fatalf("root %s Node = %q, want owner-node", sp.Label, sp.Node)
			}
		} else if sp.ID != 0 || sp.Parent != 0 || sp.Node != "" {
			t.Fatalf("interior span %s carries fleet identity: %+v", sp.Label, sp)
		}
		for _, c := range sp.Children {
			check(c, false)
		}
	}
	for _, r := range roots {
		check(r, true)
	}
}
