// Package core implements the paper's primary contribution: the
// evaluation of XMAS algebra plans as trees of *lazy mediators*
// (Section 3, Appendix A).
//
// Each algebra operator is compiled into a lazy binding stream: a
// persistent, pull-driven cursor over the operator's output list of
// variable bindings that translates demand on its output into the
// minimal demand on its inputs — and, at the leaves, into DOM-VXD
// navigation commands on the wrapped sources. The variable *values*
// inside bindings are equally lazy: a value is a Node handle that
// navigates its underlying source subtree (or constructs element/list
// structure) only when the client actually looks at it.
//
// The top of a compiled plan is exposed as a nav.Document (the virtual
// XML answer document): obtaining the Root handle performs no source
// access at all, and every subsequent client d/r/f navigation is
// answered by advancing the underlying cursors just far enough —
// exactly the navigation-to-navigation translation performed by the
// paper's lazy mediators. The association information the paper encodes
// in Skolem-style node-ids lives in the closure state of the handles.
package core

import (
	"fmt"

	"mix/internal/nav"
	"mix/internal/xmltree"
)

// Node is a lazy handle to one node of a (virtual) XML tree: the value
// level of the paper's node-ids. A Node can report its label and open a
// cursor over its children; sibling order among children is the
// business of the list the Node came from, so Node itself has no Right.
type Node interface {
	// Label returns the node's label (the paper's f command).
	Label() (string, error)
	// Children returns a lazy cursor over the node's children. The
	// call itself must not navigate sources; only pulling the cursor
	// may.
	Children() list
}

// list is a persistent lazy list of Nodes. next returns the head node
// and the remainder; a nil head signals exhaustion. Implementations
// must be persistent: calling next repeatedly on the same list value
// yields the same (observational) result, so multiple consumers can
// hold independent positions — the paper's "client navigation may
// proceed from multiple nodes" requirement.
type list interface {
	next() (Node, list, error)
}

// --- empty and cons ---------------------------------------------------------

type emptyList struct{}

func (emptyList) next() (Node, list, error) { return nil, nil, nil }

type consList struct {
	head Node
	tail list
}

func (c consList) next() (Node, list, error) { return c.head, c.tail, nil }

// singletonList returns a list holding exactly v.
func singletonList(v Node) list { return consList{head: v, tail: emptyList{}} }

// --- deferred lists ---------------------------------------------------------

// thunkList defers list construction until first pull. It is NOT
// memoized: pulling twice recomputes (and re-navigates). Wrap in
// memoList for cached semantics.
type thunkList func() (Node, list, error)

func (t thunkList) next() (Node, list, error) { return t() }

// deferList wraps a list constructor so that construction itself (which
// may navigate) happens on first pull.
func deferList(f func() (list, error)) list {
	return thunkList(func() (Node, list, error) {
		l, err := f()
		if err != nil {
			return nil, nil, err
		}
		return l.next()
	})
}

// memoList caches the result of a single next() call, so repeated
// navigation over the same region does not re-navigate sources.
type memoList struct {
	inner list

	forced bool
	head   Node
	tail   list
	err    error
}

func newMemoList(inner list) *memoList { return &memoList{inner: inner} }

func (m *memoList) next() (Node, list, error) {
	if !m.forced {
		h, t, err := m.inner.next()
		m.head, m.err = h, err
		if t != nil {
			m.tail = newMemoList(t)
		}
		m.forced = true
		m.inner = nil
	}
	return m.head, m.tail, m.err
}

// memoize wraps l so every position is cached after first pull.
func memoize(l list) list {
	if _, ok := l.(*memoList); ok {
		return l
	}
	return newMemoList(l)
}

// concatList yields all of a, then all of b.
type concatList struct{ a, b list }

func (c concatList) next() (Node, list, error) {
	h, t, err := c.a.next()
	if err != nil {
		return nil, nil, err
	}
	if h == nil {
		return c.b.next()
	}
	return h, concatList{a: t, b: c.b}, nil
}

// --- source-backed nodes ----------------------------------------------------

// srcNode is a Node backed by a node of a wrapped source document. Its
// children are the source node's children, navigated on demand.
type srcNode struct {
	doc nav.Document
	id  nav.ID
}

func (s srcNode) Label() (string, error) { return s.doc.Fetch(s.id) }

func (s srcNode) Children() list {
	return thunkList(func() (Node, list, error) {
		child, err := s.doc.Down(s.id)
		if err != nil {
			return nil, nil, err
		}
		if child == nil {
			return nil, nil, nil
		}
		return srcFrom{doc: s.doc, id: child}.next()
	})
}

// SourceRoot returns the lazy Node for the root of a source document.
// Obtaining it does not navigate; the root handle is resolved on first
// Label/Children demand.
func SourceRoot(doc nav.Document) Node {
	return &lazyNode{resolve: func() (Node, error) {
		root, err := doc.Root()
		if err != nil {
			return nil, err
		}
		if root == nil {
			return nil, fmt.Errorf("core: source document has no root")
		}
		return srcNode{doc: doc, id: root}, nil
	}}
}

// srcFrom emits the source node id and then its right siblings.
type srcFrom struct {
	doc nav.Document
	id  nav.ID
}

func (s srcFrom) next() (Node, list, error) {
	return srcNode{doc: s.doc, id: s.id}, srcAfter(s), nil
}

// srcAfter emits the right siblings strictly after id.
type srcAfter struct {
	doc nav.Document
	id  nav.ID
}

func (s srcAfter) next() (Node, list, error) {
	r, err := s.doc.Right(s.id)
	if err != nil {
		return nil, nil, err
	}
	if r == nil {
		return nil, nil, nil
	}
	return srcNode{doc: s.doc, id: r}, srcAfter{doc: s.doc, id: r}, nil
}

// --- constructed nodes ------------------------------------------------------

// elemNode is a constructed element (createElement, groupBy's list[…],
// the bs/b spine of binding trees): a label plus a lazy child list.
type elemNode struct {
	label string
	kids  list
}

func (e elemNode) Label() (string, error) { return e.label, nil }
func (e elemNode) Children() list         { return e.kids }

// NewElem constructs a lazy element node.
func NewElem(label string, kids list) Node { return elemNode{label: label, kids: kids} }

// leafNode is a constructed atomic node.
type leafNode string

func (l leafNode) Label() (string, error) { return string(l), nil }
func (leafNode) Children() list           { return emptyList{} }

// lazyNode defers resolution of the underlying node until first use —
// this is how the mediator hands out the answer-root handle without
// touching the sources (Section 3: "returns a handle to the root
// element … without even accessing the sources").
type lazyNode struct {
	resolve func() (Node, error)

	forced bool
	n      Node
	err    error
}

func (l *lazyNode) force() (Node, error) {
	if !l.forced {
		l.n, l.err = l.resolve()
		l.forced = true
		l.resolve = nil
		if l.err == nil && l.n == nil {
			l.err = fmt.Errorf("core: lazy node resolved to nothing")
		}
	}
	return l.n, l.err
}

func (l *lazyNode) Label() (string, error) {
	n, err := l.force()
	if err != nil {
		return "", err
	}
	return n.Label()
}

func (l *lazyNode) Children() list {
	return deferList(func() (list, error) {
		n, err := l.force()
		if err != nil {
			return nil, err
		}
		return n.Children(), nil
	})
}

// treeNode adapts a materialized xmltree.Tree to a Node (used for
// literal construction in plans and for tests).
type treeNode struct{ t *xmltree.Tree }

// FromTree wraps a materialized tree as a Node.
func FromTree(t *xmltree.Tree) Node { return treeNode{t: t} }

func (n treeNode) Label() (string, error) { return n.t.Label, nil }

func (n treeNode) Children() list {
	return treeKids{kids: n.t.Children}
}

type treeKids struct{ kids []*xmltree.Tree }

func (k treeKids) next() (Node, list, error) {
	if len(k.kids) == 0 {
		return nil, nil, nil
	}
	return treeNode{t: k.kids[0]}, treeKids{kids: k.kids[1:]}, nil
}

// --- materialization --------------------------------------------------------

// MaterializeNode fully explores the subtree under v, navigating
// whatever sources back it. It is used for condition evaluation and
// operator keys (comparing typically-small values like zip codes), the
// eager baseline, and tests.
//
// Materialization is the hottest allocator in key-heavy plans, so the
// walk is allocation-aware: nodes and child slices are carved from a
// per-call arena (O(size/chunk) heap allocations instead of O(size)),
// and source-backed subtrees are walked by issuing d/r/f commands
// directly instead of through the boxed Node/list cursors. The direct
// walk issues exactly the command sequence the generic walk would —
// Fetch(n), Down(n), then per child: its subtree followed by
// Right(child) — so wrappers (counting, tracing, region caches) see an
// unchanged command stream.
func MaterializeNode(v Node) (*xmltree.Tree, error) {
	var m materializer
	return m.node(v)
}

// materializer is the single-use scratch state of one MaterializeNode
// call: the tree arena plus a shared child-pointer stack (each nesting
// level uses the segment above its mark, so one slice serves the whole
// recursion).
type materializer struct {
	arena   xmltree.Arena
	scratch []*xmltree.Tree
}

func (m *materializer) node(v Node) (*xmltree.Tree, error) {
	if s, ok := v.(srcNode); ok {
		return m.src(s.doc, s.id)
	}
	label, err := v.Label()
	if err != nil {
		return nil, err
	}
	t := m.arena.NewNode(label)
	mark := len(m.scratch)
	l := v.Children()
	for {
		c, rest, err := l.next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		ct, err := m.node(c)
		if err != nil {
			return nil, err
		}
		m.scratch = append(m.scratch, ct)
		l = rest
	}
	t.Children = m.arena.Children(m.scratch[mark:])
	m.scratch = m.scratch[:mark]
	return t, nil
}

// src materializes a source-backed subtree with direct navigation.
func (m *materializer) src(doc nav.Document, id nav.ID) (*xmltree.Tree, error) {
	label, err := doc.Fetch(id)
	if err != nil {
		return nil, err
	}
	t := m.arena.NewNode(label)
	c, err := doc.Down(id)
	if err != nil {
		return nil, err
	}
	mark := len(m.scratch)
	for c != nil {
		ct, err := m.src(doc, c)
		if err != nil {
			return nil, err
		}
		m.scratch = append(m.scratch, ct)
		if c, err = doc.Right(c); err != nil {
			return nil, err
		}
	}
	t.Children = m.arena.Children(m.scratch[mark:])
	m.scratch = m.scratch[:mark]
	return t, nil
}

// childrenOf returns the lazy child list of v without navigating yet.
func childrenOf(v Node) list {
	return deferList(func() (list, error) { return v.Children(), nil })
}

// itemsOf returns the items a value contributes to concatenate/
// createElement: the children for a list[…] value, the value itself
// otherwise (Section 3, concatenate/createElement definitions). The
// label inspection is deferred until first pull.
func itemsOf(v Node) list {
	return thunkList(func() (Node, list, error) {
		label, err := v.Label()
		if err != nil {
			return nil, nil, err
		}
		if label == xmltree.ListLabel {
			return childrenOf(v).next()
		}
		return singletonList(v).next()
	})
}
