package core

// Additional tests of the lazy machinery's fine structure: exact
// navigation mirroring for bounded views, fused select fallback on
// constructed values, deep recursion, and stream persistence edge
// cases.

import (
	"fmt"
	"strings"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// TestQconcMirrorsNavigations asserts the Example 1 bound concretely:
// for q_conc, every additional client step costs a *constant* number of
// source commands, regardless of position and source size.
func TestQconcMirrorsNavigations(t *testing.T) {
	s1 := workload.FlatList(1000, "a")
	s2 := workload.FlatList(1000, "b")
	e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s1": s1, "s2": s2})
	q := mustCompile(t, e, workload.ConcPlan("s1", "s2"))
	doc := q.Document()

	total := func() int64 {
		return counters["s1"].Counters.Navigations() + counters["s2"].Counters.Navigations()
	}
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	p, err := doc.Down(root)
	if err != nil || p == nil {
		t.Fatal("first child missing")
	}
	if _, err := doc.Fetch(p); err != nil {
		t.Fatal(err)
	}
	base := total()
	// Each subsequent r,f pair costs a bounded number of source
	// commands; measure the per-step cost over a window.
	var maxStep int64
	for i := 0; i < 100; i++ {
		before := total()
		p, err = doc.Right(p)
		if err != nil || p == nil {
			t.Fatalf("step %d: %v %v", i, p, err)
		}
		if _, err := doc.Fetch(p); err != nil {
			t.Fatal(err)
		}
		step := total() - before
		if step > maxStep {
			maxStep = step
		}
	}
	if maxStep > 8 {
		t.Fatalf("q_conc step cost %d source commands, want small constant (bounded)", maxStep)
	}
	if base > 20 {
		t.Fatalf("q_conc first-result cost %d, want small constant", base)
	}
}

// TestFusedSelectFallsBackOnConstructedValues: the select(σ) fusion
// only pushes to source-backed parents; over constructed parents it
// must silently fall back to a label-filter scan with identical
// results.
func TestFusedSelectFallsBackOnConstructedValues(t *testing.T) {
	src := xmltree.Elem("r",
		xmltree.Text("a", "1"), xmltree.Text("b", "2"), xmltree.Text("a", "3"))
	opts := Options{JoinCache: true, PathCache: true, GroupCache: true, NativeSelect: true}
	e, _ := engineWith(opts, map[string]*xmltree.Tree{"s": src})

	// Parent is a constructed element: wrap the source children into a
	// fresh element, then scan its children.
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("_"), Out: "C"}
	grp := &algebra.GroupBy{Input: gd, By: nil, Var: "C", Out: "CS"}
	ce := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "wrapped"}, Children: "CS", Out: "W"}
	scan := &algebra.GetDescendants{Input: ce, Parent: "W",
		Path: pathexpr.MustParse("_"), Out: "X"}
	sel := &algebra.Select{Input: scan, Cond: &algebra.LabelMatch{Var: "X", Label: "a"}}
	q := mustCompile(t, e, &algebra.Project{Input: sel, Keep: []string{"X"}})
	got := mustMaterialize(t, q)
	if len(got.Children) != 2 {
		t.Fatalf("fallback scan found %d, want 2:\n%v", len(got.Children), got)
	}
}

func TestDeepRecursionDoesNotOverflow(t *testing.T) {
	deep := workload.DeepTree(3000, 1)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"d": deep})
	q := mustCompile(t, e, workload.RecursivePlan("d"))
	got := mustMaterialize(t, q)
	if n := len(got.Children); n != 3000 {
		t.Fatalf("matches = %d, want 3000", n)
	}
}

// TestGroupValueListsShareScans: navigating two different groups'
// value lists pulls the (memoized) join output once, not once per
// group.
func TestGroupValueListsShareScans(t *testing.T) {
	homes, schools := workload.HomesSchools(30, 30, 3, 11)
	e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())
	doc := q.Document()
	root, _ := doc.Root()
	g1, err := doc.Down(root)
	if err != nil || g1 == nil {
		t.Fatal("no first group")
	}
	if _, err := nav.Subtree(doc, g1); err != nil {
		t.Fatal(err)
	}
	afterFirst := counters["schoolsSrc"].Counters.Navigations()
	g2, err := doc.Right(g1)
	if err != nil || g2 == nil {
		t.Fatal("no second group")
	}
	if _, err := nav.Subtree(doc, g2); err != nil {
		t.Fatal(err)
	}
	afterSecond := counters["schoolsSrc"].Counters.Navigations()
	// The second group re-uses the memoized join output; its extra
	// source cost is only the schools actually contained in it.
	if delta := afterSecond - afterFirst; delta > afterFirst {
		t.Fatalf("second group cost %d > first group cost %d: scans not shared",
			delta, afterFirst)
	}
}

func TestOrderByStableForEqualKeys(t *testing.T) {
	src := xmltree.Elem("r",
		xmltree.Elem("p", xmltree.Text("k", "1"), xmltree.Text("id", "first")),
		xmltree.Elem("p", xmltree.Text("k", "1"), xmltree.Text("id", "second")),
		xmltree.Elem("p", xmltree.Text("k", "0"), xmltree.Text("id", "third")),
	)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("p"), Out: "P"}
	key := &algebra.GetDescendants{Input: gd, Parent: "P",
		Path: pathexpr.MustParse("k._"), Out: "K"}
	ob := &algebra.OrderBy{Input: key, Keys: []string{"K"}}
	q := mustCompile(t, e, &algebra.Project{Input: ob, Keep: []string{"P"}})
	got := mustMaterialize(t, q)
	ids := []string{}
	for _, b := range got.Children {
		ids = append(ids, b.FirstChild().FirstChild().Find("id").TextContent())
	}
	if strings.Join(ids, ",") != "third,first,second" {
		t.Fatalf("orderBy not stable: %v", ids)
	}
}

func TestRenameAndProjectChains(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("a", "1"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("a"), Out: "X"}
	ren := &algebra.Rename{Input: gd, From: "X", To: "Y"}
	prj := &algebra.Project{Input: ren, Keep: []string{"Y"}}
	ren2 := &algebra.Rename{Input: prj, From: "Y", To: "Z"}
	q := mustCompile(t, e, ren2)
	got := mustMaterialize(t, q)
	want := xmltree.Elem("bs", xmltree.Elem("b",
		xmltree.Elem("Z", xmltree.Text("a", "1"))))
	if !xmltree.Equal(got, want) {
		t.Fatalf("rename/project chain: %v", got)
	}
}

// TestInterleavedCursors: two independent clients walking the same
// virtual document at different speeds must not disturb each other
// (persistence of handles).
func TestInterleavedCursors(t *testing.T) {
	homes, schools := workload.HomesSchools(12, 12, 2, 13)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())
	doc := q.Document()
	root, _ := doc.Root()

	a, _ := doc.Down(root)
	bID, _ := doc.Down(root)
	var aLabels, bLabels []string
	for a != nil || bID != nil {
		if a != nil {
			l, err := doc.Fetch(a)
			if err != nil {
				t.Fatal(err)
			}
			aLabels = append(aLabels, l)
			a, _ = doc.Right(a)
		}
		if bID != nil && len(aLabels)%2 == 0 { // b advances at half speed
			l, err := doc.Fetch(bID)
			if err != nil {
				t.Fatal(err)
			}
			bLabels = append(bLabels, l)
			bID, _ = doc.Right(bID)
		}
	}
	for bID != nil {
		l, _ := doc.Fetch(bID)
		bLabels = append(bLabels, l)
		bID, _ = doc.Right(bID)
	}
	if strings.Join(aLabels, ",") != strings.Join(bLabels, ",") {
		t.Fatalf("interleaved cursors disagree:\n%v\n%v", aLabels, bLabels)
	}
}

func TestConstAndWrapListValues(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("a", "1"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("a"), Out: "X"}
	c := &algebra.Const{Input: gd, Value: xmltree.Text("tag", "v"), Out: "C"}
	w := &algebra.WrapList{Input: c, Var: "X", Out: "L"}
	q := mustCompile(t, e, &algebra.Project{Input: w, Keep: []string{"C", "L"}})
	got := mustMaterialize(t, q)
	b := got.FirstChild()
	if !xmltree.Equal(b.Find("C").FirstChild(), xmltree.Text("tag", "v")) {
		t.Fatalf("const value wrong: %v", b.Find("C"))
	}
	l := b.Find("L").FirstChild()
	if l.Label != "list" || len(l.Children) != 1 || l.Children[0].Label != "a" {
		t.Fatalf("wrapList value wrong: %v", l)
	}
}

func TestNewVDocAndLazyNode(t *testing.T) {
	// A lazyNode exposed through NewVDoc resolves on first use.
	resolved := 0
	ln := &lazyNode{resolve: func() (Node, error) {
		resolved++
		return FromTree(xmltree.Elem("r", xmltree.Leaf("x"))), nil
	}}
	doc := NewVDoc(ln)
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	if resolved != 0 {
		t.Fatal("root handle must not resolve the node")
	}
	child, err := doc.Down(root) // forces resolution via lazyNode.Children
	if err != nil || child == nil {
		t.Fatalf("Down: %v %v", child, err)
	}
	if l, _ := doc.Fetch(child); l != "x" {
		t.Fatalf("child label %q", l)
	}
	if resolved != 1 {
		t.Fatalf("resolved %d times", resolved)
	}
	// Errors from resolution surface.
	bad := NewVDoc(&lazyNode{resolve: func() (Node, error) {
		return nil, fmt.Errorf("source gone")
	}})
	broot, _ := bad.Root()
	if _, err := bad.Fetch(broot); err == nil {
		t.Fatal("resolution failure must surface")
	}
	if _, err := bad.Down(broot); err == nil {
		t.Fatal("resolution failure must surface on Down")
	}
}
