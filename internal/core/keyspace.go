package core

import (
	"encoding/binary"
	"strings"
	"sync"

	"mix/internal/xmltree"
)

// Fingerprint-backed operator keys.
//
// distinct, groupBy and difference need a map key that is equal exactly
// when the tuples of variable values are structurally equal. The
// canonical-string key (binding.key's fallback path) has that property
// but costs a full serialization of every subtree per first use. With
// Options.Fingerprints the key is instead the concatenation of the
// values' 16-byte structural fingerprints — constant-size per variable
// — made *exact* by a keyspace: a per-query table that remembers, for
// each fingerprint key, the distinct value tuples that produced it.
// The first tuple owns the bare key; a colliding tuple (equal
// fingerprints, unequal trees — astronomically rare, but the semantics
// must not depend on that) is detected by tuple-wise xmltree.Equal
// against the stored representatives and gets the key extended with its
// slot index, so different tuples never share a key and equal tuples
// always do.
//
// The keyspace is scoped to one compiled query (created per Compile,
// threaded by the compiler), which bounds retention: it can never
// outlive the bindings whose trees it references, and keys from
// different queries — or from the same plan compiled twice — are never
// mixed. It is mutex-guarded because parallel join derivation may
// compute keys on two goroutines.

// compiler carries the per-compile state threaded through plan
// compilation: the engine (options, registry, tracer) and, with
// fingerprints enabled, the query-scoped keyspace. Engine.Compile may
// be called concurrently, so per-compile state lives here rather than
// on the Engine.
type compiler struct {
	e  *Engine
	ks *keyspace // nil when Options.Fingerprints is off

	// batch is the batch width when Options.batchMode selected the
	// batch-at-a-time pipeline (see batch.go); 0 compiles the scalar
	// binding-at-a-time pipeline.
	batch int
}

// keyspace disambiguates fingerprint collisions within one query.
type keyspace struct {
	mu   sync.Mutex
	reps map[string][][]*xmltree.Tree // fp key → distinct tuples seen
}

func newKeyspace() *keyspace { return &keyspace{reps: map[string][][]*xmltree.Tree{}} }

// resolve returns the collision slot of the tuple under key: 0 for the
// first tuple observed with this fingerprint key (the overwhelmingly
// common case), i > 0 for the i-th structurally distinct tuple that
// collided with it. Equal tuples always resolve to the same slot.
func (ks *keyspace) resolve(key string, tuple []*xmltree.Tree) int {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	reps := ks.reps[key]
	for i, rep := range reps {
		if tuplesEqual(rep, tuple) {
			return i
		}
	}
	ks.reps[key] = append(reps, tuple)
	return len(reps)
}

func tuplesEqual(a, b []*xmltree.Tree) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !xmltree.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Test hooks: fingerprint computations used for operator and hash-join
// keys, swappable so collision-fallback tests can force every value
// into one bucket and assert the Equal-based disambiguation alone
// produces correct answers.
var (
	treeFP = (*xmltree.Tree).Fingerprint
	atomFP = (*xmltree.Tree).AtomFingerprint
)

// fpKey computes the fingerprint-backed operator key for the values of
// vars: the concatenated per-value fingerprints, plus a collision-slot
// suffix when the keyspace has seen a different tuple under the same
// fingerprints. Materialized trees are memoized on the binding links
// exactly like the canonical path.
func (b *binding) fpKey(ks *keyspace, vars []string) (string, error) {
	raw := make([]byte, 0, len(vars)*16)
	tuple := make([]*xmltree.Tree, len(vars))
	for i, v := range vars {
		t, err := b.Value(v)
		if err != nil {
			return "", err
		}
		tuple[i] = t
		raw = treeFP(t).AppendKey(raw)
	}
	if slot := ks.resolve(string(raw), tuple); slot > 0 {
		raw = append(raw, 0xff)
		raw = binary.AppendUvarint(raw, uint64(slot))
	}
	return string(raw), nil
}

// key returns the operator key for the values of vars — the map key
// distinct/groupBy/difference deduplicate on. With a keyspace it is the
// fingerprint key above; without one (fingerprints off) it is the
// legacy canonical-string key. Results are memoized per binding so the
// repeated group/member scans of groupBy pay for key construction once.
// The two key forms never mix: ks is fixed for the life of a query, and
// bindings do not outlive their query.
func (b *binding) key(ks *keyspace, vars []string) (string, error) {
	return b.keyCached(strings.Join(vars, "\x01"), ks, vars)
}

// keyCached is key with the memo-map key (the joined variable list)
// precomputed, so batch operators join the variable list once per batch
// instead of once per binding.
func (b *binding) keyCached(ck string, ks *keyspace, vars []string) (string, error) {
	if k, ok := b.keys[ck]; ok {
		return k, nil
	}
	var k string
	var err error
	if ks != nil {
		k, err = b.fpKey(ks, vars)
	} else {
		k, err = b.canonKey(vars)
	}
	if err != nil {
		return "", err
	}
	if b.keys == nil {
		b.keys = map[string]string{}
	}
	b.keys[ck] = k
	return k, nil
}

// batchKeys computes the operator keys of a whole batch into scratch
// (reused across calls). n is the number of keys computed before the
// first failure — callers emit that prefix before surfacing err, the
// batch pipeline's mid-batch error rule.
func batchKeys(bs []*binding, ks *keyspace, vars []string, ck string, scratch []string) (keys []string, n int, err error) {
	scratch = scratch[:0]
	for i, b := range bs {
		k, kerr := b.keyCached(ck, ks, vars)
		if kerr != nil {
			return scratch, i, kerr
		}
		scratch = append(scratch, k)
	}
	return scratch, len(bs), nil
}

// canonKey is the canonical-string key: the NUL-joined canonical forms
// of the values. It is the fingerprints-off path and must stay fast —
// the builder is pre-sized from the memoized canonical lengths so the
// concatenation costs one allocation.
func (b *binding) canonKey(vars []string) (string, error) {
	links := make([]*binding, len(vars))
	size := 0
	for i, v := range vars {
		l := b.lookup(v)
		if l == nil {
			return "", errUnbound(v)
		}
		if l.canon == "" {
			if l.tree == nil {
				t, err := MaterializeNode(l.val)
				if err != nil {
					return "", err
				}
				l.tree = t
			}
			l.canon = l.tree.Canonical()
		}
		links[i] = l
		size += len(l.canon) + 1
	}
	var sb strings.Builder
	sb.Grow(size)
	for _, l := range links {
		sb.WriteString(l.canon)
		sb.WriteByte(0)
	}
	return sb.String(), nil
}
