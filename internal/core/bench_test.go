package core

import (
	"testing"

	"mix/internal/nav"
	"mix/internal/trace"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func benchEngine(b *testing.B, n int) (*Engine, map[string]*xmltree.Tree) {
	homes, schools := workload.HomesSchools(n, n, n/10+1, 42)
	e := New()
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	for name, t := range srcs {
		e.Register(name, nav.NewTreeDoc(t))
	}
	return e, srcs
}

// BenchmarkCompile: preprocessing cost — building the tree of lazy
// mediators (must be cheap: no source access).
func BenchmarkCompile(b *testing.B) {
	e, _ := benchEngine(b, 100)
	plan := workload.HomesSchoolsPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compile(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstResult: time to the first med_home label.
func BenchmarkFirstResult(b *testing.B) {
	e, _ := benchEngine(b, 500)
	plan := workload.HomesSchoolsPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := e.Compile(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nav.Labels(q.Document(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullMaterialize: complete lazy evaluation of the running
// example. With no tracer installed this must match the pre-trace
// baseline exactly — the nil-tracer compile path adds no wrappers and
// no allocations (compare against BenchmarkFullMaterializeTraced).
func BenchmarkFullMaterialize(b *testing.B) {
	e, _ := benchEngine(b, 200)
	plan := workload.HomesSchoolsPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := e.Compile(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Materialize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullMaterializeTraced: the same evaluation with a recorder
// installed — the price of observability when it is switched on.
func BenchmarkFullMaterializeTraced(b *testing.B) {
	e, _ := benchEngine(b, 200)
	e.SetTracer(trace.New())
	plan := workload.HomesSchoolsPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := e.Compile(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Materialize(); err != nil {
			b.Fatal(err)
		}
		e.tracer.Take() // don't let the forest accumulate across iterations
	}
}
