package core

import (
	"fmt"

	"mix/internal/nav"
)

// VDoc exposes a lazy Node tree as a nav.Document: the virtual XML
// answer document the client navigates. Node-ids are handle structs
// pairing the node with the lazy remainder of its sibling list — the
// Skolem-style encoding of the paper's association information a(p):
// everything needed to continue the navigation down or right from p is
// inside the id itself, so the mediator keeps no association tables
// (Section 3, "the node-ids directly encode the association
// information").
type VDoc struct {
	root Node
}

// NewVDoc exposes root as a virtual document.
func NewVDoc(root Node) *VDoc { return &VDoc{root: root} }

// vid is the node-id: the handle to a node plus the lazy sibling
// remainder (nil for the root, which has no siblings).
type vid struct {
	n    Node
	rest list
}

// Root implements nav.Document. It performs no source access: the root
// node is a lazy handle resolved on first f or d.
func (d *VDoc) Root() (nav.ID, error) {
	return &vid{n: d.root}, nil
}

func (d *VDoc) id(p nav.ID) (*vid, error) {
	v, ok := p.(*vid)
	if !ok || v == nil {
		return nil, fmt.Errorf("%w: %T", nav.ErrForeignID, p)
	}
	return v, nil
}

// Down implements nav.Document.
func (d *VDoc) Down(p nav.ID) (nav.ID, error) {
	v, err := d.id(p)
	if err != nil {
		return nil, err
	}
	h, rest, err := v.n.Children().next()
	if err != nil {
		return nil, err
	}
	if h == nil {
		return nil, nil
	}
	return &vid{n: h, rest: rest}, nil
}

// Right implements nav.Document.
func (d *VDoc) Right(p nav.ID) (nav.ID, error) {
	v, err := d.id(p)
	if err != nil {
		return nil, err
	}
	if v.rest == nil {
		return nil, nil
	}
	h, rest, err := v.rest.next()
	if err != nil {
		return nil, err
	}
	if h == nil {
		return nil, nil
	}
	return &vid{n: h, rest: rest}, nil
}

// Fetch implements nav.Document.
func (d *VDoc) Fetch(p nav.ID) (string, error) {
	v, err := d.id(p)
	if err != nil {
		return "", err
	}
	return v.n.Label()
}
