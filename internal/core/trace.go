package core

import (
	"fmt"

	"mix/internal/algebra"
	"mix/internal/trace"
)

// SetTracer installs a navigation-trace recorder on the engine. Plans
// compiled *after* the call get a trace.Doc at every source boundary
// and a traced stream at every operator boundary, so each client
// navigation unfolds into a causal span tree (operator pulls → source
// navigations) in the recorder. Plans compiled without a tracer are
// completely untouched — tracing off is the zero-cost default.
//
// Set the tracer before compiling; it is not synchronized with
// concurrent Compile calls.
func (e *Engine) SetTracer(rec *trace.Recorder) { e.tracer = rec }

// opLabel names an operator for trace spans and latency histograms.
func opLabel(p algebra.Op) string {
	switch op := p.(type) {
	case *algebra.Source:
		return "source(" + op.URL + ")"
	case *algebra.GetDescendants:
		return "getDescendants(" + op.Path.String() + ")"
	case *algebra.Select:
		return "select"
	case *algebra.Join:
		return "join"
	case *algebra.GroupBy:
		return "groupBy"
	case *algebra.Concatenate:
		return "concatenate"
	case *algebra.CreateElement:
		return "createElement"
	case *algebra.OrderBy:
		return "orderBy"
	case *algebra.Project:
		return "project"
	case *algebra.Union:
		return "union"
	case *algebra.Difference:
		return "difference"
	case *algebra.Distinct:
		return "distinct"
	case *algebra.WrapList:
		return "wrapList"
	case *algebra.Const:
		return "const"
	case *algebra.Rename:
		return "rename"
	case *algebra.TupleDestroy:
		return "tupleDestroy"
	default:
		return fmt.Sprintf("%T", p)
	}
}

// tracedStream wraps an operator's output stream so every pull opens a
// span: the causal record of how demand on this operator propagated.
// The wrapper is persistent like the stream it wraps — each tail is
// wrapped again — and memoized replays of earlier positions bypass it
// entirely (cache hits cost no navigation, so they leave no span).
type tracedStream struct {
	in    stream
	label string
	rec   *trace.Recorder
}

func (t tracedStream) next() (*binding, stream, error) {
	sp := t.rec.Begin(t.label, "next")
	b, rest, err := t.in.next()
	t.rec.End(sp)
	if rest != nil {
		rest = tracedStream{in: rest, label: t.label, rec: t.rec}
	}
	return b, rest, err
}

// traceStreamBuilder wraps a builder so the streams it creates are
// traced under the given operator label.
func traceStreamBuilder(b builder, label string, rec *trace.Recorder) builder {
	return func() (stream, error) {
		s, err := b()
		if err != nil {
			return nil, err
		}
		return tracedStream{in: s, label: label, rec: rec}, nil
	}
}
