package core

import (
	"testing"

	"mix/internal/algebra"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// Fingerprint-path identity and collision-fallback tests. The contract
// under test: Options.Fingerprints changes only the cost of operator
// keys, bucket keys and path stepping — never a byte of the answer —
// and even under total fingerprint collision (every value hashed to one
// bucket) the Equal-based fallback alone keeps answers correct.

func fpOpts() Options {
	o := DefaultOptions()
	o.Fingerprints = true
	return o
}

func noFpOpts() Options {
	o := DefaultOptions()
	o.Fingerprints = false
	return o
}

// keyPlans returns plans exercising every fingerprint consumer:
// distinct, groupBy, difference, orderBy, and wildcard/recursive path
// descent, over the homes/schools workload.
func keyPlans() map[string]algebra.Op {
	homesZip := func() algebra.Op {
		gd := &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
			Parent: "r1", Path: pathexpr.MustParse("home"), Out: "H",
		}
		return &algebra.GetDescendants{Input: gd, Parent: "H",
			Path: pathexpr.MustParse("zip._"), Out: "V1"}
	}
	schoolsZip := func() algebra.Op {
		gd := &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "schoolsSrc", Var: "r2"},
			Parent: "r2", Path: pathexpr.MustParse("school"), Out: "S",
		}
		return &algebra.GetDescendants{Input: gd, Parent: "S",
			Path: pathexpr.MustParse("zip._"), Out: "V2"}
	}
	return map[string]algebra.Op{
		"distinct": &algebra.Distinct{
			Input: &algebra.Project{Input: homesZip(), Keep: []string{"V1"}}},
		"groupBy": &algebra.GroupBy{
			Input: homesZip(), By: []string{"V1"}, Var: "H", Out: "G"},
		"difference": &algebra.Difference{
			Left: &algebra.Project{Input: homesZip(), Keep: []string{"V1"}},
			Right: &algebra.Project{
				Input: &algebra.Rename{Input: schoolsZip(), From: "V2", To: "V1"},
				Keep:  []string{"V1"}}},
		"orderBy": &algebra.OrderBy{Input: homesZip(), Keys: []string{"V1"}},
		"hashJoin": hashZipPlan(
			algebra.Eq(algebra.V("V1"), algebra.V("V2"))),
		"recursivePath": &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
			Parent: "r1", Path: pathexpr.MustParse("(home|zip)*._"), Out: "X"},
	}
}

// TestFingerprintsByteIdentical: every plan answers byte-identically
// with fingerprints on and off.
func TestFingerprintsByteIdentical(t *testing.T) {
	homes, schools := workload.HomesSchools(30, 30, 5, 11)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	for name, plan := range keyPlans() {
		t.Run(name, func(t *testing.T) {
			eOff, _ := engineWith(noFpOpts(), srcs)
			eOn, _ := engineWith(fpOpts(), srcs)
			want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, eOff, plan)))
			got := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, eOn, plan)))
			if got != want {
				t.Errorf("fingerprints changed the answer\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestFingerprintsNavigationIdentical: the fast path must not change
// what is navigated either — same per-source command counts.
func TestFingerprintsNavigationIdentical(t *testing.T) {
	homes, schools := workload.HomesSchools(20, 20, 4, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	for name, plan := range keyPlans() {
		t.Run(name, func(t *testing.T) {
			eOff, cOff := engineWith(noFpOpts(), srcs)
			eOn, cOn := engineWith(fpOpts(), srcs)
			mustMaterialize(t, mustCompile(t, eOff, plan))
			mustMaterialize(t, mustCompile(t, eOn, plan))
			for src, c := range cOff {
				if got, want := cOn[src].Counters.Snapshot(), c.Counters.Snapshot(); got != want {
					t.Errorf("source %s: navigations with fingerprints %+v, without %+v",
						src, got, want)
				}
			}
		})
	}
}

// withCollidingFingerprints forces every structural fingerprint to one
// value for the duration of fn, so keyspace disambiguation carries the
// entire correctness burden.
func withCollidingFingerprints(fn func()) {
	origTree, origAtom := treeFP, atomFP
	treeFP = func(*xmltree.Tree) xmltree.Fingerprint {
		return xmltree.Fingerprint{Hi: 0xdead, Lo: 0xbeef}
	}
	atomFP = func(*xmltree.Tree) xmltree.Fingerprint {
		return xmltree.Fingerprint{Hi: 0xdead, Lo: 0xbeef}
	}
	defer func() { treeFP, atomFP = origTree, origAtom }()
	fn()
}

// TestFingerprintCollisionFallback: with every value forced into one
// fingerprint bucket, answers must still be byte-identical to the
// canonical-key engine — the Equal fallback in keyspace.resolve (and
// the full condition re-check in the hash join) is the only thing
// separating values, and it must be enough.
func TestFingerprintCollisionFallback(t *testing.T) {
	homes, schools := workload.HomesSchools(25, 25, 4, 17)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	for name, plan := range keyPlans() {
		t.Run(name, func(t *testing.T) {
			eOff, _ := engineWith(noFpOpts(), srcs)
			want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, eOff, plan)))
			var got string
			withCollidingFingerprints(func() {
				eOn, _ := engineWith(fpOpts(), srcs)
				got = xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, eOn, plan)))
			})
			if got != want {
				t.Errorf("collision fallback broke the answer\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestKeyspaceSlots exercises resolve directly: equal tuples share a
// slot, distinct colliding tuples get distinct slots, across
// interleaved orders.
func TestKeyspaceSlots(t *testing.T) {
	ks := newKeyspace()
	a := []*xmltree.Tree{xmltree.Text("zip", "92093")}
	a2 := []*xmltree.Tree{xmltree.Text("zip", "92093")} // equal to a
	b := []*xmltree.Tree{xmltree.Text("zip", "91220")}  // distinct
	key := "samekey"
	if got := ks.resolve(key, a); got != 0 {
		t.Errorf("first tuple slot = %d, want 0", got)
	}
	if got := ks.resolve(key, b); got != 1 {
		t.Errorf("colliding distinct tuple slot = %d, want 1", got)
	}
	if got := ks.resolve(key, a2); got != 0 {
		t.Errorf("equal tuple re-resolved to %d, want 0", got)
	}
	if got := ks.resolve(key, b); got != 1 {
		t.Errorf("second distinct tuple re-resolved to %d, want 1", got)
	}
	if got := ks.resolve("otherkey", b); got != 0 {
		t.Errorf("different key must start at slot 0, got %d", got)
	}
}

// TestHashJoinFingerprintIdenticalToNested is the PR 4 identity suite
// run with fingerprints on: hash-join answers (equi, residual, masked)
// must equal nested-loops answers byte for byte.
func TestHashJoinFingerprintIdenticalToNested(t *testing.T) {
	homes, schools := workload.HomesSchools(40, 40, 7, 21)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	conds := map[string]algebra.Cond{
		"equi": algebra.Eq(algebra.V("V1"), algebra.V("V2")),
		"residual": &algebra.And{
			L: algebra.Eq(algebra.V("V1"), algebra.V("V2")),
			R: &algebra.Cmp{Op: algebra.OpNeq, L: algebra.V("H"), R: algebra.V("S")}},
		"masked": maskedCond{algebra.Eq(algebra.V("V1"), algebra.V("V2"))},
	}
	for name, cond := range conds {
		t.Run(name, func(t *testing.T) {
			plan := hashZipPlan(cond)
			nested, _ := engineWith(nestedOpts(), srcs)
			want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, nested, plan)))
			hashed := hashOpts()
			hashed.Fingerprints = true
			fp, _ := engineWith(hashed, srcs)
			got := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, fp, plan)))
			if got != want {
				t.Errorf("fingerprint hash join diverged\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestAtomFingerprintBridgesElementLeaf: an equi-join between an
// element value and a leaf value whose atoms agree must pair them —
// the reason bucket keys hash atoms, not structure.
func TestAtomFingerprintBridgesElementLeaf(t *testing.T) {
	// left values are zip[92093]-style elements, right values raw leaves.
	left := xmltree.Elem("l", xmltree.Text("zip", "92093"), xmltree.Text("zip", "91220"))
	right := xmltree.Elem("r", xmltree.Leaf("92093"), xmltree.Leaf("00000"))
	srcs := map[string]*xmltree.Tree{"L": left, "R": right}
	plan := &algebra.Join{
		Left: &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "L", Var: "rl"},
			Parent: "rl", Path: pathexpr.MustParse("zip"), Out: "X"},
		Right: &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "R", Var: "rr"},
			Parent: "rr", Path: pathexpr.MustParse("_"), Out: "Y"},
		Cond: algebra.Eq(algebra.V("X"), algebra.V("Y")),
	}
	eFp, _ := engineWith(fpOpts(), srcs)
	got := mustMaterialize(t, mustCompile(t, eFp, plan))
	eOff, _ := engineWith(noFpOpts(), srcs)
	want := mustMaterialize(t, mustCompile(t, eOff, plan))
	if !xmltree.Equal(got, want) {
		t.Fatalf("element/leaf bridging broke: got %v want %v", got, want)
	}
	// Exactly one pair: zip[92093] with leaf 92093.
	if n := got.CountLabel("b"); n != 1 {
		t.Fatalf("expected 1 joined pair, got %d", n)
	}
}

func distinctGroupPlan() algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
		Parent: "r1", Path: pathexpr.MustParse("home"), Out: "H",
	}
	zip := &algebra.GetDescendants{Input: gd, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "V"}
	return &algebra.GroupBy{
		Input: &algebra.Distinct{Input: &algebra.Project{Input: zip, Keep: []string{"H", "V"}}},
		By:    []string{"V"}, Var: "H", Out: "G"}
}

func benchKeys(b *testing.B, opts Options) {
	homes, _ := workload.HomesSchools(120, 1, 9, 5)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes}
	plan := distinctGroupPlan()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := engineWith(opts, srcs)
		q, err := e.Compile(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Materialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinctGroupKeysCanonical(b *testing.B)   { benchKeys(b, noFpOpts()) }
func BenchmarkDistinctGroupKeysFingerprint(b *testing.B) { benchKeys(b, fpOpts()) }

// benchDetailKeys drives the E14 workload: distinct+groupBy whose keys
// digest large home payloads while the answer stays one slim row per
// zip, so key construction dominates the allocation profile.
func benchDetailKeys(b *testing.B, opts Options) {
	homes := workload.DetailedHomes(160, 200, 12, 7)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes}
	plan := workload.DistinctZipGroupsPlan("homesSrc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := engineWith(opts, srcs)
		q, err := e.Compile(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Materialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinctDetailKeysCanonical(b *testing.B)   { benchDetailKeys(b, noFpOpts()) }
func BenchmarkDistinctDetailKeysFingerprint(b *testing.B) { benchDetailKeys(b, fpOpts()) }
