package core

import (
	"strings"

	"mix/internal/algebra"
	"mix/internal/xmltree"
)

// compileGroupBy implements the lazy groupBy mediator of Appendix A
// (Fig. 10). Navigating right among the output groups scans the input
// for the next binding whose group-by list has not been seen (the
// paper's nextgb over Gprev); navigating right among a group's values
// scans the input for the next binding with the same group-by list (the
// paper's next(pb, pg)). With GroupCache the input scan and the grouped
// value lists are memoized, the optimization the appendix describes.
func (c *compiler) compileGroupBy(op *algebra.GroupBy) (builder, error) {
	in, err := c.compile(op.Input)
	if err != nil {
		return nil, err
	}
	by, varName, out := op.By, op.Var, op.Out
	cache := c.e.opts.GroupCache
	ks := c.ks
	return func() (stream, error) {
		input := deferStream(in)
		if cache {
			input = memoizeStream(input)
		}
		if len(by) == 0 {
			// Grouping by {} yields exactly one output binding — even
			// for empty input ("create one answer element for each
			// {}") — and it is produced without touching the input:
			// the grouped list is lazy. This is what lets the mediator
			// answer f on the answer root with zero source accesses.
			values := valueList{in: input, varName: varName}
			b := newBinding().with(out, NewElem(xmltree.ListLabel, maybeMemo(values, cache)))
			return consStream{head: b, tail: emptyStream{}}, nil
		}
		return groupsStream{in: input, ks: ks, by: by, varName: varName, out: out,
			seen: nil, cache: cache}, nil
	}, nil
}

func maybeMemo(l list, cache bool) list {
	if cache {
		return memoize(l)
	}
	return l
}

// valueList renders the varName values of a binding stream as a lazy
// node list (the contents of a list[…] group value).
type valueList struct {
	in      stream
	varName string
}

func (v valueList) next() (Node, list, error) {
	b, rest, err := v.in.next()
	if err != nil || b == nil {
		return nil, nil, err
	}
	n, err := b.node(v.varName)
	if err != nil {
		return nil, nil, err
	}
	return n, valueList{in: rest, varName: v.varName}, nil
}

// groupsStream emits one output binding per distinct group-by list, in
// order of first occurrence. seen is the paper's Gprev; it is extended
// persistently (each tail carries its own copy) so that saved handles
// into earlier positions remain valid.
type groupsStream struct {
	in      stream
	ks      *keyspace
	by      []string
	varName string
	out     string
	seen    map[string]bool
	cache   bool
}

func (g groupsStream) next() (*binding, stream, error) {
	in := g.in
	for {
		b, t, err := in.next()
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			return nil, nil, nil
		}
		k, err := b.key(g.ks, g.by)
		if err != nil {
			return nil, nil, err
		}
		if g.seen[k] {
			in = t
			continue
		}
		// New group: its member list starts here and continues through
		// the remainder of the input with the same group-by list.
		members := filterStream{in: consStream{head: b, tail: t},
			pred: sameKeyPred(g.ks, g.by, k)}
		values := valueList{in: members, varName: g.varName}
		// The output binding keeps the group-by variables (sharing the
		// group head's links, and therefore its memoized values) and
		// adds the lazy grouped list.
		ob := b.project(g.by).with(g.out, NewElem(xmltree.ListLabel, maybeMemo(values, g.cache)))

		seen2 := make(map[string]bool, len(g.seen)+1)
		for s := range g.seen {
			seen2[s] = true
		}
		seen2[k] = true
		return ob, groupsStream{in: t, ks: g.ks, by: g.by, varName: g.varName,
			out: g.out, seen: seen2, cache: g.cache}, nil
	}
}

func sameKeyPred(ks *keyspace, by []string, key string) func(*binding) (bool, error) {
	return func(b *binding) (bool, error) {
		k, err := b.key(ks, by)
		if err != nil {
			return false, err
		}
		return k == key, nil
	}
}

// compileBGroupBy is the batch-mode groupBy. The input flows once into
// a shared batchLog; the group scan and every group's member list are
// positions into that log, so the grouped value lists stay lazy (and
// memoized — GroupCache is implied by batch mode) while ingest happens
// a batch at a time.
func (c *compiler) compileBGroupBy(op *algebra.GroupBy) (bbuilder, error) {
	in, err := c.compileB(op.Input)
	if err != nil {
		return nil, err
	}
	by, varName, out := op.By, op.Var, op.Out
	ks := c.ks
	return func() (bcursor, error) {
		input := &lazyLog{in: in}
		if len(by) == 0 {
			// Grouping by {} yields exactly one output binding without
			// touching the input — the grouped list is lazy, so the
			// mediator answers f on the answer root with zero source
			// accesses, exactly like the scalar valueList path.
			values := memoize(logValueList{in: input, varName: varName})
			b := newBinding().with(out, NewElem(xmltree.ListLabel, values))
			return &sliceBCursor{buf: []*binding{b}}, nil
		}
		return &groupsBCursor{in: input, ks: ks, by: by,
			ck: strings.Join(by, "\x01"), varName: varName, out: out,
			seen: map[string]bool{}}, nil
	}, nil
}

// logValueList renders the varName values of a logged input as a lazy
// node list, deriving the input only when first stepped.
type logValueList struct {
	in      *lazyLog
	varName string
	pos     int
}

func (v logValueList) next() (Node, list, error) {
	log, err := v.in.get()
	if err != nil {
		return nil, nil, err
	}
	b, err := log.at(v.pos, 1)
	if err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, nil
	}
	n, err := b.node(v.varName)
	if err != nil {
		return nil, nil, err
	}
	return n, logValueList{in: v.in, varName: v.varName, pos: v.pos + 1}, nil
}

// groupsBCursor emits one output binding per distinct group-by list, in
// order of first occurrence, scanning the shared input log a batch per
// call and keying with the joined variable list precomputed.
type groupsBCursor struct {
	in      *lazyLog
	ks      *keyspace
	by      []string
	ck      string
	varName string
	out     string
	pos     int
	seen    map[string]bool
	obuf    []*binding
	err     error
}

func (g *groupsBCursor) bnext(want int) ([]*binding, error) {
	if g.err != nil {
		return nil, g.err
	}
	g.obuf = g.obuf[:0]
	want = clampWant(want)
	fail := func(err error) ([]*binding, error) {
		g.err = err
		if len(g.obuf) > 0 {
			return g.obuf, nil
		}
		return nil, err
	}
	log, err := g.in.get()
	if err != nil {
		return fail(err)
	}
	for len(g.obuf) < want {
		b, err := log.at(g.pos, want)
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		k, err := b.keyCached(g.ck, g.ks, g.by)
		if err != nil {
			return fail(err)
		}
		head := g.pos
		g.pos++
		if g.seen[k] {
			continue
		}
		g.seen[k] = true
		// New group: its member list starts at the group head and
		// continues through the rest of the log with the same key. The
		// output binding keeps the group-by variables (sharing the
		// head's links and memoized values) plus the lazy grouped list.
		values := memoize(memberList{log: log, pos: head, ks: g.ks,
			by: g.by, key: k, ck: g.ck, varName: g.varName})
		g.obuf = append(g.obuf,
			b.project(g.by).with(g.out, NewElem(xmltree.ListLabel, values)))
	}
	if len(g.obuf) > 0 {
		return g.obuf, nil
	}
	return nil, nil
}

// memberList is one group's lazy value list: the varName values of the
// log positions from the group head onward whose group-by key matches.
type memberList struct {
	log     *batchLog
	pos     int
	ks      *keyspace
	by      []string
	key     string
	ck      string
	varName string
}

func (m memberList) next() (Node, list, error) {
	pos := m.pos
	for {
		b, err := m.log.at(pos, 1)
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			return nil, nil, nil
		}
		k, err := b.keyCached(m.ck, m.ks, m.by)
		if err != nil {
			return nil, nil, err
		}
		pos++
		if k != m.key {
			continue
		}
		n, err := b.node(m.varName)
		if err != nil {
			return nil, nil, err
		}
		return n, memberList{log: m.log, pos: pos, ks: m.ks, by: m.by,
			key: m.key, ck: m.ck, varName: m.varName}, nil
	}
}
