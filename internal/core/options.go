package core

import (
	"mix/internal/nav"
	"mix/internal/xmltree"
)

// Options control the operator-local caches, the navigation command
// set, and the execution style, mirroring the knobs the paper
// discusses:
//
//   - JoinCache — the nested-loops join stores the inner binding list
//     so it is not re-derived from the source for every outer binding
//     (Section 3). Disabling it is the E6 ablation.
//   - PathCache — getDescendants memoizes its output, so revisiting a
//     region of the answer does not re-run the (possibly recursive)
//     descent (Section 3). Disabling it is the E7 ablation.
//   - GroupCache — groupBy caches the grouped value lists for the
//     group-by lists in Gprev (Appendix A). Disabling it is E9.
//   - NativeSelect — the select(σ) command is part of NC and pushed to
//     the sources, upgrading label selections from browsable to
//     bounded browsable (Section 2, Example 1). E3 toggles it.
//   - HashJoin — joins whose condition implies a variable equality
//     (Cond.EquiKeys) probe an incrementally-built hash index over the
//     inner stream instead of scanning it per outer binding; the index
//     grows only as far as probing forces the inner stream, so laziness
//     is preserved. Requires JoinCache (the index memoizes the inner
//     derivation); non-equi conditions fall back to nested loops.
//   - Parallel — joins whose two inputs read disjoint source sets
//     derive both inputs concurrently (bounded worker pool, first error
//     cancels the sibling). The inputs are drained eagerly when the
//     join is first pulled, trading input laziness for wall-clock
//     overlap of the sources' round trips; see parallel.go. Requires
//     JoinCache (the drained inputs are replayed like the inner cache).
//   - Fingerprints — equality-heavy operators (distinct, groupBy,
//     difference, hash-join buckets) key on memoized 128-bit structural
//     fingerprints instead of canonical subtree strings, and
//     getDescendants steps a lazily-determinized DFA instead of
//     recomputing NFA closures per label. Semantics are byte-identical:
//     fingerprint collisions fall back to full structural comparison
//     (see keyspace.go), and the DFA is observationally equivalent to
//     the NFA. Off reproduces the pre-fingerprint behavior exactly.
//   - BatchSize — operators exchange slices of up to BatchSize bindings
//     per call instead of one binding per call (see batch.go). The lazy
//     navigation contract lives at the answer-document boundary, where
//     the batch-to-scalar adapter pulls single bindings on client
//     demand, so answers, client commands, and per-source navigation
//     counts are byte-identical to the scalar pipeline; whole-batch
//     execution kicks in on full drains (Materialize, orderBy and
//     difference inputs, parallel derivation). BatchSize <= 1
//     reproduces the scalar binding-at-a-time pipeline exactly, and the
//     batch pipeline also requires the three operator caches (an
//     ablated cache implies per-outer re-derivation, which is a
//     binding-at-a-time contract).
//   - SemanticCache — with a region cache installed, a named query whose
//     plan is *subsumed* by another cached plan (same view, weaker
//     σ-conditions / wider paths: see algebra.Analyze and DESIGN.md §14)
//     is answered by filtering the subsuming plan's fully-explored
//     region locally, with zero source navigations. Off restricts the
//     region cache to exact fingerprint matches (the E18 ablation).
type Options struct {
	JoinCache     bool
	PathCache     bool
	GroupCache    bool
	NativeSelect  bool
	HashJoin      bool
	Parallel      bool
	Fingerprints  bool
	SemanticCache bool
	BatchSize     int
}

// DefaultBatchSize is the batch width DefaultOptions enables: large
// enough to amortize per-call interpretation on warm drains, small
// enough that a pooled batch stays within a few cache lines of binding
// pointers.
const DefaultBatchSize = 64

// DefaultOptions enables all caches, the hash equi-join, the
// fingerprint fast paths, and batch-at-a-time execution, and leaves
// NC = {d, r, f}. Parallel input derivation is opt-in: it trades the
// lazy "explore only what the client demands" contract for latency
// overlap, which only pays off on high-latency sources.
func DefaultOptions() Options {
	return Options{JoinCache: true, PathCache: true, GroupCache: true,
		HashJoin: true, Fingerprints: true, SemanticCache: true, BatchSize: DefaultBatchSize}
}

// batchMode reports whether the batch pipeline serves this
// configuration; see the BatchSize doc above for why the caches gate it.
func (o Options) batchMode() bool {
	return o.BatchSize > 1 && o.JoinCache && o.PathCache && o.GroupCache
}

// Option configures an Engine under construction (see New).
type Option func(*Options)

// WithOptions replaces the whole option set, for callers that computed
// an Options value (ablation sweeps, config structs). A zero Options
// disables every cache and fast path — the paper's fully naive
// evaluator — exactly like the pre-options literal did.
func WithOptions(o Options) Option { return func(dst *Options) { *dst = o } }

// WithJoinCache toggles the nested-loops inner cache (E6 ablation).
func WithJoinCache(on bool) Option { return func(o *Options) { o.JoinCache = on } }

// WithPathCache toggles getDescendants memoization (E7 ablation).
func WithPathCache(on bool) Option { return func(o *Options) { o.PathCache = on } }

// WithGroupCache toggles groupBy's Gprev value-list caches (E9 ablation).
func WithGroupCache(on bool) Option { return func(o *Options) { o.GroupCache = on } }

// WithNativeSelect toggles pushing select(σ) to the sources (E3).
func WithNativeSelect(on bool) Option { return func(o *Options) { o.NativeSelect = on } }

// WithHashJoin toggles the hash equi-join fast path.
func WithHashJoin(on bool) Option { return func(o *Options) { o.HashJoin = on } }

// WithParallel toggles concurrent derivation of disjoint join inputs.
func WithParallel(on bool) Option { return func(o *Options) { o.Parallel = on } }

// WithFingerprints toggles fingerprint keys and the lazy path DFA.
func WithFingerprints(on bool) Option { return func(o *Options) { o.Fingerprints = on } }

// WithSemanticCache toggles answering navigations from subsuming cached
// regions via plan containment (the E18 ablation).
func WithSemanticCache(on bool) Option { return func(o *Options) { o.SemanticCache = on } }

// WithBatchSize sets the batch width of the vectorized pipeline
// (n <= 1 selects the scalar binding-at-a-time pipeline).
func WithBatchSize(n int) Option { return func(o *Options) { o.BatchSize = n } }

// New returns an Engine configured by the given options, applied over
// DefaultOptions. New() is the all-defaults engine; New(WithOptions(o))
// adopts a computed Options value wholesale.
func New(opts ...Option) *Engine {
	o := DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &Engine{opts: o, reg: map[string]nav.Document{}, intern: xmltree.NewInterner()}
}
