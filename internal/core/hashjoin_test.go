package core

import (
	"strconv"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// evalCountCond counts condition evaluations and forwards the equi-key
// extraction, so tests can tell a probing hash join (≈candidate pairs)
// from an N·M nested loop.
type evalCountCond struct {
	inner algebra.Cond
	n     int
}

func (c *evalCountCond) Eval(b algebra.ValueGetter) (bool, error) {
	c.n++
	return c.inner.Eval(b)
}
func (c *evalCountCond) Vars() []string        { return c.inner.Vars() }
func (c *evalCountCond) EquiKeys() [][2]string { return c.inner.EquiKeys() }
func (c *evalCountCond) String() string        { return c.inner.String() }

// maskedCond hides the equi keys of its inner condition, forcing the
// nested-loops fallback with unchanged semantics.
type maskedCond struct{ algebra.Cond }

func (maskedCond) EquiKeys() [][2]string { return nil }

// hashZipPlan joins homesSrc and schoolsSrc on the given condition
// (which bridges V1 and V2 when it is an equality), projecting the
// home/school pair.
func hashZipPlan(cond algebra.Cond) algebra.Op {
	left := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
		Parent: "r1", Path: pathexpr.MustParse("home"), Out: "H",
	}
	leftZip := &algebra.GetDescendants{Input: left, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "V1"}
	right := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "schoolsSrc", Var: "r2"},
		Parent: "r2", Path: pathexpr.MustParse("school"), Out: "S",
	}
	rightZip := &algebra.GetDescendants{Input: right, Parent: "S",
		Path: pathexpr.MustParse("zip._"), Out: "V2"}
	return &algebra.Project{
		Input: &algebra.Join{Left: leftZip, Right: rightZip, Cond: cond},
		Keep:  []string{"H", "S"},
	}
}

func hashOpts() Options {
	return Options{JoinCache: true, PathCache: true, GroupCache: true, HashJoin: true}
}

func nestedOpts() Options {
	return Options{JoinCache: true, PathCache: true, GroupCache: true}
}

// TestHashJoinByteIdenticalToNested runs the same join plans through
// both implementations: same bindings, same order, byte for byte.
func TestHashJoinByteIdenticalToNested(t *testing.T) {
	homes, schools := workload.HomesSchools(40, 40, 7, 21)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	eq := func() algebra.Cond { return algebra.Eq(algebra.V("V1"), algebra.V("V2")) }
	plans := map[string]func() algebra.Op{
		"pure equi": func() algebra.Op { return hashZipPlan(eq()) },
		"equi with residual": func() algebra.Op {
			return hashZipPlan(&algebra.And{
				L: eq(),
				R: &algebra.Not{C: algebra.Eq(algebra.V("V1"), algebra.Lit("91003"))},
			})
		},
		"non-equi fallback": func() algebra.Op {
			return hashZipPlan(&algebra.Or{L: eq(), R: eq()})
		},
		"masked keys": func() algebra.Op { return hashZipPlan(maskedCond{eq()}) },
	}
	for name, plan := range plans {
		run := func(opts Options) string {
			e, _ := engineWith(opts, srcs)
			return xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, e, plan())))
		}
		if nested, hash := run(nestedOpts()), run(hashOpts()); nested != hash {
			t.Errorf("%s: hash join answer differs from nested loops:\n%s\nvs\n%s",
				name, hash, nested)
		}
	}
}

// TestHashJoinEvalCounts: the hash join evaluates the condition only on
// key-colliding pairs, nested loops on every pair.
func TestHashJoinEvalCounts(t *testing.T) {
	const n = 60
	homes, schools := workload.HomesSchools(n, n, 10, 22)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	run := func(opts Options, cond algebra.Cond) int {
		cc := &evalCountCond{inner: cond}
		e, _ := engineWith(opts, srcs)
		mustMaterialize(t, mustCompile(t, e, hashZipPlan(cc)))
		return cc.n
	}
	eq := algebra.Eq(algebra.V("V1"), algebra.V("V2"))
	nested := run(nestedOpts(), eq)
	hash := run(hashOpts(), eq)
	if nested != n*n {
		t.Fatalf("nested loops evaluated the condition %d times, want %d", nested, n*n)
	}
	if 5*hash > nested {
		t.Fatalf("hash join evaluated %d of %d pairs; expected a >5x reduction", hash, nested)
	}
	// A condition without extractable keys falls back: same N·M count
	// whether or not the hash join is enabled.
	masked := run(hashOpts(), maskedCond{algebra.Eq(algebra.V("V1"), algebra.V("V2"))})
	if masked != n*n {
		t.Fatalf("masked condition should fall back to nested loops: %d evals, want %d", masked, n*n)
	}
}

// TestHashJoinIndexIsIncremental: answering the first join pair must
// not drain the whole inner source — the index ingests only as much of
// the inner stream as the first probe needs.
func TestHashJoinIndexIsIncremental(t *testing.T) {
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("zip", "1")))
	schools := xmltree.Elem("schools")
	const m = 100
	for i := 0; i < m; i++ {
		schools.Children = append(schools.Children,
			xmltree.Elem("school", xmltree.Text("zip", "1"),
				xmltree.Text("name", "s"+strconv.Itoa(i))))
	}
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	e, counters := engineWith(hashOpts(), srcs)
	q := mustCompile(t, e, hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
	if _, err := nav.Labels(q.Document(), 1); err != nil {
		t.Fatal(err)
	}
	first := counters["schoolsSrc"].Counters.Navigations()
	mustMaterialize(t, q)
	full := counters["schoolsSrc"].Counters.Navigations()
	if 4*first > full {
		t.Fatalf("first result cost %d of %d inner navigations; the index is not incremental", first, full)
	}
}

// TestEquiJoinKeysBridging: only pairs that bridge the two inputs make
// a join hashable; one-sided equalities are left to the residual.
func TestEquiJoinKeysBridging(t *testing.T) {
	join := func(cond algebra.Cond) *algebra.Join {
		return hashZipPlan(cond).(*algebra.Project).Input.(*algebra.Join)
	}
	lk, rk, ok := equiJoinKeys(join(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
	if !ok || len(lk) != 1 || lk[0] != "V1" || rk[0] != "V2" {
		t.Fatalf("bridging pair not found: %v %v %v", lk, rk, ok)
	}
	// Orientation is normalized even when the condition is written
	// inner-first.
	lk, rk, ok = equiJoinKeys(join(algebra.Eq(algebra.V("V2"), algebra.V("V1"))))
	if !ok || lk[0] != "V1" || rk[0] != "V2" {
		t.Fatalf("flipped pair not normalized: %v %v %v", lk, rk, ok)
	}
	// Both variables on one side: nothing to bridge with.
	if _, _, ok := equiJoinKeys(join(algebra.Eq(algebra.V("V1"), algebra.V("H")))); ok {
		t.Fatal("one-sided equality must not enable the hash join")
	}
	if _, _, ok := equiJoinKeys(join(algebra.True{})); ok {
		t.Fatal("products must not enable the hash join")
	}
}

// BenchmarkJoinNestedVsHash measures the equi-join of Fig. 4 under both
// implementations at a size where the O(N·M) probe cost dominates.
func BenchmarkJoinNestedVsHash(b *testing.B) {
	homes, schools := workload.HomesSchools(300, 300, 40, 9)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"nested", nestedOpts()},
		{"hash", hashOpts()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, _ := engineWith(bc.opts, srcs)
				q, err := e.Compile(hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := q.Materialize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
