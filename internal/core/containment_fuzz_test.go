package core

import (
	"strings"
	"testing"

	"mix/internal/xmltree"
)

// FuzzContainmentSound is the soundness fuzz for the semantic cache:
// for ANY pair of queries from the E18 family — grouped construct over
// one source, optional σ-restriction, fuzz-chosen paths, comparison
// operators and literals — materializing the sub query against a cache
// primed with the super query's region must produce exactly the answer
// a fresh uncached engine produces. When the containment checker says
// "contained" the answer is rebuilt from the cached region, so any
// unsoundness (a too-eager checker, a bad run decode, a mixed-kind
// literal comparison that is not actually implied) surfaces as a
// byte-level mismatch here. When it says "not contained" the engine
// falls back to source and equality is trivial — the fuzz cannot
// false-positive.

// fuzzPaths are the group paths the fuzzer indexes into; they overlap
// pairwise in every interesting way (equal, subset via wildcard, subset
// via alternation, disjoint, different depth).
var fuzzPaths = []string{
	"bib.book", "bib._", "bib.(book|cd)", "bib.cd", "_.book", "bib.book.title",
}

// fuzzRestPaths are the σ-restriction descent paths.
var fuzzRestPaths = []string{"price._", "title._", "_._"}

var fuzzOps = []string{"<", "<=", ">", ">=", "=", "!="}

// fuzzBib mixes numeric, non-numeric and empty text values so the
// hybrid literal comparison (numeric iff both sides parse) is exercised
// across kinds — exactly where naive ordering implication breaks.
func fuzzBib() *xmltree.Tree {
	return xmltree.Elem("bib",
		xmltree.Elem("book", xmltree.Text("title", "tcp"), xmltree.Text("price", "65")),
		xmltree.Elem("book", xmltree.Text("title", "data"), xmltree.Text("price", "19")),
		xmltree.Elem("book", xmltree.Text("title", "web"), xmltree.Text("price", "9")),
		xmltree.Elem("book", xmltree.Text("title", "odd"), xmltree.Text("price", "1x")),
		xmltree.Elem("book", xmltree.Text("title", "blank"), xmltree.Text("price", "")),
		xmltree.Elem("cd", xmltree.Text("title", "sonata"), xmltree.Text("price", "10")),
		xmltree.Elem("book", xmltree.Text("title", "data"), xmltree.Text("price", "19")),
		xmltree.Elem("dvd", xmltree.Text("title", "film"), xmltree.Text("price", "100")),
	)
}

// fuzzLit sanitizes a fuzz-chosen literal so the query text stays
// parseable: the soundness property is about plan containment, not
// about the XMAS lexer surviving raw bytes.
func fuzzLit(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '.' || r == '-' || r == '_' {
			b.WriteRune(r)
		}
		if b.Len() >= 8 {
			break
		}
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

func fuzzQuery(path, rest, op, lit string, restricted, nested bool) string {
	var b strings.Builder
	if nested {
		b.WriteString(`CONSTRUCT <answer> <r> $B {$B} </r> </answer> {} WHERE src `)
	} else {
		b.WriteString(`CONSTRUCT <r> $B {$B} </r> {} WHERE src `)
	}
	b.WriteString(path)
	b.WriteString(` $B`)
	if restricted {
		b.WriteString(` AND $B ` + rest + ` $P AND $P ` + op + ` "` + lit + `"`)
	}
	return b.String()
}

func FuzzContainmentSound(f *testing.F) {
	// The E18 pair: unrestricted superset, σ-restricted sub.
	f.Add(uint8(0), uint8(0), uint8(0), "20", false, false, uint8(0), uint8(0), uint8(0), "20", true, false)
	// Path weakening: bib._ superset, bib.book sub, no conditions.
	f.Add(uint8(1), uint8(0), uint8(0), "0", false, false, uint8(0), uint8(0), uint8(0), "0", false, false)
	// Alternation superset, label sub, nested construct on both sides.
	f.Add(uint8(2), uint8(0), uint8(0), "0", false, true, uint8(3), uint8(0), uint8(0), "0", false, true)
	// Implication between conditions: < "30" cached, < "20" asked.
	f.Add(uint8(0), uint8(0), uint8(0), "30", true, false, uint8(0), uint8(0), uint8(0), "20", true, false)
	// Mixed-kind literals: numeric cached bound, non-numeric sub bound.
	f.Add(uint8(0), uint8(0), uint8(0), "30", true, false, uint8(0), uint8(0), uint8(1), "1x", true, false)
	// NOT contained: restricted superset, unrestricted sub.
	f.Add(uint8(0), uint8(0), uint8(0), "20", true, false, uint8(0), uint8(0), uint8(0), "20", false, false)
	f.Fuzz(func(t *testing.T,
		sp, sr, sop uint8, slit string, sHas, sNest bool,
		bp, br, bop uint8, blit string, bHas, bNest bool) {
		superQ := fuzzQuery(
			fuzzPaths[int(sp)%len(fuzzPaths)],
			fuzzRestPaths[int(sr)%len(fuzzRestPaths)],
			fuzzOps[int(sop)%len(fuzzOps)], fuzzLit(slit), sHas, sNest)
		subQ := fuzzQuery(
			fuzzPaths[int(bp)%len(fuzzPaths)],
			fuzzRestPaths[int(br)%len(fuzzRestPaths)],
			fuzzOps[int(bop)%len(fuzzOps)], fuzzLit(blit), bHas, bNest)
		srcs := map[string]*xmltree.Tree{"src": fuzzBib()}
		superPlan, subPlan := translateQ(t, superQ), translateQ(t, subQ)
		want := oracle(t, subPlan, srcs)
		got, _, _ := drainSemPair(t, superPlan, subPlan, srcs, true)
		if !xmltree.Equal(got, want) {
			t.Fatalf("unsound semantic answer\nsuper: %s\nsub:   %s\n got %s\nwant %s",
				superQ, subQ, xmltree.MarshalXML(got), xmltree.MarshalXML(want))
		}
	})
}
