package core

import (
	"fmt"

	"mix/internal/algebra"
	"mix/internal/pathexpr"
	"mix/internal/regioncache"
	"mix/internal/xmltree"
)

// This file applies the plan-containment evidence of algebra.Analyze
// (DESIGN.md §14): when another cached plan of the same view subsumes
// this query's plan and its region is *fully explored* — locally or at
// its cluster owner — the query's whole answer is rebuilt by filtering
// that materialized region and merged into the query's own entry. The
// exact-match cache layer then serves every navigation from the entry,
// so a semantic hit costs zero source navigations, exactly like an
// exact warm hit.

// trySemantic runs the one semantic-cache attempt for this query
// against its (not yet complete) entry. It scans the plan index's
// candidate supersets, verifies containment, obtains a complete
// superset tree, and on success merges the rebuilt answer into entry —
// after which entry.Complete() holds and the Doc layer never consults
// the lazy streams again.
func (q *Query) trySemantic(c *regioncache.Cache, entry *regioncache.Entry) {
	q.semMu.Lock()
	defer q.semMu.Unlock()
	if q.semTried || entry.Complete() {
		return
	}
	q.semTried = true
	cands := c.Candidates(entry.Key())
	if len(cands) > 0 {
		c.RecordSemanticCandidates(len(cands))
	}
	for _, cand := range cands {
		ct, ok := algebra.Analyze(cand.Plan, q.canon)
		if !ok {
			continue
		}
		super := q.superTree(c, cand.Key)
		if super == nil {
			c.RecordSemanticIncompleteSkip()
			continue
		}
		var ans *xmltree.Tree
		if ct.Shape == algebra.ShapeConstruct {
			ans, ok = constructAnswer(ct, super)
		} else {
			ans, ok = bindingsAnswer(ct, super, q.topVars)
		}
		if !ok {
			continue
		}
		entry.MergeTree(ans)
		c.RecordSemanticHit()
		return
	}
	c.RecordSemanticMiss()
}

// TrySemanticNow forces the semantic-cache attempt immediately (it
// otherwise runs inside Document) and reports whether the query's
// entry is now fully explored — i.e. every navigation will be answered
// with zero source work. The cluster's routed-open path uses it to
// serve a subsumed query locally instead of proxying to the owner.
func (q *Query) TrySemanticNow() bool {
	c := q.eng.cache
	if c == nil || q.cacheName == "" || !q.eng.opts.SemanticCache {
		return false
	}
	entry := c.EntryAt(q.eng.cacheGen, q.cacheName, q.fingerprint, q.regVer)
	if q.canon != nil {
		q.trySemantic(c, entry)
	}
	return entry.Complete()
}

// superTree obtains the fully explored answer tree of a candidate
// superset: from the local entry if complete, else from the cluster
// owner via the semantic region_get (which only returns complete
// regions). A remote region is also absorbed into the local cache, so
// later subsumed queries stay node-local. nil means not available.
func (q *Query) superTree(c *regioncache.Cache, k regioncache.Key) *xmltree.Tree {
	if e := c.Peek(k); e != nil {
		if t, ok := e.Tree(); ok {
			return t
		}
	}
	if r := c.FetchCompleteRemote(k); r != nil {
		if t := r.Tree(); t != nil {
			c.Absorb(k, r)
			return t
		}
	}
	return nil
}

// acceptsLabel is the single-step path test: the path accepts exactly
// the one-label sequence [label]. PathRewrite paths are single-step by
// construction (see algebra.PathRewrite), so a node's own label decides
// its membership.
func acceptsLabel(n *pathexpr.NFA, label string) bool {
	return n.Accepting(n.Step(n.Start(), label))
}

// semBinding is the ValueGetter residual conditions evaluate against in
// the bindings shape: canonical sub variable → materialized value.
type semBinding map[string]*xmltree.Tree

func (g semBinding) Value(name string) (*xmltree.Tree, error) {
	t, ok := g[name]
	if !ok {
		return nil, fmt.Errorf("core: semantic residual references unknown variable %q", name)
	}
	return t, nil
}

// bindingsAnswer rebuilds sub's bs[b[…]…] answer from super's: each b
// is kept iff its positional values pass the path label tests and the
// residual condition, and the kept children are relabeled to sub's
// runtime output variables. Any structural surprise returns ok=false
// and the engine falls back to the source-backed plan.
func bindingsAnswer(ct *algebra.Containment, super *xmltree.Tree, subVars []string) (*xmltree.Tree, bool) {
	if super.Label != "bs" || len(subVars) != len(ct.SubTopVars) {
		return nil, false
	}
	pos := map[string]int{}
	for i, v := range ct.SubTopVars {
		pos[v] = i
	}
	type ptest struct {
		idx int
		nfa *pathexpr.NFA
	}
	tests := make([]ptest, 0, len(ct.Paths))
	for _, pr := range ct.Paths {
		i, ok := pos[pr.Var]
		if !ok {
			return nil, false
		}
		tests = append(tests, ptest{idx: i, nfa: pathexpr.Compile(pr.Sub)})
	}
	out := &xmltree.Tree{Label: "bs"}
	for _, b := range super.Children {
		if b.Label != "b" || len(b.Children) != len(ct.SubTopVars) {
			return nil, false
		}
		vals := make([]*xmltree.Tree, len(b.Children))
		getter := semBinding{}
		for i, ch := range b.Children {
			if len(ch.Children) != 1 {
				return nil, false
			}
			vals[i] = ch.Children[0]
			getter[ct.SubTopVars[i]] = vals[i]
		}
		keep := true
		for _, tst := range tests {
			if !acceptsLabel(tst.nfa, vals[tst.idx].Label) {
				keep = false
				break
			}
		}
		if keep && ct.Residual != nil {
			ok, err := ct.Residual.Eval(getter)
			if err != nil {
				return nil, false
			}
			keep = ok
		}
		if !keep {
			continue
		}
		nb := &xmltree.Tree{Label: "b", Children: make([]*xmltree.Tree, len(vals))}
		for i, v := range vals {
			nb.Children[i] = &xmltree.Tree{Label: subVars[i], Children: []*xmltree.Tree{v}}
		}
		out.Children = append(out.Children, nb)
	}
	return out, true
}

// chainStep is a precompiled ChainOp: the path compiled to an NFA once
// per candidate instead of once per group subtree.
type chainStep struct {
	parent, out string
	nfa         *pathexpr.NFA
	cond        algebra.Cond
}

func compileChain(ops []algebra.ChainOp) []chainStep {
	steps := make([]chainStep, len(ops))
	for i, op := range ops {
		steps[i] = chainStep{parent: op.Parent, out: op.Out, cond: op.Cond}
		if op.Path != nil {
			steps[i].nfa = pathexpr.Compile(op.Path)
		}
	}
	return steps
}

// countChain counts the derivations of a group chain over one
// materialized group subtree: the number of bindings the chain's
// getDescendants/select suffix produces from GroupChainVar ↦ root. It
// reuses the engine's own stream operators, so chain conditions and
// descents evaluate exactly as the from-source pipeline would.
func countChain(steps []chainStep, root *xmltree.Tree) (int, error) {
	var s stream = consStream{head: newBinding().with(algebra.GroupChainVar, FromTree(root)), tail: emptyStream{}}
	for _, st := range steps {
		if st.nfa != nil {
			parent, out, nfa := st.parent, st.out, st.nfa
			s = flatMapStream{in: s, fn: func(b *binding) (stream, error) {
				pv, err := b.node(parent)
				if err != nil {
					return nil, err
				}
				return nodeStream{l: matchList(nfa, nil, pv), base: b, out: out}, nil
			}}
		} else {
			cond := st.cond
			s = filterStream{in: s, pred: func(b *binding) (bool, error) {
				return cond.Eval(b)
			}}
		}
	}
	all, err := drain(s)
	if err != nil {
		return 0, err
	}
	return len(all), nil
}

// constructAnswer rebuilds sub's constructed answer element from
// super's by decoding runs: super's children are, per group context,
// m(T) consecutive copies of the context's group subtree T, where m is
// the super chain's derivation count over T (a function of T alone).
// Grouping consecutive equal children therefore yields runs of length
// contexts·m(T); sub keeps each context's subtree iff its root label
// passes the (possibly restricted) group path and emits q(T) copies,
// q being the sub chain's count. A run length that does not divide by
// m(T) — or m(T) = 0 for a subtree that is nonetheless present — means
// the region does not decode under this containment; ok=false falls
// back to the source-backed plan.
func constructAnswer(ct *algebra.Containment, super *xmltree.Tree) (*xmltree.Tree, bool) {
	// Descend the decoration stack: each level holds exactly one
	// element of the next label; the innermost children are the grouped
	// values the runs decode.
	if len(ct.RootLabels) == 0 || super.Label != ct.RootLabels[0] {
		return nil, false
	}
	inner := super
	for _, l := range ct.RootLabels[1:] {
		if len(inner.Children) != 1 || inner.Children[0].Label != l {
			return nil, false
		}
		inner = inner.Children[0]
	}
	superSteps := compileChain(ct.SuperChain)
	subSteps := compileChain(ct.SubChain)
	var groupNFA *pathexpr.NFA
	if ct.GroupPath != nil {
		groupNFA = pathexpr.Compile(ct.GroupPath.Sub)
	}
	out := &xmltree.Tree{Label: ct.RootLabels[len(ct.RootLabels)-1]}
	kids := inner.Children
	for i := 0; i < len(kids); {
		j := i + 1
		for j < len(kids) && xmltree.Equal(kids[i], kids[j]) {
			j++
		}
		T := kids[i]
		run := j - i
		m, err := countChain(superSteps, T)
		if err != nil || m < 1 || run%m != 0 {
			return nil, false
		}
		contexts := run / m
		if groupNFA == nil || acceptsLabel(groupNFA, T.Label) {
			cnt, err := countChain(subSteps, T)
			if err != nil {
				return nil, false
			}
			for n := 0; n < contexts*cnt; n++ {
				out.Children = append(out.Children, T)
			}
		}
		i = j
	}
	// Re-wrap the decorated levels, innermost out.
	for i := len(ct.RootLabels) - 2; i >= 0; i-- {
		out = &xmltree.Tree{Label: ct.RootLabels[i], Children: []*xmltree.Tree{out}}
	}
	return out, true
}
