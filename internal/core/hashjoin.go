package core

import (
	"strings"

	"mix/internal/algebra"
)

// Hash equi-join.
//
// When a Join's condition implies variable equalities (Cond.EquiKeys),
// the inner stream does not have to be scanned once per outer binding:
// inner bindings are filed into a hash index keyed on the atomic form of
// their key variables, and each outer binding probes only the bucket its
// own key hashes to. The full original condition is still evaluated on
// every probed pair — the hash key is a *necessary* condition for
// equality (structural tree equality implies equal text content, and
// atomic equality is literally the key), never a sufficient one — so
// residual conjuncts and the element-vs-leaf comparison cases keep their
// exact nested-loops semantics, and the surviving pairs come out in the
// same (outer-major, inner-order) order nested loops produces.
//
// Laziness is preserved the same way the memoized inner cache preserves
// it: the index ingests the inner stream one binding at a time, only
// when a probe exhausts the already-indexed prefix of its bucket. A
// query whose client never forces the join never builds the index; a
// client that stops after the first answer indexes only as much of the
// inner input as that answer needed.

// equiJoinKeys splits the condition's implied equalities into key-variable
// lists for the two sides of the join. Pairs that do not bridge the two
// sides (both variables from one input) are ignored — they are still
// enforced by the residual condition evaluation. ok reports whether at
// least one bridging pair exists.
func equiJoinKeys(op *algebra.Join) (lk, rk []string, ok bool) {
	pairs := op.Cond.EquiKeys()
	if len(pairs) == 0 {
		return nil, nil, false
	}
	lv, rv := varSet(op.Left.OutVars()), varSet(op.Right.OutVars())
	for _, p := range pairs {
		a, b := p[0], p[1]
		switch {
		case lv[a] && rv[b]:
			lk, rk = append(lk, a), append(rk, b)
		case lv[b] && rv[a]:
			lk, rk = append(lk, b), append(rk, a)
		}
	}
	return lk, rk, len(lk) > 0
}

func varSet(vars []string) map[string]bool {
	m := make(map[string]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return m
}

// atomKey materializes the key variables of b and combines their atomic
// forms (leaf label, or text content for elements — the same reduction
// Cmp equality applies to mixed comparisons) into one bucket key.
func atomKey(b *binding, vars []string) (string, error) {
	var sb strings.Builder
	for _, v := range vars {
		t, err := b.Value(v)
		if err != nil {
			return "", err
		}
		sb.WriteString(valueAtom(t))
		sb.WriteByte(0)
	}
	return sb.String(), nil
}

// atomKeyFP is the fingerprint bucket key: 16 bytes per key variable,
// hashing the value's *atomic form* (AtomFingerprint), never its
// structure — atom equality is what Cmp applies to mixed element/leaf
// comparisons, so the bucket key stays a necessary condition for the
// join condition. Collisions are harmless here (unlike operator keys):
// the full condition is re-evaluated on every probed pair anyway, so a
// colliding pair merely costs one wasted evaluation.
func atomKeyFP(b *binding, vars []string) (string, error) {
	raw := make([]byte, 0, len(vars)*16)
	for _, v := range vars {
		t, err := b.Value(v)
		if err != nil {
			return "", err
		}
		raw = atomFP(t).AppendKey(raw)
	}
	return string(raw), nil
}

// hashIndex is the incrementally-built index over the inner stream. It
// is shared, mutable state behind the persistent probe streams — safe
// because buckets only ever grow, in inner-stream order, so replaying a
// probe stream re-reads a (possibly longer) prefix of the same bucket.
type hashIndex struct {
	inner   stream // unconsumed remainder of the inner stream; nil when done
	keys    []string
	keyFn   func(*binding, []string) (string, error) // atomKey or atomKeyFP
	buckets map[string][]*binding
	done    bool
}

// advance ingests one more inner binding into the index, reporting
// whether there was one.
func (h *hashIndex) advance() (bool, error) {
	if h.done {
		return false, nil
	}
	b, rest, err := h.inner.next()
	if err != nil {
		return false, err
	}
	if b == nil {
		h.done, h.inner = true, nil
		return false, nil
	}
	k, err := h.keyFn(b, h.keys)
	if err != nil {
		return false, err
	}
	h.buckets[k] = append(h.buckets[k], b)
	h.inner = rest
	return true, nil
}

// hashProbeStream yields the join pairs for one outer binding: the
// bucket entries matching its key, filtered by the full condition, with
// the index advanced on demand when the indexed prefix runs out.
type hashProbeStream struct {
	idx  *hashIndex
	lb   *binding
	key  string
	pos  int // next unexamined position in the bucket
	cond algebra.Cond
}

func (p hashProbeStream) next() (*binding, stream, error) {
	pos := p.pos
	for {
		bucket := p.idx.buckets[p.key]
		for pos < len(bucket) {
			merged := merge(p.lb, bucket[pos])
			pos++
			ok, err := p.cond.Eval(merged)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				rest := hashProbeStream{idx: p.idx, lb: p.lb, key: p.key, pos: pos, cond: p.cond}
				return merged, rest, nil
			}
		}
		more, err := p.idx.advance()
		if err != nil {
			return nil, nil, err
		}
		if !more {
			return nil, nil, nil
		}
	}
}

// compileBJoin is the batch-mode join: hash equi-join over batches when
// the condition implies a bridging equality, nested loops over a shared
// inner log otherwise. JoinCache is implied by batch mode, so the inner
// input is always derived at most once.
func (c *compiler) compileBJoin(op *algebra.Join) (bbuilder, error) {
	left, err := c.compileB(op.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.compileB(op.Right)
	if err != nil {
		return nil, err
	}
	cond := op.Cond
	if c.e.opts.Parallel {
		if l, r, ok := c.e.parallelBPair(op, left, right, c.batch); ok {
			left, right = l, r
		}
	}
	if c.e.opts.HashJoin {
		if lk, rk, ok := equiJoinKeys(op); ok {
			keyFn := atomKey
			if c.e.opts.Fingerprints {
				keyFn = atomKeyFP
			}
			return func() (bcursor, error) {
				lc, err := left()
				if err != nil {
					return nil, err
				}
				idx := &bHashIndex{right: right, keys: rk, keyFn: keyFn,
					buckets: map[string][]*binding{}}
				return &bHashJoinCursor{out: lc, idx: idx, cond: cond,
					lkeys: lk, keyFn: keyFn}, nil
			}, nil
		}
	}
	return func() (bcursor, error) {
		lc, err := left()
		if err != nil {
			return nil, err
		}
		return &nlJoinBCursor{out: lc, inner: &lazyLog{in: right}, cond: cond}, nil
	}, nil
}

// nlJoinBCursor is the batch nested-loops join: each outer binding
// steps through the shared inner log (the batch form of the memoized
// inner cache), evaluating the condition per pair.
type nlJoinBCursor struct {
	out   bcursor
	inner *lazyLog
	cond  algebra.Cond
	pend  []*binding // buffered outer bindings
	pi    int
	lb    *binding // current outer binding
	ipos  int      // position in the inner log
	obuf  []*binding
	err   error
	done  bool
}

func (j *nlJoinBCursor) bnext(want int) ([]*binding, error) {
	if j.err != nil {
		return nil, j.err
	}
	j.obuf = j.obuf[:0]
	want = clampWant(want)
	for len(j.obuf) < want {
		if j.lb != nil {
			log, err := j.inner.get()
			if err != nil {
				return j.fail(err)
			}
			rb, err := log.at(j.ipos, want)
			if err != nil {
				return j.fail(err)
			}
			if rb == nil {
				j.lb, j.ipos = nil, 0
				continue
			}
			merged := merge(j.lb, rb)
			j.ipos++
			ok, err := j.cond.Eval(merged)
			if err != nil {
				return j.fail(err)
			}
			if ok {
				j.obuf = append(j.obuf, merged)
			}
			continue
		}
		if j.pi >= len(j.pend) {
			if j.done {
				break
			}
			bs, err := j.out.bnext(want)
			if len(bs) == 0 {
				if err != nil {
					return j.fail(err)
				}
				j.done = true
				break
			}
			j.pend = append(j.pend[:0], bs...)
			j.pi = 0
		}
		j.lb, j.ipos = j.pend[j.pi], 0
		j.pi++
	}
	if len(j.obuf) > 0 {
		return j.obuf, nil
	}
	return nil, nil
}

func (j *nlJoinBCursor) fail(err error) ([]*binding, error) {
	j.err = err
	if len(j.obuf) > 0 {
		return j.obuf, nil
	}
	return nil, err
}

// bHashIndex is hashIndex over batches: each advance ingests one inner
// batch — a whole bnext pull plus a keying loop per call instead of one
// binding — and the inner input is derived only on first demand.
type bHashIndex struct {
	right   bbuilder
	src     bcursor // nil until first advance, nil again when done
	keys    []string
	keyFn   func(*binding, []string) (string, error)
	buckets map[string][]*binding
	done    bool
}

// advance ingests up to want more inner bindings, reporting whether any
// were added. A keying failure keeps the already-filed prefix and
// terminates the index.
func (h *bHashIndex) advance(want int) (bool, error) {
	if h.done {
		return false, nil
	}
	if h.src == nil {
		c, err := h.right()
		if err != nil {
			h.done = true
			return false, err
		}
		h.src = c
	}
	bs, err := h.src.bnext(want)
	if len(bs) == 0 {
		h.done, h.src = true, nil
		return false, err
	}
	for _, b := range bs {
		k, kerr := h.keyFn(b, h.keys)
		if kerr != nil {
			h.done, h.src = true, nil
			return false, kerr
		}
		h.buckets[k] = append(h.buckets[k], b)
	}
	recordBatch(len(bs))
	return true, nil
}

// bHashJoinCursor probes the shared index with whole outer batches:
// the outer keys are computed in one loop per batch, then each outer
// binding scans its bucket (advancing the index in want-sized steps
// when the indexed prefix runs out).
type bHashJoinCursor struct {
	out   bcursor
	idx   *bHashIndex
	cond  algebra.Cond
	lkeys []string
	keyFn func(*binding, []string) (string, error)
	pend  []*binding // buffered outer bindings
	kpend []string   // their bucket keys
	pi    int
	lb    *binding // current outer binding
	key   string
	pos   int // next unexamined position in its bucket
	obuf  []*binding
	perr  error // keying error pending after the keyed prefix drains
	err   error
	done  bool
}

func (c *bHashJoinCursor) bnext(want int) ([]*binding, error) {
	if c.err != nil {
		return nil, c.err
	}
	c.obuf = c.obuf[:0]
	want = clampWant(want)
	for len(c.obuf) < want {
		if c.lb != nil {
			bucket := c.idx.buckets[c.key]
			if c.pos < len(bucket) {
				merged := merge(c.lb, bucket[c.pos])
				c.pos++
				ok, err := c.cond.Eval(merged)
				if err != nil {
					return c.fail(err)
				}
				if ok {
					c.obuf = append(c.obuf, merged)
				}
				continue
			}
			more, err := c.idx.advance(want)
			if err != nil {
				return c.fail(err)
			}
			if more {
				continue
			}
			c.lb = nil
			continue
		}
		if c.pi >= len(c.pend) {
			if c.perr != nil {
				return c.fail(c.perr)
			}
			if c.done {
				break
			}
			bs, err := c.out.bnext(want)
			if len(bs) == 0 {
				if err != nil {
					return c.fail(err)
				}
				c.done = true
				break
			}
			c.pend = append(c.pend[:0], bs...)
			c.kpend = c.kpend[:0]
			c.pi = 0
			for _, b := range bs {
				k, kerr := c.keyFn(b, c.lkeys)
				if kerr != nil {
					c.perr = kerr
					break
				}
				c.kpend = append(c.kpend, k)
			}
			c.pend = c.pend[:len(c.kpend)]
			continue
		}
		c.lb, c.key, c.pos = c.pend[c.pi], c.kpend[c.pi], 0
		c.pi++
	}
	if len(c.obuf) > 0 {
		return c.obuf, nil
	}
	return nil, nil
}

func (c *bHashJoinCursor) fail(err error) ([]*binding, error) {
	c.err = err
	if len(c.obuf) > 0 {
		return c.obuf, nil
	}
	return nil, err
}

// compileHashJoin builds the hash equi-join stream: outer bindings flow
// through unchanged, each expanding into a probe of the shared index.
// The index itself plays the role of the memoized inner cache, so the
// inner input is derived at most once per join stream.
func (c *compiler) compileHashJoin(cond algebra.Cond, leftKeys, rightKeys []string, left, right builder) builder {
	keyFn := atomKey
	if c.e.opts.Fingerprints {
		keyFn = atomKeyFP
	}
	return func() (stream, error) {
		ls, err := left()
		if err != nil {
			return nil, err
		}
		idx := &hashIndex{inner: deferStream(right), keys: rightKeys, keyFn: keyFn,
			buckets: map[string][]*binding{}}
		return flatMapStream{in: ls, fn: func(lb *binding) (stream, error) {
			k, err := keyFn(lb, leftKeys)
			if err != nil {
				return nil, err
			}
			return hashProbeStream{idx: idx, lb: lb, key: k, cond: cond}, nil
		}}, nil
	}
}
