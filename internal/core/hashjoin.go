package core

import (
	"strings"

	"mix/internal/algebra"
)

// Hash equi-join.
//
// When a Join's condition implies variable equalities (Cond.EquiKeys),
// the inner stream does not have to be scanned once per outer binding:
// inner bindings are filed into a hash index keyed on the atomic form of
// their key variables, and each outer binding probes only the bucket its
// own key hashes to. The full original condition is still evaluated on
// every probed pair — the hash key is a *necessary* condition for
// equality (structural tree equality implies equal text content, and
// atomic equality is literally the key), never a sufficient one — so
// residual conjuncts and the element-vs-leaf comparison cases keep their
// exact nested-loops semantics, and the surviving pairs come out in the
// same (outer-major, inner-order) order nested loops produces.
//
// Laziness is preserved the same way the memoized inner cache preserves
// it: the index ingests the inner stream one binding at a time, only
// when a probe exhausts the already-indexed prefix of its bucket. A
// query whose client never forces the join never builds the index; a
// client that stops after the first answer indexes only as much of the
// inner input as that answer needed.

// equiJoinKeys splits the condition's implied equalities into key-variable
// lists for the two sides of the join. Pairs that do not bridge the two
// sides (both variables from one input) are ignored — they are still
// enforced by the residual condition evaluation. ok reports whether at
// least one bridging pair exists.
func equiJoinKeys(op *algebra.Join) (lk, rk []string, ok bool) {
	pairs := op.Cond.EquiKeys()
	if len(pairs) == 0 {
		return nil, nil, false
	}
	lv, rv := varSet(op.Left.OutVars()), varSet(op.Right.OutVars())
	for _, p := range pairs {
		a, b := p[0], p[1]
		switch {
		case lv[a] && rv[b]:
			lk, rk = append(lk, a), append(rk, b)
		case lv[b] && rv[a]:
			lk, rk = append(lk, b), append(rk, a)
		}
	}
	return lk, rk, len(lk) > 0
}

func varSet(vars []string) map[string]bool {
	m := make(map[string]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return m
}

// atomKey materializes the key variables of b and combines their atomic
// forms (leaf label, or text content for elements — the same reduction
// Cmp equality applies to mixed comparisons) into one bucket key.
func atomKey(b *binding, vars []string) (string, error) {
	var sb strings.Builder
	for _, v := range vars {
		t, err := b.Value(v)
		if err != nil {
			return "", err
		}
		sb.WriteString(valueAtom(t))
		sb.WriteByte(0)
	}
	return sb.String(), nil
}

// atomKeyFP is the fingerprint bucket key: 16 bytes per key variable,
// hashing the value's *atomic form* (AtomFingerprint), never its
// structure — atom equality is what Cmp applies to mixed element/leaf
// comparisons, so the bucket key stays a necessary condition for the
// join condition. Collisions are harmless here (unlike operator keys):
// the full condition is re-evaluated on every probed pair anyway, so a
// colliding pair merely costs one wasted evaluation.
func atomKeyFP(b *binding, vars []string) (string, error) {
	raw := make([]byte, 0, len(vars)*16)
	for _, v := range vars {
		t, err := b.Value(v)
		if err != nil {
			return "", err
		}
		raw = atomFP(t).AppendKey(raw)
	}
	return string(raw), nil
}

// hashIndex is the incrementally-built index over the inner stream. It
// is shared, mutable state behind the persistent probe streams — safe
// because buckets only ever grow, in inner-stream order, so replaying a
// probe stream re-reads a (possibly longer) prefix of the same bucket.
type hashIndex struct {
	inner   stream // unconsumed remainder of the inner stream; nil when done
	keys    []string
	keyFn   func(*binding, []string) (string, error) // atomKey or atomKeyFP
	buckets map[string][]*binding
	done    bool
}

// advance ingests one more inner binding into the index, reporting
// whether there was one.
func (h *hashIndex) advance() (bool, error) {
	if h.done {
		return false, nil
	}
	b, rest, err := h.inner.next()
	if err != nil {
		return false, err
	}
	if b == nil {
		h.done, h.inner = true, nil
		return false, nil
	}
	k, err := h.keyFn(b, h.keys)
	if err != nil {
		return false, err
	}
	h.buckets[k] = append(h.buckets[k], b)
	h.inner = rest
	return true, nil
}

// hashProbeStream yields the join pairs for one outer binding: the
// bucket entries matching its key, filtered by the full condition, with
// the index advanced on demand when the indexed prefix runs out.
type hashProbeStream struct {
	idx  *hashIndex
	lb   *binding
	key  string
	pos  int // next unexamined position in the bucket
	cond algebra.Cond
}

func (p hashProbeStream) next() (*binding, stream, error) {
	pos := p.pos
	for {
		bucket := p.idx.buckets[p.key]
		for pos < len(bucket) {
			merged := merge(p.lb, bucket[pos])
			pos++
			ok, err := p.cond.Eval(merged)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				rest := hashProbeStream{idx: p.idx, lb: p.lb, key: p.key, pos: pos, cond: p.cond}
				return merged, rest, nil
			}
		}
		more, err := p.idx.advance()
		if err != nil {
			return nil, nil, err
		}
		if !more {
			return nil, nil, nil
		}
	}
}

// compileHashJoin builds the hash equi-join stream: outer bindings flow
// through unchanged, each expanding into a probe of the shared index.
// The index itself plays the role of the memoized inner cache, so the
// inner input is derived at most once per join stream.
func (c *compiler) compileHashJoin(cond algebra.Cond, leftKeys, rightKeys []string, left, right builder) builder {
	keyFn := atomKey
	if c.e.opts.Fingerprints {
		keyFn = atomKeyFP
	}
	return func() (stream, error) {
		ls, err := left()
		if err != nil {
			return nil, err
		}
		idx := &hashIndex{inner: deferStream(right), keys: rightKeys, keyFn: keyFn,
			buckets: map[string][]*binding{}}
		return flatMapStream{in: ls, fn: func(lb *binding) (stream, error) {
			k, err := keyFn(lb, leftKeys)
			if err != nil {
				return nil, err
			}
			return hashProbeStream{idx: idx, lb: lb, key: k, cond: cond}, nil
		}}, nil
	}
}
