package core

import (
	"context"
	"errors"

	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
)

// This file is the speculative drain worker of the navigation-driven
// prefetch layer (DESIGN.md §15): given a *predicted* next region of a
// query's answer document, PrefetchRegion explores just that region
// through a cache-aware document opened speculatively, so the explored
// structure lands in the shared region cache before any client asks.
// The drain runs on the same bounded worker pool as parallel join
// derivation and is triple-bounded: a navigation budget, a label-byte
// budget, and a context cancelled the instant real demand arrives —
// checked between every two navigations, so cancellation takes effect
// within at most one batch-pipeline pull.

// PrefetchBudget bounds one speculative drain. Zero fields mean
// unbounded (the context still applies).
type PrefetchBudget struct {
	// MaxNavs caps the navigations the drain issues at the speculative
	// answer boundary. Each costs at most one batch-pipeline pull of
	// source work; a warm region costs none.
	MaxNavs int64
	// MaxBytes caps the label bytes the drain fetches (an upper bound on
	// the cache bytes the drain can publish).
	MaxBytes int64
}

// PrefetchResult reports what one speculative drain did.
type PrefetchResult struct {
	// Navs is the number of navigations the drain issued at the
	// speculative answer boundary.
	Navs int64
	// Bytes is the label bytes fetched.
	Bytes int64
	// Exhausted reports that a budget ran out before the region was
	// fully explored; whatever was explored is published anyway.
	Exhausted bool
	// Cancelled reports that the context was cancelled mid-drain
	// (demand arrived, or the registry epoch moved).
	Cancelled bool
}

// RegionKey returns the full region-cache key of this query's answer
// document — the identity its cached regions, its cluster routing, and
// its prefetch successor tables all share.
func (q *Query) RegionKey() regioncache.Key {
	return regioncache.Key{
		Generation:  q.eng.cacheGen,
		Registry:    q.regVer,
		Name:        q.cacheName,
		Fingerprint: q.fingerprint,
	}
}

// errBudget distinguishes budget exhaustion from real failures inside
// the drain walk.
var errBudget = errors.New("core: prefetch budget exhausted")

// specWalk carries the per-drain state: the budget-metered document and
// the cancellation context.
type specWalk struct {
	ctx    context.Context
	doc    nav.Document
	nav    *metrics.Counters
	budget PrefetchBudget
	bytes  int64
}

// check gates every navigation: context first (demand pre-empts
// speculation instantly), then the two budgets.
func (w *specWalk) check() error {
	if err := w.ctx.Err(); err != nil {
		return err
	}
	if w.budget.MaxNavs > 0 && w.nav.Navigations() >= w.budget.MaxNavs {
		return errBudget
	}
	if w.budget.MaxBytes > 0 && w.bytes >= w.budget.MaxBytes {
		return errBudget
	}
	return nil
}

func (w *specWalk) fetch(p nav.ID) error {
	if err := w.check(); err != nil {
		return err
	}
	l, err := w.doc.Fetch(p)
	w.bytes += int64(len(l))
	return err
}

// drill explores the subtree under p: its label, then — deep — every
// descendant, or — shallow — only its immediate children's labels (the
// two levels a glancing client looks at).
func (w *specWalk) drill(p nav.ID, deep bool) error {
	if err := w.fetch(p); err != nil {
		return err
	}
	if err := w.check(); err != nil {
		return err
	}
	c, err := w.doc.Down(p)
	if err != nil {
		return err
	}
	for c != nil {
		if deep {
			if err := w.drill(c, true); err != nil {
				return err
			}
		} else if err := w.fetch(c); err != nil {
			return err
		}
		if err := w.check(); err != nil {
			return err
		}
		if c, err = w.doc.Right(c); err != nil {
			return err
		}
	}
	return nil
}

// PrefetchRegion speculatively explores the region-th top-level subtree
// of the query's answer document — deep (the whole subtree) or shallow
// (the subtree's top two levels) — publishing what it sees through the
// normal region-cache path, so the exact-match, L2, and semantic layers
// all serve it to later demand. The entry it publishes into is opened
// speculatively (regioncache.EntryAtSpeculative): separately accounted
// and evicted first under pressure until demand promotes it.
//
// The walk issues navigations into counters (the caller's dedicated
// speculative block — never a session's) and stops at the first of:
// region fully explored, budget exhausted, ctx cancelled. It runs on
// the bounded parallel worker pool; with the pool saturated it waits
// for a slot or for cancellation, whichever comes first.
//
// The query must be cache-named on an engine with a region cache;
// anything else returns an error, as does a navigation failure.
func (q *Query) PrefetchRegion(ctx context.Context, region int, deep bool, budget PrefetchBudget, counters *metrics.Counters) (PrefetchResult, error) {
	c := q.eng.cache
	if c == nil || q.cacheName == "" {
		return PrefetchResult{}, errors.New("core: prefetch needs a region-cached named query")
	}
	if region < 0 {
		return PrefetchResult{}, errors.New("core: negative prefetch region")
	}
	pool := parallelWorkers
	select {
	case pool <- struct{}{}:
		defer func() { <-pool }()
	case <-ctx.Done():
		return PrefetchResult{Cancelled: true}, nil
	}

	var inner nav.Document
	if q.answer != nil {
		inner = &VDoc{root: q.answer}
	} else {
		inner = &VDoc{root: q.bindingsNode()}
	}
	entry := c.EntryAtSpeculative(q.eng.cacheGen, q.cacheName, q.fingerprint, q.regVer)
	cdoc := regioncache.NewDoc(entry, inner)
	if rec := q.eng.tracer; rec != nil {
		cdoc.Observe = func(op string, hit bool) {
			label := "cache:miss"
			if hit {
				label = "cache:hit"
			}
			rec.End(rec.Begin(label, op))
		}
	}
	local := &metrics.Counters{}
	w := &specWalk{ctx: ctx, doc: &nav.CountingDoc{Doc: cdoc, Counters: local}, nav: local, budget: budget}

	err := func() error {
		root, err := w.doc.Root()
		if err != nil {
			return err
		}
		if err := w.check(); err != nil {
			return err
		}
		cur, err := w.doc.Down(root)
		if err != nil {
			return err
		}
		for i := 0; i < region && cur != nil; i++ {
			if err := w.check(); err != nil {
				return err
			}
			if cur, err = w.doc.Right(cur); err != nil {
				return err
			}
		}
		if cur == nil {
			// The answer has no region-th child. Not a failure: the walk
			// just published the (short) complete top-level child list,
			// which is itself useful structure.
			return nil
		}
		return w.drill(cur, deep)
	}()

	res := PrefetchResult{Navs: local.Navigations(), Bytes: w.bytes}
	if counters != nil {
		counters.Add(local.Snapshot())
	}
	switch {
	case err == nil:
	case errors.Is(err, errBudget):
		res.Exhausted = true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		res.Cancelled = true
	default:
		return res, err
	}
	return res, nil
}
