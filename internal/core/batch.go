package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/trace"
)

// Batch-at-a-time execution.
//
// The scalar pipeline moves one binding per next() call; every binding
// pays a virtual call per operator it crosses. Once round trips are
// batched and allocations tamed, that per-binding interpretation is
// what dominates warm drains (E10/E13). The batch pipeline moves slices
// of up to Options.BatchSize bindings per call instead: selection,
// projection, distinct, groupBy ingest, hash-join build/probe, and
// fingerprint keying all loop over a whole batch inside one call.
//
// The paper's lazy contract — explore only what the client demands —
// lives at the answer-document boundary, not inside the pipeline, so
// vectorization must not change a single source navigation there. The
// reconciliation is the want parameter: a cursor never computes more
// than want bindings per call, operators propagate the want they
// receive downstream, and the batch-to-scalar adapter (logStream) pulls
// with want=1. Under client demand the batch pipeline therefore
// executes the exact scalar schedule — same pulls, same condition
// evaluations, same source commands, byte for byte. Full batches flow
// only where the whole output is needed anyway: Materialize predrains
// the top log batch-wise, and the blocking operators (orderBy, the
// difference right input, parallel join derivation) drain their inputs
// in batch-sized pulls. Those drains reorder work but never change the
// set of computations, so answers and navigation totals stay identical.
//
// Cursors are linear (consume-once), unlike the persistent scalar
// streams: replayability is reintroduced only where a consumer actually
// needs it, by logging batches into an append-only batchLog (the top
// adapter, the nested-loops inner input, the groupBy input). Everything
// else runs log-free.

// bcursor is the batch-at-a-time operator output: bnext returns between
// 1 and max(want,1) bindings, or (nil, nil) at end of input, or
// (nil, err) on failure. The returned slice is scratch owned by the
// cursor — valid only until the next bnext call (the bindings it points
// to are immutable and safe to retain). A cursor that computed a prefix
// of a batch before failing returns the prefix first and the error on
// the following call; errors and exhaustion are sticky.
type bcursor interface {
	bnext(want int) ([]*binding, error)
}

// bbuilder creates an operator's output cursor. In batch mode every
// operator has exactly one consumer (multi-reader points go through a
// batchLog or the hash index instead of rebuilding), so unlike the
// scalar builder it is invoked at most once per compiled query.
type bbuilder func() (bcursor, error)

func clampWant(want int) int {
	if want < 1 {
		return 1
	}
	return want
}

// drainB pulls the cursor to exhaustion in want-sized batches.
func drainB(c bcursor, want int) ([]*binding, error) {
	var out []*binding
	for {
		bs, err := c.bnext(want)
		if err != nil {
			return nil, err
		}
		if len(bs) == 0 {
			return out, nil
		}
		out = append(out, bs...)
	}
}

// Package-wide batch-pipeline counters, exposed on the daemon's
// /metrics as mix_batch_*.
var (
	batchBatches  atomic.Int64 // batches logged at materialization points
	batchBindings atomic.Int64 // bindings those batches carried
	batchPredrain atomic.Int64 // Materialize predrains of a top-level log
)

func recordBatch(n int) {
	batchBatches.Add(1)
	batchBindings.Add(int64(n))
}

// BatchStats is a snapshot of the batch-pipeline counters.
type BatchStats struct {
	Batches   int64 // batches logged at materialization points
	Bindings  int64 // bindings carried by those batches
	Predrains int64 // whole-query batch predrains (Materialize)
}

// BatchSnapshot returns the current batch-pipeline counters.
func BatchSnapshot() BatchStats {
	return BatchStats{
		Batches:   batchBatches.Load(),
		Bindings:  batchBindings.Load(),
		Predrains: batchPredrain.Load(),
	}
}

// batchLog replays a linear cursor: batches are appended to an
// append-only buffer as consumers demand positions, so any number of
// readers (scalar adapters, group member scans, join re-probes) share
// one pass over the input. The terminal error, if any, is memoized at
// its position — a replay sees the same prefix and the same error.
type batchLog struct {
	src  bcursor // nil once exhausted or failed
	buf  []*binding
	err  error
	done bool
}

// at returns the binding at position i, growing the log with want-sized
// pulls as needed; nil at end of input (or the memoized error).
func (l *batchLog) at(i, want int) (*binding, error) {
	for !l.done && i >= len(l.buf) {
		bs, err := l.src.bnext(want)
		if err != nil {
			l.err, l.done, l.src = err, true, nil
			break
		}
		if len(bs) == 0 {
			l.done, l.src = true, nil
			break
		}
		l.buf = append(l.buf, bs...)
		recordBatch(len(bs))
	}
	if i < len(l.buf) {
		return l.buf[i], nil
	}
	return nil, l.err
}

// lazyLog defers input derivation until a reader first demands a
// position — the batch counterpart of deferStream+memoizeStream.
type lazyLog struct {
	in  bbuilder
	log *batchLog
	err error
}

func (l *lazyLog) get() (*batchLog, error) {
	if l.log == nil && l.err == nil {
		c, err := l.in()
		if err != nil {
			l.err = err
		} else {
			l.log = &batchLog{src: c}
		}
		l.in = nil
	}
	return l.log, l.err
}

// logStream is the batch-to-scalar adapter: a persistent scalar stream
// replaying a batchLog, growing it one binding at a time. This is where
// the demand-driven navigation contract is enforced — a client pull
// costs exactly one want=1 batch pull, the scalar schedule.
type logStream struct {
	log *batchLog
	pos int
}

func (s logStream) next() (*binding, stream, error) {
	b, err := s.log.at(s.pos, 1)
	if err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, nil
	}
	return b, logStream{log: s.log, pos: s.pos + 1}, nil
}

// topBatch owns a query's top-level batch pipeline: the compiled
// bbuilder, the shared log every Document replays, and the predrain
// entry point Materialize uses to force the whole binding list through
// the pipeline in full batches.
type topBatch struct {
	bb    bbuilder
	batch int
	log   *batchLog
	err   error
}

func (t *topBatch) force() error {
	if t.log == nil && t.err == nil {
		cur, err := t.bb()
		if err != nil {
			t.err = err
		} else {
			t.log = &batchLog{src: cur}
		}
		t.bb = nil
	}
	return t.err
}

// builder adapts the batch pipeline to the scalar stream interface all
// answer-document machinery consumes.
func (t *topBatch) builder() builder {
	return func() (stream, error) {
		if err := t.force(); err != nil {
			return nil, err
		}
		return logStream{log: t.log}, nil
	}
}

// predrain forces the whole top-level binding list in batch-sized
// pulls. Pull errors are left memoized in the log — the subsequent
// document walk surfaces them at the same position the scalar pipeline
// would.
func (t *topBatch) predrain() {
	if t.force() != nil || t.log.done {
		return
	}
	batchPredrain.Add(1)
	for !t.log.done {
		if _, err := t.log.at(len(t.log.buf), t.batch); err != nil {
			return
		}
	}
}

// tracedBCursor wraps an operator's cursor so every batch pull opens a
// span, like tracedStream for the scalar pipeline; the op records how
// many bindings the batch carried ("next[17]").
type tracedBCursor struct {
	in    bcursor
	label string
	rec   *trace.Recorder
}

func (t *tracedBCursor) bnext(want int) ([]*binding, error) {
	sp := t.rec.Begin(t.label, "next")
	bs, err := t.in.bnext(want)
	if sp != nil {
		sp.Op = "next[" + strconv.Itoa(len(bs)) + "]"
	}
	t.rec.End(sp)
	return bs, err
}

// sliceBCursor serves a fixed slice in want-sized windows (sources,
// drained parallel inputs, sorted orderBy output).
type sliceBCursor struct {
	buf []*binding
	pos int
}

func (s *sliceBCursor) bnext(want int) ([]*binding, error) {
	if s.pos >= len(s.buf) {
		return nil, nil
	}
	end := s.pos + clampWant(want)
	if end > len(s.buf) {
		end = len(s.buf)
	}
	out := s.buf[s.pos:end]
	s.pos = end
	return out, nil
}

// mapBCursor applies a per-binding kernel to whole batches.
type mapBCursor struct {
	in  bcursor
	fn  func(*binding) (*binding, error)
	out []*binding
	err error
}

func (m *mapBCursor) bnext(want int) ([]*binding, error) {
	if m.err != nil {
		return nil, m.err
	}
	bs, err := m.in.bnext(want)
	if len(bs) == 0 {
		m.err = err
		return nil, err
	}
	m.out = m.out[:0]
	for _, b := range bs {
		nb, err := m.fn(b)
		if err != nil {
			m.err = err
			if len(m.out) == 0 {
				return nil, err
			}
			return m.out, nil
		}
		m.out = append(m.out, nb)
	}
	return m.out, nil
}

// filterBCursor keeps the bindings satisfying pred. A batch that
// filters down to nothing triggers another input pull — an empty batch
// is never surfaced as end of input.
type filterBCursor struct {
	in   bcursor
	pred func(*binding) (bool, error)
	out  []*binding
	err  error
}

func (f *filterBCursor) bnext(want int) ([]*binding, error) {
	if f.err != nil {
		return nil, f.err
	}
	f.out = f.out[:0]
	for {
		bs, err := f.in.bnext(want)
		if len(bs) == 0 {
			f.err = err
			if len(f.out) > 0 {
				return f.out, nil
			}
			return nil, err
		}
		for _, b := range bs {
			ok, perr := f.pred(b)
			if perr != nil {
				f.err = perr
				if len(f.out) > 0 {
					return f.out, nil
				}
				return nil, perr
			}
			if ok {
				f.out = append(f.out, b)
			}
		}
		if len(f.out) > 0 {
			return f.out, nil
		}
	}
}

// expandBCursor is the batch flatMap: each input binding expands into a
// lazy node list (getDescendants matches, fused σ-scan matches), bound
// to out. Lists are stepped one node at a time so a partially-filled
// batch never explores beyond what it returns.
type expandBCursor struct {
	in   bcursor
	mk   func(*binding) (list, error)
	out  string
	pend []*binding // buffered input bindings awaiting expansion
	pi   int
	base *binding // binding currently being expanded
	cur  list     // its remaining match list
	obuf []*binding
	err  error
	done bool
}

func (e *expandBCursor) bnext(want int) ([]*binding, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.obuf = e.obuf[:0]
	want = clampWant(want)
	for len(e.obuf) < want {
		if e.cur != nil {
			h, rest, err := e.cur.next()
			if err != nil {
				return e.fail(err)
			}
			if h == nil {
				e.cur, e.base = nil, nil
				continue
			}
			e.obuf = append(e.obuf, e.base.with(e.out, h))
			e.cur = rest
			continue
		}
		if e.pi >= len(e.pend) {
			if e.done {
				break
			}
			bs, err := e.in.bnext(want)
			if len(bs) == 0 {
				if err != nil {
					return e.fail(err)
				}
				e.done = true
				break
			}
			e.pend = append(e.pend[:0], bs...)
			e.pi = 0
		}
		b := e.pend[e.pi]
		e.pi++
		l, err := e.mk(b)
		if err != nil {
			return e.fail(err)
		}
		e.base, e.cur = b, l
	}
	if len(e.obuf) > 0 {
		return e.obuf, nil
	}
	return nil, nil
}

func (e *expandBCursor) fail(err error) ([]*binding, error) {
	e.err = err
	if len(e.obuf) > 0 {
		return e.obuf, nil
	}
	return nil, err
}

// chainBCursor concatenates operator outputs (union); each successor is
// built only after its predecessor is exhausted, like the scalar
// deferStream right side.
type chainBCursor struct {
	cur  bcursor
	rest []bbuilder
	err  error
}

func (c *chainBCursor) bnext(want int) ([]*binding, error) {
	if c.err != nil {
		return nil, c.err
	}
	for {
		if c.cur == nil {
			if len(c.rest) == 0 {
				return nil, nil
			}
			bc, err := c.rest[0]()
			if err != nil {
				c.err = err
				return nil, err
			}
			c.cur, c.rest = bc, c.rest[1:]
		}
		bs, err := c.cur.bnext(want)
		if err != nil {
			c.err = err
			return nil, err
		}
		if len(bs) > 0 {
			return bs, nil
		}
		c.cur = nil
	}
}

// distinctBCursor keeps first occurrences, keying whole batches at a
// time (batchKeys joins the variable list once per batch, not once per
// binding).
type distinctBCursor struct {
	in   bcursor
	ks   *keyspace
	vars []string
	ck   string
	seen map[string]bool
	out  []*binding
	kbuf []string
	err  error
}

func (d *distinctBCursor) bnext(want int) ([]*binding, error) {
	if d.err != nil {
		return nil, d.err
	}
	d.out = d.out[:0]
	for {
		bs, err := d.in.bnext(want)
		if len(bs) == 0 {
			d.err = err
			if len(d.out) > 0 {
				return d.out, nil
			}
			return nil, err
		}
		keys, n, kerr := batchKeys(bs, d.ks, d.vars, d.ck, d.kbuf)
		d.kbuf = keys
		for i := 0; i < n; i++ {
			if !d.seen[keys[i]] {
				d.seen[keys[i]] = true
				d.out = append(d.out, bs[i])
			}
		}
		if kerr != nil {
			d.err = kerr
			if len(d.out) > 0 {
				return d.out, nil
			}
			return nil, kerr
		}
		if len(d.out) > 0 {
			return d.out, nil
		}
	}
}

// diffBCursor emits the left bindings whose key tuple the right input
// never produced. The right side is drained in full batches — but only
// once the first left binding exists, and never if the left input is
// empty, exactly the scalar laziness.
type diffBCursor struct {
	in    bcursor
	right bbuilder
	ks    *keyspace
	vars  []string
	ck    string
	batch int
	seen  map[string]bool
	out   []*binding
	kbuf  []string
	err   error
}

func (d *diffBCursor) bnext(want int) ([]*binding, error) {
	if d.err != nil {
		return nil, d.err
	}
	d.out = d.out[:0]
	for {
		bs, err := d.in.bnext(want)
		if len(bs) == 0 {
			d.err = err
			if len(d.out) > 0 {
				return d.out, nil
			}
			return nil, err
		}
		if d.seen == nil {
			rc, rerr := d.right()
			if rerr == nil {
				var all []*binding
				if all, rerr = drainB(rc, d.batch); rerr == nil {
					d.seen, rerr = keySeen(all, d.ks, d.vars)
				}
			}
			if rerr != nil {
				d.err = rerr
				return nil, rerr
			}
		}
		keys, n, kerr := batchKeys(bs, d.ks, d.vars, d.ck, d.kbuf)
		d.kbuf = keys
		for i := 0; i < n; i++ {
			if !d.seen[keys[i]] {
				d.out = append(d.out, bs[i])
			}
		}
		if kerr != nil {
			d.err = kerr
			if len(d.out) > 0 {
				return d.out, nil
			}
			return nil, kerr
		}
		if len(d.out) > 0 {
			return d.out, nil
		}
	}
}

// sortBCursor drains and sorts its input on first demand (orderBy is
// blocking by definition), then serves the sorted slice in windows.
type sortBCursor struct {
	in    bcursor
	keys  []string
	batch int
	out   *sliceBCursor
	err   error
}

func (s *sortBCursor) bnext(want int) ([]*binding, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.out == nil {
		all, err := drainB(s.in, s.batch)
		var sorted []*binding
		if err == nil {
			sorted, err = sortBindings(all, s.keys)
		}
		if err != nil {
			s.err = err
			return nil, err
		}
		s.out, s.in = &sliceBCursor{buf: sorted}, nil
	}
	return s.out.bnext(want)
}

// The batch compiler mirrors compileOp one-to-one; per-binding
// operators share their kernels with the scalar pipeline (compile.go).

func (c *compiler) compileB(p algebra.Op) (bbuilder, error) {
	bb, err := c.compileBOp(p)
	if err != nil || c.e.tracer == nil {
		return bb, err
	}
	label, rec := opLabel(p), c.e.tracer
	return func() (bcursor, error) {
		cur, err := bb()
		if err != nil {
			return nil, err
		}
		return &tracedBCursor{in: cur, label: label, rec: rec}, nil
	}, nil
}

func (c *compiler) compileBOp(p algebra.Op) (bbuilder, error) {
	switch op := p.(type) {
	case *algebra.Source:
		return c.compileBSource(op)
	case *algebra.GetDescendants:
		return c.compileBGetDescendants(op)
	case *algebra.Select:
		return c.compileBSelect(op)
	case *algebra.Join:
		return c.compileBJoin(op)
	case *algebra.GroupBy:
		return c.compileBGroupBy(op)
	case *algebra.Concatenate:
		return c.compileBPerBinding(op.Input, concatKernel(op))
	case *algebra.CreateElement:
		return c.compileBPerBinding(op.Input, createElementKernel(op))
	case *algebra.OrderBy:
		return c.compileBOrderBy(op)
	case *algebra.Project:
		return c.compileBPerBinding(op.Input, projectKernel(op))
	case *algebra.Union:
		return c.compileBChain(op.Left, op.Right)
	case *algebra.Difference:
		return c.compileBDifference(op)
	case *algebra.Distinct:
		return c.compileBDistinct(op)
	case *algebra.WrapList:
		return c.compileBPerBinding(op.Input, wrapListKernel(op))
	case *algebra.Const:
		return c.compileBPerBinding(op.Input, constKernel(op))
	case *algebra.Rename:
		return c.compileBPerBinding(op.Input, renameKernel(op))
	case *algebra.TupleDestroy:
		return nil, fmt.Errorf("core: tupleDestroy must be the plan root")
	default:
		return nil, fmt.Errorf("core: unsupported operator %T", p)
	}
}

func (c *compiler) compileBPerBinding(input algebra.Op, fn func(*binding) (*binding, error)) (bbuilder, error) {
	in, err := c.compileB(input)
	if err != nil {
		return nil, err
	}
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &mapBCursor{in: cur, fn: fn}, nil
	}, nil
}

func (c *compiler) compileBSource(op *algebra.Source) (bbuilder, error) {
	doc, ok := c.e.lookup(op.URL)
	if !ok {
		return nil, fmt.Errorf("core: unregistered source %q", op.URL)
	}
	if c.e.tracer != nil {
		doc = trace.NewDoc(doc, trace.SourcePrefix+op.URL, c.e.tracer)
	}
	varName := op.Var
	return func() (bcursor, error) {
		b := newBinding().with(varName, SourceRoot(doc))
		return &sliceBCursor{buf: []*binding{b}}, nil
	}, nil
}

func (c *compiler) compileBGetDescendants(op *algebra.GetDescendants) (bbuilder, error) {
	in, err := c.compileB(op.Input)
	if err != nil {
		return nil, err
	}
	nfa := pathexpr.Compile(op.Path)
	var dfa *pathexpr.DFA
	if c.e.opts.Fingerprints {
		dfa = pathexpr.NewDFA(nfa, c.e.intern)
	}
	parent, out := op.Parent, op.Out
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &expandBCursor{in: cur, out: out, mk: func(b *binding) (list, error) {
			pv, err := b.node(parent)
			if err != nil {
				return nil, err
			}
			return matchList(nfa, dfa, pv), nil
		}}, nil
	}, nil
}

func (c *compiler) compileBSelect(op *algebra.Select) (bbuilder, error) {
	if c.e.opts.NativeSelect {
		if lm, ok := op.Cond.(*algebra.LabelMatch); ok {
			if gd, ok := op.Input.(*algebra.GetDescendants); ok &&
				gd.Out == lm.Var && gd.Path.String() == "_" {
				return c.compileBFusedLabelScan(gd, lm.Label)
			}
		}
	}
	in, err := c.compileB(op.Input)
	if err != nil {
		return nil, err
	}
	cond := op.Cond
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &filterBCursor{in: cur, pred: func(b *binding) (bool, error) {
			return cond.Eval(b)
		}}, nil
	}, nil
}

func (c *compiler) compileBFusedLabelScan(gd *algebra.GetDescendants, label string) (bbuilder, error) {
	in, err := c.compileB(gd.Input)
	if err != nil {
		return nil, err
	}
	parent, out := gd.Parent, gd.Out
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &expandBCursor{in: cur, out: out, mk: func(b *binding) (list, error) {
			pv, err := b.node(parent)
			if err != nil {
				return nil, err
			}
			return fusedScanList(pv, label), nil
		}}, nil
	}, nil
}

func (c *compiler) compileBOrderBy(op *algebra.OrderBy) (bbuilder, error) {
	in, err := c.compileB(op.Input)
	if err != nil {
		return nil, err
	}
	keys, batch := op.Keys, c.batch
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &sortBCursor{in: cur, keys: keys, batch: batch}, nil
	}, nil
}

func (c *compiler) compileBChain(l, r algebra.Op) (bbuilder, error) {
	lb, err := c.compileB(l)
	if err != nil {
		return nil, err
	}
	rb, err := c.compileB(r)
	if err != nil {
		return nil, err
	}
	return func() (bcursor, error) {
		lc, err := lb()
		if err != nil {
			return nil, err
		}
		return &chainBCursor{cur: lc, rest: []bbuilder{rb}}, nil
	}, nil
}

func (c *compiler) compileBDifference(op *algebra.Difference) (bbuilder, error) {
	lb, err := c.compileB(op.Left)
	if err != nil {
		return nil, err
	}
	rb, err := c.compileB(op.Right)
	if err != nil {
		return nil, err
	}
	vars := op.Left.OutVars()
	ks, batch := c.ks, c.batch
	return func() (bcursor, error) {
		lc, err := lb()
		if err != nil {
			return nil, err
		}
		return &diffBCursor{in: lc, right: rb, ks: ks, vars: vars,
			ck: strings.Join(vars, "\x01"), batch: batch}, nil
	}, nil
}

func (c *compiler) compileBDistinct(op *algebra.Distinct) (bbuilder, error) {
	in, err := c.compileB(op.Input)
	if err != nil {
		return nil, err
	}
	vars := op.Input.OutVars()
	ks := c.ks
	return func() (bcursor, error) {
		cur, err := in()
		if err != nil {
			return nil, err
		}
		return &distinctBCursor{in: cur, ks: ks, vars: vars,
			ck: strings.Join(vars, "\x01"), seen: map[string]bool{}}, nil
	}, nil
}

// matchList builds the lazy descendant-match list for one parent value
// (shared with the scalar compileGetDescendants).
func matchList(nfa *pathexpr.NFA, dfa *pathexpr.DFA, pv Node) list {
	if dfa != nil {
		return dfaMatchList{dfa: dfa, siblings: childrenOf(pv), state: dfa.Start()}
	}
	return pathMatchList{nfa: nfa, siblings: childrenOf(pv), state: nfa.Start()}
}

// fusedScanList builds the fused σ_label child scan for one parent
// value (shared with the scalar compileFusedLabelScan): native
// select(σ) jumps when the parent is source-backed, a plain filtered
// scan otherwise.
func fusedScanList(pv Node, label string) list {
	sb, ok := asSourceBacked(pv)
	if !ok {
		return labelFilterList{l: childrenOf(pv), label: label}
	}
	doc, id := sb.source()
	// Probe the select capability once per scan (it is invariant over
	// the document), not once per hop.
	sel, _ := nav.SelectorOf(doc)
	return selectScanList{doc: doc, sel: sel, parent: id, label: label, started: false}
}

// sortBindings materializes the order keys of all bindings and sorts
// stably (shared by scalar compileOrderBy and sortBCursor).
func sortBindings(all []*binding, keys []string) ([]*binding, error) {
	type keyed struct {
		b *binding
		k []string
	}
	rows := make([]keyed, len(all))
	for i, b := range all {
		ks := make([]string, len(keys))
		for j, kv := range keys {
			t, err := b.Value(kv)
			if err != nil {
				return nil, err
			}
			ks[j] = valueAtom(t)
		}
		rows[i] = keyed{b: b, k: ks}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for x := range keys {
			if c := algebra.Compare(rows[i].k[x], rows[j].k[x]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([]*binding, len(rows))
	for i, r := range rows {
		out[i] = r.b
	}
	return out, nil
}

// keySeen builds the membership set of the operator keys of all
// bindings (the difference right side; shared with compileDifference).
func keySeen(all []*binding, ks *keyspace, vars []string) (map[string]bool, error) {
	ck := strings.Join(vars, "\x01")
	seen := make(map[string]bool, len(all))
	for _, b := range all {
		k, err := b.keyCached(ck, ks, vars)
		if err != nil {
			return nil, err
		}
		seen[k] = true
	}
	return seen, nil
}
