package core

import (
	"strings"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// engineWith registers materialized tree sources behind counting
// wrappers and returns the engine plus the per-source counters.
func engineWith(opts Options, srcs map[string]*xmltree.Tree) (*Engine, map[string]*nav.CountingDoc) {
	e := New(WithOptions(opts))
	counters := map[string]*nav.CountingDoc{}
	for name, t := range srcs {
		cd := nav.NewCountingDoc(nav.NewTreeDoc(t))
		counters[name] = cd
		e.Register(name, cd)
	}
	return e, counters
}

func mustCompile(t *testing.T, e *Engine, p algebra.Op) *Query {
	t.Helper()
	q, err := e.Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v\nplan:\n%s", err, algebra.String(p))
	}
	return q
}

func mustMaterialize(t *testing.T, q *Query) *xmltree.Tree {
	t.Helper()
	tree, err := q.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return tree
}

func TestSourceSingletonBinding(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Leaf("a"), xmltree.Leaf("b"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	q := mustCompile(t, e, &algebra.Source{URL: "s", Var: "X"})
	got := mustMaterialize(t, q)
	want := xmltree.Elem("bs", xmltree.Elem("b", xmltree.Elem("X", src)))
	if !xmltree.Equal(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	e := New()
	if _, err := e.Compile(&algebra.Source{URL: "missing", Var: "X"}); err == nil {
		t.Fatal("unregistered source must fail at compile time")
	}
	if _, err := e.Compile(&algebra.Source{URL: "", Var: ""}); err == nil {
		t.Fatal("invalid plan must fail validation")
	}
	e.Register("s", nav.NewTreeDoc(xmltree.Elem("r")))
	if _, err := e.Compile(&algebra.Select{
		Input: &algebra.Source{URL: "s", Var: "X"},
		Cond:  algebra.Eq(algebra.V("nope"), algebra.Lit("1")),
	}); err == nil {
		t.Fatal("condition over unknown variable must fail validation")
	}
}

func TestGetDescendantsPaperExample(t *testing.T) {
	// The getDescendants example of Section 3: extract zip values.
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("addr", "La Jolla"), xmltree.Text("zip", "91220")),
		xmltree.Elem("home", xmltree.Text("addr", "El Cajon"), xmltree.Text("zip", "91223")),
	)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"homesSrc": homes})
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("home"), Out: "H",
	}
	zips := &algebra.GetDescendants{Input: gd, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "V1"}
	q := mustCompile(t, e, &algebra.Project{Input: zips, Keep: []string{"V1"}})
	got := mustMaterialize(t, q)
	want := xmltree.Elem("bs",
		xmltree.Elem("b", xmltree.Elem("V1", xmltree.Leaf("91220"))),
		xmltree.Elem("b", xmltree.Elem("V1", xmltree.Leaf("91223"))),
	)
	if !xmltree.Equal(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestGetDescendantsRecursive(t *testing.T) {
	deep := workload.DeepTree(3, 1)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"d": deep})
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "d", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("a*.x"), Out: "X",
	}
	q := mustCompile(t, e, &algebra.Project{Input: gd, Keep: []string{"X"}})
	got := mustMaterialize(t, q)
	// DeepTree(3,1) has one x per a-level: 3 matches.
	if n := len(got.Children); n != 3 {
		t.Fatalf("recursive matches = %d, want 3\n%v", n, got)
	}
}

func TestGetDescendantsAlternationAndWildcard(t *testing.T) {
	src := xmltree.Elem("r",
		xmltree.Text("a", "1"), xmltree.Text("b", "2"), xmltree.Text("c", "3"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("(a|c)._"), Out: "X",
	}
	q := mustCompile(t, e, &algebra.Project{Input: gd, Keep: []string{"X"}})
	got := mustMaterialize(t, q)
	if len(got.Children) != 2 {
		t.Fatalf("want 2 matches, got %v", got)
	}
	if got.Children[0].FirstChild().FirstChild().Label != "1" ||
		got.Children[1].FirstChild().FirstChild().Label != "3" {
		t.Fatalf("wrong matches or order: %v", got)
	}
}

func TestFig4EndToEnd(t *testing.T) {
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("addr", "La Jolla"), xmltree.Text("zip", "91220"), xmltree.Text("price", "5")),
		xmltree.Elem("home", xmltree.Text("addr", "El Cajon"), xmltree.Text("zip", "91223"), xmltree.Text("price", "3")),
		xmltree.Elem("home", xmltree.Text("addr", "Nowhere"), xmltree.Text("zip", "99999"), xmltree.Text("price", "1")),
	)
	schools := xmltree.Elem("schools",
		xmltree.Elem("school", xmltree.Text("dir", "Smith"), xmltree.Text("zip", "91220")),
		xmltree.Elem("school", xmltree.Text("dir", "Bar"), xmltree.Text("zip", "91220")),
		xmltree.Elem("school", xmltree.Text("dir", "Hart"), xmltree.Text("zip", "91223")),
	)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())
	got := mustMaterialize(t, q)

	if got.Label != "answer" {
		t.Fatalf("root label %q", got.Label)
	}
	mhs := got.FindAll("med_home")
	if len(mhs) != 2 {
		t.Fatalf("want 2 med_home (Nowhere has no school), got %d:\n%s",
			len(mhs), xmltree.MarshalIndent(got))
	}
	// First med_home: La Jolla home followed by its two schools.
	first := mhs[0]
	if len(first.Children) != 3 {
		t.Fatalf("first med_home children = %d, want home+2 schools:\n%v", len(first.Children), first)
	}
	if first.Children[0].Label != "home" ||
		first.Children[0].Find("addr").TextContent() != "La Jolla" {
		t.Fatalf("first med_home home wrong: %v", first.Children[0])
	}
	if first.Children[1].Find("dir").TextContent() != "Smith" ||
		first.Children[2].Find("dir").TextContent() != "Bar" {
		t.Fatalf("school order wrong: %v", first)
	}
	second := mhs[1]
	if second.Children[0].Find("addr").TextContent() != "El Cajon" ||
		len(second.Children) != 2 ||
		second.Children[1].Find("dir").TextContent() != "Hart" {
		t.Fatalf("second med_home wrong: %v", second)
	}
}

func TestRootHandleTouchesNoSource(t *testing.T) {
	homes, schools := workload.HomesSchools(50, 50, 5, 1)
	e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())
	doc := q.Document()
	root, err := doc.Root()
	if err != nil {
		t.Fatal(err)
	}
	label, err := doc.Fetch(root)
	if err != nil {
		t.Fatal(err)
	}
	if label != "answer" {
		t.Fatalf("root label %q", label)
	}
	for name, c := range counters {
		if n := c.Counters.Navigations(); n != 0 {
			t.Errorf("source %s navigated %d times before any client descent", name, n)
		}
	}
}

func TestPartialExplorationTouchesPartOfSources(t *testing.T) {
	homes, schools := workload.HomesSchools(200, 200, 40, 2)
	e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())

	// Explore only the first med_home.
	if _, err := nav.ExploreFirst(q.Document(), 1); err != nil {
		t.Fatal(err)
	}
	partial := counters["homesSrc"].Counters.Navigations()

	// Full exploration costs strictly more.
	for _, c := range counters {
		c.Counters.Reset()
	}
	q2 := mustCompile(t, e, workload.HomesSchoolsPlan())
	if _, err := nav.Materialize(q2.Document()); err != nil {
		t.Fatal(err)
	}
	full := counters["homesSrc"].Counters.Navigations()
	if partial >= full {
		t.Fatalf("partial exploration (%d navs) should cost less than full (%d)", partial, full)
	}
	if partial == 0 {
		t.Fatal("exploring one result should touch the source")
	}
}

func TestConcatenateVariants(t *testing.T) {
	// Concatenate all four type combinations of Section 3.
	mk := func(x, y *xmltree.Tree) *xmltree.Tree {
		src := xmltree.Elem("r", x, y)
		e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
		gdx := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
			Parent: "R", Path: pathexpr.MustParse("x"), Out: "X"}
		gdy := &algebra.GetDescendants{Input: gdx, Parent: "R",
			Path: pathexpr.MustParse("y"), Out: "Y"}
		conc := &algebra.Concatenate{Input: gdy, X: "X", Y: "Y", Out: "Z"}
		q := mustCompile(t, e, &algebra.Project{Input: conc, Keep: []string{"Z"}})
		res := mustMaterialize(t, q)
		return res.Children[0].Children[0].FirstChild() // bs>b>Z>list
	}

	// val + val → list[x, y]
	got := mk(xmltree.Text("x", "1"), xmltree.Text("y", "2"))
	if got.Label != "list" || len(got.Children) != 2 ||
		got.Children[0].Label != "x" || got.Children[1].Label != "y" {
		t.Fatalf("val+val: %v", got)
	}

	// list + val → flattened
	got = mk(xmltree.Elem("x", xmltree.Elem("list", xmltree.Leaf("a"), xmltree.Leaf("b"))), xmltree.Text("y", "2"))
	// note: X binds to the x element; its child is list[a,b]… the x
	// element itself is a value, so result is list[x[list[a,b]], y[2]].
	if len(got.Children) != 2 {
		t.Fatalf("element values are not flattened: %v", got)
	}
}

func TestConcatenateFlattensListValues(t *testing.T) {
	// groupBy produces list[…] values; concatenate must flatten them.
	src := xmltree.Elem("r",
		xmltree.Text("a", "1"), xmltree.Text("a", "2"), xmltree.Text("h", "x"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gdh := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("h"), Out: "H"}
	gda := &algebra.GetDescendants{Input: gdh, Parent: "R",
		Path: pathexpr.MustParse("a"), Out: "A"}
	grp := &algebra.GroupBy{Input: gda, By: []string{"H"}, Var: "A", Out: "AS"}
	conc := &algebra.Concatenate{Input: grp, X: "H", Y: "AS", Out: "Z"}
	q := mustCompile(t, e, &algebra.Project{Input: conc, Keep: []string{"Z"}})
	res := mustMaterialize(t, q)
	z := res.Children[0].Children[0].FirstChild()
	// Z = list[h[x], a[1], a[2]] — the AS list was flattened.
	if len(z.Children) != 3 || z.Children[0].Label != "h" ||
		z.Children[1].Label != "a" || z.Children[2].Label != "a" {
		t.Fatalf("flattening wrong: %v", z)
	}
}

func TestCreateElementDynamicLabel(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("tag", "custom"), xmltree.Text("v", "1"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gdt := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("tag._"), Out: "T"}
	gdv := &algebra.GetDescendants{Input: gdt, Parent: "R",
		Path: pathexpr.MustParse("v"), Out: "V"}
	ce := &algebra.CreateElement{Input: gdv,
		Label: algebra.LabelSpec{Var: "T"}, Children: "V", Out: "E"}
	q := mustCompile(t, e, &algebra.Project{Input: ce, Keep: []string{"E"}})
	res := mustMaterialize(t, q)
	el := res.Children[0].Children[0].FirstChild()
	if el.Label != "custom" {
		t.Fatalf("dynamic label = %q, want custom", el.Label)
	}
	if len(el.Children) != 1 || el.Children[0].Label != "1" {
		t.Fatalf("children of created element wrong: %v", el)
	}
}

func TestGroupByPaperExample8(t *testing.T) {
	// Example 8's input/output, reconstructed through sources.
	homes := []string{"home1", "home1", "home2", "home1", "home3"}
	schools := []string{"school1", "school2", "school3", "school4", "school5"}
	src := xmltree.Elem("pairs")
	for i := range homes {
		src.Children = append(src.Children, xmltree.Elem("pair",
			xmltree.Text("h", homes[i]), xmltree.Text("s", schools[i])))
	}
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"p": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "p", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("pair"), Out: "P"}
	h := &algebra.GetDescendants{Input: gd, Parent: "P",
		Path: pathexpr.MustParse("h._"), Out: "H"}
	s := &algebra.GetDescendants{Input: h, Parent: "P",
		Path: pathexpr.MustParse("s._"), Out: "S"}
	grp := &algebra.GroupBy{Input: s, By: []string{"H"}, Var: "S", Out: "LSs"}
	q := mustCompile(t, e, grp)
	got := mustMaterialize(t, q)

	if len(got.Children) != 3 {
		t.Fatalf("want 3 groups, got %v", got)
	}
	check := func(i int, home string, wantSchools ...string) {
		b := got.Children[i]
		if b.Find("H").TextContent() != home {
			t.Fatalf("group %d H = %v", i, b.Find("H"))
		}
		lst := b.Find("LSs").FirstChild()
		if lst.Label != "list" || len(lst.Children) != len(wantSchools) {
			t.Fatalf("group %d list = %v", i, lst)
		}
		for j, w := range wantSchools {
			if lst.Children[j].Label != w {
				t.Fatalf("group %d school %d = %q, want %q", i, j, lst.Children[j].Label, w)
			}
		}
	}
	check(0, "home1", "school1", "school2", "school4")
	check(1, "home2", "school3")
	check(2, "home3", "school5")
}

func TestGroupByEmptyByOnEmptyInput(t *testing.T) {
	// {} grouping yields exactly one (empty) group even on empty input,
	// so CONSTRUCT always creates one answer element.
	src := xmltree.Elem("r") // no children
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	q := mustCompile(t, e, workload.SelectionPlan("s", "nope"))
	got := mustMaterialize(t, q)
	if got.Label != "result" || len(got.Children) != 0 {
		t.Fatalf("empty selection answer = %v, want bare result element", got)
	}
}

func TestOrderBy(t *testing.T) {
	src := xmltree.Elem("r",
		xmltree.Elem("p", xmltree.Text("age", "30")),
		xmltree.Elem("p", xmltree.Text("age", "9")),
		xmltree.Elem("p", xmltree.Text("age", "100")),
	)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	q := mustCompile(t, e, workload.ReorderPlan("s", "age._"))
	got := mustMaterialize(t, q)
	ages := []string{}
	for _, p := range got.Children {
		ages = append(ages, p.Find("age").TextContent())
	}
	// Numeric order, not lexicographic.
	if strings.Join(ages, ",") != "9,30,100" {
		t.Fatalf("orderBy ages = %v", ages)
	}
}

func TestUnionDifferenceDistinct(t *testing.T) {
	s1 := xmltree.Elem("r", xmltree.Text("a", "1"), xmltree.Text("a", "2"))
	s2 := xmltree.Elem("r", xmltree.Text("a", "2"), xmltree.Text("a", "3"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s1": s1, "s2": s2})
	gd := func(src string) algebra.Op {
		return &algebra.Project{
			Input: &algebra.GetDescendants{
				Input:  &algebra.Source{URL: src, Var: "R" + src},
				Parent: "R" + src, Path: pathexpr.MustParse("a._"), Out: "X",
			},
			Keep: []string{"X"},
		}
	}
	vals := func(q *Query) []string {
		tree := mustMaterialize(t, q)
		var out []string
		for _, b := range tree.Children {
			out = append(out, b.FirstChild().TextContent())
		}
		return out
	}

	u := mustCompile(t, e, &algebra.Union{Left: gd("s1"), Right: gd("s2")})
	if got := vals(u); strings.Join(got, ",") != "1,2,2,3" {
		t.Fatalf("union = %v", got)
	}
	d := mustCompile(t, e, &algebra.Difference{Left: gd("s1"), Right: gd("s2")})
	if got := vals(d); strings.Join(got, ",") != "1" {
		t.Fatalf("difference = %v", got)
	}
	dd := mustCompile(t, e, &algebra.Distinct{Input: &algebra.Union{Left: gd("s1"), Right: gd("s2")}})
	if got := vals(dd); strings.Join(got, ",") != "1,2,3" {
		t.Fatalf("distinct = %v", got)
	}
}

func TestSelectValueCondition(t *testing.T) {
	homes, _ := workload.HomesSchools(20, 0, 4, 3)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"h": homes})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "h", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("home"), Out: "H"}
	zip := &algebra.GetDescendants{Input: gd, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "Z"}
	sel := &algebra.Select{Input: zip, Cond: algebra.Eq(algebra.V("Z"), algebra.Lit("91000"))}
	q := mustCompile(t, e, &algebra.Project{Input: sel, Keep: []string{"H"}})
	got := mustMaterialize(t, q)
	want := 0
	for _, h := range homes.Children {
		if h.Find("zip").TextContent() == "91000" {
			want++
		}
	}
	if len(got.Children) != want {
		t.Fatalf("selected %d, want %d", len(got.Children), want)
	}
	if want == 0 {
		t.Fatal("test data produced no matching zip; adjust seed")
	}
}

func TestPersistentHandles(t *testing.T) {
	// Saved node-ids stay valid while navigation proceeds elsewhere —
	// the "client navigation may proceed from multiple nodes" property.
	homes, schools := workload.HomesSchools(10, 10, 2, 4)
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{
		"homesSrc": homes, "schoolsSrc": schools})
	q := mustCompile(t, e, workload.HomesSchoolsPlan())
	doc := q.Document()

	root, _ := doc.Root()
	first, err := doc.Down(root)
	if err != nil || first == nil {
		t.Fatalf("Down: %v %v", first, err)
	}
	second, err := doc.Right(first)
	if err != nil || second == nil {
		t.Fatalf("Right: %v %v", second, err)
	}
	// Descend deep under second…
	sub2, err := nav.Subtree(doc, second)
	if err != nil {
		t.Fatal(err)
	}
	// …then come back to the saved first handle.
	sub1, err := nav.Subtree(doc, first)
	if err != nil {
		t.Fatal(err)
	}
	// And the same handles re-materialize identically.
	sub1b, err := nav.Subtree(doc, first)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(sub1, sub1b) {
		t.Fatal("re-navigation from saved handle differs")
	}
	if xmltree.Equal(sub1, sub2) {
		t.Fatal("distinct med_homes should differ")
	}
}

func TestAblationsPreserveSemantics(t *testing.T) {
	homes, schools := workload.HomesSchools(15, 15, 3, 5)
	variants := []Options{
		DefaultOptions(),
		{},
		{JoinCache: true},
		{PathCache: true},
		{GroupCache: true},
		{JoinCache: true, PathCache: true, GroupCache: true, NativeSelect: true},
	}
	var want *xmltree.Tree
	for i, opts := range variants {
		e, _ := engineWith(opts, map[string]*xmltree.Tree{
			"homesSrc": homes, "schoolsSrc": schools})
		q := mustCompile(t, e, workload.HomesSchoolsPlan())
		got := mustMaterialize(t, q)
		if i == 0 {
			want = got
			continue
		}
		if !xmltree.Equal(got, want) {
			t.Fatalf("options %+v change the result", opts)
		}
	}
}

func TestJoinCacheReducesSourceNavigations(t *testing.T) {
	homes, schools := workload.HomesSchools(20, 20, 4, 6)
	run := func(opts Options) int64 {
		e, counters := engineWith(opts, map[string]*xmltree.Tree{
			"homesSrc": homes, "schoolsSrc": schools})
		q := mustCompile(t, e, workload.HomesSchoolsPlan())
		mustMaterialize(t, q)
		return counters["schoolsSrc"].Counters.Navigations()
	}
	// PathCache must be off in the uncached run: the operator-level
	// descent cache would otherwise serve the join's re-iterations.
	with := run(Options{JoinCache: true, PathCache: true, GroupCache: true})
	without := run(Options{GroupCache: true})
	if with >= without {
		t.Fatalf("join cache should reduce inner navigations: with=%d without=%d", with, without)
	}
	// Without the cache the inner is rescanned per outer binding:
	// expect a multiplicative blowup at this size.
	if without < 2*with {
		t.Fatalf("expected strong contrast, with=%d without=%d", with, without)
	}
}

func TestSelectionPlanNativeSelect(t *testing.T) {
	// E3's mechanism: label selection over a child scan uses the
	// select(σ) command when NC includes it.
	src := workload.FlatList(100, "x", "x", "x", "x", "a") // every 5th is "a"… wait: labels cycle
	e, counters := engineWith(Options{JoinCache: true, PathCache: true, GroupCache: true, NativeSelect: true},
		map[string]*xmltree.Tree{"s": src})
	q := mustCompile(t, e, workload.SelectionPlan("s", "a"))
	got := mustMaterialize(t, q)
	wantCount := src.CountLabel("a")
	if len(got.Children) != wantCount {
		t.Fatalf("selected %d, want %d", len(got.Children), wantCount)
	}
	// Native select used: select counter incremented.
	if counters["s"].Counters.Select.Load() == 0 {
		t.Fatal("native select not used")
	}

	// Same result without native select.
	e2, counters2 := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	q2 := mustCompile(t, e2, workload.SelectionPlan("s", "a"))
	got2 := mustMaterialize(t, q2)
	if !xmltree.Equal(got, got2) {
		t.Fatal("native select changes semantics")
	}
	if counters2["s"].Counters.Select.Load() != 0 {
		t.Fatal("select command used without NativeSelect option")
	}
}

func TestConcPlanBoundedNavigation(t *testing.T) {
	// qconc: fetching the k-th child label costs O(k) source commands,
	// independent of source size.
	costAt := func(n int) int64 {
		s1 := workload.FlatList(n, "a")
		s2 := workload.FlatList(n, "b")
		e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s1": s1, "s2": s2})
		q := mustCompile(t, e, workload.ConcPlan("s1", "s2"))
		if _, err := nav.Labels(q.Document(), 3); err != nil {
			t.Fatal(err)
		}
		return counters["s1"].Counters.Navigations() + counters["s2"].Counters.Navigations()
	}
	small, large := costAt(10), costAt(10_000)
	if small != large {
		t.Fatalf("qconc navigation cost should be size-independent: %d vs %d", small, large)
	}
}

func TestReorderPlanIsBlockingOnFirstResult(t *testing.T) {
	// The unbrowsable view: fetching even the first child requires
	// navigations proportional to the source size.
	cost := func(n int) int64 {
		src := xmltree.Elem("r")
		for i := n; i > 0; i-- {
			src.Children = append(src.Children,
				xmltree.Elem("p", xmltree.Text("age", strings.Repeat("9", 1+i%3))))
		}
		e, counters := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
		q := mustCompile(t, e, workload.ReorderPlan("s", "age._"))
		if _, err := nav.Labels(q.Document(), 1); err != nil {
			t.Fatal(err)
		}
		return counters["s"].Counters.Navigations()
	}
	c100, c1000 := cost(100), cost(1000)
	if c1000 < 5*c100 {
		t.Fatalf("unbrowsable view should scale with input: %d vs %d", c100, c1000)
	}
}

func TestBindingsDocumentVarOrder(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("a", "1"))
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("a"), Out: "X"}
	q := mustCompile(t, e, gd)
	got := mustMaterialize(t, q)
	b := got.FirstChild()
	if len(b.Children) != 2 || b.Children[0].Label != "R" || b.Children[1].Label != "X" {
		t.Fatalf("binding var order wrong: %v", b)
	}
}

func TestVDocForeignID(t *testing.T) {
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": xmltree.Elem("r")})
	q := mustCompile(t, e, &algebra.Source{URL: "s", Var: "X"})
	doc := q.Document()
	if _, err := doc.Down("bogus"); err == nil {
		t.Fatal("foreign id should error")
	}
	if _, err := doc.Fetch(nil); err == nil {
		t.Fatal("nil id should error")
	}
}

func TestTupleDestroyEmptyInput(t *testing.T) {
	// tupleDestroy over a plan that yields no bindings errors on first
	// navigation (not at compile or root-handle time).
	src := xmltree.Elem("r")
	e, _ := engineWith(DefaultOptions(), map[string]*xmltree.Tree{"s": src})
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("nothing"), Out: "X"}
	q := mustCompile(t, e, &algebra.TupleDestroy{Input: gd, Var: "X"})
	doc := q.Document()
	root, err := doc.Root()
	if err != nil {
		t.Fatalf("root handle must not fail: %v", err)
	}
	if _, err := doc.Fetch(root); err == nil {
		t.Fatal("fetching the root of an empty answer should error")
	}
}

func TestMemoListStability(t *testing.T) {
	// Pulling a memoized list twice yields identical nodes and does not
	// re-pull the inner list.
	pulls := 0
	inner := thunkList(func() (Node, list, error) {
		pulls++
		return leafNode("x"), emptyList{}, nil
	})
	m := memoize(inner)
	a, _, _ := m.next()
	b, _, _ := m.next()
	if pulls != 1 {
		t.Fatalf("memoized list pulled inner %d times", pulls)
	}
	la, _ := a.Label()
	lb, _ := b.Label()
	if la != lb {
		t.Fatal("memoized results differ")
	}
	if memoize(m) != m {
		t.Fatal("double memoize should be identity")
	}
}

func TestItemsOfListVsValue(t *testing.T) {
	lst := NewElem("list", consList{head: leafNode("a"), tail: singletonList(leafNode("b"))})
	items, err := drainList(itemsOf(lst))
	if err != nil || len(items) != 2 {
		t.Fatalf("itemsOf(list): %v %v", items, err)
	}
	val := leafNode("v")
	items, err = drainList(itemsOf(val))
	if err != nil || len(items) != 1 {
		t.Fatalf("itemsOf(value): %v %v", items, err)
	}
}

func drainList(l list) ([]Node, error) {
	var out []Node
	for {
		h, t, err := l.next()
		if err != nil {
			return nil, err
		}
		if h == nil {
			return out, nil
		}
		out = append(out, h)
		l = t
	}
}

func TestEngineRegistry(t *testing.T) {
	e := New()
	e.Register("b", nav.NewTreeDoc(xmltree.Elem("x")))
	e.Register("a", nav.NewTreeDoc(xmltree.Elem("y")))
	names := e.SourceNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SourceNames = %v", names)
	}
}
