package core

import (
	"context"
	"testing"

	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/workload"
)

// prefetchRig builds an engine over the running example with counted
// sources and a region cache.
func prefetchRig(t *testing.T, cache *regioncache.Cache) (*Engine, *Query, *metrics.Counters) {
	t.Helper()
	homes, schools := workload.HomesSchools(12, 8, 4, 7)
	src := &metrics.Counters{}
	eng := New()
	eng.Register("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: src})
	eng.Register("schoolsSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(schools), Counters: src})
	eng.SetRegionCache(cache)
	q, err := eng.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	q.SetCacheName("homes")
	return eng, q, src
}

func TestPrefetchRegionWarmsDemand(t *testing.T) {
	cache := regioncache.New(0)
	eng, q, src := prefetchRig(t, cache)
	spec := &metrics.Counters{}
	res, err := q.PrefetchRegion(context.Background(), 1, true, PrefetchBudget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Navs == 0 || res.Bytes == 0 || res.Exhausted || res.Cancelled {
		t.Fatalf("drain result: %+v", res)
	}
	if spec.Navigations() != res.Navs {
		t.Fatalf("counters got %d navs, result says %d", spec.Navigations(), res.Navs)
	}
	if st := cache.Stats(); st.SpecEntries != 1 {
		t.Fatalf("expected one speculative entry, stats %+v", st)
	}

	// A fresh demand query over the same engine navigates region 1 with
	// zero source navigations — and promotes the entry.
	q2, err := eng.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	q2.SetCacheName("homes")
	before := src.Navigations()
	doc := q2.Document()
	root, _ := doc.Root()
	cur, _ := doc.Down(root)
	cur, _ = doc.Right(cur) // region 1 top
	if err := exploreAll(doc, cur); err != nil {
		t.Fatal(err)
	}
	if navs := src.Navigations() - before; navs != 0 {
		t.Fatalf("demand drill of the prefetched region cost %d source navs; want 0", navs)
	}
	if st := cache.Stats(); st.SpecEntries != 0 {
		t.Fatalf("demand open did not promote the entry: %+v", st)
	}
}

// exploreAll fully explores the subtree under p.
func exploreAll(doc nav.Document, p nav.ID) error {
	if _, err := doc.Fetch(p); err != nil {
		return err
	}
	c, err := doc.Down(p)
	if err != nil {
		return err
	}
	for c != nil {
		if err := exploreAll(doc, c); err != nil {
			return err
		}
		if c, err = doc.Right(c); err != nil {
			return err
		}
	}
	return nil
}

func TestPrefetchBudgetExhaustion(t *testing.T) {
	cache := regioncache.New(0)
	_, q, _ := prefetchRig(t, cache)
	spec := &metrics.Counters{}
	res, err := q.PrefetchRegion(context.Background(), 0, true, PrefetchBudget{MaxNavs: 3}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("MaxNavs=3 drain not exhausted: %+v", res)
	}
	if res.Navs > 4 {
		t.Fatalf("drain overshot its navigation budget: %+v", res)
	}
	res, err = q.PrefetchRegion(context.Background(), 0, true, PrefetchBudget{MaxBytes: 8}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("MaxBytes=8 drain not exhausted: %+v", res)
	}
}

func TestPrefetchCancelled(t *testing.T) {
	cache := regioncache.New(0)
	_, q, _ := prefetchRig(t, cache)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := q.PrefetchRegion(ctx, 0, true, PrefetchBudget{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatalf("pre-cancelled drain not reported cancelled: %+v", res)
	}
}

func TestPrefetchPastLastRegionCompletesChildList(t *testing.T) {
	cache := regioncache.New(0)
	eng, q, src := prefetchRig(t, cache)
	// There are far fewer than 100 joined homes: the walk right-scans off
	// the end, which publishes the *complete* top-level child list.
	if _, err := q.PrefetchRegion(context.Background(), 100, true, PrefetchBudget{}, nil); err != nil {
		t.Fatal(err)
	}
	q2, err := eng.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	q2.SetCacheName("homes")
	before := src.Navigations()
	doc := q2.Document()
	root, _ := doc.Root()
	cur, _ := doc.Down(root)
	for cur != nil {
		cur, _ = doc.Right(cur)
	}
	if navs := src.Navigations() - before; navs != 0 {
		t.Fatalf("top-level scan after over-the-end prefetch cost %d source navs; want 0", navs)
	}
}

func TestPrefetchStaleGenerationDetached(t *testing.T) {
	cache := regioncache.New(0)
	_, q, _ := prefetchRig(t, cache)
	cache.Invalidate() // engine now lags the cache epoch
	res, err := q.PrefetchRegion(context.Background(), 0, true, PrefetchBudget{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Navs == 0 {
		t.Fatalf("stale drain did no work: %+v", res)
	}
	if st := cache.Stats(); st.Entries != 0 || st.SpecEntries != 0 {
		t.Fatalf("stale-generation drain published into the shared cache: %+v", st)
	}
}

func TestPrefetchRequiresCacheName(t *testing.T) {
	eng := New()
	homes, _ := workload.HomesSchools(2, 2, 2, 1)
	eng.Register("homesSrc", nav.NewTreeDoc(homes))
	eng.Register("schoolsSrc", nav.NewTreeDoc(homes))
	q, err := eng.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.PrefetchRegion(context.Background(), 0, true, PrefetchBudget{}, nil); err == nil {
		t.Fatal("uncached query accepted a prefetch")
	}
}
