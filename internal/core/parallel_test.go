package core

import (
	"errors"
	"strings"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func parallelOpts() Options {
	o := hashOpts()
	o.Parallel = true
	return o
}

// TestParallelJoinIdenticalAnswer: concurrent input derivation must not
// change a byte of the answer (run under -race, this is also the data
// race check for the two side drains).
func TestParallelJoinIdenticalAnswer(t *testing.T) {
	homes, schools := workload.HomesSchools(40, 40, 8, 3)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	run := func(opts Options) string {
		e, _ := engineWith(opts, srcs)
		q := mustCompile(t, e, hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
		return xmltree.MarshalXML(mustMaterialize(t, q))
	}
	before := ParallelSnapshot()
	serial := run(hashOpts())
	if d := ParallelSnapshot().Joins - before.Joins; d != 0 {
		t.Fatalf("serial run drained %d join input pairs concurrently", d)
	}
	parallel := run(parallelOpts())
	if serial != parallel {
		t.Fatalf("parallel answer differs:\n%s\nvs\n%s", parallel, serial)
	}
	if d := ParallelSnapshot().Joins - before.Joins; d < 1 {
		t.Fatalf("parallel run drained %d join input pairs concurrently, want ≥1", d)
	}
}

// TestParallelSharedSourceStaysSerial: a self-join reads the same
// source on both sides; handing its unsynchronized document to two
// goroutines would race, so the pair must not be parallelized.
func TestParallelSharedSourceStaysSerial(t *testing.T) {
	homes, _ := workload.HomesSchools(10, 0, 4, 5)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes}
	left := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "r1"},
		Parent: "r1", Path: pathexpr.MustParse("home.zip._"), Out: "V1",
	}
	right := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "r2"},
		Parent: "r2", Path: pathexpr.MustParse("home.zip._"), Out: "V2",
	}
	plan := &algebra.Project{
		Input: &algebra.Join{Left: left, Right: right,
			Cond: algebra.Eq(algebra.V("V1"), algebra.V("V2"))},
		Keep: []string{"V1", "V2"},
	}
	before := ParallelSnapshot().Joins
	e, _ := engineWith(parallelOpts(), srcs)
	mustMaterialize(t, mustCompile(t, e, plan))
	if d := ParallelSnapshot().Joins - before; d != 0 {
		t.Fatalf("self-join was parallelized %d times; shared sources must stay serial", d)
	}
}

// errDoc is a document whose navigation fails after the root.
type errDoc struct{ err error }

type errID struct{}

func (d errDoc) Root() (nav.ID, error)       { return errID{}, nil }
func (d errDoc) Down(nav.ID) (nav.ID, error) { return nil, d.err }
func (d errDoc) Right(nav.ID) (nav.ID, error) {
	return nil, d.err
}
func (d errDoc) Fetch(nav.ID) (string, error) { return "", d.err }

// TestParallelErrorPropagates: a failing side surfaces its own error to
// the consumer and bumps the error counter; the sibling is cancelled or
// completes, never deadlocks.
func TestParallelErrorPropagates(t *testing.T) {
	boom := errors.New("source exploded")
	_, schools := workload.HomesSchools(0, 20, 5, 7)
	e := New(WithOptions(parallelOpts()))
	e.Register("homesSrc", errDoc{err: boom})
	e.Register("schoolsSrc", nav.NewTreeDoc(schools))
	q := mustCompile(t, e, hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
	before := ParallelSnapshot()
	_, err := q.Materialize()
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("expected the side's own error, got %v", err)
	}
	after := ParallelSnapshot()
	if after.Joins-before.Joins != 1 {
		t.Fatalf("joins delta = %d, want 1", after.Joins-before.Joins)
	}
	if after.Errors-before.Errors < 1 {
		t.Fatalf("errors delta = %d, want ≥1", after.Errors-before.Errors)
	}
}

// TestParallelPoolSaturatedRunsInline: with no worker slots at all,
// both drains run inline on the submitting goroutine — no queueing, no
// deadlock, identical answer.
func TestParallelPoolSaturatedRunsInline(t *testing.T) {
	saved := parallelWorkers
	parallelWorkers = make(chan struct{})
	defer func() { parallelWorkers = saved }()

	homes, schools := workload.HomesSchools(15, 15, 4, 13)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}
	before := ParallelSnapshot()
	e, _ := engineWith(parallelOpts(), srcs)
	q := mustCompile(t, e, hashZipPlan(algebra.Eq(algebra.V("V1"), algebra.V("V2"))))
	got := xmltree.MarshalXML(mustMaterialize(t, q))

	e2, _ := engineWith(hashOpts(), srcs)
	want := xmltree.MarshalXML(mustMaterialize(t, mustCompile(t, e2, hashZipPlan(
		algebra.Eq(algebra.V("V1"), algebra.V("V2"))))))
	if got != want {
		t.Fatalf("inline-drained answer differs:\n%s\nvs\n%s", got, want)
	}
	if d := ParallelSnapshot().Inline - before.Inline; d != 2 {
		t.Fatalf("inline drains = %d, want 2 (both sides, pool empty)", d)
	}
}
