package core

import (
	"fmt"

	"mix/internal/xmltree"
)

// binding is one element of a binding list bs[b[…]]: an immutable
// assignment of lazy values to variable names, represented as a
// persistent chain of links. The chain representation is what makes
// the paper's per-binding caches effective: a nested-loops join that
// pairs one outer binding with many inner bindings shares the outer
// links (and their memoized materializations) across all pairs, so a
// join attribute like a zip code is navigated once per *input* binding,
// not once per pair ("the nested-loops join operator stores … the
// attributes that participate in the join condition", Section 3).
//
// Bindings are not safe for concurrent use; a query's virtual document
// is navigated by one client at a time, as in the paper's architecture.
type binding struct {
	kind   bindKind
	parent *binding

	// bindLink
	name  string
	val   Node
	tree  *xmltree.Tree // memoized materialization of val
	canon string        // memoized canonical string of tree

	// keys memoizes key() results on the binding a stream element
	// hands out, so the repeated group/member scans of groupBy
	// (Appendix A's nextgb/next) pay for canonicalization once per
	// binding rather than once per scan.
	keys map[string]string

	// mergeLink
	co *binding

	// projectLink
	keep []string

	// renameLink
	from, to string
}

type bindKind uint8

const (
	rootLink bindKind = iota
	bindLink
	mergeLink
	projectLink
	renameLink
)

var emptyBinding = &binding{kind: rootLink}

func newBinding() *binding { return emptyBinding }

// with returns b extended with name bound to v (the paper's bᵢ + X[v]).
func (b *binding) with(name string, v Node) *binding {
	return &binding{kind: bindLink, parent: b, name: name, val: v}
}

// project restricts b to the given variables.
func (b *binding) project(keep []string) *binding {
	return &binding{kind: projectLink, parent: b, keep: keep}
}

// rename renames variable from to to.
func (b *binding) rename(from, to string) *binding {
	if from == to {
		return b
	}
	return &binding{kind: renameLink, parent: b, from: from, to: to}
}

// merge concatenates two bindings with disjoint variables.
func merge(l, r *binding) *binding {
	return &binding{kind: mergeLink, parent: l, co: r}
}

// lookup returns the bind link defining name, or nil.
func (b *binding) lookup(name string) *binding {
	for cur := b; cur != nil; {
		switch cur.kind {
		case bindLink:
			if cur.name == name {
				return cur
			}
			cur = cur.parent
		case mergeLink:
			if l := cur.parent.lookup(name); l != nil {
				return l
			}
			cur = cur.co
		case projectLink:
			if !containsVar(cur.keep, name) {
				return nil
			}
			cur = cur.parent
		case renameLink:
			if name == cur.from {
				return nil // hidden by the rename
			}
			if name == cur.to {
				name = cur.from
			}
			cur = cur.parent
		default: // rootLink
			return nil
		}
	}
	return nil
}

func containsVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// node returns the lazy value bound to name.
func (b *binding) node(name string) (Node, error) {
	l := b.lookup(name)
	if l == nil {
		return nil, fmt.Errorf("core: unbound variable $%s", name)
	}
	return l.val, nil
}

// Value materializes the value bound to name (algebra.ValueGetter).
// The materialization is memoized on the defining link, so it is
// shared by every binding derived from it.
func (b *binding) Value(name string) (*xmltree.Tree, error) {
	l := b.lookup(name)
	if l == nil {
		return nil, fmt.Errorf("core: unbound variable $%s", name)
	}
	if l.tree == nil {
		t, err := MaterializeNode(l.val)
		if err != nil {
			return nil, err
		}
		l.tree = t
	}
	return l.tree, nil
}

// key (see keyspace.go) returns the operator key for the values of the
// given variables, used by groupBy/distinct/difference: structural
// fingerprints under Options.Fingerprints, canonical strings otherwise.

func errUnbound(v string) error {
	return fmt.Errorf("core: unbound variable $%s", v)
}

// stream is a persistent lazy list of bindings — the operator output
// "virtual XML answer tree" of Fig. 2, restricted to the binding level.
// A nil head signals exhaustion. Like list, streams must be persistent.
type stream interface {
	next() (*binding, stream, error)
}

type emptyStream struct{}

func (emptyStream) next() (*binding, stream, error) { return nil, nil, nil }

type consStream struct {
	head *binding
	tail stream
}

func (c consStream) next() (*binding, stream, error) { return c.head, c.tail, nil }

// thunkStream defers (and recomputes on every pull — not memoized).
type thunkStream func() (*binding, stream, error)

func (t thunkStream) next() (*binding, stream, error) { return t() }

// deferStream wraps a stream constructor.
func deferStream(f func() (stream, error)) stream {
	return thunkStream(func() (*binding, stream, error) {
		s, err := f()
		if err != nil {
			return nil, nil, err
		}
		return s.next()
	})
}

// memoStream caches one pull, giving every consumer the same cheap
// replay; this is the mechanism behind the paper's operator caches
// (join inner list, groupBy's Gprev lists, recursive getDescendants).
type memoStream struct {
	inner stream

	forced bool
	head   *binding
	tail   stream
	err    error
}

func newMemoStream(inner stream) *memoStream { return &memoStream{inner: inner} }

func (m *memoStream) next() (*binding, stream, error) {
	if !m.forced {
		h, t, err := m.inner.next()
		m.head, m.err = h, err
		if t != nil {
			m.tail = newMemoStream(t)
		}
		m.forced = true
		m.inner = nil
	}
	return m.head, m.tail, m.err
}

func memoizeStream(s stream) stream {
	if _, ok := s.(*memoStream); ok {
		return s
	}
	return newMemoStream(s)
}

type concatStream struct{ a, b stream }

func (c concatStream) next() (*binding, stream, error) {
	h, t, err := c.a.next()
	if err != nil {
		return nil, nil, err
	}
	if h == nil {
		return c.b.next()
	}
	return h, concatStream{a: t, b: c.b}, nil
}

// filterStream keeps the bindings satisfying pred.
type filterStream struct {
	in   stream
	pred func(*binding) (bool, error)
}

func (f filterStream) next() (*binding, stream, error) {
	in := f.in
	for {
		h, t, err := in.next()
		if err != nil {
			return nil, nil, err
		}
		if h == nil {
			return nil, nil, nil
		}
		ok, err := f.pred(h)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			return h, filterStream{in: t, pred: f.pred}, nil
		}
		in = t
	}
}

// mapStream transforms each binding.
type mapStream struct {
	in stream
	fn func(*binding) (*binding, error)
}

func (m mapStream) next() (*binding, stream, error) {
	h, t, err := m.in.next()
	if err != nil || h == nil {
		return nil, nil, err
	}
	nb, err := m.fn(h)
	if err != nil {
		return nil, nil, err
	}
	return nb, mapStream{in: t, fn: m.fn}, nil
}

// flatMapStream expands each input binding into a sub-stream and
// concatenates the results lazily (the shape of getDescendants and the
// nested-loops join outer loop).
type flatMapStream struct {
	in  stream
	fn  func(*binding) (stream, error)
	cur stream // remainder of the current expansion, nil when none
}

func (f flatMapStream) next() (*binding, stream, error) {
	cur, in := f.cur, f.in
	for {
		if cur != nil {
			h, t, err := cur.next()
			if err != nil {
				return nil, nil, err
			}
			if h != nil {
				return h, flatMapStream{in: in, fn: f.fn, cur: t}, nil
			}
			cur = nil
		}
		h, t, err := in.next()
		if err != nil {
			return nil, nil, err
		}
		if h == nil {
			return nil, nil, nil
		}
		sub, err := f.fn(h)
		if err != nil {
			return nil, nil, err
		}
		cur, in = sub, t
	}
}

// drain pulls the whole stream into a slice (used by the blocking
// operators orderBy and difference, and by tests).
func drain(s stream) ([]*binding, error) {
	var out []*binding
	for {
		h, t, err := s.next()
		if err != nil {
			return nil, err
		}
		if h == nil {
			return out, nil
		}
		out = append(out, h)
		s = t
	}
}

// sliceStream replays a drained slice.
type sliceStream []*binding

func (s sliceStream) next() (*binding, stream, error) {
	if len(s) == 0 {
		return nil, nil, nil
	}
	return s[0], s[1:], nil
}
