// Package pathexpr implements the generalized regular path expressions
// of XMAS (Section 3): expressions over element labels built from
//
//	label      — match one edge with exactly this label
//	_          — match one edge with any label (wildcard)
//	p.q        — concatenation (a path matching p followed by one matching q)
//	p|q        — alternation
//	p*         — zero or more repetitions
//	p+         — one or more repetitions
//	p?         — optional
//	( … )      — grouping
//
// A path expression denotes a set of label sequences; getDescendants
// extracts the descendants of a node reachable by a downward path whose
// edge-label sequence matches the expression.
//
// Expressions compile to a Thompson NFA that is stepped label-by-label
// during lazy descent: the engine never materializes the set of matches
// up front, it asks the matcher "can this prefix still lead to a match?"
// (Alive) and "does the path so far match?" (Accepting) as it navigates.
package pathexpr

import (
	"fmt"
	"strings"
)

// Expr is a parsed path expression.
type Expr struct {
	root node
	src  string
}

// node is the expression AST.
type node interface{ str() string }

type atomNode struct{ label string }
type wildNode struct{}
type seqNode struct{ parts []node }
type altNode struct{ alts []node }
type starNode struct{ sub node }
type plusNode struct{ sub node }
type optNode struct{ sub node }

func (n atomNode) str() string { return n.label }
func (wildNode) str() string   { return "_" }
func (n seqNode) str() string {
	parts := make([]string, len(n.parts))
	for i, p := range n.parts {
		parts[i] = maybeParen(p)
	}
	return strings.Join(parts, ".")
}
func (n altNode) str() string {
	alts := make([]string, len(n.alts))
	for i, a := range n.alts {
		alts[i] = a.str()
	}
	return "(" + strings.Join(alts, "|") + ")"
}
func (n starNode) str() string { return maybeParen(n.sub) + "*" }
func (n plusNode) str() string { return maybeParen(n.sub) + "+" }
func (n optNode) str() string  { return maybeParen(n.sub) + "?" }

func maybeParen(n node) string {
	switch n.(type) {
	case seqNode, altNode:
		return "(" + n.str() + ")"
	}
	return n.str()
}

// String returns a normalized rendering of the expression.
func (e *Expr) String() string {
	if e == nil || e.root == nil {
		return ""
	}
	return e.root.str()
}

// Source returns the original text the expression was parsed from.
func (e *Expr) Source() string { return e.src }

// Parse parses a path expression.
func Parse(src string) (*Expr, error) {
	p := &exprParser{src: src}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathexpr: unexpected %q at offset %d in %q", p.src[p.pos], p.pos, src)
	}
	return &Expr{root: n, src: src}, nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// alternation := sequence ('|' sequence)*
func (p *exprParser) alternation() (node, error) {
	first, err := p.sequence()
	if err != nil {
		return nil, err
	}
	alts := []node{first}
	for {
		p.skip()
		if p.peek() != '|' {
			break
		}
		p.pos++
		n, err := p.sequence()
		if err != nil {
			return nil, err
		}
		alts = append(alts, n)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return altNode{alts: alts}, nil
}

// sequence := repeat ('.' repeat)*
func (p *exprParser) sequence() (node, error) {
	first, err := p.repeat()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for {
		p.skip()
		if p.peek() != '.' {
			break
		}
		p.pos++
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return seqNode{parts: parts}, nil
}

// repeat := primary ('*' | '+' | '?')*
func (p *exprParser) repeat() (node, error) {
	n, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch p.peek() {
		case '*':
			p.pos++
			n = starNode{sub: n}
		case '+':
			p.pos++
			n = plusNode{sub: n}
		case '?':
			p.pos++
			n = optNode{sub: n}
		default:
			return n, nil
		}
	}
}

// primary := '_' | label | '(' alternation ')'
func (p *exprParser) primary() (node, error) {
	p.skip()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("pathexpr: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.pos++
		return n, nil
	case c == '_' && !isLabelChar(p.at(p.pos+1)):
		p.pos++
		return wildNode{}, nil
	case isLabelStart(c):
		start := p.pos
		for p.pos < len(p.src) && isLabelChar(p.src[p.pos]) {
			p.pos++
		}
		return atomNode{label: p.src[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("pathexpr: unexpected end of expression %q", p.src)
	default:
		return nil, fmt.Errorf("pathexpr: unexpected %q at offset %d in %q", c, p.pos, p.src)
	}
}

func (p *exprParser) at(i int) byte {
	if i >= len(p.src) {
		return 0
	}
	return p.src[i]
}

func isLabelStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isLabelChar(c byte) bool {
	return isLabelStart(c) || c == '-'
}

// IsRecursive reports whether the expression contains unbounded
// repetition (* or +). The lazy getDescendants mediator keeps a
// frontier cache only for recursive expressions (Section 3).
func (e *Expr) IsRecursive() bool { return isRecursive(e.root) }

func isRecursive(n node) bool {
	switch n := n.(type) {
	case starNode, plusNode:
		return true
	case seqNode:
		for _, p := range n.parts {
			if isRecursive(p) {
				return true
			}
		}
	case altNode:
		for _, a := range n.alts {
			if isRecursive(a) {
				return true
			}
		}
	case optNode:
		return isRecursive(n.sub)
	}
	return false
}

// IsWildcardChain reports whether the expression is a fixed-length
// sequence of wildcards (_, _._, …): such a path matches *every*
// downward path of its length, so a lazy descent mirrors client
// navigations 1:1 without scanning — bounded browsable even under
// NC = {d, r, f}.
func (e *Expr) IsWildcardChain() bool { return isWildcardChain(e.root) }

func isWildcardChain(n node) bool {
	switch n := n.(type) {
	case wildNode:
		return true
	case seqNode:
		for _, p := range n.parts {
			if !isWildcardChain(p) {
				return false
			}
		}
		return true
	}
	return false
}

// MaxDepth returns the length of the longest label sequence the
// expression can match, or -1 if unbounded (recursive). It bounds the
// lazy descent for non-recursive expressions.
func (e *Expr) MaxDepth() int { return maxDepth(e.root) }

func maxDepth(n node) int {
	switch n := n.(type) {
	case atomNode, wildNode:
		return 1
	case seqNode:
		total := 0
		for _, p := range n.parts {
			d := maxDepth(p)
			if d < 0 {
				return -1
			}
			total += d
		}
		return total
	case altNode:
		max := 0
		for _, a := range n.alts {
			d := maxDepth(a)
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
		return max
	case optNode:
		return maxDepth(n.sub)
	case starNode, plusNode:
		return -1
	}
	return 0
}
