package pathexpr

// This file decides language inclusion between path expressions, the
// path half of the plan-containment check behind the semantic region
// cache (DESIGN.md §14): a getDescendants whose path denotes a subset
// of a cached plan's path can be answered from the cached region with a
// residual test instead of a source descent.

// maxSubsetPairs bounds the product-automaton exploration. Path
// expressions in practice have a handful of states; the bound only
// exists so a pathological expression makes Subset conservatively
// answer false instead of burning time.
const maxSubsetPairs = 4096

// otherLabel stands for "any label that appears in neither expression".
// All such labels are indistinguishable to both automata (only wildcard
// edges can consume them), so one representative suffices. NUL cannot
// occur in a parsed label.
const otherLabel = "\x00"

// Subset reports whether every label sequence matched by sub is also
// matched by super — L(sub) ⊆ L(super). It is exact over the closed
// alphabet atoms(sub) ∪ atoms(super) ∪ {other} (which is complete:
// labels outside both expressions are interchangeable), but answers
// false conservatively if the product exploration exceeds
// maxSubsetPairs.
func Subset(sub, super *Expr) bool {
	if sub == nil || super == nil {
		return false
	}
	if sub.String() == super.String() {
		return true
	}
	a, b := Compile(sub), Compile(super)
	sigma := map[string]bool{}
	atomLabels(sub.root, sigma)
	atomLabels(super.root, sigma)
	labels := make([]string, 0, len(sigma)+1)
	for l := range sigma {
		labels = append(labels, l)
	}
	labels = append(labels, otherLabel)

	type pair struct {
		s, p StateSet
	}
	start := pair{a.Start(), b.Start()}
	seen := map[string]bool{start.s.Key() + "|" + start.p.Key(): true}
	queue := []pair{start}
	for len(queue) > 0 {
		if len(seen) > maxSubsetPairs {
			return false
		}
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if a.Accepting(cur.s) && !b.Accepting(cur.p) {
			return false // a sequence sub matches and super does not
		}
		for _, l := range labels {
			ns := a.Step(cur.s, l)
			if !a.Alive(ns) {
				continue // no continuation can be accepted by sub
			}
			np := b.Step(cur.p, l)
			k := ns.Key() + "|" + np.Key()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, pair{ns, np})
			}
		}
	}
	return true
}

// SingleStep reports whether the expression matches only sequences of
// exactly one label: no recursion, maximum depth one, and the empty
// sequence rejected. Single-step paths are the ones whose match can be
// re-verified from a materialized subtree alone (the node's own label
// decides), which is what makes them eligible for path weakening in the
// containment checker.
func SingleStep(e *Expr) bool {
	if e == nil || e.root == nil {
		return false
	}
	if e.MaxDepth() != 1 {
		return false
	}
	n := Compile(e)
	return !n.Accepting(n.Start())
}

// atomLabels collects the atom labels of the expression AST into sigma.
func atomLabels(n node, sigma map[string]bool) {
	switch n := n.(type) {
	case atomNode:
		sigma[n.label] = true
	case seqNode:
		for _, p := range n.parts {
			atomLabels(p, sigma)
		}
	case altNode:
		for _, a := range n.alts {
			atomLabels(a, sigma)
		}
	case starNode:
		atomLabels(n.sub, sigma)
	case plusNode:
		atomLabels(n.sub, sigma)
	case optNode:
		atomLabels(n.sub, sigma)
	}
}

// SplitLast decomposes a sequence expression into a prefix and a final
// single-step part: L(e) = L(prefix)·L(last) with every sequence in
// L(last) exactly one label long. The split of a matching label
// sequence is then positionally unique — s matches e iff s without its
// final label matches the prefix and the final label alone matches
// last — so two expressions with *equal* prefixes differ only in a test
// on that final label. The prefix is returned as its normalized
// rendering, to be compared by string equality. ok is false when e's
// root is not a multi-part sequence or its final part is not
// single-step.
func SplitLast(e *Expr) (prefix string, last *Expr, ok bool) {
	if e == nil || e.root == nil {
		return "", nil, false
	}
	sq, isSeq := e.root.(seqNode)
	if !isSeq || len(sq.parts) < 2 {
		return "", nil, false
	}
	le := &Expr{root: sq.parts[len(sq.parts)-1]}
	if !SingleStep(le) {
		return "", nil, false
	}
	return seqNode{parts: sq.parts[:len(sq.parts)-1]}.str(), le, true
}
