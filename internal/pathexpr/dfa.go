package pathexpr

import (
	"sync"
	"sync/atomic"

	"mix/internal/xmltree"
)

// DFA is a lazily-determinized view of an NFA. The NFA's Step recomputes
// an ε-closure per (state set, label) pair — cheap once, but the lazy
// getDescendants descent calls it for every sibling of every explored
// node, and wide documents repeat the same few labels thousands of
// times. The DFA memoizes each subset-construction state the descent
// actually reaches and each labeled transition out of it, so repeated
// scans cost one map hit instead of a closure recomputation.
//
// Determinization is lazy and demand-driven: only states reachable from
// the label sequences actually consumed are ever materialized, so the
// classic exponential subset-construction blowup cannot happen unless
// the input itself drives the automaton through that many distinct
// sets. Each state's Accepting/Alive bits are precomputed at creation,
// making those checks O(1) as well (the NFA's Alive scans the state
// set against reverse reachability on every call).
//
// A DFA is safe for concurrent use; parallel join sides may drive the
// same compiled plan's automaton from two goroutines.
type DFA struct {
	nfa *NFA
	in  *xmltree.Interner // optional: canonicalizes transition-map keys

	mu     sync.Mutex
	states []dfaState
	index  map[string]int // StateSet.Key() → state id
	dead   int            // id of the empty-set state
}

type dfaState struct {
	set       StateSet
	accepting bool
	alive     bool
	next      map[string]int // label → state id
}

// Package-wide cache counters, exposed on /metrics as mix_dfa_cache_*.
var (
	dfaHits   atomic.Int64
	dfaMisses atomic.Int64
	dfaStates atomic.Int64
)

// DFAStats reports memoized-transition hits, misses (transitions
// computed from the NFA), and the total number of DFA states
// materialized across all automata since process start.
func DFAStats() (hits, misses, states int64) {
	return dfaHits.Load(), dfaMisses.Load(), dfaStates.Load()
}

// NewDFA wraps nfa in a lazy DFA. The interner, when non-nil, is used
// to canonicalize the label strings keying transition maps (sharing
// storage with labels interned elsewhere, e.g. by the wire decoder);
// nil disables interning.
func NewDFA(nfa *NFA, in *xmltree.Interner) *DFA {
	d := &DFA{nfa: nfa, in: in, index: make(map[string]int)}
	// State 0 is the dead state (empty set): stepping from it stays
	// there, and Alive reports false, so pruned descents short-circuit
	// without touching the cache.
	d.dead = d.addLocked(StateSet{})
	return d
}

// addLocked materializes a state for set, or returns the existing one.
// Caller holds d.mu (or is the constructor).
func (d *DFA) addLocked(set StateSet) int {
	key := set.Key()
	if id, ok := d.index[key]; ok {
		return id
	}
	id := len(d.states)
	d.states = append(d.states, dfaState{
		set:       set,
		accepting: d.nfa.Accepting(set),
		alive:     d.nfa.Alive(set),
		next:      make(map[string]int),
	})
	d.index[key] = id
	dfaStates.Add(1)
	return id
}

// Start returns the id of the start state.
func (d *DFA) Start() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addLocked(d.nfa.Start())
}

// Step consumes one label and returns the id of the resulting state.
func (d *DFA) Step(state int, label string) int {
	if state == d.dead {
		return d.dead
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &d.states[state]
	if to, ok := s.next[label]; ok {
		dfaHits.Add(1)
		return to
	}
	to := d.addLocked(d.nfa.Step(s.set, label))
	// addLocked may grow d.states; re-index rather than reuse s.
	d.states[state].next[d.in.Intern(label)] = to
	dfaMisses.Add(1)
	return to
}

// Accepting reports whether the label sequence consumed so far is a
// complete match.
func (d *DFA) Accepting(state int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.states[state].accepting
}

// Alive reports whether any continuation can still match; false means
// the descent can prune the subtree below this point.
func (d *DFA) Alive(state int) bool {
	if state == d.dead {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.states[state].alive
}

// Size returns the number of materialized DFA states (including the
// dead state).
func (d *DFA) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.states)
}

// Matches reports whether the whole label sequence matches, with the
// same semantics as NFA.Matches; used by equivalence tests.
func (d *DFA) Matches(labels []string) bool {
	s := d.Start()
	for _, l := range labels {
		s = d.Step(s, l)
		if s == d.dead {
			return false
		}
	}
	return d.Accepting(s)
}
