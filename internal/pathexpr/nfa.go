package pathexpr

import "sort"

// This file compiles path expressions to Thompson NFAs and provides the
// stepwise matcher the lazy getDescendants mediator drives during
// descent.

// transition kinds
const (
	tEps  = iota // ε-transition
	tWild        // consumes any label
	tAtom        // consumes a specific label
)

type edge struct {
	kind  int
	label string // for tAtom
	to    int
}

// NFA is a compiled path expression: states 0..n-1, a start state and a
// single accept state, with ε/label transitions.
type NFA struct {
	edges  [][]edge
	start  int
	accept int

	reach []bool // memoized reverse reachability from accept
}

// Compile builds the NFA for e.
func Compile(e *Expr) *NFA {
	b := &nfaBuilder{}
	start, accept := b.build(e.root)
	return &NFA{edges: b.edges, start: start, accept: accept}
}

type nfaBuilder struct {
	edges [][]edge
}

func (b *nfaBuilder) newState() int {
	b.edges = append(b.edges, nil)
	return len(b.edges) - 1
}

func (b *nfaBuilder) addEdge(from int, e edge) {
	b.edges[from] = append(b.edges[from], e)
}

// build returns (start, accept) for the fragment.
func (b *nfaBuilder) build(n node) (int, int) {
	switch n := n.(type) {
	case atomNode:
		s, a := b.newState(), b.newState()
		b.addEdge(s, edge{kind: tAtom, label: n.label, to: a})
		return s, a
	case wildNode:
		s, a := b.newState(), b.newState()
		b.addEdge(s, edge{kind: tWild, to: a})
		return s, a
	case seqNode:
		s, a := b.build(n.parts[0])
		for _, p := range n.parts[1:] {
			ps, pa := b.build(p)
			b.addEdge(a, edge{kind: tEps, to: ps})
			a = pa
		}
		return s, a
	case altNode:
		s, a := b.newState(), b.newState()
		for _, alt := range n.alts {
			as, aa := b.build(alt)
			b.addEdge(s, edge{kind: tEps, to: as})
			b.addEdge(aa, edge{kind: tEps, to: a})
		}
		return s, a
	case starNode:
		s, a := b.newState(), b.newState()
		is, ia := b.build(n.sub)
		b.addEdge(s, edge{kind: tEps, to: is})
		b.addEdge(s, edge{kind: tEps, to: a})
		b.addEdge(ia, edge{kind: tEps, to: is})
		b.addEdge(ia, edge{kind: tEps, to: a})
		return s, a
	case plusNode:
		is, ia := b.build(n.sub)
		a := b.newState()
		b.addEdge(ia, edge{kind: tEps, to: is})
		b.addEdge(ia, edge{kind: tEps, to: a})
		return is, a
	case optNode:
		s, a := b.newState(), b.newState()
		is, ia := b.build(n.sub)
		b.addEdge(s, edge{kind: tEps, to: is})
		b.addEdge(s, edge{kind: tEps, to: a})
		b.addEdge(ia, edge{kind: tEps, to: a})
		return s, a
	}
	// empty expression: accept the empty sequence
	s := b.newState()
	return s, s
}

// StateSet is an ε-closed set of NFA states, represented as a sorted
// slice so it can serve as a cache key via Key().
type StateSet []int

// Start returns the ε-closure of the start state.
func (m *NFA) Start() StateSet {
	return m.closure([]int{m.start})
}

// Step consumes one edge label and returns the resulting state set
// (possibly empty).
func (m *NFA) Step(s StateSet, label string) StateSet {
	var next []int
	seen := map[int]bool{}
	for _, st := range s {
		for _, e := range m.edges[st] {
			if e.kind == tWild || (e.kind == tAtom && e.label == label) {
				if !seen[e.to] {
					seen[e.to] = true
					next = append(next, e.to)
				}
			}
		}
	}
	return m.closure(next)
}

// Accepting reports whether the label sequence consumed so far is a
// complete match.
func (m *NFA) Accepting(s StateSet) bool {
	for _, st := range s {
		if st == m.accept {
			return true
		}
	}
	return false
}

// Alive reports whether any continuation of the sequence consumed so
// far can still match (i.e. the state set is nonempty and some state
// can reach the accept state). An Alive=false state set means the lazy
// descent can prune this subtree.
func (m *NFA) Alive(s StateSet) bool {
	if len(s) == 0 {
		return false
	}
	reach := m.canReachAccept()
	for _, st := range s {
		if reach[st] {
			return true
		}
	}
	return false
}

func (m *NFA) canReachAccept() []bool {
	if m.reach != nil {
		return m.reach
	}
	// reverse reachability from accept
	rev := make([][]int, len(m.edges))
	for from, es := range m.edges {
		for _, e := range es {
			rev[e.to] = append(rev[e.to], from)
		}
	}
	reach := make([]bool, len(m.edges))
	stack := []int{m.accept}
	reach[m.accept] = true
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[st] {
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	m.reach = reach
	return reach
}

func (m *NFA) closure(states []int) StateSet {
	seen := map[int]bool{}
	var stack []int
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.edges[st] {
			if e.kind == tEps && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	out := make(StateSet, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Key returns a canonical key for the state set, for memoization.
func (s StateSet) Key() string {
	b := make([]byte, 0, len(s)*3)
	for _, st := range s {
		for st >= 128 {
			b = append(b, byte(st&0x7f)|0x80)
			st >>= 7
		}
		b = append(b, byte(st))
		b = append(b, 0xff)
	}
	return string(b)
}

// reach memoizes canReachAccept.
// (declared here, at the end, to keep the NFA struct definition compact)

// Matches reports whether the whole label sequence matches e; it is
// the reference semantics used by property tests.
func (m *NFA) Matches(labels []string) bool {
	s := m.Start()
	for _, l := range labels {
		s = m.Step(s, l)
		if len(s) == 0 {
			return false
		}
	}
	return m.Accepting(s)
}
