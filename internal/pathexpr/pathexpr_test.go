package pathexpr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []string{
		"homes.home",
		"zip._",
		"_",
		"a|b",
		"a.b|c.d",
		"(a|b).c",
		"a*",
		"a+.b?",
		"(a.b)*.x",
		"a",
		"a-b.c1",
		"((a))",
	}
	for _, c := range cases {
		e, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		// normalized form reparses to the same normalized form
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse(%q → %q): %v", c, e.String(), err)
			continue
		}
		if e.String() != e2.String() {
			t.Errorf("normalization not a fixed point: %q → %q → %q", c, e.String(), e2.String())
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, c := range []string{"", ".", "a.", "|a", "a|", "(a", "a)", "*", "a..b", "a!"} {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid input")
		}
	}()
	MustParse("(")
}

func match(t *testing.T, expr string, labels ...string) bool {
	t.Helper()
	return Compile(MustParse(expr)).Matches(labels)
}

func TestMatching(t *testing.T) {
	cases := []struct {
		expr   string
		labels []string
		want   bool
	}{
		{"homes.home", []string{"homes", "home"}, true},
		{"homes.home", []string{"homes"}, false},
		{"homes.home", []string{"homes", "home", "zip"}, false},
		{"zip._", []string{"zip", "91220"}, true},
		{"zip._", []string{"zip"}, false},
		{"_", []string{"anything"}, true},
		{"_", []string{}, false},
		{"a|b", []string{"a"}, true},
		{"a|b", []string{"b"}, true},
		{"a|b", []string{"c"}, false},
		{"a*", []string{}, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a*", []string{"a", "b"}, false},
		{"a+", []string{}, false},
		{"a+", []string{"a"}, true},
		{"a?", []string{}, true},
		{"a?", []string{"a"}, true},
		{"a?", []string{"a", "a"}, false},
		{"(a.b)*.x", []string{"x"}, true},
		{"(a.b)*.x", []string{"a", "b", "x"}, true},
		{"(a.b)*.x", []string{"a", "b", "a", "b", "x"}, true},
		{"(a.b)*.x", []string{"a", "x"}, false},
		{"(a|b).c", []string{"b", "c"}, true},
		{"_*.zip", []string{"homes", "home", "zip"}, true},
		{"_*.zip", []string{"zip"}, true},
		{"_*.zip", []string{"homes", "home"}, false},
	}
	for _, c := range cases {
		if got := match(t, c.expr, c.labels...); got != c.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", c.expr, c.labels, got, c.want)
		}
	}
}

func TestStepwiseAliveAccepting(t *testing.T) {
	m := Compile(MustParse("homes.home"))
	s := m.Start()
	if m.Accepting(s) {
		t.Fatal("empty prefix should not accept")
	}
	if !m.Alive(s) {
		t.Fatal("start must be alive")
	}
	s = m.Step(s, "homes")
	if !m.Alive(s) || m.Accepting(s) {
		t.Fatalf("after homes: alive=%v accepting=%v", m.Alive(s), m.Accepting(s))
	}
	s2 := m.Step(s, "nope")
	if m.Alive(s2) {
		t.Fatal("dead branch should not be alive")
	}
	s = m.Step(s, "home")
	if !m.Accepting(s) {
		t.Fatal("homes.home should accept")
	}
	s = m.Step(s, "zip")
	if m.Alive(s) {
		t.Fatal("over-long path should be dead")
	}
}

func TestRecursiveAndDepth(t *testing.T) {
	cases := []struct {
		expr      string
		recursive bool
		depth     int
	}{
		{"homes.home", false, 2},
		{"a|b.c", false, 2},
		{"a?", false, 1},
		{"a*", true, -1},
		{"a+.b", true, -1},
		{"(a.b)?.c", false, 3},
		{"_._", false, 2},
	}
	for _, c := range cases {
		e := MustParse(c.expr)
		if e.IsRecursive() != c.recursive {
			t.Errorf("IsRecursive(%q) = %v", c.expr, e.IsRecursive())
		}
		if e.MaxDepth() != c.depth {
			t.Errorf("MaxDepth(%q) = %d, want %d", c.expr, e.MaxDepth(), c.depth)
		}
	}
}

func TestStateSetKey(t *testing.T) {
	a := StateSet{1, 2, 300}
	b := StateSet{1, 2, 300}
	c := StateSet{1, 2}
	d := StateSet{12, 300} // must not collide with {1,2,300}
	if a.Key() != b.Key() {
		t.Fatal("equal sets different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() || c.Key() == d.Key() {
		t.Fatal("distinct sets share a key")
	}
}

// referenceMatch is a straightforward backtracking matcher over the AST
// used as the oracle for the NFA property test.
func referenceMatch(n node, labels []string) map[int]bool {
	// returns set of consumed-prefix lengths
	switch n := n.(type) {
	case atomNode:
		if len(labels) > 0 && labels[0] == n.label {
			return map[int]bool{1: true}
		}
		return nil
	case wildNode:
		if len(labels) > 0 {
			return map[int]bool{1: true}
		}
		return nil
	case seqNode:
		cur := map[int]bool{0: true}
		for _, p := range n.parts {
			next := map[int]bool{}
			for off := range cur {
				for d := range referenceMatch(p, labels[off:]) {
					next[off+d] = true
				}
			}
			cur = next
		}
		return cur
	case altNode:
		out := map[int]bool{}
		for _, a := range n.alts {
			for d := range referenceMatch(a, labels) {
				out[d] = true
			}
		}
		return out
	case optNode:
		out := map[int]bool{0: true}
		for d := range referenceMatch(n.sub, labels) {
			out[d] = true
		}
		return out
	case starNode:
		out := map[int]bool{0: true}
		frontier := map[int]bool{0: true}
		for len(frontier) > 0 {
			next := map[int]bool{}
			for off := range frontier {
				for d := range referenceMatch(n.sub, labels[off:]) {
					if d > 0 && !out[off+d] {
						out[off+d] = true
						next[off+d] = true
					}
				}
			}
			frontier = next
		}
		return out
	case plusNode:
		star := referenceMatch(starNode{sub: n.sub}, labels)
		out := map[int]bool{}
		for d1 := range referenceMatch(n.sub, labels) {
			out[d1] = true
			for d2 := range star {
				// careful: star result is on the full slice; recompute on remainder
				_ = d2
			}
		}
		// one sub match followed by star of sub
		final := map[int]bool{}
		for d1 := range out {
			for d2 := range referenceMatch(starNode{sub: n.sub}, labels[d1:]) {
				final[d1+d2] = true
			}
		}
		return final
	}
	return map[int]bool{0: true}
}

func randomExpr(r *rand.Rand, depth int) node {
	labels := []string{"a", "b", "c"}
	if depth <= 0 {
		if r.Intn(4) == 0 {
			return wildNode{}
		}
		return atomNode{label: labels[r.Intn(len(labels))]}
	}
	switch r.Intn(7) {
	case 0:
		return seqNode{parts: []node{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	case 1:
		return altNode{alts: []node{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	case 2:
		return starNode{sub: randomExpr(r, depth-1)}
	case 3:
		return optNode{sub: randomExpr(r, depth-1)}
	case 4:
		return plusNode{sub: randomExpr(r, depth-1)}
	default:
		if r.Intn(4) == 0 {
			return wildNode{}
		}
		return atomNode{label: labels[r.Intn(len(labels))]}
	}
}

func TestQuickNFAAgreesWithReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ast := randomExpr(r, 3)
		expr := &Expr{root: ast}
		// reparse from normalized form to also exercise the parser
		parsed, err := Parse(expr.String())
		if err != nil {
			t.Logf("unparseable normalized form %q", expr.String())
			return false
		}
		m := Compile(parsed)
		labels := []string{"a", "b", "c", "d"}
		n := r.Intn(5)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = labels[r.Intn(len(labels))]
		}
		want := referenceMatch(ast, seq)[len(seq)]
		got := m.Matches(seq)
		if got != want {
			t.Logf("expr=%q seq=%v got=%v want=%v", expr.String(), seq, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAliveSoundness(t *testing.T) {
	// If a prefix is not Alive, then no extension matches.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ast := randomExpr(r, 2)
		expr := &Expr{root: ast}
		parsed, err := Parse(expr.String())
		if err != nil {
			return false
		}
		m := Compile(parsed)
		labels := []string{"a", "b"}
		s := m.Start()
		var prefix []string
		for i := 0; i < 3; i++ {
			l := labels[r.Intn(2)]
			prefix = append(prefix, l)
			s = m.Step(s, l)
			if !m.Alive(s) {
				// every extension up to length 3 must fail
				exts := [][]string{{}, {"a"}, {"b"}, {"a", "a"}, {"a", "b"}, {"b", "a"}, {"b", "b"}}
				for _, e := range exts {
					if m.Matches(append(append([]string{}, prefix...), e...)) {
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedFormsReadable(t *testing.T) {
	e := MustParse("homes.home|a*")
	if !strings.Contains(e.String(), "|") {
		t.Fatalf("String lost structure: %q", e.String())
	}
	if e.Source() != "homes.home|a*" {
		t.Fatalf("Source = %q", e.Source())
	}
}
