package pathexpr

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestDFAMatchesAgreeWithNFA(t *testing.T) {
	exprs := []string{
		"a", "_", "a.b", "a|b", "a*", "a+", "a?",
		"a*.x", "(a|b).c", "(a.b)*", "_._", "(a|_)*.z",
		"home.zip._", "a.(b|c)+.d?",
	}
	seqs := [][]string{
		nil,
		{"a"}, {"b"}, {"z"},
		{"a", "b"}, {"a", "x"}, {"a", "a", "x"},
		{"home", "zip", "92093"},
		{"a", "b", "c", "d"},
		{"a", "a", "a", "a", "a", "x"},
	}
	for _, src := range exprs {
		nfa := Compile(MustParse(src))
		dfa := NewDFA(nfa, nil)
		for _, seq := range seqs {
			if got, want := dfa.Matches(seq), nfa.Matches(seq); got != want {
				t.Errorf("%q on %v: dfa=%v nfa=%v", src, seq, got, want)
			}
		}
	}
}

func TestDFAStatewiseEquivalence(t *testing.T) {
	// Step/Accepting/Alive must agree with the NFA at every prefix, not
	// just the final Matches verdict — the lazy descent consults all
	// three at each node.
	nfa := Compile(MustParse("(a|b)*.x.y?"))
	dfa := NewDFA(nfa, nil)
	seq := []string{"a", "b", "a", "x", "y", "z"}
	ns, ds := nfa.Start(), dfa.Start()
	for i, l := range seq {
		ns, ds = nfa.Step(ns, l), dfa.Step(ds, l)
		if nfa.Accepting(ns) != dfa.Accepting(ds) {
			t.Fatalf("prefix %v: accepting disagrees", seq[:i+1])
		}
		if nfa.Alive(ns) != dfa.Alive(ds) {
			t.Fatalf("prefix %v: alive disagrees", seq[:i+1])
		}
	}
}

func TestDFACachesTransitions(t *testing.T) {
	nfa := Compile(MustParse("a*.x"))
	dfa := NewDFA(nfa, nil)
	h0, m0, _ := DFAStats()
	s := dfa.Start()
	dfa.Step(s, "a") // miss
	dfa.Step(s, "a") // hit
	dfa.Step(s, "a") // hit
	h1, m1, _ := DFAStats()
	if m1-m0 != 1 {
		t.Errorf("misses = %d, want 1", m1-m0)
	}
	if h1-h0 != 2 {
		t.Errorf("hits = %d, want 2", h1-h0)
	}
}

func TestDFADeadStateSticks(t *testing.T) {
	nfa := Compile(MustParse("a.b"))
	dfa := NewDFA(nfa, nil)
	s := dfa.Start()
	s = dfa.Step(s, "z") // no match possible
	if dfa.Alive(s) {
		t.Fatalf("dead state reports alive")
	}
	if dfa.Step(s, "a") != s {
		t.Errorf("stepping from the dead state must stay dead")
	}
	if dfa.Accepting(s) {
		t.Errorf("dead state accepting")
	}
}

func TestDFAConcurrent(t *testing.T) {
	nfa := Compile(MustParse("(a|b)*.x"))
	dfa := NewDFA(nfa, nil)
	labels := []string{"a", "b", "x", "z"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				s := dfa.Start()
				var seq []string
				for j := 0; j < r.Intn(6); j++ {
					l := labels[r.Intn(len(labels))]
					seq = append(seq, l)
					s = dfa.Step(s, l)
				}
				if got, want := dfa.Accepting(s), nfa.Matches(seq); got != want {
					t.Errorf("seq %v: dfa=%v nfa=%v", seq, got, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// randExpr builds a random path-expression string from a byte budget —
// shared by the fuzz target below and FuzzDFAMatchesNFA's corpus.
func randExpr(r *rand.Rand, depth int) string {
	labels := []string{"a", "b", "c", "_"}
	if depth <= 0 || r.Intn(3) == 0 {
		return labels[r.Intn(len(labels))]
	}
	switch r.Intn(6) {
	case 0:
		return randExpr(r, depth-1) + "." + randExpr(r, depth-1)
	case 1:
		return "(" + randExpr(r, depth-1) + "|" + randExpr(r, depth-1) + ")"
	case 2:
		return "(" + randExpr(r, depth-1) + ")*"
	case 3:
		return "(" + randExpr(r, depth-1) + ")+"
	case 4:
		return "(" + randExpr(r, depth-1) + ")?"
	default:
		return labels[r.Intn(len(labels))]
	}
}

func TestDFARandomizedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	alphabet := []string{"a", "b", "c", "d"}
	for i := 0; i < 300; i++ {
		src := randExpr(r, 3)
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("randExpr produced unparsable %q: %v", src, err)
		}
		nfa := Compile(e)
		dfa := NewDFA(nfa, nil)
		for j := 0; j < 20; j++ {
			seq := make([]string, r.Intn(7))
			for k := range seq {
				seq[k] = alphabet[r.Intn(len(alphabet))]
			}
			if got, want := dfa.Matches(seq), nfa.Matches(seq); got != want {
				t.Fatalf("%q on %v: dfa=%v nfa=%v", src, seq, got, want)
			}
		}
	}
}

// FuzzDFAMatchesNFA asserts the lazy DFA is observationally equivalent
// to the raw NFA: same Matches verdict, and same Accepting/Alive at
// every prefix. The first input byte string selects/derives a path
// expression; the second drives the label sequence.
func FuzzDFAMatchesNFA(f *testing.F) {
	f.Add("a*.x", "aax")
	f.Add("(a|b).c", "bc")
	f.Add("home.zip._", "hzq")
	f.Add("(a.b)*", "abab")
	f.Add("a.(b|c)+.d?", "abcd")
	f.Fuzz(func(t *testing.T, exprSrc, seqBytes string) {
		if len(exprSrc) > 64 || len(seqBytes) > 32 {
			return
		}
		e, err := Parse(exprSrc)
		if err != nil {
			return // invalid expression: nothing to compare
		}
		nfa := Compile(e)
		dfa := NewDFA(nfa, nil)
		// Map each input byte to a small label alphabet plus the
		// occasional multi-byte label so interned keys get exercised.
		labels := []string{"a", "b", "c", "x", "home", "zip", "_lit"}
		ns, ds := nfa.Start(), dfa.Start()
		var prefix []string
		for i := 0; i < len(seqBytes); i++ {
			l := labels[int(seqBytes[i])%len(labels)]
			prefix = append(prefix, l)
			ns, ds = nfa.Step(ns, l), dfa.Step(ds, l)
			if nfa.Accepting(ns) != dfa.Accepting(ds) {
				t.Fatalf("expr %q prefix %v: accepting disagrees (nfa=%v)",
					exprSrc, prefix, nfa.Accepting(ns))
			}
			if nfa.Alive(ns) != dfa.Alive(ds) {
				t.Fatalf("expr %q prefix %v: alive disagrees (nfa=%v)",
					exprSrc, prefix, nfa.Alive(ns))
			}
		}
		seq := strings.Split(strings.Join(prefix, "\x00"), "\x00")
		if len(prefix) == 0 {
			seq = nil
		}
		if got, want := dfa.Matches(seq), nfa.Matches(seq); got != want {
			t.Fatalf("expr %q seq %v: dfa=%v nfa=%v", exprSrc, seq, got, want)
		}
	})
}

func BenchmarkStepNFA(b *testing.B) {
	nfa := Compile(MustParse("(a|b)*.zip._"))
	start := nfa.Start()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := nfa.Step(start, "a")
		s = nfa.Step(s, "zip")
		nfa.Step(s, "92093")
	}
}

func BenchmarkStepDFA(b *testing.B) {
	dfa := NewDFA(Compile(MustParse("(a|b)*.zip._")), nil)
	start := dfa.Start()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := dfa.Step(start, "a")
		s = dfa.Step(s, "zip")
		dfa.Step(s, "92093")
	}
}
