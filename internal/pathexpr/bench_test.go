package pathexpr

import "testing"

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("(a|b)*.home.zip._"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	m := Compile(MustParse("(a|b)*.home.zip._"))
	labels := []string{"a", "b", "a", "home", "zip", "91220"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := m.Start()
		for _, l := range labels {
			s = m.Step(s, l)
		}
		if !m.Accepting(s) {
			b.Fatal("should accept")
		}
	}
}
