package regioncache

import (
	"fmt"
	"testing"

	"mix/internal/algebra"
	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// planFor builds a distinct small canonical plan per label: the plan
// index never inspects plan structure, so any non-nil Op will do, but
// distinct paths keep fingerprints honest if a test ever canonicalizes.
func planFor(label string) algebra.Op {
	return &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "s", Var: "v0"},
		Parent: "v0", Path: pathexpr.MustParse(label), Out: "v1",
	}
}

func TestPlanIndexCandidates(t *testing.T) {
	c := New(0)
	k := func(fp string) Key { return Key{Generation: 0, Registry: 1, Name: "v", Fingerprint: fp} }
	c.IndexPlan(k("fp1"), planFor("a"))
	c.IndexPlan(k("fp2"), planFor("b"))
	c.IndexPlan(k("fp1"), planFor("a")) // duplicate fingerprint: dropped

	if got := c.Candidates(k("fp1")); len(got) != 1 || got[0].Key.Fingerprint != "fp2" {
		t.Fatalf("candidates for fp1 = %+v, want exactly fp2 (self excluded, no dup)", got)
	}
	// Other registry versions and other view names see nothing.
	if got := c.Candidates(Key{Generation: 0, Registry: 2, Name: "v", Fingerprint: "fp1"}); len(got) != 0 {
		t.Fatalf("cross-registry candidates = %+v, want none", got)
	}
	if got := c.Candidates(Key{Generation: 0, Registry: 1, Name: "w", Fingerprint: "fp1"}); len(got) != 0 {
		t.Fatalf("cross-view candidates = %+v, want none", got)
	}
	// A fingerprint not itself indexed still sees the bucket.
	if got := c.Candidates(k("fp3")); len(got) != 2 {
		t.Fatalf("candidates for unindexed fp = %d plans, want 2", len(got))
	}
}

func TestPlanIndexBucketBound(t *testing.T) {
	c := New(0)
	for i := 0; i < maxPlansPerBucket+10; i++ {
		fp := fmt.Sprintf("fp%02d", i)
		c.IndexPlan(Key{Registry: 1, Name: "v", Fingerprint: fp}, planFor("a"))
	}
	got := c.Candidates(Key{Registry: 1, Name: "v", Fingerprint: "none"})
	if len(got) != maxPlansPerBucket {
		t.Fatalf("bucket holds %d plans, want capped at %d", len(got), maxPlansPerBucket)
	}
}

func TestPlanIndexGenerations(t *testing.T) {
	c := New(0)
	// Stale-generation inserts are dropped outright.
	c.IndexPlan(Key{Generation: 5, Registry: 1, Name: "v", Fingerprint: "old"}, planFor("a"))
	if got := c.Candidates(Key{Generation: 5, Registry: 1, Name: "v", Fingerprint: "x"}); len(got) != 0 {
		t.Fatalf("stale-generation plan was indexed: %+v", got)
	}
	c.IndexPlan(Key{Generation: 0, Registry: 1, Name: "v", Fingerprint: "cur"}, planFor("a"))
	// Invalidation advances the generation and prunes dead buckets.
	c.Invalidate()
	if got := c.Candidates(Key{Generation: 0, Registry: 1, Name: "v", Fingerprint: "x"}); len(got) != 0 {
		t.Fatalf("pre-invalidation bucket survived: %+v", got)
	}
	c.IndexPlan(Key{Generation: 1, Registry: 1, Name: "v", Fingerprint: "cur"}, planFor("a"))
	if got := c.Candidates(Key{Generation: 1, Registry: 1, Name: "v", Fingerprint: "x"}); len(got) != 1 {
		t.Fatalf("current-generation index broken after invalidate: %+v", got)
	}
}

func TestEntryCompleteAndTree(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	// An open frontier (hole after b) keeps the region incomplete.
	e.MergeTree(&xmltree.Tree{Label: "a", Children: []*xmltree.Tree{
		{Label: "b"}, xmltree.Hole("more"),
	}})
	if e.Complete() {
		t.Fatal("entry with unexplored frontier reports Complete")
	}
	if _, ok := e.Tree(); ok {
		t.Fatal("Tree() handed out a truncated region")
	}
	if wt := e.Export().Tree(); wt != nil {
		t.Fatalf("Region.Tree() of an incomplete region = %v, want nil", wt)
	}
	// Publishing the full materialization closes every child list.
	e.MergeTree(&xmltree.Tree{Label: "a", Children: []*xmltree.Tree{
		{Label: "b"}, {Label: "c"},
	}})
	if !e.Complete() {
		t.Fatal("fully explored entry not Complete")
	}
	tr, ok := e.Tree()
	if !ok || tr.Label != "a" || len(tr.Children) != 2 || tr.Children[1].Label != "c" {
		t.Fatalf("Tree() = %v, %v", tr, ok)
	}
	// Region.Tree mirrors Entry.Tree through the wire form.
	wt := e.Export().Tree()
	if wt == nil || !xmltree.Equal(wt, tr) {
		t.Fatalf("Region.Tree() = %v, want %v", wt, tr)
	}
}
