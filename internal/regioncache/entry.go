package regioncache

import (
	"strings"
	"sync"
	"sync/atomic"

	"mix/internal/xmltree"
)

// nodeBytes approximates the retained size of one cached node beyond its
// label: the struct, the child-slice slot in its parent, map overhead.
const nodeBytes = 48

// keyFixedBytes approximates the fixed retained size of one entry's key
// and bookkeeping beyond its strings: two uint64s, the map bucket slot,
// the Entry struct itself.
const keyFixedBytes = 96

// keyOverhead is the fixed retained size of an entry's key. Name and
// canonical-fingerprint content is interned through the cache's pool
// (see internKey) and charged once per distinct string to
// Stats.InternedBytes, so entries no longer re-carry — or re-count —
// their own copies. The one exception is an opaque fingerprint
// (Canonical's fallback): process-unique, never interned, so its bytes
// still ride on the entry that owns it.
func keyOverhead(k Key) int64 {
	o := int64(keyFixedBytes)
	if strings.HasPrefix(k.Fingerprint, opaquePrefix) {
		o += int64(len(k.Fingerprint))
	}
	return o
}

// Entry is the cached partial tree for one Key: labels and child-list
// prefixes of the explored region of a virtual answer document. An entry
// has no holes — what is known is a *prefix* of each child list plus a
// completeness bit, which is exactly what left-to-right DOM-VXD
// navigation discovers.
//
// All reads copy immutable values out under a read lock (copy-on-read);
// writers only ever extend the known region, and because an entry is
// pinned to one (generation, registry version), concurrent writers can
// only publish identical data — merge races are benign.
type Entry struct {
	key Key
	c   *Cache

	// lastUse is the cache clock at the last Entry() open; guarded by
	// c.mu (coarse LRU: touched per open, not per navigation).
	lastUse int64
	// dead marks an entry evicted from the cache map; sessions holding
	// it keep reading/writing (they stay self-consistent) but its bytes
	// no longer count against the budget.
	dead atomic.Bool

	// mut counts mutations that extended the known region; the cluster
	// L2 flusher uses it to skip entries unchanged since the last flush.
	mut atomic.Int64

	// full caches a true Complete() verdict; completeness is monotone,
	// so once set it never needs re-checking.
	full atomic.Bool

	// spec marks an entry created by a speculative prefetch rather than
	// by client demand. Speculative bytes are accounted in the cache's
	// separate speculative ledger and evicted first under pressure, so a
	// misprediction can never push a demand-loaded region out of budget.
	// The first demand open of the key promotes the entry (see
	// Cache.EntryAt); promotion is one-way, like completeness.
	spec atomic.Bool

	mu    sync.RWMutex
	root  *cnode
	bytes int64
}

// cnode is one node of the cached partial tree.
type cnode struct {
	label      string
	labelKnown bool
	kids       []*cnode // known prefix of the child list
	complete   bool     // kids is the entire child list
}

func newEntry(c *Cache, k Key) *Entry {
	return &Entry{key: k, c: c, root: &cnode{}, bytes: nodeBytes + keyOverhead(k)}
}

// Key returns the entry's identity.
func (e *Entry) Key() Key { return e.key }

// Speculative reports whether the entry is still speculation-funded:
// created by a prefetch and not yet opened by client demand.
func (e *Entry) Speculative() bool { return e.spec.Load() }

// Mutations returns the number of region-extending writes so far; a
// value unchanged since a previous call means the explored region is
// unchanged too.
func (e *Entry) Mutations() int64 { return e.mut.Load() }

// touch records one region-extending write.
func (e *Entry) touch() { e.mut.Add(1) }

// node walks the cached tree to path; nil if any step is unknown.
// Caller holds e.mu (read or write).
func (e *Entry) node(path []int) *cnode {
	n := e.root
	for _, i := range path {
		if i < 0 || i >= len(n.kids) {
			return nil
		}
		n = n.kids[i]
	}
	return n
}

// account publishes a byte delta to the owning cache (unless evicted),
// into the ledger matching the entry's current class. Caller must NOT
// hold e.mu. A delta raced by a concurrent promotion may land in the
// wrong ledger; the split is approximate by the same in-flight margin
// the dead-entry race already tolerates, while the total never drifts.
func (e *Entry) account(delta int64) {
	if delta == 0 || e.dead.Load() {
		return
	}
	e.c.addBytes(delta, e.spec.Load())
}

// lookupLabel returns the cached label of the node at path.
func (e *Entry) lookupLabel(path []int) (string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.node(path)
	if n == nil || !n.labelKnown {
		return "", false
	}
	return n.label, true
}

// storeLabel records the label of the node at path.
func (e *Entry) storeLabel(path []int, label string) {
	e.mu.Lock()
	var delta int64
	changed := false
	if n := e.node(path); n != nil && !n.labelKnown {
		n.label, n.labelKnown = label, true
		delta = int64(len(label))
		e.bytes += delta
		changed = true
	}
	e.mu.Unlock()
	if changed {
		e.touch()
	}
	e.account(delta)
}

// lookupChild reports whether the node at path has a child at index i:
// known=false means the cache cannot answer; otherwise ok reports
// existence. i==0 answers d, i==n+1 answers r from child n.
func (e *Entry) lookupChild(path []int, i int) (ok, known bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.node(path)
	if n == nil {
		return false, false
	}
	if i < len(n.kids) {
		return true, true
	}
	if n.complete {
		return false, true
	}
	return false, false
}

// storeChild records the outcome of navigating to child i of the node
// at path: exists extends the known prefix (only when i is exactly the
// frontier), !exists marks the child list complete at length i.
func (e *Entry) storeChild(path []int, i int, exists bool) {
	e.mu.Lock()
	var delta int64
	changed := false
	if n := e.node(path); n != nil && !n.complete {
		if exists && i == len(n.kids) {
			n.kids = append(n.kids, &cnode{})
			delta = nodeBytes
			e.bytes += delta
			changed = true
		} else if !exists && i == len(n.kids) {
			n.complete = true
			changed = true
		}
	}
	e.mu.Unlock()
	if changed {
		e.touch()
	}
	e.account(delta)
}

// MergeTree publishes a materialized fragment rooted at the entry's
// root into the cache. Hole children (xmltree.IsHole) and everything to
// their right are skipped — only the index-stable prefix of each child
// list is merged, and a child list with no hole is marked complete.
// This is the publication path for buffer prefetchers, whose open trees
// contain holes standing for zero or more unexplored siblings.
func (e *Entry) MergeTree(t *xmltree.Tree) {
	if t == nil || t.IsHole() {
		return
	}
	e.mu.Lock()
	before := e.bytes
	e.merge(e.root, t)
	delta := e.bytes - before
	e.mu.Unlock()
	e.touch()
	e.account(delta)
}

// merge folds t into n. Caller holds e.mu for writing.
func (e *Entry) merge(n *cnode, t *xmltree.Tree) {
	if !n.labelKnown {
		n.label, n.labelKnown = t.Label, true
		e.bytes += int64(len(t.Label))
	}
	stable := len(t.Children)
	for i, c := range t.Children {
		if c.IsHole() {
			stable = i
			break
		}
	}
	for i := 0; i < stable; i++ {
		if i == len(n.kids) {
			n.kids = append(n.kids, &cnode{})
			e.bytes += nodeBytes
		}
		e.merge(n.kids[i], t.Children[i])
	}
	if stable == len(t.Children) && !n.complete {
		n.complete = true
	}
}

// Snapshot returns a deep copy of the explored region as a tree, with a
// hole node appended to every incomplete child list — the same open-tree
// rendering the buffer component uses. Unexplored labels render as the
// empty string. It is an inspection/testing aid.
func (e *Entry) Snapshot() *xmltree.Tree {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return snapNode(e.root)
}

func snapNode(n *cnode) *xmltree.Tree {
	t := &xmltree.Tree{Label: n.label}
	for _, k := range n.kids {
		t.Children = append(t.Children, snapNode(k))
	}
	if !n.complete {
		t.Children = append(t.Children, xmltree.Hole("unexplored"))
	}
	return t
}
