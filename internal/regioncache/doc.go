package regioncache

import (
	"fmt"
	"strconv"
	"sync"

	"mix/internal/nav"
)

// Doc is the cache-aware nav.Document installed at the answer boundary:
// it answers d/r/f from the shared Entry when the region is cached (a
// hit costs zero navigations on the wrapped document) and falls through
// to the wrapped lazy document on a miss, publishing what it learns.
//
// Node-ids are paths from the answer root. On the miss path the wrapped
// document's own ids are resolved lazily: the Doc replays d/r commands
// from the deepest already-resolved ancestor, so a session that reached
// a frontier purely through cache hits pays the replay cost only when —
// and where — it actually crosses the frontier. Resolved inner ids are
// memoized per Doc (per session), never shared.
//
// A Doc is safe for concurrent use, but the wrapped document is driven
// under the Doc's lock: sessions own their wrapped engine exclusively,
// exactly as without the cache.
type Doc struct {
	entry *Entry
	inner nav.Document

	// Observe, when non-nil, is called for every command answered, with
	// the DOM-VXD op name and whether it was a cache hit. The compiler
	// wires this to the navigation tracer so hits/misses show up in
	// span forests.
	Observe func(op string, hit bool)

	mu  sync.Mutex
	ids map[string]nav.ID // pathKey → resolved inner id
}

// NewDoc wraps inner with the shared entry. A nil entry or nil inner is
// a programming error.
func NewDoc(entry *Entry, inner nav.Document) *Doc {
	return &Doc{entry: entry, inner: inner, ids: map[string]nav.ID{}}
}

// Wrap returns the cache-aware document for (name, fingerprint,
// registry) over inner, sharing the entry with every other Wrap of the
// same key in the current generation. A nil Cache returns inner
// unchanged, so callers can wire the cache unconditionally.
func (c *Cache) Wrap(name, fingerprint string, registry uint64, inner nav.Document) nav.Document {
	if c == nil {
		return inner
	}
	return NewDoc(c.Entry(name, fingerprint, registry), inner)
}

// Entry returns the shared entry this document reads and writes.
func (d *Doc) Entry() *Entry { return d.entry }

// Unwrap returns the wrapped document (see nav.Wrapper).
func (d *Doc) Unwrap() nav.Document { return d.inner }

// rid is the Doc's node-id: the path from the answer root.
type rid struct {
	d    *Doc
	path []int
}

func pathKey(path []int) string {
	k := ""
	for _, i := range path {
		k += "/" + strconv.Itoa(i)
	}
	return k
}

func (d *Doc) id(p nav.ID) (*rid, error) {
	r, ok := p.(*rid)
	if !ok || r == nil || r.d != d {
		return nil, fmt.Errorf("%w: %T", nav.ErrForeignID, p)
	}
	return r, nil
}

func (d *Doc) observe(op nav.Op, hit bool) {
	if hit {
		d.entry.c.hits.Add(1)
	} else {
		d.entry.c.misses.Add(1)
	}
	if d.Observe != nil {
		d.Observe(string(op), hit)
	}
}

// Root implements nav.Document. Like the lazy engine's own root, it
// performs no navigation at all — the inner root is resolved on first
// miss.
func (d *Doc) Root() (nav.ID, error) {
	return &rid{d: d}, nil
}

// resolve returns the inner document's id for r, replaying d/r commands
// from the deepest resolved ancestor. Caller holds d.mu.
func (d *Doc) resolve(r *rid) (nav.ID, error) {
	pk := pathKey(r.path)
	if id, ok := d.ids[pk]; ok {
		return id, nil
	}
	// Deepest resolved ancestor (the root resolves via inner.Root).
	depth := len(r.path)
	var cur nav.ID
	for ; depth > 0; depth-- {
		if id, ok := d.ids[pathKey(r.path[:depth])]; ok {
			cur = id
			break
		}
	}
	if cur == nil {
		root, err := d.inner.Root()
		if err != nil {
			return nil, err
		}
		if root == nil {
			return nil, fmt.Errorf("regioncache: wrapped document has no root")
		}
		cur = root
		d.ids[""] = cur
	}
	for lvl := depth; lvl < len(r.path); lvl++ {
		idx := r.path[lvl]
		next, err := d.inner.Down(cur)
		if err != nil {
			return nil, err
		}
		for j := 0; j < idx && next != nil; j++ {
			next, err = d.inner.Right(next)
			if err != nil {
				return nil, err
			}
		}
		if next == nil {
			// The cache says this node exists but the session's own
			// engine disagrees: the underlying sources changed without a
			// generation bump.
			return nil, fmt.Errorf("regioncache: document diverged from cache at %s (missing registry invalidation?)", pathKey(r.path[:lvl+1]))
		}
		cur = next
		d.ids[pathKey(r.path[:lvl+1])] = cur
	}
	return cur, nil
}

// childPath allocates the path of child i under path.
func childPath(path []int, i int) []int {
	return append(append(make([]int, 0, len(path)+1), path...), i)
}

// Down implements nav.Document.
func (d *Doc) Down(p nav.ID) (nav.ID, error) {
	r, err := d.id(p)
	if err != nil {
		return nil, err
	}
	if ok, known := d.entry.lookupChild(r.path, 0); known {
		d.observe(nav.OpDown, true)
		if !ok {
			return nil, nil
		}
		return &rid{d: d, path: childPath(r.path, 0)}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	base, err := d.resolve(r)
	if err != nil {
		return nil, err
	}
	child, err := d.inner.Down(base)
	if err != nil {
		return nil, err
	}
	d.observe(nav.OpDown, false)
	if child == nil {
		d.entry.storeChild(r.path, 0, false)
		return nil, nil
	}
	cp := childPath(r.path, 0)
	d.ids[pathKey(cp)] = child
	d.entry.storeChild(r.path, 0, true)
	return &rid{d: d, path: cp}, nil
}

// Right implements nav.Document.
func (d *Doc) Right(p nav.ID) (nav.ID, error) {
	r, err := d.id(p)
	if err != nil {
		return nil, err
	}
	if len(r.path) == 0 {
		return nil, nil // the answer root has no siblings
	}
	parent, i := r.path[:len(r.path)-1], r.path[len(r.path)-1]
	if ok, known := d.entry.lookupChild(parent, i+1); known {
		d.observe(nav.OpRight, true)
		if !ok {
			return nil, nil
		}
		return &rid{d: d, path: childPath(parent, i+1)}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	base, err := d.resolve(r)
	if err != nil {
		return nil, err
	}
	sib, err := d.inner.Right(base)
	if err != nil {
		return nil, err
	}
	d.observe(nav.OpRight, false)
	if sib == nil {
		d.entry.storeChild(parent, i+1, false)
		return nil, nil
	}
	sp := childPath(parent, i+1)
	d.ids[pathKey(sp)] = sib
	d.entry.storeChild(parent, i+1, true)
	return &rid{d: d, path: sp}, nil
}

// Fetch implements nav.Document.
func (d *Doc) Fetch(p nav.ID) (string, error) {
	r, err := d.id(p)
	if err != nil {
		return "", err
	}
	if label, ok := d.entry.lookupLabel(r.path); ok {
		d.observe(nav.OpFetch, true)
		d.entry.c.bytesSaved.Add(int64(len(label)))
		return label, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	base, err := d.resolve(r)
	if err != nil {
		return "", err
	}
	label, err := d.inner.Fetch(base)
	if err != nil {
		return "", err
	}
	d.observe(nav.OpFetch, false)
	d.entry.storeLabel(r.path, label)
	return label, nil
}
