package regioncache

import (
	"fmt"
	"sync"
	"testing"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

func sampleTree() *xmltree.Tree {
	return xmltree.Elem("bs",
		xmltree.Elem("b", xmltree.Elem("home", xmltree.Leaf("h1")), xmltree.Elem("school", xmltree.Leaf("s1"))),
		xmltree.Elem("b", xmltree.Elem("home", xmltree.Leaf("h2")), xmltree.Elem("school", xmltree.Leaf("s2"))),
		xmltree.Elem("b", xmltree.Elem("home", xmltree.Leaf("h3"))),
	)
}

// explore walks doc depth-first and returns the fully materialized tree.
func explore(t *testing.T, doc nav.Document) *xmltree.Tree {
	t.Helper()
	root, err := doc.Root()
	if err != nil {
		t.Fatalf("root: %v", err)
	}
	var walk func(id nav.ID) *xmltree.Tree
	walk = func(id nav.ID) *xmltree.Tree {
		label, err := doc.Fetch(id)
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		out := &xmltree.Tree{Label: label}
		c, err := doc.Down(id)
		if err != nil {
			t.Fatalf("down: %v", err)
		}
		for c != nil {
			out.Children = append(out.Children, walk(c))
			c, err = doc.Right(c)
			if err != nil {
				t.Fatalf("right: %v", err)
			}
		}
		return out
	}
	return walk(root)
}

func TestColdThenWarmZeroInnerNavigations(t *testing.T) {
	c := New(0)
	entry := c.Entry("v", "fp", 1)

	cold := nav.NewCountingDoc(nav.NewTreeDoc(sampleTree()))
	got := explore(t, NewDoc(entry, cold))
	if !xmltree.Equal(got, sampleTree()) {
		t.Fatalf("cold explore mismatch:\n%s", got)
	}
	if cold.Counters.Navigations() == 0 {
		t.Fatal("cold session performed no inner navigations")
	}

	// A second session over the same entry: every command is a hit.
	warm := nav.NewCountingDoc(nav.NewTreeDoc(sampleTree()))
	got2 := explore(t, NewDoc(entry, warm))
	if !xmltree.Equal(got2, sampleTree()) {
		t.Fatalf("warm explore mismatch:\n%s", got2)
	}
	if n := warm.Counters.Navigations(); n != 0 {
		t.Fatalf("warm session performed %d inner navigations, want 0", n)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.BytesSaved == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}

func TestPartialExplorationResolvesFrontierOnly(t *testing.T) {
	c := New(0)
	entry := c.Entry("v", "fp", 1)

	// Session 1 explores only the first b element.
	d1 := NewDoc(entry, nav.NewTreeDoc(sampleTree()))
	root, _ := d1.Root()
	b1, _ := d1.Down(root)
	h1, _ := d1.Down(b1)
	if l, _ := d1.Fetch(h1); l != "home" {
		t.Fatalf("fetch = %q", l)
	}

	// Session 2 walks past the cached frontier; the inner doc is only
	// consulted where the cache runs out.
	warm := nav.NewCountingDoc(nav.NewTreeDoc(sampleTree()))
	d2 := NewDoc(entry, warm)
	root2, _ := d2.Root()
	b, _ := d2.Down(root2)                 // hit
	h, _ := d2.Down(b)                     // hit
	if _, err := d2.Fetch(h); err != nil { // hit
		t.Fatal(err)
	}
	if n := warm.Counters.Navigations(); n != 0 {
		t.Fatalf("within cached region: %d inner navigations, want 0", n)
	}
	sib, err := d2.Right(h) // miss: resolve h (root+d) + one r
	if err != nil || sib == nil {
		t.Fatalf("right: %v %v", sib, err)
	}
	if warm.Counters.Right.Load() != 1 {
		t.Fatalf("frontier Right billed %d inner r, want 1", warm.Counters.Right.Load())
	}
}

func TestInvalidateSeparatesGenerations(t *testing.T) {
	c := New(0)
	e1 := c.Entry("v", "fp", 1)
	e1.storeLabel(nil, "bs")
	if g := c.Invalidate(); g != 1 {
		t.Fatalf("generation = %d", g)
	}
	if !e1.dead.Load() {
		t.Fatal("old-generation entry not dropped")
	}
	e2 := c.Entry("v", "fp", 1)
	if e2 == e1 {
		t.Fatal("new generation reused the dropped entry")
	}
	if _, ok := e2.lookupLabel(nil); ok {
		t.Fatal("fresh entry carries old data")
	}
	// Detached entries stay readable and writable for their sessions.
	if l, ok := e1.lookupLabel(nil); !ok || l != "bs" {
		t.Fatal("detached entry lost its data")
	}
	e1.storeLabel([]int{0}, "x") // must not panic or corrupt accounting
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestRegistryVersionSeparatesEntries(t *testing.T) {
	c := New(0)
	if c.Entry("v", "fp", 1) == c.Entry("v", "fp", 2) {
		t.Fatal("different registry versions share an entry")
	}
	if c.Entry("v", "fp", 1) != c.Entry("v", "fp", 1) {
		t.Fatal("same key does not share an entry")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(200) // tiny budget: a few nodes
	old := c.Entry("old", "fp", 1)
	d1 := NewDoc(old, nav.NewTreeDoc(sampleTree()))
	explore(t, d1)
	hot := c.Entry("hot", "fp", 1)
	d2 := NewDoc(hot, nav.NewTreeDoc(sampleTree()))
	explore(t, d2)
	if !old.dead.Load() {
		t.Fatal("LRU entry not evicted under budget pressure")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if c.maxBytes > 0 && st.Bytes > c.maxBytes+nodeBytes {
		t.Fatalf("bytes %d way over budget %d", st.Bytes, c.maxBytes)
	}
}

func TestMergeTreeSkipsHolesAndRightSiblings(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	open := xmltree.Elem("bs",
		xmltree.Elem("b", xmltree.Elem("home", xmltree.Leaf("h1"))),
		xmltree.Hole("h"),
		xmltree.Elem("b", xmltree.Elem("home", xmltree.Leaf("h2"))),
	)
	e.MergeTree(open)

	// The prefix before the hole is merged...
	if ok, known := e.lookupChild(nil, 0); !ok || !known {
		t.Fatal("first child not merged")
	}
	if l, ok := e.lookupLabel([]int{0, 0, 0}); !ok || l != "h1" {
		t.Fatalf("deep label = %q %v", l, ok)
	}
	// ...the hole and everything right of it are not (indices unstable).
	if _, known := e.lookupChild(nil, 1); known {
		t.Fatal("child at the hole position merged")
	}
	// A hole-free child list is complete.
	if ok, known := e.lookupChild([]int{0}, 1); ok || !known {
		t.Fatalf("complete child list: ok=%v known=%v, want absent+known", ok, known)
	}
}

func TestSnapshotRendersOpenTree(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	d := NewDoc(e, nav.NewTreeDoc(sampleTree()))
	root, _ := d.Root()
	d.Fetch(root)
	b, _ := d.Down(root)
	d.Fetch(b)
	snap := e.Snapshot()
	if snap.Label != "bs" || len(snap.Children) != 2 {
		t.Fatalf("snapshot: %s", snap)
	}
	if !snap.Children[1].IsHole() {
		t.Fatal("incomplete child list not rendered with a hole")
	}
}

func TestDivergenceDetected(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	// The cache knows a child exists...
	e.storeChild(nil, 0, true)
	// ...but the session's own document is a lone leaf.
	d := NewDoc(e, nav.NewTreeDoc(xmltree.Elem("bs")))
	root, _ := d.Root()
	child, err := d.Down(root) // hit: served from cache
	if err != nil || child == nil {
		t.Fatalf("down: %v %v", child, err)
	}
	if _, err := d.Fetch(child); err == nil {
		t.Fatal("fetching a node the engine cannot produce should report divergence")
	}
}

func TestForeignID(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	d := NewDoc(e, nav.NewTreeDoc(sampleTree()))
	if _, err := d.Down("nonsense"); err == nil {
		t.Fatal("foreign id accepted")
	}
	other := NewDoc(e, nav.NewTreeDoc(sampleTree()))
	oroot, _ := other.Root()
	if _, err := d.Down(oroot); err == nil {
		t.Fatal("id of another Doc accepted")
	}
}

func TestConcurrentSessionsConsistent(t *testing.T) {
	c := New(0)
	want := sampleTree()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entry := c.Entry("v", "fp", 1)
			doc := NewDoc(entry, nav.NewTreeDoc(sampleTree()))
			root, err := doc.Root()
			if err != nil {
				errs <- err
				return
			}
			got, err := materialize(doc, root)
			if err != nil {
				errs <- err
				return
			}
			if !xmltree.Equal(got, want) {
				errs <- fmt.Errorf("concurrent explore mismatch:\n%s", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func materialize(doc nav.Document, id nav.ID) (*xmltree.Tree, error) {
	label, err := doc.Fetch(id)
	if err != nil {
		return nil, err
	}
	out := &xmltree.Tree{Label: label}
	c, err := doc.Down(id)
	if err != nil {
		return nil, err
	}
	for c != nil {
		kid, err := materialize(doc, c)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, kid)
		c, err = doc.Right(c)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func TestFingerprintCanonicalAcrossVariablePrefixes(t *testing.T) {
	mk := func(prefix string) algebra.Op {
		return &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "s", Var: prefix + "X"},
			Parent: prefix + "X",
			Path:   pathexpr.MustParse("_"),
			Out:    prefix + "Y",
		}
	}
	a, b := Fingerprint(mk("view1~")), Fingerprint(mk("view2~"))
	if a != b {
		t.Fatalf("fingerprints differ:\n%s\n%s", a, b)
	}
	if a == Fingerprint(&algebra.Source{URL: "other", Var: "X"}) {
		t.Fatal("distinct plans share a fingerprint")
	}
}

func TestNilCacheWrapPassthrough(t *testing.T) {
	var c *Cache
	inner := nav.NewTreeDoc(sampleTree())
	if got := c.Wrap("v", "fp", 1, inner); got != nav.Document(inner) {
		t.Fatal("nil cache must return the inner document unchanged")
	}
}
