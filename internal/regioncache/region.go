package regioncache

// Region is the wire-portable rendering of an entry's explored region:
// the cnode tree with its labelKnown/complete bits made explicit, so a
// peer can merge exactly what this node knows — no more, no less. It is
// the payload of the cluster L2 protocol's region_get/region_put ops
// (see internal/cluster and the vxdp region commands); JSON tags are
// single letters because region frames carry whole explored subtrees.
//
// Unlike Entry.Snapshot's open-tree rendering, a Region distinguishes
// "label unknown" from "label is the empty string", and "child list
// complete" from "more children may exist" — the two bits the cache's
// correctness rests on.
type Region struct {
	// Label is the node's label, meaningful only when Known.
	Label string `json:"l,omitempty"`
	// Known reports that Label was actually fetched.
	Known bool `json:"k,omitempty"`
	// Kids is the known prefix of the child list.
	Kids []*Region `json:"c,omitempty"`
	// Complete reports that Kids is the entire child list.
	Complete bool `json:"z,omitempty"`
}

// maxRegionDepth bounds Merge recursion so a hostile or corrupted peer
// frame cannot overflow the stack. Deeper tails are simply dropped —
// the cache then treats them as unexplored, which is always safe.
const maxRegionDepth = 512

// Nodes returns the number of nodes in the region (bounded walk, for
// stats and tests).
func (r *Region) Nodes() int {
	if r == nil {
		return 0
	}
	n := 1
	for _, k := range r.Kids {
		n += k.Nodes()
	}
	return n
}

// Equal reports structural equality of two regions (testing aid).
func (r *Region) Equal(o *Region) bool {
	if r == nil || o == nil {
		return r == nil && o == nil
	}
	if r.Known != o.Known || r.Complete != o.Complete || len(r.Kids) != len(o.Kids) {
		return false
	}
	if r.Known && r.Label != o.Label {
		return false
	}
	for i := range r.Kids {
		if !r.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// Export renders the entry's explored region for the wire. The result
// shares no memory with the entry (labels are immutable strings; the
// node structure is freshly allocated).
func (e *Entry) Export() *Region {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return exportNode(e.root)
}

func exportNode(n *cnode) *Region {
	r := &Region{Label: n.label, Known: n.labelKnown, Complete: n.complete}
	if len(n.kids) > 0 {
		r.Kids = make([]*Region, len(n.kids))
		for i, k := range n.kids {
			r.Kids[i] = exportNode(k)
		}
	}
	return r
}

// Empty reports whether the region carries no information beyond an
// unexplored root — the export of a freshly created entry.
func (r *Region) Empty() bool {
	return r == nil || (!r.Known && !r.Complete && len(r.Kids) == 0)
}

// Merge folds a peer's region into the entry, extending what is known
// and never contradicting it: labels only fill in where unknown, child
// lists only grow, completeness only switches on. Because both sides
// derived from the same (generation, registry version, view,
// fingerprint) answer document, concurrent merges can only agree —
// exactly the benign-race argument of MergeTree.
func (e *Entry) Merge(r *Region) {
	if r == nil {
		return
	}
	e.mu.Lock()
	before := e.bytes
	e.mergeRegion(e.root, r, 0)
	delta := e.bytes - before
	e.mu.Unlock()
	e.touch()
	e.account(delta)
}

func (e *Entry) mergeRegion(n *cnode, r *Region, depth int) {
	if depth > maxRegionDepth {
		return
	}
	if r.Known && !n.labelKnown {
		n.label, n.labelKnown = r.Label, true
		e.bytes += int64(len(r.Label))
	}
	for i, k := range r.Kids {
		if i == len(n.kids) {
			n.kids = append(n.kids, &cnode{})
			e.bytes += nodeBytes
		}
		e.mergeRegion(n.kids[i], k, depth+1)
	}
	if r.Complete && !n.complete {
		n.complete = true
	}
}
