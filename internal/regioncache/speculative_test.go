package regioncache

import (
	"testing"
)

// fill writes n labels into distinct children of the entry's root so its
// accounted bytes grow deterministically.
func fill(e *Entry, n int) {
	for i := 0; i < n; i++ {
		e.storeChild(nil, i, true)
		e.storeLabel([]int{i}, "xxxxxxxxxxxxxxxx")
	}
}

func TestSpeculativeLedgerSeparate(t *testing.T) {
	c := New(0)
	d := c.Entry("demand", "fp-d", 1)
	s := c.EntryAtSpeculative(c.Generation(), "spec", "fp-s", 1)
	if d.Speculative() || !s.Speculative() {
		t.Fatalf("classes: demand=%v spec=%v", d.Speculative(), s.Speculative())
	}
	fill(d, 3)
	fill(s, 5)
	st := c.Stats()
	if st.SpecEntries != 1 {
		t.Fatalf("SpecEntries = %d; want 1", st.SpecEntries)
	}
	if st.SpecBytes <= 0 || st.Bytes <= 0 {
		t.Fatalf("ledgers: bytes=%d specBytes=%d; both must be positive", st.Bytes, st.SpecBytes)
	}
	// The ledgers partition the total exactly (no concurrency here).
	want := int64(0)
	c.mu.Lock()
	for _, e := range c.entries {
		e.mu.Lock()
		want += e.bytes
		e.mu.Unlock()
	}
	c.mu.Unlock()
	if st.Bytes+st.SpecBytes != want {
		t.Fatalf("bytes %d + specBytes %d != entry total %d", st.Bytes, st.SpecBytes, want)
	}
}

func TestDemandOpenPromotesSpeculativeEntry(t *testing.T) {
	c := New(0)
	s := c.EntryAtSpeculative(c.Generation(), "v", "fp", 1)
	fill(s, 4)
	before := c.Stats()
	if before.SpecEntries != 1 || before.SpecBytes == 0 {
		t.Fatalf("pre-promotion stats: %+v", before)
	}
	d := c.Entry("v", "fp", 1)
	if d != s {
		t.Fatal("demand open returned a different entry for the same key")
	}
	if d.Speculative() {
		t.Fatal("demand open left the entry speculative")
	}
	after := c.Stats()
	if after.SpecEntries != 0 || after.SpecBytes != 0 {
		t.Fatalf("post-promotion spec ledger not empty: %+v", after)
	}
	if after.Bytes != before.Bytes+before.SpecBytes {
		t.Fatalf("promotion lost bytes: before %+v, after %+v", before, after)
	}
	// Later growth lands in the demand ledger.
	fill(d, 8)
	grown := c.Stats()
	if grown.SpecBytes != 0 || grown.Bytes <= after.Bytes {
		t.Fatalf("post-promotion growth: %+v", grown)
	}
}

func TestSpeculativeNeverDemotesDemandEntry(t *testing.T) {
	c := New(0)
	d := c.Entry("v", "fp", 1)
	s := c.EntryAtSpeculative(c.Generation(), "v", "fp", 1)
	if s != d {
		t.Fatal("speculative open returned a different entry for the same key")
	}
	if s.Speculative() {
		t.Fatal("speculative open demoted a demand entry")
	}
	if st := c.Stats(); st.SpecEntries != 0 || st.SpecBytes != 0 {
		t.Fatalf("spec ledger charged for a demand entry: %+v", st)
	}
}

func TestSpeculativeEvictedFirst(t *testing.T) {
	// Budget sized so that adding a speculative entry after two demand
	// entries overflows: the speculative one must be the casualty even
	// though it is the most recently opened.
	c := New(0)
	d1 := c.Entry("d1", "fp1", 1)
	d2 := c.Entry("d2", "fp2", 1)
	fill(d1, 4)
	fill(d2, 4)
	base := c.Stats()
	c.maxBytes = base.Bytes + 10 // room for nothing more
	s := c.EntryAtSpeculative(c.Generation(), "s1", "fps", 1)
	fill(s, 4)
	st := c.Stats()
	if st.SpecEntries != 0 || st.SpecBytes != 0 {
		t.Fatalf("speculative entry survived pressure: %+v", st)
	}
	if c.Peek(d1.Key()) == nil || c.Peek(d2.Key()) == nil {
		t.Fatal("a demand entry was evicted while a speculative one existed")
	}
	if c.Peek(s.Key()) != nil {
		t.Fatal("speculative entry still live over budget")
	}
	if !s.dead.Load() {
		t.Fatal("evicted speculative entry not marked dead")
	}
}

func TestDemandLRUStillAppliesAfterSpecExhausted(t *testing.T) {
	c := New(0)
	d1 := c.Entry("d1", "fp1", 1)
	fill(d1, 4)
	d2 := c.Entry("d2", "fp2", 1)
	fill(d2, 4)
	// No speculative entries: over budget, the least recently opened
	// demand entry (d1) goes, exactly as before the two-class split.
	c.mu.Lock()
	c.maxBytes = c.bytes - 1
	c.evictOverLocked()
	c.mu.Unlock()
	if c.Peek(d1.Key()) != nil {
		t.Fatal("LRU demand entry survived")
	}
	if c.Peek(d2.Key()) == nil {
		t.Fatal("MRU demand entry evicted before LRU one")
	}
}

func TestSpeculativeStaleGenerationDetached(t *testing.T) {
	c := New(0)
	gen := c.Generation()
	c.Invalidate()
	e := c.EntryAtSpeculative(gen, "v", "fp", 1)
	if !e.dead.Load() {
		t.Fatal("stale-generation speculative entry not detached")
	}
	fill(e, 3)
	if st := c.Stats(); st.SpecBytes != 0 || st.Entries != 0 {
		t.Fatalf("detached speculative entry leaked into the cache: %+v", st)
	}
}

func TestInvalidateDropsSpeculativeLedger(t *testing.T) {
	c := New(0)
	s := c.EntryAtSpeculative(c.Generation(), "v", "fp", 1)
	fill(s, 3)
	c.Invalidate()
	if st := c.Stats(); st.SpecEntries != 0 || st.SpecBytes != 0 {
		t.Fatalf("spec ledger survived invalidation: %+v", st)
	}
}
