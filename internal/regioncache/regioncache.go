// Package regioncache implements a cross-session shared cache of
// *explored regions* of virtual answer documents.
//
// The paper's lazy mediators evaluate a view only as far as one client's
// navigation demands — but they re-derive every explored fragment for
// every client. At scale (the ROADMAP's millions-of-users north star)
// redundant source navigations across sessions dominate: N clients
// glancing at the first results of the same view each pay the full
// join/descent cost. The region cache makes concurrent sessions cheaper
// than linear: the first session to explore a region of an answer
// document publishes what it saw, and every later session navigating the
// same region is answered from the cache with *zero* source navigations.
//
// # Key scheme
//
// Cached regions are keyed by
//
//	(generation, registry version, view name, canonical plan fingerprint)
//
// plus, within an entry, the node's *path* — the sequence of child
// indices from the answer root. The generation is the cache's
// invalidation epoch (bumped when the mediator's source registry
// changes); the registry version counts source registrations on the
// compiling engine; the fingerprint is the canonical rendering of the
// final algebra plan with variables renamed to a deterministic order, so
// the same query text compiled by different mediator instances (whose
// fresh-variable counters differ) maps to the same entry.
//
// # Copy-on-read, never the lazy streams
//
// An entry stores plain labels and child-count structure — an "open
// tree" like the buffer component's, but without holes: what is known is
// a prefix of each child list plus a completeness bit. Serving a hit
// copies immutable strings out of the entry and never touches any
// session's single-consumer lazy streams; a miss drives the session's
// own engine (exactly what an uncached client would have done) and then
// publishes the result. Because every entry is pinned to one
// (generation, registry version) pair, concurrent sessions can only
// publish identical answers, so merge races are benign.
//
// # Invalidation, never staleness
//
// Invalidate bumps the generation and drops every older entry. Sessions
// that opened a view before the bump keep their (now unreachable) entry
// and stay consistent with their own engine's sources; sessions opened
// after the bump start a fresh entry. A cache can therefore serve stale
// *sessions*, but never a stale *answer*: a hit always agrees with what
// the session's own engine would have derived.
package regioncache

import (
	"sort"
	"sync"
	"sync/atomic"

	"mix/internal/xmltree"
)

// Key identifies one cached virtual document region (see the package
// comment for the key scheme).
type Key struct {
	// Generation is the cache invalidation epoch the entry was created
	// in; entries from older generations are never served to new opens.
	Generation uint64
	// Registry is the compiling engine's source-registry version.
	Registry uint64
	// Name names the view(s) the plan was composed from ("" for plain
	// queries).
	Name string
	// Fingerprint is the canonical plan fingerprint (Fingerprint).
	Fingerprint string
}

// Remote is the second cache tier behind this (L1) cache: typically the
// cluster peer that owns a key's region under consistent-hash routing
// (see internal/cluster). Fetch is called once per locally created
// entry, outside any cache lock, with the entry's exact key — including
// its generation, so a pinned-generation session can never be answered
// with data from a different epoch. A nil result is a miss; the caller
// falls back to its own lazy engine and sources.
type Remote interface {
	Fetch(k Key) *Region
}

// Cache is a concurrency-safe, cross-session region cache. The zero
// value is not usable; create with New.
type Cache struct {
	maxBytes int64

	gen atomic.Uint64

	hits       atomic.Int64
	misses     atomic.Int64
	bytesSaved atomic.Int64
	evictions  atomic.Int64

	semHits            atomic.Int64
	semMisses          atomic.Int64
	semCandidates      atomic.Int64
	semIncompleteSkips atomic.Int64

	remoteMu sync.RWMutex
	remote   Remote

	// intern deduplicates key strings (view names, fingerprints) across
	// entries and the plan index; internBytes is the pool's content
	// size, charged once per distinct string and never released (see
	// internStr).
	intern      *xmltree.Interner
	internMu    sync.Mutex
	internBytes int64

	// plans is the semantic plan index (see planindex.go).
	planMu sync.Mutex
	plans  map[bucketKey][]PlanEntry

	mu      sync.Mutex
	clock   int64
	bytes   int64 // demand-class retained bytes
	// specBytes is the speculative ledger: bytes retained by entries a
	// prefetch created that no demand open has touched yet. The byte
	// budget covers bytes+specBytes, but eviction spends the speculative
	// ledger first (see evictOverLocked), so speculation can never push
	// demand-loaded regions out.
	specBytes   int64
	specEntries int
	entries     map[Key]*Entry
}

// New returns an empty cache. maxBytes caps the approximate retained
// size; when exceeded, least-recently-opened entries are evicted whole.
// maxBytes <= 0 means unlimited.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[Key]*Entry{},
		intern:   xmltree.NewInterner(),
		plans:    map[bucketKey][]PlanEntry{},
	}
}

// Generation returns the current invalidation epoch.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// SetRemote installs the second cache tier consulted when an entry is
// first created locally (nil — the default — keeps the cache purely
// in-process). Install before serving; Fetch may be called from any
// session goroutine.
func (c *Cache) SetRemote(r Remote) {
	c.remoteMu.Lock()
	c.remote = r
	c.remoteMu.Unlock()
}

// fetchRemote fills a freshly created entry from the remote tier, if
// one is installed. Runs outside c.mu; Merge is concurrency-safe and
// can only extend the entry, so racing sessions stay correct.
func (c *Cache) fetchRemote(e *Entry) {
	c.remoteMu.RLock()
	r := c.remote
	c.remoteMu.RUnlock()
	if r == nil {
		return
	}
	if reg := r.Fetch(e.key); reg != nil {
		e.Merge(reg)
	}
}

// Invalidate bumps the generation and drops every entry created under an
// older one. Call it whenever the source registry feeding the cached
// views changes (new source data, replaced registration); sessions
// opened afterwards re-derive and re-publish against the new epoch. It
// returns the new generation.
func (c *Cache) Invalidate() uint64 {
	g := c.gen.Add(1)
	c.dropBelow(g)
	return g
}

// AdvanceTo raises the generation to gen — the form of invalidation a
// cluster peer's broadcast carries, so every node lands on the *same*
// epoch and region keys keep lining up across the fleet. It reports
// whether the generation actually advanced; gen at or below the current
// one is a no-op (broadcast echoes converge instead of ping-ponging).
func (c *Cache) AdvanceTo(gen uint64) bool {
	for {
		cur := c.gen.Load()
		if gen <= cur {
			return false
		}
		if c.gen.CompareAndSwap(cur, gen) {
			break
		}
	}
	c.dropBelow(gen)
	return true
}

// dropBelow drops every entry — and every plan-index bucket — created
// under a generation older than g.
func (c *Cache) dropBelow(g uint64) {
	c.mu.Lock()
	for k, e := range c.entries {
		if k.Generation < g {
			c.dropLocked(k, e)
		}
	}
	c.mu.Unlock()
	c.prunePlansBelow(g)
}

// Entry returns the shared entry for (name, fingerprint) under the
// current generation and the given registry version, creating it if
// needed. The entry is what cache-aware documents and buffer publishers
// read and write.
func (c *Cache) Entry(name, fingerprint string, registry uint64) *Entry {
	return c.EntryAt(c.gen.Load(), name, fingerprint, registry)
}

// EntryAt is Entry pinned to a generation sampled earlier — at
// engine-build time, not at query-open time. An engine built before an
// Invalidate that opens a view afterwards must not publish its (now
// stale) derivations where fresh engines read, so when gen is no longer
// current the entry returned is *detached*: private to the caller,
// unaccounted, and never shared through the cache map. The stale
// session stays self-consistent; nobody else sees its data.
func (c *Cache) EntryAt(gen uint64, name, fingerprint string, registry uint64) *Entry {
	k := c.internKey(Key{Generation: gen, Registry: registry, Name: name, Fingerprint: fingerprint})
	if gen != c.gen.Load() {
		e := newEntry(c, k)
		e.dead.Store(true)
		// A pinned-generation session may still fill from a peer that
		// has not invalidated yet: the key carries the generation, so
		// the peer either has exactly this epoch's region or misses.
		c.fetchRemote(e)
		return e
	}
	c.mu.Lock()
	e, ok := c.entries[k]
	created := !ok
	if created {
		e = newEntry(c, k)
		c.entries[k] = e
		// Account the entry's fixed footprint — root node plus key
		// overhead (name + fingerprint bytes) — at creation, so budget
		// math is symmetric with the subtraction in dropLocked and
		// comparable across nodes.
		c.bytes += e.bytes
		c.evictOverLocked()
	} else if e.spec.Load() {
		// Demand reached a speculatively created entry: the prediction
		// paid off. Promote it to the demand class so it stops losing
		// eviction fights, moving its accounted bytes between ledgers.
		c.promoteLocked(e)
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()
	if created {
		c.fetchRemote(e)
	}
	return e
}

// EntryAtSpeculative is EntryAt for the speculative drain worker: an
// entry it creates is marked speculative — accounted in the separate
// speculative ledger and evicted first under pressure — until a demand
// open promotes it. An entry that already exists keeps its class:
// speculation can never demote demand-loaded data. Stale generations
// detach exactly like EntryAt, so a lagging speculation publishes
// nowhere shared.
func (c *Cache) EntryAtSpeculative(gen uint64, name, fingerprint string, registry uint64) *Entry {
	k := c.internKey(Key{Generation: gen, Registry: registry, Name: name, Fingerprint: fingerprint})
	if gen != c.gen.Load() {
		e := newEntry(c, k)
		e.dead.Store(true)
		e.spec.Store(true)
		return e
	}
	c.mu.Lock()
	e, ok := c.entries[k]
	created := !ok
	if created {
		e = newEntry(c, k)
		e.spec.Store(true)
		c.entries[k] = e
		c.specBytes += e.bytes
		c.specEntries++
		c.evictOverLocked()
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()
	if created {
		c.fetchRemote(e)
	}
	return e
}

// promoteLocked reclassifies a speculative entry as demand-loaded,
// moving its accounted bytes from the speculative ledger to the demand
// ledger. Caller holds c.mu; c.mu → e.mu is the established order.
func (c *Cache) promoteLocked(e *Entry) {
	e.mu.Lock()
	b := e.bytes
	e.mu.Unlock()
	e.spec.Store(false)
	c.specBytes -= b
	c.bytes += b
	c.specEntries--
}

// Peek returns the live entry for k, or nil: no creation, no LRU touch,
// no remote fetch. It is how a cluster node answers a peer's region_get
// without ever starting a fetch chain of its own.
func (c *Cache) Peek(k Key) *Entry {
	c.mu.Lock()
	e := c.entries[k]
	c.mu.Unlock()
	return e
}

// Absorb merges a peer-published region into the live entry for k,
// creating the entry if needed — WITHOUT consulting the remote tier
// (the publisher *is* the remote tier; fetching back would loop).
// Regions for any generation other than the current one are dropped:
// the publisher lags an invalidation this node already applied. It
// reports whether the region was merged.
func (c *Cache) Absorb(k Key, r *Region) bool {
	if r == nil || k.Generation != c.gen.Load() {
		return false
	}
	k = c.internKey(k)
	c.mu.Lock()
	// Re-check under the lock so a racing Invalidate cannot leave a
	// stale-generation entry in the map after dropBelow swept it.
	if k.Generation != c.gen.Load() {
		c.mu.Unlock()
		return false
	}
	e, ok := c.entries[k]
	if !ok {
		e = newEntry(c, k)
		c.entries[k] = e
		c.bytes += e.bytes
		c.evictOverLocked()
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()
	e.Merge(r)
	return true
}

// ForEach calls f for every live entry (snapshotted, then visited
// outside the cache lock). The cluster L2 flusher uses it to push
// locally explored regions to their owners.
func (c *Cache) ForEach(f func(*Entry)) {
	c.mu.Lock()
	es := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		es = append(es, e)
	}
	c.mu.Unlock()
	for _, e := range es {
		f(e)
	}
}

// dropLocked removes an entry, releasing its bytes from the ledger of
// its class. Caller holds c.mu.
func (c *Cache) dropLocked(k Key, e *Entry) {
	delete(c.entries, k)
	e.dead.Store(true)
	e.mu.Lock()
	b := e.bytes
	e.mu.Unlock()
	if e.spec.Load() {
		c.specBytes -= b
		c.specEntries--
	} else {
		c.bytes -= b
	}
	c.evictions.Add(1)
}

// addBytes accounts newly retained bytes into the demand or speculative
// ledger and evicts entries while over budget.
func (c *Cache) addBytes(n int64, spec bool) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	if spec {
		c.specBytes += n
	} else {
		c.bytes += n
	}
	c.evictOverLocked()
	c.mu.Unlock()
}

// evictOverLocked evicts entries while the cache is over budget
// (demand + speculative ledgers combined). Speculative entries are
// evicted first — least-recently-opened among them — and only when the
// speculative class is exhausted do demand entries start losing their
// usual LRU fights: a prefetched region must never displace data a
// client actually asked for. Caller holds c.mu.
func (c *Cache) evictOverLocked() {
	if c.maxBytes <= 0 || c.bytes+c.specBytes <= c.maxBytes {
		return
	}
	type cand struct {
		k    Key
		e    *Entry
		spec bool
		use  int64
	}
	cands := make([]cand, 0, len(c.entries))
	for k, e := range c.entries {
		cands = append(cands, cand{k, e, e.spec.Load(), e.lastUse})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].spec != cands[j].spec {
			return cands[i].spec
		}
		return cands[i].use < cands[j].use
	})
	for _, cd := range cands {
		if c.bytes+c.specBytes <= c.maxBytes {
			break
		}
		c.dropLocked(cd.k, cd.e)
	}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Generation uint64 `json:"generation"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	// SpecEntries/SpecBytes are the speculative class: entries a
	// prefetch created that no demand open has promoted yet. They share
	// the byte budget with Bytes but are evicted first.
	SpecEntries int   `json:"spec_entries,omitempty"`
	SpecBytes   int64 `json:"spec_bytes,omitempty"`
	Hits       int64  `json:"hits"`        // navigations answered without touching an engine
	Misses     int64  `json:"misses"`      // navigations that drove a lazy engine
	BytesSaved int64  `json:"bytes_saved"` // label bytes served from the cache
	Evictions  int64  `json:"evictions"`   // entries dropped by budget or invalidation

	// Semantic-cache totals (plan containment; see planindex.go).
	SemanticHits            int64 `json:"semantic_hits"`             // queries answered from a subsuming region
	SemanticMisses          int64 `json:"semantic_misses"`           // lookups with no usable superset
	SemanticCandidates      int64 `json:"semantic_candidates"`       // candidate plans scanned
	SemanticIncompleteSkips int64 `json:"semantic_incomplete_skips"` // subsuming but not fully explored

	// InternedBytes is the content size of the key-string intern pool:
	// charged once per distinct view name / fingerprint, never
	// released, and excluded from Bytes and the eviction budget.
	InternedBytes int64 `json:"interned_bytes"`
}

// Stats returns current totals.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	specEntries, specBytes := c.specEntries, c.specBytes
	c.mu.Unlock()
	c.internMu.Lock()
	interned := c.internBytes
	c.internMu.Unlock()
	return Stats{
		Generation:              c.gen.Load(),
		Entries:                 entries,
		Bytes:                   bytes,
		SpecEntries:             specEntries,
		SpecBytes:               specBytes,
		Hits:                    c.hits.Load(),
		Misses:                  c.misses.Load(),
		BytesSaved:              c.bytesSaved.Load(),
		Evictions:               c.evictions.Load(),
		SemanticHits:            c.semHits.Load(),
		SemanticMisses:          c.semMisses.Load(),
		SemanticCandidates:      c.semCandidates.Load(),
		SemanticIncompleteSkips: c.semIncompleteSkips.Load(),
		InternedBytes:           interned,
	}
}
