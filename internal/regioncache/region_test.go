package regioncache

import (
	"strings"
	"testing"
)

// TestKeyOverheadAccounting: key strings are interned — each entry is
// charged only the fixed key overhead against the eviction budget,
// while name/fingerprint content is charged once per *distinct* string
// to the never-released intern pool (Stats.InternedBytes), and drop
// accounting stays exactly symmetric with creation.
func TestKeyOverheadAccounting(t *testing.T) {
	c := New(0)
	name, fp := "homeview", strings.Repeat("S0:p(v0,v1)|", 20)
	e := c.Entry(name, fp, 1)
	want := int64(nodeBytes) + keyFixedBytes
	wantIntern := int64(len(name) + len(fp))
	if got := c.Stats().Bytes; got != want {
		t.Fatalf("bytes after bare entry = %d, want %d (node %d + key fixed %d; strings interned)",
			got, want, nodeBytes, keyFixedBytes)
	}
	if got := c.Stats().InternedBytes; got != wantIntern {
		t.Fatalf("interned bytes = %d, want %d", got, wantIntern)
	}
	// A second entry with a longer key costs the same fixed overhead;
	// only the new fingerprint's content lands in the pool (the shared
	// name is already there).
	fp2 := fp + strings.Repeat("x", 1000)
	c.Entry(name, fp2, 1)
	want += int64(nodeBytes) + keyFixedBytes
	wantIntern += int64(len(fp2))
	if got := c.Stats().Bytes; got != want {
		t.Fatalf("bytes after second entry = %d, want %d", got, want)
	}
	if got := c.Stats().InternedBytes; got != wantIntern {
		t.Fatalf("interned bytes after second entry = %d, want %d", got, wantIntern)
	}
	// Re-opening the same keys interns nothing new.
	c.Entry(name, fp, 1)
	if got := c.Stats().InternedBytes; got != wantIntern {
		t.Fatalf("interned bytes grew on re-open: %d, want %d", got, wantIntern)
	}
	// Dropping everything returns the budget to exactly zero: creation
	// accounting and drop accounting are symmetric. The intern pool is
	// a vocabulary floor — invalidation does not release it.
	c.Invalidate()
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("bytes after invalidate = %d, want 0", got)
	}
	if got := c.Stats().InternedBytes; got != wantIntern {
		t.Fatalf("interned bytes after invalidate = %d, want %d", got, wantIntern)
	}
	_ = e
}

// TestOpaqueFingerprintNotInterned: opaque fingerprints are
// process-unique, so pooling them would leak; their bytes must ride on
// the entry (released on drop) and never touch the intern pool.
func TestOpaqueFingerprintNotInterned(t *testing.T) {
	c := New(0)
	fp := opaquePrefix + "7:plan"
	c.Entry("v", fp, 1)
	want := int64(nodeBytes) + keyFixedBytes + int64(len(fp))
	wantIntern := int64(len("v"))
	if got := c.Stats().Bytes; got != want {
		t.Fatalf("bytes with opaque fingerprint = %d, want %d", got, want)
	}
	if got := c.Stats().InternedBytes; got != wantIntern {
		t.Fatalf("interned bytes = %d, want %d (name only)", got, wantIntern)
	}
	c.Invalidate()
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("bytes after invalidate = %d, want 0", got)
	}
}

// TestKeyOverheadDrivesEviction: entries whose *keys* dominate their
// size must still respect the byte budget — a cache fed thousands of
// long-fingerprint entries with empty trees stays bounded.
func TestKeyOverheadDrivesEviction(t *testing.T) {
	const budget = 64 << 10
	c := New(budget)
	fpBase := strings.Repeat("f", 1024)
	for i := 0; i < 1000; i++ {
		c.Entry("v", fpBase+string(rune('a'+i%26))+string(rune('a'+i/26%26))+string(rune('a'+i/676)), 1)
	}
	st := c.Stats()
	// One entry may be admitted over budget before eviction catches up.
	slack := int64(nodeBytes + keyFixedBytes + len(fpBase) + 8)
	if st.Bytes > budget+slack {
		t.Fatalf("bytes = %d exceeds budget %d (+%d slack); key overhead not evicting", st.Bytes, budget, slack)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 1000 long-key entries against a 64KiB budget")
	}
}

func buildEntry(c *Cache) *Entry {
	e := c.Entry("v", "fp", 1)
	// <a> <b> x y </b> <c/> ... </a> with the ... frontier unknown.
	e.storeLabel(nil, "a")
	e.storeChild(nil, 0, true)
	e.storeLabel([]int{0}, "b")
	e.storeChild([]int{0}, 0, true)
	e.storeLabel([]int{0, 0}, "x")
	e.storeChild([]int{0}, 1, true)
	e.storeLabel([]int{0, 1}, "y")
	e.storeChild([]int{0}, 2, false) // b complete
	e.storeChild(nil, 1, true)
	e.storeLabel([]int{1}, "c")
	return e
}

// TestRegionExportMergeRoundTrip: Export then Merge reproduces the
// exact region — the identity the L2 wire protocol depends on.
func TestRegionExportMergeRoundTrip(t *testing.T) {
	c := New(0)
	src := buildEntry(c)
	reg := src.Export()
	if reg.Empty() {
		t.Fatal("export of a populated entry is empty")
	}

	c2 := New(0)
	dst := c2.Entry("v", "fp", 1)
	dst.Merge(reg)
	if !dst.Export().Equal(reg) {
		t.Fatalf("merge(export(e)) ≠ e")
	}
	// Merged labels must actually serve lookups.
	if l, ok := dst.lookupLabel([]int{0, 1}); !ok || l != "y" {
		t.Fatalf("lookupLabel after merge = %q, %v", l, ok)
	}
	if ok, known := dst.lookupChild([]int{0}, 2); !known || ok {
		t.Fatal("completeness bit lost in round trip")
	}
}

// TestMergeOnlyExtends: merging a sparser region into a fuller entry
// must never erase labels, shrink child prefixes, or clear the
// completeness bit — remote data can only add knowledge.
func TestMergeOnlyExtends(t *testing.T) {
	c := New(0)
	e := buildEntry(c)
	before := e.Export()
	e.Merge(&Region{Known: true, Label: "WRONG", Kids: []*Region{{}}})
	after := e.Export()
	if !after.Equal(before) {
		t.Fatalf("merging a sparser region changed the entry\nbefore: %+v\nafter:  %+v", before, after)
	}
	// And byte accounting moved only for genuinely new knowledge (none
	// here beyond what the sparse region could add — nothing).
	if e.Mutations() == 0 {
		t.Fatal("building the entry never bumped Mutations")
	}
}

// TestMergeDepthCap: a pathologically deep (or adversarial) region
// merges without recursing past the cap — no stack blowout from a
// malicious peer.
func TestMergeDepthCap(t *testing.T) {
	deep := &Region{Known: true, Label: "d0"}
	cur := deep
	for i := 1; i < 4*maxRegionDepth; i++ {
		next := &Region{Known: true, Label: "d"}
		cur.Kids = []*Region{next}
		cur = next
	}
	c := New(0)
	e := c.Entry("v", "fp", 1)
	e.Merge(deep) // must return, not overflow
	if l, ok := e.lookupLabel(nil); !ok || l != "d0" {
		t.Fatalf("root label after deep merge = %q, %v", l, ok)
	}
}

// TestMutationsCounter: region-extending writes bump Mutations, reads
// and re-writes of known data do not — the flusher's dirtiness signal.
func TestMutationsCounter(t *testing.T) {
	c := New(0)
	e := c.Entry("v", "fp", 1)
	if e.Mutations() != 0 {
		t.Fatalf("fresh entry has %d mutations", e.Mutations())
	}
	e.storeLabel(nil, "a")
	m1 := e.Mutations()
	if m1 == 0 {
		t.Fatal("storeLabel did not bump Mutations")
	}
	e.lookupLabel(nil)
	e.storeLabel(nil, "a") // already known: no new knowledge
	if e.Mutations() != m1 {
		t.Fatalf("re-storing a known label bumped Mutations %d -> %d", m1, e.Mutations())
	}
	e.storeChild(nil, 0, true)
	if e.Mutations() == m1 {
		t.Fatal("storeChild did not bump Mutations")
	}
}

// TestAbsorb: peer-published regions merge into the live entry only
// under the current generation; stale-generation puts are dropped and
// create nothing.
func TestAbsorb(t *testing.T) {
	c := New(0)
	reg := &Region{Known: true, Label: "a", Complete: true}
	k := Key{Generation: 0, Registry: 1, Name: "v", Fingerprint: "fp"}
	if !c.Absorb(k, reg) {
		t.Fatal("absorb at current generation rejected")
	}
	e := c.Peek(k)
	if e == nil {
		t.Fatal("absorb did not create the entry")
	}
	if !e.Export().Equal(reg) {
		t.Fatal("absorbed region differs")
	}

	c.Invalidate() // generation 1; the gen-0 entry is swept
	if c.Peek(k) != nil {
		t.Fatal("stale entry survived invalidation")
	}
	if c.Absorb(k, reg) {
		t.Fatal("absorb of a stale-generation region accepted")
	}
	if c.Peek(k) != nil {
		t.Fatal("stale absorb left an entry behind")
	}
	if c.Absorb(Key{Generation: 1, Registry: 1, Name: "v", Fingerprint: "fp"}, reg) != true {
		t.Fatal("absorb at the new generation rejected")
	}
}
