package regioncache

import (
	"strings"

	"mix/internal/algebra"
	"mix/internal/xmltree"
)

// This file is the semantic half of the region cache (DESIGN.md §14):
// a per-(generation, registry, view) index of parsed canonical plans,
// so a freshly compiled query can cheaply enumerate cached plans that
// might *subsume* it, plus the completeness accessors that make a
// superset region safe to answer from — a partial region must never
// silently truncate a subsumed answer.

// maxPlansPerBucket bounds the candidate set a semantic lookup scans.
// Buckets group plans sharing (generation, registry, view name); within
// one, each distinct fingerprint appears once. 32 is far above the
// number of overlapping variants of one view a real workload compiles,
// and keeps the per-open containment work O(1)-ish.
const maxPlansPerBucket = 32

// bucketKey groups index entries that could possibly subsume each
// other: same invalidation epoch, same registry version, same view.
type bucketKey struct {
	gen, registry uint64
	name          string
}

// PlanEntry is one indexed plan: the full region-cache key it was
// compiled under and its canonical (RenameVars normal form) plan.
type PlanEntry struct {
	Key  Key
	Plan algebra.Op
}

// IndexPlan records a canonical plan in the semantic index. Nil plans
// (non-canonicalizable — their opaque fingerprints must never be
// compared structurally) and stale generations are skipped; a
// fingerprint already present in its bucket is not re-added, and a full
// bucket drops the newcomer rather than evicting (the exact-match fast
// path is unaffected either way).
func (c *Cache) IndexPlan(k Key, canon algebra.Op) {
	if c == nil || canon == nil || k.Generation != c.gen.Load() {
		return
	}
	k.Name = c.internStr(k.Name)
	k.Fingerprint = c.internStr(k.Fingerprint)
	b := bucketKey{gen: k.Generation, registry: k.Registry, name: k.Name}
	c.planMu.Lock()
	defer c.planMu.Unlock()
	ps := c.plans[b]
	for _, p := range ps {
		if p.Key.Fingerprint == k.Fingerprint {
			return
		}
	}
	if len(ps) >= maxPlansPerBucket {
		return
	}
	c.plans[b] = append(ps, PlanEntry{Key: k, Plan: canon})
}

// Candidates returns the indexed plans that could subsume the plan
// identified by k: same bucket, different fingerprint (the same
// fingerprint is the exact-match fast path, handled before any
// semantic work). The slice is freshly allocated; entries are shared.
func (c *Cache) Candidates(k Key) []PlanEntry {
	if c == nil {
		return nil
	}
	b := bucketKey{gen: k.Generation, registry: k.Registry, name: k.Name}
	c.planMu.Lock()
	defer c.planMu.Unlock()
	var out []PlanEntry
	for _, p := range c.plans[b] {
		if p.Key.Fingerprint != k.Fingerprint {
			out = append(out, p)
		}
	}
	return out
}

// prunePlansBelow drops index buckets from generations older than g,
// mirroring dropBelow on entries.
func (c *Cache) prunePlansBelow(g uint64) {
	c.planMu.Lock()
	for b := range c.plans {
		if b.gen < g {
			delete(c.plans, b)
		}
	}
	c.planMu.Unlock()
}

// internStr deduplicates a key string through the cache's interner,
// charging its content bytes exactly once (on first sight) to the
// intern pool. The pool is never released — it grows with the view
// vocabulary, not the entry count — so its bytes are reported
// separately (Stats.InternedBytes) and excluded from the eviction
// budget.
func (c *Cache) internStr(s string) string {
	c.internMu.Lock()
	before := c.intern.Len()
	out := c.intern.Intern(s)
	if c.intern.Len() > before {
		c.internBytes += int64(len(s))
	}
	c.internMu.Unlock()
	return out
}

// internKey deduplicates a key's strings through the pool. Opaque
// fingerprints are exempt: each is process-unique (a fresh counter per
// non-canonicalizable plan), so interning them would grow the pool with
// every such query instead of with the view vocabulary; they stay
// entry-carried and entry-accounted.
func (c *Cache) internKey(k Key) Key {
	k.Name = c.internStr(k.Name)
	if !strings.HasPrefix(k.Fingerprint, opaquePrefix) {
		k.Fingerprint = c.internStr(k.Fingerprint)
	}
	return k
}

// CompleteFetcher is the optional semantic extension of the Remote
// tier: fetch a region only if the owner holds it *fully explored*.
// The cluster node implements it with the region_get semantic form.
type CompleteFetcher interface {
	FetchComplete(k Key) *Region
}

// FetchCompleteRemote asks the remote tier for the fully explored
// region under k, or nil when no remote is installed, the remote
// predates the semantic protocol, or the owner's region is incomplete.
func (c *Cache) FetchCompleteRemote(k Key) *Region {
	c.remoteMu.RLock()
	r := c.remote
	c.remoteMu.RUnlock()
	cf, ok := r.(CompleteFetcher)
	if !ok {
		return nil
	}
	return cf.FetchComplete(k)
}

// RecordSemanticHit counts a navigation set answered from a subsuming
// cached region (zero source navigations).
func (c *Cache) RecordSemanticHit() { c.semHits.Add(1) }

// RecordSemanticMiss counts a semantic lookup that found no usable
// superset and fell back to the source-backed plan.
func (c *Cache) RecordSemanticMiss() { c.semMisses.Add(1) }

// RecordSemanticCandidates counts candidate plans scanned by lookups.
func (c *Cache) RecordSemanticCandidates(n int) { c.semCandidates.Add(int64(n)) }

// RecordSemanticIncompleteSkip counts candidates whose plan subsumed
// the query but whose region was not fully explored (locally or at its
// cluster owner) and so could not be used.
func (c *Cache) RecordSemanticIncompleteSkip() { c.semIncompleteSkips.Add(1) }

// Complete reports whether the entry's region is fully explored: every
// node's label known and every child list complete. Completeness is
// monotone (labels only fill in, child lists only close), so a true
// answer is cached and re-served without re-walking the tree.
func (e *Entry) Complete() bool {
	if e.full.Load() {
		return true
	}
	e.mu.RLock()
	ok := nodeComplete(e.root)
	e.mu.RUnlock()
	if ok {
		e.full.Store(true)
	}
	return ok
}

func nodeComplete(n *cnode) bool {
	if !n.labelKnown || !n.complete {
		return false
	}
	for _, k := range n.kids {
		if !nodeComplete(k) {
			return false
		}
	}
	return true
}

// Tree returns a deep copy of the entry's region as a plain tree, but
// only when the region is fully explored — the semantic cache must
// never filter a truncated superset. ok=false means incomplete.
func (e *Entry) Tree() (*xmltree.Tree, bool) {
	if !e.Complete() {
		return nil, false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return treeOf(e.root), true
}

func treeOf(n *cnode) *xmltree.Tree {
	t := &xmltree.Tree{Label: n.label}
	for _, k := range n.kids {
		t.Children = append(t.Children, treeOf(k))
	}
	return t
}

// Tree returns the region as a plain tree when — and only when — it is
// fully explored (every label known, every child list complete); nil
// otherwise. It is the wire-side twin of Entry.Tree.
func (r *Region) Tree() *xmltree.Tree {
	if r == nil || !r.Known || !r.Complete {
		return nil
	}
	t := &xmltree.Tree{Label: r.Label}
	for _, k := range r.Kids {
		kt := k.Tree()
		if kt == nil {
			return nil
		}
		t.Children = append(t.Children, kt)
	}
	return t
}
