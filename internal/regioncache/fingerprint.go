package regioncache

import (
	"strconv"

	"mix/internal/algebra"
)

// Fingerprint renders a canonical identity for an algebra plan: the
// plan's operator-tree rendering with every variable renamed to v0, v1,
// … in order of first appearance. View composition generates fresh
// variable prefixes from a per-mediator counter (view1~, view2~, …), so
// the same query compiled on two mediator instances — or twice on one —
// produces textually different plans; canonical renaming maps them to
// the same fingerprint, which is what lets sessions share cache entries.
func Fingerprint(p algebra.Op) string {
	n := 0
	names := map[string]string{}
	canon, err := algebra.RenameVars(p, func(v string) string {
		c, ok := names[v]
		if !ok {
			c = "v" + strconv.Itoa(n)
			n++
			names[v] = c
		}
		return c
	})
	if err != nil {
		// Plans with operators RenameVars cannot rebuild still get a
		// deterministic (just not cross-mediator canonical) identity.
		return algebra.String(p)
	}
	return algebra.String(canon)
}
