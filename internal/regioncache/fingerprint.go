package regioncache

import (
	"strconv"
	"sync/atomic"

	"mix/internal/algebra"
)

// opaqueSeq distinguishes the fingerprints of plans that cannot be
// canonicalized; see Canonical.
var opaqueSeq atomic.Uint64

// opaquePrefix marks a fingerprint from Canonical's fallback path. Such
// fingerprints are process-unique (never shared, never interned, never
// semantically indexed).
const opaquePrefix = "!opaque:"

// Canonical puts a plan into RenameVars normal form — every variable
// renamed to v0, v1, … in order of first appearance — and returns the
// canonical plan alongside its fingerprint (the canonical plan's
// operator-tree rendering). View composition generates fresh variable
// prefixes from a per-mediator counter (view1~, view2~, …), so the same
// query compiled on two mediator instances — or twice on one — produces
// textually different plans; canonical renaming maps them to the same
// fingerprint, which is what lets sessions share cache entries and the
// semantic plan index compare plans structurally.
//
// Plans containing operators RenameVars cannot rebuild return ok=false
// with a nil canonical plan and an *opaque* fingerprint: a "!opaque:"
// marker carrying a process-unique sequence number. Such plans still
// get a usable cache identity, but two distinct non-canonicalizable
// plans can never collide on it (the old fallback rendered the raw plan
// text, under which two plans differing only in variable naming — or
// two unknown operator types rendering alike — could share a slot), and
// ok=false keeps them out of the semantic plan index entirely.
func Canonical(p algebra.Op) (canon algebra.Op, fp string, ok bool) {
	n := 0
	names := map[string]string{}
	c, err := algebra.RenameVars(p, func(v string) string {
		s, seen := names[v]
		if !seen {
			s = "v" + strconv.Itoa(n)
			n++
			names[v] = s
		}
		return s
	})
	if err != nil {
		marker := opaquePrefix + strconv.FormatUint(opaqueSeq.Add(1), 10) + ":"
		return nil, marker + algebra.String(p), false
	}
	return c, algebra.String(c), true
}

// Fingerprint renders a canonical identity for an algebra plan; it is
// Canonical without the plan half.
func Fingerprint(p algebra.Op) string {
	_, fp, _ := Canonical(p)
	return fp
}
