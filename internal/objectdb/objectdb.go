// Package objectdb is the object-database substrate standing in for the
// OODB source of the VXD architecture (Fig. 1, "OODB-XML Wrapper"): a
// small in-memory object store with classes, typed objects, scalar and
// list fields, and — crucially — object references.
//
// References make the XML view of an object graph potentially
// *infinite* (a cycle unfolds forever). A warehousing approach cannot
// export such a view at all; the navigation-driven architecture serves
// it naturally, because reference targets are exported as holes that
// are only filled when the client actually traverses them.
package objectdb

import (
	"fmt"
	"sort"

	"mix/internal/metrics"
)

// OID identifies an object.
type OID string

// Value is a field value: a scalar, a reference, or a list of values.
type Value struct {
	// Exactly one of the following is set.
	Scalar string
	Ref    OID
	List   []Value

	kind valueKind
}

type valueKind uint8

const (
	scalarValue valueKind = iota
	refValue
	listValue
)

// S makes a scalar value.
func S(s string) Value { return Value{Scalar: s, kind: scalarValue} }

// R makes a reference value.
func R(oid OID) Value { return Value{Ref: oid, kind: refValue} }

// L makes a list value.
func L(vs ...Value) Value { return Value{List: vs, kind: listValue} }

// IsScalar reports whether v is a scalar.
func (v Value) IsScalar() bool { return v.kind == scalarValue }

// IsRef reports whether v is a reference.
func (v Value) IsRef() bool { return v.kind == refValue }

// IsList reports whether v is a list.
func (v Value) IsList() bool { return v.kind == listValue }

// Object is a stored object: a class name and ordered fields.
type Object struct {
	OID    OID
	Class  string
	Fields []Field
}

// Field is a named value.
type Field struct {
	Name  string
	Value Value
}

// Field returns the named field's value.
func (o *Object) Field(name string) (Value, bool) {
	for _, f := range o.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return Value{}, false
}

// DB is an object database: objects by OID, grouped into class extents.
type DB struct {
	Name    string
	objects map[OID]*Object
	extents map[string][]OID

	// Counters bills object lookups (Tuples) for the experiments.
	Counters *metrics.Counters
}

// NewDB creates an empty object database.
func NewDB(name string) *DB {
	return &DB{
		Name:     name,
		objects:  map[OID]*Object{},
		extents:  map[string][]OID{},
		Counters: &metrics.Counters{},
	}
}

// Put stores an object (replacing any object with the same OID) and
// adds it to its class extent.
func (d *DB) Put(oid OID, class string, fields ...Field) *Object {
	if old, ok := d.objects[oid]; ok {
		// Remove from the previous extent.
		ext := d.extents[old.Class]
		for i, e := range ext {
			if e == oid {
				d.extents[old.Class] = append(ext[:i], ext[i+1:]...)
				break
			}
		}
	}
	o := &Object{OID: oid, Class: class, Fields: fields}
	d.objects[oid] = o
	d.extents[class] = append(d.extents[class], oid)
	return o
}

// F is a convenience constructor for a Field.
func F(name string, v Value) Field { return Field{Name: name, Value: v} }

// Get fetches an object by OID, billing one object fetch.
func (d *DB) Get(oid OID) (*Object, error) {
	o, ok := d.objects[oid]
	if !ok {
		return nil, fmt.Errorf("objectdb: no object %q in %s", oid, d.Name)
	}
	d.Counters.Tuples.Add(1)
	return o, nil
}

// Extent returns the OIDs of a class, in insertion order.
func (d *DB) Extent(class string) []OID {
	out := make([]OID, len(d.extents[class]))
	copy(out, d.extents[class])
	return out
}

// Classes returns the class names in sorted order.
func (d *DB) Classes() []string {
	out := make([]string, 0, len(d.extents))
	for c := range d.extents {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NumObjects returns the number of stored objects.
func (d *DB) NumObjects() int { return len(d.objects) }
