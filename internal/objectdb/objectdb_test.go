package objectdb

import (
	"reflect"
	"testing"
)

func sample() *DB {
	db := NewDB("company")
	db.Put("e1", "Employee",
		F("name", S("Ada")),
		F("boss", R("e2")),
	)
	db.Put("e2", "Employee",
		F("name", S("Grace")),
		F("boss", R("e1")), // cycle
	)
	db.Put("d1", "Dept",
		F("title", S("R&D")),
		F("members", L(R("e1"), R("e2"))),
	)
	return db
}

func TestPutGetExtent(t *testing.T) {
	db := sample()
	if db.NumObjects() != 3 {
		t.Fatalf("objects = %d", db.NumObjects())
	}
	o, err := db.Get("e1")
	if err != nil || o.Class != "Employee" {
		t.Fatalf("Get: %v %v", o, err)
	}
	v, ok := o.Field("name")
	if !ok || !v.IsScalar() || v.Scalar != "Ada" {
		t.Fatalf("field name = %v", v)
	}
	if _, ok := o.Field("missing"); ok {
		t.Fatal("missing field found")
	}
	if _, err := db.Get("nope"); err == nil {
		t.Fatal("missing object must fail")
	}
	if got := db.Extent("Employee"); !reflect.DeepEqual(got, []OID{"e1", "e2"}) {
		t.Fatalf("extent = %v", got)
	}
	if got := db.Classes(); !reflect.DeepEqual(got, []string{"Dept", "Employee"}) {
		t.Fatalf("classes = %v", got)
	}
}

func TestPutReplaceMovesExtent(t *testing.T) {
	db := sample()
	db.Put("e1", "Manager", F("name", S("Ada")))
	if got := db.Extent("Employee"); len(got) != 1 || got[0] != "e2" {
		t.Fatalf("old extent = %v", got)
	}
	if got := db.Extent("Manager"); len(got) != 1 || got[0] != "e1" {
		t.Fatalf("new extent = %v", got)
	}
}

func TestValueKinds(t *testing.T) {
	if !S("x").IsScalar() || S("x").IsRef() || S("x").IsList() {
		t.Fatal("scalar kind")
	}
	if !R("a").IsRef() || !L(S("x")).IsList() {
		t.Fatal("ref/list kinds")
	}
}

func TestFetchAccounting(t *testing.T) {
	db := sample()
	db.Counters.Reset()
	for i := 0; i < 3; i++ {
		if _, err := db.Get("e1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Counters.Tuples.Load(); got != 3 {
		t.Fatalf("fetches = %d", got)
	}
}
