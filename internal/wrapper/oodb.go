package wrapper

import (
	"fmt"
	"strconv"
	"strings"

	"mix/internal/objectdb"
	"mix/internal/xmltree"
)

// OODB is the OODB-XML wrapper of Fig. 1: it exposes an object database
// over LXP as the virtual document
//
//	dbname[ class1[ obj… ], class2[ obj… ], … ]
//
// where each object renders as
//
//	<Class> oid[…] field1[…] field2[…] … </Class>
//
// Scalar fields render inline; *references render as holes* that fill
// to the referenced object on traversal. An object graph with cycles
// therefore exports an infinite virtual XML view — which is exactly
// what the navigation-driven architecture is for: the client explores
// as deep as it cares to, and only that much is ever computed.
//
// Hole identifiers:
//
//	ext:CLASS:J   — extent of CLASS starting at index J
//	obj:OID       — the object OID (fills to its full element)
type OODB struct {
	DB *objectdb.DB
	// ChunkObjects is the number of extent members per fill (≥ 1).
	ChunkObjects int
}

// GetRoot implements lxp.Server; the URI must name the database.
func (w *OODB) GetRoot(uri string) (string, error) {
	if uri != w.DB.Name {
		return "", fmt.Errorf("wrapper: this wrapper serves %q, not %q", w.DB.Name, uri)
	}
	return "root", nil
}

func (w *OODB) chunk() int {
	if w.ChunkObjects < 1 {
		return 1
	}
	return w.ChunkObjects
}

// Fill implements lxp.Server.
func (w *OODB) Fill(holeID string) ([]*xmltree.Tree, error) {
	switch {
	case holeID == "root":
		root := xmltree.Elem(w.DB.Name)
		for _, c := range w.DB.Classes() {
			root.Children = append(root.Children,
				xmltree.Elem(c, xmltree.Hole("ext:"+c+":0")))
		}
		return []*xmltree.Tree{root}, nil

	case strings.HasPrefix(holeID, "ext:"):
		rest := strings.TrimPrefix(holeID, "ext:")
		class, idxStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
		}
		j, err := strconv.Atoi(idxStr)
		if err != nil || j < 0 {
			return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
		}
		ext := w.DB.Extent(class)
		if j > len(ext) {
			return nil, fmt.Errorf("wrapper: stale hole id %q", holeID)
		}
		end := j + w.chunk()
		if end > len(ext) {
			end = len(ext)
		}
		out := make([]*xmltree.Tree, 0, end-j+1)
		for _, oid := range ext[j:end] {
			el, err := w.object(oid)
			if err != nil {
				return nil, err
			}
			out = append(out, el)
		}
		if end < len(ext) {
			out = append(out, xmltree.Hole(fmt.Sprintf("ext:%s:%d", class, end)))
		}
		return out, nil

	case strings.HasPrefix(holeID, "obj:"):
		el, err := w.object(objectdb.OID(strings.TrimPrefix(holeID, "obj:")))
		if err != nil {
			return nil, err
		}
		return []*xmltree.Tree{el}, nil

	default:
		return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
	}
}

// object renders one object: scalars inline, references as holes.
func (w *OODB) object(oid objectdb.OID) (*xmltree.Tree, error) {
	o, err := w.DB.Get(oid)
	if err != nil {
		return nil, err
	}
	el := xmltree.Elem(o.Class, xmltree.Text("oid", string(o.OID)))
	for _, f := range o.Fields {
		el.Children = append(el.Children, w.field(f.Name, f.Value))
	}
	return el, nil
}

func (w *OODB) field(name string, v objectdb.Value) *xmltree.Tree {
	switch {
	case v.IsScalar():
		return xmltree.Text(name, v.Scalar)
	case v.IsRef():
		return xmltree.Elem(name, xmltree.Hole("obj:"+string(v.Ref)))
	default: // list
		f := xmltree.Elem(name)
		for i, item := range v.List {
			f.Children = append(f.Children, w.field(fmt.Sprintf("item%d", i), item))
		}
		return f
	}
}
