package wrapper

import (
	"fmt"
	"strings"
	"testing"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/objectdb"
	"mix/internal/pathexpr"
	"mix/internal/relational"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func sampleDB() *relational.DB {
	db := relational.NewDB("realestate")
	homes := db.Create("homes", "addr", "zip")
	for i := 0; i < 7; i++ {
		homes.MustInsert(fmt.Sprintf("addr-%d", i), fmt.Sprintf("912%02d", i%3))
	}
	schools := db.Create("schools", "dir", "zip")
	schools.MustInsert("Smith", "91200")
	return db
}

func TestRelationalWrapperShape(t *testing.T) {
	w := &Relational{DB: sampleDB(), ChunkRows: 3}
	id, err := w.GetRoot("realestate")
	if err != nil || id != "realestate" {
		t.Fatalf("GetRoot: %q %v", id, err)
	}
	if _, err := w.GetRoot("other"); err == nil {
		t.Fatal("wrong uri must fail")
	}

	// Database level: schema with one hole per table.
	trees, err := w.Fill("realestate")
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Label != "realestate" {
		t.Fatalf("db fill = %v", trees)
	}
	if len(trees[0].Children) != 2 ||
		trees[0].Children[0].Label != "homes" ||
		trees[0].Children[0].Children[0].HoleID() != "realestate.homes" {
		t.Fatalf("schema = %v", trees[0])
	}

	// Table level: 3 rows + continuation hole.
	rows, err := w.Fill("realestate.homes")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || !rows[3].IsHole() || rows[3].HoleID() != "realestate.homes.3" {
		t.Fatalf("table fill = %v", rows)
	}
	if rows[0].Label != "row0" || rows[0].Find("addr").TextContent() != "addr-0" {
		t.Fatalf("row rendering = %v", rows[0])
	}
	// Complete tuples: no holes inside rows.
	for _, r := range rows[:3] {
		if r.IsOpen() {
			t.Fatalf("row should be complete: %v", r)
		}
	}

	// Row level: continue at 3; 7 rows total → rows 3..5 + hole at 6.
	rows2, err := w.Fill("realestate.homes.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 4 || rows2[0].Label != "row3" || rows2[3].HoleID() != "realestate.homes.6" {
		t.Fatalf("row fill = %v", rows2)
	}
	// Last chunk has no trailing hole.
	rows3, err := w.Fill("realestate.homes.6")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 1 || rows3[0].Label != "row6" {
		t.Fatalf("last fill = %v", rows3)
	}
}

func TestRelationalWrapperErrors(t *testing.T) {
	w := &Relational{DB: sampleDB(), ChunkRows: 2}
	for _, id := range []string{"bogus", "realestate.nope", "realestate.homes.x",
		"realestate.homes.-1", "a.b.c.d", "other.homes"} {
		if _, err := w.Fill(id); err == nil {
			t.Errorf("Fill(%q): expected error", id)
		}
	}
}

func TestRelationalWrapperThroughBuffer(t *testing.T) {
	db := sampleDB()
	for _, chunk := range []int{1, 2, 100} {
		w := &Relational{DB: db, ChunkRows: chunk}
		b, err := buffer.New(w, "realestate")
		if err != nil {
			t.Fatal(err)
		}
		got, err := nav.Materialize(b)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if got.Label != "realestate" {
			t.Fatalf("root = %q", got.Label)
		}
		homes := got.Find("homes")
		if len(homes.Children) != 7 {
			t.Fatalf("chunk %d: %d home rows", chunk, len(homes.Children))
		}
		if homes.Children[6].Label != "row6" {
			t.Fatalf("row order: %v", homes.Children[6].Label)
		}
	}
}

func TestRelationalChunkingReducesFills(t *testing.T) {
	db := relational.NewDB("big")
	tb := db.Create("t", "v")
	for i := 0; i < 100; i++ {
		tb.MustInsert(fmt.Sprintf("%d", i))
	}
	fills := func(chunk int) int64 {
		cs := lxp.NewCounting(&Relational{DB: db, ChunkRows: chunk})
		b, err := buffer.New(cs, "big")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nav.Materialize(b); err != nil {
			t.Fatal(err)
		}
		return cs.Counters.Fills.Load()
	}
	f1, f10, f100 := fills(1), fills(10), fills(100)
	if !(f1 > f10 && f10 > f100) {
		t.Fatalf("fills should fall with chunk size: %d %d %d", f1, f10, f100)
	}
	if f1 < 100 {
		t.Fatalf("chunk=1 must fill per row: %d", f1)
	}
	if f100 > 3 {
		t.Fatalf("chunk=100 should need ≤3 fills: %d", f100)
	}
}

func TestWebWrapperPaging(t *testing.T) {
	cat := workload.Books("az", 25, 1)
	w := &Web{Name: "amazon", Catalog: cat, PageSize: 10}
	b, err := buffer.New(w, "amazon")
	if err != nil {
		t.Fatal(err)
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	if w.Pages != 1 {
		t.Fatalf("root resolution should fetch one page, got %d", w.Pages)
	}
	// Walk the first 10 items: still one page.
	p, _ := b.Down(root)
	for i := 0; i < 9; i++ {
		p, err = b.Right(p)
		if err != nil || p == nil {
			t.Fatalf("item %d: %v %v", i, p, err)
		}
	}
	if w.Pages != 1 {
		t.Fatalf("first page should suffice for 10 items, got %d pages", w.Pages)
	}
	// Item 11 needs page 2.
	if p, err = b.Right(p); err != nil || p == nil {
		t.Fatalf("11th item: %v %v", p, err)
	}
	if w.Pages != 2 {
		t.Fatalf("pages = %d, want 2", w.Pages)
	}
	got, err := nav.Materialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, cat) {
		t.Fatal("web wrapper changes the document")
	}
	if w.Pages != 3 {
		t.Fatalf("25 items / 10 per page = 3 pages, got %d", w.Pages)
	}
}

func TestWebWrapperErrors(t *testing.T) {
	w := &Web{Name: "amazon", Catalog: workload.Books("az", 5, 1), PageSize: 10}
	if _, err := w.GetRoot("bn"); err == nil {
		t.Fatal("wrong uri must fail")
	}
	if _, err := w.Fill("bogus"); err == nil {
		t.Fatal("malformed hole must fail")
	}
	if _, err := w.Fill("page:99"); err == nil {
		t.Fatal("stale page must fail")
	}
}

func TestXMLWrapper(t *testing.T) {
	d := workload.FlatList(20, "a", "b")
	b, err := buffer.New(XML(d, 4, 3), "u")
	if err != nil {
		t.Fatal(err)
	}
	got, err := nav.Materialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, d) {
		t.Fatal("xml wrapper changes the document")
	}
}

func sampleOODB() *objectdb.DB {
	db := objectdb.NewDB("company")
	db.Put("e1", "Employee",
		objectdb.F("name", objectdb.S("Ada")),
		objectdb.F("boss", objectdb.R("e2")),
	)
	db.Put("e2", "Employee",
		objectdb.F("name", objectdb.S("Grace")),
		objectdb.F("boss", objectdb.R("e1")), // cycle: infinite virtual view
	)
	db.Put("d1", "Dept",
		objectdb.F("title", objectdb.S("R&D")),
		objectdb.F("members", objectdb.L(objectdb.R("e1"), objectdb.R("e2"))),
	)
	return db
}

func TestOODBWrapperShape(t *testing.T) {
	w := &OODB{DB: sampleOODB(), ChunkObjects: 1}
	id, err := w.GetRoot("company")
	if err != nil || id != "root" {
		t.Fatalf("GetRoot: %q %v", id, err)
	}
	if _, err := w.GetRoot("other"); err == nil {
		t.Fatal("wrong uri must fail")
	}
	trees, err := w.Fill("root")
	if err != nil || len(trees) != 1 {
		t.Fatalf("root fill: %v %v", trees, err)
	}
	root := trees[0]
	if root.Label != "company" || len(root.Children) != 2 {
		t.Fatalf("root = %v", root)
	}
	if root.Children[0].Label != "Dept" ||
		root.Children[0].Children[0].HoleID() != "ext:Dept:0" {
		t.Fatalf("class holes: %v", root)
	}

	// Extent fill: chunked with continuation hole.
	emp, err := w.Fill("ext:Employee:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(emp) != 2 || !emp[1].IsHole() || emp[1].HoleID() != "ext:Employee:1" {
		t.Fatalf("extent fill: %v", emp)
	}
	e1 := emp[0]
	if e1.Label != "Employee" || e1.Find("oid").TextContent() != "e1" {
		t.Fatalf("object rendering: %v", e1)
	}
	// The reference is a hole, not an inlined object.
	boss := e1.Find("boss")
	if boss == nil || !boss.Children[0].IsHole() || boss.Children[0].HoleID() != "obj:e2" {
		t.Fatalf("reference rendering: %v", boss)
	}

	// Object fill resolves the reference.
	objs, err := w.Fill("obj:e2")
	if err != nil || len(objs) != 1 || objs[0].Find("name").TextContent() != "Grace" {
		t.Fatalf("obj fill: %v %v", objs, err)
	}

	// Errors.
	for _, bad := range []string{"ext:Employee:x", "ext:Employee:99", "ext:zzz", "obj:nope", "junk"} {
		if _, err := w.Fill(bad); err == nil {
			t.Errorf("Fill(%q): expected error", bad)
		}
	}
}

func TestOODBCyclicGraphNavigatesLazily(t *testing.T) {
	// The e1→e2→e1 cycle makes the virtual view infinite; the client
	// can still chase boss-of-boss-of-boss… as deep as it wants.
	w := &OODB{DB: sampleOODB(), ChunkObjects: 10}
	b, err := buffer.New(w, "company")
	if err != nil {
		t.Fatal(err)
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	// company → Employee class → first Employee.
	classID, err := nav.Path(b, "Employee", "Employee")
	if err != nil || classID == nil {
		t.Fatalf("path to first employee: %v %v (root=%v)", classID, err, root)
	}
	names := []string{}
	cur := classID
	for i := 0; i < 7; i++ {
		// read name
		nameID, err := nav.Path(&rooted{doc: b, at: cur}, "name")
		if err != nil || nameID == nil {
			t.Fatalf("hop %d: name missing: %v", i, err)
		}
		sub, err := nav.Subtree(b, nameID)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, sub.TextContent())
		// follow boss reference
		next, err := nav.Path(&rooted{doc: b, at: cur}, "boss", "Employee")
		if err != nil || next == nil {
			t.Fatalf("hop %d: boss missing: %v", i, err)
		}
		cur = next
	}
	want := "Ada,Grace,Ada,Grace,Ada,Grace,Ada"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("cycle walk = %q, want %q", got, want)
	}
}

// rooted re-roots a document at a given node for nav.Path convenience.
type rooted struct {
	doc nav.Document
	at  nav.ID
}

func (r *rooted) Root() (nav.ID, error)          { return r.at, nil }
func (r *rooted) Down(p nav.ID) (nav.ID, error)  { return r.doc.Down(p) }
func (r *rooted) Right(p nav.ID) (nav.ID, error) { return r.doc.Right(p) }
func (r *rooted) Fetch(p nav.ID) (string, error) { return r.doc.Fetch(p) }

func TestOODBThroughEngine(t *testing.T) {
	// XMAS-style extraction over the object view: all employee names.
	w := &OODB{DB: sampleOODB(), ChunkObjects: 1}
	b, err := buffer.New(w, "company")
	if err != nil {
		t.Fatal(err)
	}
	e := core.New()
	e.Register("company", b)
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "company", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("Employee.Employee.name._"), Out: "N",
	}
	q, err := e.Compile(&algebra.Project{Input: gd, Keep: []string{"N"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != 2 {
		t.Fatalf("names = %v", got)
	}
}
