// Package wrapper implements LXP wrappers for the source kinds of the
// VXD architecture (Fig. 1): the relational wrapper of Section 4
// (hole ids of the form db.table.row, n tuples per fill), a paged
// "web site" wrapper modeling HTML sources that ship page-at-a-time,
// and a plain XML document wrapper (lxp.TreeServer re-exported through
// the same constructor surface for symmetry).
package wrapper

import (
	"fmt"
	"strconv"
	"strings"

	"mix/internal/lxp"
	"mix/internal/relational"
	"mix/internal/xmltree"
)

// Relational exposes a relational.DB over LXP exactly as Section 4
// prescribes:
//
//	fill(hole[db])            → db[table1[hole[db.table1]], …]
//	fill(hole[db.t])          → t[row0[…], …, row(n-1)[…], hole[db.t.n]]
//	fill(hole[db.t.j])        → rows j…j+n-1 and hole[db.t.(j+n)]
//
// The wrapper returns complete tuples — it never has to answer
// attribute-level navigation (the buffer serves those locally).
type Relational struct {
	DB *relational.DB
	// ChunkRows is the number of tuples per fill (the paper's n);
	// values < 1 are treated as 1.
	ChunkRows int
}

// GetRoot implements lxp.Server. The URI must name the wrapped
// database.
func (w *Relational) GetRoot(uri string) (string, error) {
	if uri != w.DB.Name {
		return "", fmt.Errorf("wrapper: this wrapper serves %q, not %q", w.DB.Name, uri)
	}
	return w.DB.Name, nil
}

func (w *Relational) chunk() int {
	if w.ChunkRows < 1 {
		return 1
	}
	return w.ChunkRows
}

// Fill implements lxp.Server.
func (w *Relational) Fill(holeID string) ([]*xmltree.Tree, error) {
	parts := strings.Split(holeID, ".")
	switch {
	case len(parts) == 1 && parts[0] == w.DB.Name:
		// Database level: the schema, one hole per table.
		root := xmltree.Elem(w.DB.Name)
		for _, t := range w.DB.TableNames() {
			root.Children = append(root.Children,
				xmltree.Elem(t, xmltree.Hole(w.DB.Name+"."+t)))
		}
		return []*xmltree.Tree{root}, nil

	case len(parts) == 2 && parts[0] == w.DB.Name:
		// Table level: first n tuples plus a continuation hole.
		return w.rows(parts[1], 0)

	case len(parts) == 3 && parts[0] == w.DB.Name:
		j, err := strconv.Atoi(parts[2])
		if err != nil || j < 0 {
			return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
		}
		return w.rows(parts[1], j)

	default:
		return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
	}
}

// rows returns up to ChunkRows tuples of table starting at row j, as
// row elements with one attribute child per column, plus a trailing
// hole if rows remain.
func (w *Relational) rows(table string, j int) ([]*xmltree.Tree, error) {
	cur, err := w.DB.OpenCursor(table, j)
	if err != nil {
		return nil, err
	}
	cols := cur.Cols()
	fetched := cur.FetchN(w.chunk())
	out := make([]*xmltree.Tree, 0, len(fetched)+1)
	for i, r := range fetched {
		row := xmltree.Elem(fmt.Sprintf("row%d", j+i))
		for c, v := range r {
			row.Children = append(row.Children, xmltree.Text(cols[c], v))
		}
		out = append(out, row)
	}
	if t := w.DB.Table(table); t != nil && cur.Pos() < t.NumRows() {
		out = append(out, xmltree.Hole(fmt.Sprintf("%s.%s.%d", w.DB.Name, table, cur.Pos())))
	}
	return out, nil
}

// Web simulates a paged web source (the HTML-XML wrapper of Fig. 1):
// a catalog whose items are only obtainable a page at a time, the way
// a wrapper scrapes consecutive result pages of a web site. Each fill
// of the item-level hole yields one page of PageSize items and a hole
// for the next page; the page fetch itself is billed as a source query.
type Web struct {
	// Name is the source URI this wrapper answers for.
	Name string
	// Catalog is the full underlying document: root[item…].
	Catalog *xmltree.Tree
	// PageSize is the number of items per page (≥ 1).
	PageSize int

	// Pages counts page fetches (fills that hit the backing site).
	Pages int
}

// GetRoot implements lxp.Server.
func (w *Web) GetRoot(uri string) (string, error) {
	if uri != w.Name {
		return "", fmt.Errorf("wrapper: this wrapper serves %q, not %q", w.Name, uri)
	}
	return "page:0", nil
}

// Fill implements lxp.Server.
func (w *Web) Fill(holeID string) ([]*xmltree.Tree, error) {
	var page int
	if _, err := fmt.Sscanf(holeID, "page:%d", &page); err != nil || page < 0 {
		return nil, fmt.Errorf("wrapper: malformed hole id %q", holeID)
	}
	size := w.PageSize
	if size < 1 {
		size = 1
	}
	w.Pages++
	items := w.Catalog.Children
	start := page * size
	if start > len(items) {
		return nil, fmt.Errorf("wrapper: stale hole id %q", holeID)
	}
	end := start + size
	if end > len(items) {
		end = len(items)
	}
	var kids []*xmltree.Tree
	for _, it := range items[start:end] {
		kids = append(kids, it.Clone())
	}
	if end < len(items) {
		kids = append(kids, xmltree.Hole(fmt.Sprintf("page:%d", page+1)))
	}
	if page == 0 {
		// The first fill resolves the root element itself.
		return []*xmltree.Tree{xmltree.Elem(w.Catalog.Label, kids...)}, nil
	}
	return kids, nil
}

// XML returns an LXP server over a plain XML document with the given
// chunking parameters — the generic document wrapper.
func XML(doc *xmltree.Tree, chunk, inlineLimit int) lxp.Server {
	return &lxp.TreeServer{Tree: doc, Chunk: chunk, InlineLimit: inlineLimit}
}
