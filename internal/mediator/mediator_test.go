package mediator

import (
	"slices"
	"testing"

	"mix/internal/algebra"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const homesSchoolsView = `
CONSTRUCT <allhomes>
  <med_home> $H $S {$S} </med_home> {$H}
</allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`

func newMediator(t *testing.T, seed int64) *Mediator {
	t.Helper()
	m := New(DefaultOptions())
	h, s := workload.HomesSchools(15, 20, 4, seed)
	m.RegisterTree("homesSrc", h)
	m.RegisterTree("schoolsSrc", s)
	return m
}

func TestDirectQuery(t *testing.T) {
	m := newMediator(t, 1)
	res, err := m.Query(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	if res.Browsability != algebra.Browsable {
		t.Fatalf("browsability = %v", res.Browsability)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "allhomes" || len(got.Children) == 0 {
		t.Fatalf("answer = %v", got.Label)
	}
	// Lazy and eager agree through the mediator too.
	eagerT, err := m.QueryEager(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, eagerT) {
		t.Fatal("mediator lazy ≠ eager")
	}
}

func TestViewComposition(t *testing.T) {
	m := newMediator(t, 2)
	if err := m.DefineView("homesView", homesSchoolsView); err != nil {
		t.Fatal(err)
	}
	// Client query over the view: select med_homes (navigating the
	// virtual view document like a source).
	res, err := m.Query(`
CONSTRUCT <out> $M {$M} </out> {}
WHERE homesView allhomes.med_home $M
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Compare against querying the view result directly.
	direct, err := m.QueryEager(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != len(direct.Children) {
		t.Fatalf("composition lost med_homes: %d vs %d",
			len(got.Children), len(direct.Children))
	}
	for i := range got.Children {
		if !xmltree.Equal(got.Children[i], direct.Children[i]) {
			t.Fatalf("med_home %d differs", i)
		}
	}
}

func TestViewCompositionWithSelection(t *testing.T) {
	m := newMediator(t, 3)
	if err := m.DefineView("homesView", homesSchoolsView); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(`
CONSTRUCT <zips> $Z {$Z} </zips> {}
WHERE homesView allhomes.med_home $M AND $M home.zip._ $Z
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) == 0 {
		t.Fatal("no zips extracted through composed view")
	}
	// Lazy ≡ eager through composition.
	eagerT, err := m.QueryEager(`
CONSTRUCT <zips> $Z {$Z} </zips> {}
WHERE homesView allhomes.med_home $M AND $M home.zip._ $Z
`)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, eagerT) {
		t.Fatal("composed lazy ≠ eager")
	}
}

func TestNestedViews(t *testing.T) {
	m := newMediator(t, 4)
	if err := m.DefineView("v1", homesSchoolsView); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineView("v2", `
CONSTRUCT <homes2> $M {$M} </homes2> {}
WHERE v1 allhomes.med_home $M
`); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(`
CONSTRUCT <out> $M {$M} </out> {}
WHERE v2 homes2.med_home $M
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) == 0 {
		t.Fatal("nested view composition yields nothing")
	}
}

func TestCyclicViewsRejected(t *testing.T) {
	m := newMediator(t, 5)
	if err := m.DefineView("a", `
CONSTRUCT <x> $M {$M} </x> {} WHERE b x.y $M`); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineView("b", `
CONSTRUCT <y> $M {$M} </y> {} WHERE a x.y $M`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`CONSTRUCT <o> $M {$M} </o> {} WHERE a x.y $M`); err == nil {
		t.Fatal("cyclic views must be rejected")
	}
}

func TestQueryErrors(t *testing.T) {
	m := newMediator(t, 6)
	if _, err := m.Query("garbage"); err == nil {
		t.Fatal("syntax error must surface")
	}
	if _, err := m.Query(`CONSTRUCT <a> $X {$X} </a> {} WHERE nosuch p $X`); err == nil {
		t.Fatal("unknown source must fail at compile")
	}
	if err := m.DefineView("bad", "garbage"); err == nil {
		t.Fatal("bad view definition must fail")
	}
}

func TestRegisterLXPAndQuery(t *testing.T) {
	m := New(DefaultOptions())
	h, s := workload.HomesSchools(10, 10, 3, 7)
	if _, err := m.RegisterLXP("homesSrc", &lxp.TreeServer{Tree: h, Chunk: 2, InlineLimit: 8}, "u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterLXP("schoolsSrc", &lxp.TreeServer{Tree: s, Chunk: 2, InlineLimit: 8}, "u2"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	// Same answer as with plain tree sources.
	m2 := New(DefaultOptions())
	m2.RegisterTree("homesSrc", h)
	m2.RegisterTree("schoolsSrc", s)
	res2, err := m2.Query(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatal("buffered LXP sources change the answer")
	}
}

func TestClientLibrary(t *testing.T) {
	m := newMediator(t, 8)
	res, err := m.Query(homesSchoolsView)
	if err != nil {
		t.Fatal(err)
	}
	root, err := res.Root()
	if err != nil {
		t.Fatal(err)
	}
	name, err := root.Name()
	if err != nil || name != "allhomes" {
		t.Fatalf("root name %q, %v", name, err)
	}
	first, err := root.FirstChild()
	if err != nil || first == nil {
		t.Fatalf("FirstChild: %v %v", first, err)
	}
	if n, _ := first.Name(); n != "med_home" {
		t.Fatalf("first child %q", n)
	}
	home, err := first.Child("home")
	if err != nil || home == nil {
		t.Fatalf("Child(home): %v %v", home, err)
	}
	zip, err := home.Child("zip")
	if err != nil || zip == nil {
		t.Fatalf("Child(zip): %v %v", zip, err)
	}
	text, err := zip.Text()
	if err != nil || len(text) != 5 {
		t.Fatalf("zip text %q, %v", text, err)
	}
	kids := slices.Collect(first.Children())
	if err := first.Err(); err != nil || len(kids) < 2 {
		t.Fatalf("Children: %d, %v", len(kids), err)
	}
	// SelectChildren yields only the matching children, lazily.
	var schoolNames []string
	for s := range first.SelectChildren("school") {
		n, err := s.Name()
		if err != nil {
			t.Fatal(err)
		}
		schoolNames = append(schoolNames, n)
	}
	if err := first.Err(); err != nil {
		t.Fatal(err)
	}
	if len(schoolNames) == 0 || len(schoolNames) >= len(kids) {
		t.Fatalf("SelectChildren(school) = %v of %d kids", schoolNames, len(kids))
	}
	// Breaking out of a range leaves the rest of the list unexplored.
	for range first.Children() {
		break
	}
	if err := first.Err(); err != nil {
		t.Fatal(err)
	}
	sib, err := first.NextSibling()
	if err != nil {
		t.Fatal(err)
	}
	if sib != nil {
		if n, _ := sib.Name(); n != "med_home" {
			t.Fatalf("sibling %q", n)
		}
	}
	if miss, _ := home.Child("nothere"); miss != nil {
		t.Fatal("missing child should be nil")
	}
	tree, err := first.Materialize()
	if err != nil || tree.Label != "med_home" {
		t.Fatalf("Materialize: %v %v", tree, err)
	}
}

func TestClientLibraryEmptyDoc(t *testing.T) {
	if _, err := Wrap(nav.NewTreeDoc(xmltree.Elem("r"))); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteToggle(t *testing.T) {
	m := New(Options{Engine: DefaultOptions().Engine, Rewrite: false})
	h, s := workload.HomesSchools(8, 8, 3, 9)
	m.RegisterTree("homesSrc", h)
	m.RegisterTree("schoolsSrc", s)
	q := `
CONSTRUCT <r> $H {$H} </r> {}
WHERE homesSrc homes.home $H AND $H zip._ $Z
AND schoolsSrc schools.school $S AND $S zip._ $W
AND $Z = $W AND $Z = "91000"
`
	plain, err := m.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(DefaultOptions())
	m2.RegisterTree("homesSrc", h)
	m2.RegisterTree("schoolsSrc", s)
	rewritten, err := m2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	// Rewriting pushes the literal selection below the join.
	if algebra.String(plain) == algebra.String(rewritten) {
		t.Log("plans identical; rewriting found nothing to improve (acceptable but unexpected)")
	}
	// Semantics unchanged.
	a, err := m.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(a, b) {
		t.Fatal("rewriting changed semantics")
	}
}

// TestCompositionThroughAllOperators exercises view substitution
// through the full operator surface: a view referenced below selects,
// joins, groupBys, orderBys and helper ops.
func TestCompositionThroughAllOperators(t *testing.T) {
	m := newMediator(t, 29)
	if err := m.DefineView("v", homesSchoolsView); err != nil {
		t.Fatal(err)
	}
	// A query whose translated plan routes the view through select,
	// join, groupBy, concatenate, createElement and orderBy.
	q := `
CONSTRUCT <out>
  <pair> $M $N {$N} </pair> {$M}
</out> {}
WHERE v allhomes.med_home $M AND $M home.zip._ $Z
AND v allhomes.med_home.school $N AND $N zip._ $W
AND $Z = $W AND $Z >= "00000"
ORDERBY $Z
`
	res, err := m.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	lazyT, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	eagerT, err := m.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(lazyT, eagerT) {
		t.Fatal("composed lazy ≠ eager through full operator surface")
	}
	if len(lazyT.Children) == 0 {
		t.Fatal("composition produced empty answer")
	}
}

func TestResultBrowsabilityExposed(t *testing.T) {
	m := newMediator(t, 30)
	res, err := m.Query(`
CONSTRUCT <r> $H {$H} </r> {}
WHERE homesSrc homes.home $H AND $H price._ $P
ORDERBY $P`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Browsability != algebra.Unbrowsable {
		t.Fatalf("browsability = %v", res.Browsability)
	}
	if res.Plan == nil {
		t.Fatal("plan not exposed")
	}
}
