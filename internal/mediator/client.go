package mediator

import (
	"fmt"
	"iter"

	"mix/internal/nav"
	"mix/internal/xmltree"
)

// Element is the thin client library of Section 5: it makes the virtual
// document exported by the mediator indistinguishable from a main
// memory resident XML document. Each Element privately stores the
// node-id exported by the mediator; clients never see ids. Navigation
// methods correspond 1:1 to the DOM-VXD commands the library issues to
// the mediator.
type Element struct {
	doc nav.Document
	id  nav.ID
	// err is the sticky error of the last Children/SelectChildren range
	// over this element (see Err).
	err error
}

// XMLElement is the name the paper gives the client veneer's node type.
type XMLElement = Element

// Wrap returns the root element of a (virtual) document.
func Wrap(doc nav.Document) (*Element, error) {
	root, err := doc.Root()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("mediator: document has no root")
	}
	return &Element{doc: doc, id: root}, nil
}

// Name returns the element's tag name (or, for text nodes, the text),
// issuing an f command.
func (e *Element) Name() (string, error) { return e.doc.Fetch(e.id) }

// FirstChild returns the first child element, or nil — a d command.
func (e *Element) FirstChild() (*Element, error) {
	id, err := e.doc.Down(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// NextSibling returns the right sibling, or nil — an r command.
func (e *Element) NextSibling() (*Element, error) {
	id, err := e.doc.Right(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// Child returns the first child with the given name, or nil — a
// select(σ) navigation.
func (e *Element) Child(name string) (*Element, error) {
	id, err := e.doc.Down(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	id, err = nav.Select(e.doc, id, nav.LabelIs(name), true)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// Children iterates over the element's children in document order,
// issuing one d command and then one r command per step — each child is
// derived only when the range reaches it, so breaking early leaves the
// rest of the list unexplored. A navigation error ends the range; check
// e.Err() after it. Collect eagerly with slices.Collect(e.Children()).
func (e *Element) Children() iter.Seq[*Element] {
	return func(yield func(*Element) bool) {
		e.err = nil
		c, err := e.FirstChild()
		for ; err == nil && c != nil; c, err = c.NextSibling() {
			if !yield(c) {
				return
			}
		}
		e.err = err
	}
}

// SelectChildren iterates over the children labeled name, in document
// order — the select(σ) navigation of Section 2 per step, so sources
// with native selection skip non-matching siblings without deriving
// them. A navigation error ends the range; check e.Err() after it.
func (e *Element) SelectChildren(name string) iter.Seq[*Element] {
	return func(yield func(*Element) bool) {
		e.err = nil
		id, err := e.doc.Down(e.id)
		for err == nil && id != nil {
			id, err = nav.Select(e.doc, id, nav.LabelIs(name), true)
			if err != nil || id == nil {
				break
			}
			if !yield(&Element{doc: e.doc, id: id}) {
				return
			}
			id, err = e.doc.Right(id)
		}
		e.err = err
	}
}

// Err returns the navigation error that ended the element's most recent
// Children or SelectChildren range, or nil if it ran to completion (or
// was broken out of).
func (e *Element) Err() error { return e.err }

// Text returns the concatenated text content of the element's subtree,
// exploring it fully.
func (e *Element) Text() (string, error) {
	t, err := e.Materialize()
	if err != nil {
		return "", err
	}
	return t.TextContent(), nil
}

// Materialize explores and returns the element's entire subtree.
func (e *Element) Materialize() (*xmltree.Tree, error) {
	return nav.Subtree(e.doc, e.id)
}
