package mediator

import (
	"fmt"

	"mix/internal/nav"
	"mix/internal/xmltree"
)

// Element is the thin client library of Section 5: it makes the virtual
// document exported by the mediator indistinguishable from a main
// memory resident XML document. Each Element privately stores the
// node-id exported by the mediator; clients never see ids. Navigation
// methods correspond 1:1 to the DOM-VXD commands the library issues to
// the mediator.
type Element struct {
	doc nav.Document
	id  nav.ID
}

// Wrap returns the root element of a (virtual) document.
func Wrap(doc nav.Document) (*Element, error) {
	root, err := doc.Root()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("mediator: document has no root")
	}
	return &Element{doc: doc, id: root}, nil
}

// Name returns the element's tag name (or, for text nodes, the text),
// issuing an f command.
func (e *Element) Name() (string, error) { return e.doc.Fetch(e.id) }

// FirstChild returns the first child element, or nil — a d command.
func (e *Element) FirstChild() (*Element, error) {
	id, err := e.doc.Down(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// NextSibling returns the right sibling, or nil — an r command.
func (e *Element) NextSibling() (*Element, error) {
	id, err := e.doc.Right(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// Child returns the first child with the given name, or nil — a
// select(σ) navigation.
func (e *Element) Child(name string) (*Element, error) {
	id, err := e.doc.Down(e.id)
	if err != nil || id == nil {
		return nil, err
	}
	id, err = nav.Select(e.doc, id, nav.LabelIs(name), true)
	if err != nil || id == nil {
		return nil, err
	}
	return &Element{doc: e.doc, id: id}, nil
}

// Children returns all children. It explores the whole child list (but
// not the grandchildren's subtrees).
func (e *Element) Children() ([]*Element, error) {
	var out []*Element
	c, err := e.FirstChild()
	if err != nil {
		return nil, err
	}
	for c != nil {
		out = append(out, c)
		c, err = c.NextSibling()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Text returns the concatenated text content of the element's subtree,
// exploring it fully.
func (e *Element) Text() (string, error) {
	t, err := e.Materialize()
	if err != nil {
		return "", err
	}
	return t.TextContent(), nil
}

// Materialize explores and returns the element's entire subtree.
func (e *Element) Materialize() (*xmltree.Tree, error) {
	return nav.Subtree(e.doc, e.id)
}
