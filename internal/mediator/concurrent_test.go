package mediator_test

// Registry-concurrency tests: the mixd server creates mediators from
// session goroutines and may register sources / define views while
// other goroutines prepare and evaluate queries, so the registries must
// tolerate genuinely concurrent access (run under -race).

import (
	"fmt"
	"sync"
	"testing"

	"mix/internal/mediator"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const concurrentQuery = `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`

// TestConcurrentRegistryAccess hammers one mediator from three kinds of
// goroutines at once: source registrations (under fresh names), view
// definitions, and full query evaluations over the stable names.
func TestConcurrentRegistryAccess(t *testing.T) {
	homes, schools := workload.HomesSchools(8, 8, 3, 11)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)

	want, err := m.QueryEager(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Writers: register new sources and define new views while queries run.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("extra%d_%d", w, i)
				m.RegisterTree(name, xmltree.Elem("r", xmltree.Leaf("x")))
				view := fmt.Sprintf("view%d_%d", w, i)
				if err := m.DefineView(view,
					`CONSTRUCT <v> $H {$H} </v> {} WHERE homesSrc homes.home $H`); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers: prepare, compile, and evaluate (lazy and eager) concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := m.Query(concurrentQuery)
				if err != nil {
					errs <- err
					return
				}
				got, err := res.Materialize()
				if err != nil {
					errs <- err
					return
				}
				if !xmltree.Equal(got, want) {
					errs <- fmt.Errorf("reader %d: answer changed under concurrent registration", r)
					return
				}
				if r%2 == 0 {
					if _, err := m.QueryEager(concurrentQuery); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentViewUse: queries referencing a view race further view
// definitions (the substitution path reads the view map under the
// mediator lock).
func TestConcurrentViewUse(t *testing.T) {
	homes, _ := workload.HomesSchools(6, 0, 2, 3)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	if err := m.DefineView("homeview",
		`CONSTRUCT <v> $H {$H} </v> {} WHERE homesSrc homes.home $H`); err != nil {
		t.Fatal(err)
	}
	const q = `CONSTRUCT <all> $X {$X} </all> {} WHERE homeview v._ $X`
	want, err := m.QueryEager(q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				name := fmt.Sprintf("other%d_%d", i, j)
				if err := m.DefineView(name,
					`CONSTRUCT <w> $H {$H} </w> {} WHERE homesSrc homes.home $H`); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := m.Query(q)
				if err != nil {
					errs <- err
					return
				}
				got, err := res.Materialize()
				if err != nil {
					errs <- err
					return
				}
				if !xmltree.Equal(got, want) {
					errs <- fmt.Errorf("view answer changed under concurrent definitions")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
