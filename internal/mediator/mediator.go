// Package mediator is the MIX mediator facade (Fig. 1): it owns the
// registry of wrapped sources, the catalogue of XMAS view definitions,
// and the query-processing pipeline of Section 3:
//
//	preprocessing — parse the XMAS query, compose it with the views it
//	references (query ∘ view), and translate to an initial algebra plan;
//	rewriting     — optimize the plan for navigational complexity;
//	evaluation    — compile the plan into a tree of lazy mediators and
//	hand the client a virtual answer document.
//
// Clients consume answers either through nav.Document directly or
// through the thin XMLElement veneer of Section 5 (package mediator's
// Element type), which hides node-ids entirely.
package mediator

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"mix/internal/algebra"
	"mix/internal/buffer"
	"mix/internal/core"
	"mix/internal/eager"
	"mix/internal/lxp"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/trace"
	"mix/internal/xmas"
	"mix/internal/xmltree"
)

// Options configure a Mediator.
type Options struct {
	// Engine options (operator caches, native select, hash join,
	// parallel input derivation).
	Engine core.Options
	// Rewrite enables the navigational-complexity rewriting phase.
	Rewrite bool
	// LXPBatch, when > 1, makes sources registered with RegisterLXP
	// coalesce up to this many holes per fill round trip (the buffer's
	// Batch knob over lxp.FillMany). 0 or 1 keeps single-hole fills.
	LXPBatch int
}

// DefaultOptions enables all caches, the hash equi-join, and rewriting.
func DefaultOptions() Options {
	return Options{Engine: core.DefaultOptions(), Rewrite: true}
}

// Mediator is a configured MIX mediator instance. Queries may be
// prepared and evaluated from multiple goroutines; source/view
// registration should happen before serving queries (registrations
// are guarded, but a query races an in-flight registration it can see
// or miss).
type Mediator struct {
	opts   Options
	engine *core.Engine
	eager  *eager.Evaluator
	cache  *regioncache.Cache

	mu      sync.Mutex
	views   map[string]algebra.Op // tupleDestroy-rooted view plans
	nview   int
	buffers map[string]*buffer.Buffer // LXP buffers by source name
}

// New creates a mediator.
func New(opts Options) *Mediator {
	return &Mediator{
		opts:   opts,
		engine: core.New(core.WithOptions(opts.Engine)),
		eager:  eager.New(),
		views:  map[string]algebra.Op{},
	}
}

// SetTracer installs a navigation-trace recorder on the mediator's
// engine: queries prepared after the call produce causal traces of how
// client navigations fan out through the lazy-mediator tree into
// source navigations. Install before the first Query; without a
// tracer, query evaluation is completely uninstrumented.
func (m *Mediator) SetTracer(rec *trace.Recorder) { m.engine.SetTracer(rec) }

// SetRegionCache installs a shared cross-session region cache: answer
// documents of queries prepared after the call serve already-explored
// regions from the cache (published by any mediator sharing it) instead
// of re-deriving them, and LXP sources registered after the call
// publish their prefetch fills into it. Install before registering
// sources and serving queries. A nil cache (the default) changes
// nothing.
func (m *Mediator) SetRegionCache(c *regioncache.Cache) {
	m.cache = c
	m.engine.SetRegionCache(c)
}

// RegisterSource exposes an arbitrary navigable document under name.
func (m *Mediator) RegisterSource(name string, doc nav.Document) {
	m.engine.Register(name, doc)
	m.eager.Register(name, doc)
}

// RegisterTree exposes a materialized tree under name.
func (m *Mediator) RegisterTree(name string, t *xmltree.Tree) {
	m.RegisterSource(name, nav.NewTreeDoc(t))
}

// RegisterLXP connects to an LXP wrapper (local or remote), places the
// generic buffer component in front of it (Fig. 7), and exposes the
// buffered source under name.
func (m *Mediator) RegisterLXP(name string, srv lxp.Server, uri string) (*buffer.Buffer, error) {
	b, err := buffer.New(srv, uri)
	if err != nil {
		return nil, fmt.Errorf("mediator: opening LXP source %q: %w", name, err)
	}
	b.Batch = m.opts.LXPBatch
	doc := nav.Document(b)
	if m.cache != nil {
		// Pin the source's cache entry to the registry version the
		// registration below will establish, wire prefetch fills to
		// publish into it, and serve the source itself cache-first so
		// regions any session explored are shared across mediators.
		entry := m.cache.EntryAt(m.engine.CacheGeneration(),
			"src:"+name, "lxp:"+uri, m.engine.RegistryVersion()+1)
		b.Publish = entry.MergeTree
		doc = regioncache.NewDoc(entry, b)
	}
	m.RegisterSource(name, doc)
	m.mu.Lock()
	if m.buffers == nil {
		m.buffers = map[string]*buffer.Buffer{}
	}
	m.buffers[name] = b
	m.mu.Unlock()
	return b, nil
}

// BufferStats returns per-source fill accounting for every LXP source
// registered through RegisterLXP (round trips, batched fills, prefetch
// errors); the server's stats op surfaces it to clients.
func (m *Mediator) BufferStats() map[string]buffer.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.buffers) == 0 {
		return nil
	}
	out := make(map[string]buffer.Stats, len(m.buffers))
	for name, b := range m.buffers {
		out[name] = b.Stats()
	}
	return out
}

// DefineView registers a XMAS view definition under the given name.
// Queries may then use the name like a source; at preprocessing time
// the query is composed with the view.
func (m *Mediator) DefineView(name, xmasText string) error {
	q, err := xmas.Parse(xmasText)
	if err != nil {
		return fmt.Errorf("mediator: view %q: %w", name, err)
	}
	plan, err := q.Translate()
	if err != nil {
		return fmt.Errorf("mediator: view %q: %w", name, err)
	}
	m.mu.Lock()
	m.views[name] = plan
	m.mu.Unlock()
	return nil
}

// Result is a prepared query: the plan that will be (or was) evaluated
// and the virtual answer document.
type Result struct {
	// Plan is the final (composed, rewritten) algebra plan.
	Plan algebra.Op
	// Browsability is the static classification of the plan
	// (Definition 2), under the engine's navigation command set.
	Browsability algebra.Browsability

	query *core.Query
}

// Document returns the virtual answer document. Obtaining it (and its
// root handle) performs no source access.
func (r *Result) Document() nav.Document { return r.query.Document() }

// CacheKey returns the (view name, canonical plan fingerprint) pair
// that identifies this query's answer document across mediator
// instances — the region-cache entry key and the cluster session
// routing key.
func (r *Result) CacheKey() (name, fingerprint string) {
	return r.query.CacheName(), r.query.Fingerprint()
}

// SemanticWarm forces the semantic-cache attempt (core.Query.
// TrySemanticNow) and reports whether the query's region entry is now
// fully explored — every navigation will be answered with zero source
// work. The cluster's routed-open path uses it to serve a subsumed
// query locally instead of proxying to the owner.
func (r *Result) SemanticWarm() bool { return r.query.TrySemanticNow() }

// RegionKey returns the full region-cache key of the query's answer
// document — CacheKey plus the generation and registry version pinned
// at compile time. Prefetch successor tables are keyed by it, so model
// state can only ever warm the entry the observing sessions read.
func (r *Result) RegionKey() regioncache.Key { return r.query.RegionKey() }

// PrefetchRegion speculatively drains one top-level region of the
// answer document under a budget, publishing through the normal region
// cache path (see core.Query.PrefetchRegion).
func (r *Result) PrefetchRegion(ctx context.Context, region int, deep bool, budget core.PrefetchBudget, counters *metrics.Counters) (core.PrefetchResult, error) {
	return r.query.PrefetchRegion(ctx, region, deep, budget, counters)
}

// Root returns the answer root as a client-library element.
func (r *Result) Root() (*Element, error) { return Wrap(r.Document()) }

// Materialize fully evaluates the answer.
func (r *Result) Materialize() (*xmltree.Tree, error) { return r.query.Materialize() }

// Query runs the full preprocessing pipeline on a XMAS query and
// returns a prepared Result. No source is accessed.
func (m *Mediator) Query(xmasText string) (*Result, error) {
	plan, views, err := m.prepare(xmasText)
	if err != nil {
		return nil, err
	}
	cq, err := m.engine.Compile(plan)
	if err != nil {
		return nil, fmt.Errorf("mediator: compiling plan: %w", err)
	}
	cq.SetCacheName(cacheName(views))
	cls, _ := algebra.Classify(plan, m.opts.Engine.NativeSelect)
	return &Result{Plan: plan, Browsability: cls, query: cq}, nil
}

// cacheName renders the region-cache name of a query composed from the
// given views: the sorted, deduplicated view names joined with "+"
// ("query" when the plan references no view). Together with the
// canonical plan fingerprint this names the same answer document across
// mediator instances.
func cacheName(views []string) string {
	if len(views) == 0 {
		return "query"
	}
	uniq := append([]string(nil), views...)
	sort.Strings(uniq)
	uniq = slices.Compact(uniq)
	return strings.Join(uniq, "+")
}

// QueryEager evaluates the query with the materializing baseline
// evaluator instead of the lazy engine.
func (m *Mediator) QueryEager(xmasText string) (*xmltree.Tree, error) {
	plan, err := m.Prepare(xmasText)
	if err != nil {
		return nil, err
	}
	return m.eager.Eval(plan)
}

// Prepare parses, composes and rewrites a XMAS query into its final
// algebra plan without compiling it.
func (m *Mediator) Prepare(xmasText string) (algebra.Op, error) {
	plan, _, err := m.prepare(xmasText)
	return plan, err
}

// prepare is Prepare plus the names of the views the query was composed
// with (in substitution order, possibly with duplicates).
func (m *Mediator) prepare(xmasText string) (algebra.Op, []string, error) {
	q, err := xmas.Parse(xmasText)
	if err != nil {
		return nil, nil, err
	}
	plan, err := q.Translate()
	if err != nil {
		return nil, nil, err
	}
	var views []string
	plan, err = m.compose(plan, &views)
	if err != nil {
		return nil, nil, err
	}
	if m.opts.Rewrite {
		plan = algebra.Rewrite(plan)
	}
	if err := algebra.Validate(plan); err != nil {
		return nil, nil, fmt.Errorf("mediator: composed plan invalid: %w", err)
	}
	return plan, views, nil
}

// compose substitutes each Source node that names a defined view with
// the view's body (query ∘ view): the view plan's answer element is
// bound to the source variable, with the view's internal variables
// renamed fresh. Substituted view names are appended to *views.
func (m *Mediator) compose(plan algebra.Op, views *[]string) (algebra.Op, error) {
	return m.substitute(plan, 0, views)
}

const maxViewDepth = 16

func (m *Mediator) substitute(p algebra.Op, depth int, views *[]string) (algebra.Op, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("mediator: view nesting deeper than %d (cyclic views?)", maxViewDepth)
	}
	if src, ok := p.(*algebra.Source); ok {
		m.mu.Lock()
		view, isView := m.views[src.URL]
		m.nview++
		n := m.nview
		m.mu.Unlock()
		if !isView {
			return p, nil
		}
		*views = append(*views, src.URL)
		td, ok := view.(*algebra.TupleDestroy)
		if !ok {
			return nil, fmt.Errorf("mediator: view %q has no tupleDestroy root", src.URL)
		}
		prefix := fmt.Sprintf("view%d~", n)
		renamed, err := algebra.RenameVars(td.Input, func(v string) string { return prefix + v })
		if err != nil {
			return nil, err
		}
		// Views may themselves reference views.
		renamed, err = m.substitute(renamed, depth+1, views)
		if err != nil {
			return nil, err
		}
		body := &algebra.Rename{
			Input: &algebra.Project{Input: renamed, Keep: []string{prefix + td.Var}},
			From:  prefix + td.Var,
			To:    src.Var,
		}
		return body, nil
	}
	// Recurse into inputs via a rebuild using RenameVars' structure:
	// rather than duplicating the copy logic, rename with the identity
	// after substituting children. Simplest correct approach: handle
	// each operator's inputs through algebra.RenameVars is not
	// possible (it doesn't substitute), so rebuild explicitly.
	return m.rebuild(p, depth, views)
}

func (m *Mediator) rebuild(p algebra.Op, depth int, views *[]string) (algebra.Op, error) {
	sub := func(q algebra.Op) (algebra.Op, error) { return m.substitute(q, depth, views) }
	switch op := p.(type) {
	case *algebra.GetDescendants:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.GetDescendants{Input: in, Parent: op.Parent, Path: op.Path, Out: op.Out}, nil
	case *algebra.Select:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Select{Input: in, Cond: op.Cond}, nil
	case *algebra.Join:
		l, err := sub(op.Left)
		if err != nil {
			return nil, err
		}
		r, err := sub(op.Right)
		if err != nil {
			return nil, err
		}
		return &algebra.Join{Left: l, Right: r, Cond: op.Cond}, nil
	case *algebra.GroupBy:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.GroupBy{Input: in, By: op.By, Var: op.Var, Out: op.Out}, nil
	case *algebra.Concatenate:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Concatenate{Input: in, X: op.X, Y: op.Y, Out: op.Out}, nil
	case *algebra.CreateElement:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.CreateElement{Input: in, Label: op.Label, Children: op.Children, Out: op.Out}, nil
	case *algebra.OrderBy:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.OrderBy{Input: in, Keys: op.Keys}, nil
	case *algebra.Project:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Project{Input: in, Keep: op.Keep}, nil
	case *algebra.Union:
		l, err := sub(op.Left)
		if err != nil {
			return nil, err
		}
		r, err := sub(op.Right)
		if err != nil {
			return nil, err
		}
		return &algebra.Union{Left: l, Right: r}, nil
	case *algebra.Difference:
		l, err := sub(op.Left)
		if err != nil {
			return nil, err
		}
		r, err := sub(op.Right)
		if err != nil {
			return nil, err
		}
		return &algebra.Difference{Left: l, Right: r}, nil
	case *algebra.Distinct:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Distinct{Input: in}, nil
	case *algebra.WrapList:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.WrapList{Input: in, Var: op.Var, Out: op.Out}, nil
	case *algebra.Const:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Const{Input: in, Value: op.Value, Out: op.Out}, nil
	case *algebra.Rename:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.Rename{Input: in, From: op.From, To: op.To}, nil
	case *algebra.TupleDestroy:
		in, err := sub(op.Input)
		if err != nil {
			return nil, err
		}
		return &algebra.TupleDestroy{Input: in, Var: op.Var}, nil
	default:
		return nil, fmt.Errorf("mediator: cannot compose through %T", p)
	}
}
