package mediator_test

import (
	"fmt"
	"log"

	"mix/internal/mediator"
	"mix/internal/xmltree"
)

// The Fig. 3 running example end to end: register sources, run a XMAS
// query, navigate the virtual answer through the client library.
func Example() {
	homes := xmltree.Elem("homes",
		xmltree.Elem("home", xmltree.Text("addr", "La Jolla"), xmltree.Text("zip", "91220")),
		xmltree.Elem("home", xmltree.Text("addr", "El Cajon"), xmltree.Text("zip", "91223")),
	)
	schools := xmltree.Elem("schools",
		xmltree.Elem("school", xmltree.Text("dir", "Smith"), xmltree.Text("zip", "91220")),
	)

	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)

	res, err := m.Query(`
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2`)
	if err != nil {
		log.Fatal(err)
	}

	root, _ := res.Root()
	first, _ := root.FirstChild()
	home, _ := first.Child("home")
	addr, _ := home.Child("addr")
	text, _ := addr.Text()
	fmt.Println("first match:", text)
	fmt.Println("browsability:", res.Browsability)
	// Output:
	// first match: La Jolla
	// browsability: browsable
}

// Views are defined once and composed with client queries at
// preprocessing time (query ∘ view).
func ExampleMediator_DefineView() {
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("src", xmltree.Elem("items",
		xmltree.Text("item", "a"), xmltree.Text("item", "b")))

	if err := m.DefineView("v", `
CONSTRUCT <view> $I {$I} </view> {}
WHERE src items.item $I`); err != nil {
		log.Fatal(err)
	}
	res, err := m.Query(`
CONSTRUCT <out> $X {$X} </out> {}
WHERE v view.item $X`)
	if err != nil {
		log.Fatal(err)
	}
	t, _ := res.Materialize()
	fmt.Println(t)
	// Output:
	// out[item[a],item[b]]
}
