package xmas

import (
	"strconv"
	"strings"
	"testing"

	"mix/internal/algebra"
	"mix/internal/core"
	"mix/internal/eager"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// fig3 is the paper's running-example query (Fig. 3), verbatim except
// for whitespace.
const fig3 = `
CONSTRUCT <answer>            % Construct the root element containing ...
  <med_home> $H               % ... med_home elements followed by
    $S {$S}                   % ... school elements (one for each $S)
  </med_home> {$H}            % (one med_home element for each $H)
</answer> {}                  % create one answer element (= for each {})
WHERE homesSrc homes.home $H AND $H zip._ $V1   % get home elements $H and their zip $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2  % ... similarly for schools
AND $V1 = $V2                 % ... join on the zip code
`

func TestParseFig3(t *testing.T) {
	q, err := Parse(fig3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Construct.Tag != "answer" || q.Construct.Group == nil || q.Construct.Group.Var != "" {
		t.Fatalf("root = %+v", q.Construct)
	}
	if len(q.Construct.Items) != 1 {
		t.Fatalf("root items = %d", len(q.Construct.Items))
	}
	mh := q.Construct.Items[0].(*Element)
	if mh.Tag != "med_home" || mh.Group.Var != "H" {
		t.Fatalf("med_home = %+v", mh)
	}
	if len(mh.Items) != 2 {
		t.Fatalf("med_home items = %d", len(mh.Items))
	}
	if v := mh.Items[0].(*VarItem); v.Name != "H" || v.Group != nil {
		t.Fatalf("first item = %+v", v)
	}
	if v := mh.Items[1].(*VarItem); v.Name != "S" || v.Group.Var != "S" {
		t.Fatalf("second item = %+v", v)
	}
	if len(q.Where) != 5 {
		t.Fatalf("where atoms = %d", len(q.Where))
	}
	pa := q.Where[0].(*PathAtom)
	if pa.Source != "homesSrc" || pa.Var != "H" || pa.Path.String() != "homes.home" {
		t.Fatalf("first atom = %+v", pa)
	}
	pa2 := q.Where[1].(*PathAtom)
	if pa2.From != "H" || pa2.Var != "V1" || pa2.Path.String() != "zip._" {
		t.Fatalf("second atom = %+v", pa2)
	}
	ca := q.Where[4].(*CondAtom)
	if ca.Op != "=" || ca.Left != "V1" || ca.Right != "V2" || !ca.RightIsVar {
		t.Fatalf("join atom = %+v", ca)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"WHERE s a $X",
		"CONSTRUCT <a></a> {}",               // no WHERE
		"CONSTRUCT <a></b> {} WHERE s p $X",  // mismatched tags
		"CONSTRUCT <a></a> {} WHERE",         // empty WHERE
		"CONSTRUCT <a></a> {} WHERE $X p $Y", // unbound from-var is a translate error, but parse ok… keep parse-only bad cases:
		"CONSTRUCT <a>$</a> {} WHERE s p $X", // empty var
		"CONSTRUCT <a>\"unterminated</a> {} WHERE s p $X", // bad literal
		"CONSTRUCT <a></a> {} WHERE s [[ $X",              // bad path
		"CONSTRUCT <a></a> {} WHERE s p $X trailing",
	}
	for _, c := range cases[:5] {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
	for _, c := range cases[6:] {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

// wrap builds trees whose root label matches the paper's addressing
// (path "homes.home" from above the root).
func srcs(seed int64) map[string]*xmltree.Tree {
	h, s := workload.HomesSchools(12, 15, 4, seed)
	return map[string]*xmltree.Tree{"homesSrc": h, "schoolsSrc": s}
}

func evalBoth(t *testing.T, q *Query, src map[string]*xmltree.Tree) *xmltree.Tree {
	t.Helper()
	plan, err := q.Translate()
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	ev := eager.New()
	for n, tr := range src {
		ev.Register(n, nav.NewTreeDoc(tr))
	}
	eagerT, err := ev.Eval(plan)
	if err != nil {
		t.Fatalf("eager: %v\n%s", err, algebra.String(plan))
	}
	le := core.New()
	for n, tr := range src {
		le.Register(n, nav.NewTreeDoc(tr))
	}
	cq, err := le.Compile(plan)
	if err != nil {
		t.Fatalf("lazy compile: %v", err)
	}
	lazyT, err := cq.Materialize()
	if err != nil {
		t.Fatalf("lazy: %v", err)
	}
	if !xmltree.Equal(eagerT, lazyT) {
		t.Fatalf("lazy ≠ eager:\n%s\nvs\n%s", eagerT, lazyT)
	}
	return eagerT
}

func TestFig3MatchesHandBuiltPlan(t *testing.T) {
	src := srcs(11)
	got := evalBoth(t, MustParse(fig3), src)

	// The hand-built Fig. 4 plan over the same sources.
	le := core.New()
	for n, tr := range src {
		le.Register(n, nav.NewTreeDoc(tr))
	}
	cq, err := le.Compile(workload.HomesSchoolsPlan())
	if err != nil {
		t.Fatal(err)
	}
	want, err := cq.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatalf("XMAS translation ≠ hand-built Fig. 4 plan:\n%s\nvs\n%s",
			xmltree.MarshalIndent(got), xmltree.MarshalIndent(want))
	}
}

func TestLiteralsAndNestedElements(t *testing.T) {
	q := MustParse(`
CONSTRUCT <report>
  "header"
  <homes> $H {$H} </homes>
</report> {}
WHERE homesSrc homes.home $H
`)
	got := evalBoth(t, q, srcs(3))
	if got.Label != "report" {
		t.Fatalf("root %q", got.Label)
	}
	if got.Children[0].Label != "header" {
		t.Fatalf("literal lost: %v", got.Children[0])
	}
	homes := got.Children[1]
	if homes.Label != "homes" || len(homes.Children) != 12 {
		t.Fatalf("homes = %v", homes.Label)
	}
}

func TestSelectionQueryWithLiteral(t *testing.T) {
	src := srcs(5)
	q := MustParse(`
CONSTRUCT <cheap> $H {$H} </cheap> {}
WHERE homesSrc homes.home $H AND $H price._ $P AND $P < "500000"
`)
	got := evalBoth(t, q, src)
	want := 0
	for _, h := range src["homesSrc"].Children {
		if algebra.Compare(h.Find("price").TextContent(), "500000") < 0 {
			want++
		}
	}
	if len(got.Children) != want || want == 0 {
		t.Fatalf("selected %d, want %d (>0)", len(got.Children), want)
	}
}

func TestGroupedElementWithoutInnerGrouping(t *testing.T) {
	// One wrapper element per distinct $H, even though the body has
	// multiplicity (H × V1 bindings are 1:1 here, so use schools join
	// to create multiplicity).
	src := srcs(7)
	q := MustParse(`
CONSTRUCT <zips> <z> $V1 </z> {$V1} </zips> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
`)
	got := evalBoth(t, q, src)
	seen := map[string]bool{}
	for _, z := range got.Children {
		v := z.TextContent()
		if seen[v] {
			t.Fatalf("duplicate z element for %q: grouped element not deduplicated", v)
		}
		seen[v] = true
	}
	if len(seen) == 0 {
		t.Fatal("no zips matched")
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		// unbound from-var
		"CONSTRUCT <a></a> {} WHERE $X p $Y",
		// condition on unbound var
		`CONSTRUCT <a></a> {} WHERE s p $X AND $Y = "1"`,
		// double binding
		"CONSTRUCT <a></a> {} WHERE s p $X AND s p $X",
		// grouped var item grouped by another var
		"CONSTRUCT <a> $X {$Y} </a> {} WHERE s p $X AND $X q $Y",
		// two grouped items at one level
		"CONSTRUCT <a> $X {$X} $Y {$Y} </a> {} WHERE s p $X AND $X q $Y",
		// non-root {} group
		"CONSTRUCT <a> <b> $X </b> {} </a> {} WHERE s p $X",
	}
	for _, c := range cases {
		q, err := Parse(c)
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, err := q.Translate(); err == nil {
			t.Errorf("Translate(%q): expected error", c)
		}
	}
}

func TestTranslatedPlanShape(t *testing.T) {
	plan, err := MustParse(fig3).Translate()
	if err != nil {
		t.Fatal(err)
	}
	s := algebra.String(plan)
	for _, want := range []string{"tupleDestroy", "groupBy", "join", "getDescendants", "createElement"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %s:\n%s", want, s)
		}
	}
	if err := algebra.Validate(plan); err != nil {
		t.Fatal(err)
	}
	// The paper's plan is browsable (join/groupBy, no orderBy).
	if cls, _ := algebra.Classify(plan, false); cls != algebra.Browsable {
		t.Fatalf("fig3 class = %v", cls)
	}
}

func TestComparisonOperators(t *testing.T) {
	src := srcs(13)
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		q, err := Parse(`
CONSTRUCT <r> $H {$H} </r> {}
WHERE homesSrc homes.home $H AND $H price._ $P AND $P ` + op + ` "400000"`)
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		evalBoth(t, q, src) // lazy ≡ eager is the assertion
	}
}

func TestCartesianProductOfSources(t *testing.T) {
	src := map[string]*xmltree.Tree{
		"s1": workload.FlatList(3, "a"),
		"s2": workload.FlatList(2, "b"),
	}
	q := MustParse(`
CONSTRUCT <pairs> <p> $X $Y </p> {$Y} </pairs> {}
WHERE s1 r.a $X AND s2 r.b $Y
`)
	got := evalBoth(t, q, src)
	// Grouped by $Y only → 2 p elements, each containing all 3 X's? No:
	// p is one per distinct Y; contents = $X $Y per that Y… $X ungrouped
	// inside a {$Y} group refers to each X binding — dedup keeps
	// (Y, X) pairs distinct, so 2 groups × … the exact count depends on
	// dedup semantics; assert the grouping invariant instead:
	if got.Label != "pairs" || len(got.Children) == 0 {
		t.Fatalf("pairs = %v", got)
	}
}

func TestOrderByClause(t *testing.T) {
	src := srcs(19)
	q := MustParse(`
CONSTRUCT <sorted> $H {$H} </sorted> {}
WHERE homesSrc homes.home $H AND $H price._ $P
ORDERBY $P
`)
	if len(q.OrderBy) != 1 || q.OrderBy[0] != "P" {
		t.Fatalf("OrderBy = %v", q.OrderBy)
	}
	got := evalBoth(t, q, src)
	var prev float64 = -1
	for _, h := range got.Children {
		p, err := strconv.ParseFloat(h.Find("price").TextContent(), 64)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("not sorted: %v after %v", p, prev)
		}
		prev = p
	}
	plan, err := q.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if cls, _ := algebra.Classify(plan, false); cls != algebra.Unbrowsable {
		t.Fatalf("ORDERBY query should be unbrowsable, got %v", cls)
	}
}

func TestOrderByClauseMultiKeyAndErrors(t *testing.T) {
	q := MustParse(`
CONSTRUCT <r> $H {$H} </r> {}
WHERE homesSrc homes.home $H AND $H zip._ $Z AND $H price._ $P
ORDERBY $Z $P
`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("OrderBy = %v", q.OrderBy)
	}
	evalBoth(t, q, srcs(23))

	// ORDERBY over an unbound variable fails validation at translate.
	bad := MustParse(`
CONSTRUCT <r> $H {$H} </r> {}
WHERE homesSrc homes.home $H
ORDERBY $NOPE
`)
	if _, err := bad.Translate(); err == nil {
		t.Fatal("ORDERBY unbound var must fail")
	}
	// Malformed ORDERBY (no variable).
	if _, err := Parse("CONSTRUCT <r> $H {$H} </r> {} WHERE s p $H ORDERBY"); err == nil {
		t.Fatal("ORDERBY without variables must fail")
	}
}

func TestThreeLevelNesting(t *testing.T) {
	// A grouped element containing an ungrouped element that contains a
	// grouped variable: homes bucketed by zip code.
	src := srcs(37)
	q := MustParse(`
CONSTRUCT <byzip>
  <zip_group> $V1 <homes2> $H {$H} </homes2> </zip_group> {$V1}
</byzip> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
`)
	got := evalBoth(t, q, src)
	if got.Label != "byzip" || len(got.Children) == 0 {
		t.Fatalf("answer = %v", got)
	}
	total := 0
	seen := map[string]bool{}
	for _, g := range got.Children {
		if g.Label != "zip_group" {
			t.Fatalf("group label %q", g.Label)
		}
		zip := g.Children[0].Label // the bound V1 leaf
		if seen[zip] {
			t.Fatalf("duplicate zip group %q", zip)
		}
		seen[zip] = true
		homes2 := g.Find("homes2")
		if homes2 == nil || len(homes2.Children) == 0 {
			t.Fatalf("zip group %q without homes: %v", zip, g)
		}
		for _, h := range homes2.Children {
			if h.Find("zip").TextContent() != zip {
				t.Fatalf("home in wrong bucket: %v under %q", h, zip)
			}
			total++
		}
	}
	if total != len(src["homesSrc"].Children) {
		t.Fatalf("bucketed %d homes, want %d", total, len(src["homesSrc"].Children))
	}
}

func TestThreeSourceProduct(t *testing.T) {
	src := map[string]*xmltree.Tree{
		"s1": workload.FlatList(2, "a"),
		"s2": workload.FlatList(3, "b"),
		"s3": workload.FlatList(2, "c"),
	}
	q := MustParse(`
CONSTRUCT <triples> <t> $X $Y $Z </t> {$Z} </triples> {}
WHERE s1 r.a $X AND s2 r.b $Y AND s3 r.c $Z
`)
	got := evalBoth(t, q, src)
	// Dedup per (Z, X, Y): 2×3×2 distinct combinations grouped by… the
	// element is {$Z}-grouped with ungrouped $X/$Y → dedup over
	// (Z,X,Y) = 12 triples.
	if len(got.Children) != 12 {
		t.Fatalf("triples = %d, want 12", len(got.Children))
	}
}

func TestSourceOnlyRootListing(t *testing.T) {
	// Query a source root element itself via a one-step path.
	src := srcs(41)
	q := MustParse(`
CONSTRUCT <roots> $R {$R} </roots> {}
WHERE homesSrc homes $R
`)
	got := evalBoth(t, q, src)
	if len(got.Children) != 1 || got.Children[0].Label != "homes" {
		t.Fatalf("root listing: %v", got)
	}
}

// fig3Pattern is the Fig. 3 query with the WHERE clause written as the
// tree patterns of footnote 6 instead of path atoms.
const fig3Pattern = `
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE <homes> $H: <home> <zip>$V1</zip> </home> </homes> IN homesSrc
AND <schools> $S: <school> <zip>$V2</zip> </school> </schools> IN schoolsSrc
AND $V1 = $V2
`

func TestTreePatternEquivalentToPathAtoms(t *testing.T) {
	src := srcs(47)
	patT := evalBoth(t, MustParse(fig3Pattern), src)
	pathT := evalBoth(t, MustParse(fig3), src)
	if !xmltree.Equal(patT, pathT) {
		t.Fatalf("tree-pattern query ≠ path-atom query:\n%s\nvs\n%s",
			xmltree.MarshalIndent(patT), xmltree.MarshalIndent(pathT))
	}
}

func TestTreePatternParsing(t *testing.T) {
	q := MustParse(fig3Pattern)
	pa, ok := q.Where[0].(*PatternAtom)
	if !ok {
		t.Fatalf("first atom = %T", q.Where[0])
	}
	if pa.Source != "homesSrc" || pa.Pattern.Tag != "homes" {
		t.Fatalf("pattern atom = %+v", pa)
	}
	home := pa.Pattern.Children[0]
	if home.Bind != "H" || home.Tag != "home" {
		t.Fatalf("home pattern = %+v", home)
	}
	zip := home.Children[0]
	if zip.Tag != "zip" || zip.Content != "V1" {
		t.Fatalf("zip pattern = %+v", zip)
	}
}

func TestTreePatternAnonymousElements(t *testing.T) {
	// Intermediate elements without bindings get fresh variables.
	src := srcs(51)
	q := MustParse(`
CONSTRUCT <zips> $V {$V} </zips> {}
WHERE <homes> <home> <zip>$V</zip> </home> </homes> IN homesSrc
`)
	got := evalBoth(t, q, src)
	if len(got.Children) != len(src["homesSrc"].Children) {
		t.Fatalf("zips = %d, want one per home", len(got.Children))
	}
}

func TestTreePatternErrors(t *testing.T) {
	cases := []string{
		"CONSTRUCT <a></a> {} WHERE <h> $X: <x></x> </h>", // missing IN
		"CONSTRUCT <a></a> {} WHERE <h> </x> IN s",        // mismatched tags
		"CONSTRUCT <a></a> {} WHERE <h> $X $Y </h> IN s",  // content bound twice
		"CONSTRUCT <a></a> {} WHERE $X: IN s",             // binding without element
		"CONSTRUCT <a></a> {} WHERE <h> <x> </h> IN s",    // unclosed child
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}
