package xmas

import (
	"fmt"

	"mix/internal/algebra"
	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// Translate compiles the query into an equivalent XMAS algebra plan
// (the compile-time preprocessing step of Section 3). The WHERE clause
// becomes a tree of source/getDescendants/select/join operators whose
// output is the list of variable bindings; the CONSTRUCT clause becomes
// groupBy/concatenate/createElement operators over it, with a final
// tupleDestroy extracting the answer element — the shape of Fig. 4.
//
// Restriction (documented, checked): within one template level, at most
// one grouped item may appear, and template items after it may only
// reference the level's context variables. This covers the grouping
// patterns of the paper; lifting it requires joining parallel groupBy
// subplans back on their keys.
func (q *Query) Translate() (algebra.Op, error) {
	tr := &translator{}
	body, err := tr.body(q.Where)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		body = &algebra.OrderBy{Input: body, Keys: q.OrderBy}
	}
	if q.Construct == nil {
		return nil, fmt.Errorf("xmas: query without CONSTRUCT clause")
	}
	root := q.Construct
	if root.Group != nil && root.Group.Var != "" {
		return nil, fmt.Errorf("xmas: the root element must be grouped by {} (one answer), not {$%s}", root.Group.Var)
	}
	plan, inner, err := tr.items(body, root.Items, nil)
	if err != nil {
		return nil, err
	}
	ansVar := tr.fresh()
	plan = &algebra.CreateElement{Input: plan,
		Label: algebra.LabelSpec{Const: root.Tag}, Children: inner, Out: ansVar}
	full := &algebra.TupleDestroy{Input: plan, Var: ansVar}
	if err := algebra.Validate(full); err != nil {
		return nil, fmt.Errorf("xmas: translated plan invalid: %w", err)
	}
	return full, nil
}

type translator struct {
	n int
}

// fresh returns a new internal variable name; '#' keeps it disjoint
// from user variables, which come from $[A-Za-z0-9_]+.
func (t *translator) fresh() string {
	t.n++
	return fmt.Sprintf("#%d", t.n)
}

// component is a connected subplan of the body with its bound vars.
type component struct {
	plan algebra.Op
	vars map[string]bool
}

// desugar expands tree patterns (footnote 6) into the equivalent chain
// of path atoms, inventing fresh variables for anonymous elements.
func (t *translator) desugar(atoms []Atom) ([]Atom, error) {
	var out []Atom
	for _, a := range atoms {
		pa, ok := a.(*PatternAtom)
		if !ok {
			out = append(out, a)
			continue
		}
		if pa.Pattern == nil {
			return nil, fmt.Errorf("xmas: empty tree pattern")
		}
		// The root pattern element is addressed from the source.
		rootVar := pa.Pattern.Bind
		if rootVar == "" {
			rootVar = t.fresh()
		}
		out = append(out, &PathAtom{Source: pa.Source,
			Path: mustPathLabel(pa.Pattern.Tag), Var: rootVar})
		expanded, err := t.desugarChildren(pa.Pattern, rootVar)
		if err != nil {
			return nil, err
		}
		out = append(out, expanded...)
	}
	return out, nil
}

func (t *translator) desugarChildren(n *PatternNode, parentVar string) ([]Atom, error) {
	var out []Atom
	if n.Content != "" {
		out = append(out, &PathAtom{From: parentVar,
			Path: pathexpr.MustParse("_"), Var: n.Content})
	}
	for _, c := range n.Children {
		v := c.Bind
		if v == "" {
			v = t.fresh()
		}
		out = append(out, &PathAtom{From: parentVar,
			Path: mustPathLabel(c.Tag), Var: v})
		sub, err := t.desugarChildren(c, v)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// mustPathLabel builds the single-step path for an element tag.
func mustPathLabel(tag string) *pathexpr.Expr {
	e, err := pathexpr.Parse(tag)
	if err != nil {
		panic(fmt.Sprintf("xmas: pattern tag %q is not a valid path step: %v", tag, err))
	}
	return e
}

// body translates the WHERE clause: path atoms grow components, and
// comparisons either filter a component or join two.
func (t *translator) body(atoms []Atom) (algebra.Op, error) {
	atoms, err := t.desugar(atoms)
	if err != nil {
		return nil, err
	}
	var comps []*component
	find := func(v string) *component {
		for _, c := range comps {
			if c.vars[v] {
				return c
			}
		}
		return nil
	}
	defined := func(v string) bool { return find(v) != nil }

	for _, a := range atoms {
		switch a := a.(type) {
		case *PathAtom:
			if defined(a.Var) {
				return nil, fmt.Errorf("xmas: variable $%s bound twice", a.Var)
			}
			if a.Source != "" {
				// The path is matched from a virtual node above the
				// source root, so a path's first step can name the
				// root element itself (as in "homes.home").
				rootVar, listVar, docVar := t.fresh(), t.fresh(), t.fresh()
				var plan algebra.Op = &algebra.Source{URL: a.Source, Var: rootVar}
				plan = &algebra.WrapList{Input: plan, Var: rootVar, Out: listVar}
				plan = &algebra.CreateElement{Input: plan,
					Label: algebra.LabelSpec{Const: "#doc"}, Children: listVar, Out: docVar}
				plan = &algebra.GetDescendants{Input: plan, Parent: docVar, Path: a.Path, Out: a.Var}
				comps = append(comps, &component{plan: plan,
					vars: map[string]bool{a.Var: true}})
				continue
			}
			c := find(a.From)
			if c == nil {
				return nil, fmt.Errorf("xmas: path atom from unbound variable $%s", a.From)
			}
			c.plan = &algebra.GetDescendants{Input: c.plan, Parent: a.From, Path: a.Path, Out: a.Var}
			c.vars[a.Var] = true

		case *CondAtom:
			cond, vars, err := t.cond(a)
			if err != nil {
				return nil, err
			}
			var touched []*component
			for _, v := range vars {
				c := find(v)
				if c == nil {
					return nil, fmt.Errorf("xmas: condition references unbound variable $%s", v)
				}
				if !containsComp(touched, c) {
					touched = append(touched, c)
				}
			}
			switch len(touched) {
			case 1:
				touched[0].plan = &algebra.Select{Input: touched[0].plan, Cond: cond}
			case 2:
				merged := &component{
					plan: &algebra.Join{Left: touched[0].plan, Right: touched[1].plan, Cond: cond},
					vars: unionVars(touched[0].vars, touched[1].vars),
				}
				comps = replaceComps(comps, touched, merged)
			default:
				return nil, fmt.Errorf("xmas: condition %s $%s references no bound variable", a.Op, a.Left)
			}

		default:
			return nil, fmt.Errorf("xmas: unknown atom %T", a)
		}
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("xmas: WHERE clause binds no variables")
	}
	// Remaining disconnected components: cartesian product, in order.
	out := comps[0]
	for _, c := range comps[1:] {
		out = &component{
			plan: &algebra.Join{Left: out.plan, Right: c.plan, Cond: algebra.True{}},
			vars: unionVars(out.vars, c.vars),
		}
	}
	return out.plan, nil
}

func (t *translator) cond(a *CondAtom) (algebra.Cond, []string, error) {
	var op algebra.CmpOp
	switch a.Op {
	case "=":
		op = algebra.OpEq
	case "!=":
		op = algebra.OpNeq
	case "<":
		op = algebra.OpLt
	case "<=":
		op = algebra.OpLe
	case ">":
		op = algebra.OpGt
	case ">=":
		op = algebra.OpGe
	default:
		return nil, nil, fmt.Errorf("xmas: unknown comparison %q", a.Op)
	}
	l := algebra.V(a.Left)
	vars := []string{a.Left}
	var r algebra.Operand
	if a.RightIsVar {
		r = algebra.V(a.Right)
		vars = append(vars, a.Right)
	} else {
		r = algebra.Lit(a.Right)
	}
	return &algebra.Cmp{Op: op, L: l, R: r}, vars, nil
}

func containsComp(cs []*component, c *component) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func unionVars(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func replaceComps(comps []*component, remove []*component, merged *component) []*component {
	var out []*component
	for _, c := range comps {
		if !containsComp(remove, c) {
			out = append(out, c)
		}
	}
	return append(out, merged)
}

// items translates a template level: each item yields a variable bound
// to a list[…] value; the item variables are folded with concatenate in
// template order. ctx is the level's context variables (the group keys
// of every enclosing element).
//
// The grouped item (at most one per level) is translated *first*, with
// By = ctx: the grouping collapses the plan to one binding per ctx
// combination, and the remaining plain items — which may only reference
// ctx variables — are constructed afterwards on the collapsed plan.
// This ordering keeps the group-by keys minimal (only real context
// variables are canonicalized during grouping).
func (t *translator) items(plan algebra.Op, items []Item, ctx []string) (algebra.Op, string, error) {
	gi := -1
	for i, item := range items {
		if isGroupingItem(item) {
			if gi >= 0 {
				return nil, "", fmt.Errorf("xmas: at most one grouped item per template level is supported")
			}
			gi = i
		}
	}
	vars := make([]string, len(items))
	var err error
	if gi >= 0 {
		plan, vars[gi], err = t.item(plan, items[gi], ctx)
		if err != nil {
			return nil, "", err
		}
	}
	for i, item := range items {
		if i == gi {
			continue
		}
		plan, vars[i], err = t.item(plan, item, ctx)
		if err != nil {
			return nil, "", err
		}
	}
	acc := ""
	for _, v := range vars {
		if acc == "" {
			acc = v
			continue
		}
		out := t.fresh()
		plan = &algebra.Concatenate{Input: plan, X: acc, Y: v, Out: out}
		acc = out
	}
	if acc == "" {
		// Empty element: constant empty list.
		acc = t.fresh()
		plan = &algebra.Const{Input: plan, Value: xmltree.Elem(xmltree.ListLabel), Out: acc}
	}
	return plan, acc, nil
}

// isGroupingItem reports whether translating the item collapses the
// plan's granularity: a grouped variable, a grouped element, or an
// ungrouped element whose contents contain a grouping.
func isGroupingItem(item Item) bool {
	switch it := item.(type) {
	case *VarItem:
		return it.Group != nil
	case *Element:
		return it.Group != nil || containsGrouping(it.Items)
	}
	return false
}

// item translates one template item to a list-valued variable.
func (t *translator) item(plan algebra.Op, item Item, ctx []string) (_ algebra.Op, outVar string, _ error) {
	switch it := item.(type) {
	case *TextItem:
		out := t.fresh()
		return &algebra.Const{Input: plan,
			Value: xmltree.Elem(xmltree.ListLabel, xmltree.Leaf(it.Text)), Out: out}, out, nil

	case *VarItem:
		if it.Group == nil {
			out := t.fresh()
			return &algebra.WrapList{Input: plan, Var: it.Name, Out: out}, out, nil
		}
		if it.Group.Var != it.Name {
			return nil, "", fmt.Errorf(
				"xmas: a grouped variable item must be grouped by itself ($%s {$%s})", it.Name, it.Name)
		}
		out := t.fresh()
		return &algebra.GroupBy{Input: plan, By: dedupVars(ctx), Var: it.Name, Out: out}, out, nil

	case *Element:
		if it.Group == nil {
			inner, innerVar, err := t.itemsWrap(plan, it, ctx)
			if err != nil {
				return nil, "", err
			}
			ev, out := innerVar, t.fresh()
			return &algebra.WrapList{Input: inner, Var: ev, Out: out}, out, nil
		}
		if it.Group.Var == "" {
			return nil, "", fmt.Errorf("xmas: only the root element may be grouped by {}")
		}
		gv := it.Group.Var
		ctx2 := dedupVars(append(append([]string{}, ctx...), gv))
		// Without an inner grouping, deduplicate to one element per
		// distinct (ctx, group var, used vars) combination so that
		// "for each binding of $V exactly one element is created".
		if !containsGrouping(it.Items) {
			keep := dedupKeep(ctx2, nil, it.Items)
			plan = &algebra.Distinct{Input: &algebra.Project{Input: plan, Keep: keep}}
		}
		inner, ev, err := t.itemsWrap(plan, it, ctx2)
		if err != nil {
			return nil, "", err
		}
		out := t.fresh()
		return &algebra.GroupBy{Input: inner, By: dedupVars(ctx), Var: ev, Out: out}, out, nil

	default:
		return nil, "", fmt.Errorf("xmas: unknown template item %T", item)
	}
}

// itemsWrap translates an element's contents and wraps them in the
// element, returning the element-valued variable.
func (t *translator) itemsWrap(plan algebra.Op, el *Element, ctx []string) (algebra.Op, string, error) {
	plan, inner, err := t.items(plan, el.Items, ctx)
	if err != nil {
		return nil, "", err
	}
	ev := t.fresh()
	return &algebra.CreateElement{Input: plan,
		Label: algebra.LabelSpec{Const: el.Tag}, Children: inner, Out: ev}, ev, nil
}

// dedupVars removes duplicates preserving first occurrences.
func dedupVars(vars []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// containsGrouping reports whether the items contain a grouping on the
// fold path: a grouped item directly, or inside an ungrouped element.
func containsGrouping(items []Item) bool {
	for _, item := range items {
		switch it := item.(type) {
		case *VarItem:
			if it.Group != nil {
				return true
			}
		case *Element:
			if it.Group != nil {
				return true
			}
			if containsGrouping(it.Items) {
				return true
			}
		}
	}
	return false
}

// dedupKeep computes the projection list for the pre-grouping dedup:
// context vars, accumulated vars, and every variable the element's
// contents reference.
func dedupKeep(ctx2, accVars []string, items []Item) []string {
	seen := map[string]bool{}
	var keep []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	for _, v := range ctx2 {
		add(v)
	}
	for _, v := range accVars {
		add(v)
	}
	var walk func(items []Item)
	walk = func(items []Item) {
		for _, item := range items {
			switch it := item.(type) {
			case *VarItem:
				add(it.Name)
			case *Element:
				if it.Group != nil && it.Group.Var != "" {
					add(it.Group.Var)
				}
				walk(it.Items)
			}
		}
	}
	walk(items)
	return keep
}
