// Package xmas implements the XML Matching And Structuring language of
// the paper (Fig. 3): declarative queries/view definitions with a
// CONSTRUCT clause describing the answer document and a WHERE clause
// binding variables through generalized path expressions, plus their
// translation into the XMAS algebra (the preprocessing step of
// Section 3).
//
// The supported grammar, in the paper's concrete syntax:
//
//	query    := CONSTRUCT element WHERE cond (AND cond)* (ORDERBY '$'VAR+)?
//	element  := '<' tag '>' item* '</' tag '>' group?
//	item     := element | '$'VAR group? | '"' literal '"'
//	group    := '{' ('$'VAR)? '}'
//	cond     := source path '$'VAR         (bind from a source root)
//	          | '$'VAR path '$'VAR         (bind from a variable)
//	          | '$'VAR op operand          (comparison)
//	          | pattern IN source          (tree pattern, footnote 6)
//	pattern  := ('$'VAR ':')? '<' tag '>' (pattern | '$'VAR)* '</' tag '>'
//	op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//	operand  := '$'VAR | '"' literal '"' | bareword
//
// '%' starts a comment running to end of line. Paths are the
// generalized regular path expressions of package pathexpr; as in the
// paper, a source path is matched from a virtual document node above
// the source root, so "homes.home" addresses home elements inside a
// homes root document.
package xmas

import (
	"fmt"
	"strings"

	"mix/internal/pathexpr"
)

// Query is a parsed XMAS query or view definition.
type Query struct {
	Construct *Element
	Where     []Atom
	// OrderBy lists the variables of a trailing ORDERBY clause; the
	// body bindings are reordered by their values before construction.
	// A query with ORDERBY is unbrowsable (Definition 2).
	OrderBy []string
}

// Element is a template element of the CONSTRUCT clause.
type Element struct {
	Tag   string
	Items []Item
	// Group is nil for an ungrouped element; a Group with empty Var is
	// the root's "{}" (one element in total).
	Group *Group
}

// Group is a grouping annotation: {} (Var empty) or {$V}.
type Group struct {
	Var string
}

// Item is a template item: *Element, *VarItem or *TextItem.
type Item interface{ item() }

// VarItem is a variable reference in a template, optionally grouped
// ($S {$S} lists one copy per binding of $S).
type VarItem struct {
	Name  string
	Group *Group
}

// TextItem is literal character content.
type TextItem struct {
	Text string
}

func (*Element) item()  {}
func (*VarItem) item()  {}
func (*TextItem) item() {}

// Atom is a WHERE-clause conjunct: *PathAtom or *CondAtom.
type Atom interface{ atom() }

// PathAtom binds Var to the descendants reachable via Path from either
// a source root (Source set) or an already-bound variable (From set).
type PathAtom struct {
	Source string // name of a registered source, or ""
	From   string // variable name, when Source == ""
	Path   *pathexpr.Expr
	Var    string
}

// CondAtom is a comparison between a variable and a variable/literal.
type CondAtom struct {
	Op    string // "=", "!=", "<", "<=", ">", ">="
	Left  string // variable name
	Right string // variable name when RightIsVar, else literal
	// RightIsVar distinguishes $X = $Y from $X = "lit".
	RightIsVar bool
}

// PatternAtom is an XML-QL-style tree pattern over a source (footnote
// 6 of the paper): it is syntactic sugar for a chain of path atoms —
//
//	<homes> $H: <home> <zip>$V1</zip> </home> </homes> IN homesSrc
//
// is the equivalent of
//
//	homesSrc homes.home $H AND $H zip._ $V1
type PatternAtom struct {
	Source  string
	Pattern *PatternNode
}

// PatternNode is one element of a tree pattern.
type PatternNode struct {
	// Bind names the variable bound to this element ("" = anonymous).
	Bind string
	// Tag is the element label to match.
	Tag string
	// Children are nested element patterns.
	Children []*PatternNode
	// Content names the variable bound to this element's content
	// (a one-step wildcard descent), or "".
	Content string
}

func (*PathAtom) atom()    {}
func (*CondAtom) atom()    {}
func (*PatternAtom) atom() {}

// SyntaxError reports a parse failure with its offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmas: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a XMAS query.
func Parse(src string) (*Query, error) {
	p := &parser{src: stripComments(src)}
	return p.query()
}

// MustParse is Parse for fixtures; it panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// stripComments removes %-to-end-of-line comments, preserving offsets
// by blanking rather than deleting.
func stripComments(src string) string {
	b := []byte(src)
	in := false
	for i := range b {
		switch {
		case b[i] == '%':
			in = true
		case b[i] == '\n':
			in = false
		}
		if in {
			b[i] = ' '
		}
	}
	return string(b)
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skip() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) eatKeyword(kw string) bool {
	p.skip()
	end := p.pos + len(kw)
	if end > len(p.src) || !strings.EqualFold(p.src[p.pos:end], kw) {
		return false
	}
	if end < len(p.src) && isWordChar(p.src[end]) {
		return false
	}
	p.pos = end
	return true
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) word() string {
	start := p.pos
	for p.pos < len(p.src) && isWordChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) variable() (string, error) {
	p.skip()
	if p.peek() != '$' {
		return "", p.errf("expected variable")
	}
	p.pos++
	name := p.word()
	if name == "" {
		return "", p.errf("empty variable name after $")
	}
	return name, nil
}

func (p *parser) query() (*Query, error) {
	if !p.eatKeyword("CONSTRUCT") {
		return nil, p.errf("expected CONSTRUCT")
	}
	el, err := p.element()
	if err != nil {
		return nil, err
	}
	if el.Group == nil {
		// The root defaults to the global group "{}" (one answer).
		el.Group = &Group{}
	}
	if !p.eatKeyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	q := &Query{Construct: el}
	for {
		a, err := p.atomClause()
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, a)
		if !p.eatKeyword("AND") {
			break
		}
	}
	if p.eatKeyword("ORDERBY") {
		for {
			v, err := p.variable()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, v)
			p.skip()
			if p.peek() != '$' {
				break
			}
		}
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input after WHERE clause")
	}
	return q, nil
}

func (p *parser) element() (*Element, error) {
	p.skip()
	if p.peek() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	tag := p.word()
	if tag == "" {
		return nil, p.errf("empty element tag")
	}
	p.skip()
	if p.peek() != '>' {
		return nil, p.errf("malformed start tag <%s", tag)
	}
	p.pos++
	el := &Element{Tag: tag}
	for {
		p.skip()
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			end := p.word()
			if end != tag {
				return nil, p.errf("mismatched end tag </%s> for <%s>", end, tag)
			}
			p.skip()
			if p.peek() != '>' {
				return nil, p.errf("malformed end tag </%s", end)
			}
			p.pos++
			el.Group = p.group()
			return el, nil
		}
		item, err := p.templateItem()
		if err != nil {
			return nil, err
		}
		el.Items = append(el.Items, item)
	}
}

func (p *parser) templateItem() (Item, error) {
	p.skip()
	switch p.peek() {
	case '<':
		return p.element()
	case '$':
		name, err := p.variable()
		if err != nil {
			return nil, err
		}
		return &VarItem{Name: name, Group: p.group()}, nil
	case '"':
		lit, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return &TextItem{Text: lit}, nil
	case 0:
		return nil, p.errf("unexpected end of input in template")
	default:
		return nil, p.errf("unexpected %q in template", p.peek())
	}
}

// group parses an optional {…} annotation.
func (p *parser) group() *Group {
	save := p.pos
	p.skip()
	if p.peek() != '{' {
		p.pos = save
		return nil
	}
	p.pos++
	p.skip()
	g := &Group{}
	if p.peek() == '$' {
		name, err := p.variable()
		if err != nil {
			p.pos = save
			return nil
		}
		g.Var = name
		p.skip()
	}
	if p.peek() != '}' {
		p.pos = save
		return nil
	}
	p.pos++
	return g
}

func (p *parser) quoted() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("expected '\"'")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '"' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated string literal")
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}

// atomClause parses one WHERE conjunct.
func (p *parser) atomClause() (Atom, error) {
	p.skip()
	if p.peek() == '<' {
		return p.patternAtom("")
	}
	if p.peek() == '$' {
		left, err := p.variable()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() == ':' {
			p.pos++
			return p.patternAtom(left)
		}
		if op := p.comparison(); op != "" {
			return p.condRest(left, op)
		}
		// $X path $Y
		path, err := p.pathToken()
		if err != nil {
			return nil, err
		}
		v, err := p.variable()
		if err != nil {
			return nil, err
		}
		return &PathAtom{From: left, Path: path, Var: v}, nil
	}
	// source path $X
	src := p.word()
	if src == "" {
		return nil, p.errf("expected source name or variable")
	}
	path, err := p.pathToken()
	if err != nil {
		return nil, err
	}
	v, err := p.variable()
	if err != nil {
		return nil, err
	}
	return &PathAtom{Source: src, Path: path, Var: v}, nil
}

func (p *parser) comparison() string {
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			p.pos += len(op)
			return op
		}
	}
	return ""
}

func (p *parser) condRest(left, op string) (Atom, error) {
	p.skip()
	switch {
	case p.peek() == '$':
		r, err := p.variable()
		if err != nil {
			return nil, err
		}
		return &CondAtom{Op: op, Left: left, Right: r, RightIsVar: true}, nil
	case p.peek() == '"':
		lit, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return &CondAtom{Op: op, Left: left, Right: lit}, nil
	default:
		start := p.pos
		for p.pos < len(p.src) && !isSpace(p.src[p.pos]) && p.peek() != 0 {
			p.pos++
		}
		lit := p.src[start:p.pos]
		if lit == "" {
			return nil, p.errf("expected comparison operand")
		}
		return &CondAtom{Op: op, Left: left, Right: lit}, nil
	}
}

// pathToken reads a whitespace-delimited path expression.
func (p *parser) pathToken() (*pathexpr.Expr, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) && !isSpace(p.src[p.pos]) {
		p.pos++
	}
	tok := p.src[start:p.pos]
	if tok == "" {
		return nil, p.errf("expected path expression")
	}
	e, err := pathexpr.Parse(tok)
	if err != nil {
		return nil, &SyntaxError{Offset: start, Msg: err.Error()}
	}
	return e, nil
}

// patternAtom parses a tree-pattern conjunct: pattern IN source. An
// optional outer binding ($X: before the root element) arrives via
// outerBind.
func (p *parser) patternAtom(outerBind string) (Atom, error) {
	pat, err := p.pattern(outerBind)
	if err != nil {
		return nil, err
	}
	if !p.eatKeyword("IN") {
		return nil, p.errf("expected IN after tree pattern")
	}
	p.skip()
	src := p.word()
	if src == "" {
		return nil, p.errf("expected source name after IN")
	}
	return &PatternAtom{Source: src, Pattern: pat}, nil
}

// pattern parses ('$'VAR ':')? '<' tag '>' (pattern | '$'VAR)* '</' tag '>'.
func (p *parser) pattern(bind string) (*PatternNode, error) {
	p.skip()
	if bind == "" && p.peek() == '$' {
		v, err := p.variable()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ':' {
			return nil, p.errf("expected ':' after pattern binding $%s", v)
		}
		p.pos++
		bind = v
		p.skip()
	}
	if p.peek() != '<' {
		return nil, p.errf("expected '<' in tree pattern")
	}
	p.pos++
	tag := p.word()
	if tag == "" {
		return nil, p.errf("empty pattern tag")
	}
	p.skip()
	if p.peek() != '>' {
		return nil, p.errf("malformed pattern tag <%s", tag)
	}
	p.pos++
	node := &PatternNode{Bind: bind, Tag: tag}
	for {
		p.skip()
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			end := p.word()
			if end != tag {
				return nil, p.errf("mismatched pattern end tag </%s> for <%s>", end, tag)
			}
			p.skip()
			if p.peek() != '>' {
				return nil, p.errf("malformed pattern end tag </%s", end)
			}
			p.pos++
			return node, nil
		}
		switch p.peek() {
		case '<':
			child, err := p.pattern("")
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		case '$':
			v, err := p.variable()
			if err != nil {
				return nil, err
			}
			p.skip()
			if p.peek() == ':' {
				p.pos++
				child, err := p.pattern(v)
				if err != nil {
					return nil, err
				}
				node.Children = append(node.Children, child)
				continue
			}
			if node.Content != "" {
				return nil, p.errf("pattern element <%s> binds content twice", tag)
			}
			node.Content = v
		case 0:
			return nil, p.errf("unexpected end of input in tree pattern")
		default:
			return nil, p.errf("unexpected %q in tree pattern", p.peek())
		}
	}
}
