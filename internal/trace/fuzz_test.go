package trace_test

import (
	"testing"

	"mix/internal/trace"
)

// FuzzParseContext asserts the context codec's total-function contract:
// any input either parses to a context whose wire form is byte-identical
// to a canonical re-encoding, or is rejected — never a panic, never a
// context that fails to round-trip.
func FuzzParseContext(f *testing.F) {
	f.Add(trace.Context{TraceID: trace.TraceID{Hi: 1, Lo: 2}, SpanID: 3}.String())
	f.Add("0000000000000000000000000000dead-0000000000001234")
	f.Add("")
	f.Add("zzzz")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := trace.ParseContext(s)
		if err != nil {
			return
		}
		if c.String() != s {
			t.Fatalf("accepted %q but re-encodes as %q", s, c.String())
		}
		back, err := trace.ParseContext(c.String())
		if err != nil || back != c {
			t.Fatalf("canonical form does not round-trip: %v %v", back, err)
		}
	})
}
