package trace

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strconv"
)

// This file is the fleet half of the package: the Dapper-style trace
// context that rides VXDP request frames so one client navigation keeps
// a single causal identity while it hops between mediator nodes
// (proxying, L2 region fetches, invalidation broadcasts). A Context
// names a trace (128-bit random id) and the span the receiver should
// parent its roots under (64-bit span id); Stitch (trace.go) grafts the
// forest a peer returns back under the proxying span.

// TraceID is a 128-bit random trace identifier, shared by every span of
// one fleet-wide navigation no matter which node recorded it.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether t is the unset trace id.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t.Hi, t.Lo) }

// NewTraceID mints a random, non-zero trace id.
func NewTraceID() TraceID {
	for {
		t := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !t.IsZero() {
			return t
		}
	}
}

// newSpanID mints a random, non-zero span id (0 is reserved for "no
// span" — untraced local spans never carry an id).
func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// Context identifies one position in a fleet-wide trace: the trace it
// belongs to and the span that new remote roots should be parented
// under. It crosses the wire as "<32 hex>-<16 hex>".
type Context struct {
	TraceID TraceID
	SpanID  uint64
}

// IsZero reports whether c carries no trace identity.
func (c Context) IsZero() bool { return c.TraceID.IsZero() && c.SpanID == 0 }

// String renders the context in its wire form.
func (c Context) String() string {
	return fmt.Sprintf("%s-%016x", c.TraceID, c.SpanID)
}

// ParseContext parses the wire form produced by String.
func ParseContext(s string) (Context, error) {
	malformed := func() (Context, error) {
		return Context{}, fmt.Errorf("trace: malformed context %q", s)
	}
	if len(s) != 49 || s[32] != '-' {
		return malformed()
	}
	for _, r := range s[:32] + s[33:] {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return malformed()
		}
	}
	var c Context
	var err error
	if c.TraceID.Hi, err = strconv.ParseUint(s[:16], 16, 64); err != nil {
		return malformed()
	}
	if c.TraceID.Lo, err = strconv.ParseUint(s[16:32], 16, 64); err != nil {
		return malformed()
	}
	if c.SpanID, err = strconv.ParseUint(s[33:], 16, 64); err != nil {
		return malformed()
	}
	return c, nil
}

// MarshalJSON encodes the context as its wire string.
func (c Context) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes the wire string form.
func (c *Context) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseContext(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}
