// Package trace records *navigation traces*: causal span trees showing
// how one client navigation command (d, r, f, select) on a virtual
// mediated view fans out through the tree of lazy mediators into
// child-operator pulls and, at the leaves, source navigations — the
// per-operator attribution of the paper's navigational-complexity
// measure (Def. 2), with per-span wall-clock latency attached.
//
// A Recorder is installed into an engine (core.Engine.SetTracer) before
// a plan is compiled; the compiler then wraps every operator boundary
// and every source document so that each pull and each answered
// navigation command opens a span. Because lazy evaluation is
// pull-driven and synchronous, span nesting is maintained with a simple
// stack: the span open when a child span begins is its causal parent.
// Operator caches are visible as *absent* spans — a memoized replay
// answers without re-entering the traced boundary.
//
// Tracing is strictly opt-in: a nil *Recorder records nothing, and an
// engine without a tracer compiles exactly the plan it would compile
// otherwise (no wrappers, no allocations on the hot path).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mix/internal/nav"
)

// SourcePrefix prefixes the span label of every source-boundary
// navigation, distinguishing source navigations from operator pulls in
// a trace (the two sides of the paper's complexity ratio).
const SourcePrefix = "src:"

// ClientLabel is the conventional label for spans opened by client
// navigation commands — the roots of a trace forest.
const ClientLabel = "client"

// Span is one traced operation: a client command, an operator pull, or
// a source navigation. Start is the offset from the recorder's epoch
// (the first span after the last Take), so a rendered forest reads as a
// timeline.
type Span struct {
	Label    string        `json:"label"`
	Op       string        `json:"op"`
	Start    time.Duration `json:"start_ns"`
	Dur      time.Duration `json:"dur_ns"`
	Children []*Span       `json:"children,omitempty"`
}

// Recorder collects span forests. It is safe for concurrent use, but
// the causal stack assumes one navigation is evaluated at a time (true
// for a session's pull-driven engine).
type Recorder struct {
	// Sink, when non-nil, observes every completed span (label, op,
	// latency) — the hook that feeds per-operator latency histograms.
	// Set it before recording begins.
	Sink func(label, op string, d time.Duration)
	// Limit caps the number of retained root spans (0 = unlimited);
	// when exceeded, the oldest roots are dropped. Long-running
	// sessions set a limit so an untaken trace cannot grow without
	// bound.
	Limit int

	mu    sync.Mutex
	epoch time.Time
	roots []*Span
	stack []*Span
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Begin opens a span as a child of the innermost open span (or as a new
// root). It returns nil — and records nothing — on a nil Recorder.
func (r *Recorder) Begin(label, op string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch.IsZero() {
		r.epoch = time.Now()
	}
	sp := &Span{Label: label, Op: op, Start: time.Since(r.epoch)}
	if len(r.stack) == 0 {
		r.roots = append(r.roots, sp)
		if r.Limit > 0 && len(r.roots) > r.Limit {
			drop := len(r.roots) - r.Limit
			r.roots = append(r.roots[:0], r.roots[drop:]...)
		}
	} else {
		parent := r.stack[len(r.stack)-1]
		parent.Children = append(parent.Children, sp)
	}
	r.stack = append(r.stack, sp)
	return sp
}

// End closes a span opened by Begin. End(nil) is a no-op, so callers
// may unconditionally defer it.
func (r *Recorder) End(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	r.mu.Lock()
	sp.Dur = time.Since(r.epoch) - sp.Start
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == sp {
			r.stack = r.stack[:i]
			break
		}
	}
	sink := r.Sink
	r.mu.Unlock()
	if sink != nil {
		sink(sp.Label, sp.Op, sp.Dur)
	}
}

// Take returns the recorded forest and resets the recorder, so
// consecutive Takes partition the span stream by navigation.
func (r *Recorder) Take() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	roots := r.roots
	r.roots = nil
	r.stack = r.stack[:0]
	r.epoch = time.Time{}
	return roots
}

// --- analysis -------------------------------------------------------------

// SourceTotals counts the source-boundary navigation spans in a forest
// by command op ("d", "r", "f", "select", "root"). The totals are, by
// construction, the per-op source navigation counts of the traced
// window — the quantity metrics.Counters measures at the same boundary.
func SourceTotals(roots []*Span) map[string]int64 {
	totals := map[string]int64{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if strings.HasPrefix(sp.Label, SourcePrefix) {
			totals[sp.Op]++
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range roots {
		walk(sp)
	}
	return totals
}

// SourceNavigations sums SourceTotals across ops.
func SourceNavigations(roots []*Span) int64 {
	var n int64
	for _, c := range SourceTotals(roots) {
		n += c
	}
	return n
}

// Summary aggregates a forest per (label, op): span count and total
// latency, sorted by label then op. It is the compact alternative to
// Format for large traces.
type Summary struct {
	Label string
	Op    string
	Count int64
	Total time.Duration
}

// Summarize folds a forest into per-(label, op) rows.
func Summarize(roots []*Span) []Summary {
	type key struct{ label, op string }
	agg := map[key]*Summary{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		k := key{sp.Label, sp.Op}
		s := agg[k]
		if s == nil {
			s = &Summary{Label: sp.Label, Op: sp.Op}
			agg[k] = s
		}
		s.Count++
		s.Total += sp.Dur
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range roots {
		walk(sp)
	}
	out := make([]Summary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Format renders a forest as an indented text tree, one line per span:
//
//	client d 1.2ms
//	  join next 1.1ms
//	    src:homesSrc d 80µs
func Format(roots []*Span) string {
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s %s\n", strings.Repeat("  ", depth), sp.Label, sp.Op, sp.Dur.Round(time.Microsecond))
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
	return b.String()
}

// MarshalForest renders a forest as JSON.
func MarshalForest(roots []*Span) ([]byte, error) {
	return json.MarshalIndent(roots, "", "  ")
}

// --- instrumented document ------------------------------------------------

// Doc wraps a nav.Document so every navigation command it answers opens
// a span in Rec. At a source boundary (Label prefixed with
// SourcePrefix) the spans are exactly the source navigations of the
// complexity definition; wrapping a virtual answer document with
// Label = ClientLabel makes each client command a trace root.
type Doc struct {
	Inner nav.Document
	Label string
	Rec   *Recorder
}

// NewDoc wraps doc with tracing under the given span label.
func NewDoc(doc nav.Document, label string, rec *Recorder) *Doc {
	return &Doc{Inner: doc, Label: label, Rec: rec}
}

// Root implements nav.Document.
func (d *Doc) Root() (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpRoot))
	defer d.Rec.End(sp)
	return d.Inner.Root()
}

// Down implements nav.Document.
func (d *Doc) Down(p nav.ID) (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpDown))
	defer d.Rec.End(sp)
	return d.Inner.Down(p)
}

// Right implements nav.Document.
func (d *Doc) Right(p nav.ID) (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpRight))
	defer d.Rec.End(sp)
	return d.Inner.Right(p)
}

// Fetch implements nav.Document.
func (d *Doc) Fetch(p nav.ID) (string, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpFetch))
	defer d.Rec.End(sp)
	return d.Inner.Fetch(p)
}

// Unwrap exposes the wrapped document to capability probes
// (nav.SelectorOf); tracing does not change the navigation command set.
func (d *Doc) Unwrap() nav.Document { return d.Inner }

// SelectRight implements nav.Selector. A natively answered select is
// one span; over a document without native select it falls back to the
// generic r/f scan *through the traced document*, so the trace bills
// exactly the commands the source answers — keeping trace totals equal
// to counter totals at the same boundary.
func (d *Doc) SelectRight(p nav.ID, sigma nav.Predicate, fromSelf bool) (nav.ID, error) {
	if s, ok := nav.SelectorOf(d.Inner); ok {
		sp := d.Rec.Begin(d.Label, string(nav.OpSelect))
		defer d.Rec.End(sp)
		return s.SelectRight(p, sigma, fromSelf)
	}
	cur := p
	if !fromSelf {
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	for cur != nil {
		l, err := d.Fetch(cur)
		if err != nil {
			return nil, err
		}
		if sigma(l) {
			return cur, nil
		}
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return nil, nil
}
