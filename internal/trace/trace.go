// Package trace records *navigation traces*: causal span trees showing
// how one client navigation command (d, r, f, select) on a virtual
// mediated view fans out through the tree of lazy mediators into
// child-operator pulls and, at the leaves, source navigations — the
// per-operator attribution of the paper's navigational-complexity
// measure (Def. 2), with per-span wall-clock latency attached.
//
// A Recorder is installed into an engine (core.Engine.SetTracer) before
// a plan is compiled; the compiler then wraps every operator boundary
// and every source document so that each pull and each answered
// navigation command opens a span. Because lazy evaluation is
// pull-driven and synchronous, span nesting is maintained with a simple
// stack: the span open when a child span begins is its causal parent.
// Operator caches are visible as *absent* spans — a memoized replay
// answers without re-entering the traced boundary.
//
// Tracing is strictly opt-in: a nil *Recorder records nothing, and an
// engine without a tracer compiles exactly the plan it would compile
// otherwise (no wrappers, no allocations on the hot path).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mix/internal/nav"
)

// SourcePrefix prefixes the span label of every source-boundary
// navigation, distinguishing source navigations from operator pulls in
// a trace (the two sides of the paper's complexity ratio).
const SourcePrefix = "src:"

// ClientLabel is the conventional label for spans opened by client
// navigation commands — the roots of a trace forest.
const ClientLabel = "client"

// ProxyLabel is the conventional label for the span a cluster node
// opens around a command it forwards to the owner node: the hop itself
// is attributed, and the owner's forest is stitched under it.
const ProxyLabel = "proxy"

// ClusterLabel is the conventional label for spans a node opens while
// serving a peer-facing cluster op (region_get, region_put,
// invalidate) under a remote trace context.
const ClusterLabel = "cluster"

// PeerLabel is the conventional label for spans a node's peer control
// link opens around the L2 region traffic it initiates (region fetches,
// flush puts, invalidation fans) — the calling side of ClusterLabel.
const PeerLabel = "peer"

// Span is one traced operation: a client command, an operator pull, or
// a source navigation. Start is the offset from the recorder's epoch
// (the first span after the last Take), so a rendered forest reads as a
// timeline. Node, ID, and Parent exist only on fleet-traced spans:
// Node names the recording node, ID is the span's fleet-wide identity,
// and Parent is the span (possibly on another node) it was opened
// under. All three are zero for purely local traces, so single-process
// tracing pays no extra wire bytes.
type Span struct {
	Label    string        `json:"label"`
	Op       string        `json:"op"`
	Start    time.Duration `json:"start_ns"`
	Dur      time.Duration `json:"dur_ns"`
	Node     string        `json:"node,omitempty"`
	ID       uint64        `json:"id,omitempty"`
	Parent   uint64        `json:"parent,omitempty"`
	// Spec marks work done on speculation (the prefetcher's drains), not
	// for a waiting client: latency tools must never attribute it to a
	// navigation a user experienced. Stamped on roots by recorders with
	// Spec set.
	Spec     bool    `json:"spec,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Recorder collects span forests. It is safe for concurrent use, but
// the causal stack assumes one navigation is evaluated at a time (true
// for a session's pull-driven engine).
type Recorder struct {
	// Sink, when non-nil, observes every completed span (label, op,
	// latency) — the hook that feeds per-operator latency histograms.
	// Set it before recording begins.
	Sink func(label, op string, d time.Duration)
	// Limit caps the number of retained root spans (0 = unlimited);
	// when exceeded, the oldest roots are dropped. Long-running
	// sessions set a limit so an untaken trace cannot grow without
	// bound.
	Limit int
	// Node, when non-empty, is stamped on every root span, so forests
	// stitched across a fleet keep per-node attribution. Set it before
	// recording begins.
	Node string
	// RootSink, when non-nil, observes every completed *root* span —
	// one whole client navigation with its full fan-out — outside the
	// recorder lock. It is the hook behind the slow-navigation flight
	// recorder. Set it before recording begins.
	RootSink func(*Span)
	// Spec stamps every root this recorder opens as speculative (see
	// Span.Spec). Speculative recorders also leave RootSink nil, so
	// background drains can never enter the slow-navigation ring. Set it
	// before recording begins.
	Spec bool

	mu    sync.Mutex
	epoch time.Time
	roots []*Span
	stack []*Span
	// traceID is the fleet identity adopted from (or minted for) the
	// first BeginContext/SetRemoteParent; remote is the pending remote
	// parent applied to new roots while remoteOn.
	traceID  TraceID
	remote   Context
	remoteOn bool
}

// stackRetainCap bounds the causal-stack capacity kept across roots: a
// deep forest may grow the stack arbitrarily, and without a release the
// backing array would be retained for the recorder's whole lifetime
// (sessions keep one recorder per engine). When a pop empties the stack
// past this capacity the array is dropped for the GC.
const stackRetainCap = 64

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Begin opens a span as a child of the innermost open span (or as a new
// root). It returns nil — and records nothing — on a nil Recorder.
func (r *Recorder) Begin(label, op string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch.IsZero() {
		r.epoch = time.Now()
	}
	sp := &Span{Label: label, Op: op, Start: time.Since(r.epoch)}
	if len(r.stack) == 0 {
		sp.Node = r.Node
		sp.Spec = r.Spec
		if r.remoteOn {
			// A root opened under a remote parent joins the caller's
			// trace: it gets a fleet identity and points back at the
			// span on the asking node.
			sp.ID = newSpanID()
			sp.Parent = r.remote.SpanID
		}
		r.roots = append(r.roots, sp)
		if r.Limit > 0 && len(r.roots) > r.Limit {
			drop := len(r.roots) - r.Limit
			r.roots = append(r.roots[:0], r.roots[drop:]...)
		}
	} else {
		parent := r.stack[len(r.stack)-1]
		parent.Children = append(parent.Children, sp)
	}
	r.stack = append(r.stack, sp)
	return sp
}

// End closes a span opened by Begin. End(nil) is a no-op, so callers
// may unconditionally defer it.
func (r *Recorder) End(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	r.mu.Lock()
	sp.Dur = time.Since(r.epoch) - sp.Start
	var isRoot bool
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == sp {
			if i == 0 {
				// The outermost open span closed: one whole navigation
				// completed. Release an overgrown stack array instead
				// of keeping a deep forest's capacity alive forever.
				isRoot = true
				if cap(r.stack) > stackRetainCap {
					r.stack = nil
				} else {
					r.stack = r.stack[:0]
				}
			} else {
				r.stack = r.stack[:i]
			}
			break
		}
	}
	sink, rootSink := r.Sink, r.RootSink
	r.mu.Unlock()
	if sink != nil {
		sink(sp.Label, sp.Op, sp.Dur)
	}
	if isRoot && rootSink != nil {
		rootSink(sp)
	}
}

// Take returns the recorded forest and resets the recorder, so
// consecutive Takes partition the span stream by navigation.
func (r *Recorder) Take() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	roots := r.roots
	r.roots = nil
	if cap(r.stack) > stackRetainCap {
		r.stack = nil
	} else {
		r.stack = r.stack[:0]
	}
	r.epoch = time.Time{}
	return roots
}

// --- fleet context ---------------------------------------------------------

// BeginContext opens a span like Begin and returns the fleet Context
// naming it, minting the recorder's trace id (and the span's id) on
// first use. The context is what a caller injects into an outgoing
// request so the receiving node parents its roots under this span. On a
// nil Recorder it records nothing and returns a zero Context.
func (r *Recorder) BeginContext(label, op string) (*Span, Context) {
	if r == nil {
		return nil, Context{}
	}
	sp := r.Begin(label, op)
	r.mu.Lock()
	if r.traceID.IsZero() {
		r.traceID = NewTraceID()
	}
	if sp.ID == 0 {
		sp.ID = newSpanID()
	}
	ctx := Context{TraceID: r.traceID, SpanID: sp.ID}
	r.mu.Unlock()
	return sp, ctx
}

// SetRemoteParent arms the recorder so the *next* roots it opens join
// the remote caller's trace: they adopt ctx's trace id and point their
// Parent at ctx's span. Pair with ClearRemoteParent around the serving
// of one traced request. No-op on a nil Recorder.
func (r *Recorder) SetRemoteParent(ctx Context) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.remote = ctx
	r.remoteOn = true
	r.traceID = ctx.TraceID
	r.mu.Unlock()
}

// ClearRemoteParent disarms SetRemoteParent.
func (r *Recorder) ClearRemoteParent() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.remote = Context{}
	r.remoteOn = false
	r.mu.Unlock()
}

// Stitch grafts a peer's returned span forest under the local span that
// proxied the work, preserving the epoch-relative timeline: the remote
// recorder's epoch started when it began serving, so the whole remote
// forest is shifted by the clock-skew offset that aligns its earliest
// root with the local span's start. Remote roots without a parent link
// inherit the local span's id.
func Stitch(local *Span, remote []*Span) {
	if local == nil || len(remote) == 0 {
		return
	}
	minStart := remote[0].Start
	for _, sp := range remote[1:] {
		if sp.Start < minStart {
			minStart = sp.Start
		}
	}
	offset := local.Start - minStart
	for _, sp := range remote {
		shiftSpan(sp, offset)
		if sp.Parent == 0 && local.ID != 0 {
			sp.Parent = local.ID
		}
		local.Children = append(local.Children, sp)
	}
}

func shiftSpan(sp *Span, d time.Duration) {
	sp.Start += d
	for _, c := range sp.Children {
		shiftSpan(c, d)
	}
}

// --- analysis -------------------------------------------------------------

// SourceTotals counts the source-boundary navigation spans in a forest
// by command op ("d", "r", "f", "select", "root"). The totals are, by
// construction, the per-op source navigation counts of the traced
// window — the quantity metrics.Counters measures at the same boundary.
func SourceTotals(roots []*Span) map[string]int64 {
	totals := map[string]int64{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if strings.HasPrefix(sp.Label, SourcePrefix) {
			totals[sp.Op]++
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range roots {
		walk(sp)
	}
	return totals
}

// SourceNavigations sums SourceTotals across ops.
func SourceNavigations(roots []*Span) int64 {
	var n int64
	for _, c := range SourceTotals(roots) {
		n += c
	}
	return n
}

// NodeTotals counts the spans of a (possibly stitched) forest per
// recording node. Spans without a Node tag inherit the nearest tagged
// ancestor's; spans with no tagged ancestor at all count under "".
func NodeTotals(roots []*Span) map[string]int64 {
	totals := map[string]int64{}
	var walk func(sp *Span, node string)
	walk = func(sp *Span, node string) {
		if sp.Node != "" {
			node = sp.Node
		}
		totals[node]++
		for _, c := range sp.Children {
			walk(c, node)
		}
	}
	for _, sp := range roots {
		walk(sp, "")
	}
	return totals
}

// Summary aggregates a forest per (label, op): span count and total
// latency, sorted by label then op. It is the compact alternative to
// Format for large traces.
type Summary struct {
	Label string
	Op    string
	Count int64
	Total time.Duration
}

// Summarize folds a forest into per-(label, op) rows.
func Summarize(roots []*Span) []Summary {
	type key struct{ label, op string }
	agg := map[key]*Summary{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		k := key{sp.Label, sp.Op}
		s := agg[k]
		if s == nil {
			s = &Summary{Label: sp.Label, Op: sp.Op}
			agg[k] = s
		}
		s.Count++
		s.Total += sp.Dur
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range roots {
		walk(sp)
	}
	out := make([]Summary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Format renders a forest as an indented text tree, one line per span:
//
//	client d 1.2ms
//	  join next 1.1ms
//	    src:homesSrc d 80µs
func Format(roots []*Span) string {
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s %s", strings.Repeat("  ", depth), sp.Label, sp.Op, sp.Dur.Round(time.Microsecond))
		if sp.Node != "" {
			fmt.Fprintf(&b, " node=%s", sp.Node)
		}
		b.WriteByte('\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
	return b.String()
}

// MarshalForest renders a forest as JSON.
func MarshalForest(roots []*Span) ([]byte, error) {
	return json.MarshalIndent(roots, "", "  ")
}

// --- instrumented document ------------------------------------------------

// Doc wraps a nav.Document so every navigation command it answers opens
// a span in Rec. At a source boundary (Label prefixed with
// SourcePrefix) the spans are exactly the source navigations of the
// complexity definition; wrapping a virtual answer document with
// Label = ClientLabel makes each client command a trace root.
type Doc struct {
	Inner nav.Document
	Label string
	Rec   *Recorder
}

// NewDoc wraps doc with tracing under the given span label.
func NewDoc(doc nav.Document, label string, rec *Recorder) *Doc {
	return &Doc{Inner: doc, Label: label, Rec: rec}
}

// Root implements nav.Document.
func (d *Doc) Root() (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpRoot))
	defer d.Rec.End(sp)
	return d.Inner.Root()
}

// Down implements nav.Document.
func (d *Doc) Down(p nav.ID) (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpDown))
	defer d.Rec.End(sp)
	return d.Inner.Down(p)
}

// Right implements nav.Document.
func (d *Doc) Right(p nav.ID) (nav.ID, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpRight))
	defer d.Rec.End(sp)
	return d.Inner.Right(p)
}

// Fetch implements nav.Document.
func (d *Doc) Fetch(p nav.ID) (string, error) {
	sp := d.Rec.Begin(d.Label, string(nav.OpFetch))
	defer d.Rec.End(sp)
	return d.Inner.Fetch(p)
}

// Unwrap exposes the wrapped document to capability probes
// (nav.SelectorOf); tracing does not change the navigation command set.
func (d *Doc) Unwrap() nav.Document { return d.Inner }

// SelectRight implements nav.Selector. A natively answered select is
// one span; over a document without native select it falls back to the
// generic r/f scan *through the traced document*, so the trace bills
// exactly the commands the source answers — keeping trace totals equal
// to counter totals at the same boundary.
func (d *Doc) SelectRight(p nav.ID, sigma nav.Predicate, fromSelf bool) (nav.ID, error) {
	if s, ok := nav.SelectorOf(d.Inner); ok {
		sp := d.Rec.Begin(d.Label, string(nav.OpSelect))
		defer d.Rec.End(sp)
		return s.SelectRight(p, sigma, fromSelf)
	}
	cur := p
	if !fromSelf {
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	for cur != nil {
		l, err := d.Fetch(cur)
		if err != nil {
			return nil, err
		}
		if sigma(l) {
			return cur, nil
		}
		next, err := d.Right(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return nil, nil
}
