package trace_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"mix/internal/trace"
)

func TestContextWireRoundTrip(t *testing.T) {
	c := trace.Context{TraceID: trace.TraceID{Hi: 0xdead, Lo: 0xbeef}, SpanID: 0x1234}
	s := c.String()
	if len(s) != 49 || s[32] != '-' {
		t.Fatalf("wire form = %q, want 32hex-16hex", s)
	}
	back, err := trace.ParseContext(s)
	if err != nil {
		t.Fatalf("ParseContext(%q): %v", s, err)
	}
	if back != c {
		t.Fatalf("round trip: got %+v, want %+v", back, c)
	}
	enc, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var dec trace.Context
	if err := json.Unmarshal(enc, &dec); err != nil {
		t.Fatalf("unmarshal %s: %v", enc, err)
	}
	if dec != c {
		t.Fatalf("JSON round trip: got %+v, want %+v", dec, c)
	}
}

func TestParseContextRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "-", "abc",
		"0000000000000000000000000000dead_0000000000001234",  // wrong separator
		"0000000000000000000000000000DEAD-0000000000001234",  // uppercase hex
		"0000000000000000000000000000dead-000000000000123",   // short span id
		"g000000000000000000000000000dead-0000000000001234",  // non-hex
		"0000000000000000000000000000dead-0000000000001234x", // trailing junk
	} {
		if _, err := trace.ParseContext(s); err == nil {
			t.Errorf("ParseContext(%q) accepted", s)
		}
	}
}

func TestNewTraceIDNonZeroAndDistinct(t *testing.T) {
	a, b := trace.NewTraceID(), trace.NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("minted a zero trace id")
	}
	if a == b {
		t.Fatal("two minted trace ids collide")
	}
}

func TestBeginContextMintsIdentity(t *testing.T) {
	r := trace.New()
	sp, ctx := r.BeginContext("client", "d")
	r.End(sp)
	if ctx.IsZero() {
		t.Fatal("BeginContext returned a zero context")
	}
	if sp.ID != ctx.SpanID || sp.ID == 0 {
		t.Fatalf("span id %d vs context span id %d", sp.ID, ctx.SpanID)
	}
	// The same recorder keeps one trace identity across commands.
	sp2, ctx2 := r.BeginContext("client", "r")
	r.End(sp2)
	if ctx2.TraceID != ctx.TraceID {
		t.Fatalf("trace id changed across commands: %s vs %s", ctx2.TraceID, ctx.TraceID)
	}
	if ctx2.SpanID == ctx.SpanID {
		t.Fatal("two commands share a span id")
	}
}

func TestBeginContextNilRecorder(t *testing.T) {
	var r *trace.Recorder
	sp, ctx := r.BeginContext("client", "d")
	if sp != nil || !ctx.IsZero() {
		t.Fatalf("nil recorder: sp=%v ctx=%v", sp, ctx)
	}
	r.SetRemoteParent(trace.Context{SpanID: 1})
	r.ClearRemoteParent()
}

func TestSetRemoteParentParentsRoots(t *testing.T) {
	remote := trace.Context{TraceID: trace.NewTraceID(), SpanID: 77}
	r := trace.New()
	r.Node = "node-b"
	r.SetRemoteParent(remote)
	sp := r.Begin("client", "d")
	child := r.Begin("join", "next")
	r.End(child)
	r.End(sp)
	r.ClearRemoteParent()
	after := r.Begin("client", "r")
	r.End(after)
	roots := r.Take()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	if roots[0].Parent != remote.SpanID {
		t.Fatalf("armed root Parent = %d, want %d", roots[0].Parent, remote.SpanID)
	}
	if roots[0].ID == 0 {
		t.Fatal("armed root got no fleet id")
	}
	if roots[0].Node != "node-b" {
		t.Fatalf("root Node = %q", roots[0].Node)
	}
	if roots[0].Children[0].ID != 0 || roots[0].Children[0].Parent != 0 {
		t.Fatal("non-root child received fleet identity; should stay local")
	}
	if roots[1].Parent != 0 || roots[1].ID != 0 {
		t.Fatalf("root after ClearRemoteParent still remotely parented: %+v", roots[1])
	}
}

func TestStitchClockSkew(t *testing.T) {
	local := &trace.Span{Label: "proxy", Op: "d", ID: 42, Start: 100 * time.Millisecond}
	remote := []*trace.Span{
		{Label: "client", Op: "d", Start: 5 * time.Millisecond, Children: []*trace.Span{
			{Label: "join", Op: "next", Start: 6 * time.Millisecond},
		}},
		{Label: "client", Op: "r", Start: 2 * time.Millisecond, Parent: 99},
	}
	trace.Stitch(local, remote)
	if len(local.Children) != 2 {
		t.Fatalf("grafted %d children, want 2", len(local.Children))
	}
	// The earliest remote root (Start 2ms) aligns with the local span's
	// start; every remote span shifts by the same 98ms offset.
	if got := local.Children[1].Start; got != 100*time.Millisecond {
		t.Fatalf("earliest remote root shifted to %s, want 100ms", got)
	}
	if got := local.Children[0].Start; got != 103*time.Millisecond {
		t.Fatalf("remote root shifted to %s, want 103ms", got)
	}
	if got := local.Children[0].Children[0].Start; got != 104*time.Millisecond {
		t.Fatalf("remote child shifted to %s, want 104ms", got)
	}
	// Unparented remote roots inherit the grafting span's id; ones that
	// already point somewhere keep their link.
	if local.Children[0].Parent != 42 {
		t.Fatalf("unparented root Parent = %d, want 42", local.Children[0].Parent)
	}
	if local.Children[1].Parent != 99 {
		t.Fatalf("parented root Parent = %d, want 99 preserved", local.Children[1].Parent)
	}
}

func TestStitchNoOps(t *testing.T) {
	trace.Stitch(nil, []*trace.Span{{}})
	sp := &trace.Span{}
	trace.Stitch(sp, nil)
	if len(sp.Children) != 0 {
		t.Fatal("stitching nothing grew children")
	}
}

func TestNodeTotals(t *testing.T) {
	forest := []*trace.Span{
		{Label: "client", Op: "d", Node: "a", Children: []*trace.Span{
			{Label: "proxy", Op: "d"}, // untagged: inherits a
			{Label: "client", Op: "d", Node: "b", Children: []*trace.Span{
				{Label: "join", Op: "next"}, // inherits b
			}},
		}},
		{Label: "client", Op: "r"}, // no tagged ancestor
	}
	totals := trace.NodeTotals(forest)
	if totals["a"] != 2 || totals["b"] != 2 || totals[""] != 1 {
		t.Fatalf("totals = %v, want a=2 b=2 \"\"=1", totals)
	}
}

func TestFormatShowsNodeTags(t *testing.T) {
	out := trace.Format([]*trace.Span{{Label: "client", Op: "d", Node: "n1"}})
	if want := "client d 0s node=n1\n"; out != want {
		t.Fatalf("Format = %q, want %q", out, want)
	}
}

// TestRecorderConcurrentSinkLimit hammers one recorder from many
// goroutines with Sink and Limit set — the -race guard for the
// RootSink/stack-release changes. Span nesting is meaningless under
// concurrency (the causal stack assumes one navigation at a time), but
// the recorder must stay memory-safe and bounded.
func TestRecorderConcurrentSinkLimit(t *testing.T) {
	r := trace.New()
	r.Limit = 8
	var mu sync.Mutex
	var sunk, rooted int
	r.Sink = func(string, string, time.Duration) { mu.Lock(); sunk++; mu.Unlock() }
	r.RootSink = func(*trace.Span) { mu.Lock(); rooted++; mu.Unlock() }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp, _ := r.BeginContext("client", "d")
				child := r.Begin("join", "next")
				r.End(child)
				r.End(sp)
				if i%50 == 0 {
					r.Take()
				}
			}
		}()
	}
	wg.Wait()
	if roots := r.Take(); len(roots) > 8 {
		t.Fatalf("Limit leaked: %d roots retained", len(roots))
	}
	mu.Lock()
	defer mu.Unlock()
	if sunk == 0 || rooted == 0 {
		t.Fatalf("sinks never fired: sunk=%d rooted=%d", sunk, rooted)
	}
}
