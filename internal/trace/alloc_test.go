package trace

import (
	"testing"
)

// TestStackReleasedAfterDeepForest is the regression test for the
// Limit-era leak: a single deep navigation grew the causal stack's
// backing array, and the recorder retained that capacity for its whole
// lifetime (one recorder per pooled engine — effectively forever).
// Closing the root of a deep forest must now drop the array.
func TestStackReleasedAfterDeepForest(t *testing.T) {
	r := New()
	depth := stackRetainCap * 4
	spans := make([]*Span, 0, depth)
	for i := 0; i < depth; i++ {
		spans = append(spans, r.Begin("op", "d"))
	}
	if cap(r.stack) < depth {
		t.Fatalf("stack cap = %d, expected at least %d mid-navigation", cap(r.stack), depth)
	}
	for i := depth - 1; i >= 0; i-- {
		r.End(spans[i])
	}
	if cap(r.stack) != 0 {
		t.Fatalf("stack cap = %d after deep root closed, want 0 (array released)", cap(r.stack))
	}
	// Shallow traffic afterwards keeps its small array.
	sp := r.Begin("op", "d")
	r.End(sp)
	if c := cap(r.stack); c == 0 || c > stackRetainCap {
		t.Fatalf("stack cap = %d after shallow span, want small and retained", c)
	}
	// Take on an overgrown stack releases too (mid-navigation reset).
	for i := 0; i < depth; i++ {
		r.Begin("op", "d")
	}
	r.Take()
	if cap(r.stack) != 0 {
		t.Fatalf("stack cap = %d after Take with deep stack, want 0", cap(r.stack))
	}
}

// TestNilRecorderZeroAllocs pins the opt-in contract benchmarked since
// the observability PR: untraced sessions pay nothing.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Begin("client", "d")
		r.End(sp)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder Begin/End allocates %.1f/op, want 0", allocs)
	}
}

// TestRecorderSteadyStateAllocs pins the live-recorder hot path at one
// allocation per span (the span itself): with Limit bounding the root
// slice, neither the roots append, the stack, nor the release logic may
// allocate at steady state.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	r := New()
	r.Limit = 4
	for i := 0; i < 16; i++ { // warm the roots and stack arrays
		sp := r.Begin("client", "d")
		r.End(sp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Begin("client", "d")
		r.End(sp)
	})
	if allocs > 1 {
		t.Fatalf("recorder Begin/End allocates %.1f/op at steady state, want 1", allocs)
	}
}
