package trace_test

import (
	"strings"
	"testing"
	"time"

	"mix/internal/nav"
	"mix/internal/trace"
	"mix/internal/xmltree"
)

func TestRecorderNesting(t *testing.T) {
	r := trace.New()
	a := r.Begin("client", "d")
	b := r.Begin("join", "next")
	c := r.Begin(trace.SourcePrefix+"s", "d")
	r.End(c)
	r.End(b)
	r.End(a)
	roots := r.Take()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if len(roots[0].Children) != 1 || len(roots[0].Children[0].Children) != 1 {
		t.Fatalf("nesting wrong: %s", trace.Format(roots))
	}
	if roots[0].Children[0].Children[0].Label != trace.SourcePrefix+"s" {
		t.Fatalf("leaf label = %q", roots[0].Children[0].Children[0].Label)
	}
	// Take resets: the next Begin starts a fresh forest.
	if again := r.Take(); len(again) != 0 {
		t.Fatalf("second Take returned %d roots", len(again))
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *trace.Recorder
	sp := r.Begin("x", "d")
	if sp != nil {
		t.Fatalf("nil recorder Begin returned a span")
	}
	r.End(sp)
	if roots := r.Take(); roots != nil {
		t.Fatalf("nil recorder Take returned %v", roots)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := trace.New()
	r.Limit = 3
	for i := 0; i < 10; i++ {
		r.End(r.Begin("client", "d"))
	}
	if roots := r.Take(); len(roots) != 3 {
		t.Fatalf("retained %d roots, want 3", len(roots))
	}
}

func TestRecorderSink(t *testing.T) {
	r := trace.New()
	var got []string
	r.Sink = func(label, op string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s %s", label, op)
		}
		got = append(got, label+"/"+op)
	}
	inner := r.Begin("join", "next")
	r.End(inner)
	r.End(r.Begin("client", "d"))
	if len(got) != 2 || got[0] != "join/next" || got[1] != "client/d" {
		t.Fatalf("sink saw %v", got)
	}
}

func TestSourceTotalsAndSummary(t *testing.T) {
	r := trace.New()
	root := r.Begin(trace.ClientLabel, "d")
	for i := 0; i < 3; i++ {
		r.End(r.Begin(trace.SourcePrefix+"homes", "d"))
	}
	r.End(r.Begin(trace.SourcePrefix+"homes", "f"))
	r.End(r.Begin("join", "next"))
	r.End(root)
	roots := r.Take()
	totals := trace.SourceTotals(roots)
	if totals["d"] != 3 || totals["f"] != 1 {
		t.Fatalf("totals = %v", totals)
	}
	if n := trace.SourceNavigations(roots); n != 4 {
		t.Fatalf("SourceNavigations = %d, want 4", n)
	}
	sum := trace.Summarize(roots)
	var sawJoin bool
	for _, s := range sum {
		if s.Label == "join" && s.Op == "next" && s.Count == 1 {
			sawJoin = true
		}
	}
	if !sawJoin {
		t.Fatalf("summary missing join/next: %v", sum)
	}
	text := trace.Format(roots)
	if !strings.Contains(text, trace.ClientLabel+" d") || !strings.Contains(text, "  "+trace.SourcePrefix+"homes d") {
		t.Fatalf("format:\n%s", text)
	}
}

// plainDoc hides TreeDoc's native Selector.
type plainDoc struct{ d nav.Document }

func (p plainDoc) Root() (nav.ID, error)          { return p.d.Root() }
func (p plainDoc) Down(q nav.ID) (nav.ID, error)  { return p.d.Down(q) }
func (p plainDoc) Right(q nav.ID) (nav.ID, error) { return p.d.Right(q) }
func (p plainDoc) Fetch(q nav.ID) (string, error) { return p.d.Fetch(q) }

func sibTree() *xmltree.Tree {
	return xmltree.Elem("root", xmltree.Leaf("a"), xmltree.Leaf("b"), xmltree.Leaf("target"))
}

// TestDocSelectBilling checks that a traced select over a native
// document is one span, while over a non-native document the fallback
// bills each r/f hop — matching CountingDoc at the same boundary.
func TestDocSelectBilling(t *testing.T) {
	// Native: TreeDoc implements Selector.
	r := trace.New()
	doc := trace.NewDoc(nav.NewTreeDoc(sibTree()), trace.SourcePrefix+"s", r)
	root, _ := doc.Root()
	first, _ := doc.Down(root)
	got, err := nav.Select(doc, first, nav.LabelIs("target"), false)
	if err != nil || got == nil {
		t.Fatalf("native select: %v %v", got, err)
	}
	totals := trace.SourceTotals(r.Take())
	if totals["select"] != 1 || totals["r"] != 0 || totals["f"] != 0 {
		t.Fatalf("native totals = %v", totals)
	}

	// Non-native: the scan is billed hop by hop.
	r2 := trace.New()
	doc2 := trace.NewDoc(plainDoc{d: nav.NewTreeDoc(sibTree())}, trace.SourcePrefix+"s", r2)
	if _, ok := nav.SelectorOf(doc2); ok {
		t.Fatal("plainDoc reported native select")
	}
	root2, _ := doc2.Root()
	first2, _ := doc2.Down(root2)
	got2, err := nav.Select(doc2, first2, nav.LabelIs("target"), false)
	if err != nil || got2 == nil {
		t.Fatalf("fallback select: %v %v", got2, err)
	}
	totals2 := trace.SourceTotals(r2.Take())
	if totals2["select"] != 0 || totals2["r"] != 2 || totals2["f"] != 2 {
		t.Fatalf("fallback totals = %v", totals2)
	}
}
