package server_test

// Speculative prefetch (DESIGN.md §15): the successor model must warm
// the deep-drill persona's next region before the client asks, the
// ablation must behave exactly like a server that never heard of
// prefetch, speculation must stay invisible to the demand-side engine
// pool, and none of it may ever serve stale or non-identical bytes —
// including under concurrent registry mutation (run with -race) and
// across cluster prefetch hints.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const pfRegions = 12

const pfQuery = `CONSTRUCT <homes> $H {$H} </homes> {} WHERE homesSrc homes.home $H`

func pfHomes() *xmltree.Tree {
	homes, _ := workload.HomesSchools(pfRegions, 1, 4, 31)
	return homes
}

// pfOracle replays script against an uncached engine and returns the
// per-step explored parts.
func pfOracle(t *testing.T, homes *xmltree.Tree, script []workload.Step) []string {
	t.Helper()
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	res, err := m.Query(pfQuery)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(script))
	err = workload.ReplayPersona(res.Document(), script, func(i int, explored string) error {
		out[i] = explored
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func pfFactory(homes *xmltree.Tree, counters *metrics.Counters) server.Factory {
	return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterSource("homesSrc", &nav.CountingDoc{Doc: nav.NewTreeDoc(homes), Counters: counters})
		return m, nil
	}
}

// pfStart boots one server over homes with counted demand sources and,
// when prefetch is on, counted speculative sources.
func pfStart(t testing.TB, homes *xmltree.Tree, opts ...server.Option) (*server.Server, string, *metrics.Counters, *metrics.Counters) {
	t.Helper()
	src, specSrc := &metrics.Counters{}, &metrics.Counters{}
	opts = append([]server.Option{
		server.WithRegionCache(regioncache.New(0)),
		server.WithSpecFactory(pfFactory(homes, specSrc)),
	}, opts...)
	srv, err := server.New(pfFactory(homes, src), opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, l.Addr().String(), src, specSrc
}

// pfQuiesce waits for every in-flight speculative drain to finish.
func pfQuiesce(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Prefetch == nil || st.Prefetch.Inflight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("speculative drains did not quiesce")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// pfReplay replays script through a fresh session on addr, quiescing
// between steps, and returns the per-step explored parts plus the
// demand source navigations split at step `split`.
func pfReplay(t *testing.T, addr string, srv *server.Server, src *metrics.Counters,
	script []workload.Step, split int) (explored []string, early, late int64) {
	t.Helper()
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(pfQuery); err != nil {
		t.Fatal(err)
	}
	pfQuiesce(t, srv)
	explored = make([]string, len(script))
	prev := src.Navigations()
	err = workload.ReplayPersona(c, script, func(i int, ex string) error {
		pfQuiesce(t, srv)
		navs := src.Navigations() - prev
		prev += navs
		if i < split {
			early += navs
		} else {
			late += navs
		}
		explored[i] = ex
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return explored, early, late
}

// TestPrefetchWarmsNextRegion is the tentpole invariant on one node:
// after two training engagements the deep-drill persona's remaining
// regions are served entirely from speculatively warmed cache — zero
// interactive source navigations, byte-identical answers — and the
// speculation neither touches the demand engine pool nor misses a
// prediction.
func TestPrefetchWarmsNextRegion(t *testing.T) {
	homes := pfHomes()
	script := workload.DeepDrillScript(pfRegions, 1)
	want := pfOracle(t, homes, script)
	srv, addr, src, specSrc := pfStart(t, homes, server.WithPrefetch(true))

	got, early, late := pfReplay(t, addr, srv, src, script, 2)
	if early == 0 {
		t.Fatal("training regions drove no source work; the test measures nothing")
	}
	if late != 0 {
		t.Fatalf("steady-state regions drove %d interactive source navs, want 0", late)
	}
	if specSrc.Navigations() == 0 {
		t.Fatal("speculative drains drove no source work")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d explored:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	st := srv.Stats()
	if st.Prefetch == nil {
		t.Fatal("prefetch-enabled server reports no prefetch stats")
	}
	if st.Prefetch.Hits < int64(pfRegions-2) || st.Prefetch.Wasted != 0 {
		t.Fatalf("prefetch stats %+v; want ≥%d hits and 0 wasted", st.Prefetch, pfRegions-2)
	}
	// Speculative engines come from the prefetcher's own pool: the
	// demand pool must look exactly like one plain session used it.
	if st.Pool == nil || st.Pool.Created != 1 || st.Pool.Reused != 0 {
		t.Fatalf("speculation leaked into the demand engine pool: %+v", st.Pool)
	}
}

// TestPrefetchAblationByteIdentity pins the ablation: a server with
// -prefetch=false and a server that never configured prefetch replay
// every persona with identical bytes AND identical per-source
// navigation counts, and the prefetch-on server serves the same bytes.
func TestPrefetchAblationByteIdentity(t *testing.T) {
	homes := pfHomes()
	onSrv, onAddr, onSrc, _ := pfStart(t, homes, server.WithPrefetch(true))
	offSrv, offAddr, offSrc, _ := pfStart(t, homes, server.WithPrefetch(false))
	// Never configured: no prefetch option, no spec factory.
	nevSrc := &metrics.Counters{}
	nevSrv, err := server.New(pfFactory(homes, nevSrc), server.WithRegionCache(regioncache.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- nevSrv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = nevSrv.Shutdown(ctx)
		<-done
	}()

	for _, persona := range []string{"deep-drill", "glance", "select-heavy"} {
		script := workload.PersonaScript(persona, pfRegions, 7)
		want := pfOracle(t, homes, script)
		offBefore, nevBefore := offSrc.Navigations(), nevSrc.Navigations()
		on, _, _ := pfReplay(t, onAddr, onSrv, onSrc, script, 0)
		off, _, _ := pfReplay(t, offAddr, offSrv, offSrc, script, 0)
		nev, _, _ := pfReplay(t, l.Addr().String(), nevSrv, nevSrc, script, 0)
		for i := range want {
			if on[i] != want[i] || off[i] != want[i] || nev[i] != want[i] {
				t.Fatalf("%s step %d: explored parts differ from the oracle", persona, i)
			}
		}
		if offN, nevN := offSrc.Navigations()-offBefore, nevSrc.Navigations()-nevBefore; offN != nevN {
			t.Fatalf("%s: -prefetch=false drove %d source navs, never-configured %d; must be identical",
				persona, offN, nevN)
		}
	}
	if st := offSrv.Stats(); st.Prefetch != nil {
		t.Fatalf("-prefetch=false server reports prefetch stats: %+v", st.Prefetch)
	}
}

// TestPrefetchStressUnderBumpRegistry hammers speculation with
// concurrent sessions and registry bumps (run with -race): whatever
// the epoch does, every explored part stays byte-identical to the
// uncached oracle — speculative entries must never resurrect a dead
// generation.
func TestPrefetchStressUnderBumpRegistry(t *testing.T) {
	homes := pfHomes()
	oracles := map[string][]string{}
	for _, persona := range []string{"deep-drill", "glance"} {
		oracles[persona] = pfOracle(t, homes, workload.PersonaScript(persona, pfRegions, 3))
	}
	srv, addr, _, _ := pfStart(t, homes, server.WithPrefetch(true))

	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			srv.BumpRegistry()
		}
	}()

	const sessions = 6
	const opensPerSession = 4
	var wg sync.WaitGroup
	var failed atomic.Int64
	errs := make(chan error, sessions*opensPerSession)
	for g := 0; g < sessions; g++ {
		persona := "deep-drill"
		if g%2 == 1 {
			persona = "glance"
		}
		wg.Add(1)
		go func(persona string) {
			defer wg.Done()
			script := workload.PersonaScript(persona, pfRegions, 3)
			want := oracles[persona]
			for i := 0; i < opensPerSession; i++ {
				c, err := vxdp.Dial(addr)
				if err != nil {
					failed.Add(1)
					errs <- err
					return
				}
				err = func() error {
					defer c.Close()
					if err := c.Open(pfQuery); err != nil {
						return err
					}
					return workload.ReplayPersona(c, script, func(i int, ex string) error {
						if ex != want[i] {
							return fmt.Errorf("%s step %d served non-oracle bytes", persona, i)
						}
						return nil
					})
				}()
				if err != nil {
					failed.Add(1)
					errs <- err
					return
				}
			}
		}(persona)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if failed.Load() != 0 {
		t.Fatalf("%d session(s) failed under registry mutation", failed.Load())
	}
	pfQuiesce(t, srv)
}

// BenchmarkSessionDeepDrill guards the demand path: with
// -prefetch=false a session costs exactly what it did before the
// prefetch subsystem existed — the navigation hooks reduce to one nil
// check — and prefetch-on adds only the tracking/prediction work.
func BenchmarkSessionDeepDrill(b *testing.B) {
	homes := pfHomes()
	script := workload.DeepDrillScript(pfRegions, 1)
	for _, mode := range []struct {
		name string
		opts []server.Option
	}{
		{"prefetch=off", []server.Option{server.WithPrefetch(false)}},
		{"prefetch=on", []server.Option{server.WithPrefetch(true)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			_, addr, _, _ := pfStart(b, homes, mode.opts...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := vxdp.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Open(pfQuery); err != nil {
					b.Fatal(err)
				}
				if err := workload.ReplayPersona(c, script, nil); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
	}
}

// TestClusterPrefetchHintWarmsOwner runs a two-node ModeLocal fleet:
// the non-owner's session speculates locally AND ships prefetch_hint
// frames to the view's ring owner, whose own speculative drains warm
// its cache — so a later client of the owner pays nothing interactive.
func TestClusterPrefetchHintWarmsOwner(t *testing.T) {
	homes := pfHomes()
	script := workload.DeepDrillScript(pfRegions, 1)

	type member struct {
		srv     *server.Server
		node    *cluster.Node
		addr    string
		src     *metrics.Counters
		specSrc *metrics.Counters
		done    chan error
	}
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i], addrs[i] = l, l.Addr().String()
	}
	fleet := make([]*member, 2)
	for i := range fleet {
		src, specSrc := &metrics.Counters{}, &metrics.Counters{}
		rc := regioncache.New(0)
		node, err := cluster.New(cluster.Config{
			Self: addrs[i], Peers: []string{addrs[1-i]}, Mode: cluster.ModeLocal,
			HealthInterval: time.Hour, FlushInterval: -1,
		}, rc)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(pfFactory(homes, src),
			server.WithRegionCache(rc), server.WithCluster(node),
			server.WithPrefetch(true), server.WithSpecFactory(pfFactory(homes, specSrc)))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
		node.Start()
		fleet[i] = &member{srv: srv, node: node, addr: addrs[i], src: src, specSrc: specSrc, done: done}
	}
	defer func() {
		for _, m := range fleet {
			m.node.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}()

	probe := mediator.New(mediator.DefaultOptions())
	probe.RegisterTree("homesSrc", homes)
	res, err := probe.Query(pfQuery)
	if err != nil {
		t.Fatal(err)
	}
	name, fp := res.CacheKey()
	ownerAddr := fleet[0].node.Owner(name, fp)
	owner, entry := fleet[0], fleet[1]
	if owner.addr != ownerAddr {
		owner, entry = fleet[1], fleet[0]
	}

	// Drive the deep-drill on the NON-owner; its engagements hint the
	// owner with every prediction.
	c, err := vxdp.Dial(entry.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(pfQuery); err != nil {
		t.Fatal(err)
	}
	if err := workload.ReplayPersona(c, script, nil); err != nil {
		t.Fatal(err)
	}

	// Hints travel on fire-and-forget goroutines; wait for the owner to
	// have received at least one and drained it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		est, ost := entry.srv.Stats(), owner.srv.Stats()
		if est.Prefetch != nil && ost.Prefetch != nil &&
			est.Prefetch.HintsSent > 0 && ost.Prefetch.HintsRecv > 0 &&
			ost.Prefetch.Issued > 0 && ost.Prefetch.Inflight == 0 &&
			owner.specSrc.Navigations() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hints never warmed the owner: entry=%+v owner=%+v ownerSpecNavs=%d",
				est.Prefetch, ost.Prefetch, owner.specSrc.Navigations())
		}
		time.Sleep(time.Millisecond)
	}

	// The owner's demand sources were never touched: its warmth is all
	// speculative.
	if n := owner.src.Navigations(); n != 0 {
		t.Fatalf("owner demand sources saw %d navs from hint drains, want 0", n)
	}

	// A stale-generation hint is acknowledged but never drained.
	oc, err := vxdp.Dial(owner.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	issuedBefore := owner.srv.Stats().Prefetch.Issued
	stale := vxdp.PrefetchHint{Query: pfQuery, Region: 0, Deep: true,
		Key: vxdp.RegionKey{Gen: 1 << 60, Name: name, Fingerprint: fp}}
	if err := oc.PrefetchHint(stale); err != nil {
		t.Fatalf("stale hint must be acknowledged, got %v", err)
	}
	pfQuiesce(t, owner.srv)
	if got := owner.srv.Stats().Prefetch.Issued; got != issuedBefore {
		t.Fatalf("stale-generation hint spawned a drain (issued %d → %d)", issuedBefore, got)
	}
}
