package server

import (
	"bufio"
	"encoding/json"
	"net"
	"time"

	"mix/internal/cluster"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// This file is the server side of mixd -cluster: session routing over
// the consistent-hash ring (proxy / redirect / degraded-local), the
// per-session proxy link to an owner node, and the peer-facing L2
// region protocol (ping / region_get / region_put / invalidate).

// handlePing answers the cluster liveness probe with this node's
// region-cache generation, so health checks double as epoch-skew
// detection.
func (s *Server) handlePing() vxdp.Response {
	var gen uint64
	if s.cache != nil {
		gen = s.cache.Generation()
	}
	return vxdp.Response{NavResult: vxdp.NavResult{OK: true}, Gen: gen}
}

// handleRegionGet serves a peer's L2 fetch from the local L1 — Peek
// only: no entry creation, no LRU touch, and crucially no remote fetch
// of our own, so region traffic can never chain through a third node.
// OK=false is a plain miss; regions too large for one frame miss too
// (they stay node-local).
func (s *Server) handleRegionGet(req vxdp.Request) vxdp.Response {
	miss := vxdp.Response{NavResult: vxdp.NavResult{OK: false}}
	if s.cache == nil || req.Region == nil {
		return miss
	}
	e := s.cache.Peek(cluster.CacheKey(*req.Region))
	if e == nil {
		return miss
	}
	// The semantic form serves only fully explored regions: the asker
	// will answer a *subsumed* query from it, which is sound only when
	// no part of the region is an unexplored hole.
	if req.Semantic && !e.Complete() {
		return miss
	}
	reg := e.Export()
	if reg.Empty() {
		return miss
	}
	if enc, err := json.Marshal(reg); err != nil || len(enc) > cluster.MaxRegionWire {
		return miss
	}
	if s.cluster != nil {
		s.cluster.RecordL2Serve()
	}
	return vxdp.Response{NavResult: vxdp.NavResult{OK: true}, Tree: reg, Gen: s.cache.Generation()}
}

// handleRegionPut merges a peer-published region into the local L1.
// Puts for any generation but the current one are ignored (OK=false):
// the publisher lags an invalidation this node already applied, and its
// own health loop will bring it forward.
func (s *Server) handleRegionPut(req vxdp.Request) vxdp.Response {
	var gen uint64
	if s.cache != nil {
		gen = s.cache.Generation()
	}
	if s.cache == nil || req.Region == nil || req.Tree == nil {
		return vxdp.Response{NavResult: vxdp.NavResult{OK: false}, Gen: gen}
	}
	merged := s.cache.Absorb(cluster.CacheKey(*req.Region), req.Tree)
	if merged && s.cluster != nil {
		s.cluster.RecordL2Fill()
	}
	return vxdp.Response{NavResult: vxdp.NavResult{OK: merged}, Gen: s.cache.Generation()}
}

// traced wraps a peer-facing region op in a one-shot span when the
// request carries a trace context: the serving side of cross-node L2
// traffic shows up in the caller's stitched fleet trace as a
// cluster-labelled span on this node. Region ops are session-stateless,
// so the recorder is ephemeral — no per-session recorder to collide
// with. Untraced peers (and untracing servers) go straight through.
func (s *Server) traced(ctx *trace.Context, op string, f func() vxdp.Response) vxdp.Response {
	if ctx == nil || !s.cfg.Trace {
		return f()
	}
	rec := s.newRecorder()
	rec.SetRemoteParent(*ctx)
	sp, _ := rec.BeginContext(trace.ClusterLabel, op)
	resp := f()
	rec.End(sp)
	resp.Spans = rec.Take()
	return resp
}

// handleInvalidate applies a generation broadcast: raise the cache to
// the target epoch and, if that actually advanced it, flush the engine
// pool exactly like a local BumpRegistry — pooled engines were built
// against sources the fleet just declared stale.
func (s *Server) handleInvalidate(req vxdp.Request) vxdp.Response {
	if s.cache == nil {
		return vxdp.Response{NavResult: vxdp.NavResult{OK: true}}
	}
	if s.cache.AdvanceTo(req.Gen) {
		s.epoch.Add(1)
		s.poolMu.Lock()
		s.pool = nil
		s.poolMu.Unlock()
		if s.prefetch != nil {
			s.prefetch.epochMoved()
		}
		if s.cluster != nil {
			s.cluster.RecordInvalRecv()
		}
	}
	return vxdp.Response{NavResult: vxdp.NavResult{OK: true}, Gen: s.cache.Generation()}
}

// proxyTracedOp reports whether a forwarded command gets a proxy span:
// the navigation commands and batches. Introspection forwards (trace)
// must not open spans — they would pollute the forest they fetch.
func proxyTracedOp(op string) bool {
	switch op {
	case vxdp.OpRoot, vxdp.OpDown, vxdp.OpRight, vxdp.OpFetch, vxdp.OpSelect, vxdp.OpBatch:
		return true
	}
	return false
}

// --- session routing ------------------------------------------------------

// proxyLink is a proxied session's private connection to the owner
// node: one remote VXDP session whose lifetime matches the local one.
// Distinct from the cluster's shared control link, so a slow navigation
// cannot stall health checks or region traffic.
type proxyLink struct {
	owner string
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
}

func (p *proxyLink) do(req vxdp.Request) (vxdp.Response, error) {
	if err := vxdp.WriteFrame(p.w, req); err != nil {
		return vxdp.Response{}, err
	}
	if err := p.w.Flush(); err != nil {
		return vxdp.Response{}, err
	}
	var resp vxdp.Response
	if err := vxdp.ReadFrame(p.r, &resp); err != nil {
		return vxdp.Response{}, err
	}
	return resp, nil
}

// closeProxy tears down the proxy link, telling the owner's session to
// end (best effort).
func (s *session) closeProxy() {
	if s.proxy == nil {
		return
	}
	_ = vxdp.WriteFrame(s.proxy.w, vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpClose}})
	_ = s.proxy.w.Flush()
	_ = s.proxy.conn.Close()
	s.proxy = nil
}

// openRouted handles an open frame under cluster routing. Without a
// cluster (or in local mode, or for an open a peer already proxied to
// us) it is a plain local open. Otherwise the query is compiled locally
// — cheap: parse, compose, canonicalize; no source access — to obtain
// its (view name, plan fingerprint) routing key, and the ring decides:
//
//   - this node owns the key → serve locally;
//   - the owner is down       → serve locally, counted degraded;
//   - redirect mode           → answer with the owner's address;
//   - proxy mode              → forward the open (and every later
//     command) to the owner; if forwarding fails, fall back to local.
func (s *session) openRouted(req vxdp.Request) vxdp.Response {
	cl := s.srv.cluster
	if cl == nil || cl.Mode() == cluster.ModeLocal || req.Proxied {
		if err := s.open(req.Query); err != nil {
			return errResp("%v", err)
		}
		return vxdp.Response{NavResult: vxdp.NavResult{OK: true}}
	}
	// The ring is about to decide; record how long the whole routed open
	// takes under the decision it lands on (degraded fallbacks count as
	// local — the client got a locally served view either way). This is
	// the mix_cluster_route_duration_seconds family.
	start := time.Now()
	mode := "local"
	defer func() { s.srv.routeHist.Histogram(mode).Observe(time.Since(start)) }()
	if err := s.ensureEngine(); err != nil {
		return errResp("%v", err)
	}
	res, err := s.eng.med.Query(req.Query)
	if err != nil {
		return errResp("%v", err)
	}
	name, fp := res.CacheKey()
	owner := cl.Owner(name, fp)
	serveLocal := func() vxdp.Response {
		s.closeProxy()
		s.installView(res, req.Query)
		return vxdp.Response{NavResult: vxdp.NavResult{OK: true}}
	}
	if cl.IsSelf(owner) {
		cl.RecordOwnedLocal()
		return serveLocal()
	}
	if !cl.Alive(owner) {
		cl.RecordDegraded()
		return serveLocal()
	}
	// Semantic short-circuit: if a subsuming cached plan — local, or
	// fetched complete from *its* owner via the semantic region_get —
	// answers this query outright, the whole session stays here with
	// zero source navigations. Proxying to the owner could not do
	// better, and the answer is byte-identical by construction.
	if res.SemanticWarm() {
		cl.RecordSemanticLocal()
		return serveLocal()
	}
	if cl.Mode() == cluster.ModeRedirect {
		mode = "redirect"
		cl.RecordRedirected()
		s.closeProxy()
		// The local doc (if any) dies with the redirect: the client is
		// about to redial, and open-replaces-view says old handles die.
		s.doc = nil
		s.handles = nil
		return vxdp.Response{Redirect: owner}
	}
	resp, err := s.startProxy(owner, req.Query)
	if err != nil || resp.Err != "" || !resp.OK {
		// Owner unreachable or refusing (capacity, bad config): degrade
		// to the answer this node can always give — its own sources.
		if err != nil {
			cl.ReportFailure(owner)
		}
		s.closeProxy()
		cl.RecordDegraded()
		return serveLocal()
	}
	mode = "proxy"
	cl.RecordProxied()
	s.doc = nil // the view lives on the owner now
	s.handles = nil
	return resp
}

// startProxy establishes (or reuses) the proxy link to owner and opens
// the view there. The forwarded open is marked Proxied so the owner
// serves it locally no matter what its own ring says.
func (s *session) startProxy(owner, query string) (vxdp.Response, error) {
	if s.proxy != nil && s.proxy.owner != owner {
		s.closeProxy()
	}
	if s.proxy == nil {
		conn, err := s.srv.cluster.DialOwner(owner)
		if err != nil {
			return vxdp.Response{}, err
		}
		s.proxy = &proxyLink{owner: owner, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	}
	resp, err := s.proxy.do(vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpOpen}, Query: query, Proxied: true})
	if err != nil {
		s.closeProxy()
		return vxdp.Response{}, err
	}
	s.proxyQuery = query
	return resp, nil
}

// forward relays one command of a proxied session to the owner. If the
// owner is lost mid-session the session itself survives: the peer is
// reported down, the view is reopened locally from this node's own
// sources, and the in-flight command gets an error telling the client
// to restart navigation from the root — handles minted by the owner are
// meaningless here.
//
// On a tracing node the hop itself is a span: the proxy opens a span
// labelled trace.ProxyLabel (parented under the client's context when
// it sent one), rewrites the forwarded trace context to that span, and
// stitches the subtree the owner returns under it BEFORE ending — so
// the flight recorder and any trace reader see the full cross-node
// tree as one unit. If the original client was tracing, the stitched
// forest is drained back into the response for the client to graft in
// turn.
func (s *session) forward(req vxdp.Request) vxdp.Response {
	var sp *trace.Span
	clientCtx := req.TraceCtx
	if s.rec != nil && proxyTracedOp(req.Op) {
		if clientCtx != nil {
			s.rec.SetRemoteParent(*clientCtx)
		}
		var ctx trace.Context
		sp, ctx = s.rec.BeginContext(trace.ProxyLabel, req.Op)
		s.rec.ClearRemoteParent()
		req.TraceCtx = &ctx
	}
	resp, err := s.proxy.do(req)
	if err == nil {
		if sp != nil {
			if len(resp.Spans) > 0 {
				trace.Stitch(sp, resp.Spans)
				resp.Spans = nil
			}
			s.rec.End(sp)
			if clientCtx != nil {
				resp.Spans = s.rec.Take()
			}
		}
		s.srv.cluster.RecordProxied()
		return resp
	}
	if sp != nil {
		// The hop failed mid-span: close it (it stays in the recorder as
		// an orphan the next trace fetch will surface — a useful breadcrumb
		// for exactly this failure) and fall through to the degrade path.
		s.rec.End(sp)
	}
	owner := s.proxy.owner
	s.srv.cluster.ReportFailure(owner)
	_ = s.proxy.conn.Close()
	s.proxy = nil
	s.srv.cluster.RecordDegraded()
	query := s.proxyQuery
	s.proxyQuery = ""
	if oerr := s.open(query); oerr != nil {
		return errResp("cluster: owner %s lost and local reopen failed: %v", owner, oerr)
	}
	return errResp("cluster: owner %s lost; view reopened locally, restart navigation from root", owner)
}
