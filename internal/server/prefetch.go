package server

import (
	"context"
	"sync"
	"sync/atomic"

	"mix/internal/core"
	"mix/internal/metrics"
	"mix/internal/predict"
	"mix/internal/regioncache"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// This file is the server half of navigation-driven speculative
// prefetch (DESIGN.md §15). Sessions feed region-engagement events into
// a shared successor model (internal/predict); when the model is
// confident about a view's next region, a drain worker warms it through
// core.PrefetchRegion on an engine from the prefetcher's own pool —
// never the demand pool, so mix_engine_pool_* gauges and per-session
// counters stay exactly what they were without speculation. Under
// -cluster, a prediction for a view another node owns additionally
// ships a fire-and-forget prefetch_hint there, so the region warms in
// the cache that will actually serve it.

// Default speculative-drain bounds: enough navigations to drain a
// sizeable region, few enough that a wrong guess stays cheap.
const (
	DefaultPrefetchNavs       = 4096
	DefaultPrefetchBytes      = 256 << 10
	DefaultPrefetchConfidence = 0.5
)

// specRun is one running drain: its kill switch and the region it is
// warming, so demand arriving for exactly that region can cancel it
// (the client is about to derive it anyway) while demand elsewhere
// lets it finish.
type specRun struct {
	cancel context.CancelFunc
	region int
}

// prefetcher owns everything speculative: the successor model, the
// running drains, their engine pool, and the counters behind
// mix_prefetch_*. One per server; nil when prefetch is off.
type prefetcher struct {
	srv         *Server
	model       *predict.Model
	budget      core.PrefetchBudget
	conf        float64
	specFactory Factory

	issued    atomic.Int64 // drains spawned (bumped before the goroutine starts)
	hits      atomic.Int64 // predictions the client confirmed by engaging the region
	wasted    atomic.Int64 // predictions the client contradicted
	cancelled atomic.Int64 // drains cancelled mid-flight
	hintsSent atomic.Int64
	hintsRecv atomic.Int64
	inflight  atomic.Int64
	// navs accumulates speculative answer-boundary navigations — a
	// dedicated block, never a session's, so demand attribution is
	// untouched by speculation.
	navs metrics.Counters

	mu      sync.Mutex
	running map[predict.Key]*specRun
	pool    []*pooledEngine // spec engines; separate from the demand pool
	closed  bool
}

func newPrefetcher(s *Server) *prefetcher {
	p := &prefetcher{
		srv:         s,
		model:       predict.NewModel(0),
		budget:      s.cfg.PrefetchBudget,
		conf:        s.cfg.PrefetchConfidence,
		specFactory: s.cfg.SpecFactory,
		running:     map[predict.Key]*specRun{},
	}
	if p.budget.MaxNavs == 0 {
		p.budget.MaxNavs = DefaultPrefetchNavs
	}
	if p.budget.MaxBytes == 0 {
		p.budget.MaxBytes = DefaultPrefetchBytes
	}
	if p.conf == 0 {
		p.conf = DefaultPrefetchConfidence
	}
	if p.specFactory == nil {
		p.specFactory = s.cfg.factory
	}
	return p
}

// cacheKey converts a successor-model key back to the cache key it was
// derived from (the two are field-for-field the same identity).
func cacheKey(k predict.Key) regioncache.Key {
	return regioncache.Key{Generation: k.Generation, Registry: k.Registry, Name: k.Name, Fingerprint: k.Fingerprint}
}

// spawn starts a drain warming region of the view keyed k, compiled
// from query. At most one drain runs per view key; a second prediction
// for a busy key is dropped (the running drain is already warming the
// newer guess or will be re-predicted on the next engagement). Issued
// and inflight are bumped before the goroutine starts, so a caller that
// observed the spawn can quiesce by polling inflight down to zero.
func (p *prefetcher) spawn(k predict.Key, query string, region int, deep bool) bool {
	if query == "" || region < 0 {
		return false
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	if _, busy := p.running[k]; busy {
		p.mu.Unlock()
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.running[k] = &specRun{cancel: cancel, region: region}
	p.issued.Add(1)
	p.inflight.Add(1)
	p.mu.Unlock()
	go p.drain(ctx, cancel, k, query, region, deep)
	return true
}

// drain runs one speculative exploration to completion, budget, or
// cancellation. Errors are swallowed: speculation is advisory, and the
// demand path it failed to help is untouched.
func (p *prefetcher) drain(ctx context.Context, cancel context.CancelFunc, k predict.Key, query string, region int, deep bool) {
	defer func() {
		cancel()
		p.mu.Lock()
		delete(p.running, k)
		p.mu.Unlock()
		p.inflight.Add(-1)
	}()
	pe, err := p.acquireSpec()
	if err != nil {
		return
	}
	defer p.releaseSpec(pe)
	res, err := pe.med.Query(query)
	if err != nil {
		return
	}
	// The freshly compiled query must land on the exact key predicted.
	// A mismatch means the cache generation or source registry moved
	// between prediction and drain — warming under the new key would be
	// warming a region nobody predicted, so the hint is simply stale.
	if res.RegionKey() != cacheKey(k) {
		return
	}
	r, err := res.PrefetchRegion(ctx, region, deep, p.budget, &p.navs)
	if err != nil {
		return
	}
	if r.Cancelled {
		p.cancelled.Add(1)
	}
}

// cancelDemand kills the drain warming exactly (k, region): real demand
// for that region just arrived, and the demand derivation supersedes
// the speculative one instantly (the drain notices within one
// navigation). A drain warming a different region of the same view is
// left to finish.
func (p *prefetcher) cancelDemand(k predict.Key, region int) {
	p.mu.Lock()
	if r, ok := p.running[k]; ok && r.region == region {
		r.cancel()
	}
	p.mu.Unlock()
}

// epochMoved reacts to a registry bump or fleet invalidation: every
// running drain is cancelled, the spec engine pool is flushed (its
// engines were built against the old sources), and successor tables for
// dead generations are evicted.
func (p *prefetcher) epochMoved() {
	p.mu.Lock()
	for _, r := range p.running {
		r.cancel()
	}
	p.pool = nil
	p.mu.Unlock()
	if c := p.srv.cache; c != nil {
		p.model.EvictBelow(c.Generation())
	}
}

// close stops the prefetcher for server shutdown: no new drains, all
// running ones cancelled.
func (p *prefetcher) close() {
	p.mu.Lock()
	p.closed = true
	for _, r := range p.running {
		r.cancel()
	}
	p.pool = nil
	p.mu.Unlock()
}

// acquireSpec pops an idle speculative engine or builds one from the
// spec factory. Deliberately separate from Server.acquireEngine: spec
// checkouts must not move the mix_engine_pool_* gauges, and spec
// engines carry spec-tagged recorders from birth.
func (p *prefetcher) acquireSpec() (*pooledEngine, error) {
	p.mu.Lock()
	if n := len(p.pool); n > 0 {
		pe := p.pool[n-1]
		p.pool = p.pool[:n-1]
		p.mu.Unlock()
		return pe, nil
	}
	p.mu.Unlock()
	epoch := p.srv.epoch.Load()
	m, err := p.specFactory(p.srv.cache)
	if err != nil {
		return nil, err
	}
	pe := &pooledEngine{med: m, epoch: epoch}
	if p.srv.cfg.Trace {
		// Spec recorders are bounded and tagged but deliberately have no
		// Sink and no RootSink: speculative latency must never enter the
		// per-operator histograms or the slow-navigation flight ring —
		// no client waited on it.
		rec := trace.New()
		rec.Limit = traceLimit
		rec.Node = p.srv.nodeName
		rec.Spec = true
		pe.rec = rec
		m.SetTracer(rec)
	}
	return pe, nil
}

// releaseSpec parks a speculative engine for reuse (dropping it when
// the server epoch moved past it, exactly like the demand pool).
func (p *prefetcher) releaseSpec(pe *pooledEngine) {
	if pe == nil {
		return
	}
	pe.rec.Take() // discard accumulated spec spans
	if pe.epoch != p.srv.epoch.Load() {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.pool = append(p.pool, pe)
	}
	p.mu.Unlock()
}

// maybeHint ships the prediction to the view key's ring owner when this
// node is clustered and not the owner: the owner's L1 is the cache that
// will serve the fleet, so that is where the region should warm.
func (p *prefetcher) maybeHint(k predict.Key, query string, region int, deep bool) {
	cl := p.srv.cluster
	if cl == nil || query == "" {
		return
	}
	owner := cl.Owner(k.Name, k.Fingerprint)
	if cl.IsSelf(owner) || !cl.Alive(owner) {
		return
	}
	p.hintsSent.Add(1)
	cl.SendPrefetchHint(owner, vxdp.PrefetchHint{
		Query: query,
		Key:   vxdp.RegionKey{Gen: k.Generation, Registry: k.Registry, Name: k.Name, Fingerprint: k.Fingerprint},
		Region: region,
		Deep:   deep,
	})
}

func (p *prefetcher) stats() *vxdp.PrefetchStats {
	return &vxdp.PrefetchStats{
		Issued:    p.issued.Load(),
		Hits:      p.hits.Load(),
		Wasted:    p.wasted.Load(),
		Cancelled: p.cancelled.Load(),
		Navs:      p.navs.Navigations(),
		HintsSent: p.hintsSent.Load(),
		HintsRecv: p.hintsRecv.Load(),
		Inflight:  p.inflight.Load(),
	}
}

// handlePrefetchHint serves the peer-facing prefetch_hint op. Always
// OK: hints are advisory, and every reason to drop one (prefetch off,
// stale generation, malformed) is the sender's non-problem.
func (s *Server) handlePrefetchHint(req vxdp.Request) vxdp.Response {
	ok := vxdp.Response{NavResult: vxdp.NavResult{OK: true}}
	p := s.prefetch
	if p == nil || req.Hint == nil {
		return ok
	}
	p.hintsRecv.Add(1)
	h := *req.Hint
	if s.cache == nil || h.Key.Gen != s.cache.Generation() || h.Query == "" || h.Region < 0 {
		return ok
	}
	k := predict.Key{Generation: h.Key.Gen, Registry: h.Key.Registry, Name: h.Key.Name, Fingerprint: h.Key.Fingerprint}
	p.spawn(k, h.Query, h.Region, h.Deep)
	return ok
}

// tracedSpec mirrors Server.traced for the prefetch_hint op, but on a
// spec-tagged ephemeral recorder with no sinks: even the hint's ack
// span is speculation-side, so it must stay out of the operator
// histograms and the slow-navigation flight ring.
func (s *Server) tracedSpec(ctx *trace.Context, op string, f func() vxdp.Response) vxdp.Response {
	if ctx == nil || !s.cfg.Trace {
		return f()
	}
	rec := trace.New()
	rec.Node = s.nodeName
	rec.Spec = true
	rec.SetRemoteParent(*ctx)
	sp, _ := rec.BeginContext(trace.ClusterLabel, op)
	resp := f()
	rec.End(sp)
	resp.Spans = rec.Take()
	return resp
}

// --- session-side geometry tracking ---------------------------------------

// nodePos is where a handle sits in its answer document: its depth and
// the index of the top-level region it belongs to. top -1 is the root
// (no region yet); top -2 is unknown (the handle was reached by select,
// whose landing position the server does not resolve — cheaper to skip
// the event than to scan).
type nodePos struct {
	depth int
	top   int
}

// noteMove records geometry for the handle a navigation just issued and
// fires the engagement events the move implies. Only called with
// prefetch on (s.geo non-nil); the off path never reaches it.
func (s *session) noteMove(op string, baseH, newH uint64) {
	switch op {
	case vxdp.OpRoot:
		s.geo[newH] = nodePos{depth: 0, top: -1}
	case vxdp.OpDown:
		b, ok := s.geo[baseH]
		if !ok {
			return
		}
		np := nodePos{depth: b.depth + 1, top: b.top}
		if b.depth == 0 {
			np.top = 0 // first child of the root opens region 0
		}
		s.geo[newH] = np
		if b.depth >= 1 && b.top >= 0 {
			// Descending inside a region is the deep-exploration signal
			// AND an engagement of that region.
			s.srv.prefetch.model.ObserveDrill(s.viewKey)
			s.engage(b.top)
		}
	case vxdp.OpRight:
		b, ok := s.geo[baseH]
		if !ok {
			return
		}
		np := b
		if b.depth == 1 && b.top >= 0 {
			// Passing region tops is scanning, not engaging: no event
			// until the client fetches or descends.
			np.top = b.top + 1
		}
		s.geo[newH] = np
	case vxdp.OpSelect:
		b, ok := s.geo[baseH]
		if !ok {
			return
		}
		s.geo[newH] = nodePos{depth: b.depth, top: -2}
	}
}

// noteFetch fires the engagement a fetch implies: reading a region
// top's label is the lightest way a client commits attention to it.
func (s *session) noteFetch(baseH uint64) {
	if b, ok := s.geo[baseH]; ok && b.depth == 1 && b.top >= 0 {
		s.engage(b.top)
	}
}

// noteAlias copies geometry to a re-issued handle for the same node
// (the batch "node" step).
func (s *session) noteAlias(baseH, newH uint64) {
	if b, ok := s.geo[baseH]; ok {
		s.geo[newH] = b
	}
}

// engage is the heart of the feedback loop: the session just committed
// attention to a region. Resolve the outstanding prediction (hit or
// wasted), cancel any drain warming exactly this region (demand
// supersedes it), teach the model the transition, and — if the model is
// now confident about the next region — start warming it.
func (s *session) engage(region int) {
	// Deeper moves inside the engaged region re-enter here; they are
	// the same engagement, not a new one, so they must neither resolve
	// the pending prediction nor feed the model.
	if region == s.lastEngaged {
		return
	}
	p := s.srv.prefetch
	if pr := s.pending; pr >= 0 {
		if pr == region {
			p.hits.Add(1)
		} else {
			p.wasted.Add(1)
		}
		s.pending = -1
	}
	p.cancelDemand(s.viewKey, region)
	from := s.lastEngaged
	s.lastEngaged = region
	p.model.Observe(s.viewKey, from, region)
	next, deep, conf, ok := p.model.Predict(s.viewKey, region)
	if !ok || conf < p.conf || next == region {
		return
	}
	if p.spawn(s.viewKey, s.viewQuery, next, deep) {
		s.pending = next
	}
	p.maybeHint(s.viewKey, s.viewQuery, next, deep)
}
