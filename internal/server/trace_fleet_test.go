package server_test

// Fleet tracing end-to-end: a 3-node proxy-mode cluster serving one
// traced navigation must hand the client a SINGLE stitched forest with
// spans from at least two nodes, the routing decision must land in the
// route-latency histograms, and the slow-navigation flight recorder
// must retain the proxied roots.

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mix/internal/cluster"
	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/trace"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const fleetViewDef = `
CONSTRUCT <allhomes>
  <med_home> $H $S {$S} </med_home> {$H}
</allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2
AND $V1 = $V2
`

const fleetQuery = `
CONSTRUCT <out> $M {$M} </out> {}
WHERE homeview allhomes.med_home $M`

type fleetMember struct {
	srv  *server.Server
	node *cluster.Node
	addr string
	name string
	done chan error
}

// startFleet boots n tracing mixd instances on loopback listeners,
// clustered in proxy mode with background timers off, named n0..n(n-1).
func startFleet(t *testing.T, n int, extra ...server.Option) []*fleetMember {
	t.Helper()
	homes, schools := workload.HomesSchools(10, 10, 3, 5)
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		if err := m.DefineView("homeview", fleetViewDef); err != nil {
			return nil, err
		}
		return m, nil
	}
	return startFleetWith(t, n, factory, extra...)
}

// startFleetWith is startFleet with a caller-supplied mediator factory
// (shared by every node), for tests that need instrumented sources.
func startFleetWith(t *testing.T, n int, factory server.Factory, extra ...server.Option) []*fleetMember {
	t.Helper()
	quiet := slog.New(slog.DiscardHandler)
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i], addrs[i] = l, l.Addr().String()
	}
	fleet := make([]*fleetMember, n)
	for i := range fleet {
		rc := regioncache.New(0)
		peers := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := cluster.New(cluster.Config{
			Self: addrs[i], Peers: peers, Mode: cluster.ModeProxy,
			HealthInterval: time.Hour, FlushInterval: -1, Logger: quiet,
		}, rc)
		if err != nil {
			t.Fatal(err)
		}
		name := "n" + string(rune('0'+i))
		opts := append([]server.Option{
			server.WithRegionCache(rc), server.WithCluster(node),
			server.WithLogger(quiet), server.WithTrace(true),
			server.WithNodeName(name),
		}, extra...)
		srv, err := server.New(factory, opts...)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(l net.Listener) { done <- srv.Serve(l) }(listeners[i])
		node.Start()
		fleet[i] = &fleetMember{srv: srv, node: node, addr: addrs[i], name: name, done: done}
	}
	t.Cleanup(func() {
		for _, m := range fleet {
			m.node.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	})
	return fleet
}

// nonOwner returns the index of a fleet member that does NOT own the
// fleet query's routing key, so an open through it must proxy.
func nonOwner(t *testing.T, fleet []*fleetMember) (entry, owner int) {
	t.Helper()
	homes, schools := workload.HomesSchools(10, 10, 3, 5)
	probe := mediator.New(mediator.DefaultOptions())
	probe.RegisterTree("homesSrc", homes)
	probe.RegisterTree("schoolsSrc", schools)
	if err := probe.DefineView("homeview", fleetViewDef); err != nil {
		t.Fatal(err)
	}
	res, err := probe.Query(fleetQuery)
	if err != nil {
		t.Fatal(err)
	}
	name, fp := res.CacheKey()
	ownerAddr := fleet[0].node.Owner(name, fp)
	for i, m := range fleet {
		if m.addr == ownerAddr {
			owner = i
		}
	}
	return (owner + 1) % len(fleet), owner
}

func countSpans(roots []*trace.Span, match func(*trace.Span) bool) int {
	n := 0
	var walk func(sp *trace.Span)
	walk = func(sp *trace.Span) {
		if match(sp) {
			n++
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return n
}

func TestFleetTraceStitchesAcrossNodes(t *testing.T) {
	fleet := startFleet(t, 3)
	entry, owner := nonOwner(t, fleet)

	c, err := vxdp.Dial(fleet[entry].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := trace.New()
	c.SetTracer(rec)
	if err := c.Open(fleetQuery); err != nil {
		t.Fatal(err)
	}
	got, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xmltree.MarshalXML(got), "med_home") {
		t.Fatal("proxied navigation returned an empty answer")
	}

	roots := rec.Take()
	if len(roots) == 0 {
		t.Fatal("client captured no spans")
	}
	for _, r := range roots {
		if r.Label != trace.ClientLabel {
			t.Fatalf("forest root label = %q, want %q (ONE forest, rooted at the client)",
				r.Label, trace.ClientLabel)
		}
	}
	totals := trace.NodeTotals(roots)
	entryName, ownerName := fleet[entry].name, fleet[owner].name
	if totals[entryName] == 0 || totals[ownerName] == 0 {
		t.Fatalf("stitched forest misses a node: totals = %v, want spans from %s and %s",
			totals, entryName, ownerName)
	}
	// The hop itself is attributed: proxy spans on the entry node, with
	// the owner's work (down to source navigations) stitched below.
	hops := countSpans(roots, func(sp *trace.Span) bool {
		return sp.Label == trace.ProxyLabel && sp.Node == entryName
	})
	if hops == 0 {
		t.Fatal("no proxy spans attributed to the entry node")
	}
	if n := trace.SourceNavigations(roots); n == 0 {
		t.Fatal("stitched forest shows no source navigations")
	}
}

func TestFleetRouteHistogramInStats(t *testing.T) {
	fleet := startFleet(t, 3)
	entry, _ := nonOwner(t, fleet)

	c, err := vxdp.Dial(fleet[entry].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(fleetQuery); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("clustered node reports no cluster stats")
	}
	found := false
	for _, r := range st.Cluster.Routes {
		if r.Mode == "proxy" {
			found = true
			if r.Count < 1 {
				t.Fatalf("proxy route count = %d, want >= 1", r.Count)
			}
			if r.P99Us < r.P50Us {
				t.Fatalf("route quantiles inverted: p50=%dus p99=%dus", r.P50Us, r.P99Us)
			}
		}
	}
	if !found {
		t.Fatalf("stats carry no proxy route latency: %+v", st.Cluster.Routes)
	}

	// The same histograms feed the Prometheus endpoint.
	hs := httptest.NewServer(fleet[entry].srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `mix_cluster_route_duration_seconds_count{mode="proxy"}`) {
		t.Fatalf("metrics missing route histogram:\n%s", body)
	}
}

func TestFleetSlowRingCapturesProxiedNavigation(t *testing.T) {
	fleet := startFleet(t, 3, server.WithSlowNav(0, 16)) // threshold 0: record all
	entry, _ := nonOwner(t, fleet)

	c, err := vxdp.Dial(fleet[entry].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := trace.New()
	c.SetTracer(rec)
	if err := c.Open(fleetQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}

	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 {
		t.Fatal("entry node's flight recorder retained nothing")
	}
	for _, s := range slow {
		if s.Node != fleet[entry].name {
			t.Fatalf("slow record node = %q, want %q (slow op is node-local)",
				s.Node, fleet[entry].name)
		}
		if s.Root == nil {
			t.Fatalf("slow record #%d has no span tree", s.Seq)
		}
	}

	// /debug/slow renders the same ring; the counter never forgets.
	hs := httptest.NewServer(fleet[entry].srv.Handler())
	defer hs.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/debug/slow"); !strings.Contains(body, `"total"`) {
		t.Fatalf("/debug/slow JSON missing total:\n%s", body)
	}
	if body := get("/debug/slow?format=text"); !strings.Contains(body, trace.ProxyLabel) {
		t.Fatalf("/debug/slow text shows no proxy spans:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "mix_slow_navigations_total") {
		t.Fatalf("metrics missing slow-navigation counter:\n%s", body)
	}
}
