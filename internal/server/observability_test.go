package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mix/internal/nav"
	"mix/internal/server"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// TestStatsOpOverWire drives a live VXDP connection and checks both the
// server-wide counters and the per-session block of the stats response.
func TestStatsOpOverWire(t *testing.T) {
	_, addr := start(t)
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	root, err := c.Root()
	if err != nil || root == nil {
		t.Fatalf("root: %v %v", root, err)
	}
	child, err := c.Down(root)
	if err != nil || child == nil {
		t.Fatalf("down: %v %v", child, err)
	}
	if _, err := c.Fetch(child); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsActive != 1 || st.SessionsTotal != 1 {
		t.Fatalf("sessions active=%d total=%d, want 1/1", st.SessionsActive, st.SessionsTotal)
	}
	// open + root + down + fetch + stats = 5 frames.
	if st.Msgs != 5 {
		t.Fatalf("msgs = %d, want 5", st.Msgs)
	}
	if st.Navs != 3 || st.Root != 1 || st.Down != 1 || st.Fetch != 1 {
		t.Fatalf("server navs = %+v", st)
	}
	if st.Session == nil {
		t.Fatal("stats response missing the per-session block")
	}
	s := st.Session
	if s.ID == 0 || s.UptimeMs < 0 {
		t.Fatalf("session identity: %+v", s)
	}
	if s.Opens != 1 || s.Msgs != 5 {
		t.Fatalf("session opens=%d msgs=%d, want 1/5", s.Opens, s.Msgs)
	}
	if s.Navs != 3 || s.Root != 1 || s.Down != 1 || s.Fetch != 1 || s.Right != 0 || s.Select != 0 {
		t.Fatalf("session navs = %+v", s)
	}
}

// TestStatsAggregatesAcrossSessions checks that server totals are the
// sum of live per-session counters while each session's own block stays
// private to it.
func TestStatsAggregatesAcrossSessions(t *testing.T) {
	_, addr := start(t)
	c1, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, c := range []*vxdp.Client{c1, c2} {
		if err := c.Open(joinQuery); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Root(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.Down(mustRoot(t, c1)); err != nil {
		t.Fatal(err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// c1: root, root, down; c2: root → server-wide root=3, down=1.
	if st.Root != 3 || st.Down != 1 {
		t.Fatalf("server-wide root=%d down=%d, want 3/1", st.Root, st.Down)
	}
	if st.Session.Root != 1 || st.Session.Down != 0 {
		t.Fatalf("c2's session block leaked c1's navigations: %+v", st.Session)
	}
}

func mustRoot(t *testing.T, c *vxdp.Client) nav.ID {
	t.Helper()
	root, err := c.Root()
	if err != nil || root == nil {
		t.Fatalf("root: %v %v", root, err)
	}
	return root
}

// TestTraceOpOverWire checks the wire trace command on a tracing server:
// the client gets the span forest behind its navigations, consecutive
// calls partition the stream, and a non-tracing server returns nothing.
func TestTraceOpOverWire(t *testing.T) {
	_, addr := start(t, server.WithTrace(true))
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(); err != nil { // discard the (lazy) root's trace
		t.Fatal(err)
	}
	if _, err := c.Down(root); err != nil {
		t.Fatal(err)
	}
	roots, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Label != trace.ClientLabel || roots[0].Op != "d" {
		t.Fatalf("want one client d root, got:\n%s", trace.Format(roots))
	}
	if trace.SourceNavigations(roots) == 0 {
		t.Fatalf("no source spans under the client navigation:\n%s", trace.Format(roots))
	}
	// Take semantics: the spans were consumed.
	again, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second trace returned %d roots", len(again))
	}
}

func TestTraceOpDisabled(t *testing.T) {
	_, addr := start(t)
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Root(); err != nil {
		t.Fatal(err)
	}
	roots, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 0 {
		t.Fatalf("non-tracing server returned %d spans", len(roots))
	}
}

// TestHTTPSidecar exercises the mixd -http surface: /metrics reflects
// navigations as they happen, /healthz reports liveness, and the pprof
// index is mounted.
func TestHTTPSidecar(t *testing.T) {
	srv, addr := start(t, server.WithTrace(true))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	_, before := get("/metrics")
	for _, want := range []string{
		"mix_sessions_active 0",
		`mix_navigations_total{kind="down"} 0`,
		"mix_msgs_total 0",
	} {
		if !strings.Contains(before, want) {
			t.Fatalf("metrics missing %q:\n%s", want, before)
		}
	}

	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Down(root); err != nil {
		t.Fatal(err)
	}

	_, after := get("/metrics")
	for _, want := range []string{
		"mix_sessions_active 1",
		`mix_navigations_total{kind="down"} 1`,
		`mix_navigations_total{kind="root"} 1`,
		"mix_command_duration_seconds_count", // command latency histogram populated
		"mix_operator_duration_seconds",      // operator histograms (tracing on)
		"mix_fp_computed_total",              // allocation-path counters (PR 5)
		"mix_dfa_cache_hits_total",
		"mix_vxdp_buffer_gets_total",
		"mix_lxp_buffer_gets_total",
		"mix_heap_alloc_bytes_total",
		"mix_gc_pause_ns_total",
	} {
		if !strings.Contains(after, want) {
			t.Fatalf("metrics after navigation missing %q:\n%s", want, after)
		}
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}
