// Package server implements mixd, the sessionful MIX mediator daemon:
// it serves the DOM-VXD command set over VXDP (internal/vxdp) so remote
// clients can navigate virtual mediated views across the network — the
// client↔mediator boundary of Fig. 1 that the in-process engine never
// crosses.
//
// Each accepted connection is one session, handled on its own
// goroutine. Because the lazy-mediator engine's pull-driven streams are
// single-consumer, every session gets a *fresh* mediator instance from
// the configured factory: sessions share immutable sources (trees,
// serialized LXP clients) but never lazy evaluation state, so N clients
// exploring the same view proceed independently.
//
// The session lifecycle is
//
//	accept → (open query → navigate…)* → close | idle timeout |
//	         lifetime timeout | server shutdown
//
// with per-session idle and absolute-lifetime deadlines (evicted
// sessions are counted), a connection limit that refuses new sessions
// beyond the cap with an error frame, and graceful shutdown: stop
// accepting, let in-flight requests finish, then close drained
// connections; stragglers are cut when the shutdown context expires.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/cluster"
	"mix/internal/core"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/regioncache"
	"mix/internal/telemetry"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// Factory builds the mediator behind one pooled engine: register
// sources and define views here. It is called concurrently from
// session goroutines, so shared underlying state (trees, LXP clients)
// must be immutable or internally synchronized. The server's shared
// region cache is passed (nil when caching is off) so the factory can
// install it *before* registering sources — mediator.SetRegionCache
// first, then RegisterLXP — which is what lets LXP prefetch fills
// publish into the cache.
type Factory func(cache *regioncache.Cache) (*mediator.Mediator, error)

// config is the assembled server configuration; callers shape it
// through New's functional options rather than a literal.
type config struct {
	// MaxSessions caps concurrently active sessions; connections beyond
	// the cap are refused with an error frame (0 = unlimited).
	MaxSessions int
	// IdleTimeout evicts a session that issues no request for this long
	// (0 = never).
	IdleTimeout time.Duration
	// MaxLifetime evicts a session this long after it was accepted,
	// busy or not (0 = never).
	MaxLifetime time.Duration
	// Logger receives structured session lifecycle and error events
	// (nil = discard).
	Logger *slog.Logger
	// Trace enables per-session span recording: sessions answer the
	// wire trace command with the fan-out behind their navigations, and
	// per-operator latencies feed the operator histograms. Off by
	// default; when off the engine hot path carries no instrumentation.
	Trace bool
	// SourceCounters names the per-source counters (e.g. from
	// lxp.Counting wrappers) to expose on the /metrics endpoint. The
	// server only reads them.
	SourceCounters map[string]*metrics.Counters
	// RegionCache, when non-nil, is shared across all sessions: regions
	// of answer documents explored by one session are served to every
	// other without re-deriving them (see internal/regioncache).
	RegionCache *regioncache.Cache
	// EnginePool reuses mediator engines across sequential sessions
	// instead of building one per session. On by default; disable with
	// WithEnginePool(false).
	EnginePool bool
	// Cluster, when non-nil, makes this server one member of a sharded
	// mediator fleet: opens are routed over the node's consistent-hash
	// ring (proxied or redirected to the owning member), the peer-facing
	// region ops are served, and registry bumps broadcast invalidations
	// fleet-wide. Requires RegionCache (the node is built over it).
	Cluster *cluster.Node
	// NodeName tags every span this server records (span node= field),
	// so stitched fleet traces say which member did the work. Defaults
	// to the cluster self address when clustered, else empty.
	NodeName string
	// SlowThreshold is the flight-recorder slowness bar: a traced root
	// span at least this slow is retained in the slow-navigation ring
	// (0 retains every root; negative disables the recorder). Only
	// effective with Trace on — the recorder feeds off root spans.
	SlowThreshold time.Duration
	// SlowRing is the flight-recorder capacity in retained roots
	// (rounded up to a power of two; <= 0 = telemetry.DefaultSlowRing).
	SlowRing int
	// Prefetch enables navigation-driven speculative prefetch: the
	// server learns each view's region-to-region transition pattern and
	// warms the predicted next region before the client asks (DESIGN.md
	// §15). Off by default; requires RegionCache. When off, not a single
	// instruction of the prefetch layer runs on the session hot path.
	Prefetch bool
	// PrefetchBudget bounds each speculative drain (zero fields take the
	// defaults below).
	PrefetchBudget core.PrefetchBudget
	// PrefetchConfidence is the minimum successor-model confidence that
	// triggers a drain (0 takes the default).
	PrefetchConfidence float64
	// SpecFactory, when non-nil, builds the engines speculative drains
	// run on instead of the main factory. Deployments that meter source
	// traffic per cause wire a factory with dedicated counters here, so
	// speculation never pollutes demand attribution.
	SpecFactory Factory

	factory Factory
}

// Option configures a Server (see New).
type Option func(*config)

// WithMaxSessions caps concurrently active sessions (0 = unlimited).
func WithMaxSessions(n int) Option { return func(c *config) { c.MaxSessions = n } }

// WithIdleTimeout evicts sessions idle for d (0 = never).
func WithIdleTimeout(d time.Duration) Option { return func(c *config) { c.IdleTimeout = d } }

// WithMaxLifetime evicts sessions d after accept, busy or not (0 = never).
func WithMaxLifetime(d time.Duration) Option { return func(c *config) { c.MaxLifetime = d } }

// WithLogger routes structured lifecycle events to l (nil = discard).
func WithLogger(l *slog.Logger) Option { return func(c *config) { c.Logger = l } }

// WithTrace toggles per-session navigation-span recording.
func WithTrace(on bool) Option { return func(c *config) { c.Trace = on } }

// WithSourceCounters exposes per-source counters on /metrics.
func WithSourceCounters(m map[string]*metrics.Counters) Option {
	return func(c *config) { c.SourceCounters = m }
}

// WithRegionCache installs the shared cross-session region cache.
func WithRegionCache(rc *regioncache.Cache) Option {
	return func(c *config) { c.RegionCache = rc }
}

// WithEnginePool toggles cross-session engine reuse (on by default).
func WithEnginePool(on bool) Option { return func(c *config) { c.EnginePool = on } }

// WithCluster makes the server a member of a sharded mediator fleet
// (see internal/cluster). The node must be built over the same region
// cache passed to WithRegionCache.
func WithCluster(n *cluster.Node) Option { return func(c *config) { c.Cluster = n } }

// WithNodeName tags recorded spans with this node's name in fleet
// traces (defaults to the cluster self address when clustered).
func WithNodeName(name string) Option { return func(c *config) { c.NodeName = name } }

// WithSlowNav configures the slow-navigation flight recorder: traced
// root spans at least threshold slow are retained in a ring of the
// last ring entries. threshold 0 retains every root; negative disables
// the recorder; ring <= 0 means telemetry.DefaultSlowRing.
func WithSlowNav(threshold time.Duration, ring int) Option {
	return func(c *config) { c.SlowThreshold, c.SlowRing = threshold, ring }
}

// WithPrefetch toggles navigation-driven speculative prefetch (off by
// default; requires WithRegionCache).
func WithPrefetch(on bool) Option { return func(c *config) { c.Prefetch = on } }

// WithPrefetchBudget bounds each speculative drain (zero fields keep
// the defaults: DefaultPrefetchNavs / DefaultPrefetchBytes).
func WithPrefetchBudget(b core.PrefetchBudget) Option {
	return func(c *config) { c.PrefetchBudget = b }
}

// WithPrefetchConfidence sets the minimum successor-model confidence
// that triggers a speculative drain (0 keeps DefaultPrefetchConfidence).
func WithPrefetchConfidence(conf float64) Option {
	return func(c *config) { c.PrefetchConfidence = conf }
}

// WithSpecFactory builds speculative-drain engines from f instead of
// the main factory, so deployments can meter speculative source traffic
// on its own counters (nil keeps the main factory).
func WithSpecFactory(f Factory) Option { return func(c *config) { c.SpecFactory = f } }

// Server is a mixd instance. Create with New, run with Serve, stop with
// Shutdown.
type Server struct {
	cfg config
	log *slog.Logger

	// nav accumulates navigation commands answered by *finished*
	// sessions; live sessions keep their own counters (folded in by
	// dropSession, summed live by Stats).
	nav  *metrics.Counters
	msgs atomic.Int64

	// cmdHist records wire-command service latency by op; opHist
	// records per-operator pull latency (fed by trace sinks, so only
	// populated when config.Trace is on); routeHist records open-routing
	// latency by decision mode (proxy/redirect/local) — the
	// mix_cluster_route_duration_seconds family.
	cmdHist   *telemetry.Registry
	opHist    *telemetry.Registry
	routeHist *telemetry.Registry

	// nodeName tags recorded spans in fleet traces; flight is the
	// slow-navigation ring (nil = disabled), fed by every recorder's
	// RootSink.
	nodeName string
	flight   *telemetry.FlightRecorder

	active, total, evicted, denied atomic.Int64

	// cache is the shared region cache (nil = caching off); pool holds
	// idle engines released by finished sessions for reuse. epoch counts
	// BumpRegistry calls: engines built under an older epoch are
	// discarded at release instead of re-pooled, so a registry change
	// can never hand stale sources to a new session.
	cache                   *regioncache.Cache
	cluster                 *cluster.Node
	epoch                   atomic.Uint64
	poolMu                  sync.Mutex
	pool                    []*pooledEngine
	poolCreated, poolReused atomic.Int64

	// prefetch is the speculative prefetcher (nil = off): the successor
	// model, the drain workers, and their dedicated engine pool.
	prefetch *prefetcher

	mu       sync.Mutex
	l        net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining bool
	wg       sync.WaitGroup
}

// New returns an unstarted Server whose sessions draw engines built by
// factory from a shared pool. Defaults: no session limit, no timeouts,
// tracing off, engine pooling on, no region cache; override with
// options.
func New(factory Factory, opts ...Option) (*Server, error) {
	if factory == nil {
		return nil, errors.New("server: mediator factory is required")
	}
	cfg := config{EnginePool: true, SlowThreshold: DefaultSlowThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.factory = factory
	return newServer(cfg)
}

// DefaultSlowThreshold is the slow-navigation bar New seeds before
// options run: traced roots at least this slow enter the flight ring.
const DefaultSlowThreshold = 100 * time.Millisecond

func newServer(cfg config) (*Server, error) {
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Cluster != nil && cfg.RegionCache == nil {
		return nil, errors.New("server: clustering requires a region cache (WithRegionCache)")
	}
	if cfg.NodeName == "" && cfg.Cluster != nil {
		cfg.NodeName = cfg.Cluster.Self()
	}
	s := &Server{
		cfg:       cfg,
		log:       log,
		cache:     cfg.RegionCache,
		cluster:   cfg.Cluster,
		nodeName:  cfg.NodeName,
		nav:       &metrics.Counters{},
		cmdHist:   telemetry.NewRegistry(),
		opHist:    telemetry.NewRegistry(),
		routeHist: telemetry.NewRegistry(),
		sessions:  map[uint64]*session{},
	}
	if cfg.Trace && cfg.SlowThreshold >= 0 {
		s.flight = telemetry.NewFlightRecorder(cfg.SlowRing, cfg.SlowThreshold)
	}
	if cfg.Prefetch {
		if cfg.RegionCache == nil {
			return nil, errors.New("server: prefetch requires a region cache (WithRegionCache)")
		}
		s.prefetch = newPrefetcher(s)
	}
	if cfg.Trace && s.cluster != nil {
		// Peer control links get their own recorders: cross-node work a
		// peer does on our behalf (L2 fetches, invalidation fans) shows
		// up in fleet traces — one recorder per link, because concurrent
		// peers sharing one would interleave span stacks.
		s.cluster.SetTracer(s.newRecorder)
	}
	return s, nil
}

// newRecorder builds a span recorder wired the way every recorder on
// this server is wired: bounded retention, node-tagged spans, operator
// latencies sunk into opHist, and completed roots offered to the
// slow-navigation flight ring.
func (s *Server) newRecorder() *trace.Recorder {
	rec := trace.New()
	rec.Limit = traceLimit
	rec.Node = s.nodeName
	opHist := s.opHist
	rec.Sink = func(label, op string, d time.Duration) {
		opHist.Histogram(label + "/" + op).Observe(d)
	}
	if s.flight != nil {
		flight, node := s.flight, s.nodeName
		rec.RootSink = func(sp *trace.Span) { flight.Offer(node, sp) }
	}
	return rec
}

// pooledEngine is one reusable engine: a mediator plus the trace
// recorder wired into it (non-nil iff the server traces). Engines are
// handed to at most one session at a time; lazy evaluation state is
// per-query, so sequential reuse shares nothing but immutable sources
// and the region cache.
type pooledEngine struct {
	med   *mediator.Mediator
	rec   *trace.Recorder
	epoch uint64 // server epoch the engine was built under
}

// acquireEngine pops an idle engine or builds a fresh one.
func (s *Server) acquireEngine() (*pooledEngine, error) {
	s.poolMu.Lock()
	if n := len(s.pool); n > 0 {
		pe := s.pool[n-1]
		s.pool = s.pool[:n-1]
		s.poolMu.Unlock()
		s.poolReused.Add(1)
		return pe, nil
	}
	s.poolMu.Unlock()
	// Sample the epoch before building: an engine whose build races a
	// BumpRegistry is conservatively treated as stale and dropped at
	// release (its cache entries detach on their own — see
	// regioncache.EntryAt).
	epoch := s.epoch.Load()
	m, err := s.cfg.factory(s.cache)
	if err != nil {
		return nil, err
	}
	pe := &pooledEngine{med: m, epoch: epoch}
	if s.cfg.Trace {
		// One recorder per engine: spans accumulate until the owning
		// session's next trace command, and every finished span feeds
		// the server's per-operator histograms and the slow-navigation
		// flight ring.
		pe.rec = s.newRecorder()
		m.SetTracer(pe.rec)
	}
	s.poolCreated.Add(1)
	return pe, nil
}

// releaseEngine returns an engine to the pool (or drops it when pooling
// is off). Spans the departing session never fetched are discarded so
// the next session starts with a clean trace.
func (s *Server) releaseEngine(pe *pooledEngine) {
	if pe == nil {
		return
	}
	pe.rec.Take()
	if !s.cfg.EnginePool || pe.epoch != s.epoch.Load() {
		return
	}
	s.poolMu.Lock()
	s.pool = append(s.pool, pe)
	s.poolMu.Unlock()
}

// BumpRegistry declares that the data behind the factory's sources
// changed: it invalidates the shared region cache (sessions opened
// afterwards re-derive and re-publish under a fresh generation) and
// flushes the engine pool (so their engines are rebuilt by the factory
// against the new data). Live sessions keep their current engines and
// their now-detached cache entries — they stay self-consistent, never
// mixing old and new data, until they reopen.
// Under -cluster the new generation is broadcast to every peer, so
// region keys keep lining up fleet-wide: peers that are down converge
// later via the health loop's generation-skew re-broadcast.
func (s *Server) BumpRegistry() {
	s.epoch.Add(1)
	var gen uint64
	if s.cache != nil {
		gen = s.cache.Invalidate()
	}
	s.poolMu.Lock()
	s.pool = nil
	s.poolMu.Unlock()
	if s.prefetch != nil {
		// Speculation about the old world stops instantly: running drains
		// are cancelled, the spec engine pool is flushed, and successor
		// tables keyed to dead generations are dropped.
		s.prefetch.epochMoved()
	}
	if s.cluster != nil && s.cache != nil {
		s.cluster.BroadcastInvalidate(gen)
	}
}

// RegionCache returns the shared region cache (nil when caching is off).
func (s *Server) RegionCache() *regioncache.Cache { return s.cache }

// Serve accepts VXDP sessions on l until Shutdown is called or the
// listener fails. It returns nil after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.l = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions) {
			s.denied.Add(1)
			s.log.Warn("session denied", "remote", conn.RemoteAddr().String(), "limit", s.cfg.MaxSessions)
			_ = vxdp.WriteFrame(conn, vxdp.Response{NavResult: vxdp.NavResult{
				Err: fmt.Sprintf("server at capacity (%d sessions)", s.cfg.MaxSessions),
			}})
			conn.Close()
			continue
		}
		sess := s.newSession(conn)
		if sess == nil { // lost the race with Shutdown
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
		}()
	}
}

func (s *Server) newSession(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.nextID++
	sess := &session{srv: s, id: s.nextID, conn: conn, born: time.Now()}
	s.sessions[sess.id] = sess
	s.active.Add(1)
	s.total.Add(1)
	s.log.Info("session created", "session", sess.id, "remote", conn.RemoteAddr().String())
	return sess
}

func (s *Server) dropSession(sess *session) {
	// Fold the session's counters into the finished-session base FIRST
	// — before the drop is logged and before any teardown (engine
	// release, proxy close) that could fail or block — so no exit path
	// can report the session gone while its navigations are still
	// unaccounted. The snapshot is taken once and reused for the log
	// line, so the log always matches what was folded. Folding and
	// unmapping happen in one critical section, so Stats never
	// double-counts the session or misses it.
	navs := sess.nav.Snapshot()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.nav.Add(navs)
	s.mu.Unlock()
	s.active.Add(-1)
	s.log.Info("session closed", "session", sess.id,
		"msgs", sess.msgs.Load(), "navs", navs.Navigations(),
		"uptime", time.Since(sess.born).Round(time.Millisecond).String())
	sess.closeProxy()
	s.releaseEngine(sess.eng)
	sess.eng = nil
}

// drainingNow reports whether Shutdown has been initiated.
func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops the server gracefully: it stops accepting, wakes every
// session blocked waiting for a request (in-flight requests still get
// their response), and waits for all sessions to drain. If ctx expires
// first the remaining connections are force-closed and ctx.Err() is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	l := s.l
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if s.prefetch != nil {
		s.prefetch.close()
	}

	s.log.Info("draining", "sessions", len(open))

	if l != nil {
		l.Close()
	}
	// Wake blocked readers; sessions notice draining and exit cleanly
	// after finishing whatever request they are serving.
	for _, sess := range open {
		_ = sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the stragglers. Sessions stuck inside the engine
		// (not blocked on the connection) are abandoned, not awaited:
		// the caller is exiting.
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Stats returns the introspection snapshot also served by the wire
// stats command: finished-session totals plus every live session's
// counters.
func (s *Server) Stats() vxdp.Stats {
	s.mu.Lock()
	n := s.nav.Snapshot()
	for _, sess := range s.sessions {
		n = n.Add(sess.nav.Snapshot())
	}
	s.mu.Unlock()
	st := vxdp.Stats{
		SessionsActive:  s.active.Load(),
		SessionsTotal:   s.total.Load(),
		SessionsEvicted: s.evicted.Load(),
		SessionsDenied:  s.denied.Load(),
		Msgs:            s.msgs.Load(),
		Navs:            n.Navigations(),
		Down:            n.Down,
		Right:           n.Right,
		Fetch:           n.Fetch,
		Select:          n.Select,
		Root:            n.Root,
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &vxdp.CacheStats{
			Generation:              cs.Generation,
			Entries:                 int64(cs.Entries),
			Bytes:                   cs.Bytes,
			Hits:                    cs.Hits,
			Misses:                  cs.Misses,
			BytesSaved:              cs.BytesSaved,
			Evictions:               cs.Evictions,
			SemanticHits:            cs.SemanticHits,
			SemanticMisses:          cs.SemanticMisses,
			SemanticCandidates:      cs.SemanticCandidates,
			SemanticIncompleteSkips: cs.SemanticIncompleteSkips,
			InternedBytes:           cs.InternedBytes,
			SpecEntries:             int64(cs.SpecEntries),
			SpecBytes:               cs.SpecBytes,
		}
	}
	if s.prefetch != nil {
		st.Prefetch = s.prefetch.stats()
	}
	if s.cfg.EnginePool {
		s.poolMu.Lock()
		idle := int64(len(s.pool))
		s.poolMu.Unlock()
		st.Pool = &vxdp.PoolStats{
			Idle:    idle,
			Created: s.poolCreated.Load(),
			Reused:  s.poolReused.Load(),
		}
	}
	if s.cluster != nil {
		st.Cluster = s.cluster.Stats()
		if st.Cluster != nil {
			st.Cluster.Routes = s.routeSnapshot()
		}
	}
	if ps := core.ParallelSnapshot(); ps != (core.ParallelStats{}) {
		st.Parallel = &vxdp.ParallelStats{
			Joins:    ps.Joins,
			Inline:   ps.Inline,
			Errors:   ps.Errors,
			Canceled: ps.Canceled,
		}
	}
	if bs := core.BatchSnapshot(); bs != (core.BatchStats{}) {
		st.Batch = &vxdp.BatchStats{
			Batches:   bs.Batches,
			Bindings:  bs.Bindings,
			Predrains: bs.Predrains,
		}
	}
	return st
}

// routeSnapshot folds the open-routing latency histograms into their
// wire form, one row per decision mode, sorted by mode label.
func (s *Server) routeSnapshot() []vxdp.RouteLatency {
	labels := s.routeHist.Labels()
	out := make([]vxdp.RouteLatency, 0, len(labels))
	for _, mode := range labels {
		snap := s.routeHist.Histogram(mode).Snapshot()
		if snap.Count == 0 {
			continue
		}
		out = append(out, vxdp.RouteLatency{
			Mode:  mode,
			Count: snap.Count,
			P50Us: snap.P50().Microseconds(),
			P99Us: snap.P99().Microseconds(),
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// handleSlow serves the slow op: the flight ring's retained slow
// navigations, oldest first. Served node-locally even on proxied
// sessions — the ring is a per-node diagnostic, and an operator asking
// this node wants this node's view.
func (s *Server) handleSlow() vxdp.Response {
	snaps := s.flight.Snapshot()
	resp := vxdp.Response{NavResult: vxdp.NavResult{OK: true}}
	if len(snaps) == 0 {
		return resp
	}
	resp.Slow = make([]vxdp.SlowNav, len(snaps))
	for i, sn := range snaps {
		resp.Slow[i] = vxdp.SlowNav{
			Seq:    sn.Seq,
			UnixMs: sn.When.UnixMilli(),
			Node:   sn.Node,
			DurNs:  int64(sn.Root.Dur),
			Root:   sn.Root,
		}
	}
	return resp
}
