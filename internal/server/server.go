// Package server implements mixd, the sessionful MIX mediator daemon:
// it serves the DOM-VXD command set over VXDP (internal/vxdp) so remote
// clients can navigate virtual mediated views across the network — the
// client↔mediator boundary of Fig. 1 that the in-process engine never
// crosses.
//
// Each accepted connection is one session, handled on its own
// goroutine. Because the lazy-mediator engine's pull-driven streams are
// single-consumer, every session gets a *fresh* mediator instance from
// the configured factory: sessions share immutable sources (trees,
// serialized LXP clients) but never lazy evaluation state, so N clients
// exploring the same view proceed independently.
//
// The session lifecycle is
//
//	accept → (open query → navigate…)* → close | idle timeout |
//	         lifetime timeout | server shutdown
//
// with per-session idle and absolute-lifetime deadlines (evicted
// sessions are counted), a connection limit that refuses new sessions
// beyond the cap with an error frame, and graceful shutdown: stop
// accepting, let in-flight requests finish, then close drained
// connections; stragglers are cut when the shutdown context expires.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/telemetry"
	"mix/internal/vxdp"
)

// Config configures a Server. The zero value serves with no session
// limit and no timeouts.
type Config struct {
	// NewMediator builds the per-session mediator: register sources and
	// define views here. Required. It is called concurrently from
	// session goroutines, so shared underlying state (trees, LXP
	// clients) must be immutable or internally synchronized.
	NewMediator func() (*mediator.Mediator, error)
	// MaxSessions caps concurrently active sessions; connections beyond
	// the cap are refused with an error frame (0 = unlimited).
	MaxSessions int
	// IdleTimeout evicts a session that issues no request for this long
	// (0 = never).
	IdleTimeout time.Duration
	// MaxLifetime evicts a session this long after it was accepted,
	// busy or not (0 = never).
	MaxLifetime time.Duration
	// Logger receives structured session lifecycle and error events
	// (nil = discard).
	Logger *slog.Logger
	// Trace enables per-session span recording: sessions answer the
	// wire trace command with the fan-out behind their navigations, and
	// per-operator latencies feed the operator histograms. Off by
	// default; when off the engine hot path carries no instrumentation.
	Trace bool
	// SourceCounters names the per-source counters (e.g. from
	// lxp.Counting wrappers) to expose on the /metrics endpoint. The
	// server only reads them.
	SourceCounters map[string]*metrics.Counters
}

// Server is a mixd instance. Create with New, run with Serve, stop with
// Shutdown.
type Server struct {
	cfg Config
	log *slog.Logger

	// nav accumulates navigation commands answered by *finished*
	// sessions; live sessions keep their own counters (folded in by
	// dropSession, summed live by Stats).
	nav  *metrics.Counters
	msgs atomic.Int64

	// cmdHist records wire-command service latency by op; opHist
	// records per-operator pull latency (fed by trace sinks, so only
	// populated when Config.Trace is on).
	cmdHist *telemetry.Registry
	opHist  *telemetry.Registry

	active, total, evicted, denied atomic.Int64

	mu       sync.Mutex
	l        net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining bool
	wg       sync.WaitGroup
}

// New returns an unstarted Server.
func New(cfg Config) (*Server, error) {
	if cfg.NewMediator == nil {
		return nil, errors.New("server: Config.NewMediator is required")
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{
		cfg:      cfg,
		log:      log,
		nav:      &metrics.Counters{},
		cmdHist:  telemetry.NewRegistry(),
		opHist:   telemetry.NewRegistry(),
		sessions: map[uint64]*session{},
	}, nil
}

// Serve accepts VXDP sessions on l until Shutdown is called or the
// listener fails. It returns nil after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.l = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions) {
			s.denied.Add(1)
			s.log.Warn("session denied", "remote", conn.RemoteAddr().String(), "limit", s.cfg.MaxSessions)
			_ = vxdp.WriteFrame(conn, vxdp.Response{NavResult: vxdp.NavResult{
				Err: fmt.Sprintf("server at capacity (%d sessions)", s.cfg.MaxSessions),
			}})
			conn.Close()
			continue
		}
		sess := s.newSession(conn)
		if sess == nil { // lost the race with Shutdown
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
		}()
	}
}

func (s *Server) newSession(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.nextID++
	sess := &session{srv: s, id: s.nextID, conn: conn, born: time.Now()}
	s.sessions[sess.id] = sess
	s.active.Add(1)
	s.total.Add(1)
	s.log.Info("session created", "session", sess.id, "remote", conn.RemoteAddr().String())
	return sess
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	// Fold the session's counters into the finished-session base while
	// still holding the lock, so Stats never double-counts or misses it.
	s.nav.Add(sess.nav.Snapshot())
	s.mu.Unlock()
	s.active.Add(-1)
	s.log.Info("session closed", "session", sess.id,
		"msgs", sess.msgs.Load(), "navs", sess.nav.Navigations(),
		"uptime", time.Since(sess.born).Round(time.Millisecond).String())
}

// drainingNow reports whether Shutdown has been initiated.
func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops the server gracefully: it stops accepting, wakes every
// session blocked waiting for a request (in-flight requests still get
// their response), and waits for all sessions to drain. If ctx expires
// first the remaining connections are force-closed and ctx.Err() is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	l := s.l
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()

	s.log.Info("draining", "sessions", len(open))

	if l != nil {
		l.Close()
	}
	// Wake blocked readers; sessions notice draining and exit cleanly
	// after finishing whatever request they are serving.
	for _, sess := range open {
		_ = sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the stragglers. Sessions stuck inside the engine
		// (not blocked on the connection) are abandoned, not awaited:
		// the caller is exiting.
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Stats returns the introspection snapshot also served by the wire
// stats command: finished-session totals plus every live session's
// counters.
func (s *Server) Stats() vxdp.Stats {
	s.mu.Lock()
	n := s.nav.Snapshot()
	for _, sess := range s.sessions {
		n = n.Add(sess.nav.Snapshot())
	}
	s.mu.Unlock()
	return vxdp.Stats{
		SessionsActive:  s.active.Load(),
		SessionsTotal:   s.total.Load(),
		SessionsEvicted: s.evicted.Load(),
		SessionsDenied:  s.denied.Load(),
		Msgs:            s.msgs.Load(),
		Navs:            n.Navigations(),
		Down:            n.Down,
		Right:           n.Right,
		Fetch:           n.Fetch,
		Select:          n.Select,
		Root:            n.Root,
	}
}
