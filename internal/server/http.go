package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"mix/internal/lxp"
	"mix/internal/pathexpr"
	"mix/internal/telemetry"
	"mix/internal/trace"
	"mix/internal/vxdp"
	"mix/internal/xmltree"
)

// Handler returns the HTTP sidecar served by mixd -http: Prometheus
// metrics, a health check, and the pprof debug surface.
//
//	/metrics         Prometheus text format: session counters,
//	                 navigation counters by kind, per-source LXP
//	                 counters, and latency histograms (per wire command
//	                 always; per operator when tracing is on)
//	/healthz         200 "ok", or 503 "draining" once Shutdown began
//	/debug/slow      the slow-navigation flight ring: JSON by default,
//	                 rendered span trees with ?format=text
//	/debug/pprof/*   the standard runtime profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", s.serveHealth)
	mux.HandleFunc("/debug/slow", s.serveSlow)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveHealth(w http.ResponseWriter, _ *http.Request) {
	if s.drainingNow() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// serveSlow dumps the slow-navigation flight ring. JSON (the wire
// SlowNav shape) by default; ?format=text renders each retained root as
// an indented span tree headed by when it happened and how slow it was.
func (s *Server) serveSlow(w http.ResponseWriter, r *http.Request) {
	resp := s.handleSlow()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.flight == nil {
			fmt.Fprintln(w, "slow-navigation recorder disabled (start mixd with -trace; -slow-ms >= 0)")
			return
		}
		fmt.Fprintf(w, "slow navigations: %d recorded, %d retained (threshold %s)\n",
			s.flight.Total(), len(resp.Slow), s.flight.Threshold())
		for _, sn := range resp.Slow {
			fmt.Fprintf(w, "\n#%d %s node=%s dur=%s\n", sn.Seq,
				time.UnixMilli(sn.UnixMs).UTC().Format(time.RFC3339Nano), sn.Node, time.Duration(sn.DurNs))
			fmt.Fprint(w, trace.Format([]*trace.Span{sn.Root}))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Total int64          `json:"total"`
		Slow  []vxdp.SlowNav `json:"slow"`
	}{Total: s.flight.Total(), Slow: resp.Slow})
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("mix_sessions_active", "VXDP sessions currently open", st.SessionsActive)
	counter("mix_sessions_total", "VXDP sessions accepted since start", st.SessionsTotal)
	counter("mix_sessions_evicted_total", "sessions evicted by idle or lifetime timeout", st.SessionsEvicted)
	counter("mix_sessions_denied_total", "connections refused over the session limit", st.SessionsDenied)
	counter("mix_msgs_total", "VXDP request frames served", st.Msgs)

	fmt.Fprintf(w, "# HELP mix_navigations_total navigation commands answered at the client boundary, by kind\n")
	fmt.Fprintf(w, "# TYPE mix_navigations_total counter\n")
	for _, kv := range []struct {
		kind string
		v    int64
	}{{"down", st.Down}, {"right", st.Right}, {"fetch", st.Fetch}, {"select", st.Select}, {"root", st.Root}} {
		fmt.Fprintf(w, "mix_navigations_total{kind=%q} %d\n", kv.kind, kv.v)
	}

	if len(s.cfg.SourceCounters) > 0 {
		names := make([]string, 0, len(s.cfg.SourceCounters))
		for name := range s.cfg.SourceCounters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP mix_source_navigations_total navigation commands answered at a source boundary\n")
		fmt.Fprintf(w, "# TYPE mix_source_navigations_total counter\n")
		snaps := make(map[string]struct {
			navs, msgs, bytes int64
		}, len(names))
		for _, name := range names {
			c := s.cfg.SourceCounters[name].Snapshot()
			snaps[name] = struct{ navs, msgs, bytes int64 }{c.Navigations(), c.Msgs, c.Bytes}
			fmt.Fprintf(w, "mix_source_navigations_total{source=%q} %d\n", name, snaps[name].navs)
		}
		fmt.Fprintf(w, "# HELP mix_source_lxp_msgs_total LXP protocol messages exchanged with a source\n")
		fmt.Fprintf(w, "# TYPE mix_source_lxp_msgs_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "mix_source_lxp_msgs_total{source=%q} %d\n", name, snaps[name].msgs)
		}
		fmt.Fprintf(w, "# HELP mix_source_lxp_bytes_total LXP payload bytes exchanged with a source\n")
		fmt.Fprintf(w, "# TYPE mix_source_lxp_bytes_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "mix_source_lxp_bytes_total{source=%q} %d\n", name, snaps[name].bytes)
		}
	}

	if st.Cache != nil {
		gauge("mix_region_cache_generation", "region cache invalidation epoch", int64(st.Cache.Generation))
		gauge("mix_region_cache_entries", "live region cache entries", st.Cache.Entries)
		gauge("mix_region_cache_bytes", "approximate bytes retained by the region cache", st.Cache.Bytes)
		counter("mix_region_cache_hits_total", "navigations answered from the shared region cache", st.Cache.Hits)
		counter("mix_region_cache_misses_total", "navigations that drove a lazy engine", st.Cache.Misses)
		counter("mix_region_cache_bytes_saved_total", "label bytes served from the region cache", st.Cache.BytesSaved)
		counter("mix_region_cache_evictions_total", "region cache entries dropped by budget or invalidation", st.Cache.Evictions)
		counter("mix_region_cache_semantic_hits_total", "queries answered from a subsuming cached plan's region", st.Cache.SemanticHits)
		counter("mix_region_cache_semantic_misses_total", "queries that found no usable superset plan", st.Cache.SemanticMisses)
		counter("mix_region_cache_semantic_candidates_total", "candidate superset plans examined by the containment checker", st.Cache.SemanticCandidates)
		counter("mix_region_cache_semantic_incomplete_skips_total", "containment hits skipped because the superset region was not fully explored", st.Cache.SemanticIncompleteSkips)
		gauge("mix_region_cache_interned_bytes", "key-string vocabulary retained by the cache interner", st.Cache.InternedBytes)
		gauge("mix_region_cache_spec_entries", "speculative-class entries no demand navigation has touched", st.Cache.SpecEntries)
		gauge("mix_region_cache_spec_bytes", "bytes retained by speculative-class entries", st.Cache.SpecBytes)
	}
	if st.Prefetch != nil {
		counter("mix_prefetch_issued_total", "speculative region drains spawned", st.Prefetch.Issued)
		counter("mix_prefetch_hits_total", "predictions confirmed by the client engaging the predicted region", st.Prefetch.Hits)
		counter("mix_prefetch_wasted_total", "predictions contradicted by the client engaging elsewhere", st.Prefetch.Wasted)
		counter("mix_prefetch_cancelled_total", "speculative drains cancelled mid-flight", st.Prefetch.Cancelled)
		counter("mix_prefetch_navs_total", "navigations issued at the speculative answer boundary", st.Prefetch.Navs)
		counter("mix_prefetch_hints_sent_total", "prefetch hints shipped to view owners", st.Prefetch.HintsSent)
		counter("mix_prefetch_hints_recv_total", "prefetch hints received from peers", st.Prefetch.HintsRecv)
		gauge("mix_prefetch_inflight", "speculative drains currently running", st.Prefetch.Inflight)
		if resolved := st.Prefetch.Hits + st.Prefetch.Wasted; resolved > 0 {
			gauge("mix_prefetch_accuracy_percent", "resolved predictions the client confirmed, in percent", st.Prefetch.Hits*100/resolved)
		}
	}
	if st.Cluster != nil {
		gauge("mix_cluster_members", "fleet members on the consistent-hash ring", st.Cluster.Members)
		gauge("mix_cluster_peers_up", "peers currently believed alive", st.Cluster.PeersUp)
		gauge("mix_cluster_peers_down", "peers currently marked down", st.Cluster.PeersDown)
		counter("mix_cluster_owned_local_total", "opens served locally because this node owns the key", st.Cluster.OwnedLocal)
		counter("mix_cluster_proxied_total", "commands forwarded to an owner node", st.Cluster.Proxied)
		counter("mix_cluster_redirected_total", "opens answered with a redirect to the owner", st.Cluster.Redirected)
		counter("mix_cluster_degraded_total", "sessions served locally because their owner was down", st.Cluster.Degraded)
		counter("mix_cluster_l2_hits_total", "region cache entry fills answered by a peer", st.Cluster.L2Hits)
		counter("mix_cluster_l2_misses_total", "peer region fetches that found nothing", st.Cluster.L2Misses)
		counter("mix_cluster_l2_serves_total", "peer region_get requests answered with a region", st.Cluster.L2Serves)
		counter("mix_cluster_l2_fills_total", "peer region_put regions merged into the local cache", st.Cluster.L2Fills)
		counter("mix_cluster_invalidations_sent_total", "invalidation broadcasts fanned out to peers", st.Cluster.InvalSent)
		counter("mix_cluster_invalidations_recv_total", "invalidation broadcasts applied from peers", st.Cluster.InvalRecv)
		counter("mix_cluster_semantic_local_total", "routed opens served locally from a subsumed complete region", st.Cluster.SemanticLocal)
	}
	if s.cfg.Trace {
		counter("mix_slow_navigations_total", "traced root spans at or over the slow-navigation threshold", s.flight.Total())
	}
	if st.Pool != nil {
		gauge("mix_engine_pool_idle", "engines parked for reuse", st.Pool.Idle)
		counter("mix_engine_pool_created_total", "engines built by the mediator factory", st.Pool.Created)
		counter("mix_engine_pool_reused_total", "sessions served by a recycled engine", st.Pool.Reused)
	}
	if st.Parallel != nil {
		counter("mix_parallel_joins_total", "joins that derived their two inputs concurrently", st.Parallel.Joins)
		counter("mix_parallel_inline_total", "input drains run inline because the worker pool was saturated", st.Parallel.Inline)
		counter("mix_parallel_errors_total", "concurrent input drains that failed", st.Parallel.Errors)
		counter("mix_parallel_canceled_total", "concurrent input drains cancelled by the sibling's error", st.Parallel.Canceled)
	}
	if st.Batch != nil {
		counter("mix_batch_batches_total", "batches moved through the vectorized operator pipeline", st.Batch.Batches)
		counter("mix_batch_bindings_total", "bindings carried by vectorized batches", st.Batch.Bindings)
		counter("mix_batch_predrains_total", "full materializations pre-drained batch-at-a-time", st.Batch.Predrains)
	}

	fpComputed, fpHits := xmltree.FingerprintStats()
	counter("mix_fp_computed_total", "structural fingerprints computed", fpComputed)
	counter("mix_fp_cache_hits_total", "fingerprint requests served from the per-tree memo", fpHits)

	dfaHits, dfaMisses, dfaStates := pathexpr.DFAStats()
	counter("mix_dfa_cache_hits_total", "path-DFA transitions served from cache", dfaHits)
	counter("mix_dfa_cache_misses_total", "path-DFA transitions built from NFA subset construction", dfaMisses)
	gauge("mix_dfa_states", "materialized lazy-DFA states across live matchers", dfaStates)

	vg, vn := vxdp.BufferPoolStats()
	counter("mix_vxdp_buffer_gets_total", "VXDP frame-buffer pool fetches", vg)
	counter("mix_vxdp_buffer_allocs_total", "VXDP frame-buffer pool fetches that allocated", vn)
	lg, ln := lxp.BufferPoolStats()
	counter("mix_lxp_buffer_gets_total", "LXP frame-buffer pool fetches", lg)
	counter("mix_lxp_buffer_allocs_total", "LXP frame-buffer pool fetches that allocated", ln)

	mem := telemetry.ReadMemStats()
	counter("mix_heap_alloc_bytes_total", "cumulative heap bytes allocated", int64(mem.AllocBytes))
	counter("mix_heap_alloc_objects_total", "cumulative heap objects allocated", int64(mem.AllocObjects))
	gauge("mix_heap_live_bytes", "bytes of live heap objects", int64(mem.HeapBytes))
	counter("mix_gc_cycles_total", "completed GC cycles", int64(mem.GCCycles))
	counter("mix_gc_pause_ns_total", "estimated total stop-the-world GC pause", int64(mem.GCPauseNs))

	telemetry.WritePrometheus(w, "mix_command_duration_seconds",
		"wire command service latency by op", "op", s.cmdHist)
	telemetry.WritePrometheus(w, "mix_operator_duration_seconds",
		"per-operator pull latency (populated when tracing is on)", "op", s.opHist)
	telemetry.WritePrometheus(w, "mix_cluster_route_duration_seconds",
		"routed open latency by ring decision", "mode", s.routeHist)
}
