package server_test

// Cross-session cache and engine-pool behavior over the wire: a second
// session exploring the view a first session already explored is served
// from the shared region cache by a recycled engine, and the answer
// stays byte-identical; BumpRegistry invalidates both.

import (
	"testing"
	"time"

	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/xmltree"
)

// openAndMaterialize dials, opens the join query, and materializes the
// whole answer, closing the connection before returning.
func openAndMaterialize(t *testing.T, addr string) string {
	t.Helper()
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	tree, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return xmltree.MarshalXML(tree)
}

func TestCrossSessionCacheAndPool(t *testing.T) {
	srv, addr := start(t, server.WithRegionCache(regioncache.New(0)))

	cold := openAndMaterialize(t, addr)
	waitDrained(t, srv)
	st := srv.Stats()
	if st.Cache == nil {
		t.Fatal("stats missing cache block on a caching server")
	}
	if st.Cache.Misses == 0 {
		t.Fatalf("cold session recorded no cache misses: %+v", st.Cache)
	}
	coldHits := st.Cache.Hits

	warm := openAndMaterialize(t, addr)
	if warm != cold {
		t.Fatalf("warm answer differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	waitDrained(t, srv)
	st = srv.Stats()
	if st.Cache.Hits <= coldHits {
		t.Fatalf("warm session recorded no cache hits: %+v", st.Cache)
	}
	if st.Pool == nil {
		t.Fatal("stats missing pool block with pooling on")
	}
	if st.Pool.Created != 1 || st.Pool.Reused == 0 {
		t.Fatalf("pool: created=%d reused=%d, want one engine reused", st.Pool.Created, st.Pool.Reused)
	}

	// A registry bump invalidates the cache and flushes the pool: the
	// next session re-derives under a fresh generation on a new engine.
	gen := st.Cache.Generation
	srv.BumpRegistry()
	bumped := openAndMaterialize(t, addr)
	if bumped != cold {
		t.Fatalf("post-bump answer differs:\ncold: %s\ngot:  %s", cold, bumped)
	}
	waitDrained(t, srv)
	st = srv.Stats()
	if st.Cache.Generation <= gen {
		t.Fatalf("generation %d not bumped past %d", st.Cache.Generation, gen)
	}
	if st.Pool.Created != 2 {
		t.Fatalf("pool not flushed by BumpRegistry: created=%d, want 2", st.Pool.Created)
	}
}

// TestCacheStatsOverWire: the cache and pool blocks ride the stats
// response, so remote clients can see cross-session effectiveness.
func TestCacheStatsOverWire(t *testing.T) {
	_, addr := start(t, server.WithRegionCache(regioncache.New(0)))
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil || st.Cache.Entries == 0 {
		t.Fatalf("wire stats missing cache block: %+v", st.Cache)
	}
	if st.Pool == nil || st.Pool.Created == 0 {
		t.Fatalf("wire stats missing pool block: %+v", st.Pool)
	}
}

// TestEnginePoolOff: WithEnginePool(false) builds one engine per
// session and parks none.
func TestEnginePoolOff(t *testing.T) {
	srv, addr := start(t, server.WithEnginePool(false))
	openAndMaterialize(t, addr)
	waitDrained(t, srv)
	openAndMaterialize(t, addr)
	waitDrained(t, srv)
	st := srv.Stats()
	if st.Pool != nil {
		t.Fatalf("pool stats present with pooling off: %+v", st.Pool)
	}
}

// waitDrained blocks until the server has no active sessions (close
// frames race with dropSession on the server side).
func waitDrained(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Stats().SessionsActive > 0 {
		t.Fatal("sessions did not drain")
	}
}
