package server_test

// Semantic region cache end-to-end (DESIGN.md §14, experiment E18): a
// σ-restricted query opened warm against a fully explored superset
// region must be answered with ZERO source navigations and a
// byte-identical tree — on one node, and across a proxy-mode fleet
// where the subsumed open short-circuits routing and stays local. A
// registry bump must flush the evidence (invalidation, never
// staleness), and the -semantic-cache=false ablation must fall back to
// exact matches only.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const semSuperQ = `CONSTRUCT <homes> $H {$H} </homes> {} WHERE homesSrc homes.home $H`

const semSubQ = `CONSTRUCT <homes> $H {$H} </homes> {}
WHERE homesSrc homes.home $H AND $H price._ $P AND $P < "500000"`

// semOracle evaluates query over homes with a fresh uncached mediator.
func semOracle(t *testing.T, homes *xmltree.Tree, query string) string {
	t.Helper()
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	res, err := m.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.MarshalXML(tree)
}

// semServe boots a plain single-node server whose homesSrc is the given
// counting document, shared across every pooled engine.
func semServe(t *testing.T, doc nav.Document, semantic bool) (*server.Server, string) {
	t.Helper()
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		opts := mediator.DefaultOptions()
		opts.Engine.SemanticCache = semantic
		m := mediator.New(opts)
		m.SetRegionCache(rc)
		m.RegisterSource("homesSrc", doc)
		return m, nil
	}
	srv, err := server.New(factory, server.WithRegionCache(regioncache.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		l.Close()
		<-done
	})
	return srv, l.Addr().String()
}

func semOpen(t *testing.T, addr, query string) string {
	t.Helper()
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(query); err != nil {
		t.Fatal(err)
	}
	tree, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.MarshalXML(tree)
}

func TestSemanticServedWithoutSourceWork(t *testing.T) {
	homes, _ := workload.HomesSchools(10, 1, 3, 5)
	wantSuper := semOracle(t, homes, semSuperQ)
	wantSub := semOracle(t, homes, semSubQ)
	if wantSub == wantSuper {
		t.Fatal("test needs a price filter that actually drops homes")
	}

	counting := nav.NewCountingDoc(nav.NewTreeDoc(homes))
	srv, addr := semServe(t, counting, true)

	// Cold superset drain: the whole region is explored from source.
	if got := semOpen(t, addr, semSuperQ); got != wantSuper {
		t.Fatalf("superset answer:\n got %s\nwant %s", got, wantSuper)
	}
	afterSuper := counting.Counters.Navigations()
	if afterSuper == 0 {
		t.Fatal("cold superset drain touched no sources; the test measures nothing")
	}

	// Warm subsumed open: byte-identical, zero NEW source navigations.
	if got := semOpen(t, addr, semSubQ); got != wantSub {
		t.Fatalf("subsumed answer:\n got %s\nwant %s", got, wantSub)
	}
	if navs := counting.Counters.Navigations() - afterSuper; navs != 0 {
		t.Fatalf("subsumed query drove %d source navigations, want 0", navs)
	}
	st := srv.Stats()
	if st.Cache == nil || st.Cache.SemanticHits != 1 {
		t.Fatalf("Cache.SemanticHits = %+v, want exactly 1", st.Cache)
	}

	// A registry bump invalidates the evidence: the same subsumed query
	// must re-drive the sources (staleness is never an option).
	srv.BumpRegistry()
	before := counting.Counters.Navigations()
	if got := semOpen(t, addr, semSubQ); got != wantSub {
		t.Fatalf("post-bump answer:\n got %s\nwant %s", got, wantSub)
	}
	if navs := counting.Counters.Navigations() - before; navs == 0 {
		t.Fatal("post-bump subsumed query was served from invalidated evidence")
	}
}

func TestSemanticAblationFallsBackToSource(t *testing.T) {
	homes, _ := workload.HomesSchools(10, 1, 3, 5)
	wantSub := semOracle(t, homes, semSubQ)
	counting := nav.NewCountingDoc(nav.NewTreeDoc(homes))
	srv, addr := semServe(t, counting, false)

	semOpen(t, addr, semSuperQ)
	before := counting.Counters.Navigations()
	if got := semOpen(t, addr, semSubQ); got != wantSub {
		t.Fatalf("ablation answer:\n got %s\nwant %s", got, wantSub)
	}
	if navs := counting.Counters.Navigations() - before; navs == 0 {
		t.Fatal("-semantic-cache=false still answered from the superset")
	}
	if st := srv.Stats(); st.Cache == nil || st.Cache.SemanticHits != 0 {
		t.Fatalf("ablation recorded semantic hits: %+v", st.Cache)
	}
}

// semNonOwner returns a fleet member that does NOT own query's routing
// key, so an open through it enters the routed path (where the semantic
// short-circuit lives).
func semNonOwner(t *testing.T, fleet []*fleetMember, homes *xmltree.Tree, query string) int {
	t.Helper()
	probe := mediator.New(mediator.DefaultOptions())
	probe.RegisterTree("homesSrc", homes)
	res, err := probe.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	name, fp := res.CacheKey()
	ownerAddr := fleet[0].node.Owner(name, fp)
	for i, m := range fleet {
		if m.addr != ownerAddr {
			return i
		}
	}
	t.Fatal("every node owns the key?")
	return -1
}

func TestSemanticFleetServedLocally(t *testing.T) {
	homes, _ := workload.HomesSchools(10, 1, 3, 5)
	wantSuper := semOracle(t, homes, semSuperQ)
	wantSub := semOracle(t, homes, semSubQ)
	if wantSub == wantSuper {
		t.Fatal("test needs a price filter that actually drops homes")
	}
	// ONE counting source shared by every node: its counter is the
	// fleet-wide source-navigation total.
	counting := nav.NewCountingDoc(nav.NewTreeDoc(homes))
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterSource("homesSrc", counting)
		return m, nil
	}
	fleet := startFleetWith(t, 3, factory)
	entry := semNonOwner(t, fleet, homes, semSubQ)

	// Phase 1: drain the superset through the entry node. Routing may
	// proxy it to the super key's owner — its region fills THERE.
	if got := semOpen(t, fleet[entry].addr, semSuperQ); got != wantSuper {
		t.Fatalf("fleet superset answer:\n got %s\nwant %s", got, wantSuper)
	}
	afterSuper := counting.Counters.Navigations()
	if afterSuper == 0 {
		t.Fatal("fleet superset drain touched no sources")
	}

	// Phase 2: the subsumed query through the same entry node. The entry
	// is not the sub key's owner, but the semantic short-circuit must
	// keep the session local (fetching the complete superset region from
	// its owner if needed) and answer without any source work anywhere.
	if got := semOpen(t, fleet[entry].addr, semSubQ); got != wantSub {
		t.Fatalf("fleet subsumed answer:\n got %s\nwant %s", got, wantSub)
	}
	if navs := counting.Counters.Navigations() - afterSuper; navs != 0 {
		t.Fatalf("fleet-wide source navigations for subsumed open = %d, want 0", navs)
	}
	st := fleet[entry].srv.Stats()
	if st.Cluster == nil || st.Cluster.SemanticLocal != 1 {
		t.Fatalf("entry Cluster.SemanticLocal = %+v, want exactly 1", st.Cluster)
	}
	if st.Cache == nil || st.Cache.SemanticHits < 1 {
		t.Fatalf("entry Cache.SemanticHits = %+v, want >= 1", st.Cache)
	}
}

// TestSemanticStressUnderBumpRegistry is the -race CI target: sessions
// alternate superset and subsumed opens while the registry is bumped
// and the dataset swapped mid-flight. Every answer must match SOME
// version's oracle for its own query — a blend (or a subsumed answer
// filtered from another version's superset) is a failure.
func TestSemanticStressUnderBumpRegistry(t *testing.T) {
	const versions = 3
	sets := make([]*xmltree.Tree, versions)
	expect := map[string]map[string]bool{semSuperQ: {}, semSubQ: {}}
	for v := range sets {
		homes, _ := workload.HomesSchools(8+2*v, 1, 3, int64(11*v+5))
		sets[v] = homes
		for _, q := range []string{semSuperQ, semSubQ} {
			want := semOracle(t, homes, q)
			if expect[q][want] {
				t.Fatal("test needs distinguishable datasets")
			}
			expect[q][want] = true
		}
	}

	var version atomic.Int64
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", sets[version.Load()])
		return m, nil
	}
	srv, err := server.New(factory, server.WithRegionCache(regioncache.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		l.Close()
		<-done
	}()
	addr := l.Addr().String()

	stop := make(chan struct{})
	var mutations atomic.Int64
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			version.Store(i % versions)
			srv.BumpRegistry()
			mutations.Add(1)
		}
	}()

	const sessions = 8
	const opensPerSession = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions*opensPerSession)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opensPerSession; i++ {
				q := semSuperQ
				if (g+i)%2 == 1 {
					q = semSubQ
				}
				c, err := vxdp.Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Open(q); err != nil {
					c.Close()
					errs <- err
					return
				}
				tree, err := nav.Materialize(c)
				c.Close()
				if err != nil {
					errs <- err
					return
				}
				if got := xmltree.MarshalXML(tree); !expect[q][got] {
					errs <- &stale{got}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if mutations.Load() == 0 {
		t.Fatal("mutator never ran; the stress proved nothing")
	}
}
