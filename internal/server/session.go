package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"mix/internal/buffer"
	"mix/internal/mediator"
	"mix/internal/metrics"
	"mix/internal/nav"
	"mix/internal/predict"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// traceLimit bounds the number of retained span roots per session, so a
// client that enables tracing but never fetches traces cannot grow the
// recorder without bound.
const traceLimit = 256

// session is one client connection: a private mediator engine (created
// at the first open), the currently open virtual answer document, and
// the handle table mapping wire handles to the engine's opaque node
// IDs. Handles are never reused; opening a new view invalidates all of
// them.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	born time.Time

	// nav counts this session's client-boundary navigations; msgs and
	// opens its frames and view opens. Read concurrently by Stats.
	nav   metrics.Counters
	msgs  atomic.Int64
	opens atomic.Int64

	eng     *pooledEngine // acquired at the first open, released on drop
	doc     nav.Document
	rec     *trace.Recorder // non-nil iff the server traces
	handles map[uint64]nav.ID
	nextH   uint64

	// proxy, when non-nil, is the session's link to the cluster node
	// that owns the open view: every navigation is relayed there.
	// proxyQuery remembers the open so the view can be reopened locally
	// if the owner is lost mid-session.
	proxy      *proxyLink
	proxyQuery string

	// Speculative-prefetch state, live only with prefetch on AND the
	// open view cache-named (geo nil otherwise — the off path pays one
	// nil check). geo maps issued handles to their region geometry;
	// viewKey/viewQuery identify the view to the successor model;
	// lastEngaged is the last region engaged (-1 = none); pending is the
	// unresolved predicted region (-1 = none). All session-goroutine
	// local.
	geo         map[uint64]nodePos
	viewKey     predict.Key
	viewQuery   string
	lastEngaged int
	pending     int
}

// run is the session loop: read a frame, dispatch, respond — until the
// client closes, a deadline evicts the session, or the server drains.
func (s *session) run() {
	defer s.srv.dropSession(s)
	defer s.conn.Close()
	r := bufio.NewReader(s.conn)
	w := bufio.NewWriter(s.conn)
	for {
		s.arm()
		var req vxdp.Request
		if err := vxdp.ReadFrame(r, &req); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !s.srv.drainingNow() {
				s.srv.evicted.Add(1)
				s.srv.log.Info("session evicted", "session", s.id, "reason", "timeout")
				// Best-effort eviction notice; the deadline already
				// passed, so give the write its own short grace.
				_ = s.conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = vxdp.WriteFrame(w, vxdp.Response{NavResult: vxdp.NavResult{Err: "session evicted (timeout)"}})
				_ = w.Flush()
			} else if err != io.EOF && !s.srv.drainingNow() {
				s.srv.log.Warn("session read error", "session", s.id, "err", err.Error())
			}
			return
		}
		s.srv.msgs.Add(1)
		s.msgs.Add(1)
		start := time.Now()
		resp, last := s.dispatch(req)
		s.srv.cmdHist.Histogram(cmdLabel(req.Op)).Observe(time.Since(start))
		if err := vxdp.WriteFrame(w, resp); err != nil {
			s.srv.log.Warn("session write error", "session", s.id, "err", err.Error())
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if last {
			return
		}
	}
}

// cmdLabel maps a request op to a histogram label, folding unknown ops
// into one bucket so a hostile client cannot grow the registry.
func cmdLabel(op string) string {
	switch op {
	case vxdp.OpOpen, vxdp.OpRoot, vxdp.OpDown, vxdp.OpRight, vxdp.OpFetch,
		vxdp.OpSelect, vxdp.OpBatch, vxdp.OpStats, vxdp.OpTrace, vxdp.OpClose,
		vxdp.OpPing, vxdp.OpRegionGet, vxdp.OpRegionPut, vxdp.OpInvalidate,
		vxdp.OpSlow, vxdp.OpPrefetchHint:
		return op
	}
	return "other"
}

// arm sets the read deadline from the idle and lifetime timeouts.
func (s *session) arm() {
	var dl time.Time
	if t := s.srv.cfg.IdleTimeout; t > 0 {
		dl = time.Now().Add(t)
	}
	if t := s.srv.cfg.MaxLifetime; t > 0 {
		if end := s.born.Add(t); dl.IsZero() || end.Before(dl) {
			dl = end
		}
	}
	_ = s.conn.SetReadDeadline(dl)
}

// sourceStats converts the mediator's per-source buffer accounting into
// its wire form, sorted by source name for stable output.
func sourceStats(m map[string]buffer.Stats) []vxdp.SourceStats {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]vxdp.SourceStats, 0, len(names))
	for _, name := range names {
		bs := m[name]
		out = append(out, vxdp.SourceStats{
			Name:              name,
			Fills:             int64(bs.Fills),
			DemandFills:       int64(bs.DemandFills),
			PrefetchFills:     int64(bs.PrefetchFills),
			RoundTrips:        int64(bs.RoundTrips),
			BatchedFills:      int64(bs.BatchedFills),
			PendingHoles:      int64(bs.PendingHoles),
			PrefetchErrors:    int64(bs.PrefetchErrors),
			LastPrefetchError: bs.LastPrefetchError,
		})
	}
	return out
}

func errResp(format string, args ...any) vxdp.Response {
	return vxdp.Response{NavResult: vxdp.NavResult{Err: fmt.Sprintf(format, args...)}}
}

// dispatch executes one request. last reports that the session should
// end after the response is flushed.
func (s *session) dispatch(req vxdp.Request) (resp vxdp.Response, last bool) {
	switch req.Op {
	case vxdp.OpOpen:
		return s.openRouted(req), false
	case vxdp.OpRoot, vxdp.OpDown, vxdp.OpRight, vxdp.OpFetch, vxdp.OpSelect:
		if s.proxy != nil {
			return s.forward(req), false
		}
		if s.doc == nil {
			return errResp("no view open (send an open frame first)"), false
		}
		finish := s.fleetTrace(req.TraceCtx)
		res := s.navigate(req.Cmd, nil)
		resp = vxdp.Response{NavResult: res.nr}
		finish(&resp)
		return resp, false
	case vxdp.OpBatch:
		if s.proxy != nil {
			return s.forward(req), false
		}
		finish := s.fleetTrace(req.TraceCtx)
		resp = s.batch(req.Cmds)
		finish(&resp)
		return resp, false
	case vxdp.OpStats:
		st := s.srv.Stats()
		n := s.nav.Snapshot()
		st.Session = &vxdp.SessionStats{
			ID:       s.id,
			UptimeMs: time.Since(s.born).Milliseconds(),
			Msgs:     s.msgs.Load(),
			Opens:    s.opens.Load(),
			Navs:     n.Navigations(),
			Down:     n.Down,
			Right:    n.Right,
			Fetch:    n.Fetch,
			Select:   n.Select,
			Root:     n.Root,
		}
		if s.eng != nil {
			st.Session.Sources = sourceStats(s.eng.med.BufferStats())
		}
		return vxdp.Response{Stats: &st}, false
	case vxdp.OpTrace:
		if s.proxy != nil && s.rec == nil {
			// This node records nothing; the navigations happened on the
			// owner and so did the spans.
			return s.forward(req), false
		}
		if s.rec == nil {
			// Tracing disabled (or no view open yet): an empty forest.
			return vxdp.Response{NavResult: vxdp.NavResult{OK: true}}, false
		}
		// On a tracing proxy node the local recorder already holds the
		// stitched forest — each proxy span carries the owner's subtree
		// grafted under it (see forward) — so serve it as-is.
		return vxdp.Response{NavResult: vxdp.NavResult{OK: true}, Trace: s.rec.Take()}, false
	case vxdp.OpSlow:
		// Node-local diagnostic: even on a proxied session the operator
		// asking this node wants this node's flight ring.
		return s.srv.handleSlow(), false
	case vxdp.OpClose:
		return vxdp.Response{NavResult: vxdp.NavResult{OK: true}}, true
	case vxdp.OpPing:
		return s.srv.handlePing(), false
	case vxdp.OpRegionGet:
		return s.srv.traced(req.TraceCtx, req.Op, func() vxdp.Response { return s.srv.handleRegionGet(req) }), false
	case vxdp.OpRegionPut:
		return s.srv.traced(req.TraceCtx, req.Op, func() vxdp.Response { return s.srv.handleRegionPut(req) }), false
	case vxdp.OpInvalidate:
		return s.srv.traced(req.TraceCtx, req.Op, func() vxdp.Response { return s.srv.handleInvalidate(req) }), false
	case vxdp.OpPrefetchHint:
		return s.srv.tracedSpec(req.TraceCtx, req.Op, func() vxdp.Response { return s.srv.handlePrefetchHint(req) }), false
	default:
		return errResp("unknown op %q", req.Op), false
	}
}

// noFinish is the fleetTrace finisher for untraced commands: shared so
// the hot path allocates nothing.
var noFinish = func(*vxdp.Response) {}

// fleetTrace arms the session recorder for one remotely-parented
// command: when the request carries a trace context (the client — or a
// proxying peer — is fleet-tracing), spans recorded while serving it
// are minted ids and parented under the remote span, and the returned
// finisher drains them into the response so the caller can stitch them
// under its own span. Untraced requests get the shared no-op finisher
// and pay nothing.
func (s *session) fleetTrace(ctx *trace.Context) func(*vxdp.Response) {
	if ctx == nil || s.rec == nil {
		return noFinish
	}
	s.rec.SetRemoteParent(*ctx)
	return func(resp *vxdp.Response) {
		s.rec.ClearRemoteParent()
		resp.Spans = s.rec.Take()
	}
}

// open compiles the query on this session's pooled engine (acquired on
// first use) and resets the handle table. The engine is exclusively
// this session's until dropSession releases it; the shared region
// cache behind it makes regions other sessions explored free.
func (s *session) open(query string) error {
	if err := s.ensureEngine(); err != nil {
		return err
	}
	res, err := s.eng.med.Query(query)
	if err != nil {
		return err
	}
	s.installView(res, query)
	return nil
}

// ensureEngine acquires the session's pooled engine on first use.
func (s *session) ensureEngine() error {
	if s.eng != nil {
		return nil
	}
	pe, err := s.srv.acquireEngine()
	if err != nil {
		return fmt.Errorf("creating session mediator: %v", err)
	}
	s.eng = pe
	s.rec = pe.rec
	return nil
}

// installView makes a compiled query result the session's document and
// resets the handle table (and, with prefetch on, the region-geometry
// state the successor model feeds on).
func (s *session) installView(res *mediator.Result, query string) {
	s.opens.Add(1)
	// Count every navigation this session answers on its own counters
	// (folded into the server totals); with tracing on, also root a span
	// tree per client command.
	s.doc = &nav.CountingDoc{Doc: res.Document(), Counters: &s.nav}
	if s.rec != nil {
		s.doc = trace.NewDoc(s.doc, trace.ClientLabel, s.rec)
	}
	s.handles = map[uint64]nav.ID{}
	s.nextH = 0
	s.geo = nil
	s.viewKey = predict.Key{}
	s.viewQuery = ""
	s.lastEngaged = -1
	s.pending = -1
	if s.srv.prefetch != nil {
		if k := res.RegionKey(); k.Name != "" {
			s.geo = map[uint64]nodePos{}
			s.viewKey = predict.Key{Generation: k.Generation, Registry: k.Registry, Name: k.Name, Fingerprint: k.Fingerprint}
			s.viewQuery = query
		}
	}
}

// issue registers a node ID and returns its wire handle.
func (s *session) issue(id nav.ID) uint64 {
	s.nextH++
	s.handles[s.nextH] = id
	return s.nextH
}

// navResult pairs the wire result of a step with the resolved node, so
// later batch steps can navigate from it without a handle lookup.
type navResult struct {
	nr   vxdp.NavResult
	node nav.ID
}

func navErr(format string, args ...any) navResult {
	return navResult{nr: vxdp.NavResult{Err: fmt.Sprintf(format, args...)}}
}

// navigate executes one navigation command. base, when non-nil, is the
// pre-resolved start node of a batch step (from points to it); nil base
// with *from set means the referenced step produced ⊥, which propagates
// as ⊥. Outside batches the start node comes from the handle table.
func (s *session) navigate(cmd vxdp.Cmd, from *navResult) navResult {
	var base nav.ID
	var baseH uint64
	if from != nil {
		if !from.nr.OK {
			return navResult{nr: vxdp.NavResult{OK: false}} // ⊥ propagates
		}
		base = from.node
		baseH = from.nr.ID
	} else if cmd.Op != vxdp.OpRoot {
		id, ok := s.handles[cmd.ID]
		if !ok {
			return navErr("unknown node handle %d", cmd.ID)
		}
		base = id
		baseH = cmd.ID
	}
	var (
		id  nav.ID
		err error
	)
	switch cmd.Op {
	case vxdp.OpRoot:
		id, err = s.doc.Root()
	case vxdp.OpDown:
		id, err = s.doc.Down(base)
	case vxdp.OpRight:
		id, err = s.doc.Right(base)
	case vxdp.OpSelect:
		id, err = nav.Select(s.doc, base, nav.LabelIs(cmd.Label), cmd.Self)
	case vxdp.OpFetch:
		label, ferr := s.doc.Fetch(base)
		if ferr != nil {
			return navErr("%v", ferr)
		}
		if s.geo != nil {
			s.noteFetch(baseH)
		}
		return navResult{nr: vxdp.NavResult{OK: true, Label: label}}
	case "node":
		// Batch-only alias of an earlier step's node.
		h := s.issue(base)
		if s.geo != nil {
			s.noteAlias(baseH, h)
		}
		return navResult{nr: vxdp.NavResult{OK: true, ID: h}, node: base}
	default:
		return navErr("unknown op %q", cmd.Op)
	}
	if err != nil {
		return navErr("%v", err)
	}
	if id == nil {
		return navResult{nr: vxdp.NavResult{OK: false}}
	}
	h := s.issue(id)
	if s.geo != nil {
		s.noteMove(cmd.Op, baseH, h)
	}
	return navResult{nr: vxdp.NavResult{OK: true, ID: h}, node: id}
}

// batch executes a pipelined command sequence. Any step error fails the
// whole batch (navigation already performed is not rolled back — the
// commands are reads); ⊥ results are not errors and propagate to the
// steps that reference them.
func (s *session) batch(cmds []vxdp.Cmd) vxdp.Response {
	if len(cmds) == 0 {
		return errResp("empty batch")
	}
	if len(cmds) > vxdp.MaxBatch {
		return errResp("batch of %d commands exceeds limit %d", len(cmds), vxdp.MaxBatch)
	}
	if s.doc == nil {
		return errResp("no view open (send an open frame first)")
	}
	results := make([]navResult, len(cmds))
	out := make([]vxdp.NavResult, len(cmds))
	for i, cmd := range cmds {
		var from *navResult
		if cmd.Ref != nil {
			if *cmd.Ref < 0 || *cmd.Ref >= i {
				return errResp("step %d: ref %d out of range", i, *cmd.Ref)
			}
			from = &results[*cmd.Ref]
		}
		if cmd.Op == "node" && cmd.Ref == nil {
			id, ok := s.handles[cmd.ID]
			if !ok {
				return errResp("step %d: unknown node handle %d", i, cmd.ID)
			}
			results[i] = navResult{nr: vxdp.NavResult{OK: true, ID: cmd.ID}, node: id}
			out[i] = results[i].nr
			continue
		}
		results[i] = s.navigate(cmd, from)
		if results[i].nr.Err != "" {
			return errResp("step %d: %s", i, results[i].nr.Err)
		}
		out[i] = results[i].nr
	}
	return vxdp.Response{Results: out}
}
