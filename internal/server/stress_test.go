package server_test

// Cache correctness under concurrency: N sessions navigate the same
// view while the source registry is mutated mid-flight. The invariant
// is "invalidation, never staleness" — whatever a session explores must
// be byte-identical to what an *uncached* engine over some registry
// state would have answered; a blend of two states is a failure. Run
// with -race (the CI stress step does).

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func TestRegistryMutationStress(t *testing.T) {
	const versions = 3
	type dataset struct {
		homes, schools *xmltree.Tree
		want           string
	}
	data := make([]dataset, versions)
	expected := map[string]int{}
	for v := range data {
		homes, schools := workload.HomesSchools(8+2*v, 8+2*v, 3, int64(11*v+5))
		m := mediator.New(mediator.DefaultOptions())
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		res, err := m.Query(joinQuery)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := res.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		want := xmltree.MarshalXML(tree)
		data[v] = dataset{homes, schools, want}
		if _, dup := expected[want]; dup {
			t.Fatal("test needs distinguishable datasets")
		}
		expected[want] = v
	}

	var version atomic.Int64
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		d := data[version.Load()]
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", d.homes)
		m.RegisterTree("schoolsSrc", d.schools)
		return m, nil
	}
	srv, err := server.New(factory, server.WithRegionCache(regioncache.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		l.Close()
		<-done
	}()
	addr := l.Addr().String()

	// The mutator swaps the dataset and declares the change, repeatedly,
	// while sessions are mid-exploration.
	stop := make(chan struct{})
	var mutations atomic.Int64
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			version.Store(i % versions)
			srv.BumpRegistry()
			mutations.Add(1)
		}
	}()

	const sessions = 8
	const opensPerSession = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions*opensPerSession)
	fail := func(err error) { errs <- err }
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opensPerSession; i++ {
				c, err := vxdp.Dial(addr)
				if err != nil {
					fail(err)
					return
				}
				if err := c.Open(joinQuery); err != nil {
					c.Close()
					fail(err)
					return
				}
				tree, err := nav.Materialize(c)
				c.Close()
				if err != nil {
					fail(err)
					return
				}
				got := xmltree.MarshalXML(tree)
				if _, ok := expected[got]; !ok {
					fail(&stale{got})
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if mutations.Load() == 0 {
		t.Fatal("mutator never ran; the stress proved nothing")
	}
	if st := srv.Stats(); st.Cache == nil || st.Cache.Generation == 0 {
		t.Fatalf("registry mutations did not advance the cache generation: %+v", st.Cache)
	}
}

type stale struct{ got string }

func (s *stale) Error() string {
	return "explored answer matches no registry state (stale or blended cache): " + s.got
}
