package server_test

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const joinQuery = `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`

func start(t *testing.T, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	homes, schools := workload.HomesSchools(10, 10, 3, 5)
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		return m, nil
	}
	srv, err := server.New(factory, opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, l.Addr().String()
}

func TestConfigRequiresFactory(t *testing.T) {
	if _, err := server.New(nil); err == nil {
		t.Fatal("New accepted a nil factory")
	}
}

func TestSessionLimit(t *testing.T) {
	srv, addr := start(t, server.WithMaxSessions(2))
	c1, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if err := c2.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	// The third connection is refused with an error frame.
	c3, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	err = c3.Open(joinQuery)
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("over-limit session not refused: %v", err)
	}
	if st := srv.Stats(); st.SessionsDenied != 1 {
		t.Fatalf("denied = %d, want 1", st.SessionsDenied)
	}
	// Freeing a slot admits new sessions again.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive >= 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c4, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if err := c4.Open(joinQuery); err != nil {
		t.Fatalf("session after freed slot refused: %v", err)
	}
}

func TestIdleEviction(t *testing.T) {
	srv, addr := start(t, server.WithIdleTimeout(80*time.Millisecond))
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	// Activity within the idle window keeps the session alive.
	for i := 0; i < 3; i++ {
		time.Sleep(40 * time.Millisecond)
		if _, err := c.Root(); err != nil {
			t.Fatalf("live session evicted during activity: %v", err)
		}
	}
	// Going idle past the timeout evicts it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := srv.Stats()
	if st.SessionsActive != 0 || st.SessionsEvicted == 0 {
		t.Fatalf("idle session not evicted: %+v", st)
	}
	if _, err := c.Root(); err == nil {
		t.Fatal("navigation on an evicted session succeeded")
	}
}

func TestMaxLifetimeEviction(t *testing.T) {
	srv, addr := start(t, server.WithMaxLifetime(150*time.Millisecond))
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	// Keep the session busy; the lifetime cap evicts it anyway.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Root(); err != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := srv.Stats()
	if st.SessionsEvicted == 0 {
		t.Fatalf("busy session outlived MaxLifetime: %+v", st)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	homes, schools := workload.HomesSchools(10, 10, 3, 5)
	srv, err := server.New(func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := vxdp.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if _, err := c.Root(); err == nil {
		t.Fatal("drained session still answering")
	}
	// Drained sessions are not "evicted" — they were shut down.
	if st := srv.Stats(); st.SessionsActive != 0 || st.SessionsEvicted != 0 {
		t.Fatalf("after shutdown: %+v", st)
	}
}

// TestConcurrentSessionsShareNothing: many goroutines navigate
// per-session views at different paces; every one sees the full,
// correct answer (single-consumer lazy streams are session-private).
func TestConcurrentSessionsShareNothing(t *testing.T) {
	_, addr := start(t)

	homes, schools := workload.HomesSchools(10, 10, 3, 5)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)
	res, err := m.Query(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantTree, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.MarshalXML(wantTree)

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := vxdp.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Open(joinQuery); err != nil {
				errs <- err
				return
			}
			got, err := nav.Materialize(c)
			if err != nil {
				errs <- err
				return
			}
			if xmltree.MarshalXML(got) != want {
				errs <- &mismatch{i}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatch struct{ session int }

func (m *mismatch) Error() string { return "session answer differs from local answer" }
