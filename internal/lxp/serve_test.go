package lxp

import (
	"context"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mix/internal/xmltree"
)

func demoTree() *xmltree.Tree {
	kids := make([]*xmltree.Tree, 30)
	for i := range kids {
		kids[i] = xmltree.Elem("item", xmltree.Leaf("x"))
	}
	return xmltree.Elem("root", kids...)
}

// TestTCPServerGracefulShutdown: Shutdown stops the accept loop (Serve
// returns nil), lets in-flight requests complete, and closes drained
// connections.
func TestTCPServerGracefulShutdown(t *testing.T) {
	srv := NewTCPServer(&TreeServer{Tree: demoTree(), Chunk: 4, InlineLimit: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.GetRoot("u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fill(root); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New connections are refused.
	if _, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	// The drained connection is closed: the next request fails.
	if _, err := c.Fill(root); err == nil {
		t.Fatal("request on drained connection succeeded")
	}
}

// TestTCPServerShutdownForceClosesStragglers: a connection stuck in a
// slow request is cut when the shutdown context expires.
func TestTCPServerShutdownForceCloses(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	srv := NewTCPServer(&slowServer{inner: &TreeServer{Tree: demoTree()}, block: block})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		_, _ = c.GetRoot("u") // parks in slowServer until released
	}()
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	once.Do(func() { close(block) })
	if err == nil {
		t.Fatal("shutdown of a stuck connection reported success")
	}
	if serr := <-done; serr != nil {
		t.Fatalf("Serve: %v", serr)
	}
}

type slowServer struct {
	inner Server
	block chan struct{}
}

func (s *slowServer) GetRoot(uri string) (string, error) {
	<-s.block
	return s.inner.GetRoot(uri)
}

func (s *slowServer) Fill(id string) ([]*xmltree.Tree, error) { return s.inner.Fill(id) }

// TestTCPServerSlowRequestLogging: with a threshold set, every request
// at least that slow is warn-logged with its op and latency — the
// wrapper-side counterpart of mixd's slow-navigation flight recorder.
func TestTCPServerSlowRequestLogging(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&buf, &mu}, nil))
	srv := NewTCPServer(&TreeServer{Tree: demoTree(), Chunk: 4, InlineLimit: 2})
	srv.SlowThreshold = time.Nanosecond // everything is slow
	srv.Logger = logger
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetRoot("u"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "op=get_root") {
		t.Fatalf("slow request not logged:\n%s", out)
	}
}

// lockedWriter serializes handler writes against the test's read.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
