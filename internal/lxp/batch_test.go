package lxp

import (
	"net"
	"strings"
	"testing"

	"mix/internal/xmltree"
)

// plainServer hides a BatchServer's FillMany, modeling a wrapper that
// predates the fill_many message.
type plainServer struct{ inner Server }

func (p plainServer) GetRoot(uri string) (string, error)      { return p.inner.GetRoot(uri) }
func (p plainServer) Fill(id string) ([]*xmltree.Tree, error) { return p.inner.Fill(id) }

// rootHoles chases fills from the root of srv until one fill reveals
// several sibling holes (the per-book holes plus the continuation
// hole) and returns them — the ids a batched fill_many would carry.
func rootHoles(t *testing.T, srv Server) []string {
	t.Helper()
	id, err := srv.GetRoot("u")
	if err != nil {
		t.Fatal(err)
	}
	queue := []string{id}
	for len(queue) > 0 {
		next := queue[0]
		queue = queue[1:]
		trees, err := srv.Fill(next)
		if err != nil {
			t.Fatal(err)
		}
		var holes []string
		for _, tr := range trees {
			holes = append(holes, tr.Holes()...)
		}
		if len(holes) >= 2 {
			return holes
		}
		queue = append(queue, holes...)
	}
	t.Fatal("no fill revealed several holes to batch")
	return nil
}

// TestFillManyHelperFallback: the package helper answers identically
// whether the backend batches natively or is filled hole by hole.
func TestFillManyHelperFallback(t *testing.T) {
	mk := func() *TreeServer { return &TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2} }
	holes := rootHoles(t, mk())
	native, err := FillMany(mk(), holes)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := FillMany(plainServer{mk()}, holes)
	if err != nil {
		t.Fatal(err)
	}
	if len(native) != len(fallback) {
		t.Fatalf("native filled %d holes, fallback %d", len(native), len(fallback))
	}
	for id, trees := range native {
		other := fallback[id]
		if len(trees) != len(other) {
			t.Fatalf("hole %q: %d vs %d trees", id, len(trees), len(other))
		}
		for i := range trees {
			if !xmltree.Equal(trees[i], other[i]) {
				t.Fatalf("hole %q tree %d differs: %v vs %v", id, i, trees[i], other[i])
			}
		}
		if err := ValidateFill(id, trees); err != nil {
			t.Fatalf("hole %q: batched fill violates the protocol: %v", id, err)
		}
	}
}

// TestWireFillMany: a whole batch crosses the wire in one fill_many
// frame and matches the per-hole fills of the same server.
func TestWireFillMany(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2}
	go Serve(l, srv)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	holes := rootHoles(t, c)
	got, err := c.FillMany(holes)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range holes {
		want, err := srv.Fill(id) // TreeServer fills are stateless
		if err != nil {
			t.Fatal(err)
		}
		trees := got[id]
		if len(trees) != len(want) {
			t.Fatalf("hole %q: %d trees over the wire, want %d", id, len(trees), len(want))
		}
		for i := range want {
			if !xmltree.Equal(trees[i], want[i]) {
				t.Fatalf("hole %q tree %d differs after the round trip", id, i)
			}
		}
	}
	// A stale id fails the whole batch with a remote error; the
	// connection survives.
	if _, err := c.FillMany([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("expected remote error, got %v", err)
	}
	if _, err := c.GetRoot("u"); err != nil {
		t.Fatalf("connection should survive a failed batch: %v", err)
	}
}

// TestCountingFillMany: one batched round trip counts one message and
// len(ids) fills; through a non-batching inner it degrades to counted
// per-hole fills, so the counters always reflect the real wire traffic.
func TestCountingFillMany(t *testing.T) {
	batched := NewCounting(&TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2})
	holes := rootHoles(t, &TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2})
	before := batched.Counters.Snapshot()
	if _, err := FillMany(batched, holes); err != nil {
		t.Fatal(err)
	}
	after := batched.Counters.Snapshot()
	if got := after.Msgs - before.Msgs; got != 1 {
		t.Fatalf("batched FillMany cost %d messages, want 1", got)
	}
	if got := after.Fills - before.Fills; got != int64(len(holes)) {
		t.Fatalf("batched FillMany counted %d fills, want %d", got, len(holes))
	}
	if after.Bytes <= before.Bytes {
		t.Fatal("batched FillMany accounted no bytes")
	}

	plain := NewCounting(plainServer{&TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2}})
	before = plain.Counters.Snapshot()
	if _, err := FillMany(plain, holes); err != nil {
		t.Fatal(err)
	}
	after = plain.Counters.Snapshot()
	if got := after.Msgs - before.Msgs; got != int64(len(holes)) {
		t.Fatalf("per-hole fallback cost %d messages, want %d", got, len(holes))
	}
}

// FuzzFillMany: for arbitrary hole ids, the batched fill must agree
// with per-hole fills — same trees, same per-hole ValidateFill verdict,
// and errors exactly when some per-hole fill errors.
func FuzzFillMany(f *testing.F) {
	f.Add("root", "0:0")
	f.Add("0:0", "0:2")
	f.Add("bogus", "root")
	f.Add("", "9999:0")
	f.Fuzz(func(t *testing.T, a, b string) {
		srv := &TreeServer{Tree: doc(), Chunk: 2, InlineLimit: 2}
		ids := []string{a, b}
		many, manyErr := srv.FillMany(ids)
		var singleErr error
		for _, id := range ids {
			if _, err := srv.Fill(id); err != nil {
				singleErr = err
				break
			}
		}
		if (manyErr == nil) != (singleErr == nil) {
			t.Fatalf("FillMany(%q) err = %v, per-hole err = %v", ids, manyErr, singleErr)
		}
		if manyErr != nil {
			return
		}
		for _, id := range ids {
			single, err := srv.Fill(id)
			if err != nil {
				t.Fatalf("fill %q succeeded in the batch but not alone: %v", id, err)
			}
			trees := many[id]
			if len(trees) != len(single) {
				t.Fatalf("hole %q: %d batched vs %d single trees", id, len(trees), len(single))
			}
			for i := range single {
				if !xmltree.Equal(trees[i], single[i]) {
					t.Fatalf("hole %q tree %d differs between batch and single fill", id, i)
				}
			}
			ve1, ve2 := ValidateFill(id, trees), ValidateFill(id, single)
			if (ve1 == nil) != (ve2 == nil) {
				t.Fatalf("hole %q: ValidateFill disagrees: %v vs %v", id, ve1, ve2)
			}
		}
	})
}
