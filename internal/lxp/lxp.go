// Package lxp implements the Lean XML fragment Protocol of Section 4:
// the two-command protocol (get_root, fill) by which a buffer component
// retrieves XML fragments — open trees with holes — from a wrapper at
// the wrapper's preferred granularity.
//
//	get_root(URI) → hole[id]
//	fill(hole[id]) → [T]   (a list of trees, possibly containing holes)
//
// The protocol is deliberately liberal: a fill result may interleave
// holes with elements at arbitrary positions, enabling early return of
// partial results. Two well-formedness rules guarantee progress
// (Section 4): a non-empty result must not consist only of holes, and
// no two holes may be adjacent. ValidateFill enforces them.
//
// The package provides the Server interface implemented by wrappers, an
// accounting decorator, and a TCP transport (length-prefixed JSON) so a
// wrapper can run in a different process, as in the refined VXD
// architecture of Fig. 7.
package lxp

import (
	"fmt"
	"strconv"

	"mix/internal/metrics"
	"mix/internal/xmltree"
)

// Server is the wrapper side of LXP.
type Server interface {
	// GetRoot establishes a session for the document named by uri and
	// returns the identifier of the root hole.
	GetRoot(uri string) (holeID string, err error)
	// Fill (partially) explores the part of the source represented by
	// the hole and returns the list of trees it stands for. Sub-holes
	// in the result carry fresh identifiers the server can resolve
	// later.
	Fill(holeID string) ([]*xmltree.Tree, error)
}

// BatchServer is implemented by servers that can fill several holes in
// one protocol round trip:
//
//	fill_many([id…]) → {id: [T], …}
//
// Each hole's result obeys the same well-formedness rules as a single
// fill (callers apply ValidateFill per hole). Single-hole Fill remains
// the compatibility baseline: a buffer only batches when told to, and
// FillMany degrades to per-hole Fill against servers that lack the
// extension.
type BatchServer interface {
	Server
	// FillMany fills every listed hole, returning the results keyed by
	// hole identifier. A missing key means the hole stands for nothing
	// (the empty fill).
	FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error)
}

// FillMany fills the listed holes through srv: in one round trip when
// srv implements BatchServer, hole-by-hole otherwise. It is the helper
// buffers (and the wire server) call so batching is purely an
// optimization, never a compatibility requirement.
func FillMany(srv Server, holeIDs []string) (map[string][]*xmltree.Tree, error) {
	if bs, ok := srv.(BatchServer); ok {
		return bs.FillMany(holeIDs)
	}
	out := make(map[string][]*xmltree.Tree, len(holeIDs))
	for _, id := range holeIDs {
		trees, err := srv.Fill(id)
		if err != nil {
			return nil, err
		}
		out[id] = trees
	}
	return out, nil
}

// ProtocolError reports a violation of the LXP well-formedness rules.
type ProtocolError struct {
	HoleID string
	Msg    string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("lxp: protocol violation filling %q: %s", e.HoleID, e.Msg)
}

// ValidateFill checks the progress rules of Section 4 on a fill result:
// (1) a non-empty *top-level* result must contain at least one non-hole
// element (otherwise the fill made no progress), and (2) no two holes
// are adjacent at any level of the returned fragment. Nested child
// lists consisting of a single hole are legal — the paper's Example 7
// returns fill(∅0) = [a[∅1]], an element whose whole child list is yet
// unexplored.
func ValidateFill(holeID string, trees []*xmltree.Tree) error {
	if err := validateSiblings(holeID, trees, true); err != nil {
		return err
	}
	for _, t := range trees {
		if err := validateFragment(holeID, t); err != nil {
			return err
		}
	}
	return nil
}

func validateFragment(holeID string, t *xmltree.Tree) error {
	if t.IsHole() {
		return nil
	}
	if err := validateSiblings(holeID, t.Children, false); err != nil {
		return err
	}
	for _, c := range t.Children {
		if err := validateFragment(holeID, c); err != nil {
			return err
		}
	}
	return nil
}

func validateSiblings(holeID string, list []*xmltree.Tree, topLevel bool) error {
	if len(list) == 0 {
		return nil
	}
	allHoles := true
	for i, t := range list {
		if t.IsHole() {
			if i > 0 && list[i-1].IsHole() {
				return &ProtocolError{HoleID: holeID, Msg: "two adjacent holes"}
			}
		} else {
			allHoles = false
		}
	}
	if topLevel && allHoles {
		return &ProtocolError{HoleID: holeID, Msg: "non-empty result consists only of holes"}
	}
	return nil
}

// Counting decorates a Server with message/byte/fill accounting. Bytes
// are measured as the serialized size of the exchanged payloads, a
// transport-independent proxy for wire cost.
type Counting struct {
	Inner    Server
	Counters *metrics.Counters
}

// NewCounting wraps srv with fresh counters.
func NewCounting(srv Server) *Counting {
	return &Counting{Inner: srv, Counters: &metrics.Counters{}}
}

// GetRoot implements Server.
func (c *Counting) GetRoot(uri string) (string, error) {
	c.Counters.Msgs.Add(1)
	c.Counters.Bytes.Add(int64(len(uri)))
	id, err := c.Inner.GetRoot(uri)
	c.Counters.Bytes.Add(int64(len(id)))
	return id, err
}

// Fill implements Server.
func (c *Counting) Fill(holeID string) ([]*xmltree.Tree, error) {
	c.Counters.Msgs.Add(1)
	c.Counters.Fills.Add(1)
	c.Counters.Bytes.Add(int64(len(holeID)))
	trees, err := c.Inner.Fill(holeID)
	for _, t := range trees {
		c.Counters.Bytes.Add(int64(len(xmltree.MarshalXML(t))))
	}
	return trees, err
}

// FillMany implements BatchServer. When the inner server batches, the
// whole batch is one message carrying len(holeIDs) fills; otherwise it
// degrades to the counted per-hole path, so the counters always reflect
// what actually crossed the wire.
func (c *Counting) FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error) {
	bs, ok := c.Inner.(BatchServer)
	if !ok {
		out := make(map[string][]*xmltree.Tree, len(holeIDs))
		for _, id := range holeIDs {
			trees, err := c.Fill(id)
			if err != nil {
				return nil, err
			}
			out[id] = trees
		}
		return out, nil
	}
	c.Counters.Msgs.Add(1)
	c.Counters.Fills.Add(int64(len(holeIDs)))
	for _, id := range holeIDs {
		c.Counters.Bytes.Add(int64(len(id)))
	}
	res, err := bs.FillMany(holeIDs)
	for _, trees := range res {
		for _, t := range trees {
			c.Counters.Bytes.Add(int64(len(xmltree.MarshalXML(t))))
		}
	}
	return res, err
}

// TreeServer is the simplest possible wrapper: it serves one in-memory
// tree with a configurable chunk size — every fill returns up to Chunk
// children of the requested node followed by a continuation hole, and
// each child is returned *closed* when its subtree has at most
// InlineLimit nodes and as label[hole] otherwise (the "complete
// elements if their size does not exceed a certain limit" policy of
// Section 4).
//
// Hole identifiers are slash-separated child-index paths with a start
// offset: "0/2:5" names children 5… of the node at path [0,2].
type TreeServer struct {
	Tree *xmltree.Tree
	// Chunk is the number of children returned per fill (0 = all).
	Chunk int
	// InlineLimit is the maximum subtree size returned inline
	// (0 = always inline whole subtrees).
	InlineLimit int
}

// GetRoot implements Server. The uri is ignored: a TreeServer serves
// exactly one document.
func (s *TreeServer) GetRoot(string) (string, error) { return "root", nil }

// Fill implements Server. Hole identifiers are parsed and walked in
// one pass: the path prefix of a well-formed id is exactly the path
// string renderChildren needs, so nothing is re-serialized.
func (s *TreeServer) Fill(holeID string) ([]*xmltree.Tree, error) {
	if holeID == "root" {
		return []*xmltree.Tree{s.render(s.Tree, "")}, nil
	}
	node, rest, start, err := s.walkHoleID(holeID)
	if err != nil {
		return nil, err
	}
	if start > len(node.Children) {
		return nil, fmt.Errorf("lxp: stale hole id %q", holeID)
	}
	return s.renderChildren(node, rest, start), nil
}

// walkHoleID parses "p/q/…:start", walking the tree as the child-index
// path is decoded, and returns the node it names, the path prefix
// (id[:colon]) and the start offset.
func (s *TreeServer) walkHoleID(id string) (node *xmltree.Tree, rest string, start int, err error) {
	colon := -1
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == ':' {
			colon = i
			break
		}
	}
	if colon < 0 {
		return nil, "", 0, fmt.Errorf("lxp: malformed hole id %q", id)
	}
	if start, err = strconv.Atoi(id[colon+1:]); err != nil || start < 0 {
		return nil, "", 0, fmt.Errorf("lxp: malformed hole id %q", id)
	}
	rest = id[:colon]
	node = s.Tree
	if rest == "" {
		return node, rest, start, nil
	}
	cur, has := 0, false
	for i := 0; i <= len(rest); i++ {
		if i == len(rest) || rest[i] == '/' {
			if !has {
				return nil, "", 0, fmt.Errorf("lxp: malformed hole id %q", id)
			}
			node = node.Child(cur)
			if node == nil {
				return nil, "", 0, fmt.Errorf("lxp: stale hole id %q", id)
			}
			cur, has = 0, false
			continue
		}
		c := rest[i]
		if c < '0' || c > '9' {
			return nil, "", 0, fmt.Errorf("lxp: malformed hole id %q", id)
		}
		cur = cur*10 + int(c-'0')
		has = true
	}
	return node, rest, start, nil
}

// FillMany implements BatchServer (trivially, since the tree is local:
// the point is that the *wire* pays one round trip for the batch).
func (s *TreeServer) FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error) {
	out := make(map[string][]*xmltree.Tree, len(holeIDs))
	for _, id := range holeIDs {
		trees, err := s.Fill(id)
		if err != nil {
			return nil, err
		}
		out[id] = trees
	}
	return out, nil
}

// render returns t either inline (small enough) or as label[hole].
// Inline subtrees alias the served tree — fills are read-only, and
// every consumer (wire encoding, buffer grafting) only reads them — so
// no copy is made.
func (s *TreeServer) render(t *xmltree.Tree, path string) *xmltree.Tree {
	if t.IsLeaf() {
		return t
	}
	if s.InlineLimit <= 0 || t.Size() <= s.InlineLimit {
		return t
	}
	return elemHole(t.Label, path+":0")
}

// elemHole builds label[hole[id]] — the shape render mints for every
// non-inlined child — from a single allocation.
func elemHole(label, id string) *xmltree.Tree {
	h := &struct {
		elem xmltree.Tree
		ec   [1]*xmltree.Tree
		hole xmltree.Tree
		hc   [1]*xmltree.Tree
		leaf xmltree.Tree
	}{}
	h.leaf.Label = id
	h.hc[0] = &h.leaf
	h.hole.Label = xmltree.HoleLabel
	h.hole.Children = h.hc[:]
	h.ec[0] = &h.hole
	h.elem.Label = label
	h.elem.Children = h.ec[:]
	return &h.elem
}

func (s *TreeServer) renderChildren(node *xmltree.Tree, path string, start int) []*xmltree.Tree {
	end := len(node.Children)
	if s.Chunk > 0 && start+s.Chunk < end {
		end = start + s.Chunk
	}
	n := end - start
	if end < len(node.Children) {
		n++
	}
	out := make([]*xmltree.Tree, 0, n)
	for i := start; i < end; i++ {
		childPath := strconv.Itoa(i)
		if path != "" {
			childPath = path + "/" + childPath
		}
		out = append(out, s.render(node.Children[i], childPath))
	}
	if end < len(node.Children) {
		out = append(out, xmltree.Hole(path+":"+strconv.Itoa(end)))
	}
	return out
}

func pathString(path []int) string {
	if len(path) == 0 {
		return ""
	}
	b := make([]byte, 0, 3*len(path))
	for i, p := range path {
		if i > 0 {
			b = append(b, '/')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}

func parseHoleID(id string) (path []int, start int, err error) {
	colon := -1
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == ':' {
			colon = i
			break
		}
	}
	if colon < 0 {
		return nil, 0, fmt.Errorf("lxp: malformed hole id %q", id)
	}
	if start, err = strconv.Atoi(id[colon+1:]); err != nil || start < 0 {
		return nil, 0, fmt.Errorf("lxp: malformed hole id %q", id)
	}
	rest := id[:colon]
	if rest == "" {
		return nil, start, nil
	}
	cur := 0
	has := false
	for i := 0; i <= len(rest); i++ {
		if i == len(rest) || rest[i] == '/' {
			if !has {
				return nil, 0, fmt.Errorf("lxp: malformed hole id %q", id)
			}
			path = append(path, cur)
			cur, has = 0, false
			continue
		}
		c := rest[i]
		if c < '0' || c > '9' {
			return nil, 0, fmt.Errorf("lxp: malformed hole id %q", id)
		}
		cur = cur*10 + int(c-'0')
		has = true
	}
	return path, start, nil
}
