package lxp

import (
	"bytes"
	"encoding/json"
	"testing"

	"mix/internal/xmltree"
)

// nastyTree exercises every string-escaping regime: plain ASCII,
// JSON-special characters, HTML-escaped characters, non-ASCII and
// control bytes.
func nastyTree() *xmltree.Tree {
	return xmltree.Elem("root",
		xmltree.Text("plain", "value"),
		xmltree.Text(`qu"ote`, `back\slash`),
		xmltree.Text("html<&>", "a<b"),
		xmltree.Text("héllo", "wörld ☃"),
		xmltree.Text("ctl\x01\n", "\t"),
		xmltree.Elem("empty"),
	)
}

func codecResponses() map[string]leanResponse {
	return map[string]leanResponse{
		"hole":       {hole: "root"},
		"fill":       {trees: []*xmltree.Tree{nastyTree(), xmltree.Leaf("x")}, hasTrees: true},
		"fillEmpty":  {trees: []*xmltree.Tree{}, hasTrees: true},
		"error":      {err: `bad <hole> "id"`},
		"holeNasty":  {hole: "a/b:3\x02é"},
		"manyEmpty":  {many: map[string][]*xmltree.Tree{}},
		"manySorted": {many: map[string][]*xmltree.Tree{"z": {xmltree.Leaf("1")}, "a": {}, "m<&>": {nastyTree()}}},
	}
}

// wireFromLean is the test-side inverse of leanFromWire.
func wireFromLean(lr leanResponse) response {
	resp := response{Hole: lr.hole, Err: lr.err}
	if lr.hasTrees {
		resp.Trees = make([]wireTree, len(lr.trees))
		for i, t := range lr.trees {
			resp.Trees[i] = toWire(t)
		}
	}
	if lr.many != nil {
		resp.Many = make(map[string][]wireTree, len(lr.many))
		for id, trees := range lr.many {
			ws := make([]wireTree, len(trees))
			for i, t := range trees {
				ws[i] = toWire(t)
			}
			resp.Many[id] = ws
		}
	}
	return resp
}

func leanEqual(a, b *leanResponse) bool {
	if a.hole != b.hole || a.err != b.err || a.hasTrees != b.hasTrees {
		return false
	}
	forestEq := func(x, y []*xmltree.Tree) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !xmltree.Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if !forestEq(a.trees, b.trees) {
		return false
	}
	if len(a.many) != len(b.many) || (a.many == nil) != (b.many == nil) {
		return false
	}
	for id, x := range a.many {
		y, ok := b.many[id]
		if !ok || !forestEq(x, y) {
			return false
		}
	}
	return true
}

// TestLeanEncodeMatchesJSON: the lean encoder must reproduce
// json.Marshal of the wire structs byte for byte.
func TestLeanEncodeMatchesJSON(t *testing.T) {
	for name, lr := range codecResponses() {
		lr := lr
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			encodeResponse(&buf, &lr)
			want, err := json.Marshal(wireFromLean(lr))
			if err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("lean encoding diverged\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestLeanDecodeMatchesJSON: the lean decoder must agree with
// encoding/json on canonical payloads and on reordered / whitespaced /
// unknown-field variants.
func TestLeanDecodeMatchesJSON(t *testing.T) {
	var payloads []string
	for _, lr := range codecResponses() {
		b, err := json.Marshal(wireFromLean(lr))
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, string(b))
	}
	payloads = append(payloads,
		` { "trees" : null } `,
		`{"trees":[{"c":[{"l":"orphan"}],"l":"late","x":[1,2,{"y":null}]}]}`,
		`{"error":"boom","hole":"h","trees":[]}`,
		`{"unknown":123e4,"trees":null,"other":true}`,
		`{"trees":[{"l":"A 😀"}]}`,
		`null`,
	)
	for _, payload := range payloads {
		got := new(leanResponse)
		err := decodeResponse([]byte(payload), xmltree.NewInterner(), nil, got)
		if err != nil {
			t.Errorf("lean decode failed on %q: %v", payload, err)
			continue
		}
		var resp response
		if err := json.Unmarshal([]byte(payload), &resp); err != nil {
			t.Fatalf("generic decode failed on %q: %v", payload, err)
		}
		want := leanFromWire(resp)
		if !leanEqual(got, &want) {
			t.Errorf("decoders disagree on %q\n lean: %+v\n json: %+v", payload, got, want)
		}
	}
}

// TestLeanDecodeRejects: malformed payloads must error, not panic.
func TestLeanDecodeRejects(t *testing.T) {
	for _, payload := range []string{
		"", "{", `{"trees":}`, `{"trees":[}`, `{"trees":[{]}`, `[1]`, `5`,
		`{"trees":null}x`, `{"hole":"a"`, `{"trees":[{"l":"a"},]}`, `{"trees":truex}`,
	} {
		if err := decodeResponse([]byte(payload), nil, nil, new(leanResponse)); err == nil {
			t.Errorf("lean decode accepted malformed payload %q", payload)
		}
	}
}

// FuzzLeanCodecRoundTrip builds a forest from the fuzz input, checks
// the lean encoding is byte-identical to encoding/json, and that both
// decoders read it back to the same trees.
func FuzzLeanCodecRoundTrip(f *testing.F) {
	f.Add("root", "a\x00b<c", []byte{3, 1, 0, 2, 9})
	f.Add("", "héllo☃", []byte{0})
	f.Add(`h"ole`, "\x1f\\", []byte{5, 5, 5, 5, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, hole, label string, shape []byte) {
		// shape drives a tiny deterministic tree builder.
		var build func(depth int) *xmltree.Tree
		i := 0
		build = func(depth int) *xmltree.Tree {
			n := xmltree.Elem(label + string(rune('a'+depth)))
			if i >= len(shape) || depth > 4 {
				return n
			}
			kids := int(shape[i]) % 4
			i++
			for k := 0; k < kids; k++ {
				n.Children = append(n.Children, build(depth+1))
			}
			return n
		}
		lr := leanResponse{hole: hole, trees: []*xmltree.Tree{build(0), xmltree.Leaf(label)}, hasTrees: true}
		var buf bytes.Buffer
		encodeResponse(&buf, &lr)
		want, err := json.Marshal(wireFromLean(lr))
		if err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(want) {
			t.Fatalf("lean encoding diverged\n got: %s\nwant: %s", buf.String(), want)
		}
		got := new(leanResponse)
		if err := decodeResponse(buf.Bytes(), xmltree.NewInterner(), nil, got); err != nil {
			t.Fatalf("lean decode of own encoding failed: %v", err)
		}
		var resp response
		if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
			t.Fatalf("generic decode of lean encoding failed: %v", err)
		}
		fromJSON := leanFromWire(resp)
		if !leanEqual(got, &fromJSON) {
			t.Fatalf("decoders disagree on round-tripped payload %s", buf.String())
		}
	})
}

// FuzzLeanDecode feeds arbitrary payloads to the lean decoder: it must
// never panic, must accept whatever encoding/json accepts, and must
// agree with it on every canonical (re-encodable) payload.
func FuzzLeanDecode(f *testing.F) {
	f.Add([]byte(`{"trees":[{"l":"a","c":[{"l":"b"}]}]}`))
	f.Add([]byte(`{"hole":"root","trees":null}`))
	f.Add([]byte(`{"trees":null,"many":{"a":[],"b":[{"l":"x"}]}}`))
	f.Add([]byte(`{"trees":[null,{"l":null,"c":null}]}`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		got := new(leanResponse)
		leanErr := decodeResponse(payload, xmltree.NewInterner(), nil, got)
		var resp response
		if err := json.Unmarshal(payload, &resp); err != nil {
			return // generic rejects; lean may be laxer about skipped values
		}
		if leanErr != nil {
			t.Fatalf("generic decoder accepts %q, lean rejects: %v", payload, leanErr)
		}
		// On canonical payloads (re-encoding reproduces the input, so
		// no duplicate-key merge games) the values must agree exactly.
		re, err := json.Marshal(resp)
		if err != nil || !bytes.Equal(re, payload) {
			return
		}
		want := leanFromWire(resp)
		if !leanEqual(got, &want) {
			t.Fatalf("decoders disagree on canonical payload %q", payload)
		}
	})
}

func benchForest() leanResponse {
	var trees []*xmltree.Tree
	for i := 0; i < 40; i++ {
		trees = append(trees, xmltree.Elem("book",
			xmltree.Text("title", "the art of navigation"),
			xmltree.Text("author", "doe, j."),
			xmltree.Text("price", "42"),
			xmltree.Elem("tags", xmltree.Leaf("lazy"), xmltree.Leaf("views")),
		))
	}
	return leanResponse{trees: trees, hasTrees: true}
}

func BenchmarkEncodeResponseJSON(b *testing.B) {
	lr := benchForest()
	resp := wireFromLean(lr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeResponseLean(b *testing.B) {
	lr := benchForest()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		encodeResponse(&buf, &lr)
	}
}

func BenchmarkDecodeResponseJSON(b *testing.B) {
	payload, _ := json.Marshal(wireFromLean(benchForest()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var resp response
		if err := json.Unmarshal(payload, &resp); err != nil {
			b.Fatal(err)
		}
		_ = leanFromWire(resp)
	}
}

func BenchmarkDecodeResponseLean(b *testing.B) {
	payload, _ := json.Marshal(wireFromLean(benchForest()))
	in := xmltree.NewInterner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := decodeResponse(payload, in, nil, new(leanResponse)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- request codec ----------------------------------------------------------

func codecRequests() map[string]request {
	return map[string]request{
		"getRoot":  {Op: "get_root", URI: "mem://catalog"},
		"fill":     {Op: "fill", ID: "0/2:5"},
		"fillMany": {Op: "fill_many", IDs: []string{"a:0", "b:1", "c<&>:2"}},
		"emptyIDs": {Op: "fill_many", IDs: nil},
		"nasty":    {Op: "fill", ID: "hé\"llo\\☃\x01"},
		"bare":     {Op: "close"},
	}
}

func TestLeanEncodeRequestMatchesJSON(t *testing.T) {
	for name, req := range codecRequests() {
		var buf bytes.Buffer
		encodeRequest(&buf, req)
		want, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: lean encoding diverges\n got: %s\nwant: %s", name, buf.Bytes(), want)
		}
	}
}

func TestLeanDecodeRequestMatchesJSON(t *testing.T) {
	payloads := map[string][]byte{}
	for name, req := range codecRequests() {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		payloads[name] = b
	}
	payloads["spacing"] = []byte(" { \"op\" : \"fill\" , \"id\" : \"x:0\" } ")
	payloads["reordered"] = []byte(`{"ids":["a"],"unknown":{"x":[1,null]},"op":"fill_many"}`)
	payloads["nulls"] = []byte(`{"op":null,"uri":null,"id":null,"ids":null}`)
	payloads["nullElem"] = []byte(`{"op":"fill_many","ids":["a",null,"b"]}`)
	payloads["null"] = []byte(`null`)
	for name, payload := range payloads {
		var want request
		if err := json.Unmarshal(payload, &want); err != nil {
			t.Fatalf("%s: oracle rejects payload: %v", name, err)
		}
		got, err := decodeRequest(payload)
		if err != nil {
			t.Errorf("%s: lean decoder rejects %s: %v", name, payload, err)
			continue
		}
		if got.Op != want.Op || got.URI != want.URI || got.ID != want.ID {
			t.Errorf("%s: scalar mismatch\n got: %+v\nwant: %+v", name, got, want)
		}
		if len(got.IDs) != len(want.IDs) {
			t.Errorf("%s: ids mismatch\n got: %+v\nwant: %+v", name, got, want)
			continue
		}
		for i := range got.IDs {
			if got.IDs[i] != want.IDs[i] {
				t.Errorf("%s: ids[%d] = %q, want %q", name, i, got.IDs[i], want.IDs[i])
			}
		}
	}
}

func TestLeanDecodeRequestRejects(t *testing.T) {
	for _, payload := range []string{
		``, `{`, `{"op"}`, `{"op":"x"`, `{"op":"x"}y`,
		`{"ids":["a"`, `{"ids":["a",]}`, `{"ids":"a"}`, `{"ids":[,]}`,
		`[]`, `"fill"`,
	} {
		if _, err := decodeRequest([]byte(payload)); err == nil {
			t.Errorf("lean decoder accepted malformed request %q", payload)
		}
	}
}

func FuzzLeanDecodeRequest(f *testing.F) {
	for _, req := range codecRequests() {
		b, _ := json.Marshal(req)
		f.Add(b)
	}
	f.Add([]byte(`{"op":"fill_many","ids":["a",null],"junk":[{"x":1}]}`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var want request
		oracleErr := json.Unmarshal(payload, &want)
		got, leanErr := decodeRequest(payload)
		if oracleErr != nil {
			return // lean may be laxer on skipped malformed tokens
		}
		if leanErr != nil {
			t.Fatalf("oracle accepts, lean rejects %q: %v", payload, leanErr)
		}
		canonical, _ := json.Marshal(want)
		re, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		// On canonical payloads the decoders must agree exactly.
		if bytes.Equal(canonical, payloadWithoutSpace(payload)) && !bytes.Equal(re, canonical) {
			t.Fatalf("decode mismatch on canonical payload %q\n got: %s\nwant: %s", payload, re, canonical)
		}
		// Always: scalar fields agree (no duplicate-key or null games can
		// make encoding/json and the lean decoder diverge on strings).
		if got.Op != want.Op || got.URI != want.URI || got.ID != want.ID || len(got.IDs) != len(want.IDs) {
			t.Fatalf("request mismatch on %q\n got: %+v\nwant: %+v", payload, got, want)
		}
		for i := range got.IDs {
			if got.IDs[i] != want.IDs[i] {
				t.Fatalf("ids[%d] mismatch on %q: %q vs %q", i, payload, got.IDs[i], want.IDs[i])
			}
		}
	})
}

func payloadWithoutSpace(p []byte) []byte {
	var buf bytes.Buffer
	if json.Compact(&buf, p) != nil {
		return p
	}
	return buf.Bytes()
}
