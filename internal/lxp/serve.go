package lxp

import (
	"bufio"
	"context"
	"errors"
	"log/slog"
	"net"
	"sync"
	"time"
)

// TCPServer serves LXP over TCP like Serve, but with connection
// tracking and graceful shutdown: Shutdown stops the accept loop, lets
// each connection finish the request it is serving, and waits for the
// drained connections to close (force-closing the stragglers when the
// context expires). cmd/lxpd uses it to turn SIGINT/SIGTERM into a
// clean exit.
type TCPServer struct {
	// Srv answers the protocol requests.
	Srv Server
	// SlowThreshold, when > 0, logs every request that took at least
	// this long to serve — the wrapper-side counterpart of mixd's
	// slow-navigation flight recorder, so a slow fleet trace whose time
	// sits under src: spans can be chased into the wrapper's own log.
	SlowThreshold time.Duration
	// Logger receives the slow-request warnings (slog.Default when nil).
	Logger *slog.Logger

	mu       sync.Mutex
	l        net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewTCPServer returns a TCPServer for srv.
func NewTCPServer(srv Server) *TCPServer {
	return &TCPServer{Srv: srv, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on l until Shutdown is called or the
// listener fails. It returns nil after a clean Shutdown.
func (t *TCPServer) Serve(l net.Listener) error {
	t.mu.Lock()
	if t.draining {
		t.mu.Unlock()
		return errors.New("lxp: server already shut down")
	}
	t.l = l
	t.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			t.mu.Lock()
			draining := t.draining
			t.mu.Unlock()
			if draining && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !t.track(conn) {
			conn.Close()
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer t.untrack(conn)
			t.serveConn(conn)
		}()
	}
}

func (t *TCPServer) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *TCPServer) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

func (t *TCPServer) drainingNow() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

func (t *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req request
		if err := readRequest(r, &req); err != nil {
			// Closed, corrupted, or woken by Shutdown's deadline.
			return
		}
		start := time.Now()
		if err := writeResponse(w, req, t.Srv); err != nil {
			return
		}
		if d := time.Since(start); t.SlowThreshold > 0 && d >= t.SlowThreshold {
			log := t.Logger
			if log == nil {
				log = slog.Default()
			}
			log.Warn("lxp: slow request", "op", req.Op, "uri", req.URI,
				"ids", len(req.IDs), "dur", d.Round(time.Microsecond).String())
		}
		if err := w.Flush(); err != nil {
			return
		}
		if t.drainingNow() {
			return
		}
	}
}

// Shutdown stops accepting, wakes idle connections, and waits for all
// in-flight requests to drain. If ctx expires first the remaining
// connections are force-closed and ctx.Err() is returned.
func (t *TCPServer) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	t.draining = true
	l := t.l
	open := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		open = append(open, c)
	}
	t.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, c := range open {
		_ = c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the stragglers. Handlers stuck inside Srv (not
		// blocked on the connection) are abandoned, not awaited: the
		// caller is exiting.
		t.mu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
		return ctx.Err()
	}
}
