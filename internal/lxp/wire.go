package lxp

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mix/internal/xmltree"
)

// This file implements the network transport of LXP: length-prefixed
// JSON frames over a net.Conn, so mediator and wrapper can live in
// different address spaces (the deployment Fig. 7 anticipates). One
// request/response pair per frame; a Client serializes concurrent use.

// maxFrame bounds a single LXP frame; fills larger than this indicate
// a runaway wrapper.
const maxFrame = 64 << 20

// wireTree is the JSON encoding of an xmltree.Tree.
type wireTree struct {
	L string     `json:"l"`
	C []wireTree `json:"c,omitempty"`
}

func toWire(t *xmltree.Tree) wireTree {
	w := wireTree{L: t.Label}
	for _, c := range t.Children {
		w.C = append(w.C, toWire(c))
	}
	return w
}

func fromWire(w wireTree) *xmltree.Tree {
	t := &xmltree.Tree{Label: w.L}
	for _, c := range w.C {
		t.Children = append(t.Children, fromWire(c))
	}
	return t
}

type request struct {
	Op  string   `json:"op"` // "get_root" | "fill" | "fill_many"
	URI string   `json:"uri,omitempty"`
	ID  string   `json:"id,omitempty"`
	IDs []string `json:"ids,omitempty"` // fill_many only
}

type response struct {
	Hole  string                `json:"hole,omitempty"`
	Trees []wireTree            `json:"trees"`
	Many  map[string][]wireTree `json:"many,omitempty"` // fill_many only
	Err   string                `json:"error,omitempty"`
}

func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("lxp: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Client is the buffer-side endpoint of a networked LXP session. It
// implements Server, so a buffer cannot tell a remote wrapper from a
// local one. Safe for concurrent use (requests are serialized).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to an LXP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, req); err != nil {
		return response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return response{}, err
	}
	var resp response
	if err := readFrame(c.r, &resp); err != nil {
		return response{}, err
	}
	if resp.Err != "" {
		return response{}, errors.New("lxp: remote: " + resp.Err)
	}
	return resp, nil
}

// GetRoot implements Server.
func (c *Client) GetRoot(uri string) (string, error) {
	resp, err := c.roundTrip(request{Op: "get_root", URI: uri})
	if err != nil {
		return "", err
	}
	return resp.Hole, nil
}

// Fill implements Server.
func (c *Client) Fill(holeID string) ([]*xmltree.Tree, error) {
	resp, err := c.roundTrip(request{Op: "fill", ID: holeID})
	if err != nil {
		return nil, err
	}
	trees := make([]*xmltree.Tree, len(resp.Trees))
	for i, w := range resp.Trees {
		trees[i] = fromWire(w)
	}
	return trees, nil
}

// FillMany implements BatchServer: the whole batch crosses the wire in
// one fill_many round trip. The remote end answers per-hole fills for
// any backend, so a batched client never requires a batched wrapper —
// only the framing changes.
func (c *Client) FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error) {
	resp, err := c.roundTrip(request{Op: "fill_many", IDs: holeIDs})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*xmltree.Tree, len(resp.Many))
	for id, ws := range resp.Many {
		trees := make([]*xmltree.Tree, len(ws))
		for i, w := range ws {
			trees[i] = fromWire(w)
		}
		out[id] = trees
	}
	return out, nil
}

// Serve answers LXP requests on l with srv until l is closed. Each
// connection is handled on its own goroutine; Serve returns the
// listener's accept error (net.ErrClosed after a clean Close).
func Serve(l net.Listener, srv Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv Server) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req request
		if err := readFrame(r, &req); err != nil {
			return // connection closed or corrupted; drop it
		}
		if err := writeFrame(w, handleRequest(req, srv)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handleRequest dispatches one LXP request to srv.
func handleRequest(req request, srv Server) response {
	var resp response
	switch req.Op {
	case "get_root":
		id, err := srv.GetRoot(req.URI)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Hole = id
		}
	case "fill":
		trees, err := srv.Fill(req.ID)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Trees = make([]wireTree, len(trees))
			for i, t := range trees {
				resp.Trees[i] = toWire(t)
			}
		}
	case "fill_many":
		// FillMany degrades to per-hole fills for non-batching backends,
		// so the single round trip is guaranteed server-side either way.
		res, err := FillMany(srv, req.IDs)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Many = make(map[string][]wireTree, len(res))
			for id, trees := range res {
				ws := make([]wireTree, len(trees))
				for i, t := range trees {
					ws[i] = toWire(t)
				}
				resp.Many[id] = ws
			}
		}
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	return resp
}
