package lxp

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mix/internal/xmltree"
)

// This file implements the network transport of LXP: length-prefixed
// JSON frames over a net.Conn, so mediator and wrapper can live in
// different address spaces (the deployment Fig. 7 anticipates). One
// request/response pair per frame; a Client serializes concurrent use.

// maxFrame bounds a single LXP frame; fills larger than this indicate
// a runaway wrapper.
const maxFrame = 64 << 20

// wireTree is the JSON encoding of an xmltree.Tree.
type wireTree struct {
	L string     `json:"l"`
	C []wireTree `json:"c,omitempty"`
}

func toWire(t *xmltree.Tree) wireTree {
	w := wireTree{L: t.Label}
	for _, c := range t.Children {
		w.C = append(w.C, toWire(c))
	}
	return w
}

func fromWire(w wireTree) *xmltree.Tree {
	t := &xmltree.Tree{Label: w.L}
	for _, c := range w.C {
		t.Children = append(t.Children, fromWire(c))
	}
	return t
}

type request struct {
	Op  string   `json:"op"` // "get_root" | "fill" | "fill_many"
	URI string   `json:"uri,omitempty"`
	ID  string   `json:"id,omitempty"`
	IDs []string `json:"ids,omitempty"` // fill_many only
}

type response struct {
	Hole  string                `json:"hole,omitempty"`
	Trees []wireTree            `json:"trees"`
	Many  map[string][]wireTree `json:"many,omitempty"` // fill_many only
	Err   string                `json:"error,omitempty"`
}

func writeFrame(w io.Writer, v any) error {
	if !wireOptimizations.Load() {
		payload, err := json.Marshal(v)
		if err != nil {
			return err
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err = w.Write(payload)
		return err
	}
	fe := getEncBuf()
	defer putEncBuf(fe)
	fe.buf.Write([]byte{0, 0, 0, 0})
	if err := fe.enc.Encode(v); err != nil {
		return err
	}
	// drop Encode's trailing newline so frames match json.Marshal
	frame := fe.buf.Bytes()
	frame = frame[:len(frame)-1]
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("lxp: frame of %d bytes exceeds limit", n)
	}
	if !wireOptimizations.Load() {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
		return json.Unmarshal(payload, v)
	}
	p := getPayload(int(n))
	defer putPayload(p)
	if _, err := io.ReadFull(r, *p); err != nil {
		return err
	}
	return json.Unmarshal(*p, v)
}

// Client is the buffer-side endpoint of a networked LXP session. It
// implements Server, so a buffer cannot tell a remote wrapper from a
// local one. Safe for concurrent use (requests are serialized).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	intern *xmltree.Interner // label dedup for lean decoding
	arena  xmltree.Arena     // node storage for lean decoding, amortized across frames
}

// Dial connects to an LXP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn),
		intern: xmltree.NewInterner()}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and decodes the reply into lr, which short-lived
// callers keep on the stack.
func (c *Client) roundTrip(req request, lr *leanResponse) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.w, req); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if wireOptimizations.Load() {
		var hdr [4]byte
		if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			return fmt.Errorf("lxp: frame of %d bytes exceeds limit", n)
		}
		p := getPayload(int(n))
		defer putPayload(p)
		if _, err := io.ReadFull(c.r, *p); err != nil {
			return err
		}
		// Decoded trees never alias the pooled payload: labels are
		// interned or copied, nodes live in the decoder's arena.
		if err := decodeResponse(*p, c.intern, &c.arena, lr); err != nil {
			return err
		}
		if lr.err != "" {
			return errors.New("lxp: remote: " + lr.err)
		}
		return nil
	}
	var resp response
	if err := readFrame(c.r, &resp); err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New("lxp: remote: " + resp.Err)
	}
	*lr = leanFromWire(resp)
	return nil
}

// leanFromWire converts a generically-decoded response to tree form.
func leanFromWire(resp response) leanResponse {
	lr := leanResponse{hole: resp.Hole, err: resp.Err}
	if resp.Trees != nil {
		lr.hasTrees = true
		lr.trees = make([]*xmltree.Tree, len(resp.Trees))
		for i, w := range resp.Trees {
			lr.trees[i] = fromWire(w)
		}
	}
	if resp.Many != nil {
		lr.many = make(map[string][]*xmltree.Tree, len(resp.Many))
		for id, ws := range resp.Many {
			trees := make([]*xmltree.Tree, len(ws))
			for i, w := range ws {
				trees[i] = fromWire(w)
			}
			lr.many[id] = trees
		}
	}
	return lr
}

// GetRoot implements Server.
func (c *Client) GetRoot(uri string) (string, error) {
	var resp leanResponse
	if err := c.roundTrip(request{Op: "get_root", URI: uri}, &resp); err != nil {
		return "", err
	}
	return resp.hole, nil
}

// Fill implements Server.
func (c *Client) Fill(holeID string) ([]*xmltree.Tree, error) {
	var resp leanResponse
	if err := c.roundTrip(request{Op: "fill", ID: holeID}, &resp); err != nil {
		return nil, err
	}
	if resp.trees == nil {
		return []*xmltree.Tree{}, nil
	}
	return resp.trees, nil
}

// FillMany implements BatchServer: the whole batch crosses the wire in
// one fill_many round trip. The remote end answers per-hole fills for
// any backend, so a batched client never requires a batched wrapper —
// only the framing changes.
func (c *Client) FillMany(holeIDs []string) (map[string][]*xmltree.Tree, error) {
	var resp leanResponse
	if err := c.roundTrip(request{Op: "fill_many", IDs: holeIDs}, &resp); err != nil {
		return nil, err
	}
	if resp.many == nil {
		return map[string][]*xmltree.Tree{}, nil
	}
	return resp.many, nil
}

// writeResponse answers one request on w, through the lean encoder
// when wire optimizations are on and the generic one otherwise; the
// frames are byte-identical.
func writeResponse(w io.Writer, req request, srv Server) error {
	if wireOptimizations.Load() {
		lr := answerRequest(req, srv)
		return writeLeanFrame(w, &lr)
	}
	return writeFrame(w, handleRequest(req, srv))
}

// Serve answers LXP requests on l with srv until l is closed. Each
// connection is handled on its own goroutine; Serve returns the
// listener's accept error (net.ErrClosed after a clean Close).
func Serve(l net.Listener, srv Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv Server) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req request
		if err := readRequest(r, &req); err != nil {
			return // connection closed or corrupted; drop it
		}
		if err := writeResponse(w, req, srv); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// answerRequest dispatches one LXP request to srv, at the tree level.
func answerRequest(req request, srv Server) leanResponse {
	var lr leanResponse
	switch req.Op {
	case "get_root":
		id, err := srv.GetRoot(req.URI)
		if err != nil {
			lr.err = err.Error()
		} else {
			lr.hole = id
		}
	case "fill":
		trees, err := srv.Fill(req.ID)
		if err != nil {
			lr.err = err.Error()
		} else {
			lr.trees, lr.hasTrees = trees, true
		}
	case "fill_many":
		// FillMany degrades to per-hole fills for non-batching backends,
		// so the single round trip is guaranteed server-side either way.
		res, err := FillMany(srv, req.IDs)
		if err != nil {
			lr.err = err.Error()
		} else {
			if res == nil {
				res = map[string][]*xmltree.Tree{}
			}
			lr.many = res
		}
	default:
		lr.err = fmt.Sprintf("unknown op %q", req.Op)
	}
	return lr
}

// handleRequest dispatches one LXP request to srv, in wire structs —
// the generic-codec path.
func handleRequest(req request, srv Server) response {
	lr := answerRequest(req, srv)
	resp := response{Hole: lr.hole, Err: lr.err}
	if lr.hasTrees {
		resp.Trees = make([]wireTree, len(lr.trees))
		for i, t := range lr.trees {
			resp.Trees[i] = toWire(t)
		}
	}
	if lr.many != nil {
		resp.Many = make(map[string][]wireTree, len(lr.many))
		for id, trees := range lr.many {
			ws := make([]wireTree, len(trees))
			for i, t := range trees {
				ws[i] = toWire(t)
			}
			resp.Many[id] = ws
		}
	}
	return resp
}
