package lxp

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadFrame: no byte stream may panic the LXP codec; truncated,
// malformed, and oversized frames must surface as errors.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	if err := writeFrame(&ok, request{Op: "fill", ID: "0:0"}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte{0, 0})                          // truncated header
	f.Add([]byte{0, 0, 0, 9, '{'})               // truncated payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})   // hostile length prefix
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})          // garbage JSON
	f.Add(append([]byte{0, 0, 0, 4}, "null"...)) // JSON null
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
		var resp response
		_ = readFrame(bytes.NewReader(data), &resp)
	})
}

// FuzzParseHoleID: hole identifiers arrive off the wire, so no input
// may panic the parser.
func FuzzParseHoleID(f *testing.F) {
	for _, seed := range []string{"root", "0/2:5", ":0", "0:", "/:0", "9999999999999999999:0", "0//1:2", "a:b"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, id string) {
		path, start, err := parseHoleID(id)
		if err == nil && start < 0 {
			t.Fatalf("parseHoleID(%q) accepted negative start %d", id, start)
		}
		_ = path
	})
}

// TestReadFrameRejectsHostileLength: the length prefix is checked
// against maxFrame before the payload is allocated.
func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	var req request
	err := readFrame(bytes.NewReader(hdr[:]), &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}
