package lxp

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mix/internal/xmltree"
)

// FuzzReadFrame: no byte stream may panic the LXP codec; truncated,
// malformed, and oversized frames must surface as errors.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	if err := writeFrame(&ok, request{Op: "fill", ID: "0:0"}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte{0, 0})                          // truncated header
	f.Add([]byte{0, 0, 0, 9, '{'})               // truncated payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})   // hostile length prefix
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})          // garbage JSON
	f.Add(append([]byte{0, 0, 0, 4}, "null"...)) // JSON null
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
		var resp response
		_ = readFrame(bytes.NewReader(data), &resp)
	})
}

// FuzzParseHoleID: hole identifiers arrive off the wire, so no input
// may panic the parser — and the allocation-free walkHoleID used by
// Fill must agree with the reference parseHoleID on every input.
func FuzzParseHoleID(f *testing.F) {
	for _, seed := range []string{"root", "0/2:5", ":0", "0:", "/:0", "9999999999999999999:0", "0//1:2", "a:b"} {
		f.Add(seed)
	}
	srv := &TreeServer{Tree: deepTree(4, 3)}
	f.Fuzz(func(t *testing.T, id string) {
		path, start, err := parseHoleID(id)
		if err == nil && start < 0 {
			t.Fatalf("parseHoleID(%q) accepted negative start %d", id, start)
		}
		node, _, wstart, werr := srv.walkHoleID(id)
		if err != nil {
			// walkHoleID may also report "stale" where the reference
			// parser succeeds; it must never accept what the parser
			// rejects for being malformed.
			if werr == nil {
				t.Fatalf("walkHoleID(%q) accepted what parseHoleID rejects (%v)", id, err)
			}
			return
		}
		if werr != nil {
			if !strings.Contains(werr.Error(), "stale") {
				t.Fatalf("walkHoleID(%q) = %v, parseHoleID accepts %v/%d", id, werr, path, start)
			}
			return
		}
		// rest is id[:colon] verbatim; on non-canonical input (leading
		// zeros) it differs from pathString(path) but still names the
		// same node, so continuation ids remain self-consistent.
		if wstart != start {
			t.Fatalf("walkHoleID(%q) start = %d, want %d", id, wstart, start)
		}
		want := srv.Tree
		for _, idx := range path {
			want = want.Child(idx)
		}
		if node != want {
			t.Fatalf("walkHoleID(%q) reached the wrong node", id)
		}
	})
}

// deepTree builds a uniform tree of the given depth and fan-out, so
// walkHoleID has real paths to resolve.
func deepTree(depth, fanout int) *xmltree.Tree {
	t := xmltree.Leaf("n")
	if depth > 0 {
		for i := 0; i < fanout; i++ {
			t.Children = append(t.Children, deepTree(depth-1, fanout))
		}
	}
	return t
}

// TestReadFrameRejectsHostileLength: the length prefix is checked
// against maxFrame before the payload is allocated.
func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	var req request
	err := readFrame(bytes.NewReader(hdr[:]), &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}
