package lxp

import (
	"net"
	"strings"
	"testing"

	"mix/internal/xmltree"
)

func TestValidateFill(t *testing.T) {
	ok := [][]*xmltree.Tree{
		nil,
		{xmltree.Leaf("a")},
		{xmltree.Hole("h1"), xmltree.Leaf("a"), xmltree.Hole("h2")},
		{xmltree.Elem("a", xmltree.Hole("h1"), xmltree.Leaf("x"), xmltree.Hole("h2"))},
		{xmltree.Elem("a", xmltree.Hole("h1"))}, // Example 7: a[∅1] is legal
	}
	for i, trees := range ok {
		if err := ValidateFill("h", trees); err != nil {
			t.Errorf("case %d should validate: %v", i, err)
		}
	}
	bad := [][]*xmltree.Tree{
		{xmltree.Hole("h1")},                                                           // only holes
		{xmltree.Hole("h1"), xmltree.Hole("h2")},                                       // adjacent + only holes
		{xmltree.Leaf("a"), xmltree.Hole("h1"), xmltree.Hole("h2")},                    // adjacent
		{xmltree.Elem("a", xmltree.Hole("h1"), xmltree.Hole("h2"), xmltree.Leaf("x"))}, // nested adjacent
	}
	for i, trees := range bad {
		if err := ValidateFill("h", trees); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestValidateFillNestedOnlyHoleMessage(t *testing.T) {
	err := ValidateFill("hid", []*xmltree.Tree{xmltree.Hole("a"), xmltree.Hole("b")})
	pe, ok := err.(*ProtocolError)
	if !ok {
		t.Fatalf("want ProtocolError, got %T", err)
	}
	if pe.HoleID != "hid" || !strings.Contains(pe.Error(), "hid") {
		t.Fatalf("error = %v", pe)
	}
}

func doc() *xmltree.Tree {
	return xmltree.Elem("catalog",
		xmltree.Elem("book", xmltree.Text("title", "t1"), xmltree.Text("price", "10")),
		xmltree.Elem("book", xmltree.Text("title", "t2"), xmltree.Text("price", "20")),
		xmltree.Elem("book", xmltree.Text("title", "t3"), xmltree.Text("price", "30")),
	)
}

// drainServer fully resolves a server's document by filling every hole.
func drainServer(t *testing.T, s Server, uri string) *xmltree.Tree {
	t.Helper()
	rootID, err := s.GetRoot(uri)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := s.Fill(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("root fill returned %d trees", len(trees))
	}
	root := trees[0]
	for {
		holes := root.Holes()
		if len(holes) == 0 {
			return root
		}
		sub, err := s.Fill(holes[0])
		if err != nil {
			t.Fatalf("fill %q: %v", holes[0], err)
		}
		if err := ValidateFill(holes[0], sub); err != nil {
			t.Fatal(err)
		}
		if !replaceHole(root, holes[0], sub) {
			t.Fatalf("hole %q not found for splice", holes[0])
		}
	}
}

func replaceHole(t *xmltree.Tree, id string, repl []*xmltree.Tree) bool {
	for i, c := range t.Children {
		if c.IsHole() && c.HoleID() == id {
			nc := append([]*xmltree.Tree{}, t.Children[:i]...)
			nc = append(nc, repl...)
			nc = append(nc, t.Children[i+1:]...)
			t.Children = nc
			return true
		}
		if replaceHole(c, id, repl) {
			return true
		}
	}
	return false
}

func TestTreeServerWholeDocument(t *testing.T) {
	d := doc()
	s := &TreeServer{Tree: d} // no chunking: everything inline
	got := drainServer(t, s, "any")
	if !xmltree.Equal(got, d) {
		t.Fatalf("got %v want %v", got, d)
	}
}

func TestTreeServerChunked(t *testing.T) {
	d := doc()
	for _, chunk := range []int{1, 2, 5} {
		for _, inline := range []int{0, 1, 3, 100} {
			s := &TreeServer{Tree: d, Chunk: chunk, InlineLimit: inline}
			got := drainServer(t, s, "any")
			if !xmltree.Equal(got, d) {
				t.Fatalf("chunk=%d inline=%d: got %v", chunk, inline, got)
			}
		}
	}
}

func TestTreeServerChunkBoundsFillSize(t *testing.T) {
	d := doc()
	s := &TreeServer{Tree: d, Chunk: 2, InlineLimit: 1}
	id, _ := s.GetRoot("u")
	trees, err := s.Fill(id)
	if err != nil {
		t.Fatal(err)
	}
	// Root itself: catalog[hole] since its size exceeds the limit.
	if len(trees) != 1 || len(trees[0].Children) != 1 || !trees[0].Children[0].IsHole() {
		t.Fatalf("root fill = %v", trees)
	}
	sub, err := s.Fill(trees[0].Children[0].HoleID())
	if err != nil {
		t.Fatal(err)
	}
	// 2 children + continuation hole.
	if len(sub) != 3 || !sub[2].IsHole() {
		t.Fatalf("chunked fill = %v", sub)
	}
}

func TestTreeServerStaleHole(t *testing.T) {
	s := &TreeServer{Tree: doc()}
	if _, err := s.Fill("9/9:0"); err == nil {
		t.Fatal("stale path should error")
	}
	if _, err := s.Fill("bogus"); err == nil {
		t.Fatal("malformed id should error")
	}
	if _, err := s.Fill("0:x"); err == nil {
		t.Fatal("malformed start should error")
	}
	if _, err := s.Fill("a/b:0"); err == nil {
		t.Fatal("non-numeric path should error")
	}
}

func TestParseHoleID(t *testing.T) {
	path, start, err := parseHoleID("0/2/13:5")
	if err != nil || start != 5 || len(path) != 3 || path[2] != 13 {
		t.Fatalf("parseHoleID: %v %d %v", path, start, err)
	}
	path, start, err = parseHoleID(":0")
	if err != nil || len(path) != 0 || start != 0 {
		t.Fatalf("root-level id: %v %d %v", path, start, err)
	}
}

func TestCountingServer(t *testing.T) {
	s := NewCounting(&TreeServer{Tree: doc(), Chunk: 1, InlineLimit: 1})
	drainServer(t, s, "u")
	snap := s.Counters.Snapshot()
	if snap.Msgs < 3 {
		t.Fatalf("expected several messages, got %d", snap.Msgs)
	}
	if snap.Fills != snap.Msgs-1 {
		t.Fatalf("fills = %d msgs = %d", snap.Fills, snap.Msgs)
	}
	if snap.Bytes == 0 {
		t.Fatal("bytes not accounted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d := doc()
	go Serve(l, &TreeServer{Tree: d, Chunk: 2, InlineLimit: 2})

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := drainServer(t, c, "u")
	if !xmltree.Equal(got, d) {
		t.Fatalf("networked document differs: %v", got)
	}
}

func TestWireRemoteError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, &TreeServer{Tree: doc()})
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Fill("bogus"); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("expected remote error, got %v", err)
	}
	// The connection survives an application-level error.
	if _, err := c.GetRoot("u"); err != nil {
		t.Fatalf("connection should survive: %v", err)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d := doc()
	go Serve(l, &TreeServer{Tree: d, Chunk: 1})
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			id, err := c.GetRoot("u")
			if err != nil {
				done <- err
				return
			}
			if _, err := c.Fill(id); err != nil {
				done <- err
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
