package lxp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mix/internal/xmltree"
)

// Lean LXP codec: fill responses carry whole subtree forests, so the
// generic encoding/json path pays one wireTree struct, one conversion
// and several small allocations per node, per direction. The lean
// encoder writes response JSON directly from []*xmltree.Tree, and the
// lean decoder builds trees straight from the payload — arena nodes,
// interned labels — without the wireTree intermediary. The bytes on
// the wire are identical to the encoding/json framing (field order,
// omitempty holes, "trees":null vs [], sorted "many" keys, HTML-safe
// string escaping), so either endpoint can run with the optimization
// off and nothing observable changes.

var wireOptimizations atomic.Bool

func init() { wireOptimizations.Store(true) }

// SetWireOptimizations toggles the lean codec and the pooled frame
// buffers (default on). Off, encode/decode go through encoding/json
// exactly as before; frames are byte-identical either way.
func SetWireOptimizations(on bool) { wireOptimizations.Store(on) }

var (
	bufGets atomic.Int64 // total pool fetches
	bufNews atomic.Int64 // fetches that had to allocate
)

// BufferPoolStats reports total pooled-buffer fetches and how many of
// them had to allocate, for /metrics; gets-news fetches were served by
// reuse.
func BufferPoolStats() (gets, news int64) {
	return bufGets.Load(), bufNews.Load()
}

// keepCap bounds what the frame pools retain; catalog-sized fills
// beyond it go back to the collector instead of staying pinned.
const keepCap = 1 << 20

// frameEncoder bundles the scratch buffer with a json.Encoder bound to
// it, so the encoder is recycled along with the bytes (the lean encoder
// uses only the buffer; the generic fallback uses both).
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encBufPool = sync.Pool{New: func() any {
	bufNews.Add(1)
	fe := &frameEncoder{}
	fe.enc = json.NewEncoder(&fe.buf)
	return fe
}}

func getEncBuf() *frameEncoder {
	bufGets.Add(1)
	fe := encBufPool.Get().(*frameEncoder)
	fe.buf.Reset()
	return fe
}

func putEncBuf(fe *frameEncoder) {
	if fe.buf.Cap() <= keepCap {
		encBufPool.Put(fe)
	}
}

var payloadPool = sync.Pool{New: func() any {
	bufNews.Add(1)
	s := make([]byte, 0, 4096)
	return &s
}}

func getPayload(n int) *[]byte {
	bufGets.Add(1)
	p := payloadPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putPayload(p *[]byte) {
	if cap(*p) <= keepCap {
		payloadPool.Put(p)
	}
}

// leanResponse is a response at the tree level, before (encode) or
// after (decode) the wire. hasTrees distinguishes a fill's "trees":[]
// from the "trees":null of every other op, mirroring the nil/non-nil
// split of response.Trees.
type leanResponse struct {
	hole     string
	trees    []*xmltree.Tree
	hasTrees bool
	many     map[string][]*xmltree.Tree
	err      string
}

// --- encoding ---------------------------------------------------------------

// jsonSafe reports whether s needs no escaping under encoding/json's
// default (HTML-escaping) encoder.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// encodeString appends the JSON encoding of s: a raw copy for plain
// ASCII, encoding/json for anything that needs escaping, so the output
// matches json.Marshal byte for byte.
func encodeString(buf *bytes.Buffer, s string) {
	if jsonSafe(s) {
		buf.WriteByte('"')
		buf.WriteString(s)
		buf.WriteByte('"')
		return
	}
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b = []byte(`""`)
	}
	buf.Write(b)
}

// encodeTree appends the wireTree encoding of t:
// {"l":label} for leaves, {"l":label,"c":[…]} otherwise.
func encodeTree(buf *bytes.Buffer, t *xmltree.Tree) {
	buf.WriteString(`{"l":`)
	encodeString(buf, t.Label)
	if len(t.Children) > 0 {
		buf.WriteString(`,"c":[`)
		for i, c := range t.Children {
			if i > 0 {
				buf.WriteByte(',')
			}
			encodeTree(buf, c)
		}
		buf.WriteString(`]`)
	}
	buf.WriteByte('}')
}

func encodeForest(buf *bytes.Buffer, trees []*xmltree.Tree) {
	buf.WriteByte('[')
	for i, t := range trees {
		if i > 0 {
			buf.WriteByte(',')
		}
		encodeTree(buf, t)
	}
	buf.WriteByte(']')
}

// encodeResponse appends the response JSON, matching
// json.Marshal(response{…}) byte for byte.
func encodeResponse(buf *bytes.Buffer, lr *leanResponse) {
	buf.WriteByte('{')
	if lr.hole != "" {
		buf.WriteString(`"hole":`)
		encodeString(buf, lr.hole)
		buf.WriteByte(',')
	}
	buf.WriteString(`"trees":`)
	if lr.hasTrees {
		encodeForest(buf, lr.trees)
	} else {
		buf.WriteString("null")
	}
	if len(lr.many) > 0 { // mirror encoding/json omitempty: empty maps vanish
		buf.WriteString(`,"many":{`)
		ids := make([]string, 0, len(lr.many))
		for id := range lr.many {
			ids = append(ids, id)
		}
		sortStrings(ids)
		for i, id := range ids {
			if i > 0 {
				buf.WriteByte(',')
			}
			encodeString(buf, id)
			buf.WriteByte(':')
			encodeForest(buf, lr.many[id])
		}
		buf.WriteByte('}')
	}
	if lr.err != "" {
		buf.WriteString(`,"error":`)
		encodeString(buf, lr.err)
	}
	buf.WriteByte('}')
}

// sortStrings is an allocation-free insertion sort: many maps are
// small, and json.Marshal sorts map keys, so we must too.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// writeLeanFrame writes one length-prefixed lean-encoded response
// frame, assembled in a pooled buffer and sent with a single Write.
func writeLeanFrame(w io.Writer, lr *leanResponse) error {
	fe := getEncBuf()
	defer putEncBuf(fe)
	buf := &fe.buf
	buf.Write([]byte{0, 0, 0, 0})
	encodeResponse(buf, lr)
	frame := buf.Bytes()
	if len(frame)-4 > maxFrame {
		return fmt.Errorf("lxp: frame of %d bytes exceeds limit", len(frame)-4)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

// --- decoding ---------------------------------------------------------------

// decoder is a recursive-descent parser for the response grammar. It
// accepts any JSON object (unknown fields are skipped, fields may come
// in any order, whitespace is allowed) so it interoperates with
// non-lean peers; trees are built from an arena with interned labels.
type decoder struct {
	b       []byte
	i       int
	depth   int // open {/[ nesting, bounded like encoding/json
	in      *xmltree.Interner
	arena   *xmltree.Arena
	scratch []*xmltree.Tree
}

// maxDecodeDepth mirrors encoding/json's nesting bound, so inputs the
// generic decoder rejects as too deep are rejected here too (and the
// recursion cannot exhaust the stack).
const maxDecodeDepth = 10000

var errBadJSON = fmt.Errorf("lxp: malformed response payload")

// decodeResponse parses one response payload. in may be nil (labels
// are then plain strings); arena may be nil (a throwaway arena is used
// then). A long-lived caller such as Client passes a persistent arena
// so node chunks amortize across many small frames.
// The result is written into lr (reset first) so short-lived callers
// can keep it on the stack.
func decodeResponse(payload []byte, in *xmltree.Interner, arena *xmltree.Arena, lr *leanResponse) error {
	if arena == nil {
		arena = new(xmltree.Arena)
	}
	d := decoder{b: payload, in: in, arena: arena}
	*lr = leanResponse{}
	if d.null() {
		// json.Unmarshal treats a null document as a no-op.
		d.ws()
		if d.i != len(d.b) {
			return errBadJSON
		}
		return nil
	}
	if err := d.object(func(key string) error {
		switch key {
		case "hole":
			if d.null() {
				return nil // null into a string field is a no-op
			}
			s, err := d.str(false)
			lr.hole = s
			return err
		case "trees":
			if d.null() {
				return nil
			}
			trees, err := d.forest()
			lr.trees, lr.hasTrees = trees, true
			return err
		case "many":
			if d.null() {
				return nil
			}
			if lr.many == nil { // duplicate "many" keys merge, as encoding/json does
				lr.many = map[string][]*xmltree.Tree{}
			}
			return d.object(func(id string) error {
				if d.null() {
					lr.many[id] = []*xmltree.Tree{}
					return nil
				}
				trees, err := d.forest()
				lr.many[id] = trees
				return err
			})
		case "error":
			if d.null() {
				return nil
			}
			s, err := d.str(false)
			lr.err = s
			return err
		default:
			return d.skip()
		}
	}); err != nil {
		return err
	}
	d.ws()
	if d.i != len(d.b) {
		return errBadJSON
	}
	return nil
}

func (d *decoder) ws() {
	for d.i < len(d.b) {
		switch d.b[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *decoder) expect(c byte) error {
	d.ws()
	if d.i >= len(d.b) || d.b[d.i] != c {
		return errBadJSON
	}
	d.i++
	return nil
}

// null consumes a literal null if present.
func (d *decoder) null() bool {
	d.ws()
	if d.i+4 <= len(d.b) && string(d.b[d.i:d.i+4]) == "null" {
		d.i += 4
		return true
	}
	return false
}

// object parses {"key":value,…}, calling field for every value; field
// must consume it.
func (d *decoder) object(field func(key string) error) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	if d.depth++; d.depth > maxDecodeDepth {
		return errBadJSON
	}
	defer func() { d.depth-- }()
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == '}' {
		d.i++
		return nil
	}
	for {
		key, err := d.str(false)
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		d.ws()
		if d.i >= len(d.b) {
			return errBadJSON
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case '}':
			d.i++
			return nil
		default:
			return errBadJSON
		}
	}
}

// str parses a JSON string. Plain strings are sliced (and, for
// interned labels, deduplicated without allocating on repeats);
// escaped strings fall back to encoding/json for exact semantics.
func (d *decoder) str(intern bool) (string, error) {
	if err := d.expect('"'); err != nil {
		return "", err
	}
	start := d.i
	for d.i < len(d.b) {
		switch c := d.b[d.i]; {
		case c == '"':
			raw := d.b[start:d.i]
			d.i++
			if intern && d.in != nil {
				return d.in.InternBytes(raw), nil
			}
			return string(raw), nil
		case c == '\\' || c < 0x20 || c >= 0x80:
			// Escapes, control bytes and non-ASCII (which json coerces
			// to valid UTF-8) take the exact-semantics path.
			return d.strSlow(start - 1)
		default:
			d.i++
		}
	}
	return "", errBadJSON
}

// strSlow re-scans an escaped string token from its opening quote and
// hands it to encoding/json.
func (d *decoder) strSlow(open int) (string, error) {
	i := open + 1
	for i < len(d.b) {
		switch d.b[i] {
		case '\\':
			i += 2
		case '"':
			var s string
			if err := json.Unmarshal(d.b[open:i+1], &s); err != nil {
				return "", errBadJSON
			}
			d.i = i + 1
			if d.in != nil {
				s = d.in.Intern(s)
			}
			return s, nil
		default:
			i++
		}
	}
	return "", errBadJSON
}

// forest parses [tree,…]. The returned slice is arena-backed (collected
// through the shared scratch stack) and always non-nil, preserving the
// "trees":[] vs null distinction.
func (d *decoder) forest() ([]*xmltree.Tree, error) {
	if err := d.expect('['); err != nil {
		return nil, err
	}
	if d.depth++; d.depth > maxDecodeDepth {
		return nil, errBadJSON
	}
	defer func() { d.depth-- }()
	d.ws()
	if d.i < len(d.b) && d.b[d.i] == ']' {
		d.i++
		return []*xmltree.Tree{}, nil
	}
	mark := len(d.scratch)
	for {
		t, err := d.tree(false)
		if err != nil {
			return nil, err
		}
		d.scratch = append(d.scratch, t)
		d.ws()
		if d.i >= len(d.b) {
			return nil, errBadJSON
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case ']':
			d.i++
			out := d.arena.Children(d.scratch[mark:])
			d.scratch = d.scratch[:mark]
			return out, nil
		default:
			return nil, errBadJSON
		}
	}
}

// tree parses one wireTree object into an arena-backed node. A null
// element decodes as a zero node, matching []wireTree semantics.
// holeChild marks the child of a hole element: its label is the hole
// identifier — unique for the session, so interning it would only grow
// the interner's table without ever deduplicating anything.
func (d *decoder) tree(holeChild bool) (*xmltree.Tree, error) {
	if d.null() {
		return d.arena.NewNode(""), nil
	}
	t := d.arena.NewNode("")
	mark := len(d.scratch)
	err := d.object(func(key string) error {
		switch key {
		case "l":
			if d.null() {
				return nil
			}
			s, err := d.str(!holeChild)
			t.Label = s
			return err
		case "c":
			d.scratch = d.scratch[:mark] // duplicate "c" keys: last wins
			if d.null() {
				return nil
			}
			if err := d.expect('['); err != nil {
				return err
			}
			if d.depth++; d.depth > maxDecodeDepth {
				return errBadJSON
			}
			defer func() { d.depth-- }()
			d.ws()
			if d.i < len(d.b) && d.b[d.i] == ']' {
				d.i++
				return nil
			}
			for {
				c, err := d.tree(t.Label == xmltree.HoleLabel)
				if err != nil {
					return err
				}
				d.scratch = append(d.scratch, c)
				d.ws()
				if d.i >= len(d.b) {
					return errBadJSON
				}
				switch d.b[d.i] {
				case ',':
					d.i++
				case ']':
					d.i++
					return nil
				default:
					return errBadJSON
				}
			}
		default:
			return d.skip()
		}
	})
	if err != nil {
		return nil, err
	}
	t.Children = d.arena.Children(d.scratch[mark:])
	d.scratch = d.scratch[:mark]
	return t, nil
}

// skip consumes one JSON value of any kind.
func (d *decoder) skip() error {
	d.ws()
	if d.i >= len(d.b) {
		return errBadJSON
	}
	switch c := d.b[d.i]; c {
	case '"':
		_, err := d.str(false)
		return err
	case '{':
		return d.object(func(string) error { return d.skip() })
	case '[':
		if err := d.expect('['); err != nil {
			return err
		}
		if d.depth++; d.depth > maxDecodeDepth {
			return errBadJSON
		}
		defer func() { d.depth-- }()
		d.ws()
		if d.i < len(d.b) && d.b[d.i] == ']' {
			d.i++
			return nil
		}
		for {
			if err := d.skip(); err != nil {
				return err
			}
			d.ws()
			if d.i >= len(d.b) {
				return errBadJSON
			}
			switch d.b[d.i] {
			case ',':
				d.i++
			case ']':
				d.i++
				return nil
			default:
				return errBadJSON
			}
		}
	default: // number, true, false, null
		start := d.i
		for d.i < len(d.b) {
			switch d.b[d.i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				if d.i == start {
					return errBadJSON
				}
				return nil
			default:
				d.i++
			}
		}
		if d.i == start {
			return errBadJSON
		}
		return nil
	}
}

// --- requests ---------------------------------------------------------------

// encodeRequest writes req exactly as json.Marshal renders the request
// struct: field order op, uri, id, ids, with omitempty semantics.
func encodeRequest(buf *bytes.Buffer, req request) {
	buf.WriteString(`{"op":`)
	encodeString(buf, req.Op)
	if req.URI != "" {
		buf.WriteString(`,"uri":`)
		encodeString(buf, req.URI)
	}
	if req.ID != "" {
		buf.WriteString(`,"id":`)
		encodeString(buf, req.ID)
	}
	if len(req.IDs) > 0 {
		buf.WriteString(`,"ids":[`)
		for i, id := range req.IDs {
			if i > 0 {
				buf.WriteByte(',')
			}
			encodeString(buf, id)
		}
		buf.WriteByte(']')
	}
	buf.WriteByte('}')
}

// writeRequest writes one request frame: lean into a pooled buffer when
// wire optimizations are on, encoding/json otherwise. The frame bytes
// are identical either way.
func writeRequest(w io.Writer, req request) error {
	if !wireOptimizations.Load() {
		return writeFrame(w, req)
	}
	fe := getEncBuf()
	defer putEncBuf(fe)
	buf := &fe.buf
	buf.Write([]byte{0, 0, 0, 0})
	encodeRequest(buf, req)
	frame := buf.Bytes()
	if len(frame)-4 > maxFrame {
		return fmt.Errorf("lxp: frame of %d bytes exceeds limit", len(frame)-4)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	_, err := w.Write(frame)
	return err
}

// decodeRequest parses one request payload with the same tolerance as
// decodeResponse: any field order, whitespace, unknown fields skipped,
// null fields ignored.
func decodeRequest(payload []byte) (request, error) {
	d := decoder{b: payload}
	var req request
	if d.null() {
		d.ws()
		if d.i != len(d.b) {
			return req, errBadJSON
		}
		return req, nil
	}
	if err := d.object(func(key string) error {
		switch key {
		case "op":
			if d.null() {
				return nil
			}
			s, err := d.str(false)
			req.Op = s
			return err
		case "uri":
			if d.null() {
				return nil
			}
			s, err := d.str(false)
			req.URI = s
			return err
		case "id":
			if d.null() {
				return nil
			}
			s, err := d.str(false)
			req.ID = s
			return err
		case "ids":
			if d.null() {
				return nil
			}
			ids, err := d.stringArray()
			req.IDs = ids
			return err
		default:
			return d.skip()
		}
	}); err != nil {
		return req, err
	}
	d.ws()
	if d.i != len(d.b) {
		return req, errBadJSON
	}
	return req, nil
}

// stringArray parses ["s",…]; null elements decode as "", matching
// encoding/json's []string semantics.
func (d *decoder) stringArray() ([]string, error) {
	if err := d.expect('['); err != nil {
		return nil, err
	}
	if d.depth++; d.depth > maxDecodeDepth {
		return nil, errBadJSON
	}
	defer func() { d.depth-- }()
	d.ws()
	out := []string{}
	if d.i < len(d.b) && d.b[d.i] == ']' {
		d.i++
		return out, nil
	}
	for {
		if d.null() {
			out = append(out, "")
		} else {
			s, err := d.str(false)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		d.ws()
		if d.i >= len(d.b) {
			return nil, errBadJSON
		}
		switch d.b[d.i] {
		case ',':
			d.i++
		case ']':
			d.i++
			return out, nil
		default:
			return nil, errBadJSON
		}
	}
}

// readRequest reads one request frame from r, through a pooled payload
// and the lean parser when wire optimizations are on. Decoded strings
// never alias the pooled payload.
func readRequest(r io.Reader, req *request) error {
	if !wireOptimizations.Load() {
		return readFrame(r, req)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("lxp: frame of %d bytes exceeds limit", n)
	}
	p := getPayload(int(n))
	defer putPayload(p)
	if _, err := io.ReadFull(r, *p); err != nil {
		return err
	}
	rq, err := decodeRequest(*p)
	if err != nil {
		return err
	}
	*req = rq
	return nil
}
