package xmltree

import (
	"fmt"
	"testing"
)

func benchDoc(n int) *Tree {
	t := Elem("catalog")
	for i := 0; i < n; i++ {
		t.Children = append(t.Children, Elem("book",
			Text("title", fmt.Sprintf("t%d", i)),
			Text("price", fmt.Sprintf("%d", i)),
		))
	}
	return t
}

func BenchmarkMarshalXML(b *testing.B) {
	d := benchDoc(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MarshalXML(d)
	}
}

func BenchmarkUnmarshalXML(b *testing.B) {
	s := MarshalXML(benchDoc(1000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalXML(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonical(b *testing.B) {
	d := benchDoc(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Canonical()
	}
}

func BenchmarkWalk(b *testing.B) {
	d := benchDoc(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		d.Walk(func(*Tree, int) bool { n++; return true })
	}
}
