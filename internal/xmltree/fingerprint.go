package xmltree

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Structural fingerprints.
//
// Equality-heavy operators (distinct, groupBy, difference, hash-join
// buckets) traditionally key their sets on Canonical(), which costs a
// full serialization of the subtree — O(size) allocations per key. A
// Fingerprint is a 128-bit structural hash with the property
//
//	Equal(t, u)  ⇒  t.Fingerprint() == u.Fingerprint()
//
// so operators can compare 16 bytes instead of strings; the (vanishing,
// but possible) converse failure — two structurally different trees
// with the same fingerprint — is handled by the callers' collision
// fallback, which re-checks Equal on fingerprint-equal values.
//
// The hash is FNV-1a over a prefix-free encoding of the tree: each
// label is fed length-prefixed, and child lists are bracketed by
// sentinel bytes, so "a"["b"] and "ab" cannot collide byte-wise. The
// value is deterministic within a process *and* across processes (no
// random seed), so fingerprints of copy-on-read region-cache clones, of
// re-materialized binding values, and of trees decoded from the wire
// all agree as long as the trees are structurally equal.
//
// Fingerprints are memoized on the node. Memoization is race-free
// (single-writer CAS; concurrent readers either see the published value
// or recompute the identical one) but assumes the tree is no longer
// mutated — the package-wide immutability convention. Do not fingerprint
// trees that still receive hole fills.

// Fingerprint is a 128-bit structural hash of a Tree.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the zero fingerprint. The hash never
// produces the zero value for a non-nil tree (the offset basis is mixed
// in), so zero doubles as "absent".
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// AppendKey appends the fingerprint's 16 bytes (big-endian Hi then Lo)
// to dst — the compact map-key form used by operator key strings.
func (f Fingerprint) AppendKey(dst []byte) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], f.Hi)
	binary.BigEndian.PutUint64(b[8:], f.Lo)
	return append(dst, b[:]...)
}

func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// FNV-1a 128-bit constants (FNV-0/FNV-1a specification).
const (
	fnvOffsetHi = 0x6c62272e07bb0142
	fnvOffsetLo = 0x62b821756295c58d
	// prime = 2^88 + 2^8 + 0x3b; as two limbs: hi = 1<<24, lo = 0x13b.
	fnvPrimeLo    = 0x13b
	fnvPrimeShift = 24 // prime hi limb = 1 << fnvPrimeShift
)

// fnv128a carries the running 128-bit FNV-1a state.
type fnv128a struct {
	hi, lo uint64
}

func fnvInit() fnv128a { return fnv128a{hi: fnvOffsetHi, lo: fnvOffsetLo} }

// mulPrime multiplies the state by the 128-bit FNV prime mod 2^128:
// s*prime = s*2^88 + s*0x13b.
func (s *fnv128a) mulPrime() {
	// s * 0x13b
	carry, lo := bits.Mul64(s.lo, fnvPrimeLo)
	hi := s.hi*fnvPrimeLo + carry
	// + s * 2^88  (only the low 40 bits of s.lo survive the shift)
	hi += s.lo << fnvPrimeShift
	s.hi, s.lo = hi, lo
}

func (s *fnv128a) writeByte(b byte) {
	s.lo ^= uint64(b)
	s.mulPrime()
}

func (s *fnv128a) writeString(str string) {
	for i := 0; i < len(str); i++ {
		s.writeByte(str[i])
	}
}

func (s *fnv128a) writeUint64(v uint64) {
	for i := 0; i < 8; i++ {
		s.writeByte(byte(v >> (8 * i)))
	}
}

// Structure sentinels fed around labels and child lists. Labels are
// length-prefixed, so no label content can imitate them.
const (
	fpTagNode  = 0x01
	fpTagOpen  = 0x02
	fpTagClose = 0x03
)

// Fingerprint counters, exposed on the daemon's /metrics as mix_fp_*.
var (
	fpComputed atomic.Int64 // fingerprints computed from node content
	fpHits     atomic.Int64 // fingerprints answered from the node memo
)

// FingerprintStats reports how many fingerprints were computed fresh
// versus served from node memos since process start.
func FingerprintStats() (computed, hits int64) {
	return fpComputed.Load(), fpHits.Load()
}

// Fingerprint returns the node's structural fingerprint, computing and
// memoizing it (and every descendant's) on first use. The value is
// compositional — a node hashes its length-prefixed label plus the
// fingerprints of its children — so it is identical whether or not any
// subtree was fingerprinted before, and shared subtrees (region-cache
// clones, reused source fragments) are hashed once per content, not
// once per referencing tree. The computation allocates nothing.
func (t *Tree) Fingerprint() Fingerprint {
	if t == nil {
		return Fingerprint{}
	}
	if t.fpState.Load() == fpSet {
		fpHits.Add(1)
		return Fingerprint{Hi: t.fpHi, Lo: t.fpLo}
	}
	s := fnvInit()
	s.writeByte(fpTagNode)
	s.writeUint64(uint64(len(t.Label)))
	s.writeString(t.Label)
	s.writeByte(fpTagOpen)
	for _, c := range t.Children {
		cf := c.Fingerprint()
		s.writeUint64(cf.Hi)
		s.writeUint64(cf.Lo)
	}
	s.writeByte(fpTagClose)
	fp := Fingerprint{Hi: s.hi, Lo: s.lo}
	fpComputed.Add(1)
	// Single-writer publication: losers of the race simply skip the
	// memo — they computed the identical value anyway.
	if t.fpState.CompareAndSwap(fpUnset, fpBusy) {
		t.fpHi, t.fpLo = fp.Hi, fp.Lo
		t.fpState.Store(fpSet)
	}
	return fp
}

// AtomFingerprint hashes the node's *atomic form* — the leaf label, or
// for an element the concatenated text content, exactly the reduction
// Cmp equality and hash-join bucket keys apply to mixed element/leaf
// comparisons. Two trees whose atoms are string-equal always share an
// AtomFingerprint even when their structures differ (zip[92093] vs the
// leaf 92093), which is what makes it a sound hash-join bucket key: the
// fingerprint is a necessary condition for atom equality. The walk is
// allocation-free and not memoized (atoms are typically tiny).
func (t *Tree) AtomFingerprint() Fingerprint {
	s := fnvInit()
	if t != nil {
		t.atomInto(&s)
	}
	return Fingerprint{Hi: s.hi, Lo: s.lo}
}

func (t *Tree) atomInto(s *fnv128a) {
	if t.IsLeaf() {
		s.writeString(t.Label)
		return
	}
	for _, c := range t.Children {
		c.atomInto(s)
	}
}
