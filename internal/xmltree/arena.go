package xmltree

// Arena bulk-allocates Tree nodes and the backing arrays of their
// Children slices in fixed-size chunks, so materializing an n-node
// subtree costs O(n/chunk) heap allocations instead of O(n). Nodes are
// handed out as pointers into chunk slices; a chunk is never grown in
// place (only replaced by a fresh chunk), so issued pointers stay
// valid for the life of the trees.
//
// An Arena is single-use scratch state for one materialization; it is
// not safe for concurrent use. The trees it produces are ordinary
// immutable *Tree values with ordinary lifetimes — the chunks stay
// reachable exactly as long as any node carved from them is.
type Arena struct {
	nodes []Tree  // current node chunk; replaced, never regrown
	ptrs  []*Tree // current child-pointer chunk; replaced, never regrown
}

const arenaChunk = 64

// NewNode returns a fresh zero-children node with the given label.
func (a *Arena) NewNode(label string) *Tree {
	if len(a.nodes) == cap(a.nodes) {
		a.nodes = make([]Tree, 0, arenaChunk)
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	t := &a.nodes[len(a.nodes)-1]
	t.Label = label
	return t
}

// Children copies kids into arena-backed storage and returns the
// stable slice (nil for an empty kid list). The returned slice has no
// spare capacity, so appending to it cannot clobber a neighbour.
func (a *Arena) Children(kids []*Tree) []*Tree {
	n := len(kids)
	if n == 0 {
		return nil
	}
	if cap(a.ptrs)-len(a.ptrs) < n {
		c := arenaChunk
		if n > c {
			c = n
		}
		a.ptrs = make([]*Tree, 0, c)
	}
	out := a.ptrs[len(a.ptrs) : len(a.ptrs)+n : len(a.ptrs)+n]
	a.ptrs = a.ptrs[:len(a.ptrs)+n]
	copy(out, kids)
	return out
}
