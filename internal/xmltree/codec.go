package xmltree

import (
	"fmt"
	"strings"
	"unicode"
)

// This file implements parsing and serialization between Trees and a
// compact XML surface syntax. The serializer emits well-formed XML
// (entity-escaped); the parser accepts the serializer's output plus
// ordinary hand-written XML without attributes, processing
// instructions, or doctypes. Comments are skipped. Attributes, if
// present in the input, are rejected with a descriptive error because
// the paper's data model excludes them (see package comment).

// MarshalXML renders t as a single-line XML string. A leaf is rendered
// as character content when it appears under an element; a whole-tree
// leaf renders as <label/> if the label is a valid name, otherwise as
// escaped text.
func MarshalXML(t *Tree) string {
	var b strings.Builder
	writeXML(&b, t, -1)
	return b.String()
}

// MarshalIndent renders t as indented multi-line XML using two-space
// indentation, for human inspection.
func MarshalIndent(t *Tree) string {
	var b strings.Builder
	writeXML(&b, t, 0)
	return b.String()
}

func writeXML(b *strings.Builder, t *Tree, indent int) {
	if t == nil {
		return
	}
	pad := ""
	if indent >= 0 {
		pad = strings.Repeat("  ", indent)
	}
	if t.IsLeaf() {
		b.WriteString(pad)
		b.WriteString(escapeText(t.Label))
		if indent >= 0 {
			b.WriteByte('\n')
		}
		return
	}
	// Element with only leaf children that are text content: render inline.
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(t.Label)
	b.WriteByte('>')
	inline := indent < 0 || allLeaves(t)
	if !inline {
		b.WriteByte('\n')
		for _, c := range t.Children {
			writeXML(b, c, indent+1)
		}
		b.WriteString(pad)
	} else {
		for _, c := range t.Children {
			writeXML(b, c, -1)
		}
	}
	b.WriteString("</")
	b.WriteString(t.Label)
	b.WriteByte('>')
	if indent >= 0 {
		b.WriteByte('\n')
	}
}

func allLeaves(t *Tree) bool {
	for _, c := range t.Children {
		if !c.IsLeaf() {
			return false
		}
	}
	return true
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeText(s string) string { return textEscaper.Replace(s) }

// ParseError describes a syntax error in an XML input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmltree: parse error at offset %d: %s", e.Offset, e.Msg)
}

// UnmarshalXML parses a single XML element (optionally surrounded by
// whitespace) into a Tree. Character content is split off into leaf
// children; pure-whitespace content between elements is dropped.
func UnmarshalXML(s string) (*Tree, error) {
	p := &parser{src: s}
	p.skipSpaceAndComments()
	t, err := p.element()
	if err != nil {
		return nil, err
	}
	p.skipSpaceAndComments()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing data after document element")
	}
	return t, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpaceAndComments() {
	for {
		for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
			p.pos++
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<?") {
			end := strings.Index(p.src[p.pos+2:], "?>")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 2 + end + 2
			continue
		}
		return
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || unicode.IsLetter(rune(c))
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) name() (string, error) {
	start := p.pos
	if p.pos >= len(p.src) || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected element name")
	}
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// element parses <name>content</name> or <name/>.
func (p *parser) element() (*Tree, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	p.skipInTagSpace()
	if p.pos < len(p.src) && p.src[p.pos] != '>' && p.src[p.pos] != '/' {
		return nil, p.errf("attributes are not supported by the tree model (element %q)", name)
	}
	if strings.HasPrefix(p.src[p.pos:], "/>") {
		p.pos += 2
		return Elem(name), nil
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '>' {
		return nil, p.errf("malformed start tag %q", name)
	}
	p.pos++
	t := Elem(name)
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("unexpected end of input inside element %q", name)
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			end, err := p.name()
			if err != nil {
				return nil, err
			}
			if end != name {
				return nil, p.errf("mismatched end tag </%s> for <%s>", end, name)
			}
			p.skipInTagSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '>' {
				return nil, p.errf("malformed end tag %q", end)
			}
			p.pos++
			return t, nil
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") || strings.HasPrefix(p.src[p.pos:], "<?") {
			p.skipSpaceAndComments()
			continue
		}
		if p.src[p.pos] == '<' {
			child, err := p.element()
			if err != nil {
				return nil, err
			}
			t.Children = append(t.Children, child)
			continue
		}
		text, err := p.text()
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(text) != "" {
			t.Children = append(t.Children, Leaf(text))
		}
	}
}

func (p *parser) skipInTagSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *parser) text() (string, error) {
	var b strings.Builder
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		if p.src[p.pos] == '&' {
			r, n, err := p.entity()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
			p.pos += n
			continue
		}
		b.WriteByte(p.src[p.pos])
		p.pos++
	}
	// Collapse surrounding whitespace of mixed content conservatively:
	// keep interior text as written but trim pure layout whitespace.
	s := b.String()
	if strings.TrimSpace(s) == "" {
		return s, nil
	}
	return strings.TrimSpace(s), nil
}

func (p *parser) entity() (string, int, error) {
	rest := p.src[p.pos:]
	for ent, r := range map[string]string{
		"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": "\"", "&apos;": "'",
	} {
		if strings.HasPrefix(rest, ent) {
			return r, len(ent), nil
		}
	}
	return "", 0, p.errf("unsupported entity")
}

// ParseBracket parses the paper's bracket notation produced by
// Tree.String, e.g. "bs[b[H[home[addr[La Jolla],zip[91220]]]]]".
// Labels may contain any characters except '[', ']' and ','.
func ParseBracket(s string) (*Tree, error) {
	p := &bracketParser{src: s}
	t, err := p.tree()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, &ParseError{Offset: p.pos, Msg: "trailing data"}
	}
	return t, nil
}

type bracketParser struct {
	src string
	pos int
}

func (p *bracketParser) skip() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *bracketParser) tree() (*Tree, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("[],", rune(p.src[p.pos])) {
		p.pos++
	}
	label := strings.TrimSpace(p.src[start:p.pos])
	if label == "" {
		return nil, &ParseError{Offset: start, Msg: "empty label"}
	}
	t := &Tree{Label: label}
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		p.pos++
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return t, nil
		}
		for {
			c, err := p.tree()
			if err != nil {
				return nil, err
			}
			t.Children = append(t.Children, c)
			p.skip()
			if p.pos >= len(p.src) {
				return nil, &ParseError{Offset: p.pos, Msg: "unterminated '['"}
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ']' {
				p.pos++
				return t, nil
			}
			return nil, &ParseError{Offset: p.pos, Msg: "expected ',' or ']'"}
		}
	}
	return t, nil
}
