package xmltree

import (
	"sync"
	"sync/atomic"
)

// Interner deduplicates label strings. XML documents repeat a small
// vocabulary of element names over an arbitrarily large node count, so
// interning the labels of decoded trees collapses the per-node string
// allocations of a whole catalog to one allocation per *distinct*
// label. Engines intern the labels their DFA caches key on; LXP clients
// intern the labels of every tree they decode off the wire.
//
// An Interner is safe for concurrent use. It grows with the label
// vocabulary (not the document size); callers that decode untrusted
// input with unbounded vocabularies should scope the interner to the
// connection so it is released with it.
type Interner struct {
	mu   sync.Mutex
	m    map[string]string
	hits atomic.Int64
	miss atomic.Int64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

// Intern returns the canonical copy of s, registering it on first use.
func (in *Interner) Intern(s string) string {
	if in == nil {
		return s
	}
	in.mu.Lock()
	if c, ok := in.m[s]; ok {
		in.mu.Unlock()
		in.hits.Add(1)
		return c
	}
	in.m[s] = s
	in.mu.Unlock()
	in.miss.Add(1)
	return s
}

// InternBytes returns the canonical string equal to b, allocating a new
// string only the first time a given byte content is seen. The common
// case — a label already interned — performs no allocation at all: the
// map lookup keyed by string(b) does not materialize the conversion.
func (in *Interner) InternBytes(b []byte) string {
	if in == nil {
		return string(b)
	}
	in.mu.Lock()
	if c, ok := in.m[string(b)]; ok {
		in.mu.Unlock()
		in.hits.Add(1)
		return c
	}
	s := string(b)
	in.m[s] = s
	in.mu.Unlock()
	in.miss.Add(1)
	return s
}

// Len returns the number of distinct strings interned.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}

// Stats returns how many Intern calls were answered from the pool
// (hits) versus registered a new string (misses).
func (in *Interner) Stats() (hits, misses int64) {
	if in == nil {
		return 0, 0
	}
	return in.hits.Load(), in.miss.Load()
}
