// Package xmltree implements the labeled ordered tree abstraction of XML
// documents used throughout the MIX mediator:
//
//	T = D | D[T*]
//
// A tree is either a leaf carrying an atomic label d ∈ D, or an element
// d[t1,…,tn] with a label and an ordered list of children. Following the
// paper (Section 2), attributes are not modeled; element names, character
// content and atomic values are all drawn from the same string-like
// domain D.
//
// The reserved label "hole" marks unexplored parts of open (partial)
// trees exchanged by the LXP protocol (Section 4); see IsHole.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// HoleLabel is the reserved element name for holes in open trees
// (Definition 3 of the paper). A hole element has exactly one child,
// a leaf carrying the hole identifier.
const HoleLabel = "hole"

// ListLabel is the special label the groupBy operator uses to denote
// lists of grouped values (Section 3).
const ListLabel = "list"

// Tree is a labeled ordered tree. A Tree with no children may be either
// a leaf (atomic datum) or an empty element; the distinction is
// irrelevant in the paper's abstraction and we do not track it.
//
// Trees are immutable by convention: functions in this package never
// mutate their inputs, and sharing subtrees between Trees is allowed
// (the paper's binding lists deliberately share subtrees to preserve
// node identity).
type Tree struct {
	Label    string
	Children []*Tree

	// Memoized structural fingerprint (see fingerprint.go). fpState
	// moves fpUnset → fpBusy → fpSet; fpHi/fpLo are published by the
	// single fpBusy winner and read only after observing fpSet, so the
	// memo is race-free without a lock. The fields piggyback on the
	// immutability convention: fingerprinting a tree that is still
	// being mutated is a caller bug.
	fpState    atomic.Uint32
	fpHi, fpLo uint64
}

// fingerprint memo states.
const (
	fpUnset uint32 = iota
	fpBusy
	fpSet
)

// Leaf returns a new leaf tree carrying the atomic datum d.
func Leaf(d string) *Tree { return &Tree{Label: d} }

// Elem returns a new element labeled d with the given children.
func Elem(d string, children ...*Tree) *Tree {
	return &Tree{Label: d, Children: children}
}

// Text is shorthand for an element wrapping a single text leaf, e.g.
// Text("zip", "91220") == Elem("zip", Leaf("91220")).
func Text(label, content string) *Tree { return Elem(label, Leaf(content)) }

// Hole returns a hole element hole[id] representing an unexplored part
// of an open tree. Chunked servers mint holes in bulk, so both nodes
// and the child list come from a single allocation.
func Hole(id string) *Tree {
	h := &struct {
		elem     Tree
		children [1]*Tree
		leaf     Tree
	}{}
	h.leaf.Label = id
	h.children[0] = &h.leaf
	h.elem.Label = HoleLabel
	h.elem.Children = h.children[:]
	return &h.elem
}

// IsLeaf reports whether t has no children.
func (t *Tree) IsLeaf() bool { return len(t.Children) == 0 }

// IsHole reports whether t is a hole element hole[id].
func (t *Tree) IsHole() bool {
	return t != nil && t.Label == HoleLabel && len(t.Children) == 1 && t.Children[0].IsLeaf()
}

// HoleID returns the identifier of a hole element, or "" if t is not a hole.
func (t *Tree) HoleID() string {
	if !t.IsHole() {
		return ""
	}
	return t.Children[0].Label
}

// IsOpen reports whether t contains any hole (Definition 3: a tree
// containing holes is open, otherwise closed).
func (t *Tree) IsOpen() bool {
	if t == nil {
		return false
	}
	if t.IsHole() {
		return true
	}
	for _, c := range t.Children {
		if c.IsOpen() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of t. Node identity is not preserved; use
// Clone when a caller needs a mutable private copy.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	c := &Tree{Label: t.Label}
	if len(t.Children) > 0 {
		c.Children = make([]*Tree, len(t.Children))
		for i, ch := range t.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports whether t and u are structurally equal (same labels and
// the same ordered children, recursively). It ignores node identity.
func Equal(t, u *Tree) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Label != u.Label || len(t.Children) != len(u.Children) {
		return false
	}
	for i := range t.Children {
		if !Equal(t.Children[i], u.Children[i]) {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in t.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the height of t: 1 for a leaf.
func (t *Tree) Depth() int {
	if t == nil {
		return 0
	}
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Child returns the i-th child of t, or nil if out of range.
func (t *Tree) Child(i int) *Tree {
	if t == nil || i < 0 || i >= len(t.Children) {
		return nil
	}
	return t.Children[i]
}

// FirstChild returns the first child of t, or nil (the paper's d
// command applied to a materialized tree).
func (t *Tree) FirstChild() *Tree { return t.Child(0) }

// Find returns the first child of t whose label equals name, or nil.
func (t *Tree) Find(name string) *Tree {
	if t == nil {
		return nil
	}
	for _, c := range t.Children {
		if c.Label == name {
			return c
		}
	}
	return nil
}

// FindAll returns all children of t whose label equals name.
func (t *Tree) FindAll(name string) []*Tree {
	if t == nil {
		return nil
	}
	var out []*Tree
	for _, c := range t.Children {
		if c.Label == name {
			out = append(out, c)
		}
	}
	return out
}

// TextContent concatenates, in document order, the labels of all leaf
// descendants of t (for a leaf, its own label).
func (t *Tree) TextContent() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.appendText(&b)
	return b.String()
}

func (t *Tree) appendText(b *strings.Builder) {
	if t.IsLeaf() {
		b.WriteString(t.Label)
		return
	}
	for _, c := range t.Children {
		c.appendText(b)
	}
}

// Walk calls fn for every node of t in document (preorder) order,
// with the node's depth (root = 0). If fn returns false the subtree
// below that node is skipped.
func (t *Tree) Walk(fn func(n *Tree, depth int) bool) {
	t.walk(fn, 0)
}

func (t *Tree) walk(fn func(n *Tree, depth int) bool, depth int) {
	if t == nil {
		return
	}
	if !fn(t, depth) {
		return
	}
	for _, c := range t.Children {
		c.walk(fn, depth+1)
	}
}

// CountLabel returns the number of nodes in t whose label equals name.
func (t *Tree) CountLabel(name string) int {
	n := 0
	t.Walk(func(nd *Tree, _ int) bool {
		if nd.Label == name {
			n++
		}
		return true
	})
	return n
}

// Holes returns the hole identifiers occurring in t, in document order.
func (t *Tree) Holes() []string {
	var ids []string
	t.Walk(func(n *Tree, _ int) bool {
		if n.IsHole() {
			ids = append(ids, n.HoleID())
			return false
		}
		return true
	})
	return ids
}

// String renders t in the paper's bracket notation, e.g.
// "home[addr[La Jolla],zip[91220]]". Leaves render as their label.
func (t *Tree) String() string {
	if t == nil {
		return "⊥"
	}
	var b strings.Builder
	t.appendString(&b)
	return b.String()
}

func (t *Tree) appendString(b *strings.Builder) {
	b.WriteString(t.Label)
	if t.IsLeaf() {
		return
	}
	b.WriteByte('[')
	for i, c := range t.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.appendString(b)
	}
	b.WriteByte(']')
}

// Canonical returns a canonical string for t suitable as a map key,
// quoting labels so that bracket characters inside labels cannot
// collide with structure. Two trees have the same Canonical string iff
// Equal reports them equal.
func (t *Tree) Canonical() string {
	if t == nil {
		return "#nil"
	}
	var b strings.Builder
	t.appendCanonical(&b)
	return b.String()
}

func (t *Tree) appendCanonical(b *strings.Builder) {
	fmt.Fprintf(b, "%q", t.Label)
	b.WriteByte('(')
	for i, c := range t.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.appendCanonical(b)
	}
	b.WriteByte(')')
}

// SortChildrenBy returns a copy of t whose children are stably sorted
// by the given key function; grandchildren are shared, not copied.
// It is a helper for tests and the eager orderBy implementation.
func (t *Tree) SortChildrenBy(key func(*Tree) string) *Tree {
	if t == nil {
		return nil
	}
	kids := make([]*Tree, len(t.Children))
	copy(kids, t.Children)
	sort.SliceStable(kids, func(i, j int) bool { return key(kids[i]) < key(kids[j]) })
	return &Tree{Label: t.Label, Children: kids}
}
