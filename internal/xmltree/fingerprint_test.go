package xmltree

import (
	"fmt"
	"sync"
	"testing"
)

func TestFingerprintEqualTreesAgree(t *testing.T) {
	cases := []*Tree{
		Leaf("a"),
		Leaf(""),
		Elem("a"),
		Elem("home", Text("addr", "La Jolla"), Text("zip", "92093")),
		Elem("r", Elem("a", Leaf("b")), Leaf("ab")),
		Hole("0/2:5"),
	}
	for _, c := range cases {
		clone := c.Clone()
		if !Equal(c, clone) {
			t.Fatalf("clone not Equal for %v", c)
		}
		if c.Fingerprint() != clone.Fingerprint() {
			t.Errorf("Equal trees with different fingerprints: %v", c)
		}
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	// Pairwise-distinct small trees, including shapes crafted to collide
	// under naive (non-prefix-free) encodings.
	cases := []*Tree{
		Leaf("a"),
		Leaf("b"),
		Leaf("ab"),
		Elem("a"),                       // leaf "a" vs element a[] — same here (no leaf/element distinction)...
		Elem("a", Leaf("b")),            // a[b]
		Elem("ab", Leaf("")),            // ab[""]
		Elem("a", Leaf("b"), Leaf("c")), // a[b,c]
		Elem("a", Elem("b", Leaf("c"))), // a[b[c]]
		Elem("a", Leaf("bc")),           // a[bc]
		Elem("", Leaf("a")),
	}
	seen := map[Fingerprint]*Tree{}
	for _, c := range cases {
		fp := c.Fingerprint()
		if prev, ok := seen[fp]; ok && !Equal(prev, c) {
			t.Errorf("collision between %v and %v", prev, c)
		}
		seen[fp] = c
	}
	// Leaf "a" and Elem("a") are the same tree in this abstraction and
	// must agree.
	if Leaf("x").Fingerprint() != Elem("x").Fingerprint() {
		t.Errorf("leaf and empty element with same label must share a fingerprint")
	}
}

func TestFingerprintNilAndZero(t *testing.T) {
	var nilT *Tree
	if fp := nilT.Fingerprint(); !fp.IsZero() {
		t.Errorf("nil tree fingerprint = %v, want zero", fp)
	}
	if fp := Leaf("a").Fingerprint(); fp.IsZero() {
		t.Errorf("non-nil tree got zero fingerprint")
	}
}

func TestFingerprintMemoized(t *testing.T) {
	tree := Elem("r", Text("a", "1"), Text("b", "2"))
	_, hits0 := FingerprintStats()
	fp1 := tree.Fingerprint()
	fp2 := tree.Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable: %v vs %v", fp1, fp2)
	}
	if _, hits := FingerprintStats(); hits <= hits0 {
		t.Errorf("second Fingerprint call did not hit the memo")
	}
	// Memoized subtrees compose to the same value as a cold tree.
	cold := Elem("r", Text("a", "1"), Text("b", "2"))
	sub := cold.Children[0]
	sub.Fingerprint() // warm only the subtree
	if cold.Fingerprint() != fp1 {
		t.Errorf("partially warmed tree fingerprints differently")
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	tree := Elem("root")
	for i := 0; i < 200; i++ {
		tree.Children = append(tree.Children, Text("item", fmt.Sprintf("v%d", i)))
	}
	want := tree.Clone().Fingerprint()
	var wg sync.WaitGroup
	got := make([]Fingerprint, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tree.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i, fp := range got {
		if fp != want {
			t.Errorf("goroutine %d got %v, want %v", i, fp, want)
		}
	}
}

func TestAtomFingerprint(t *testing.T) {
	// Element whose text content equals a leaf's label: atoms are equal,
	// so atom fingerprints must agree even though structures differ.
	if Text("zip", "92093").AtomFingerprint() != Leaf("92093").AtomFingerprint() {
		t.Errorf("zip[92093] and leaf 92093 must share an atom fingerprint")
	}
	// Different leaf splits with equal concatenation.
	a := Elem("x", Leaf("ab"), Leaf("c"))
	b := Elem("y", Leaf("a"), Leaf("bc"))
	if a.AtomFingerprint() != b.AtomFingerprint() {
		t.Errorf("equal concatenated text must share an atom fingerprint")
	}
	if Leaf("abc").AtomFingerprint() != a.AtomFingerprint() {
		t.Errorf("leaf abc and x[ab,c] must share an atom fingerprint")
	}
	if Leaf("abc").AtomFingerprint() == Leaf("abd").AtomFingerprint() {
		t.Errorf("different atoms should (virtually always) differ")
	}
}

func TestFingerprintAppendKey(t *testing.T) {
	fp := Fingerprint{Hi: 0x0102030405060708, Lo: 0x090a0b0c0d0e0f10}
	key := fp.AppendKey(nil)
	if len(key) != 16 {
		t.Fatalf("AppendKey length = %d, want 16", len(key))
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	for i := range want {
		if key[i] != want[i] {
			t.Fatalf("AppendKey = %x, want %x", key, want)
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("home")
	b := in.Intern("home")
	if a != b {
		t.Errorf("interned strings differ")
	}
	c := in.InternBytes([]byte("home"))
	if c != a {
		t.Errorf("InternBytes did not return the canonical string")
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1", in.Len())
	}
	hits, misses := in.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("Stats = (%d, %d), want (2, 1)", hits, misses)
	}
	// nil interner is a pass-through.
	var nilIn *Interner
	if nilIn.Intern("x") != "x" || nilIn.InternBytes([]byte("y")) != "y" {
		t.Errorf("nil interner must pass through")
	}
	if nilIn.Len() != 0 {
		t.Errorf("nil interner Len != 0")
	}
}

func TestInternBytesNoAllocOnHit(t *testing.T) {
	in := NewInterner()
	in.Intern("warm")
	b := []byte("warm")
	allocs := testing.AllocsPerRun(100, func() { in.InternBytes(b) })
	if allocs != 0 {
		t.Errorf("InternBytes hit allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkFingerprintCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree := benchTree(50)
		b.StartTimer()
		tree.Fingerprint()
	}
}

func BenchmarkFingerprintWarm(b *testing.B) {
	tree := benchTree(50)
	tree.Fingerprint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Fingerprint()
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	tree := benchTree(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.Canonical()
	}
}

func benchTree(n int) *Tree {
	root := Elem("catalog")
	for i := 0; i < n; i++ {
		root.Children = append(root.Children,
			Elem("book",
				Text("title", fmt.Sprintf("Title %d", i)),
				Text("author", fmt.Sprintf("Author %d", i%7)),
				Text("price", fmt.Sprintf("%d.99", i%40)),
			))
	}
	return root
}
