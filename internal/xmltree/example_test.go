package xmltree_test

import (
	"fmt"
	"log"

	"mix/internal/xmltree"
)

func ExampleUnmarshalXML() {
	t, err := xmltree.UnmarshalXML("<home><addr>La Jolla</addr><zip>91220</zip></home>")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)
	fmt.Println(t.Find("zip").TextContent())
	// Output:
	// home[addr[La Jolla],zip[91220]]
	// 91220
}

func ExampleTree_Holes() {
	open := xmltree.Elem("catalog",
		xmltree.Elem("book", xmltree.Text("title", "t1")),
		xmltree.Hole("page:2"),
	)
	fmt.Println(open.IsOpen(), open.Holes())
	// Output:
	// true [page:2]
}
