package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Tree {
	return Elem("homes",
		Elem("home", Text("addr", "La Jolla"), Text("zip", "91220")),
		Elem("home", Text("addr", "El Cajon"), Text("zip", "91223")),
	)
}

func TestConstructors(t *testing.T) {
	l := Leaf("91220")
	if !l.IsLeaf() || l.Label != "91220" {
		t.Fatalf("Leaf: got %v", l)
	}
	e := Elem("zip", l)
	if e.IsLeaf() || len(e.Children) != 1 || e.Children[0] != l {
		t.Fatalf("Elem: got %v", e)
	}
	x := Text("zip", "91220")
	if !Equal(e, x) {
		t.Fatalf("Text != Elem+Leaf: %v vs %v", e, x)
	}
}

func TestHole(t *testing.T) {
	h := Hole("db.homes.5")
	if !h.IsHole() {
		t.Fatal("Hole not recognized")
	}
	if got := h.HoleID(); got != "db.homes.5" {
		t.Fatalf("HoleID = %q", got)
	}
	if Leaf("hole").IsHole() {
		t.Fatal("leaf labeled hole must not be a hole element")
	}
	if Elem("hole", Leaf("a"), Leaf("b")).IsHole() {
		t.Fatal("hole with two children must not be a hole element")
	}
	if !Elem("r", Leaf("a"), h).IsOpen() {
		t.Fatal("tree containing hole should be open")
	}
	if sample().IsOpen() {
		t.Fatal("closed tree reported open")
	}
	if sample().HoleID() != "" {
		t.Fatal("HoleID of non-hole should be empty")
	}
}

func TestHoles(t *testing.T) {
	tr := Elem("r", Hole("h1"), Elem("a", Hole("h2")), Leaf("x"), Hole("h3"))
	if got := tr.Holes(); !reflect.DeepEqual(got, []string{"h1", "h2", "h3"}) {
		t.Fatalf("Holes = %v", got)
	}
	if got := sample().Holes(); got != nil {
		t.Fatalf("Holes of closed tree = %v", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	a := sample()
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("clone not equal")
	}
	if a == b || a.Children[0] == b.Children[0] {
		t.Fatal("clone shares nodes")
	}
	b.Children[0].Children[0].Children[0].Label = "Del Mar"
	if Equal(a, b) {
		t.Fatal("mutation of clone affected original equality")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Fatal("nil equality rules")
	}
	if Equal(Elem("a", Leaf("x")), Elem("a")) {
		t.Fatal("different child counts equal")
	}
}

func TestSizeDepth(t *testing.T) {
	s := sample()
	if s.Size() != 11 {
		t.Fatalf("Size = %d, want 11", s.Size())
	}
	if s.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", s.Depth())
	}
	if Leaf("x").Size() != 1 || Leaf("x").Depth() != 1 {
		t.Fatal("leaf size/depth")
	}
	var nilT *Tree
	if nilT.Size() != 0 || nilT.Depth() != 0 {
		t.Fatal("nil size/depth")
	}
}

func TestAccessors(t *testing.T) {
	s := sample()
	if s.FirstChild().Label != "home" {
		t.Fatal("FirstChild")
	}
	if s.Child(1).Label != "home" || s.Child(2) != nil || s.Child(-1) != nil {
		t.Fatal("Child bounds")
	}
	h := s.FirstChild()
	if h.Find("zip").TextContent() != "91220" {
		t.Fatal("Find zip")
	}
	if h.Find("nope") != nil {
		t.Fatal("Find miss should be nil")
	}
	if n := len(s.FindAll("home")); n != 2 {
		t.Fatalf("FindAll = %d", n)
	}
	if s.CountLabel("zip") != 2 || s.CountLabel("homes") != 1 {
		t.Fatal("CountLabel")
	}
}

func TestTextContent(t *testing.T) {
	if got := sample().TextContent(); got != "La Jolla91220El Cajon91223" {
		t.Fatalf("TextContent = %q", got)
	}
	if Leaf("x").TextContent() != "x" {
		t.Fatal("leaf TextContent")
	}
}

func TestWalkOrderAndPrune(t *testing.T) {
	var labels []string
	sample().Walk(func(n *Tree, depth int) bool {
		labels = append(labels, n.Label)
		return n.Label != "home" // prune below home
	})
	want := []string{"homes", "home", "home"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("Walk with prune = %v", labels)
	}
	var depths []int
	Text("zip", "91220").Walk(func(n *Tree, d int) bool { depths = append(depths, d); return true })
	if !reflect.DeepEqual(depths, []int{0, 1}) {
		t.Fatalf("depths = %v", depths)
	}
}

func TestString(t *testing.T) {
	tr := Elem("home", Text("addr", "La Jolla"), Text("zip", "91220"))
	want := "home[addr[La Jolla],zip[91220]]"
	if got := tr.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	var nilT *Tree
	if nilT.String() != "⊥" {
		t.Fatal("nil String")
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	// Labels containing bracket characters must not collide structurally.
	a := Elem("a[b", Leaf("c"))
	b := Elem("a", Elem("b", Leaf("c")))
	if a.Canonical() == b.Canonical() {
		t.Fatal("Canonical collision")
	}
	if a.Canonical() != a.Clone().Canonical() {
		t.Fatal("Canonical not stable under clone")
	}
}

func TestSortChildrenBy(t *testing.T) {
	tr := Elem("r", Text("p", "3"), Text("p", "1"), Text("p", "2"))
	sorted := tr.SortChildrenBy(func(c *Tree) string { return c.TextContent() })
	got := []string{}
	for _, c := range sorted.Children {
		got = append(got, c.TextContent())
	}
	if !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Fatalf("sorted = %v", got)
	}
	// original untouched
	if tr.Children[0].TextContent() != "3" {
		t.Fatal("SortChildrenBy mutated original")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := sample()
	xml := MarshalXML(s)
	back, err := UnmarshalXML(xml)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !Equal(s, back) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", s, back)
	}
}

func TestMarshalIndentParses(t *testing.T) {
	s := sample()
	xml := MarshalIndent(s)
	if !strings.Contains(xml, "\n") {
		t.Fatal("MarshalIndent should be multi-line")
	}
	back, err := UnmarshalXML(xml)
	if err != nil {
		t.Fatalf("Unmarshal indented: %v", err)
	}
	if !Equal(s, back) {
		t.Fatalf("indent round trip mismatch: %v vs %v", s, back)
	}
}

func TestUnmarshalEscapes(t *testing.T) {
	tr := Text("note", "a<b & c>d")
	back, err := UnmarshalXML(MarshalXML(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, back) {
		t.Fatalf("escape round trip: %v vs %v", tr, back)
	}
	got, err := UnmarshalXML("<x>&quot;hi&apos;</x>")
	if err != nil {
		t.Fatal(err)
	}
	if got.TextContent() != "\"hi'" {
		t.Fatalf("entities: %q", got.TextContent())
	}
}

func TestUnmarshalMixedAndComments(t *testing.T) {
	got, err := UnmarshalXML("<?xml version=\"1.0\"?><!-- c --><r> <a/> text <!-- inner --> <b>x</b></r>")
	if err != nil {
		t.Fatal(err)
	}
	want := Elem("r", Elem("a"), Leaf("text"), Text("b", "x"))
	if !Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"<a x=\"1\">y</a>", // attributes rejected
		"<a>&bogus;</a>",
		"<a/><b/>",
		"junk",
		"<a></a>trailing",
		"<1bad/>",
	}
	for _, c := range cases {
		if _, err := UnmarshalXML(c); err == nil {
			t.Errorf("UnmarshalXML(%q): expected error", c)
		}
	}
}

func TestParseBracket(t *testing.T) {
	in := "bs[b[H[home[addr[La Jolla],zip[91220]]],V1[91220]]]"
	tr, err := ParseBracket(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != in {
		t.Fatalf("bracket round trip: %q", tr.String())
	}
	if _, err := ParseBracket("a[b"); err == nil {
		t.Fatal("unterminated bracket accepted")
	}
	if _, err := ParseBracket("a[]x"); err == nil {
		t.Fatal("trailing accepted")
	}
	if _, err := ParseBracket(""); err == nil {
		t.Fatal("empty accepted")
	}
	empty, err := ParseBracket("a[]")
	if err != nil || !empty.IsLeaf() {
		t.Fatalf("a[] should parse to childless a: %v %v", empty, err)
	}
}

// randomTree generates a random tree with XML-safe labels for
// round-trip properties.
func randomTree(r *rand.Rand, depth int) *Tree {
	labels := []string{"a", "b", "c", "home", "zip", "school", "x1"}
	t := &Tree{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return Leaf("v" + labels[r.Intn(len(labels))])
		}
		return t
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		c := randomTree(r, depth-1)
		// XML normal form: adjacent text nodes are indistinguishable
		// after serialization, so never emit two leaf siblings in a row.
		if len(t.Children) > 0 && t.Children[len(t.Children)-1].IsLeaf() && c.IsLeaf() {
			c = Elem("w", c)
		}
		t.Children = append(t.Children, c)
	}
	return t
}

func TestQuickXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 4)
		if tr.IsLeaf() {
			tr = Elem("root", tr)
		}
		back, err := UnmarshalXML(MarshalXML(tr))
		return err == nil && Equal(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBracketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 4)
		back, err := ParseBracket(tr.String())
		return err == nil && Equal(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 5)
		c := tr.Clone()
		return Equal(tr, c) && tr.Size() == c.Size() && tr.Canonical() == c.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	// The XML and bracket parsers must reject garbage gracefully.
	f := func(s string) bool {
		_, _ = UnmarshalXML(s)
		_, _ = ParseBracket(s)
		return true // reaching here means no panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// A few adversarial fixed inputs.
	for _, s := range []string{
		"<", "</", "<a", "<a>", "</a>", "<a></", "<a><b></a></b>",
		"<a>&", "<a>&amp", strings.Repeat("<a>", 10000),
		"<!---->", "<?", "<a/><a/>", "\x00\x01", "a[b[c[",
	} {
		_, _ = UnmarshalXML(s)
		_, _ = ParseBracket(s)
	}
}
