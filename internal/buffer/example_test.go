package buffer_test

import (
	"fmt"
	"log"

	"mix/internal/buffer"
	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/xmltree"
)

// A buffered LXP source is navigated like a local document; the open
// tree records what has been explored.
func Example() {
	doc := xmltree.Elem("catalog",
		xmltree.Elem("book", xmltree.Text("title", "t1")),
		xmltree.Elem("book", xmltree.Text("title", "t2")),
		xmltree.Elem("book", xmltree.Text("title", "t3")),
	)
	b, err := buffer.New(&lxp.TreeServer{Tree: doc, Chunk: 1, InlineLimit: 4}, "u")
	if err != nil {
		log.Fatal(err)
	}
	root, _ := b.Root()
	first, _ := b.Down(root)
	sub, _ := nav.Subtree(b, first)
	fmt.Println("explored:", sub)
	fmt.Println("open tree still has holes:", b.Snapshot().IsOpen())
	// Output:
	// explored: book[title[t1]]
	// open tree still has holes: true
}
